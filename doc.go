// Package repro reproduces "Automatic Generation of Parallel Programs with
// Dynamic Load Balancing" (Siegell & Steenkiste, HPDC 1994): a parallelizing
// compiler and master/slave run-time system that executes loop-nest programs
// on a (simulated) network of workstations, dynamically re-balancing loop
// iterations as competing load changes.
//
// See README.md for the architecture, DESIGN.md for the system inventory
// and per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmark harness in bench_test.go regenerates every table
// and figure of the paper's evaluation.
package repro
