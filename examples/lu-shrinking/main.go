// LU example: a computation whose distributed work shrinks as it proceeds.
// Columns left of the pivot become inactive (they are never moved), the
// pivot column is broadcast by its owner each step, and the balancer's
// automatic frequency selection skips more hooks as per-step work shrinks
// (paper §4.7).
//
//	go run ./examples/lu-shrinking
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/depend"
	"repro/internal/dlb"
	"repro/internal/loopir"
)

func main() {
	prog := loopir.LU()
	params := map[string]int{"n": 160}

	plan, err := compile.Compile(prog, compile.Options{
		Dist: depend.DistSpec{Dims: map[string]int{"a": 1}, Loops: []string{"j"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("properties:", plan.Props.String())
	fmt.Println()

	res, err := dlb.Run(dlb.Config{
		Plan:         plan,
		Params:       params,
		DLB:          true,
		FlopCost:     50 * time.Microsecond,
		CollectTrace: true,
	}, cluster.Config{
		Slaves: 4,
		Load:   []cluster.LoadProfile{cluster.Constant(1)},
	})
	if err != nil {
		log.Fatal(err)
	}

	_, ref, err := dlb.SequentialTime(plan, params, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run: %.2fs virtual, %d LB phases, %d moves\n",
		res.Elapsed.Seconds(), res.Phases, res.Moves)
	fmt.Printf("max |parallel - sequential| = %g\n\n", ref["a"].MaxAbsDiff(res.Final["a"]))

	fmt.Println("adaptive balancing frequency as the active column set shrinks:")
	fmt.Printf("%8s %8s %14s %6s %10s\n", "time", "phase", "active columns", "skip", "period")
	for _, s := range res.Trace {
		if s.Slave != 0 {
			continue
		}
		active := 0
		for _, s2 := range res.Trace {
			if s2.Phase == s.Phase {
				active += s2.Work
			}
		}
		fmt.Printf("%7.1fs %8d %14d %6d %10s\n",
			s.Time.Seconds(), s.Phase, active, s.SkipHooks, s.Period)
	}
}
