// Quickstart: compile a sequential loop nest into an SPMD program with
// dynamic load balancing and run it on a simulated network of workstations.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/dlb"
	"repro/internal/loopir"
	"repro/internal/metrics"
)

func main() {
	// 1. A sequential program: 128x128 matrix multiplication from the
	//    built-in library (you can also build your own loop nests with the
	//    loopir constructors).
	prog := loopir.MatMul()
	params := map[string]int{"n": 128}

	// 2. Parallelize it. With no distribution directive the compiler picks
	//    one automatically (here: columns of c, with b aligned and a
	//    replicated) and derives communication and movement constraints
	//    from its dependence analysis.
	plan, err := compile.Compile(prog, compile.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated program:")
	fmt.Println(plan.Source)

	// 3. Run it on four simulated workstations, one of which is busy with
	//    another user's job, with dynamic load balancing enabled.
	res, err := dlb.Run(dlb.Config{
		Plan:   plan,
		Params: params,
		DLB:    true,
	}, cluster.Config{
		Slaves: 4,
		Load:   []cluster.LoadProfile{cluster.Constant(1)}, // competing task on slave 0
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Compare against the sequential execution — timing and data.
	seq, ref, err := dlb.SequentialTime(plan, params, 0)
	if err != nil {
		log.Fatal(err)
	}
	maxDiff := 0.0
	for name, want := range ref {
		if got := res.Final[name]; got != nil {
			if d := want.MaxAbsDiff(got); d > maxDiff {
				maxDiff = d
			}
		}
	}

	fmt.Printf("sequential (virtual): %7.2fs\n", seq.Seconds())
	fmt.Printf("parallel   (virtual): %7.2fs on 4 workstations (one loaded)\n", res.Elapsed.Seconds())
	fmt.Printf("speedup:              %7.2f\n", metrics.Speedup(seq, res.Elapsed))
	fmt.Printf("efficiency:           %7.3f\n", metrics.Efficiency(seq, res.Elapsed, res.Usage))
	fmt.Printf("load-balance phases:  %d (moved %d work units)\n", res.Phases, res.UnitsMoved)
	fmt.Printf("max |parallel - sequential| over all arrays: %g\n", maxDiff)
}
