// Fault-recovery example: the elastic runtime surviving failures the
// paper's master/slave design cannot. A deterministic fault plan crashes
// one slave mid-run and registers a fresh node a little later; the master's
// heartbeat leases detect the death, the computation rolls back to the last
// periodic checkpoint, the dead slave's block is reassigned, and the joiner
// is folded in at the next checkpoint boundary — all while the final arrays
// stay bit-identical to the sequential execution.
//
//	go run ./examples/fault-recovery
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/depend"
	"repro/internal/dlb"
	"repro/internal/fault"
	"repro/internal/loopir"
	"repro/internal/metrics"
)

func main() {
	prog := loopir.MatMul()
	params := map[string]int{"n": 128}
	plan, err := compile.Compile(prog, compile.Options{
		Dist: depend.DistSpec{Dims: map[string]int{"c": 1, "b": 1}, Loops: []string{"j"}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The scenario: slave 1 dies 12 virtual seconds in; an idle workstation
	// volunteers at 18s and is admitted at the next checkpoint.
	fp := (&fault.Plan{}).
		CrashAt(1, 12*time.Second).
		JoinAt(18 * time.Second)

	flopCost := 15 * time.Microsecond
	run := func(plan2 *fault.Plan) *dlb.Result {
		res, err := dlb.Run(dlb.Config{
			Plan:     plan,
			Params:   params,
			DLB:      true,
			FlopCost: flopCost,
			Fault:    plan2,
			Ckpt:     fault.CkptPolicy{MinInterval: 2 * time.Second, MaxInterval: 6 * time.Second},
		}, cluster.Config{Slaves: 4})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	free := run(&fault.Plan{})
	res := run(fp)

	seq, ref, err := dlb.SequentialTime(plan, params, flopCost)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fault plan:")
	for _, e := range fp.Events {
		fmt.Println("   ", e)
	}
	fmt.Println()
	fmt.Println("fault-handling trace:")
	fmt.Print(res.FaultLog)
	fmt.Println()
	fmt.Printf("sequential:        %7.2fs\n", seq.Seconds())
	fmt.Printf("fault-free:        %7.2fs (efficiency %.3f)\n",
		free.Elapsed.Seconds(), metrics.Efficiency(seq, free.Elapsed, free.Usage))
	fmt.Printf("crash + join:      %7.2fs (efficiency %.3f, %d checkpoints, %d recoveries)\n",
		res.Elapsed.Seconds(), metrics.Efficiency(seq, res.Elapsed, res.Usage),
		res.Checkpoints, res.Recoveries)
	fmt.Printf("evicted %v, joined %v\n", res.Evicted, res.Joined)
	fmt.Printf("max |parallel - sequential| = %g\n", ref["c"].MaxAbsDiff(res.Final["c"]))
}
