// Distributed example: the master/slave runtime spread over real OS
// processes on one machine. The program builds the slave daemon
// (cmd/dlbd), launches four daemon processes listening on loopback TCP,
// and then runs the calibrated MM plan against them from an in-process
// master — the same netrun transport `dlbrun -slaves host:port,...` uses.
// Mid-run it SIGKILLs one daemon: the master's heartbeat lease expires,
// the dead slave is evicted, the survivors roll back to the last
// consistent checkpoint, and the run completes bit-identical to the
// sequential reference.
//
// Run from the repository root (it invokes `go build`):
//
//	go run ./examples/distributed
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/compile"
	"repro/internal/depend"
	"repro/internal/dlb"
	"repro/internal/fault"
	"repro/internal/loopir"
	"repro/internal/netrun"
)

func main() {
	// Build the slave daemon once; each instance is a real child process.
	dir, err := os.MkdirTemp("", "dlbd")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "dlbd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/dlbd")
	if out, err := build.CombinedOutput(); err != nil {
		log.Fatalf("building dlbd (run from the repo root): %v\n%s", err, out)
	}

	fmt.Println("starting 4 dlbd slave daemons on loopback...")
	daemons := make([]*exec.Cmd, 4)
	addrs := make([]string, 4)
	for i := range daemons {
		// -drag slows the kernel down so the run is long enough to balance
		// and to survive losing a process; vary it per daemon to emulate a
		// heterogeneous machine room.
		drag := 15.0 + 5.0*float64(i%2)
		cmd, addr, err := spawnDaemon(bin, drag)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			cmd.Process.Kill()
			cmd.Wait()
		}()
		daemons[i], addrs[i] = cmd, addr
		fmt.Printf("  slave %d: pid %d at %s (drag %g)\n", i, cmd.Process.Pid, addr, drag)
	}

	// Compile MM exactly as the simulator examples do: the plan hash both
	// sides derive must match, so master and daemons compile independently.
	prog := loopir.MatMul()
	params := map[string]int{"n": 256}
	plan, err := compile.Compile(prog, compile.Options{
		Dist: depend.DistSpec{Dims: map[string]int{"c": 1, "b": 1}, Loops: []string{"j"}},
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := dlb.Config{
		Plan:        plan,
		Params:      params,
		DLB:         true,
		RealQuantum: 2 * time.Millisecond,
		// Fault tolerance on (empty plan: no *injected* faults — the real
		// process kill below is the failure), with detection fast enough
		// for a demo run of a few seconds.
		Fault:  &fault.Plan{},
		Detect: fault.DetectorConfig{MinLease: 400 * time.Millisecond, HeartbeatEvery: 100 * time.Millisecond},
		Ckpt:   fault.CkptPolicy{MinInterval: 150 * time.Millisecond},
	}

	type outcome struct {
		res *dlb.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := netrun.RunMaster(cfg, addrs, netrun.MasterOptions{})
		done <- outcome{res, err}
	}()

	time.Sleep(800 * time.Millisecond)
	fmt.Printf("\nSIGKILL slave 2 (pid %d) mid-run...\n", daemons[2].Process.Pid)
	if err := daemons[2].Process.Kill(); err != nil {
		log.Fatal(err)
	}

	out := <-done
	if out.err != nil {
		log.Fatal(out.err)
	}
	res := out.res

	// Verify against the sequential interpreter, as every test does.
	inst, err := loopir.NewInstance(prog, params)
	if err != nil {
		log.Fatal(err)
	}
	if err := inst.Run(); err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for name, want := range inst.Arrays {
		if got := res.Final[name]; got != nil {
			if d := want.MaxAbsDiff(got); d > worst {
				worst = d
			}
		}
	}

	fmt.Printf("\nrun complete in %v wall clock\n", res.Elapsed.Round(time.Millisecond))
	fmt.Printf("  balancing phases: %d, moves: %d (%d units)\n", res.Phases, res.Moves, res.UnitsMoved)
	fmt.Printf("  evicted slaves:   %v (recoveries: %d, checkpoints: %d)\n", res.Evicted, res.Recoveries, res.Checkpoints)
	fmt.Printf("  max |diff| vs sequential reference: %g\n", worst)
	if worst != 0 {
		log.Fatal("distributed result diverged from the sequential reference")
	}
	fmt.Println("  bit-identical to the sequential run")
}

// spawnDaemon starts one dlbd child and reads its bound address from the
// "dlbd listening <addr>" startup line.
func spawnDaemon(bin string, drag float64) (*exec.Cmd, string, error) {
	cmd := exec.Command(bin, "-quiet", "-drag", fmt.Sprintf("%g", drag))
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	sc := bufio.NewScanner(out)
	if !sc.Scan() {
		return nil, "", fmt.Errorf("dlbd produced no startup line: %v", sc.Err())
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 3 || fields[0] != "dlbd" || fields[1] != "listening" {
		return nil, "", fmt.Errorf("unexpected dlbd startup line %q", sc.Text())
	}
	go func() { // drain later output so the child never blocks on a full pipe
		for sc.Scan() {
		}
	}()
	return cmd, fields[2], nil
}
