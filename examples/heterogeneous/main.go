// Heterogeneous example: workstations of different speeds plus a
// time-varying competing load. The balancer needs no per-machine weights —
// measured work units per second capture both heterogeneity and competing
// load (paper §3.2) — and the work assignment tracks the available
// processing power (paper Figure 9).
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/depend"
	"repro/internal/dlb"
	"repro/internal/loopir"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	prog := loopir.MatMul()
	params := map[string]int{"n": 160}
	plan, err := compile.Compile(prog, compile.Options{
		Dist: depend.DistSpec{Dims: map[string]int{"c": 1, "b": 1}, Loops: []string{"j"}},
	})
	if err != nil {
		log.Fatal(err)
	}

	flopCost := 30 * time.Microsecond
	cc := cluster.Config{
		Slaves: 4,
		// A fast server, two stock machines, and an old desktop.
		Speed: []float64{2.0, 1.0, 1.0, 0.5},
		// The fast server also runs someone's simulation half the time.
		Load: []cluster.LoadProfile{
			cluster.SquareWave{Period: 30 * time.Second, OnDuration: 15 * time.Second, Tasks: 1},
		},
	}
	res, err := dlb.Run(dlb.Config{
		Plan:         plan,
		Params:       params,
		DLB:          true,
		FlopCost:     flopCost,
		CollectTrace: true,
	}, cc)
	if err != nil {
		log.Fatal(err)
	}
	seq, ref, err := dlb.SequentialTime(plan, params, flopCost)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("4 heterogeneous workstations (speeds 2.0/1.0/1.0/0.5, wave load on the fast one)\n")
	fmt.Printf("sequential: %.2fs   parallel: %.2fs   speedup: %.2f   efficiency: %.3f\n",
		seq.Seconds(), res.Elapsed.Seconds(),
		metrics.Speedup(seq, res.Elapsed),
		metrics.Efficiency(seq, res.Elapsed, res.Usage))
	fmt.Printf("moves: %d (%d columns)   max |diff| vs sequential: %g\n\n",
		res.Moves, res.UnitsMoved, ref["c"].MaxAbsDiff(res.Final["c"]))

	// Plot each slave's work assignment over time.
	series := make([]*trace.Series, 4)
	for i := range series {
		series[i] = &trace.Series{Name: fmt.Sprintf("slave%d", i)}
	}
	for _, s := range res.Trace {
		series[s.Slave].Append(s.Time.Seconds(), float64(s.Work))
	}
	fmt.Println("work assignment over time (columns owned):")
	fmt.Print(trace.PlotASCII(72, 12, series...))
}
