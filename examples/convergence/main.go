// Convergence example: a program whose outer loop terminates when a
// residual drops below a threshold — the paper's data-dependent WHILE case
// (§4.1). The residual accumulation compiles into a recognized sum
// reduction; Combine steps all-reduce the per-slave partials so every slave
// (and the master's phase count) terminates at the same iteration. The
// program is written as source text and parsed by the internal/lang front
// end.
//
//	go run ./examples/convergence
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/depend"
	"repro/internal/dlb"
	"repro/internal/lang"
)

const src = `
program heat(n, maxiter)
array a[n][n] init hash(5);
array anew[n][n] init zero;
array r[1] init zero;
for iter = 0 to maxiter until r[0] < 0.01 {
    r[0] = 0;
    for i = 1 to n-1 {
        for j = 1 to n-1 {
            anew[i][j] = 0.25*((a[i-1][j] + a[i+1][j]) + (a[i][j-1] + a[i][j+1]));
        }
    }
    for i2 = 1 to n-1 {
        for j2 = 1 to n-1 {
            r[0] = r[0] + (anew[i2][j2] - a[i2][j2]) * (anew[i2][j2] - a[i2][j2]);
            a[i2][j2] = anew[i2][j2];
        }
    }
}
`

func main() {
	prog, err := lang.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := compile.Compile(prog, compile.Options{
		Dist: depend.DistSpec{Dims: map[string]int{"a": 0, "anew": 0}, Loops: []string{"i", "i2"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reductions recognized:", plan.Reductions)
	fmt.Println()
	fmt.Println(plan.Source)

	params := map[string]int{"n": 48, "maxiter": 500}
	res, err := dlb.Run(dlb.Config{
		Plan:     plan,
		Params:   params,
		DLB:      true,
		FlopCost: 20 * time.Microsecond,
	}, cluster.Config{
		Slaves: 4,
		Load:   []cluster.LoadProfile{cluster.Constant(1)},
	})
	if err != nil {
		log.Fatal(err)
	}

	_, ref, err := dlb.SequentialTime(plan, params, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged: residual %.6f (threshold 0.01), %d balancing phases, %d moves\n",
		res.Final["r"].At(0), res.Phases, res.Moves)
	fmt.Printf("upper bound was %d sweeps; the run stopped early by the data-dependent break\n", params["maxiter"])
	fmt.Printf("max |parallel - sequential| on the grid: %g\n", ref["a"].MaxAbsDiff(res.Final["a"]))
}
