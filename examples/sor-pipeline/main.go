// SOR pipeline example: a stencil with loop-carried dependences across the
// distributed dimension. The compiler strip-mines the row loop, inserts
// sweep-start ghost exchanges and per-block pipeline transfers, and
// restricts work movement to adjacent slaves so the block distribution (and
// minimal boundary communication) is preserved — the paper's Figure 3.
//
//	go run ./examples/sor-pipeline
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/depend"
	"repro/internal/dlb"
	"repro/internal/loopir"
	"repro/internal/metrics"
)

func main() {
	prog := loopir.SOR()
	params := map[string]int{"n": 256, "maxiter": 16}

	// Distribution directive: columns of b (the paper indexes b[col][row]).
	plan, err := compile.Compile(prog, compile.Options{
		Dist: depend.DistSpec{Dims: map[string]int{"b": 0}, Loops: []string{"j"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("application properties:", plan.Props.String())
	fmt.Println("movement restricted to adjacent slaves:", plan.Restricted)
	fmt.Println()
	fmt.Println(plan.Source)

	// A competing job appears on slave 1 thirty virtual seconds in, and a
	// second one later — the restricted balancer must shift blocks through
	// intermediate slaves.
	flopCost := 150 * time.Microsecond
	res, err := dlb.Run(dlb.Config{
		Plan:     plan,
		Params:   params,
		DLB:      true,
		FlopCost: flopCost,
	}, cluster.Config{
		Slaves: 4,
		Load: []cluster.LoadProfile{
			nil, // slave 0 dedicated
			cluster.Steps{{At: 10 * time.Second, Tasks: 1}, {At: 60 * time.Second, Tasks: 2}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	seq, ref, err := dlb.SequentialTime(plan, params, flopCost)
	if err != nil {
		log.Fatal(err)
	}
	static, err := dlb.Run(dlb.Config{Plan: plan, Params: params, DLB: false, FlopCost: flopCost},
		cluster.Config{Slaves: 4, Load: []cluster.LoadProfile{
			nil,
			cluster.Steps{{At: 10 * time.Second, Tasks: 1}, {At: 60 * time.Second, Tasks: 2}},
		}})
	if err != nil {
		log.Fatal(err)
	}

	diff := ref["b"].MaxAbsDiff(res.Final["b"])
	fmt.Printf("sequential:            %7.2fs\n", seq.Seconds())
	fmt.Printf("static distribution:   %7.2fs (efficiency %.3f)\n",
		static.Elapsed.Seconds(), metrics.Efficiency(seq, static.Elapsed, static.Usage))
	fmt.Printf("with load balancing:   %7.2fs (efficiency %.3f)\n",
		res.Elapsed.Seconds(), metrics.Efficiency(seq, res.Elapsed, res.Usage))
	fmt.Printf("strip grain: %d rows; %d moves (%d columns shifted)\n", res.Grain, res.Moves, res.UnitsMoved)
	fmt.Printf("max |parallel - sequential| = %g\n", diff)
}
