package repro

// One benchmark per table and figure of the paper's evaluation (plus the
// ablations implied by the text). Each benchmark regenerates its artifact
// at the Quick scale — the virtual-time calibration keeps simulated
// durations at paper scale regardless — and reports the headline quantity
// as a custom metric. Run the cmd/dlbbench tool for the full-scale tables.

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/loopir"
	"repro/internal/vtime"
)

// BenchmarkTable1Properties regenerates Table 1 (application properties).
func BenchmarkTable1Properties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSweep(b *testing.B, fn func(exp.Scale) (*exp.Sweep, error)) {
	var last *exp.Sweep
	for i := 0; i < b.N; i++ {
		sw, err := fn(exp.Quick)
		if err != nil {
			b.Fatal(err)
		}
		last = sw
	}
	if last != nil && len(last.Rows) > 0 {
		r := last.Rows[len(last.Rows)-1]
		b.ReportMetric(r.SpeedupDLB, "speedup@maxP")
		b.ReportMetric(r.EffDLB, "eff@maxP")
	}
}

// BenchmarkFig5MMDedicated regenerates Figure 5 (MM, dedicated homogeneous).
func BenchmarkFig5MMDedicated(b *testing.B) { benchSweep(b, exp.Fig5) }

// BenchmarkFig6SORDedicated regenerates Figure 6 (SOR, dedicated homogeneous).
func BenchmarkFig6SORDedicated(b *testing.B) { benchSweep(b, exp.Fig6) }

// BenchmarkFig7MMLoaded regenerates Figure 7 (MM, constant load on slave 0).
func BenchmarkFig7MMLoaded(b *testing.B) { benchSweep(b, exp.Fig7) }

// BenchmarkFig8SORLoaded regenerates Figure 8 (SOR, constant load on slave 0).
func BenchmarkFig8SORLoaded(b *testing.B) { benchSweep(b, exp.Fig8) }

// BenchmarkFig9Oscillating regenerates Figure 9 (work tracking under an
// oscillating load).
func BenchmarkFig9Oscillating(b *testing.B) {
	var moves int
	for i := 0; i < b.N; i++ {
		f, err := exp.Fig9(exp.Quick)
		if err != nil {
			b.Fatal(err)
		}
		moves = f.Moves
	}
	b.ReportMetric(float64(moves), "moves")
}

// BenchmarkAblationPipelining regenerates the §3.3 pipelined-vs-synchronous
// comparison.
func BenchmarkAblationPipelining(b *testing.B) {
	var rows []exp.PipeliningRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.AblationPipelining(exp.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		high := rows[len(rows)-1]
		b.ReportMetric(high.TimeSync.Seconds()/high.TimePipe.Seconds(), "sync/pipe@hilat")
	}
}

// BenchmarkAblationGrainSize regenerates the §4.4 grain-size sweep.
func BenchmarkAblationGrainSize(b *testing.B) {
	var rows []exp.GrainRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.AblationGrain(exp.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Grain == 0 {
			b.ReportMetric(float64(r.Used), "auto-grain-rows")
		}
	}
}

// BenchmarkAblationRefinements regenerates the §3.2 refinement ablation
// (filtering, 10% threshold, profitability).
func BenchmarkAblationRefinements(b *testing.B) {
	var rows []exp.RefinementRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.AblationRefinements(exp.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	var all, none int
	for _, r := range rows {
		switch r.Variant {
		case "all refinements":
			all = r.Moves
		case "none":
			none = r.Moves
		}
	}
	if all > 0 {
		b.ReportMetric(float64(none)/float64(all), "moves-none/all")
	}
}

// BenchmarkLUAdaptiveFrequency regenerates the §4.7 adaptive-frequency
// experiment.
func BenchmarkLUAdaptiveFrequency(b *testing.B) {
	var res *exp.LUResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = exp.AblationLUAdaptive(exp.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	if res != nil && len(res.Rows) > 0 {
		b.ReportMetric(float64(res.Rows[len(res.Rows)-1].SkipHooks), "final-skip")
	}
}

// BenchmarkBaselinesComparison regenerates the §6 related-work comparison
// (central task queue and diffusion vs the paper's DLB).
func BenchmarkBaselinesComparison(b *testing.B) {
	var rows []exp.BaselineRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.Baselines(exp.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Scenario == "one loaded" && r.Strategy == "DLB (this paper)" {
			b.ReportMetric(r.Eff, "dlb-eff-loaded")
		}
	}
}

// BenchmarkHeterogeneous regenerates the heterogeneous-environment
// experiment (paper conclusions).
func BenchmarkHeterogeneous(b *testing.B) {
	var rows []exp.HeteroRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.Heterogeneous(exp.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if len(r.Speeds) == 4 && r.Speeds[0] == 2 {
			b.ReportMetric(r.SpeedupDLB/r.Ideal, "dlb/ideal@2-1-1-half")
		}
	}
}

// BenchmarkFaultRecovery regenerates the fault-tolerance evaluation
// (crash/stall/join scenarios on the calibrated workloads) and reports the
// cost of surviving a crash near the end of the MM run.
func BenchmarkFaultRecovery(b *testing.B) {
	var rows []exp.FaultRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.FaultTolerance(exp.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	var free, crash exp.FaultRow
	for _, r := range rows {
		if r.App == "mm" && r.Scenario == "fault-free" {
			free = r
		}
		if r.App == "mm" && r.Scenario == "crash @30s" {
			crash = r
		}
	}
	if free.Eff > 0 {
		b.ReportMetric((free.Eff-crash.Eff)/free.Eff, "eff-loss@crash")
		b.ReportMetric(float64(crash.Recoveries), "recoveries")
	}
}

// --- component micro-benchmarks ---

// BenchmarkLoweredMatMul measures the lowered execution engine on the MM
// kernel (the per-element cost every slave pays).
func BenchmarkLoweredMatMul(b *testing.B) {
	in, err := loopir.NewInstance(loopir.MatMul(), map[string]int{"n": 64})
	if err != nil {
		b.Fatal(err)
	}
	code, err := in.Lower()
	if err != nil {
		b.Fatal(err)
	}
	flops := int64(3 * 64 * 64 * 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code.Run()
	}
	b.SetBytes(flops) // bytes stand in for flops per op
}

// BenchmarkBalancerStep measures one load-balancing decision for 8 slaves.
func BenchmarkBalancerStep(b *testing.B) {
	cfg := core.DefaultConfig(8, true)
	own := core.NewBlockOwnership(2048, 8)
	bal := core.NewBalancer(cfg, own, core.NewMoveCostModel(time.Millisecond, time.Microsecond))
	statuses := make([]core.Status, 8)
	for i := range statuses {
		statuses[i] = core.Status{Rate: 100 + float64(i%3)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bal.Step(statuses, 2048)
	}
}

// BenchmarkVtimeEvents measures the discrete-event kernel's event
// throughput with two processes exchanging messages.
func BenchmarkVtimeEvents(b *testing.B) {
	k := vtime.NewKernel()
	n := b.N
	ping := k.NewMailbox("ping")
	pong := k.NewMailbox("pong")
	k.Spawn("a", func(p *vtime.Proc) {
		for i := 0; i < n; i++ {
			p.Send(ping, i, time.Microsecond)
			p.Recv(pong)
		}
	})
	k.Spawn("b", func(p *vtime.Proc) {
		for i := 0; i < n; i++ {
			p.Recv(ping)
			p.Send(pong, i, time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkClusterCompute measures the quantum-granular contention model.
func BenchmarkClusterCompute(b *testing.B) {
	k := vtime.NewKernel()
	c := cluster.New(k, cluster.Config{Slaves: 1, Load: []cluster.LoadProfile{cluster.Constant(2)}})
	n := b.N
	c.Spawn("w", 0, func(p *vtime.Proc, node *cluster.Node) {
		for i := 0; i < n; i++ {
			node.Compute(p, 30*time.Millisecond)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
