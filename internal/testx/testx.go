// Package testx holds small helpers shared by the repository's tests.
package testx

import (
	"runtime"
	"testing"
)

// NeedMultiCore skips tests whose assertions only hold with real hardware
// parallelism — wall-clock speedup checks, multicore kernel scaling — when
// the process is pinned to a single core. Correctness tests must not use
// it: kernel results are bit-identical at every worker count, including on
// one core.
func NeedMultiCore(t testing.TB) {
	t.Helper()
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs multiple cores")
	}
}
