package fault

import "time"

// DetectorConfig tunes master-side failure detection. Detection is layered
// on the existing status/instruction exchange plus lightweight heartbeats
// slaves emit at load-balancing hook sites between contacts: a slave whose
// last sign of life is older than its lease — k missed hook deadlines'
// worth of time — is declared dead.
type DetectorConfig struct {
	// MissThreshold is k, the number of expected contact intervals a slave
	// may miss before it is declared dead. Default 3.
	MissThreshold int
	// MinLease is a floor on the lease, covering startup and very short
	// balancing periods. Default 2s.
	MinLease time.Duration
	// MaxLease caps the lease so huge hook-skip counts cannot make
	// detection arbitrarily slow. Default 20s.
	MaxLease time.Duration
	// HeartbeatEvery is how often slaves emit heartbeats between contacts
	// (checked at hook sites). Default 500ms.
	HeartbeatEvery time.Duration
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.MissThreshold <= 0 {
		c.MissThreshold = 3
	}
	if c.MinLease <= 0 {
		c.MinLease = 2 * time.Second
	}
	if c.MaxLease <= 0 {
		c.MaxLease = 20 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 500 * time.Millisecond
	}
	return c
}

// Detector tracks per-slave liveness leases on the master.
type Detector struct {
	cfg      DetectorConfig
	lastSeen []time.Duration
	interval time.Duration // observed contact-round interval
}

// NewDetector creates a detector for the given number of slave slots; every
// slot's lease starts at time zero.
func NewDetector(cfg DetectorConfig, slots int) *Detector {
	return &Detector{cfg: cfg.withDefaults(), lastSeen: make([]time.Duration, slots)}
}

// Config returns the effective (defaulted) configuration.
func (d *Detector) Config() DetectorConfig { return d.cfg }

// Grow extends the detector to cover new slave slots (elastic join),
// starting their leases at now.
func (d *Detector) Grow(slots int, now time.Duration) {
	for len(d.lastSeen) < slots {
		d.lastSeen = append(d.lastSeen, now)
	}
}

// Observe records a sign of life (status, heartbeat, checkpoint, join)
// from the slave at time now.
func (d *Detector) Observe(slave int, now time.Duration) {
	if slave >= 0 && slave < len(d.lastSeen) && now > d.lastSeen[slave] {
		d.lastSeen[slave] = now
	}
}

// ObserveInterval records the time between consecutive contact rounds, the
// base unit of the lease ("k missed hook deadlines").
func (d *Detector) ObserveInterval(dt time.Duration) {
	if dt > 0 {
		d.interval = dt
	}
}

// Reset restarts every live slot's lease at now (after a recovery epoch,
// when slaves re-execute from the checkpoint and contact times shift).
func (d *Detector) Reset(now time.Duration) {
	for i := range d.lastSeen {
		d.lastSeen[i] = now
	}
}

// Lease is the current time budget between signs of life: k contact
// intervals, floored by MinLease (it also covers heartbeat gaps) and capped
// by MaxLease.
func (d *Detector) Lease() time.Duration {
	l := time.Duration(d.cfg.MissThreshold) * d.interval
	if hb := time.Duration(d.cfg.MissThreshold) * d.cfg.HeartbeatEvery; l < hb {
		l = hb
	}
	if l < d.cfg.MinLease {
		l = d.cfg.MinLease
	}
	if l > d.cfg.MaxLease {
		l = d.cfg.MaxLease
	}
	return l
}

// Deadline is the earliest future time at which the given slave could be
// declared dead.
func (d *Detector) Deadline(slave int) time.Duration {
	return d.lastSeen[slave] + d.Lease()
}

// Expired returns the slaves among candidates whose lease has run out at
// time now.
func (d *Detector) Expired(now time.Duration, candidates []int) []int {
	var out []int
	lease := d.Lease()
	for _, s := range candidates {
		if now-d.lastSeen[s] >= lease {
			out = append(out, s)
		}
	}
	return out
}
