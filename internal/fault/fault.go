// Package fault is the fault-tolerance subsystem for the dlb runtime: it
// describes failure scenarios (deterministic, time-scheduled fault plans),
// implements the master-side failure detector (heartbeat leases layered on
// the status/instruction exchange), and decides when periodic checkpoints
// are worth their cost (the same profitability reasoning internal/core
// applies to work movement).
//
// The paper's master/slave runtime assumes every workstation survives the
// whole run; a single crashed or stalled slave deadlocks the pipeline. This
// package supplies the pieces the runtime needs to shed that assumption:
// inject faults (for evaluation), detect dead nodes, recover their work
// from checkpoints, and admit new nodes mid-run. The same types drive both
// the virtual-time simulated cluster (fully deterministic) and the
// wall-clock RunReal environment.
package fault

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Kind classifies a fault event.
type Kind int

const (
	// Crash halts the slave permanently at the scheduled time: its process
	// stops at its first runtime operation at or after At and never
	// communicates again.
	Crash Kind = iota
	// Stall freezes the slave for Duration starting at At: it performs no
	// computation and sends no messages during the window, then resumes. A
	// stall shorter than the detector's lease is tolerated; a longer one
	// looks like a crash and leads to eviction (the stalled slave is then
	// killed as a zombie when it wakes).
	Stall
	// LinkDrop silently discards every message to or from the slave during
	// [At, At+Duration): senders pay their overhead but nothing is
	// delivered. Missing data eventually trips the detector.
	LinkDrop
	// Join schedules a new, idle node to register with the master at time
	// At. The master admits it at the next checkpoint boundary and the
	// balancer folds it into the subsequent redistribution.
	Join
)

func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Stall:
		return "stall"
	case LinkDrop:
		return "linkdrop"
	case Join:
		return "join"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scheduled fault. Times are measured from the start of the
// run — virtual time under the simulated cluster, wall-clock time under
// RunReal; the same Plan describes both.
type Event struct {
	Kind  Kind
	Slave int // target slave (for Join: ignored; joiner ids are assigned)
	At    time.Duration
	// Duration applies to Stall and LinkDrop windows.
	Duration time.Duration
}

func (e Event) String() string {
	switch e.Kind {
	case Stall, LinkDrop:
		return fmt.Sprintf("%v slave %d at %v for %v", e.Kind, e.Slave, e.At, e.Duration)
	case Join:
		return fmt.Sprintf("join at %v", e.At)
	}
	return fmt.Sprintf("%v slave %d at %v", e.Kind, e.Slave, e.At)
}

// Plan is a deterministic fault schedule for one run.
type Plan struct {
	Events []Event
}

// CrashAt appends a crash of the slave at time t.
func (p *Plan) CrashAt(slave int, t time.Duration) *Plan {
	p.Events = append(p.Events, Event{Kind: Crash, Slave: slave, At: t})
	return p
}

// StallAt appends a transient stall of the slave during [t, t+d).
func (p *Plan) StallAt(slave int, t, d time.Duration) *Plan {
	p.Events = append(p.Events, Event{Kind: Stall, Slave: slave, At: t, Duration: d})
	return p
}

// DropLinkAt appends a link outage for the slave during [t, t+d).
func (p *Plan) DropLinkAt(slave int, t, d time.Duration) *Plan {
	p.Events = append(p.Events, Event{Kind: LinkDrop, Slave: slave, At: t, Duration: d})
	return p
}

// JoinAt appends the registration of a new node at time t.
func (p *Plan) JoinAt(t time.Duration) *Plan {
	p.Events = append(p.Events, Event{Kind: Join, At: t})
	return p
}

// Joins returns the scheduled join times, ascending. Joiner node ids are
// assigned in this order, after the initial slaves.
func (p *Plan) Joins() []time.Duration {
	if p == nil {
		return nil
	}
	var out []time.Duration
	for _, e := range p.Events {
		if e.Kind == Join {
			out = append(out, e.At)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate rejects malformed plans (negative times, negative slave ids for
// node faults, windows without durations).
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for _, e := range p.Events {
		if e.At < 0 {
			return fmt.Errorf("fault: event %v before time zero", e)
		}
		switch e.Kind {
		case Crash:
			if e.Slave < 0 {
				return fmt.Errorf("fault: crash of invalid slave %d", e.Slave)
			}
		case Stall, LinkDrop:
			if e.Slave < 0 {
				return fmt.Errorf("fault: %v of invalid slave %d", e.Kind, e.Slave)
			}
			if e.Duration <= 0 {
				return fmt.Errorf("fault: %v with non-positive duration", e.Kind)
			}
		case Join:
		default:
			return fmt.Errorf("fault: unknown event kind %d", int(e.Kind))
		}
	}
	return nil
}

// ParseSpec parses a comma-separated textual fault plan, the command-line
// syntax shared by dlbrun and dlbbench:
//
//	crash:<slave>@<sec>            crash slave at t
//	stall:<slave>@<sec>:<sec>      stall slave at t for d
//	drop:<slave>@<sec>:<sec>       drop slave's links at t for d
//	join@<sec>                     a new node registers at t
// FormatSpec renders a plan back to the ParseSpec syntax. The distributed
// runtime ships fault schedules to slave daemons as spec strings (the plan
// structs never cross the wire), so FormatSpec ∘ ParseSpec must be the
// identity on every valid plan.
func FormatSpec(p *Plan) string {
	if p == nil || len(p.Events) == 0 {
		return ""
	}
	parts := make([]string, 0, len(p.Events))
	for _, e := range p.Events {
		switch e.Kind {
		case Crash:
			parts = append(parts, fmt.Sprintf("crash:%d@%g", e.Slave, e.At.Seconds()))
		case Stall:
			parts = append(parts, fmt.Sprintf("stall:%d@%g:%g", e.Slave, e.At.Seconds(), e.Duration.Seconds()))
		case LinkDrop:
			parts = append(parts, fmt.Sprintf("drop:%d@%g:%g", e.Slave, e.At.Seconds(), e.Duration.Seconds()))
		case Join:
			parts = append(parts, fmt.Sprintf("join@%g", e.At.Seconds()))
		}
	}
	return strings.Join(parts, ",")
}

func ParseSpec(spec string) (*Plan, error) {
	p := &Plan{}
	if spec == "" || spec == "none" {
		return p, nil
	}
	for _, part := range splitComma(spec) {
		var slave int
		var at, dur float64
		switch {
		case scan(part, "crash:%d@%g", &slave, &at):
			p.CrashAt(slave, secs(at))
		case scan(part, "stall:%d@%g:%g", &slave, &at, &dur):
			p.StallAt(slave, secs(at), secs(dur))
		case scan(part, "drop:%d@%g:%g", &slave, &at, &dur):
			p.DropLinkAt(slave, secs(at), secs(dur))
		case scan(part, "join@%g", &at):
			p.JoinAt(secs(at))
		default:
			return nil, fmt.Errorf("fault: bad event %q", part)
		}
	}
	return p, p.Validate()
}

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func scan(s, format string, args ...interface{}) bool {
	n, err := fmt.Sscanf(s, format, args...)
	return err == nil && n == len(args)
}
