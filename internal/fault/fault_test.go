package fault

import (
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("crash:2@30,stall:0@5:3,drop:1@10:2,join@40")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(p.Events))
	}
	want := []Event{
		{Kind: Crash, Slave: 2, At: 30 * time.Second},
		{Kind: Stall, Slave: 0, At: 5 * time.Second, Duration: 3 * time.Second},
		{Kind: LinkDrop, Slave: 1, At: 10 * time.Second, Duration: 2 * time.Second},
		{Kind: Join, At: 40 * time.Second},
	}
	for i, w := range want {
		if p.Events[i] != w {
			t.Errorf("event %d: got %+v, want %+v", i, p.Events[i], w)
		}
	}
	if joins := p.Joins(); len(joins) != 1 || joins[0] != 40*time.Second {
		t.Errorf("joins = %v", joins)
	}
	if _, err := ParseSpec("explode:1@2"); err == nil {
		t.Error("bad spec accepted")
	}
	if p, err := ParseSpec("none"); err != nil || len(p.Events) != 0 {
		t.Errorf("none: %v %v", p, err)
	}
}

func TestValidate(t *testing.T) {
	bad := []*Plan{
		{Events: []Event{{Kind: Crash, Slave: -1, At: time.Second}}},
		{Events: []Event{{Kind: Stall, Slave: 0, At: time.Second}}}, // no duration
		{Events: []Event{{Kind: Crash, Slave: 0, At: -time.Second}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d accepted", i)
		}
	}
	good := (&Plan{}).CrashAt(1, 5*time.Second).StallAt(0, time.Second, time.Second).JoinAt(10 * time.Second)
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
}

func TestInjector(t *testing.T) {
	p := (&Plan{}).
		CrashAt(2, 30*time.Second).
		StallAt(0, 5*time.Second, 3*time.Second).
		DropLinkAt(1, 10*time.Second, 2*time.Second)
	inj := NewInjector(p)
	if inj.Empty() {
		t.Fatal("injector reported empty")
	}
	if inj.Crashed(2, 29*time.Second) || !inj.Crashed(2, 30*time.Second) || !inj.Crashed(2, time.Hour) {
		t.Error("crash window wrong")
	}
	if inj.Crashed(0, time.Hour) {
		t.Error("uncrashed slave reported crashed")
	}
	if got := inj.StallUntil(0, 6*time.Second); got != 8*time.Second {
		t.Errorf("StallUntil = %v, want 8s", got)
	}
	if got := inj.StallUntil(0, 8*time.Second); got != 0 {
		t.Errorf("stall after window = %v", got)
	}
	if !inj.LinkDown(1, 11*time.Second) || inj.LinkDown(1, 13*time.Second) || inj.LinkDown(0, 11*time.Second) {
		t.Error("link windows wrong")
	}
	if !NewInjector(nil).Empty() {
		t.Error("nil plan not empty")
	}
}

func TestDetectorLeases(t *testing.T) {
	d := NewDetector(DetectorConfig{MissThreshold: 3, MinLease: 2 * time.Second, MaxLease: 20 * time.Second}, 4)
	// No interval observed yet: lease is the floor.
	if d.Lease() != 2*time.Second {
		t.Errorf("initial lease = %v", d.Lease())
	}
	d.ObserveInterval(1500 * time.Millisecond)
	if d.Lease() != 4500*time.Millisecond {
		t.Errorf("lease = %v, want 4.5s", d.Lease())
	}
	d.ObserveInterval(time.Hour)
	if d.Lease() != 20*time.Second {
		t.Errorf("lease cap = %v", d.Lease())
	}
	d.ObserveInterval(time.Second)

	for s := 0; s < 4; s++ {
		d.Observe(s, 10*time.Second)
	}
	d.Observe(1, 14*time.Second)
	// Lease 3s: at t=13.5s slaves 0,2,3 (last seen 10s) are expired.
	got := d.Expired(13500*time.Millisecond, []int{0, 1, 2, 3})
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Errorf("expired = %v", got)
	}
	// Observe never moves a lease backwards.
	d.Observe(1, 12*time.Second)
	if d.Deadline(1) != 14*time.Second+d.Lease() {
		t.Errorf("deadline moved backwards: %v", d.Deadline(1))
	}
	d.Grow(6, 30*time.Second)
	if len(d.Expired(30*time.Second+d.Lease()/2, []int{4, 5})) != 0 {
		t.Error("fresh slots expired immediately")
	}
	d.Reset(40 * time.Second)
	if len(d.Expired(40*time.Second+d.Lease()/2, []int{0, 1, 2, 3, 4, 5})) != 0 {
		t.Error("reset did not refresh leases")
	}
}

func TestCkptPolicy(t *testing.T) {
	p := CkptPolicy{MaxOverhead: 0.05, MinInterval: 2 * time.Second, MaxInterval: 15 * time.Second}
	if p.Should(time.Second, 0, 0) {
		t.Error("checkpoint before MinInterval")
	}
	// 100ms cost needs >= 2s of amortization at 5%.
	if !p.Should(3*time.Second, 0, 100*time.Millisecond) {
		t.Error("cheap checkpoint rejected")
	}
	// 1s cost needs 20s; at 10s it is unprofitable ...
	if p.Should(10*time.Second, 0, time.Second) {
		t.Error("expensive checkpoint accepted early")
	}
	// ... but MaxInterval forces it regardless.
	if !p.Should(15*time.Second, 0, time.Second) {
		t.Error("MaxInterval did not force a checkpoint")
	}
	if (CkptPolicy{Disable: true}).Should(time.Hour, 0, 0) {
		t.Error("disabled policy checkpointed")
	}
}

func TestLog(t *testing.T) {
	var l Log
	l.Add(30*time.Second, LogEvict, 2, "lease expired")
	l.Add(31*time.Second, LogRecover, -1, "epoch 1 from hook 12")
	if l.Count(LogEvict) != 1 || l.Count(LogRecover) != 1 || l.Count(LogJoin) != 0 {
		t.Errorf("counts wrong: %v", l.Events)
	}
	s := l.String()
	if s == "" || l.Events[0].String() == "" {
		t.Error("empty rendering")
	}
	var nilLog *Log
	nilLog.Add(0, LogCrash, 0, "ok") // must not panic
}
