package fault

import (
	"sort"
	"time"
)

// Injector answers, for a given slave and a given time since run start,
// whether a scheduled fault takes effect. It is a pure function of the
// Plan, so the simulated runtime stays a deterministic function of its
// inputs; the wall-clock runtime consults the same schedule against real
// timers. Each slave's runtime endpoint checks the injector at every
// operation (compute charge, send, receive), which gives crash semantics
// of "halts at the first operation at or after the scheduled time".
type Injector struct {
	crash  map[int]time.Duration
	stalls map[int][]window
	drops  map[int][]window
}

type window struct{ from, to time.Duration }

// NewInjector compiles a plan into per-slave fault schedules. A nil plan
// yields an injector that never faults.
func NewInjector(p *Plan) *Injector {
	inj := &Injector{
		crash:  map[int]time.Duration{},
		stalls: map[int][]window{},
		drops:  map[int][]window{},
	}
	if p == nil {
		return inj
	}
	for _, e := range p.Events {
		switch e.Kind {
		case Crash:
			if t, ok := inj.crash[e.Slave]; !ok || e.At < t {
				inj.crash[e.Slave] = e.At
			}
		case Stall:
			inj.stalls[e.Slave] = append(inj.stalls[e.Slave], window{e.At, e.At + e.Duration})
		case LinkDrop:
			inj.drops[e.Slave] = append(inj.drops[e.Slave], window{e.At, e.At + e.Duration})
		}
	}
	for _, m := range []map[int][]window{inj.stalls, inj.drops} {
		for s, ws := range m {
			sort.Slice(ws, func(i, j int) bool { return ws[i].from < ws[j].from })
			m[s] = ws
		}
	}
	return inj
}

// Empty reports whether the injector schedules no node faults at all
// (joins are handled separately by the runtime).
func (inj *Injector) Empty() bool {
	return len(inj.crash) == 0 && len(inj.stalls) == 0 && len(inj.drops) == 0
}

// Crashed reports whether the slave's crash time has passed.
func (inj *Injector) Crashed(slave int, now time.Duration) bool {
	t, ok := inj.crash[slave]
	return ok && now >= t
}

// StallUntil returns the end of a stall window covering now, or 0 if the
// slave is not stalled at now.
func (inj *Injector) StallUntil(slave int, now time.Duration) time.Duration {
	for _, w := range inj.stalls[slave] {
		if now >= w.from && now < w.to {
			return w.to
		}
		if w.from > now {
			break
		}
	}
	return 0
}

// LinkDown reports whether the slave's network link is dropped at now.
// A message is lost when the link of either its sender or its receiver is
// down.
func (inj *Injector) LinkDown(slave int, now time.Duration) bool {
	for _, w := range inj.drops[slave] {
		if now >= w.from && now < w.to {
			return true
		}
		if w.from > now {
			break
		}
	}
	return false
}
