package fault

import "time"

// CkptPolicy throttles periodic checkpoints by the same profitability
// reasoning internal/core applies to work movement: a checkpoint whose
// estimated cost exceeds MaxOverhead of the interval since the previous
// one is postponed, so checkpointing overhead is bounded by MaxOverhead of
// run time no matter how cheap or expensive snapshots are.
type CkptPolicy struct {
	// MaxOverhead is the tolerated fraction of run time spent
	// checkpointing. Default 0.05.
	MaxOverhead float64
	// MinInterval floors the time between checkpoints. Default 2s.
	MinInterval time.Duration
	// MaxInterval caps it (bounding the recomputation a failure can cost).
	// Default 15s.
	MaxInterval time.Duration
	// Disable turns periodic checkpointing off entirely; recovery then
	// restarts from the initial distribution.
	Disable bool
}

func (p CkptPolicy) withDefaults() CkptPolicy {
	if p.MaxOverhead <= 0 {
		p.MaxOverhead = 0.05
	}
	if p.MinInterval <= 0 {
		p.MinInterval = 2 * time.Second
	}
	if p.MaxInterval <= 0 {
		p.MaxInterval = 15 * time.Second
	}
	return p
}

// Should reports whether a checkpoint is due at now, given the time of the
// last committed checkpoint and the estimated cost of taking a new one.
func (p CkptPolicy) Should(now, lastCkpt, estCost time.Duration) bool {
	p = p.withDefaults()
	if p.Disable {
		return false
	}
	since := now - lastCkpt
	if since < p.MinInterval {
		return false
	}
	if since >= p.MaxInterval {
		return true
	}
	// Profitability: amortized overhead estCost/since must stay under
	// MaxOverhead.
	return float64(estCost) <= p.MaxOverhead*float64(since)
}

// Checkpoint is the master's latest committed global snapshot: a consistent
// cut taken when every slave sits at the same load-balancing hook, plus the
// resume coordinates needed to fast-forward a slave's control flow back to
// that hook. Hook -1 denotes the initial distribution (resume from the
// start of the computation).
type Checkpoint struct {
	Seq         int
	Hook        int // hook index the snapshot was taken at (-1: initial)
	Phase       int // contact-phase counter to resume with
	NextContact int // hook index of the next master contact
	At          time.Duration

	// Owner and Active mirror the ownership map at the snapshot; Slaves is
	// its slave-slot count (membership may have grown since the run began).
	Slaves int
	Owner  []int
	Active []bool

	// Dist holds every distributed array's slices: array -> unit -> values.
	Dist map[string]map[int][]float64
	// Replicated holds the mutated replicated arrays (read-only replicated
	// arrays are reconstructed from the initial data instead of being
	// re-shipped every checkpoint).
	Replicated map[string][]float64
	// RedSnap holds the reduction-snapshot values backing Combine deltas.
	RedSnap map[string][]float64
	// Red holds each slave's own reduction arrays (mid-interval partial
	// accumulations differ per slave): slave -> array -> values.
	Red map[int]map[string][]float64
}
