package fault

import (
	"fmt"
	"strings"
	"time"
)

// LogKind classifies a runtime fault-handling event.
type LogKind string

const (
	LogCrash      LogKind = "crash"      // injected crash took effect
	LogStall      LogKind = "stall"      // injected stall window entered
	LogEvict      LogKind = "evict"      // master declared a slave dead
	LogCheckpoint LogKind = "checkpoint" // master committed a checkpoint
	LogRecover    LogKind = "recover"    // recovery epoch started
	LogJoin       LogKind = "join"       // a new node registered
	LogAdopt      LogKind = "adopt"      // a joiner was admitted
)

// LogEvent is one entry of the deterministic fault-handling trace. Under
// the simulated cluster the sequence of events (kinds, slaves, virtual
// timestamps) is a pure function of the run's inputs, which the
// determinism tests assert.
type LogEvent struct {
	At    time.Duration
	Kind  LogKind
	Slave int // -1 when not slave-specific
	// Detail carries event-specific values (checkpoint hook, epoch, ...).
	Detail string
}

func (e LogEvent) String() string {
	if e.Slave >= 0 {
		return fmt.Sprintf("%8.2fs %-10s slave %d %s", e.At.Seconds(), e.Kind, e.Slave, e.Detail)
	}
	return fmt.Sprintf("%8.2fs %-10s %s", e.At.Seconds(), e.Kind, e.Detail)
}

// Log accumulates fault-handling events in order.
type Log struct {
	Events []LogEvent
}

// Add appends an event.
func (l *Log) Add(at time.Duration, kind LogKind, slave int, format string, args ...interface{}) {
	if l == nil {
		return
	}
	l.Events = append(l.Events, LogEvent{At: at, Kind: kind, Slave: slave, Detail: fmt.Sprintf(format, args...)})
}

// Count returns the number of events of the given kind.
func (l *Log) Count(kind LogKind) int {
	n := 0
	for _, e := range l.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// String renders the trace, one event per line.
func (l *Log) String() string {
	var b strings.Builder
	for _, e := range l.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
