package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/aot"
	"repro/internal/loopir"
)

// The kernel experiment: how much of the slave's per-unit compute cost the
// compiled loop kernels remove, and how the multicore range kernels scale.
// Each library program is run at four tiers — the tree-walking interpreter
// (the differential oracle), the lowered closure engine, the compiled
// kernel, and the AOT-built native kernel — plus a worker-count sweep of
// the parallel range kernel (VM and AOT) on the jacobi stencil, and a
// cold/warm start-latency table for the AOT build cache. The same
// comparisons exist as go benchmarks (BenchmarkKernel,
// BenchmarkRangeKernelWorkers in internal/loopir); this driver renders them
// as an experiment artifact plus machine-readable JSON.

// KernelRow is one benchmark measurement.
type KernelRow struct {
	Bench   string  `json:"bench"`   // e.g. "kernel/jacobi" or "workers/jacobi-sweep"
	Variant string  `json:"variant"` // "interp"/"lowered"/"kernel"/"aot" or "w=1".."aot-w=4"
	NsPerOp float64 `json:"ns_per_op"`
	Flops   int64   `json:"flops_per_op"`
	MFlops  float64 `json:"mflops"`
}

// AotStartRow is one AOT start-latency measurement: how long Build takes to
// hand back runnable kernels from each cache state.
type AotStartRow struct {
	// Phase is "cold" (toolchain runs), "warm-disk" (artifact reloaded
	// from the on-disk cache) or "warm-memo" (in-process memo hit).
	Phase string `json:"phase"`
	// Mode is the artifact kind, "plugin" or "exec".
	Mode   string  `json:"mode"`
	Millis float64 `json:"millis"`
}

// KernelReport is the experiment's result: all rows plus the
// baseline-over-optimized time ratios (">1" means the optimized tier wins).
// For "kernel/*" benches the baseline is the interpreter (and aot-vs-*
// entries compare the AOT tier to the interpreter and the VM kernel); for
// "workers/*" it is the single-worker kernel.
type KernelReport struct {
	// CPUs is runtime.NumCPU() on the measuring host. Worker-scaling rows
	// are meaningless without it: on a single-CPU box every w>1 row
	// flatlines at the w=1 rate, by construction rather than by defect.
	CPUs     int                `json:"cpus"`
	Note     string             `json:"note,omitempty"`
	Rows     []KernelRow        `json:"rows"`
	AotStart []AotStartRow      `json:"aot_start"`
	Speedups map[string]float64 `json:"speedups"`
}

// kernelRow runs fn under testing.Benchmark and records it.
func kernelRow(bench, variant string, flops int64, fn func(b *testing.B)) KernelRow {
	r := testing.Benchmark(fn)
	ns := float64(r.NsPerOp())
	mf := 0.0
	if ns > 0 {
		mf = float64(flops) / ns * 1e9 / 1e6
	}
	return KernelRow{Bench: bench, Variant: variant, NsPerOp: ns, Flops: flops, MFlops: mf}
}

// Kernel runs the loop-kernel microbenchmarks: interpreter vs lowered
// closures vs compiled kernel on the stencil (jacobi), pipelined (sor) and
// matrix-product (mm) programs, and the parallel range kernel's worker
// scaling on the jacobi sweep.
func Kernel(s Scale) (*KernelReport, error) {
	type bcase struct {
		name   string
		params map[string]int
	}
	cases := []bcase{
		{"jacobi", map[string]int{"n": 96, "maxiter": 2}},
		{"sor", map[string]int{"n": 96, "maxiter": 2}},
		{"mm", map[string]int{"n": 64}},
	}
	sweepN := 256
	if s.MM <= Quick.MM { // reduced scale for tests
		cases = []bcase{
			{"jacobi", map[string]int{"n": 32, "maxiter": 2}},
			{"sor", map[string]int{"n": 32, "maxiter": 2}},
			{"mm", map[string]int{"n": 24}},
		}
		sweepN = 64
	}
	rep := &KernelReport{CPUs: runtime.NumCPU(), Speedups: map[string]float64{}}
	if rep.CPUs == 1 {
		rep.Note = "single-CPU host: workers/* rows cannot scale and flatline at the w=1 rate"
	}

	for _, c := range cases {
		prog := loopir.Library()[c.name]
		if prog == nil {
			return nil, fmt.Errorf("exp: unknown program %q", c.name)
		}
		flops := loopir.ExactFlops(prog.Body, c.params)
		bench := "kernel/" + c.name

		interpIn, err := loopir.NewInstance(prog, c.params)
		if err != nil {
			return nil, err
		}
		interp := kernelRow(bench, "interp", flops, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := interpIn.Interpret(); err != nil {
					b.Fatal(err)
				}
			}
		})

		lowIn, err := loopir.NewInstance(prog, c.params)
		if err != nil {
			return nil, err
		}
		code, err := lowIn.Lower()
		if err != nil {
			return nil, err
		}
		lowered := kernelRow(bench, "lowered", flops, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				code.Run()
			}
		})

		kernIn, err := loopir.NewInstance(prog, c.params)
		if err != nil {
			return nil, err
		}
		k, err := kernIn.CompileKernel(kernIn.Prog.Body)
		if err != nil {
			return nil, err
		}
		kernel := kernelRow(bench, "kernel", flops, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k.Run(nil)
			}
		})

		aotIn, err := loopir.NewInstance(prog, c.params)
		if err != nil {
			return nil, err
		}
		ap, err := aot.Build(aot.Spec{Prog: prog, Params: c.params, WholeBody: true})
		if err != nil {
			return nil, fmt.Errorf("exp: aot build %s: %w", c.name, err)
		}
		bk, err := ap.Kernels[0].Bind(aotIn.Arrays)
		if err != nil {
			return nil, err
		}
		aotRow := kernelRow(bench, "aot", flops, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bk.Run(0, 0, nil)
			}
		})

		rep.Rows = append(rep.Rows, interp, lowered, kernel, aotRow)
		if kernel.NsPerOp > 0 {
			rep.Speedups[bench] = interp.NsPerOp / kernel.NsPerOp
		}
		if aotRow.NsPerOp > 0 {
			rep.Speedups[bench+" aot-vs-interp"] = interp.NsPerOp / aotRow.NsPerOp
			rep.Speedups[bench+" aot-vs-kernel"] = kernel.NsPerOp / aotRow.NsPerOp
		}
	}

	// Worker scaling of the parallel range kernel on one jacobi sweep.
	params := map[string]int{"n": sweepN, "maxiter": 1}
	prog := loopir.Library()["jacobi"]
	in, err := loopir.NewInstance(prog, params)
	if err != nil {
		return nil, err
	}
	iter := in.Prog.Body[0].(*loopir.Loop)
	sweep := iter.Body[0].(*loopir.Loop)
	rk, err := in.CompileRangeKernel(sweep.Var, sweep.Body)
	if err != nil {
		return nil, err
	}
	if !rk.ParallelSafe() {
		return nil, fmt.Errorf("exp: jacobi sweep not parallel-safe: %s", rk.SeqReason())
	}
	sweepFlops := loopir.ExactFlops(sweep.Body, params) * int64(sweepN-2)
	bench := "workers/jacobi-sweep"
	var base, best float64
	for _, w := range []int{1, 2, 4} {
		w := w
		row := kernelRow(bench, fmt.Sprintf("w=%d", w), sweepFlops, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rk.RunParallel(1, sweepN-1, nil, w)
			}
		})
		rep.Rows = append(rep.Rows, row)
		if w == 1 {
			base = row.NsPerOp
		}
		if best == 0 || row.NsPerOp < best {
			best = row.NsPerOp
		}
	}
	if best > 0 {
		rep.Speedups[bench] = base / best
	}

	// The same sweep through the AOT range kernel, to show the native
	// parallel path next to the VM one.
	sp, err := aot.Build(aot.Spec{
		Prog:    prog,
		Params:  params,
		Regions: []aot.Region{{DistVar: sweep.Var, Body: sweep.Body}},
	})
	if err != nil {
		return nil, fmt.Errorf("exp: aot build jacobi sweep: %w", err)
	}
	sbk, err := sp.Kernels[0].Bind(in.Arrays)
	if err != nil {
		return nil, err
	}
	for _, w := range []int{1, 2, 4} {
		w := w
		row := kernelRow(bench, fmt.Sprintf("aot-w=%d", w), sweepFlops, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sbk.RunParallel(1, sweepN-1, nil, w)
			}
		})
		rep.Rows = append(rep.Rows, row)
		if w == 1 && row.NsPerOp > 0 {
			rep.Speedups[bench+" aot-vs-kernel"] = base / row.NsPerOp
		}
	}

	if err := aotStartLatency(rep, prog, params); err != nil {
		return nil, err
	}
	return rep, nil
}

// aotStartLatency measures how long aot.Build takes from each cache state:
// cold (fresh cache directory, the toolchain runs), warm-disk (same
// directory, in-process memo cleared, artifact reloaded from disk) and
// warm-memo (repeat Build in the same process).
func aotStartLatency(rep *KernelReport, prog *loopir.Program, params map[string]int) error {
	dir, err := os.MkdirTemp("", "dlb-aot-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	spec := aot.Spec{Prog: prog, Params: params, WholeBody: true, CacheDir: dir}
	for _, phase := range []string{"cold", "warm-disk", "warm-memo"} {
		if phase == "warm-disk" {
			aot.ClearMemory()
		}
		t0 := time.Now()
		p, err := aot.Build(spec)
		if err != nil {
			return fmt.Errorf("exp: aot start latency (%s): %w", phase, err)
		}
		rep.AotStart = append(rep.AotStart, AotStartRow{
			Phase:  phase,
			Mode:   p.Info.Mode,
			Millis: float64(time.Since(t0).Microseconds()) / 1e3,
		})
	}
	return nil
}

// RenderKernel formats the report as the experiment's text artifact.
func RenderKernel(rep *KernelReport) string {
	var sb strings.Builder
	sb.WriteString("Compiled loop kernels: interpreter vs lowered closures vs kernel vs AOT, and worker scaling\n")
	sb.WriteString("(kernel/* speedup = interp/kernel; aot-vs-* = AOT over that tier; workers/* = one worker over the best)\n")
	fmt.Fprintf(&sb, "host CPUs: %d", rep.CPUs)
	if rep.Note != "" {
		fmt.Fprintf(&sb, " — %s", rep.Note)
	}
	sb.WriteString("\n\n")
	fmt.Fprintf(&sb, "%-22s %-8s %14s %16s %10s\n",
		"bench", "variant", "ns/op", "flops/op", "MFLOPS")
	prev := ""
	for _, r := range rep.Rows {
		if prev != "" && r.Bench != prev {
			sb.WriteString("\n")
		}
		prev = r.Bench
		fmt.Fprintf(&sb, "%-22s %-8s %14.0f %16d %10.1f\n",
			r.Bench, r.Variant, r.NsPerOp, r.Flops, r.MFlops)
	}
	sb.WriteString("\nspeedups:\n")
	keys := make([]string, 0, len(rep.Speedups))
	for k := range rep.Speedups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "  %-38s %.2fx\n", k, rep.Speedups[k])
	}
	if len(rep.AotStart) > 0 {
		sb.WriteString("\naot start latency (build + load until kernels are runnable):\n")
		fmt.Fprintf(&sb, "  %-10s %-8s %10s\n", "phase", "mode", "ms")
		for _, r := range rep.AotStart {
			fmt.Fprintf(&sb, "  %-10s %-8s %10.2f\n", r.Phase, r.Mode, r.Millis)
		}
	}
	return sb.String()
}

// KernelJSON renders the machine-readable artifact (BENCH_kernel.json).
func KernelJSON(rep *KernelReport) string {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b) + "\n"
}
