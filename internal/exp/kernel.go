package exp

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/loopir"
)

// The kernel experiment: how much of the slave's per-unit compute cost the
// compiled loop kernels remove, and how the multicore range kernels scale.
// Each library program is run at three tiers — the tree-walking interpreter
// (the differential oracle), the lowered closure engine, and the compiled
// kernel — plus a worker-count sweep of the parallel range kernel on the
// jacobi stencil. The same comparisons exist as go benchmarks
// (BenchmarkKernel, BenchmarkRangeKernelWorkers in internal/loopir); this
// driver renders them as an experiment artifact plus machine-readable JSON.

// KernelRow is one benchmark measurement.
type KernelRow struct {
	Bench   string  `json:"bench"`   // e.g. "kernel/jacobi" or "workers/jacobi-sweep"
	Variant string  `json:"variant"` // "interp"/"lowered"/"kernel" or "w=1".."w=4"
	NsPerOp float64 `json:"ns_per_op"`
	Flops   int64   `json:"flops_per_op"`
	MFlops  float64 `json:"mflops"`
}

// KernelReport is the experiment's result: all rows plus the
// baseline-over-optimized time ratios (">1" means the kernel wins). For
// "kernel/*" benches the baseline is the interpreter; for "workers/*" it is
// the single-worker kernel.
type KernelReport struct {
	Rows     []KernelRow        `json:"rows"`
	Speedups map[string]float64 `json:"speedups"`
}

// kernelRow runs fn under testing.Benchmark and records it.
func kernelRow(bench, variant string, flops int64, fn func(b *testing.B)) KernelRow {
	r := testing.Benchmark(fn)
	ns := float64(r.NsPerOp())
	mf := 0.0
	if ns > 0 {
		mf = float64(flops) / ns * 1e9 / 1e6
	}
	return KernelRow{Bench: bench, Variant: variant, NsPerOp: ns, Flops: flops, MFlops: mf}
}

// Kernel runs the loop-kernel microbenchmarks: interpreter vs lowered
// closures vs compiled kernel on the stencil (jacobi), pipelined (sor) and
// matrix-product (mm) programs, and the parallel range kernel's worker
// scaling on the jacobi sweep.
func Kernel(s Scale) (*KernelReport, error) {
	type bcase struct {
		name   string
		params map[string]int
	}
	cases := []bcase{
		{"jacobi", map[string]int{"n": 96, "maxiter": 2}},
		{"sor", map[string]int{"n": 96, "maxiter": 2}},
		{"mm", map[string]int{"n": 64}},
	}
	sweepN := 256
	if s.MM <= Quick.MM { // reduced scale for tests
		cases = []bcase{
			{"jacobi", map[string]int{"n": 32, "maxiter": 2}},
			{"sor", map[string]int{"n": 32, "maxiter": 2}},
			{"mm", map[string]int{"n": 24}},
		}
		sweepN = 64
	}
	rep := &KernelReport{Speedups: map[string]float64{}}

	for _, c := range cases {
		prog := loopir.Library()[c.name]
		if prog == nil {
			return nil, fmt.Errorf("exp: unknown program %q", c.name)
		}
		flops := loopir.ExactFlops(prog.Body, c.params)
		bench := "kernel/" + c.name

		interpIn, err := loopir.NewInstance(prog, c.params)
		if err != nil {
			return nil, err
		}
		interp := kernelRow(bench, "interp", flops, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := interpIn.Interpret(); err != nil {
					b.Fatal(err)
				}
			}
		})

		lowIn, err := loopir.NewInstance(prog, c.params)
		if err != nil {
			return nil, err
		}
		code, err := lowIn.Lower()
		if err != nil {
			return nil, err
		}
		lowered := kernelRow(bench, "lowered", flops, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				code.Run()
			}
		})

		kernIn, err := loopir.NewInstance(prog, c.params)
		if err != nil {
			return nil, err
		}
		k, err := kernIn.CompileKernel(kernIn.Prog.Body)
		if err != nil {
			return nil, err
		}
		kernel := kernelRow(bench, "kernel", flops, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k.Run(nil)
			}
		})

		rep.Rows = append(rep.Rows, interp, lowered, kernel)
		if kernel.NsPerOp > 0 {
			rep.Speedups[bench] = interp.NsPerOp / kernel.NsPerOp
		}
	}

	// Worker scaling of the parallel range kernel on one jacobi sweep.
	params := map[string]int{"n": sweepN, "maxiter": 1}
	prog := loopir.Library()["jacobi"]
	in, err := loopir.NewInstance(prog, params)
	if err != nil {
		return nil, err
	}
	iter := in.Prog.Body[0].(*loopir.Loop)
	sweep := iter.Body[0].(*loopir.Loop)
	rk, err := in.CompileRangeKernel(sweep.Var, sweep.Body)
	if err != nil {
		return nil, err
	}
	if !rk.ParallelSafe() {
		return nil, fmt.Errorf("exp: jacobi sweep not parallel-safe: %s", rk.SeqReason())
	}
	sweepFlops := loopir.ExactFlops(sweep.Body, params) * int64(sweepN-2)
	bench := "workers/jacobi-sweep"
	var base, best float64
	for _, w := range []int{1, 2, 4} {
		w := w
		row := kernelRow(bench, fmt.Sprintf("w=%d", w), sweepFlops, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rk.RunParallel(1, sweepN-1, nil, w)
			}
		})
		rep.Rows = append(rep.Rows, row)
		if w == 1 {
			base = row.NsPerOp
		}
		if best == 0 || row.NsPerOp < best {
			best = row.NsPerOp
		}
	}
	if best > 0 {
		rep.Speedups[bench] = base / best
	}
	return rep, nil
}

// RenderKernel formats the report as the experiment's text artifact.
func RenderKernel(rep *KernelReport) string {
	var sb strings.Builder
	sb.WriteString("Compiled loop kernels: interpreter vs lowered closures vs kernel, and worker scaling\n")
	sb.WriteString("(kernel/* speedup = interp/kernel; workers/* speedup = one worker over the best)\n\n")
	fmt.Fprintf(&sb, "%-22s %-8s %14s %16s %10s\n",
		"bench", "variant", "ns/op", "flops/op", "MFLOPS")
	prev := ""
	for _, r := range rep.Rows {
		if prev != "" && r.Bench != prev {
			sb.WriteString("\n")
		}
		prev = r.Bench
		fmt.Fprintf(&sb, "%-22s %-8s %14.0f %16d %10.1f\n",
			r.Bench, r.Variant, r.NsPerOp, r.Flops, r.MFlops)
	}
	sb.WriteString("\nspeedups:\n")
	seen := map[string]bool{}
	for _, r := range rep.Rows {
		if !seen[r.Bench] {
			seen[r.Bench] = true
			fmt.Fprintf(&sb, "  %-22s %.2fx\n", r.Bench, rep.Speedups[r.Bench])
		}
	}
	return sb.String()
}

// KernelJSON renders the machine-readable artifact (BENCH_kernel.json).
func KernelJSON(rep *KernelReport) string {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b) + "\n"
}
