package exp

import (
	"math"
	"testing"
)

// TestSvcSchedule runs the mixed arrival trace at quick scale and checks
// the report's invariants: every job completes, the high-priority tenant
// forces at least one preemption somewhere, urgent work never waits longer
// than batch work, and the steady tenants split service near-evenly.
func TestSvcSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("service trace is wall-clock, not -short")
	}
	rep, err := SvcSchedule(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs == 0 {
		t.Fatal("empty trace")
	}
	byTenant := map[string]SvcTenantRow{}
	done := 0
	var preempted int64
	for _, r := range rep.Rows {
		byTenant[r.Tenant] = r
		done += r.Done
		preempted += r.Preemptions
	}
	if done != rep.Jobs {
		t.Errorf("%d/%d jobs done", done, rep.Jobs)
	}
	if preempted < 1 {
		t.Error("high-priority arrivals never preempted anyone")
	}
	urgent, batch := byTenant["urgent"], byTenant["batch"]
	if urgent.Jobs == 0 || batch.Jobs == 0 {
		t.Fatalf("missing tenants in report: %+v", rep.Rows)
	}
	if urgent.MeanWait > batch.MeanWait {
		t.Errorf("urgent mean wait %v exceeds batch %v; priority inverted", urgent.MeanWait, batch.MeanWait)
	}
	if rep.Fairness < 0.8 {
		t.Errorf("Jain fairness %.3f between equal-weight steady tenants, want >= 0.8", rep.Fairness)
	}
	if math.IsNaN(rep.Throughput) || rep.Throughput <= 0 {
		t.Errorf("throughput %v", rep.Throughput)
	}
}

func TestJainIndex(t *testing.T) {
	if got := jainIndex([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal shares: %g, want 1", got)
	}
	if got := jainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("one hog of four: %g, want 0.25", got)
	}
	if got := jainIndex(nil); got != 0 {
		t.Errorf("empty: %g, want 0", got)
	}
}
