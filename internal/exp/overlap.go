package exp

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/dlb"
)

// The overlap experiment: how much ghost-exchange latency the split-loop
// async data plane hides. Each row runs one program at one slave count and
// one flop cost (the comm/compute ratio knob: cheaper flops shrink the
// compute side of a round until the 500 µs link latency dominates it) with
// the overlap on and off, on the same simulated cluster. Results are
// bit-identical by construction (TestOverlapBitIdentical); the only thing
// that moves is the makespan. The sor rows are the control group: its
// exchange feeds a pipelined strip loop, so the compiler refuses to split
// it and both columns run the synchronous schedule (speedup ≈ 1.0,
// overlap_rounds = 0).

// OverlapRow is one (program, slaves, flop cost) cell of the sweep.
type OverlapRow struct {
	Prog      string  `json:"prog"`
	Slaves    int     `json:"slaves"`
	FlopCost  string  `json:"flop_cost"`
	SyncMS    float64 `json:"sync_ms"`    // makespan, overlap off
	OverlapMS float64 `json:"overlap_ms"` // makespan, overlap on
	Speedup   float64 `json:"speedup"`    // sync/overlap (">1": overlap wins)
	Rounds    int64   `json:"overlap_rounds"`
	Fallback  int64   `json:"overlap_fallback"`
}

// OverlapReport is the experiment's result.
type OverlapReport struct {
	// CPUs is runtime.NumCPU() on the measuring host. The makespans are
	// virtual time, so they do not depend on it, but the field keeps the
	// artifact comparable with the other BENCH_* files.
	CPUs int                `json:"cpus"`
	Note string             `json:"note,omitempty"`
	Rows []OverlapRow       `json:"rows"`
	Best map[string]float64 `json:"best_speedup"` // per program
}

// Overlap runs the ghost-overlap sweep: jacobi (split-eligible) and sor
// (pipelined, falls back to synchronous) at 2–8 slaves across three
// comm/compute regimes.
func Overlap(s Scale) (*OverlapReport, error) {
	jacobiN, jacobiIter := 128, 8
	sorN, sorIter := 96, 6
	slaveCounts := []int{2, 4, 8}
	if s.MM <= Quick.MM { // reduced scale for tests
		jacobiN, jacobiIter = 48, 4
		sorN, sorIter = 32, 4
		slaveCounts = []int{2, 4}
	}
	costs := []struct {
		label string
		cost  time.Duration
	}{
		{"1µs", time.Microsecond},
		{"125ns", 125 * time.Nanosecond},
		{"31ns", 31 * time.Nanosecond},
	}
	progs := []struct {
		name   string
		params map[string]int
	}{
		{"jacobi", map[string]int{"n": jacobiN, "maxiter": jacobiIter}},
		{"sor", map[string]int{"n": sorN, "maxiter": sorIter}},
	}

	rep := &OverlapReport{
		CPUs: runtime.NumCPU(),
		Note: "virtual-time makespans; flop cost sets the comm/compute ratio against the 500µs link latency",
		Best: map[string]float64{},
	}
	for _, p := range progs {
		app, err := NewApp(p.name, p.params, paperSORSeq)
		if err != nil {
			return nil, err
		}
		for _, c := range costs {
			for _, slaves := range slaveCounts {
				run := func(mode string) (*dlb.Result, error) {
					cfg := dlb.Config{
						Plan:     app.Plan,
						Params:   app.Params,
						DLB:      true,
						FlopCost: c.cost,
						Overlap:  mode,
					}
					return dlb.Run(cfg, cluster.Config{Slaves: slaves})
				}
				off, err := run(dlb.OverlapDisabled)
				if err != nil {
					return nil, fmt.Errorf("exp: %s P=%d overlap off: %w", p.name, slaves, err)
				}
				on, err := run(dlb.OverlapEnabled)
				if err != nil {
					return nil, fmt.Errorf("exp: %s P=%d overlap on: %w", p.name, slaves, err)
				}
				row := OverlapRow{
					Prog:      p.name,
					Slaves:    slaves,
					FlopCost:  c.label,
					SyncMS:    float64(off.Elapsed.Microseconds()) / 1e3,
					OverlapMS: float64(on.Elapsed.Microseconds()) / 1e3,
					Rounds:    on.Counters.Get("overlap_rounds"),
					Fallback:  on.Counters.Get("overlap_fallback"),
				}
				if on.Elapsed > 0 {
					row.Speedup = float64(off.Elapsed) / float64(on.Elapsed)
				}
				rep.Rows = append(rep.Rows, row)
				if row.Speedup > rep.Best[p.name] {
					rep.Best[p.name] = row.Speedup
				}
			}
		}
	}
	return rep, nil
}

// RenderOverlap formats the report as the experiment's text artifact.
func RenderOverlap(rep *OverlapReport) string {
	var sb strings.Builder
	sb.WriteString("Ghost-exchange overlap: split-loop async data plane vs synchronous exchange\n")
	sb.WriteString("(speedup = sync/overlap makespan; sor is the pipelined control — no split, ≈1.0)\n")
	fmt.Fprintf(&sb, "host CPUs: %d", rep.CPUs)
	if rep.Note != "" {
		fmt.Fprintf(&sb, " — %s", rep.Note)
	}
	sb.WriteString("\n\n")
	fmt.Fprintf(&sb, "%-8s %3s %9s %12s %12s %8s %8s %9s\n",
		"prog", "P", "flopcost", "sync ms", "overlap ms", "speedup", "rounds", "fallback")
	prev := ""
	for _, r := range rep.Rows {
		if prev != "" && r.Prog != prev {
			sb.WriteString("\n")
		}
		prev = r.Prog
		fmt.Fprintf(&sb, "%-8s %3d %9s %12.2f %12.2f %7.2fx %8d %9d\n",
			r.Prog, r.Slaves, r.FlopCost, r.SyncMS, r.OverlapMS, r.Speedup, r.Rounds, r.Fallback)
	}
	sb.WriteString("\nbest speedup:\n")
	for _, p := range []string{"jacobi", "sor"} {
		if v, ok := rep.Best[p]; ok {
			fmt.Fprintf(&sb, "  %-8s %.2fx\n", p, v)
		}
	}
	return sb.String()
}

// OverlapJSON renders the machine-readable artifact (BENCH_overlap.json).
func OverlapJSON(rep *OverlapReport) string {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b) + "\n"
}
