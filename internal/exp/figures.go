package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/depend"
	"repro/internal/dlb"
	"repro/internal/loopir"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Table1 reproduces the paper's Table 1: application properties of MM, SOR,
// and LU as derived by the dependence analyzer.
func Table1() (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Table 1 — Application properties (derived by internal/depend)",
		Headers: []string{"property (of distributed loop)", "MM", "SOR", "LU"},
	}
	cols := map[string]depend.Properties{}
	for _, name := range []string{"mm", "sor", "lu"} {
		prog := loopir.Library()[name]
		a, err := depend.Analyze(prog)
		if err != nil {
			return nil, err
		}
		pr, err := a.PropertiesFor(specFor(name))
		if err != nil {
			return nil, err
		}
		cols[name] = pr
	}
	mm, sor, lu := cols["mm"].Row(), cols["sor"].Row(), cols["lu"].Row()
	for i, prop := range depend.PropertyNames {
		t.AddRow(prop, mm[i], sor[i], lu[i])
	}
	return t, nil
}

// loadedSlave0 puts one constant competing task on slave 0 (Figures 7/8).
func loadedSlave0(int) []cluster.LoadProfile {
	return []cluster.LoadProfile{cluster.Constant(1)}
}

// Fig5 reproduces Figure 5: MM in a dedicated homogeneous environment.
func Fig5(s Scale) (*Sweep, error) {
	app, err := MMApp(s)
	if err != nil {
		return nil, err
	}
	return app.RunSweep("Figure 5", fmt.Sprintf("%dx%d MM, dedicated homogeneous", s.MM, s.MM), s.MaxP, nil)
}

// Fig6 reproduces Figure 6: SOR in a dedicated homogeneous environment.
func Fig6(s Scale) (*Sweep, error) {
	app, err := SORApp(s)
	if err != nil {
		return nil, err
	}
	return app.RunSweep("Figure 6", fmt.Sprintf("%dx%d SOR, dedicated homogeneous", s.SOR, s.SOR), s.MaxP, nil)
}

// Fig7 reproduces Figure 7: MM with a constant competing load on one
// processor.
func Fig7(s Scale) (*Sweep, error) {
	app, err := MMApp(s)
	if err != nil {
		return nil, err
	}
	return app.RunSweep("Figure 7", fmt.Sprintf("%dx%d MM, constant load on slave 0", s.MM, s.MM), s.MaxP, loadedSlave0)
}

// Fig8 reproduces Figure 8: SOR with a constant competing load on one
// processor.
func Fig8(s Scale) (*Sweep, error) {
	app, err := SORApp(s)
	if err != nil {
		return nil, err
	}
	return app.RunSweep("Figure 8", fmt.Sprintf("%dx%d SOR, constant load on slave 0", s.SOR, s.SOR), s.MaxP, loadedSlave0)
}

// Fig9Result is the oscillating-load tracking experiment.
type Fig9Result struct {
	Raw      *trace.Series
	Filtered *trace.Series
	Work     *trace.Series
	Elapsed  time.Duration
	Moves    int
}

// Fig9 reproduces Figure 9: MM on 4 slaves with an oscillating load (20 s
// period, 10 s on) on slave 0; the series are slave 0's raw rate, filtered
// rate, and work assignment, each normalized as in the paper (rates by the
// maximum rate, work by the even-distribution share).
func Fig9(s Scale) (*Fig9Result, error) {
	app, err := MMApp(s)
	if err != nil {
		return nil, err
	}
	const slaves = 4
	res, err := app.RunOnce(slaves, []cluster.LoadProfile{cluster.SquareWave{
		Period:     20 * time.Second,
		OnDuration: 10 * time.Second,
		Tasks:      1,
	}}, func(c *dlb.Config) { c.CollectTrace = true })
	if err != nil {
		return nil, err
	}
	out := &Fig9Result{
		Raw:      &trace.Series{Name: "raw-rate"},
		Filtered: &trace.Series{Name: "adjusted-rate"},
		Work:     &trace.Series{Name: "work"},
		Elapsed:  res.Elapsed,
		Moves:    res.Moves,
	}
	maxRate := 0.0
	for _, smp := range res.Trace {
		if smp.Slave == 0 && smp.RawRate > maxRate {
			maxRate = smp.RawRate
		}
	}
	evenShare := float64(res.Exec.Units) / slaves
	for _, smp := range res.Trace {
		if smp.Slave != 0 {
			continue
		}
		t := smp.Time.Seconds()
		out.Raw.Append(t, smp.RawRate/nonZero(maxRate))
		out.Filtered.Append(t, smp.Filtered/nonZero(maxRate))
		out.Work.Append(t, float64(smp.Work)/nonZero(evenShare))
	}
	return out, nil
}

func nonZero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// Render formats Figure 9 as an ASCII plot plus CSV.
func (f *Fig9Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 9 — MM, oscillating load on slave 0 (20s period, 10s on); run %.0fs, %d moves\n",
		f.Elapsed.Seconds(), f.Moves)
	sb.WriteString(trace.PlotASCII(72, 14, f.Raw, f.Filtered, f.Work))
	sb.WriteString("\nCSV:\n")
	sb.WriteString(trace.CSV(f.Raw, f.Filtered, f.Work))
	return sb.String()
}
