package exp

import (
	"fmt"
	"time"

	"repro/internal/dlb"
	"repro/internal/loopir"
	"repro/internal/metrics"
	"repro/internal/netrun"
)

// NetRow is one (application, backend) measurement of the transport
// overhead comparison: the same compiled plan driven by the same master
// protocol over in-process goroutine channels versus real TCP sockets on
// loopback, against a timed sequential run of the source program.
type NetRow struct {
	App     string
	Backend string // "goroutines" or "tcp-loopback"
	Slaves  int
	Seq     time.Duration // wall-clock sequential baseline
	Par     time.Duration // wall-clock parallel run
	Speedup float64
	Phases  int
	Moves   int
	MaxDiff float64 // vs the sequential reference (must be 0)
}

// NetOverhead measures what moving from channels to sockets costs: each
// calibrated application runs once under dlb.RunReal (goroutine workers,
// the PR-1 runtime) and once under netrun (separate TCP endpoints over
// loopback, the distributed runtime's transport without the process
// boundary). Problem sizes at these scales are protocol-dominated, so the
// gap between the two backends is mostly framing, copying, and syscalls —
// the table quantifies the runtime's networking overhead, not the
// applications' scalability.
func NetOverhead(s Scale) ([]NetRow, error) {
	const slaves = 4
	apps := []struct {
		name string
		app  func(Scale) (*App, error)
	}{
		{"mm", MMApp},
		{"sor", SORApp},
	}
	var rows []NetRow
	for _, a := range apps {
		app, err := a.app(s)
		if err != nil {
			return nil, err
		}
		seq, ref, err := timedSequential(app)
		if err != nil {
			return nil, err
		}
		cfg := dlb.Config{
			Plan:        app.Plan,
			Params:      app.Params,
			DLB:         true,
			RealQuantum: 2 * time.Millisecond,
		}

		t0 := time.Now()
		gor, err := dlb.RunReal(cfg, slaves)
		if err != nil {
			return nil, err
		}
		realWall := time.Since(t0)
		rows = append(rows, netRow(a.name, "goroutines", slaves, seq, realWall, gor, ref))

		var srvs []*netrun.Server
		addrs := make([]string, slaves)
		for i := 0; i < slaves; i++ {
			srv, err := netrun.NewServer(netrun.ServerOptions{})
			if err != nil {
				return nil, err
			}
			go srv.Serve()
			srvs = append(srvs, srv)
			addrs[i] = srv.Addr()
		}
		t0 = time.Now()
		net, err := netrun.RunMaster(cfg, addrs, netrun.MasterOptions{})
		netWall := time.Since(t0)
		for _, srv := range srvs {
			srv.Close()
		}
		if err != nil {
			return nil, err
		}
		rows = append(rows, netRow(a.name, "tcp-loopback", slaves, seq, netWall, net, ref))
	}
	return rows, nil
}

// timedSequential runs the program sequentially under the wall clock.
func timedSequential(app *App) (time.Duration, map[string]*loopir.Array, error) {
	inst, err := loopir.NewInstance(app.Plan.Prog, app.Params)
	if err != nil {
		return 0, nil, err
	}
	t0 := time.Now()
	if err := inst.Run(); err != nil {
		return 0, nil, err
	}
	return time.Since(t0), inst.Arrays, nil
}

func netRow(name, backend string, slaves int, seq, wall time.Duration, res *dlb.Result, ref map[string]*loopir.Array) NetRow {
	worst := 0.0
	for arr, want := range ref {
		if got := res.Final[arr]; got != nil {
			if d := want.MaxAbsDiff(got); d > worst {
				worst = d
			}
		}
	}
	return NetRow{
		App:     name,
		Backend: backend,
		Slaves:  slaves,
		Seq:     seq,
		Par:     wall,
		Speedup: metrics.Speedup(seq, wall),
		Phases:  res.Phases,
		Moves:   res.Moves,
		MaxDiff: worst,
	}
}

// RenderNetOverhead formats the comparison.
func RenderNetOverhead(rows []NetRow) string {
	t := &metrics.Table{
		Title:   "Transport overhead — identical protocol over goroutine channels vs TCP loopback (wall clock)",
		Headers: []string{"app", "backend", "slaves", "t_seq", "t_par", "speedup", "phases", "moves", "maxdiff"},
	}
	for _, r := range rows {
		t.AddRowf(r.App, r.Backend, r.Slaves, r.Seq, r.Par, r.Speedup, r.Phases, r.Moves, fmt.Sprintf("%g", r.MaxDiff))
	}
	return t.String()
}
