package exp

import (
	"fmt"
	"time"

	"repro/internal/dlb"
	"repro/internal/fault"
	"repro/internal/loopir"
	"repro/internal/metrics"
)

// FaultRow is one scenario of the fault-tolerance evaluation: a fault plan
// injected into a calibrated paper workload, with the cost of surviving it.
type FaultRow struct {
	Scenario    string
	App         string
	Elapsed     time.Duration
	Eff         float64
	Overhead    float64 // elapsed increase over the fault-free run
	Recoveries  int
	Checkpoints int
	Evicted     int
	Joined      int
	MaxDiff     float64 // vs the sequential reference (0 = bit-exact)
}

// faultScenario pairs a label with the fault plan it injects.
type faultScenario struct {
	name string
	plan *fault.Plan
}

// FaultTolerance evaluates the elastic runtime under injected faults on the
// calibrated workloads: MM on 8 slaves fault-free, with a crash at t=30s
// (near the end of the ~31s run, maximizing lost work without checkpoints),
// with a tolerated short stall, with an over-lease stall that leads to
// eviction, and with a node joining mid-run; plus the restricted SOR
// pipeline surviving the same crash via adjacent-only reassignment.
func FaultTolerance(s Scale) ([]FaultRow, error) {
	const slaves = 8
	var rows []FaultRow

	mm, err := MMApp(s)
	if err != nil {
		return nil, err
	}
	mmScen := []faultScenario{
		{"fault-free", nil},
		{"crash @30s", (&fault.Plan{}).CrashAt(3, 30*time.Second)},
		{"stall 1s @20s (tolerated)", (&fault.Plan{}).StallAt(3, 20*time.Second, time.Second)},
		{"stall 20s @20s (evicted)", (&fault.Plan{}).StallAt(3, 20*time.Second, 20*time.Second)},
		{"join @10s", (&fault.Plan{}).JoinAt(10 * time.Second)},
	}
	if err := runFaultScenarios(mm, slaves, mmScen, &rows); err != nil {
		return nil, err
	}

	sor, err := SORApp(s)
	if err != nil {
		return nil, err
	}
	sorScen := []faultScenario{
		{"fault-free", nil},
		{"crash @30s", (&fault.Plan{}).CrashAt(3, 30*time.Second)},
	}
	if err := runFaultScenarios(sor, slaves, sorScen, &rows); err != nil {
		return nil, err
	}
	return rows, nil
}

func runFaultScenarios(app *App, slaves int, scens []faultScenario, rows *[]FaultRow) error {
	ref, err := loopir.NewInstance(app.Plan.Prog, app.Params)
	if err != nil {
		return err
	}
	if err := ref.Run(); err != nil {
		return err
	}
	var base time.Duration
	for _, sc := range scens {
		res, err := app.RunOnce(slaves, nil, func(c *dlb.Config) {
			// The fault-free row runs through the fault-tolerant runtime too
			// (empty plan), so the overhead column isolates the injected
			// fault, not the heartbeat/checkpoint machinery.
			c.Fault = sc.plan
			if c.Fault == nil {
				c.Fault = &fault.Plan{}
			}
		})
		if err != nil {
			return fmt.Errorf("%s %s: %w", app.Name, sc.name, err)
		}
		maxDiff := 0.0
		for name, want := range ref.Arrays {
			if d := want.MaxAbsDiff(res.Final[name]); d > maxDiff {
				maxDiff = d
			}
		}
		if sc.plan == nil {
			base = res.Elapsed
		}
		overhead := 0.0
		if base > 0 {
			overhead = float64(res.Elapsed-base) / float64(base)
		}
		*rows = append(*rows, FaultRow{
			Scenario:    sc.name,
			App:         app.Name,
			Elapsed:     res.Elapsed,
			Eff:         metrics.Efficiency(app.SeqTime, res.Elapsed, res.Usage),
			Overhead:    overhead,
			Recoveries:  res.Recoveries,
			Checkpoints: res.Checkpoints,
			Evicted:     len(res.Evicted),
			Joined:      len(res.Joined),
			MaxDiff:     maxDiff,
		})
	}
	return nil
}

// RenderFaultTolerance formats the fault-tolerance evaluation.
func RenderFaultTolerance(rows []FaultRow) string {
	t := &metrics.Table{
		Title: "Fault tolerance — elastic runtime under injected faults (8 slaves, calibrated workloads)",
		Headers: []string{"app", "scenario", "elapsed", "eff", "overhead",
			"recov", "ckpts", "evicted", "joined", "maxdiff"},
	}
	for _, r := range rows {
		t.AddRowf(r.App, r.Scenario, r.Elapsed, r.Eff,
			fmt.Sprintf("%+.1f%%", r.Overhead*100),
			r.Recoveries, r.Checkpoints, r.Evicted, r.Joined, r.MaxDiff)
	}
	return t.String()
}
