package exp

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/dlb"
	"repro/internal/loopir"
	"repro/internal/metrics"
)

// The irregular-workload experiment: what the learned per-unit cost model
// buys over the paper's uniform-unit assumption. The evaluated programs
// (the paper has no sparse workloads; these extend it) read their trip
// counts through index arrays, so per-unit cost varies by one to two
// orders of magnitude in block-correlated patterns:
//
//   - spmv: banded ELL sparse matrix-vector product; row cost follows a
//     power-law rowlen drawn per 32-row block.
//   - pbin: particle binning with quadratic per-bin interaction cost.
//
// Under the uniform model the balancer's measured unit rates conflate
// machine speed with unit cost — a slave holding cheap units looks fast
// and gets handed the expensive ones (the rate inversion the cost-model
// layer exists to fix). Each program runs uniform and learned on the same
// cluster; the table reports makespan, speedup, efficiency and the
// weighted load imbalance (max/mean per-slave weighted backlog, averaged
// over balancing rounds).

// IrregularRow is one (program, cost model) measurement.
type IrregularRow struct {
	Prog       string  `json:"prog"`
	CostModel  string  `json:"cost_model"`
	ElapsedS   float64 `json:"elapsed_s"`
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
	Imbalance  float64 `json:"imbalance"`
	Moves      int     `json:"moves"`
	UnitsMoved int     `json:"units_moved"`
}

// IrregularReport is the experiment result: all rows plus the learned
// model's makespan gain per program (uniform elapsed over learned
// elapsed; >1 means learned wins).
type IrregularReport struct {
	Slaves int                `json:"slaves"`
	Seq    map[string]float64 `json:"sequential_s"`
	Rows   []IrregularRow     `json:"rows"`
	Gains  map[string]float64 `json:"makespan_gain"`
}

// irregularCase is one workload configuration.
type irregularCase struct {
	name   string
	params map[string]int
}

// irregularCases picks problem sizes: full scale exercises the same
// configurations the checked-in BENCH_irregular.json records; quick scale
// shrinks them for tests while keeping the skew strong enough that the
// learned model's win is robust.
func irregularCases(s Scale) ([]irregularCase, int) {
	if s.MM <= Quick.MM {
		return []irregularCase{
			{"spmv", map[string]int{"n": 1024, "maxiter": 4}},
			{"pbin", map[string]int{"n": 256, "maxiter": 4}},
		}, 8
	}
	return []irregularCase{
		{"spmv", map[string]int{"n": 2048, "maxiter": 8}},
		{"pbin", map[string]int{"n": 512, "maxiter": 4}},
	}, 8
}

// Irregular runs each irregular program under the uniform and the learned
// cost model on the same simulated cluster and collects the comparison.
func Irregular(s Scale) (*IrregularReport, error) {
	cases, slaves := irregularCases(s)
	rep := &IrregularReport{
		Slaves: slaves,
		Seq:    map[string]float64{},
		Gains:  map[string]float64{},
	}
	const flopCost = time.Microsecond // the Sun 4/330 calibration
	for _, c := range cases {
		prog := loopir.Library()[c.name]
		if prog == nil {
			return nil, fmt.Errorf("exp: unknown program %q", c.name)
		}
		plan, err := compile.Compile(prog, compile.Options{})
		if err != nil {
			return nil, fmt.Errorf("exp: compile %s: %w", c.name, err)
		}
		seq, _, err := dlb.SequentialTime(plan, c.params, flopCost)
		if err != nil {
			return nil, fmt.Errorf("exp: sequential %s: %w", c.name, err)
		}
		rep.Seq[c.name] = seq.Seconds()
		elapsed := map[string]float64{}
		for _, mode := range []string{dlb.CostUniform, dlb.CostLearned} {
			res, err := dlb.Run(dlb.Config{
				Plan:      plan,
				Params:    c.params,
				DLB:       true,
				FlopCost:  flopCost,
				CostModel: mode,
			}, cluster.Config{Slaves: slaves})
			if err != nil {
				return nil, fmt.Errorf("exp: %s %s: %w", c.name, mode, err)
			}
			imb := 0.0
			for _, l := range res.Loads {
				imb += l.Max / l.Mean
			}
			if n := len(res.Loads); n > 0 {
				imb /= float64(n)
			}
			elapsed[mode] = res.Elapsed.Seconds()
			rep.Rows = append(rep.Rows, IrregularRow{
				Prog:       c.name,
				CostModel:  mode,
				ElapsedS:   res.Elapsed.Seconds(),
				Speedup:    metrics.Speedup(seq, res.Elapsed),
				Efficiency: metrics.Efficiency(seq, res.Elapsed, res.Usage),
				Imbalance:  imb,
				Moves:      res.Moves,
				UnitsMoved: res.UnitsMoved,
			})
		}
		if elapsed[dlb.CostLearned] > 0 {
			rep.Gains[c.name] = elapsed[dlb.CostUniform] / elapsed[dlb.CostLearned]
		}
	}
	return rep, nil
}

// RenderIrregular formats the report as the experiment's text artifact.
func RenderIrregular(rep *IrregularReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Irregular workloads on %d slaves: uniform vs learned per-unit cost model\n", rep.Slaves)
	sb.WriteString("(imbalance = avg max/mean weighted backlog per round; gain = uniform/learned makespan)\n\n")
	fmt.Fprintf(&sb, "%-6s %-8s %10s %9s %7s %6s %10s %7s %7s\n",
		"prog", "model", "seq", "elapsed", "speedup", "eff", "imbalance", "moves", "units")
	prev := ""
	for _, r := range rep.Rows {
		if prev != "" && r.Prog != prev {
			sb.WriteString("\n")
		}
		prev = r.Prog
		fmt.Fprintf(&sb, "%-6s %-8s %9.2fs %8.2fs %7.2f %6.3f %10.3f %7d %7d\n",
			r.Prog, r.CostModel, rep.Seq[r.Prog], r.ElapsedS, r.Speedup, r.Efficiency,
			r.Imbalance, r.Moves, r.UnitsMoved)
	}
	sb.WriteString("\nmakespan gains (uniform/learned):\n")
	for _, r := range rep.Rows {
		if r.CostModel != "learned" {
			continue
		}
		fmt.Fprintf(&sb, "  %-6s %.2fx\n", r.Prog, rep.Gains[r.Prog])
	}
	return sb.String()
}

// IrregularJSON renders the machine-readable artifact
// (BENCH_irregular.json).
func IrregularJSON(rep *IrregularReport) string {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b) + "\n"
}
