package exp

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/lang"
	"repro/internal/loopir"
	"repro/internal/metrics"
	"repro/internal/netrun"
	"repro/internal/svc"
)

// SvcTenantRow is one tenant's outcome under the mixed arrival trace.
type SvcTenantRow struct {
	Tenant      string
	Weight      float64
	Priority    string
	Jobs        int
	Done        int
	Preemptions int64
	MeanWait    time.Duration
	MeanRun     time.Duration
	MeanTurn    time.Duration // submit → done
	SlaveSec    float64
	NormService float64 // SlaveSec / Weight — the fairness coordinate
}

// SvcReport is the service-scheduler measurement: per-tenant rows plus the
// cluster-wide throughput and fairness aggregates.
type SvcReport struct {
	PoolSize   int
	Jobs       int
	Elapsed    time.Duration
	Throughput float64 // done jobs per second of trace wall time
	Fairness   float64 // Jain index over NormService of the steady tenants
	Rows       []SvcTenantRow
}

// jainIndex is (Σx)² / (n·Σx²): 1.0 is perfectly proportional service.
func jainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// svcTrace is one deterministic arrival.
type svcTrace struct {
	at       time.Duration // offset from trace start
	tenant   string
	priority string
	app      string
	n        int
	slaves   int
}

// SvcSchedule drives the multi-tenant service under a deterministic mixed
// arrival trace on an in-process pool: two batch tenants streaming
// low/normal-priority work and an "urgent" tenant whose high-priority
// submissions must preempt. The table reports per-tenant wait, run and
// turnaround times, accumulated slave-seconds, and the Jain fairness index
// over the two equally-weighted steady tenants' normalized service.
func SvcSchedule(s Scale) (*SvcReport, error) {
	const (
		poolSize = 4
		drag     = 12
	)
	// Sizes: the opening batch job must outlive the first normal arrival
	// at 50ms PLUS the preemption latency (the next consumable checkpoint
	// round), or the trace degenerates into plain FIFO; interactive jobs
	// are short.
	big, mid, small := s.MM*8, s.MM*2, s.MM
	if big > 256 {
		big = 256
	}
	if mid > 128 {
		mid = 128
	}
	if small > 64 {
		small = 64
	}
	trace := []svcTrace{
		{0, "batch", svc.PriorityLow, "mm", big, 4},
		{50 * time.Millisecond, "steady-a", svc.PriorityNormal, "mm", mid, 2},
		{100 * time.Millisecond, "steady-b", svc.PriorityNormal, "mm", mid, 2},
		{400 * time.Millisecond, "urgent", svc.PriorityHigh, "mm", small, 4},
		{500 * time.Millisecond, "steady-a", svc.PriorityNormal, "mm", mid, 2},
		{550 * time.Millisecond, "steady-b", svc.PriorityNormal, "mm", mid, 2},
		{700 * time.Millisecond, "batch", svc.PriorityLow, "mm", mid, 2},
		{900 * time.Millisecond, "steady-a", svc.PriorityNormal, "mm", mid, 2},
		{950 * time.Millisecond, "steady-b", svc.PriorityNormal, "mm", mid, 2},
		{1200 * time.Millisecond, "urgent", svc.PriorityHigh, "mm", small, 2},
	}

	var srvs []*netrun.Server
	addrs := make([]string, poolSize)
	for i := 0; i < poolSize; i++ {
		srv, err := netrun.NewServer(netrun.ServerOptions{Drag: drag})
		if err != nil {
			return nil, err
		}
		go srv.Serve()
		srvs = append(srvs, srv)
		addrs[i] = srv.Addr()
	}
	defer func() {
		for _, srv := range srvs {
			srv.Close()
		}
	}()

	service, err := svc.New(svc.Options{
		Addrs:    addrs,
		MaxQueue: len(trace),
		Weights:  map[string]float64{"steady-a": 1, "steady-b": 1, "batch": 1, "urgent": 1},
		Detect:   fault.DetectorConfig{MinLease: 400 * time.Millisecond, HeartbeatEvery: 100 * time.Millisecond},
		Ckpt:     fault.CkptPolicy{MinInterval: 150 * time.Millisecond},
		Timeouts: netrun.Timeouts{Dial: 10 * time.Second},
	})
	if err != nil {
		return nil, err
	}
	defer service.Close()

	specOf := func(tr svcTrace) (svc.JobSpec, error) {
		prog := loopir.Library()[tr.app]
		if prog == nil {
			return svc.JobSpec{}, fmt.Errorf("exp: unknown program %q", tr.app)
		}
		return svc.JobSpec{
			Tenant:    tr.tenant,
			Priority:  tr.priority,
			Program:   lang.Format(prog),
			Params:    map[string]int{"n": tr.n},
			DistDims:  specFor(tr.app).Dims,
			DistLoops: specFor(tr.app).Loops,
			Slaves:    tr.slaves,
		}, nil
	}

	// Pre-warm the plan cache: Submit compiles synchronously, and a cold
	// compile of the big batch plan takes longer than the 50ms gap to the
	// first steady arrival — the trace offsets would measure the compiler,
	// not the scheduler.
	for _, tr := range trace {
		spec, err := specOf(tr)
		if err != nil {
			return nil, err
		}
		if err := service.Warm(spec); err != nil {
			return nil, fmt.Errorf("exp: warming %s/%d: %w", tr.app, tr.n, err)
		}
	}

	type meta struct {
		tenant, priority string
		slaves           int
	}
	ids := map[string]meta{}
	t0 := time.Now()
	for _, tr := range trace {
		if d := tr.at - time.Since(t0); d > 0 {
			time.Sleep(d)
		}
		spec, err := specOf(tr)
		if err != nil {
			return nil, err
		}
		id, err := service.Submit(spec)
		if err != nil {
			return nil, fmt.Errorf("exp: submitting %s/%s: %w", tr.tenant, tr.priority, err)
		}
		ids[id] = meta{tr.tenant, tr.priority, tr.slaves}
	}

	// Wait for every job to reach a terminal state.
	deadline := time.Now().Add(5 * time.Minute)
	for {
		alive := 0
		for id := range ids {
			st, err := service.Status(id)
			if err != nil {
				return nil, err
			}
			if st.State == svc.StateFailed {
				return nil, fmt.Errorf("exp: job %s failed: %s", id, st.Error)
			}
			if st.State != svc.StateDone && st.State != svc.StateCanceled {
				alive++
			}
		}
		if alive == 0 {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("exp: %d jobs never finished", alive)
		}
		time.Sleep(20 * time.Millisecond)
	}
	elapsed := time.Since(t0)

	// Aggregate per tenant.
	z := service.Statsz()
	agg := map[string]*SvcTenantRow{}
	order := []string{}
	for id, m := range ids {
		st, err := service.Status(id)
		if err != nil {
			return nil, err
		}
		row := agg[m.tenant]
		if row == nil {
			ts := z.Tenants[m.tenant]
			w := 1.0
			row = &SvcTenantRow{Tenant: m.tenant, Weight: w, Priority: m.priority}
			if ts != nil {
				row.Preemptions = ts.Preemptions
				row.SlaveSec = ts.SlaveSec
				row.NormService = ts.SlaveSec / w
			}
			agg[m.tenant] = row
			order = append(order, m.tenant)
		}
		row.Jobs++
		if st.State == svc.StateDone {
			row.Done++
		}
		row.MeanWait += time.Duration(st.WaitedMS) * time.Millisecond
		row.MeanRun += time.Duration(st.RanMS) * time.Millisecond
		if st.DoneAt != nil {
			row.MeanTurn += st.DoneAt.Sub(st.SubmittedAt)
		}
	}
	done := 0
	var fairCoords []float64
	rows := make([]SvcTenantRow, 0, len(agg))
	for _, tenant := range order {
		row := agg[tenant]
		if row.Jobs > 0 {
			row.MeanWait /= time.Duration(row.Jobs)
			row.MeanRun /= time.Duration(row.Jobs)
			row.MeanTurn /= time.Duration(row.Jobs)
		}
		done += row.Done
		if tenant == "steady-a" || tenant == "steady-b" {
			fairCoords = append(fairCoords, row.NormService)
		}
		rows = append(rows, *row)
	}
	sortRowsByTenant(rows)
	return &SvcReport{
		PoolSize:   poolSize,
		Jobs:       len(ids),
		Elapsed:    elapsed,
		Throughput: float64(done) / elapsed.Seconds(),
		Fairness:   jainIndex(fairCoords),
		Rows:       rows,
	}, nil
}

func sortRowsByTenant(rows []SvcTenantRow) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].Tenant < rows[j-1].Tenant; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

// RenderSvc formats the service-scheduler report.
func RenderSvc(rep *SvcReport) string {
	t := &metrics.Table{
		Title: fmt.Sprintf(
			"Multi-tenant service — mixed arrival trace on a shared %d-slave pool (%d jobs in %.2fs, %.2f jobs/s, Jain fairness %.3f)",
			rep.PoolSize, rep.Jobs, rep.Elapsed.Seconds(), rep.Throughput, rep.Fairness),
		Headers: []string{"tenant", "prio", "jobs", "done", "preempted", "mean_wait", "mean_run", "mean_turnaround", "slave_sec"},
	}
	for _, r := range rep.Rows {
		t.AddRowf(r.Tenant, r.Priority, r.Jobs, r.Done, r.Preemptions,
			r.MeanWait, r.MeanRun, r.MeanTurn, fmt.Sprintf("%.2f", r.SlaveSec))
	}
	return t.String()
}
