package exp

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTable1MatchesPaper(t *testing.T) {
	tab, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	// Paper's Table 1, row by row: MM, SOR, LU.
	want := [][]string{
		{"no", "yes", "no"},   // loop-carried dependences
		{"no", "yes", "yes"},  // communication outside loop
		{"yes", "yes", "yes"}, // repeated execution of loop
		{"no", "no", "yes"},   // varying loop bounds
		{"no", "no", "yes"},   // index-dependent iteration size
		{"no", "no", "no"},    // data-dependent iteration size
	}
	if len(tab.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(want))
	}
	for i, w := range want {
		got := tab.Rows[i][1:]
		for c := range w {
			if got[c] != w[c] {
				t.Errorf("row %q col %d: got %s, want %s", tab.Rows[i][0], c, got[c], w[c])
			}
		}
	}
}

func TestFig5Shape(t *testing.T) {
	sw, err := Fig5(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Rows) != Quick.MaxP {
		t.Fatalf("rows = %d, want %d", len(sw.Rows), Quick.MaxP)
	}
	// Speedup grows with P and load balancing overhead is small in the
	// dedicated environment (Figure 5's key claims).
	last := sw.Rows[len(sw.Rows)-1]
	if last.SpeedupDLB < float64(Quick.MaxP)*0.6 {
		t.Errorf("DLB speedup at P=%d is %.2f, want near-linear", last.P, last.SpeedupDLB)
	}
	for _, r := range sw.Rows {
		overhead := r.TimeDLB.Seconds()/r.TimePar.Seconds() - 1
		if overhead > 0.15 {
			t.Errorf("P=%d: DLB overhead %.1f%% in dedicated environment", r.P, overhead*100)
		}
	}
	if sw.Rows[0].SpeedupPar < 0.9 || sw.Rows[0].SpeedupPar > 1.1 {
		t.Errorf("P=1 speedup = %.2f, want ~1", sw.Rows[0].SpeedupPar)
	}
}

func TestFig6Shape(t *testing.T) {
	sw, err := Fig6(Quick)
	if err != nil {
		t.Fatal(err)
	}
	last := sw.Rows[len(sw.Rows)-1]
	if last.SpeedupDLB <= sw.Rows[0].SpeedupDLB {
		t.Errorf("SOR speedup does not grow: P=1 %.2f vs P=%d %.2f",
			sw.Rows[0].SpeedupDLB, last.P, last.SpeedupDLB)
	}
	for _, r := range sw.Rows {
		overhead := r.TimeDLB.Seconds()/r.TimePar.Seconds() - 1
		if overhead > 0.20 {
			t.Errorf("P=%d: DLB overhead %.1f%%", r.P, overhead*100)
		}
	}
}

func TestFig7DLBWinsUnderLoad(t *testing.T) {
	sw, err := Fig7(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// With a constant competing load on slave 0, dynamic load balancing
	// must beat the static distribution for P >= 2 (Figure 7b).
	for _, r := range sw.Rows[1:] {
		if r.EffDLB <= r.EffPar {
			t.Errorf("P=%d: eff_dlb %.3f <= eff_par %.3f", r.P, r.EffDLB, r.EffPar)
		}
		if r.TimeDLB >= r.TimePar {
			t.Errorf("P=%d: t_dlb %v >= t_par %v", r.P, r.TimeDLB, r.TimePar)
		}
	}
}

func TestFig8DLBWinsUnderLoad(t *testing.T) {
	sw, err := Fig8(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sw.Rows[1:] {
		if r.TimeDLB >= r.TimePar {
			t.Errorf("P=%d: t_dlb %v >= t_par %v", r.P, r.TimeDLB, r.TimePar)
		}
	}
}

func TestFig9Tracking(t *testing.T) {
	f, err := Fig9(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Work.V) < 5 {
		t.Fatalf("too few samples: %d", len(f.Work.V))
	}
	// Work must vary (tracking the oscillating load).
	min, max := f.Work.V[0], f.Work.V[0]
	for _, v := range f.Work.V {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max-min < 0.2 {
		t.Errorf("work assignment varied only %.2f of even share", max-min)
	}
	// The filtered rate must be smoother than the raw rate: compare total
	// variation.
	tv := func(v []float64) float64 {
		s := 0.0
		for i := 1; i < len(v); i++ {
			d := v[i] - v[i-1]
			if d < 0 {
				d = -d
			}
			s += d
		}
		return s
	}
	if tv(f.Filtered.V) > tv(f.Raw.V) {
		t.Errorf("filtered rate rougher than raw: %.2f vs %.2f", tv(f.Filtered.V), tv(f.Raw.V))
	}
	if !strings.Contains(f.Render(), "CSV") {
		t.Error("render missing CSV section")
	}
}

func TestAblationPipelining(t *testing.T) {
	rows, err := AblationPipelining(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	high := rows[1]
	if high.TimeSync < high.TimePipe {
		t.Errorf("at %v latency synchronous (%v) beat pipelined (%v)",
			high.Latency, high.TimeSync, high.TimePipe)
	}
}

func TestAblationGrain(t *testing.T) {
	rows, err := AblationGrain(Quick)
	if err != nil {
		t.Fatal(err)
	}
	var fine, auto, huge GrainRow
	best := rows[0]
	for _, r := range rows {
		switch {
		case r.Grain == 1:
			fine = r
		case r.Grain == 0:
			auto = r
		case r.Grain >= 100:
			huge = r
		}
		if r.Elapsed < best.Elapsed {
			best = r
		}
	}
	if auto.Used <= 1 {
		t.Errorf("automatic grain = %d, want > 1 (1.5-quantum rule)", auto.Used)
	}
	// One block per sweep serializes the pipeline at sweep granularity and
	// must be clearly worse than the automatic grain.
	if huge.Elapsed.Seconds() < 1.2*auto.Elapsed.Seconds() {
		t.Errorf("whole-sweep blocks (%v) not clearly worse than auto (%v)", huge.Elapsed, auto.Elapsed)
	}
	// There is a sweet spot: some intermediate grain beats the fine-grain
	// pipeline (message overhead) and the automatic grain is within 25% of
	// the best observed.
	if best.Elapsed >= fine.Elapsed {
		t.Errorf("no intermediate grain beat grain 1 (%v)", fine.Elapsed)
	}
	if auto.Elapsed.Seconds() > 1.25*best.Elapsed.Seconds() {
		t.Errorf("auto grain %v more than 25%% off the best %v (grain %d)", auto.Elapsed, best.Elapsed, best.Used)
	}
}

func TestAblationRefinements(t *testing.T) {
	rows, err := AblationRefinements(Quick)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RefinementRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	all, none := byName["all refinements"], byName["none"]
	if none.Moves < all.Moves {
		t.Errorf("removing all refinements reduced movement: %d vs %d", none.Moves, all.Moves)
	}
	if all.UnitsMoved > none.UnitsMoved {
		t.Errorf("refinements moved more data than none: %d vs %d", all.UnitsMoved, none.UnitsMoved)
	}
}

func TestAblationLUAdaptive(t *testing.T) {
	res, err := AblationLUAdaptive(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 3 {
		t.Fatalf("too few phases: %d", len(res.Rows))
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.WorkLeft >= first.WorkLeft {
		t.Errorf("active work did not shrink: %d -> %d", first.WorkLeft, last.WorkLeft)
	}
	if last.SkipHooks < first.SkipHooks {
		t.Errorf("skip count shrank as work shrank: %d -> %d", first.SkipHooks, last.SkipHooks)
	}
}

func TestSweepRender(t *testing.T) {
	sw, err := Fig5(Scale{MM: 32, MaxP: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := sw.Render()
	for _, want := range []string{"Figure 5", "speedup_dlb", "eff_par"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestBaselinesComparison(t *testing.T) {
	rows, err := Baselines(Quick)
	if err != nil {
		t.Fatal(err)
	}
	get := func(scenario, strategy string) BaselineRow {
		for _, r := range rows {
			if r.Scenario == scenario && r.Strategy == strategy {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", scenario, strategy)
		return BaselineRow{}
	}
	// Under load, the adaptive strategies with fine-enough granularity
	// beat the static distribution. (GSS is listed but its first chunk of
	// N/P units lands on the slow slave before any speed information
	// exists — the classic GSS weakness — so it is not asserted here.)
	static := get("one loaded", "static block")
	for _, s := range []string{"DLB (this paper)", "self-sched fixed-4", "diffusion"} {
		if r := get("one loaded", s); r.Elapsed >= static.Elapsed {
			t.Errorf("%s (%v) did not beat static (%v) under load", s, r.Elapsed, static.Elapsed)
		}
	}
	// The central queue ships every unit's data through the master; DLB
	// moves only the rebalanced surplus (§3.1's bottleneck argument).
	dlbRow := get("one loaded", "DLB (this paper)")
	ssRow := get("one loaded", "self-sched fixed-4")
	if dlbRow.MBMoved >= ssRow.MBMoved {
		t.Errorf("DLB moved %v MB, self-scheduling %v MB; expected DLB to move less",
			dlbRow.MBMoved, ssRow.MBMoved)
	}
	// In the dedicated environment DLB moves (almost) nothing.
	if r := get("dedicated", "DLB (this paper)"); r.MBMoved > ssRow.MBMoved/4 {
		t.Errorf("DLB moved %v MB in the dedicated environment", r.MBMoved)
	}
	if out := RenderBaselines(rows); !strings.Contains(out, "diffusion") {
		t.Error("render missing diffusion row")
	}
}

func TestHeterogeneousAdaptation(t *testing.T) {
	rows, err := Heterogeneous(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		homogeneous := true
		for _, s := range r.Speeds {
			if s != r.Speeds[0] {
				homogeneous = false
			}
		}
		if homogeneous {
			// Control: DLB adds no benefit but also no real harm.
			if r.TimeDLB.Seconds() > 1.1*r.TimePar.Seconds() {
				t.Errorf("homogeneous control: DLB overhead %v vs %v", r.TimeDLB, r.TimePar)
			}
			continue
		}
		// Mixed speeds: static is gated by the slowest machine; DLB must
		// recover a large part of the gap toward the ideal speedup.
		if r.SpeedupDLB <= r.SpeedupPar {
			t.Errorf("speeds %v: DLB speedup %.2f <= static %.2f", r.Speeds, r.SpeedupDLB, r.SpeedupPar)
		}
		if r.SpeedupDLB < 0.7*r.Ideal {
			t.Errorf("speeds %v: DLB speedup %.2f below 70%% of ideal %.2f", r.Speeds, r.SpeedupDLB, r.Ideal)
		}
	}
	if out := RenderHeterogeneous(rows); !strings.Contains(out, "speedup_dlb") {
		t.Error("render missing columns")
	}
}

func TestFig7FullScaleGolden(t *testing.T) {
	// The simulation is deterministic, so the full-scale Figure 7 numbers
	// in EXPERIMENTS.md are pinned here (with a small tolerance so
	// intentional model tweaks only require updating one place).
	if testing.Short() {
		t.Skip("full-scale run")
	}
	sw, err := Fig7(Full)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		p    int
		tDLB float64 // seconds
		eff  float64
	}{
		{2, 172.69, 0.965},
		{4, 73.47, 0.972},
		{8, 36.87, 0.904},
	}
	for _, w := range want {
		r := sw.Rows[w.p-1]
		if rel(r.TimeDLB.Seconds(), w.tDLB) > 0.02 {
			t.Errorf("P=%d: t_dlb = %.2fs, golden %.2fs", w.p, r.TimeDLB.Seconds(), w.tDLB)
		}
		if rel(r.EffDLB, w.eff) > 0.02 {
			t.Errorf("P=%d: eff_dlb = %.3f, golden %.3f", w.p, r.EffDLB, w.eff)
		}
	}
}

func rel(a, b float64) float64 {
	if b == 0 {
		return a
	}
	d := a/b - 1
	if d < 0 {
		d = -d
	}
	return d
}

func TestFaultTolerance(t *testing.T) {
	rows, err := FaultTolerance(Quick)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]FaultRow{}
	for _, r := range rows {
		byKey[r.App+"/"+r.Scenario] = r
	}
	for key, r := range byKey {
		if r.MaxDiff != 0 {
			t.Errorf("%s: result differs from sequential reference by %g", key, r.MaxDiff)
		}
	}
	free, crash := byKey["mm/fault-free"], byKey["mm/crash @30s"]
	if crash.Recoveries < 1 || crash.Evicted != 1 {
		t.Errorf("mm crash: recoveries=%d evicted=%d, want >=1 and 1", crash.Recoveries, crash.Evicted)
	}
	// Acceptance bound: losing a slave near the end of the run costs less
	// than 25% of the fault-free efficiency.
	if loss := (free.Eff - crash.Eff) / free.Eff; loss >= 0.25 {
		t.Errorf("mm crash efficiency loss %.1f%% (free %.3f, crash %.3f), want <25%%",
			loss*100, free.Eff, crash.Eff)
	}
	if r := byKey["mm/stall 1s @20s (tolerated)"]; r.Recoveries != 0 || r.Evicted != 0 {
		t.Errorf("tolerated stall: recoveries=%d evicted=%d, want 0/0", r.Recoveries, r.Evicted)
	}
	if r := byKey["mm/stall 20s @20s (evicted)"]; r.Recoveries < 1 || r.Evicted != 1 {
		t.Errorf("evicting stall: recoveries=%d evicted=%d, want >=1 and 1", r.Recoveries, r.Evicted)
	}
	if r := byKey["mm/join @10s"]; r.Joined != 1 {
		t.Errorf("join: joined=%d, want 1", r.Joined)
	}
	if r := byKey["sor/crash @30s"]; r.Recoveries < 1 || r.Evicted != 1 {
		t.Errorf("sor crash: recoveries=%d evicted=%d, want >=1 and 1", r.Recoveries, r.Evicted)
	}
	out := RenderFaultTolerance(rows)
	if !strings.Contains(out, "crash @30s") || !strings.Contains(out, "maxdiff") {
		t.Errorf("render missing expected columns:\n%s", out)
	}
}

func TestNetOverhead(t *testing.T) {
	rows, err := NetOverhead(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (mm/sor x goroutines/tcp)", len(rows))
	}
	for _, r := range rows {
		if r.MaxDiff != 0 {
			t.Errorf("%s/%s: result differs from sequential reference by %g", r.App, r.Backend, r.MaxDiff)
		}
		if r.Par <= 0 || r.Seq <= 0 {
			t.Errorf("%s/%s: non-positive timing (seq %v, par %v)", r.App, r.Backend, r.Seq, r.Par)
		}
	}
	if out := RenderNetOverhead(rows); len(out) == 0 {
		t.Error("empty rendering")
	}
}

func TestPlane(t *testing.T) {
	rep, err := Plane(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 12 {
		t.Fatalf("got %d rows, want 12 (6 benches x 2 variants)", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.NsPerOp <= 0 {
			t.Errorf("%s/%s: non-positive ns/op", r.Bench, r.Variant)
		}
	}
	// The optimizations must win on the payloads they were built for
	// (loose bounds here — the strict thresholds live in the full-scale
	// benchmarks; quick-scale payloads are small).
	for _, b := range []string{"wire-codec/work", "move-cost", "unit-copy/2d-row"} {
		if s := rep.Speedups[b]; s <= 1 {
			t.Errorf("%s: speedup %.2f, want > 1", b, s)
		}
	}
	if out := RenderPlane(rep); !strings.Contains(out, "speedups") {
		t.Errorf("render missing speedups:\n%s", out)
	}
	var parsed PlaneReport
	if err := json.Unmarshal([]byte(PlaneJSON(rep)), &parsed); err != nil {
		t.Fatalf("BENCH_plane.json is not valid JSON: %v", err)
	}
	if len(parsed.Rows) != len(rep.Rows) {
		t.Errorf("JSON round trip lost rows: %d != %d", len(parsed.Rows), len(rep.Rows))
	}
}

func TestOverlapSweep(t *testing.T) {
	rep, err := Overlap(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 12 {
		t.Fatalf("got %d rows, want 12 (2 progs x 3 costs x 2 slave counts)", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.Speedup < 0.999 {
			t.Errorf("%s P=%d %s: overlap slower than sync (%.3fx)", r.Prog, r.Slaves, r.FlopCost, r.Speedup)
		}
		if r.Fallback != 0 {
			t.Errorf("%s P=%d %s: unexpected overlap fallback (%d)", r.Prog, r.Slaves, r.FlopCost, r.Fallback)
		}
		switch r.Prog {
		case "jacobi":
			if r.Rounds == 0 {
				t.Errorf("jacobi P=%d %s: no overlap rounds", r.Slaves, r.FlopCost)
			}
		case "sor":
			if r.Rounds != 0 {
				t.Errorf("sor P=%d %s: pipelined program overlapped (%d rounds)", r.Slaves, r.FlopCost, r.Rounds)
			}
			if r.Speedup != 1.0 {
				t.Errorf("sor P=%d %s: speedup %.3fx, want exactly 1.0 (sync fallback)", r.Slaves, r.FlopCost, r.Speedup)
			}
		}
	}
	// The point of the optimization: at least one comm-bound jacobi config
	// must show a real win.
	if best := rep.Best["jacobi"]; best < 1.2 {
		t.Errorf("best jacobi speedup %.2fx, want >= 1.2x", best)
	}
	if out := RenderOverlap(rep); !strings.Contains(out, "best speedup") {
		t.Errorf("render missing best speedup:\n%s", out)
	}
	var parsed OverlapReport
	if err := json.Unmarshal([]byte(OverlapJSON(rep)), &parsed); err != nil {
		t.Fatalf("BENCH_overlap.json is not valid JSON: %v", err)
	}
	if len(parsed.Rows) != len(rep.Rows) {
		t.Errorf("JSON round trip lost rows: %d != %d", len(parsed.Rows), len(rep.Rows))
	}
}
