package exp

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/dlb"
)

// The scale experiment: where is the centralized master's wall? The flat
// balancer charges the master PerReportCost for every slave every decision
// round, so its per-round coordination cost grows linearly with P. The
// hierarchical scheme caps the master's fan-in at the group count (leaders
// aggregate their members), trading a fixed leader-side charge per group.
// This driver sweeps the simulated slave count, runs the same calibrated
// workload flat and hierarchical, and reports per-round coordination cost,
// efficiency, and the crossover point where the hierarchy starts winning.

// scaleReportCost is the pinned per-report processing charge. Both modes
// run with the same value so the sweep isolates the topology, not the
// constant.
const scaleReportCost = 200 * time.Microsecond

// paperJacobiSeq calibrates the jacobi workload's sequential virtual time;
// the paper does not report one, so it is chosen in-range with the others.
const paperJacobiSeq = 300 * time.Second

// ScaleRow is one slave count of the sweep: the same run flat and
// hierarchical.
type ScaleRow struct {
	P      int `json:"p"`
	Groups int `json:"groups"`

	FlatTime time.Duration `json:"flat_ns"`
	HierTime time.Duration `json:"hier_ns"`
	FlatEff  float64       `json:"flat_eff"`
	HierEff  float64       `json:"hier_eff"`

	// Measured master busy time divided by decision rounds.
	FlatMasterRound time.Duration `json:"flat_master_round_ns"`
	HierMasterRound time.Duration `json:"hier_master_round_ns"`
	// Modeled leader aggregation charge per round (PerReportCost x group
	// size) — the cost the hierarchy shifts off the master.
	LeaderRound time.Duration `json:"leader_round_ns"`

	FlatRounds     int64 `json:"flat_rounds"`
	HierRounds     int64 `json:"hier_rounds"`
	FlatMasterMsgs int   `json:"flat_master_msgs"`
	HierMasterMsgs int   `json:"hier_master_msgs"`
	Exchanges      int64 `json:"exchanges"`
	CrossUnits     int64 `json:"cross_units"`
}

// ScaleReport is the experiment's result.
type ScaleReport struct {
	Workload  string     `json:"workload"`
	GroupSize int        `json:"group_size"`
	Rows      []ScaleRow `json:"rows"`
	// Crossover is the smallest P where the hierarchical run beat the flat
	// run on elapsed time (0: never within the sweep).
	Crossover int `json:"crossover_p"`
}

// scaleLoad builds the sweep's imbalance: every fourth machine carries one
// competing process, every eighth carries two. The pattern repeats, so the
// imbalance shape is the same at every P and both topologies see identical
// clusters.
func scaleLoad(p int) []cluster.LoadProfile {
	load := make([]cluster.LoadProfile, p)
	for i := range load {
		switch {
		case i%8 == 3:
			load[i] = cluster.Constant(2)
		case i%4 == 1:
			load[i] = cluster.Constant(1)
		}
	}
	return load
}

// ScaleSweep runs the wall-finder: jacobi on 16..512 simulated slaves
// (quick: 8..64), flat versus hierarchical with a fixed group size.
func ScaleSweep(s Scale) (*ScaleReport, error) {
	ps := []int{16, 32, 64, 128, 256, 512}
	n, maxiter, groupSize := 1024, 8, 16
	if s.MM <= Quick.MM { // reduced scale for tests and CI smoke
		ps = []int{8, 16, 32, 64}
		n, maxiter, groupSize = 192, 4, 4
	}
	app, err := NewApp("jacobi", map[string]int{"n": n, "maxiter": maxiter}, paperJacobiSeq)
	if err != nil {
		return nil, err
	}
	rep := &ScaleReport{
		Workload:  fmt.Sprintf("jacobi n=%d maxiter=%d", n, maxiter),
		GroupSize: groupSize,
	}
	for _, p := range ps {
		groups := p / groupSize
		if groups < 2 {
			groups = 2
		}
		load := scaleLoad(p)
		flat, err := app.RunOnce(p, load, func(cfg *dlb.Config) {
			cfg.PerReportCost = scaleReportCost
		})
		if err != nil {
			return nil, fmt.Errorf("scale: flat P=%d: %w", p, err)
		}
		hier, err := app.RunOnce(p, load, func(cfg *dlb.Config) {
			cfg.PerReportCost = scaleReportCost
			cfg.Groups = groups
		})
		if err != nil {
			return nil, fmt.Errorf("scale: hier P=%d G=%d: %w", p, groups, err)
		}
		row := ScaleRow{
			P:              p,
			Groups:         groups,
			FlatTime:       flat.Elapsed,
			HierTime:       hier.Elapsed,
			FlatEff:        efficiency(app.SeqTime, flat.Elapsed, p),
			HierEff:        efficiency(app.SeqTime, hier.Elapsed, p),
			LeaderRound:    time.Duration(p/groups) * scaleReportCost,
			FlatRounds:     flat.Counters.Get("rounds"),
			HierRounds:     hier.Counters.Get("rounds"),
			FlatMasterMsgs: flat.MasterUsage.MessagesSent,
			HierMasterMsgs: hier.MasterUsage.MessagesSent,
			Exchanges:      hier.Counters.Get("hier_exchanges"),
			CrossUnits:     hier.Counters.Get("hier_cross_units"),
		}
		if row.FlatRounds > 0 {
			row.FlatMasterRound = flat.MasterUsage.BusyElapsed / time.Duration(row.FlatRounds)
		}
		if row.HierRounds > 0 {
			row.HierMasterRound = hier.MasterUsage.BusyElapsed / time.Duration(row.HierRounds)
		}
		rep.Rows = append(rep.Rows, row)
		if rep.Crossover == 0 && row.HierTime < row.FlatTime {
			rep.Crossover = p
		}
	}
	return rep, nil
}

func efficiency(seq, par time.Duration, p int) float64 {
	if par <= 0 {
		return 0
	}
	return float64(seq) / (float64(p) * float64(par))
}

// RenderScale formats the report as the experiment's text artifact.
func RenderScale(rep *ScaleReport) string {
	var sb strings.Builder
	sb.WriteString("Scale wall-finder: flat centralized master vs two-level hierarchy\n")
	fmt.Fprintf(&sb, "workload %s, group size %d, per-report cost %v (both modes)\n\n",
		rep.Workload, rep.GroupSize, scaleReportCost)
	fmt.Fprintf(&sb, "%5s %4s %12s %12s %7s %7s %12s %12s %12s %7s %7s\n",
		"P", "G", "t(flat)", "t(hier)", "e(flat)", "e(hier)",
		"mstr/rd flat", "mstr/rd hier", "ldr/rd", "xchg", "xunits")
	for _, r := range rep.Rows {
		fmt.Fprintf(&sb, "%5d %4d %12s %12s %7.3f %7.3f %12s %12s %12s %7d %7d\n",
			r.P, r.Groups,
			r.FlatTime.Round(time.Millisecond), r.HierTime.Round(time.Millisecond),
			r.FlatEff, r.HierEff,
			r.FlatMasterRound.Round(time.Microsecond), r.HierMasterRound.Round(time.Microsecond),
			r.LeaderRound, r.Exchanges, r.CrossUnits)
	}
	sb.WriteString("\n")
	if rep.Crossover > 0 {
		fmt.Fprintf(&sb, "crossover: hierarchy first beats the flat master at P=%d\n", rep.Crossover)
	} else {
		sb.WriteString("crossover: not reached within the sweep (flat master still ahead)\n")
	}
	sb.WriteString("(mstr/rd: measured master busy time per decision round; ldr/rd: modeled\n")
	sb.WriteString(" leader aggregation charge per round = per-report cost x group size)\n")
	return sb.String()
}

// ScaleJSON renders the machine-readable artifact (BENCH_scale.json).
func ScaleJSON(rep *ScaleReport) string {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b) + "\n"
}
