package exp

import (
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/dlb"
	"repro/internal/metrics"
)

// BaselineRow compares one load-distribution strategy in one environment.
type BaselineRow struct {
	Strategy string
	Scenario string
	Elapsed  time.Duration
	Eff      float64
	// MBMoved is the mid-run application data shipped because of
	// scheduling decisions (excluding the initial scatter and final
	// gather, which every strategy pays): per unit, DLB ships its B and C
	// columns between slaves; the central queue ships B+C to the slave and
	// C back through the master; diffusion ships the B column to the
	// neighbor.
	MBMoved float64
	Assigns int
}

// Baselines quantifies the related-work comparison (§6) on the MM workload:
// the paper's DLB (data stays resident, work moves only on imbalance)
// versus a central task queue (self-scheduling: all data flows through the
// master) and nearest-neighbor diffusion (local information only), in a
// dedicated environment and with a constant competing load on one slave.
func Baselines(s Scale) ([]BaselineRow, error) {
	app, err := MMApp(s)
	if err != nil {
		return nil, err
	}
	m, err := baseline.NewMM(s.MM)
	if err != nil {
		return nil, err
	}
	const slaves = 8
	scenarios := []struct {
		name string
		load []cluster.LoadProfile
	}{
		{"dedicated", nil},
		{"one loaded", []cluster.LoadProfile{cluster.Constant(1)}},
	}
	var rows []BaselineRow
	for _, sc := range scenarios {
		cc := cluster.Config{Slaves: slaves, Load: sc.load}

		// Paper's system: static and DLB.
		unitBytes := 8.0 * float64(s.MM)
		static, err := app.RunOnce(slaves, sc.load, func(c *dlb.Config) { c.DLB = false })
		if err != nil {
			return nil, err
		}
		rows = append(rows, BaselineRow{
			Strategy: "static block",
			Scenario: sc.name,
			Elapsed:  static.Elapsed,
			Eff:      metrics.Efficiency(app.SeqTime, static.Elapsed, static.Usage),
		})
		dyn, err := app.RunOnce(slaves, sc.load, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BaselineRow{
			Strategy: "DLB (this paper)",
			Scenario: sc.name,
			Elapsed:  dyn.Elapsed,
			Eff:      metrics.Efficiency(app.SeqTime, dyn.Elapsed, dyn.Usage),
			MBMoved:  float64(dyn.UnitsMoved) * 2 * unitBytes / 1e6,
			Assigns:  dyn.Moves,
		})

		// Central task queue.
		for _, pol := range []baseline.ChunkPolicy{baseline.FixedChunk(4), baseline.GSS{}} {
			res, err := baseline.RunSelfSched(m, cc, pol, app.FlopCost)
			if err != nil {
				return nil, err
			}
			if err := m.Verify(res); err != nil {
				return nil, err
			}
			rows = append(rows, BaselineRow{
				Strategy: "self-sched " + pol.Name(),
				Scenario: sc.name,
				Elapsed:  res.Elapsed,
				Eff:      metrics.Efficiency(app.SeqTime, res.Elapsed, res.Usage),
				MBMoved:  float64(res.UnitsMoved) * 3 * unitBytes / 1e6,
				Assigns:  res.Assigns,
			})
		}

		// Nearest-neighbor diffusion.
		res, err := baseline.RunDiffusion(m, cc, baseline.DiffusionConfig{FlopCost: app.FlopCost})
		if err != nil {
			return nil, err
		}
		if err := m.Verify(res); err != nil {
			return nil, err
		}
		rows = append(rows, BaselineRow{
			Strategy: "diffusion",
			Scenario: sc.name,
			Elapsed:  res.Elapsed,
			Eff:      metrics.Efficiency(app.SeqTime, res.Elapsed, res.Usage),
			MBMoved:  float64(res.UnitsMoved) * unitBytes / 1e6,
			Assigns:  res.Assigns,
		})
	}
	return rows, nil
}

// RenderBaselines formats the comparison.
func RenderBaselines(rows []BaselineRow) string {
	t := &metrics.Table{
		Title:   "Related-work comparison (§6) — MM on 8 slaves",
		Headers: []string{"scenario", "strategy", "time", "efficiency", "MB moved (slaves)", "decisions"},
	}
	for _, r := range rows {
		t.AddRowf(r.Scenario, r.Strategy, r.Elapsed, r.Eff, r.MBMoved, r.Assigns)
	}
	return t.String()
}
