package exp

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestScaleSweep runs the quick wall-finder sweep and checks its defining
// shape: the flat master's per-round coordination cost grows with P while
// the hierarchical master's stays strictly cheaper at the wide end, and
// the artifact renders with every row.
func TestScaleSweep(t *testing.T) {
	rep, err := ScaleSweep(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 3 {
		t.Fatalf("sweep produced %d rows", len(rep.Rows))
	}
	first, last := rep.Rows[0], rep.Rows[len(rep.Rows)-1]
	if last.FlatMasterRound <= first.FlatMasterRound {
		t.Errorf("flat master per-round cost did not grow with P: %v at P=%d vs %v at P=%d",
			first.FlatMasterRound, first.P, last.FlatMasterRound, last.P)
	}
	if last.HierMasterRound >= last.FlatMasterRound {
		t.Errorf("hier master per-round %v not cheaper than flat %v at P=%d",
			last.HierMasterRound, last.FlatMasterRound, last.P)
	}
	for _, r := range rep.Rows {
		if r.FlatRounds == 0 || r.HierRounds == 0 {
			t.Errorf("P=%d: no balancing rounds (flat %d, hier %d)", r.P, r.FlatRounds, r.HierRounds)
		}
		if r.FlatEff <= 0 || r.HierEff <= 0 {
			t.Errorf("P=%d: non-positive efficiency (flat %.3f, hier %.3f)", r.P, r.FlatEff, r.HierEff)
		}
	}
	text := RenderScale(rep)
	for _, want := range []string{"crossover", "mstr/rd"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered table missing %q:\n%s", want, text)
		}
	}
	var back ScaleReport
	if err := json.Unmarshal([]byte(ScaleJSON(rep)), &back); err != nil {
		t.Fatalf("BENCH_scale.json does not round-trip: %v", err)
	}
	if len(back.Rows) != len(rep.Rows) {
		t.Errorf("JSON round-trip lost rows: %d vs %d", len(back.Rows), len(rep.Rows))
	}
}
