package exp

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/dlb"
	"repro/internal/metrics"
)

// HeteroRow is one configuration of the heterogeneous-environment
// experiment.
type HeteroRow struct {
	Speeds     []float64
	TimePar    time.Duration
	TimeDLB    time.Duration
	SpeedupPar float64
	SpeedupDLB float64
	// Ideal is the best possible speedup: the sum of relative speeds.
	Ideal float64
}

// Heterogeneous measures the claim from the paper's conclusions that "the
// load balancer can rapidly adjust the work distribution in a heterogeneous
// environment": MM on mixed-speed workstations, static vs. DLB. The
// balancer needs no per-machine weights — measured work units per second
// capture heterogeneity directly (§3.2).
func Heterogeneous(s Scale) ([]HeteroRow, error) {
	app, err := MMApp(s)
	if err != nil {
		return nil, err
	}
	configs := [][]float64{
		{1, 1, 1, 1},       // homogeneous control
		{2, 1, 1, 0.5},     // mixed lab
		{4, 1, 1, 1},       // one fast server
		{1, 1, 0.25, 0.25}, // two old desktops
	}
	var rows []HeteroRow
	for _, speeds := range configs {
		cc := cluster.Config{Slaves: len(speeds), Speed: speeds}
		static, err := dlb.Run(dlb.Config{
			Plan: app.Plan, Params: app.Params, DLB: false, FlopCost: app.FlopCost,
		}, cc)
		if err != nil {
			return nil, err
		}
		dyn, err := dlb.Run(dlb.Config{
			Plan: app.Plan, Params: app.Params, DLB: true, FlopCost: app.FlopCost,
		}, cc)
		if err != nil {
			return nil, err
		}
		ideal := 0.0
		for _, sp := range speeds {
			ideal += sp
		}
		rows = append(rows, HeteroRow{
			Speeds:     speeds,
			TimePar:    static.Elapsed,
			TimeDLB:    dyn.Elapsed,
			SpeedupPar: metrics.Speedup(app.SeqTime, static.Elapsed),
			SpeedupDLB: metrics.Speedup(app.SeqTime, dyn.Elapsed),
			Ideal:      ideal,
		})
	}
	return rows, nil
}

// RenderHeterogeneous formats the experiment.
func RenderHeterogeneous(rows []HeteroRow) string {
	t := &metrics.Table{
		Title:   "Heterogeneous environment (paper conclusions) — MM, 4 workstations",
		Headers: []string{"speeds", "t_static", "t_dlb", "speedup_static", "speedup_dlb", "ideal"},
	}
	for _, r := range rows {
		t.AddRowf(speedsLabel(r.Speeds), r.TimePar, r.TimeDLB, r.SpeedupPar, r.SpeedupDLB, r.Ideal)
	}
	return t.String()
}

func speedsLabel(speeds []float64) string {
	out := ""
	for i, s := range speeds {
		if i > 0 {
			out += "/"
		}
		if s == float64(int(s)) {
			out += string(rune('0' + int(s)))
		} else {
			out += "½"
			if s == 0.25 {
				out = out[:len(out)-len("½")] + "¼"
			}
		}
	}
	return out
}
