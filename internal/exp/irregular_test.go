package exp

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestIrregular runs the quick-scale irregular experiment and checks its
// defining claim: on both skewed workloads the learned cost model beats
// the uniform assumption on makespan and on weighted load imbalance, and
// the artifacts render and round-trip.
func TestIrregular(t *testing.T) {
	rep, err := Irregular(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2 programs x 2 models)", len(rep.Rows))
	}
	byProg := map[string]map[string]IrregularRow{}
	for _, r := range rep.Rows {
		if byProg[r.Prog] == nil {
			byProg[r.Prog] = map[string]IrregularRow{}
		}
		byProg[r.Prog][r.CostModel] = r
	}
	for prog, rows := range byProg {
		uni, lrn := rows["uniform"], rows["learned"]
		if lrn.ElapsedS >= uni.ElapsedS {
			t.Errorf("%s: learned makespan %.4fs not better than uniform %.4fs",
				prog, lrn.ElapsedS, uni.ElapsedS)
		}
		if lrn.Imbalance >= uni.Imbalance {
			t.Errorf("%s: learned imbalance %.3f not better than uniform %.3f",
				prog, lrn.Imbalance, uni.Imbalance)
		}
		if g := rep.Gains[prog]; g <= 1 {
			t.Errorf("%s: makespan gain %.3f, want > 1", prog, g)
		}
	}
	text := RenderIrregular(rep)
	for _, want := range []string{"spmv", "pbin", "makespan gains"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered table missing %q:\n%s", want, text)
		}
	}
	var back IrregularReport
	if err := json.Unmarshal([]byte(IrregularJSON(rep)), &back); err != nil {
		t.Fatalf("BENCH_irregular.json does not round-trip: %v", err)
	}
	if len(back.Rows) != len(rep.Rows) {
		t.Errorf("JSON round-trip lost rows: %d vs %d", len(back.Rows), len(rep.Rows))
	}
}
