package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/dlb"
	"repro/internal/dlb/wire"
	"repro/internal/loopir"
)

// The data-plane experiment: how much of the distributed runtime's
// movement cost the binary bulk codec and the contiguous-copy kernels
// remove. Each row is one testing.Benchmark measurement; the speedup map
// pairs each optimized variant with its baseline. The same comparisons
// exist as go benchmarks (BenchmarkWireCodec, BenchmarkMoveCost in
// internal/dlb/wire, BenchmarkUnitCopy in internal/dlb); this driver
// renders them as an experiment artifact plus machine-readable JSON.

// PlaneRow is one benchmark measurement.
type PlaneRow struct {
	Bench       string  `json:"bench"`   // e.g. "wire-codec/work"
	Variant     string  `json:"variant"` // "gob"/"binary" or "walk"/"copy"
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"payload_bytes"` // wire or moved bytes per op
	MBPerSec    float64 `json:"mb_per_sec"`
}

// PlaneReport is the experiment's result: all rows plus the
// baseline-over-optimized time ratios (">1" means the optimization wins).
type PlaneReport struct {
	// CPUs is runtime.NumCPU() on the measuring host: the codec and copy
	// benchmarks are single-threaded, but a contended box skews ns/op, so
	// the artifact records where it was measured.
	CPUs     int                `json:"cpus"`
	Note     string             `json:"note,omitempty"`
	Rows     []PlaneRow         `json:"rows"`
	Speedups map[string]float64 `json:"speedups"`
}

// planeWorkMsg mirrors the wire benchmark's representative work movement,
// scaled by the experiment scale.
func planeWorkMsg(units, elems int) wire.Envelope {
	w := dlb.WorkMsg{Data: map[string][][]float64{}, Ghosts: map[string]map[int][]float64{}}
	for _, arr := range []string{"b", "c"} {
		var slices [][]float64
		for u := 0; u < units; u++ {
			col := make([]float64, elems)
			for i := range col {
				col[i] = float64(u*elems + i)
			}
			slices = append(slices, col)
		}
		w.Data[arr] = slices
		w.Ghosts[arr] = map[int][]float64{units: make([]float64, elems)}
	}
	for u := 0; u < units; u++ {
		w.Units = append(w.Units, u)
	}
	return wire.Envelope{Tag: "work", From: 1, Payload: w}
}

func planeCheckpointMsg(units, elems int) wire.Envelope {
	owned := map[int][]float64{}
	for u := 0; u < units; u++ {
		col := make([]float64, elems)
		for i := range col {
			col[i] = float64(u + i)
		}
		owned[u] = col
	}
	return wire.Envelope{Tag: "ckpt", From: 2, Payload: dlb.CheckpointMsg{
		Epoch: 1, Seq: 3, Slave: 2, Hook: 40, Phase: 8, NextContact: 44,
		Owned: map[string]map[int][]float64{"b": owned},
		Red:   map[string][]float64{"res": {0.5}},
		Meta:  true, Slaves: 4,
		Owner:      make([]int, 2*units),
		Active:     make([]bool, 2*units),
		Replicated: map[string][]float64{"p": make([]float64, 512)},
		RedSnap:    map[string][]float64{"res": {0.25}},
	}}
}

// benchRow runs fn under testing.Benchmark and records it.
func benchRow(bench, variant string, payloadBytes int64, fn func(b *testing.B)) PlaneRow {
	r := testing.Benchmark(fn)
	ns := float64(r.NsPerOp())
	mbps := 0.0
	if ns > 0 {
		mbps = float64(payloadBytes) / ns * 1e9 / 1e6
	}
	return PlaneRow{
		Bench:       bench,
		Variant:     variant,
		NsPerOp:     ns,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  payloadBytes,
		MBPerSec:    mbps,
	}
}

// codecBench measures one encode+decode round trip per iteration on a
// reused connection pair (gob's type dictionary and the pooled buffers
// warm, the steady state of a live link).
func codecBench(env wire.Envelope, binary bool) (int64, func(b *testing.B)) {
	var sz bytes.Buffer
	c := wire.NewConn(&sz)
	c.SetBinary(binary)
	if err := c.Send(env); err != nil {
		panic(err)
	}
	size := int64(sz.Len())
	return size, func(b *testing.B) {
		var buf bytes.Buffer
		send := wire.NewConn(&buf)
		send.SetBinary(binary)
		recv := wire.NewConn(&buf)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := send.Send(env); err != nil {
				b.Fatal(err)
			}
			if _, err := recv.Recv(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Plane runs the data-plane microbenchmarks: wire codec (gob vs binary)
// on the work-movement and checkpoint payloads, sender-side move cost,
// and the unit copy kernels (element walk vs contiguous copy) on the
// shapes the runtime moves.
func Plane(s Scale) (*PlaneReport, error) {
	units, elems := 16, 2000
	ckUnits, ckElems := 32, 1000
	side := 512
	if s.MM <= Quick.MM { // reduced scale for tests
		units, elems = 4, 200
		ckUnits, ckElems = 8, 100
		side = 64
	}
	rep := &PlaneReport{CPUs: runtime.NumCPU(), Speedups: map[string]float64{}}
	if rep.CPUs == 1 {
		rep.Note = "single-CPU host: ns/op may include scheduler interference"
	}
	addPair := func(bench string, base, opt PlaneRow) {
		rep.Rows = append(rep.Rows, base, opt)
		if opt.NsPerOp > 0 {
			rep.Speedups[bench] = base.NsPerOp / opt.NsPerOp
		}
	}

	// Wire codec round trips.
	for _, c := range []struct {
		name string
		env  wire.Envelope
	}{
		{"wire-codec/work", planeWorkMsg(units, elems)},
		{"wire-codec/ckpt", planeCheckpointMsg(ckUnits, ckElems)},
	} {
		gsz, gfn := codecBench(c.env, false)
		bsz, bfn := codecBench(c.env, true)
		addPair(c.name, benchRow(c.name, "gob", gsz, gfn), benchRow(c.name, "binary", bsz, bfn))
	}

	// Sender-side move cost: encode+frame only, the quantity the
	// balancer's MoveCostModel observes.
	env := planeWorkMsg(units, elems)
	moveBench := func(binary bool) (int64, func(b *testing.B)) {
		var sz bytes.Buffer
		c := wire.NewConn(&sz)
		c.SetBinary(binary)
		if err := c.Send(env); err != nil {
			panic(err)
		}
		size := int64(sz.Len())
		return size, func(b *testing.B) {
			var buf bytes.Buffer
			conn := wire.NewConn(&buf)
			conn.SetBinary(binary)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := conn.Send(env); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	gsz, gfn := moveBench(false)
	bsz, bfn := moveBench(true)
	addPair("move-cost", benchRow("move-cost", "gob", gsz, gfn), benchRow("move-cost", "binary", bsz, bfn))

	// Unit copy kernels: gather+scatter of one unit, walk vs copy.
	for _, c := range []struct {
		name string
		dims []int
		dim  int
	}{
		{"unit-copy/2d-row", []int{side, side}, 0},
		{"unit-copy/2d-col", []int{side, side}, 1},
		{"unit-copy/3d-mid", []int{side / 8, side / 8, side / 8}, 1},
	} {
		a := loopir.NewArray("a", c.dims)
		for i := range a.Data {
			a.Data[i] = float64(i)
		}
		u := c.dims[c.dim] / 2
		moved := int64(8 * len(a.Data) / c.dims[c.dim])
		walk := benchRow(c.name, "walk", moved, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				vals := dlb.UnitGatherWalk(a, c.dim, u)
				dlb.UnitScatterWalk(a, c.dim, u, vals)
			}
		})
		fast := benchRow(c.name, "copy", moved, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				vals := dlb.UnitGather(a, c.dim, u)
				dlb.UnitScatter(a, c.dim, u, vals)
			}
		})
		addPair(c.name, walk, fast)
	}
	return rep, nil
}

// RenderPlane formats the report as the experiment's text artifact.
func RenderPlane(rep *PlaneReport) string {
	var sb strings.Builder
	sb.WriteString("Data-plane microbenchmarks: binary bulk codec and contiguous-copy kernels\n")
	sb.WriteString("(each pair: baseline first, optimized second; speedup = baseline/optimized)\n")
	fmt.Fprintf(&sb, "host CPUs: %d", rep.CPUs)
	if rep.Note != "" {
		fmt.Fprintf(&sb, " — %s", rep.Note)
	}
	sb.WriteString("\n\n")
	fmt.Fprintf(&sb, "%-18s %-8s %14s %12s %14s %10s\n",
		"bench", "variant", "ns/op", "allocs/op", "payload B", "MB/s")
	prev := ""
	for _, r := range rep.Rows {
		if prev != "" && r.Bench != prev {
			sb.WriteString("\n")
		}
		prev = r.Bench
		fmt.Fprintf(&sb, "%-18s %-8s %14.0f %12d %14d %10.1f\n",
			r.Bench, r.Variant, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.MBPerSec)
	}
	sb.WriteString("\nspeedups:\n")
	for _, b := range planeBenchOrder(rep) {
		fmt.Fprintf(&sb, "  %-18s %.2fx\n", b, rep.Speedups[b])
	}
	return sb.String()
}

func planeBenchOrder(rep *PlaneReport) []string {
	var order []string
	seen := map[string]bool{}
	for _, r := range rep.Rows {
		if !seen[r.Bench] {
			seen[r.Bench] = true
			order = append(order, r.Bench)
		}
	}
	return order
}

// PlaneJSON renders the machine-readable artifact (BENCH_plane.json).
func PlaneJSON(rep *PlaneReport) string {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b) + "\n"
}
