package exp

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/dlb"
	"repro/internal/metrics"
)

// PipeliningRow compares pipelined vs. synchronous master interactions at
// one network latency.
type PipeliningRow struct {
	Latency   time.Duration
	TimePipe  time.Duration
	TimeSync  time.Duration
	EffPipe   float64
	EffSync   float64
	PhasesNum int
}

// AblationPipelining reproduces the §3.3 claim that pipelining master-slave
// interactions matters: MM on 4 slaves with one loaded processor, at the
// base Nectar-like latency and at a high (congested/WAN-like) latency where
// synchronous round trips sit in the critical path.
func AblationPipelining(s Scale) ([]PipeliningRow, error) {
	app, err := MMApp(s)
	if err != nil {
		return nil, err
	}
	const slaves = 4
	var rows []PipeliningRow
	for _, lat := range []time.Duration{500 * time.Microsecond, 50 * time.Millisecond} {
		cc := cluster.Config{
			Slaves:      slaves,
			Load:        []cluster.LoadProfile{cluster.Constant(1)},
			LinkLatency: lat,
		}
		runMode := func(sync bool) (*dlb.Result, error) {
			cfg := dlb.Config{
				Plan:        app.Plan,
				Params:      app.Params,
				DLB:         true,
				Synchronous: sync,
				FlopCost:    app.FlopCost,
			}
			return dlb.Run(cfg, cc)
		}
		pipe, err := runMode(false)
		if err != nil {
			return nil, err
		}
		sync, err := runMode(true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PipeliningRow{
			Latency:   lat,
			TimePipe:  pipe.Elapsed,
			TimeSync:  sync.Elapsed,
			EffPipe:   metrics.Efficiency(app.SeqTime, pipe.Elapsed, pipe.Usage),
			EffSync:   metrics.Efficiency(app.SeqTime, sync.Elapsed, sync.Usage),
			PhasesNum: pipe.Phases,
		})
	}
	return rows, nil
}

// RenderPipelining formats the pipelining ablation.
func RenderPipelining(rows []PipeliningRow) string {
	t := &metrics.Table{
		Title:   "Ablation §3.3 — pipelined vs synchronous master interactions (MM, 4 slaves, one loaded)",
		Headers: []string{"latency", "t_pipelined", "t_synchronous", "eff_pipe", "eff_sync"},
	}
	for _, r := range rows {
		t.AddRowf(r.Latency.String(), r.TimePipe, r.TimeSync, r.EffPipe, r.EffSync)
	}
	return t.String()
}

// GrainRow is one strip-mining block size.
type GrainRow struct {
	Grain   int // 0 = automatic (1.5 x quantum rule)
	Used    int
	Elapsed time.Duration
	Eff     float64
}

// AblationGrain reproduces §4.4: SOR with one loaded slave at forced strip
// grains around the automatic choice. Tiny grains synchronize every few
// iterations (Figure 3b) and suffer under competing load; huge grains pay
// pipeline fill/drain. The grid is sized so that one pipelined row costs
// well under a quantum (as on the paper's testbed), making the automatic
// grain larger than 1; Scale only raises the floor.
func AblationGrain(s Scale) ([]GrainRow, error) {
	// The paper's regime: one pipelined row costs a few milliseconds (well
	// under the 100 ms quantum), so per-row communication overhead is a
	// large fraction of fine-grain execution. 256x256 with 128 sweeps puts
	// the calibrated row cost near 3 ms, like the 2000-column rows on the
	// Sun 4/330s.
	n := s.SOR
	if n < 256 {
		n = 256
	}
	iters := 128
	app, err := NewApp("sor", map[string]int{"n": n, "maxiter": iters}, paperSORSeq)
	if err != nil {
		return nil, err
	}
	const slaves = 4
	cc := cluster.Config{Slaves: slaves, Load: []cluster.LoadProfile{cluster.Constant(1)}}
	grains := []int{1, 2, 8, 0 /* auto */, n} // n forces one block per sweep
	var rows []GrainRow
	for _, g := range grains {
		cfg := dlb.Config{
			Plan:        app.Plan,
			Params:      app.Params,
			DLB:         true,
			FlopCost:    app.FlopCost,
			ForcedGrain: g,
		}
		res, err := dlb.Run(cfg, cc)
		if err != nil {
			return nil, err
		}
		rows = append(rows, GrainRow{
			Grain:   g,
			Used:    res.Grain,
			Elapsed: res.Elapsed,
			Eff:     metrics.Efficiency(app.SeqTime, res.Elapsed, res.Usage),
		})
	}
	return rows, nil
}

// RenderGrain formats the grain ablation.
func RenderGrain(rows []GrainRow) string {
	t := &metrics.Table{
		Title:   "Ablation §4.4 — strip-mining grain size (SOR, 4 slaves, one loaded)",
		Headers: []string{"forced", "grain used", "time", "efficiency"},
	}
	for _, r := range rows {
		forced := fmt.Sprintf("%d", r.Grain)
		if r.Grain == 0 {
			forced = "auto"
		}
		t.AddRowf(forced, r.Used, r.Elapsed, r.Eff)
	}
	return t.String()
}

// RefinementRow is one balancer variant under the oscillating load.
type RefinementRow struct {
	Variant    string
	Elapsed    time.Duration
	Eff        float64
	Moves      int
	UnitsMoved int
}

// AblationRefinements reproduces the §3.2 refinements: rate filtering, the
// 10% improvement threshold, and the profitability determination, each
// disabled in turn under the Figure 9 oscillating load. The refinements
// exist to prevent excessive work movement.
func AblationRefinements(s Scale) ([]RefinementRow, error) {
	app, err := MMApp(s)
	if err != nil {
		return nil, err
	}
	const slaves = 4
	cc := cluster.Config{
		Slaves: slaves,
		Load: []cluster.LoadProfile{cluster.SquareWave{
			Period: 20 * time.Second, OnDuration: 10 * time.Second, Tasks: 1,
		}},
	}
	variants := []struct {
		name string
		mod  func(*dlb.Config)
	}{
		{"all refinements", func(*dlb.Config) {}},
		{"no filtering", func(c *dlb.Config) { c.DisableFilter = true }},
		{"no 10% threshold", func(c *dlb.Config) { c.MinImprovement = -1 }},
		{"no profitability", func(c *dlb.Config) { c.DisableProfitability = true }},
		{"none", func(c *dlb.Config) {
			c.DisableFilter = true
			c.MinImprovement = -1
			c.DisableProfitability = true
		}},
	}
	var rows []RefinementRow
	for _, v := range variants {
		cfg := dlb.Config{Plan: app.Plan, Params: app.Params, DLB: true, FlopCost: app.FlopCost}
		v.mod(&cfg)
		res, err := dlb.Run(cfg, cc)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RefinementRow{
			Variant:    v.name,
			Elapsed:    res.Elapsed,
			Eff:        metrics.Efficiency(app.SeqTime, res.Elapsed, res.Usage),
			Moves:      res.Moves,
			UnitsMoved: res.UnitsMoved,
		})
	}
	return rows, nil
}

// RenderRefinements formats the refinements ablation.
func RenderRefinements(rows []RefinementRow) string {
	t := &metrics.Table{
		Title:   "Ablation §3.2 — balancer refinements under oscillating load (MM, 4 slaves)",
		Headers: []string{"variant", "time", "efficiency", "moves", "units moved"},
	}
	for _, r := range rows {
		t.AddRowf(r.Variant, r.Elapsed, r.Eff, r.Moves, r.UnitsMoved)
	}
	return t.String()
}

// LUAdaptiveRow is one load-balancing phase of the LU run.
type LUAdaptiveRow struct {
	Time      time.Duration
	Phase     int
	SkipHooks int
	Period    time.Duration
	WorkLeft  int
}

// LUResult is the §4.7 experiment output.
type LUResult struct {
	Rows    []LUAdaptiveRow
	Elapsed time.Duration
	Eff     float64
}

// AblationLUAdaptive reproduces §4.7: as LU's per-invocation work shrinks,
// the ratio of balancing cost to work grows, and the automatic frequency
// selection compensates by skipping more hooks between interactions.
func AblationLUAdaptive(s Scale) (*LUResult, error) {
	app, err := LUApp(s)
	if err != nil {
		return nil, err
	}
	const slaves = 4
	cc := cluster.Config{Slaves: slaves, Load: []cluster.LoadProfile{cluster.Constant(1)}}
	cfg := dlb.Config{Plan: app.Plan, Params: app.Params, DLB: true, FlopCost: app.FlopCost, CollectTrace: true}
	res, err := dlb.Run(cfg, cc)
	if err != nil {
		return nil, err
	}
	out := &LUResult{
		Elapsed: res.Elapsed,
		Eff:     metrics.Efficiency(app.SeqTime, res.Elapsed, res.Usage),
	}
	for _, smp := range res.Trace {
		if smp.Slave != 0 {
			continue
		}
		work := 0
		for _, s2 := range res.Trace {
			if s2.Phase == smp.Phase {
				work += s2.Work
			}
		}
		out.Rows = append(out.Rows, LUAdaptiveRow{
			Time:      smp.Time,
			Phase:     smp.Phase,
			SkipHooks: smp.SkipHooks,
			Period:    smp.Period,
			WorkLeft:  work,
		})
	}
	return out, nil
}

// Render formats the LU adaptive-frequency experiment.
func (l *LUResult) Render() string {
	t := &metrics.Table{
		Title:   "§4.7 — adaptive balancing frequency for LU (4 slaves, one loaded)",
		Headers: []string{"time", "phase", "active columns", "skip", "period"},
	}
	for _, r := range l.Rows {
		t.AddRowf(r.Time, r.Phase, r.WorkLeft, r.SkipHooks, r.Period)
	}
	return t.String() + fmt.Sprintf("total: %.1fs, efficiency %.3f\n", l.Elapsed.Seconds(), l.Eff)
}
