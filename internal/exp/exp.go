// Package exp contains one driver per paper experiment: Table 1, Figures
// 5-9, and the ablations implied by the text (pipelined vs. synchronous
// interactions §3.3, grain-size selection §4.4, balancer refinements §3.2,
// adaptive frequency for LU §4.7). Each driver builds the workload, runs
// the compiled program on a simulated cluster, and renders the same rows or
// series the paper reports.
//
// Virtual times are calibrated so the sequential baselines land on the
// paper's figures (500x500 MM ≈ 250 s, 2000x2000 SOR ≈ 350 s on a Sun
// 4/330) regardless of the real problem size executed, so the shape of
// every curve is comparable to the paper at any Scale.
package exp

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/depend"
	"repro/internal/dlb"
	"repro/internal/loopir"
	"repro/internal/metrics"
)

// Scale selects the real problem sizes. Virtual-time calibration keeps the
// simulated durations at paper scale for any value, so Quick is suitable
// for tests and Full for the benchmark harness.
type Scale struct {
	MM      int // matrix order for MM
	SOR     int // grid order for SOR
	SORIter int // SOR sweeps
	LU      int // matrix order for LU
	MaxP    int // largest slave count in sweeps
}

// Full is the benchmark-harness scale.
var Full = Scale{MM: 192, SOR: 256, SORIter: 12, LU: 160, MaxP: 8}

// Quick is a reduced scale for unit tests.
var Quick = Scale{MM: 48, SOR: 64, SORIter: 6, LU: 48, MaxP: 4}

// Paper-reported sequential baselines used for calibration.
const (
	paperMMSeq  = 250 * time.Second // Figure 5a, 500x500 MM
	paperSORSeq = 350 * time.Second // Figure 6a, 2000x2000 SOR
	paperLUSeq  = 200 * time.Second // not shown in the paper; chosen in-range
)

// Specs are the distribution directives for the evaluated programs.
func specFor(name string) depend.DistSpec {
	switch name {
	case "mm":
		return depend.DistSpec{Dims: map[string]int{"c": 1, "b": 1}, Loops: []string{"j"}}
	case "sor":
		return depend.DistSpec{Dims: map[string]int{"b": 0}, Loops: []string{"j"}}
	case "lu":
		return depend.DistSpec{Dims: map[string]int{"a": 1}, Loops: []string{"j"}}
	case "jacobi":
		return depend.DistSpec{Dims: map[string]int{"a": 0, "anew": 0}, Loops: []string{"i", "i2"}}
	}
	panic("exp: unknown program " + name)
}

// App bundles a compiled program with its parameters and calibration.
type App struct {
	Name     string
	Plan     *compile.Plan
	Params   map[string]int
	FlopCost time.Duration
	SeqTime  time.Duration
}

// NewApp compiles a library program and calibrates its virtual flop cost so
// the sequential run takes paperSeq of virtual time.
func NewApp(name string, params map[string]int, paperSeq time.Duration) (*App, error) {
	prog := loopir.Library()[name]
	if prog == nil {
		return nil, fmt.Errorf("exp: unknown program %q", name)
	}
	plan, err := compile.Compile(prog, compile.Options{Dist: specFor(name)})
	if err != nil {
		return nil, err
	}
	flops := loopir.EstFlops(prog.Body, params)
	if flops <= 0 {
		return nil, fmt.Errorf("exp: program %q has no work", name)
	}
	return &App{
		Name:     name,
		Plan:     plan,
		Params:   params,
		FlopCost: time.Duration(float64(paperSeq) / flops),
		SeqTime:  paperSeq,
	}, nil
}

// MMApp builds the calibrated matrix-multiplication application.
func MMApp(s Scale) (*App, error) {
	return NewApp("mm", map[string]int{"n": s.MM}, paperMMSeq)
}

// SORApp builds the calibrated successive-overrelaxation application.
func SORApp(s Scale) (*App, error) {
	return NewApp("sor", map[string]int{"n": s.SOR, "maxiter": s.SORIter}, paperSORSeq)
}

// LUApp builds the calibrated LU-decomposition application.
func LUApp(s Scale) (*App, error) {
	return NewApp("lu", map[string]int{"n": s.LU}, paperLUSeq)
}

// RunOnce executes the app on a cluster with the given slave count, load
// profiles, and config tweaks.
func (a *App) RunOnce(slaves int, load []cluster.LoadProfile, mod func(*dlb.Config)) (*dlb.Result, error) {
	cfg := dlb.Config{
		Plan:     a.Plan,
		Params:   a.Params,
		DLB:      true,
		FlopCost: a.FlopCost,
	}
	if mod != nil {
		mod(&cfg)
	}
	return dlb.Run(cfg, cluster.Config{Slaves: slaves, Load: load})
}

// SweepRow is one processor count of a Figure 5-8 style sweep.
type SweepRow struct {
	P          int
	TimePar    time.Duration // static distribution (no DLB)
	TimeDLB    time.Duration
	SpeedupPar float64
	SpeedupDLB float64
	EffPar     float64
	EffDLB     float64
}

// Sweep is a full Figure 5-8 result.
type Sweep struct {
	Name    string
	Caption string
	Seq     time.Duration
	Rows    []SweepRow
}

// RunSweep executes the app at P = 1..maxP with and without DLB under the
// given per-P load profile factory.
func (a *App) RunSweep(name, caption string, maxP int, loadFor func(p int) []cluster.LoadProfile) (*Sweep, error) {
	sw := &Sweep{Name: name, Caption: caption, Seq: a.SeqTime}
	for p := 1; p <= maxP; p++ {
		var load []cluster.LoadProfile
		if loadFor != nil {
			load = loadFor(p)
		}
		par, err := a.RunOnce(p, load, func(c *dlb.Config) { c.DLB = false })
		if err != nil {
			return nil, fmt.Errorf("%s P=%d static: %w", name, p, err)
		}
		dyn, err := a.RunOnce(p, load, nil)
		if err != nil {
			return nil, fmt.Errorf("%s P=%d dlb: %w", name, p, err)
		}
		sw.Rows = append(sw.Rows, SweepRow{
			P:          p,
			TimePar:    par.Elapsed,
			TimeDLB:    dyn.Elapsed,
			SpeedupPar: metrics.Speedup(a.SeqTime, par.Elapsed),
			SpeedupDLB: metrics.Speedup(a.SeqTime, dyn.Elapsed),
			EffPar:     metrics.Efficiency(a.SeqTime, par.Elapsed, par.Usage),
			EffDLB:     metrics.Efficiency(a.SeqTime, dyn.Elapsed, dyn.Usage),
		})
	}
	return sw, nil
}

// Render formats the sweep as the paper's three panels (time, speedup,
// efficiency) in one table.
func (s *Sweep) Render() string {
	t := &metrics.Table{
		Title:   fmt.Sprintf("%s — %s (sequential: %.0fs)", s.Name, s.Caption, s.Seq.Seconds()),
		Headers: []string{"P", "t_par", "t_dlb", "speedup_par", "speedup_dlb", "eff_par", "eff_dlb"},
	}
	for _, r := range s.Rows {
		t.AddRowf(r.P, r.TimePar, r.TimeDLB, r.SpeedupPar, r.SpeedupDLB, r.EffPar, r.EffDLB)
	}
	return t.String()
}
