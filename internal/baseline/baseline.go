// Package baseline implements the competing load-distribution strategies
// the paper discusses in its related-work section (§6), so the comparison
// can be made quantitatively on the same simulated cluster:
//
//   - Self-scheduling (central task queue): work units live in a queue at
//     the master; idle slaves request chunks (fixed-size, guided [7], or
//     trapezoid [10] chunking). On a distributed-memory system the data
//     for every chunk must travel to the executing slave and the results
//     back — the central-location bottleneck the paper calls out in §3.1.
//
//   - Diffusion (nearest-neighbor balancing [16][17]): work is distributed
//     at startup and shifted between adjacent slaves when they detect an
//     imbalance, using only local information; global imbalances must
//     propagate hop by hop.
//
// The workload is the independent-iteration case both families assume:
// C = A·B computed one column at a time (the same arrays and arithmetic as
// the library MM program, so results are verified against the sequential
// reference).
package baseline

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/loopir"
	"repro/internal/vtime"
)

// MM is the baseline workload: independent columns of C = A·B.
type MM struct {
	N    int
	Inst *loopir.Instance // master-side arrays (a, b, c)
}

// NewMM builds the workload with the same deterministic data as the
// library MM program.
func NewMM(n int) (*MM, error) {
	inst, err := loopir.NewInstance(loopir.MatMul(), map[string]int{"n": n})
	if err != nil {
		return nil, err
	}
	return &MM{N: n, Inst: inst}, nil
}

// UnitFlops is the cost of one column: n inner products of length n
// (multiply + add + store per element).
func (m *MM) UnitFlops() float64 { return 3 * float64(m.N) * float64(m.N) }

// Reference computes the sequential result for verification.
func (m *MM) Reference() (*loopir.Array, error) {
	ref := m.Inst.Clone()
	if err := ref.Run(); err != nil {
		return nil, err
	}
	return ref.Arrays["c"], nil
}

// computeColumn computes column j of C into out (length n), reading the
// full A and column j of B.
func computeColumn(n int, a []float64, bcol []float64, out []float64) {
	for i := 0; i < n; i++ {
		sum := 0.0
		arow := a[i*n : i*n+n]
		for k := 0; k < n; k++ {
			sum += arow[k] * bcol[k]
		}
		out[i] = sum
	}
}

// column extracts column j of a row-major n x n matrix.
func column(n int, data []float64, j int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = data[i*n+j]
	}
	return out
}

// Result summarizes a baseline run.
type Result struct {
	Elapsed    time.Duration
	Usage      []cluster.Usage
	C          *loopir.Array
	Assigns    int // scheduling decisions (chunks handed out / transfers)
	UnitsMoved int // units whose data crossed the network after startup
}

// Verify checks the computed C against the sequential reference.
func (m *MM) Verify(r *Result) error {
	ref, err := m.Reference()
	if err != nil {
		return err
	}
	if d := ref.MaxAbsDiff(r.C); d != 0 {
		return fmt.Errorf("baseline: result differs from reference by %g", d)
	}
	return nil
}

// runKernel is shared scaffolding: build a kernel+cluster, run the given
// spawner, and collect usage.
func runKernel(cc cluster.Config, spawn func(k *vtime.Kernel, c *cluster.Cluster)) (time.Duration, []cluster.Usage, error) {
	k := vtime.NewKernel()
	c := cluster.New(k, cc)
	spawn(k, c)
	if err := k.Run(); err != nil {
		return 0, nil, err
	}
	usage := make([]cluster.Usage, cc.Slaves)
	for i := 0; i < cc.Slaves; i++ {
		n := c.Node(i)
		n.FinishAt(k.Now())
		usage[i] = n.Usage()
	}
	return k.Now(), usage, nil
}
