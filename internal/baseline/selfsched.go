package baseline

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/loopir"
	"repro/internal/vtime"
)

// ChunkPolicy decides how many units an idle slave receives per request.
type ChunkPolicy interface {
	Next(remaining, slaves int) int
	Name() string
}

// FixedChunk hands out a constant number of units (pure self-scheduling
// with k=1, chunk scheduling otherwise).
type FixedChunk int

// Next implements ChunkPolicy.
func (f FixedChunk) Next(remaining, slaves int) int {
	n := int(f)
	if n < 1 {
		n = 1
	}
	if n > remaining {
		n = remaining
	}
	return n
}

// Name implements ChunkPolicy.
func (f FixedChunk) Name() string { return fmt.Sprintf("fixed-%d", int(f)) }

// GSS is guided self-scheduling (Polychronopoulos & Kuck): each request
// gets ceil(remaining / slaves) units, so chunks shrink geometrically.
type GSS struct{}

// Next implements ChunkPolicy.
func (GSS) Next(remaining, slaves int) int {
	n := (remaining + slaves - 1) / slaves
	if n < 1 {
		n = 1
	}
	return n
}

// Name implements ChunkPolicy.
func (GSS) Name() string { return "gss" }

// TSS is trapezoid self-scheduling (Tzen & Ni): chunk sizes decrease
// linearly from First to Last.
type TSS struct {
	First, Last int
	step        int
	cur         int
	started     bool
}

// NewTSS builds a trapezoid policy with the classic defaults
// (first = N/(2P), last = 1) for N units on P slaves.
func NewTSS(units, slaves int) *TSS {
	first := units / (2 * slaves)
	if first < 1 {
		first = 1
	}
	// Number of chunks ≈ 2N/(first+last); step chosen to reach Last.
	n := 2 * units / (first + 1)
	step := 0
	if n > 1 {
		step = (first - 1) / (n - 1)
	}
	return &TSS{First: first, Last: 1, step: step}
}

// Next implements ChunkPolicy.
func (t *TSS) Next(remaining, slaves int) int {
	if !t.started {
		t.cur = t.First
		t.started = true
	}
	n := t.cur
	t.cur -= t.step
	if t.cur < t.Last {
		t.cur = t.Last
	}
	if n < 1 {
		n = 1
	}
	if n > remaining {
		n = remaining
	}
	return n
}

// Name implements ChunkPolicy.
func (t *TSS) Name() string { return "tss" }

// self-scheduling message payloads.
type ssChunk struct {
	Units []int
	BCols [][]float64
	CCols [][]float64 // current values (zeros here, but shipped for generality)
	Stop  bool
}

type ssResult struct {
	Units []int
	CCols [][]float64
}

// RunSelfSched executes the workload with a central task queue. Slaves
// request work when idle; every chunk's input columns travel from the
// master to the slave and the output columns travel back.
func RunSelfSched(m *MM, cc cluster.Config, policy ChunkPolicy, flopCost time.Duration) (*Result, error) {
	if flopCost <= 0 {
		flopCost = time.Microsecond
	}
	n := m.N
	res := &Result{C: loopir.NewArray("c", []int{n, n})}
	a := m.Inst.Arrays["a"]
	b := m.Inst.Arrays["b"]

	elapsed, usage, err := runKernel(cc, func(k *vtime.Kernel, c *cluster.Cluster) {
		slaves := cc.Slaves
		// Master: replicate A at startup, then serve the queue.
		c.Spawn("master", cluster.MasterID, func(p *vtime.Proc, node *cluster.Node) {
			for s := 0; s < slaves; s++ {
				node.Send(p, s, "matrixA", msgHeaderBytes+8*len(a.Data), append([]float64(nil), a.Data...))
			}
			next := 0
			completed := 0
			stopped := 0
			for completed < n || stopped < slaves {
				msg := node.RecvTag(p, cluster.AnySource, "")
				switch msg.Tag {
				case "req":
					remaining := n - next
					if remaining == 0 {
						node.Send(p, msg.From, "chunk", msgHeaderBytes, ssChunk{Stop: true})
						stopped++
						continue
					}
					take := policy.Next(remaining, slaves)
					units := make([]int, take)
					bcols := make([][]float64, take)
					ccols := make([][]float64, take)
					bytes := msgHeaderBytes
					for i := 0; i < take; i++ {
						u := next + i
						units[i] = u
						bcols[i] = column(n, b.Data, u)
						ccols[i] = make([]float64, n)
						bytes += 16 * n
					}
					next += take
					res.Assigns++
					res.UnitsMoved += take
					node.Send(p, msg.From, "chunk", bytes, ssChunk{Units: units, BCols: bcols, CCols: ccols})
				case "result":
					r := msg.Data.(ssResult)
					for i, u := range r.Units {
						for row := 0; row < n; row++ {
							res.C.Data[row*n+u] = r.CCols[i][row]
						}
					}
					completed += len(r.Units)
				}
			}
		})
		for s := 0; s < slaves; s++ {
			c.Spawn(fmt.Sprintf("slave%d", s), s, func(p *vtime.Proc, node *cluster.Node) {
				amsg := node.RecvTag(p, cluster.MasterID, "matrixA")
				local := amsg.Data.([]float64)
				for {
					node.Send(p, cluster.MasterID, "req", msgHeaderBytes, nil)
					chunk := node.RecvTag(p, cluster.MasterID, "chunk").Data.(ssChunk)
					if chunk.Stop {
						return
					}
					node.Compute(p, time.Duration(float64(len(chunk.Units))*m.UnitFlops()*float64(flopCost)))
					out := make([][]float64, len(chunk.Units))
					bytes := msgHeaderBytes
					for i := range chunk.Units {
						out[i] = make([]float64, n)
						computeColumn(n, local, chunk.BCols[i], out[i])
						bytes += 8 * n
					}
					node.Send(p, cluster.MasterID, "result", bytes, ssResult{Units: chunk.Units, CCols: out})
				}
			})
		}
	})
	if err != nil {
		return nil, err
	}
	res.Elapsed = elapsed
	res.Usage = usage
	return res, nil
}

const msgHeaderBytes = 32
