package baseline

import (
	"testing"
	"time"

	"repro/internal/cluster"
)

func mm(t *testing.T, n int) *MM {
	t.Helper()
	m, err := NewMM(n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSelfSchedCorrectDedicated(t *testing.T) {
	m := mm(t, 24)
	for _, pol := range []ChunkPolicy{FixedChunk(1), FixedChunk(4), GSS{}, NewTSS(24, 3)} {
		res, err := RunSelfSched(m, cluster.Config{Slaves: 3}, pol, 0)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if err := m.Verify(res); err != nil {
			t.Errorf("%s: %v", pol.Name(), err)
		}
		if res.UnitsMoved != 24 {
			t.Errorf("%s: units moved = %d, want 24 (every unit ships)", pol.Name(), res.UnitsMoved)
		}
	}
}

func TestSelfSchedAdaptsToLoad(t *testing.T) {
	m := mm(t, 32)
	flop := 100 * time.Microsecond
	cc := cluster.Config{Slaves: 4, Load: []cluster.LoadProfile{cluster.Constant(1)}}
	res, err := RunSelfSched(m, cc, FixedChunk(1), flop)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(res); err != nil {
		t.Fatal(err)
	}
	// Self-scheduling adapts naturally: the loaded slave just requests
	// fewer chunks. Elapsed should be well under the static worst case
	// (half-speed slave doing a quarter of the work = 2x the fair share).
	unitCost := time.Duration(m.UnitFlops() * float64(flop))
	static := time.Duration(2 * 8 * float64(unitCost)) // 8 units at half speed
	if res.Elapsed >= static {
		t.Errorf("elapsed %v did not beat the static bound %v", res.Elapsed, static)
	}
}

func TestGSSChunksShrink(t *testing.T) {
	g := GSS{}
	first := g.Next(100, 4)
	if first != 25 {
		t.Fatalf("first GSS chunk = %d, want 25", first)
	}
	if n := g.Next(3, 4); n != 1 {
		t.Fatalf("small-remainder GSS chunk = %d, want 1", n)
	}
}

func TestTSSChunksDecreaseLinearly(t *testing.T) {
	tss := NewTSS(128, 4)
	prev := 1 << 30
	seen := 0
	remaining := 128
	for remaining > 0 {
		n := tss.Next(remaining, 4)
		if n > prev {
			t.Fatalf("TSS chunk grew: %d after %d", n, prev)
		}
		prev = n
		remaining -= n
		seen++
		if seen > 1000 {
			t.Fatal("TSS did not terminate")
		}
	}
}

func TestDiffusionCorrectDedicated(t *testing.T) {
	m := mm(t, 24)
	res, err := RunDiffusion(m, cluster.Config{Slaves: 3}, DiffusionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(res); err != nil {
		t.Fatal(err)
	}
}

func TestDiffusionShiftsWorkUnderLoad(t *testing.T) {
	m := mm(t, 48)
	flop := 100 * time.Microsecond
	cc := cluster.Config{Slaves: 4, Load: []cluster.LoadProfile{cluster.Constant(1)}}
	res, err := RunDiffusion(m, cc, DiffusionConfig{FlopCost: flop})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(res); err != nil {
		t.Fatal(err)
	}
	if res.UnitsMoved == 0 {
		t.Fatal("diffusion moved no work despite a loaded slave")
	}
	// The surplus on the loaded slave must drain toward the others: total
	// time well under the static bound (12 units at half speed).
	unitCost := time.Duration(m.UnitFlops() * float64(flop))
	static := time.Duration(2 * 12 * float64(unitCost))
	if res.Elapsed >= static {
		t.Errorf("elapsed %v did not beat static bound %v", res.Elapsed, static)
	}
}

func TestDiffusionHeterogeneousSpeeds(t *testing.T) {
	m := mm(t, 48)
	cc := cluster.Config{Slaves: 4, Speed: []float64{0.5, 1, 1, 2}}
	res, err := RunDiffusion(m, cc, DiffusionConfig{FlopCost: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(res); err != nil {
		t.Fatal(err)
	}
	if res.UnitsMoved == 0 {
		t.Fatal("no diffusion toward the fast slave")
	}
}

func TestSelfSchedSingleSlave(t *testing.T) {
	m := mm(t, 16)
	res, err := RunSelfSched(m, cluster.Config{Slaves: 1}, GSS{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(res); err != nil {
		t.Fatal(err)
	}
}

func TestDiffusionSingleSlave(t *testing.T) {
	m := mm(t, 16)
	res, err := RunDiffusion(m, cluster.Config{Slaves: 1}, DiffusionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(res); err != nil {
		t.Fatal(err)
	}
	if res.UnitsMoved != 0 {
		t.Fatal("single slave moved work to itself")
	}
}
