package baseline

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/loopir"
	"repro/internal/vtime"
)

// DiffusionConfig tunes the nearest-neighbor balancer.
type DiffusionConfig struct {
	// Threshold is the minimum surplus (in units) over a neighbor before
	// work is shifted; half the difference moves.
	Threshold int
	// InfoEvery is how many completed units pass between load reports to
	// the neighbors.
	InfoEvery int
	// FlopCost is the virtual cost per floating-point operation.
	FlopCost time.Duration
}

func (c DiffusionConfig) withDefaults() DiffusionConfig {
	if c.Threshold < 1 {
		c.Threshold = 1
	}
	if c.InfoEvery < 1 {
		c.InfoEvery = 2
	}
	if c.FlopCost <= 0 {
		c.FlopCost = time.Microsecond
	}
	return c
}

type diffUnit struct {
	unit int
	bcol []float64
}

type diffXfer struct {
	Units []diffUnit
}

type diffLoad struct {
	Count int
	Reply bool // true for responses, which must not trigger another reply
}

type diffResult struct {
	Unit int
	Col  []float64
}

// RunDiffusion executes the workload with nearest-neighbor (diffusion)
// balancing on a line topology: each slave exchanges load information with
// its adjacent slaves and pushes half its surplus when the difference
// exceeds the threshold. Only local information is used — a hot spot's
// surplus must propagate hop by hop, in contrast to the paper's
// global-information master (§3.1, §6).
func RunDiffusion(m *MM, cc cluster.Config, dcfg DiffusionConfig) (*Result, error) {
	dcfg = dcfg.withDefaults()
	n := m.N
	res := &Result{C: loopir.NewArray("c", []int{n, n})}
	a := m.Inst.Arrays["a"]
	b := m.Inst.Arrays["b"]

	elapsed, usage, err := runKernel(cc, func(k *vtime.Kernel, c *cluster.Cluster) {
		slaves := cc.Slaves
		c.Spawn("master", cluster.MasterID, func(p *vtime.Proc, node *cluster.Node) {
			// Scatter: replicated A plus each slave's initial block of
			// (unit, B-column) pairs.
			for s := 0; s < slaves; s++ {
				node.Send(p, s, "matrixA", msgHeaderBytes+8*len(a.Data), append([]float64(nil), a.Data...))
				var units []diffUnit
				for u := 0; u < n; u++ {
					if u*slaves/n == s {
						units = append(units, diffUnit{unit: u, bcol: column(n, b.Data, u)})
					}
				}
				node.Send(p, s, "work", msgHeaderBytes+8*n*len(units), diffXfer{Units: units})
			}
			for done := 0; done < n; done++ {
				r := node.RecvTag(p, cluster.AnySource, "result").Data.(diffResult)
				for row := 0; row < n; row++ {
					res.C.Data[row*n+r.Unit] = r.Col[row]
				}
			}
			for s := 0; s < slaves; s++ {
				node.Send(p, s, "stop", msgHeaderBytes, nil)
			}
		})

		for s := 0; s < slaves; s++ {
			s := s
			c.Spawn(fmt.Sprintf("slave%d", s), s, func(p *vtime.Proc, node *cluster.Node) {
				local := node.RecvTag(p, cluster.MasterID, "matrixA").Data.([]float64)
				queue := node.RecvTag(p, cluster.MasterID, "work").Data.(diffXfer).Units
				neighbors := []int{}
				if s > 0 {
					neighbors = append(neighbors, s-1)
				}
				if s < slaves-1 {
					neighbors = append(neighbors, s+1)
				}
				sinceInfo := 0

				sendInfo := func() {
					for _, nb := range neighbors {
						node.Send(p, nb, "load", msgHeaderBytes, diffLoad{Count: len(queue)})
					}
				}
				maybePush := func(to, theirCount int) {
					surplus := len(queue) - theirCount
					if surplus < 2*dcfg.Threshold {
						return
					}
					move := surplus / 2
					if move > len(queue) {
						move = len(queue)
					}
					units := append([]diffUnit(nil), queue[len(queue)-move:]...)
					queue = queue[:len(queue)-move]
					res.Assigns++
					res.UnitsMoved += move
					node.Send(p, to, "xfer", msgHeaderBytes+8*n*move, diffXfer{Units: units})
				}
				handle := func(msg cluster.Msg) bool {
					switch msg.Tag {
					case "stop":
						return true
					case "xfer":
						queue = append(queue, msg.Data.(diffXfer).Units...)
					case "load":
						info := msg.Data.(diffLoad)
						if !info.Reply {
							// Answer probes (replies must not re-reply, or
							// two idle neighbors would ping-pong forever).
							node.Send(p, msg.From, "load", msgHeaderBytes, diffLoad{Count: len(queue), Reply: true})
						}
						maybePush(msg.From, info.Count)
					}
					return false
				}

				for {
					// Drain pending control traffic.
					for {
						msg, ok := node.TryRecvTag(p, cluster.AnySource, "")
						if !ok {
							break
						}
						if handle(msg) {
							return
						}
					}
					if len(queue) == 0 {
						// Idle: wait for a transfer (or stop); answering
						// neighbor load probes advertises our idleness.
						if handle(node.RecvTag(p, cluster.AnySource, "")) {
							return
						}
						continue
					}
					u := queue[0]
					queue = queue[1:]
					node.Compute(p, time.Duration(m.UnitFlops()*float64(dcfg.FlopCost)))
					out := make([]float64, n)
					computeColumn(n, local, u.bcol, out)
					node.Send(p, cluster.MasterID, "result", msgHeaderBytes+8*n, diffResult{Unit: u.unit, Col: out})
					sinceInfo++
					if sinceInfo >= dcfg.InfoEvery {
						sinceInfo = 0
						sendInfo()
					}
				}
			})
		}
	})
	if err != nil {
		return nil, err
	}
	res.Elapsed = elapsed
	res.Usage = usage
	return res, nil
}
