// Package lang is the textual front end for the loop-nest language: a
// lexer, a recursive-descent parser producing loopir programs, and a
// canonical formatter. It stands in for the Fortran front end of the
// paper's compiler — programs can be written as source text and fed
// straight to internal/compile:
//
//	program sor(n, maxiter)
//	array b[n][n] init hash(3);
//	for iter = 0 to maxiter {
//	    for i = 1 to n-1 {
//	        for j = 1 to n-1 {
//	            b[j][i] = 0.493*(b[j][i-1] + b[j-1][i] + b[j][i+1] + b[j+1][i])
//	                      - 0.972*b[j][i];
//	        }
//	    }
//	}
//
// Loops run from the lower bound inclusive to the upper bound exclusive.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokFloat
	tokPunct // single characters and two-char relops
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// Error is a parse error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src    string
	pos    int
	line   int
	col    int
	tokens []token
}

var twoCharOps = []string{"<=", ">=", "==", "!="}

func lex(src string) ([]token, error) {
	lx := &lexer{src: src, line: 1, col: 1}
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.advance(1)
		case c == ' ' || c == '\t' || c == '\r':
			lx.advance(1)
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.advance(1)
			}
		case isIdentStart(rune(c)):
			start := lx.pos
			line, col := lx.line, lx.col
			for lx.pos < len(lx.src) && isIdentPart(rune(lx.src[lx.pos])) {
				lx.advance(1)
			}
			lx.tokens = append(lx.tokens, token{tokIdent, lx.src[start:lx.pos], line, col})
		case c >= '0' && c <= '9' || c == '.' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9':
			start := lx.pos
			line, col := lx.line, lx.col
			isFloat := false
			for lx.pos < len(lx.src) {
				ch := lx.src[lx.pos]
				if ch >= '0' && ch <= '9' {
					lx.advance(1)
					continue
				}
				if ch == '.' && !isFloat {
					isFloat = true
					lx.advance(1)
					continue
				}
				if (ch == 'e' || ch == 'E') && lx.pos+1 < len(lx.src) {
					next := lx.src[lx.pos+1]
					if next >= '0' && next <= '9' || next == '-' || next == '+' {
						isFloat = true
						lx.advance(2)
						continue
					}
				}
				break
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			lx.tokens = append(lx.tokens, token{kind, lx.src[start:lx.pos], line, col})
		default:
			line, col := lx.line, lx.col
			matched := false
			for _, op := range twoCharOps {
				if strings.HasPrefix(lx.src[lx.pos:], op) {
					lx.tokens = append(lx.tokens, token{tokPunct, op, line, col})
					lx.advance(2)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			switch c {
			case '(', ')', '[', ']', '{', '}', ',', ';', '=', '+', '-', '*', '/', '<', '>':
				lx.tokens = append(lx.tokens, token{tokPunct, string(c), line, col})
				lx.advance(1)
			default:
				return nil, &Error{line, col, fmt.Sprintf("unexpected character %q", string(c))}
			}
		}
	}
	lx.tokens = append(lx.tokens, token{tokEOF, "", lx.line, lx.col})
	return lx.tokens, nil
}

func (lx *lexer) advance(n int) {
	for i := 0; i < n && lx.pos < len(lx.src); i++ {
		if lx.src[lx.pos] == '\n' {
			lx.line++
			lx.col = 1
		} else {
			lx.col++
		}
		lx.pos++
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
