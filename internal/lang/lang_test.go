package lang

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/compile"
	"repro/internal/depend"
	"repro/internal/loopir"
)

const sorSrc = `
program sor(n, maxiter)
array b[n][n] init hash(3);
// Gauss-Seidel style overrelaxation, the paper's Figure 3a kernel.
for iter = 0 to maxiter {
    for i = 1 to n-1 {
        for j = 1 to n-1 {
            // Grouping matches the built-in program exactly, so even
            // floating-point rounding is identical.
            b[j][i] = 0.493*((b[j][i-1] + b[j-1][i]) + (b[j][i+1] + b[j+1][i]))
                      + -0.972*b[j][i];
        }
    }
}
`

func TestParseSORMatchesBuiltin(t *testing.T) {
	parsed, err := Parse(sorSrc)
	if err != nil {
		t.Fatal(err)
	}
	params := map[string]int{"n": 14, "maxiter": 3}
	in1, err := loopir.NewInstance(parsed, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := in1.Run(); err != nil {
		t.Fatal(err)
	}
	in2, err := loopir.NewInstance(loopir.SOR(), params)
	if err != nil {
		t.Fatal(err)
	}
	if err := in2.Run(); err != nil {
		t.Fatal(err)
	}
	if d := in1.Arrays["b"].MaxAbsDiff(in2.Arrays["b"]); d != 0 {
		t.Fatalf("parsed SOR differs from built-in by %g", d)
	}
}

func TestParsedProgramCompiles(t *testing.T) {
	parsed, err := Parse(sorSrc)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := compile.Compile(parsed, compile.Options{
		Dist: depend.DistSpec{Dims: map[string]int{"b": 0}, Loops: []string{"j"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Restricted || !plan.StripMined {
		t.Error("parsed SOR should compile to a restricted, strip-mined plan")
	}
}

func TestParseMM(t *testing.T) {
	src := `
program mm(n)
array a[n][n] init hash(1);
array b[n][n] init hash(2);
array c[n][n] init zero;
for i = 0 to n {
    for j = 0 to n {
        for k = 0 to n {
            c[i][j] = c[i][j] + a[i][k]*b[k][j];
        }
    }
}
`
	parsed, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	params := map[string]int{"n": 9}
	in1, _ := loopir.NewInstance(parsed, params)
	in2, _ := loopir.NewInstance(loopir.MatMul(), params)
	if err := in1.Run(); err != nil {
		t.Fatal(err)
	}
	if err := in2.Run(); err != nil {
		t.Fatal(err)
	}
	if d := in1.Arrays["c"].MaxAbsDiff(in2.Arrays["c"]); d != 0 {
		t.Fatalf("parsed MM differs from built-in by %g", d)
	}
}

func TestParseIf(t *testing.T) {
	src := `
program thresh(n)
array v[n] init hash(6);
for i = 0 to n {
    if v[i] > 0.5 {
        v[i] = v[i] * 0.5;
    } else {
        v[i] = v[i] + 0.25;
    }
}
`
	parsed, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	in, err := loopir.NewInstance(parsed, map[string]int{"n": 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	for _, v := range in.Arrays["v"].Data {
		if v > 0.75 {
			t.Fatalf("threshold not applied: %v", v)
		}
	}
}

func TestParseDiagdomInit(t *testing.T) {
	src := `
program lu(n)
array a[n][n] init diagdom(4.0);
for k = 0 to n {
    for i = k+1 to n {
        a[i][k] = a[i][k] / a[k][k];
    }
    for j = k+1 to n {
        for ii = k+1 to n {
            a[ii][j] = a[ii][j] - a[ii][k]*a[k][j];
        }
    }
}
`
	parsed, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	params := map[string]int{"n": 10}
	in1, _ := loopir.NewInstance(parsed, params)
	in2, _ := loopir.NewInstance(loopir.LU(), params)
	if err := in1.Run(); err != nil {
		t.Fatal(err)
	}
	if err := in2.Run(); err != nil {
		t.Fatal(err)
	}
	if d := in1.Arrays["a"].MaxAbsDiff(in2.Arrays["a"]); d != 0 {
		t.Fatalf("parsed LU differs from built-in by %g", d)
	}
}

func TestParseErrorsHavePositions(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"program", "expected identifier"},
		{"program p(n) array a;", "at least one dimension"},
		{"program p(n) array a[n]; a[0] = @;", "unexpected character"},
		{"program p(n) array a[n]; for i = 0 to n { a[i] = 1; ", "unterminated block"},
		{"program p(n) array a[n] init wild;", "unknown initializer"},
		{"program p(n) array a[n]; a = 1;", "needs subscripts"},
		{"program p(n) array a[n]; if a[0] ~ 1 { }", "unexpected character"},
		{"program p(n) array a[n]; for i = 0 to n { a[q] = 1; }", "unbound"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", tc.src, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) error = %q, want substring %q", tc.src, err.Error(), tc.want)
		}
	}
}

func TestParseErrorPositionAccurate(t *testing.T) {
	src := "program p(n)\narray a[n];\nfor i = 0 to n {\n    a[i] = $;\n}\n"
	_, err := Parse(src)
	pe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if pe.Line != 4 {
		t.Fatalf("error line = %d, want 4", pe.Line)
	}
}

func TestCommentsIgnored(t *testing.T) {
	src := "// header\nprogram p(n) // trailing\narray a[n]; // decl\nfor i = 0 to n { a[i] = 1; } // body\n"
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestFormatRoundTripBuiltins(t *testing.T) {
	for name, prog := range loopir.Library() {
		src := Format(prog)
		parsed, err := Parse(src)
		if err != nil {
			t.Errorf("%s: reparse failed: %v\n%s", name, err, src)
			continue
		}
		if again := Format(parsed); again != src {
			t.Errorf("%s: format not idempotent:\n--- first\n%s\n--- second\n%s", name, src, again)
		}
	}
}

func TestFormatRoundTripQuick(t *testing.T) {
	// Random affine programs survive a format -> parse -> format cycle.
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := randProgram(r)
		src := Format(prog)
		parsed, err := Parse(src)
		if err != nil {
			return false
		}
		return Format(parsed) == src
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// randProgram builds a small random valid program (mirrors the loopir
// quick-test generator, but expressed through the public constructors).
func randProgram(r *rand.Rand) *loopir.Program {
	n := loopir.Iv("n")
	vars := []string{"i", "j", "k"}[:1+r.Intn(3)]
	idx := func() loopir.IExpr {
		v := loopir.Iv(vars[r.Intn(len(vars))])
		switch r.Intn(3) {
		case 0:
			return loopir.Isub(v, loopir.Ic(1))
		case 1:
			return loopir.Iadd(v, loopir.Ic(1))
		}
		return v
	}
	ref := func() loopir.Ref { return loopir.Fref("a", idx(), idx()) }
	var expr func(d int) loopir.Expr
	expr = func(d int) loopir.Expr {
		if d == 0 || r.Intn(3) == 0 {
			if r.Intn(2) == 0 {
				return loopir.Fc(float64(r.Intn(9)) * 0.25)
			}
			return ref()
		}
		ops := []func(loopir.Expr, loopir.Expr) loopir.Expr{loopir.Fadd, loopir.Fsub, loopir.Fmul}
		return ops[r.Intn(len(ops))](expr(d-1), expr(d-1))
	}
	body := []loopir.Stmt{loopir.Set(ref(), expr(2))}
	var stmt loopir.Stmt
	for d := len(vars) - 1; d >= 0; d-- {
		if stmt != nil {
			body = []loopir.Stmt{stmt}
		}
		stmt = loopir.For(vars[d], loopir.Ic(1), loopir.Isub(n, loopir.Ic(1)), body...)
	}
	return &loopir.Program{
		Name:   "rand",
		Params: []string{"n"},
		Arrays: []*loopir.ArrayDecl{{Name: "a", Dims: []loopir.IExpr{n, n}}},
		Body:   []loopir.Stmt{stmt},
	}
}

func TestParseUntil(t *testing.T) {
	src := `
program conv(n, maxiter)
array v[n] init hash(6);
array r[1] init zero;
for iter = 0 to maxiter until r[0] < 0.001 {
    r[0] = 0;
    for i = 1 to n-1 {
        v[i] = 0.5*(v[i-1] + v[i+1]);
        r[0] = r[0] + v[i]*v[i];
    }
}
`
	parsed, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	loop, ok := parsed.Body[0].(*loopir.Loop)
	if !ok || loop.BreakIf == nil {
		t.Fatal("until clause not parsed into BreakIf")
	}
	if loop.BreakIf.Op != "<" {
		t.Fatalf("op = %q, want <", loop.BreakIf.Op)
	}
	// Round trip preserves the clause.
	again, err := Parse(Format(parsed))
	if err != nil {
		t.Fatal(err)
	}
	if again.Body[0].(*loopir.Loop).BreakIf == nil {
		t.Fatal("until lost in format round trip")
	}
}

func TestFormatRoundTripConvergeProgram(t *testing.T) {
	src := Format(loopir.JacobiConverge())
	parsed, err := Parse(src)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, src)
	}
	if Format(parsed) != src {
		t.Fatal("format not idempotent for jacobi-converge")
	}
}
