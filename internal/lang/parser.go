package lang

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/loopir"
)

// Initializers available to `array ... init name(arg)` declarations. They
// mirror the deterministic initializers of the built-in program library.
var initializers = map[string]func(arg float64) loopir.InitFn{
	"zero": func(float64) loopir.InitFn { return nil },
	"hash": func(salt float64) loopir.InitFn {
		return func(idx []int) float64 { return hashInit(uint64(salt), idx) }
	},
	// diagdom(v): hashed values with v added on the diagonal (first two
	// indices equal) — LU without pivoting needs diagonal dominance.
	"diagdom": func(v float64) loopir.InitFn {
		return func(idx []int) float64 {
			x := hashInit(4, idx)
			if len(idx) >= 2 && idx[0] == idx[1] {
				return x + v
			}
			return x
		}
	},
	// powrows(salt): block-correlated power-law row lengths in [0,64) —
	// floor(64·h⁴) of a hash of the 32-row block index (see loopir's
	// irregular program library).
	"powrows": func(salt float64) loopir.InitFn {
		return func(idx []int) float64 {
			h := hashInit(uint64(salt), []int{idx[0] / 32})
			v := h * h
			v *= v
			return math.Floor(64 * v)
		}
	},
	// band(salt): integer band offsets in [-32,32): floor(64·h) − 32.
	"band": func(salt float64) loopir.InitFn {
		return func(idx []int) float64 {
			return math.Floor(64*hashInit(uint64(salt), idx)) - 32
		}
	},
}

// hashInit replicates loopir's deterministic pseudo-random initializer.
func hashInit(salt uint64, idx []int) float64 {
	h := uint64(2166136261) ^ salt*0x9E3779B97F4A7C15
	for _, i := range idx {
		h ^= uint64(i + 1)
		h *= 1099511628211
	}
	return float64(h%100000) / 100000
}

// Parse compiles source text into a validated loopir program.
func Parse(src string) (*loopir.Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(t token, format string, args ...interface{}) error {
	return &Error{t.line, t.col, fmt.Sprintf(format, args...)}
}

func (p *parser) expect(text string) (token, error) {
	t := p.cur()
	if t.kind == tokPunct && t.text == text || t.kind == tokIdent && t.text == text {
		p.pos++
		return t, nil
	}
	return t, p.errf(t, "expected %q, found %q", text, t.text)
}

func (p *parser) expectIdent() (token, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return t, p.errf(t, "expected identifier, found %q", t.text)
	}
	p.pos++
	return t, nil
}

var keywords = map[string]bool{
	"program": true, "array": true, "init": true,
	"for": true, "to": true, "until": true, "if": true, "else": true,
}

func (p *parser) program() (*loopir.Program, error) {
	if _, err := p.expect("program"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	prog := &loopir.Program{Name: name.text}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	if p.cur().text != ")" {
		for {
			prm, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			prog.Params = append(prog.Params, prm.text)
			if p.cur().text != "," {
				break
			}
			p.pos++
		}
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	for p.cur().kind == tokIdent && p.cur().text == "array" {
		decl, err := p.arrayDecl()
		if err != nil {
			return nil, err
		}
		prog.Arrays = append(prog.Arrays, decl)
	}
	for p.cur().kind != tokEOF {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		prog.Body = append(prog.Body, s)
	}
	return prog, nil
}

func (p *parser) arrayDecl() (*loopir.ArrayDecl, error) {
	if _, err := p.expect("array"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	decl := &loopir.ArrayDecl{Name: name.text}
	for p.cur().text == "[" {
		p.pos++
		d, err := p.iexpr()
		if err != nil {
			return nil, err
		}
		decl.Dims = append(decl.Dims, d)
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if len(decl.Dims) == 0 {
		return nil, p.errf(p.cur(), "array %q needs at least one dimension", name.text)
	}
	if p.cur().kind == tokIdent && p.cur().text == "init" {
		p.pos++
		fn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		builder, ok := initializers[fn.text]
		if !ok {
			return nil, p.errf(fn, "unknown initializer %q (have zero, hash, diagdom, powrows, band)", fn.text)
		}
		arg := 0.0
		if p.cur().text == "(" {
			p.pos++
			t := p.next()
			if t.kind != tokInt && t.kind != tokFloat {
				return nil, p.errf(t, "initializer argument must be a number, found %q", t.text)
			}
			arg, err = strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf(t, "bad number %q", t.text)
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
		}
		decl.Init = builder(arg)
		if fn.text != "zero" {
			// Canonical spec so Format(Parse(src)) reproduces the clause.
			decl.InitSpec = fmt.Sprintf("%s(%s)", fn.text, strconv.FormatFloat(arg, 'g', -1, 64))
		}
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return decl, nil
}

func (p *parser) stmt() (loopir.Stmt, error) {
	t := p.cur()
	switch {
	case t.kind == tokIdent && t.text == "for":
		return p.forStmt()
	case t.kind == tokIdent && t.text == "if":
		return p.ifStmt()
	case t.kind == tokIdent && !keywords[t.text]:
		return p.assign()
	}
	return nil, p.errf(t, "expected statement, found %q", t.text)
}

func (p *parser) block() ([]loopir.Stmt, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []loopir.Stmt
	for p.cur().text != "}" {
		if p.cur().kind == tokEOF {
			return nil, p.errf(p.cur(), "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.pos++
	return out, nil
}

func (p *parser) forStmt() (loopir.Stmt, error) {
	p.pos++ // "for"
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("="); err != nil {
		return nil, err
	}
	lo, err := p.iexpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("to"); err != nil {
		return nil, err
	}
	hi, err := p.iexpr()
	if err != nil {
		return nil, err
	}
	// Optional data-dependent termination: `until expr relop expr`
	// (checked after each iteration).
	var breakIf *loopir.Cond
	if p.cur().kind == tokIdent && p.cur().text == "until" {
		p.pos++
		l, err := p.expr()
		if err != nil {
			return nil, err
		}
		op := p.cur()
		switch op.text {
		case "<", "<=", ">", ">=", "==", "!=":
			p.pos++
		default:
			return nil, p.errf(op, "expected comparison operator after until, found %q", op.text)
		}
		r, err := p.expr()
		if err != nil {
			return nil, err
		}
		breakIf = &loopir.Cond{Op: op.text, L: l, R: r}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &loopir.Loop{Var: v.text, Lo: lo, Hi: hi, Body: body, BreakIf: breakIf}, nil
}

func (p *parser) ifStmt() (loopir.Stmt, error) {
	p.pos++ // "if"
	l, err := p.expr()
	if err != nil {
		return nil, err
	}
	op := p.cur()
	switch op.text {
	case "<", "<=", ">", ">=", "==", "!=":
		p.pos++
	default:
		return nil, p.errf(op, "expected comparison operator, found %q", op.text)
	}
	r, err := p.expr()
	if err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	out := &loopir.If{Cond: loopir.Cond{Op: op.text, L: l, R: r}, Then: then}
	if p.cur().kind == tokIdent && p.cur().text == "else" {
		p.pos++
		els, err := p.block()
		if err != nil {
			return nil, err
		}
		out.Else = els
	}
	return out, nil
}

func (p *parser) assign() (loopir.Stmt, error) {
	lhs, err := p.ref()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("="); err != nil {
		return nil, err
	}
	rhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return &loopir.Assign{LHS: lhs, RHS: rhs}, nil
}

func (p *parser) ref() (loopir.Ref, error) {
	name, err := p.expectIdent()
	if err != nil {
		return loopir.Ref{}, err
	}
	r := loopir.Ref{Array: name.text}
	if p.cur().text != "[" {
		return r, p.errf(p.cur(), "array reference %q needs subscripts", name.text)
	}
	for p.cur().text == "[" {
		p.pos++
		ix, err := p.iexpr()
		if err != nil {
			return loopir.Ref{}, err
		}
		r.Idx = append(r.Idx, ix)
		if _, err := p.expect("]"); err != nil {
			return loopir.Ref{}, err
		}
	}
	return r, nil
}

// --- integer (index) expressions ---

func (p *parser) iexpr() (loopir.IExpr, error) {
	l, err := p.iterm()
	if err != nil {
		return nil, err
	}
	for p.cur().text == "+" || p.cur().text == "-" {
		op := p.next().text
		r, err := p.iterm()
		if err != nil {
			return nil, err
		}
		if op == "+" {
			l = loopir.Iadd(l, r)
		} else {
			l = loopir.Isub(l, r)
		}
	}
	return l, nil
}

func (p *parser) iterm() (loopir.IExpr, error) {
	l, err := p.ifactor()
	if err != nil {
		return nil, err
	}
	for p.cur().text == "*" {
		p.pos++
		r, err := p.ifactor()
		if err != nil {
			return nil, err
		}
		l = loopir.Imul(l, r)
	}
	return l, nil
}

func (p *parser) ifactor() (loopir.IExpr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.pos++
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, p.errf(t, "bad integer %q", t.text)
		}
		return loopir.Ic(n), nil
	case t.kind == tokIdent && !keywords[t.text]:
		p.pos++
		if p.cur().text != "[" {
			return loopir.Iv(t.text), nil
		}
		// Subscripted identifier in index position: a data-array read
		// (IArr), e.g. "rowlen[i]" as a loop bound.
		var idx []loopir.IExpr
		for p.cur().text == "[" {
			p.pos++
			e, err := p.iexpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			idx = append(idx, e)
		}
		return loopir.Ia(t.text, idx...), nil
	case t.text == "(":
		p.pos++
		e, err := p.iexpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.text == "-":
		p.pos++
		if num := p.cur(); num.kind == tokInt {
			p.pos++
			n, err := strconv.Atoi(num.text)
			if err != nil {
				return nil, p.errf(num, "bad integer %q", num.text)
			}
			return loopir.Ic(-n), nil
		}
		e, err := p.ifactor()
		if err != nil {
			return nil, err
		}
		return loopir.Isub(loopir.Ic(0), e), nil
	}
	return nil, p.errf(t, "expected index expression, found %q", t.text)
}

// --- float (data) expressions ---

func (p *parser) expr() (loopir.Expr, error) {
	l, err := p.fterm()
	if err != nil {
		return nil, err
	}
	for p.cur().text == "+" || p.cur().text == "-" {
		op := p.next().text
		r, err := p.fterm()
		if err != nil {
			return nil, err
		}
		if op == "+" {
			l = loopir.Fadd(l, r)
		} else {
			l = loopir.Fsub(l, r)
		}
	}
	return l, nil
}

func (p *parser) fterm() (loopir.Expr, error) {
	l, err := p.ffactor()
	if err != nil {
		return nil, err
	}
	for p.cur().text == "*" || p.cur().text == "/" {
		op := p.next().text
		r, err := p.ffactor()
		if err != nil {
			return nil, err
		}
		if op == "*" {
			l = loopir.Fmul(l, r)
		} else {
			l = loopir.Fdiv(l, r)
		}
	}
	return l, nil
}

func (p *parser) ffactor() (loopir.Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt || t.kind == tokFloat:
		p.pos++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf(t, "bad number %q", t.text)
		}
		return loopir.Fc(v), nil
	case t.kind == tokIdent && !keywords[t.text]:
		return p.ref()
	case t.text == "(":
		p.pos++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.text == "-":
		p.pos++
		if num := p.cur(); num.kind == tokInt || num.kind == tokFloat {
			p.pos++
			v, err := strconv.ParseFloat(num.text, 64)
			if err != nil {
				return nil, p.errf(num, "bad number %q", num.text)
			}
			return loopir.Fc(-v), nil
		}
		e, err := p.ffactor()
		if err != nil {
			return nil, err
		}
		return loopir.Fsub(loopir.Fc(0), e), nil
	}
	return nil, p.errf(t, "expected expression, found %q", t.text)
}
