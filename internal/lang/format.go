package lang

import (
	"fmt"
	"strings"

	"repro/internal/loopir"
)

// Format renders a program as canonical parseable source. Array
// initializers named by an InitSpec (every library program) round-trip
// through `init` clauses; an Init function with no spec is an opaque Go
// value that cannot be recovered and formats as zero initialization.
func Format(p *loopir.Program) string {
	var sb strings.Builder
	// Program names are free-form in loopir but identifiers in source.
	name := strings.ReplaceAll(p.Name, "-", "_")
	fmt.Fprintf(&sb, "program %s(%s)\n", name, strings.Join(p.Params, ", "))
	for _, a := range p.Arrays {
		fmt.Fprintf(&sb, "array %s", a.Name)
		for _, d := range a.Dims {
			fmt.Fprintf(&sb, "[%s]", formatIExpr(d))
		}
		if a.InitSpec != "" {
			fmt.Fprintf(&sb, " init %s", a.InitSpec)
		}
		sb.WriteString(";\n")
	}
	formatStmts(&sb, p.Body, 0)
	return sb.String()
}

func formatStmts(sb *strings.Builder, stmts []loopir.Stmt, depth int) {
	ind := strings.Repeat("    ", depth)
	for _, s := range stmts {
		switch s := s.(type) {
		case *loopir.Loop:
			if s.BreakIf != nil {
				fmt.Fprintf(sb, "%sfor %s = %s to %s until %s %s %s {\n", ind, s.Var,
					formatIExpr(s.Lo), formatIExpr(s.Hi),
					formatExpr(s.BreakIf.L), s.BreakIf.Op, formatExpr(s.BreakIf.R))
			} else {
				fmt.Fprintf(sb, "%sfor %s = %s to %s {\n", ind, s.Var, formatIExpr(s.Lo), formatIExpr(s.Hi))
			}
			formatStmts(sb, s.Body, depth+1)
			sb.WriteString(ind + "}\n")
		case *loopir.Assign:
			fmt.Fprintf(sb, "%s%s = %s;\n", ind, formatRef(s.LHS), formatExpr(s.RHS))
		case *loopir.If:
			fmt.Fprintf(sb, "%sif %s %s %s {\n", ind, formatExpr(s.Cond.L), s.Cond.Op, formatExpr(s.Cond.R))
			formatStmts(sb, s.Then, depth+1)
			if len(s.Else) > 0 {
				sb.WriteString(ind + "} else {\n")
				formatStmts(sb, s.Else, depth+1)
			}
			sb.WriteString(ind + "}\n")
		}
	}
}

func formatRef(r loopir.Ref) string {
	var sb strings.Builder
	sb.WriteString(r.Array)
	for _, ix := range r.Idx {
		fmt.Fprintf(&sb, "[%s]", formatIExpr(ix))
	}
	return sb.String()
}

// formatIExpr emits fully parenthesized index expressions so precedence is
// unambiguous and the formatter/parser round-trip is exact.
func formatIExpr(e loopir.IExpr) string {
	switch e := e.(type) {
	case loopir.ICon:
		return fmt.Sprintf("%d", int(e))
	case loopir.IVar:
		return string(e)
	case loopir.IBin:
		return fmt.Sprintf("(%s %c %s)", formatIExpr(e.L), e.Op, formatIExpr(e.R))
	case loopir.IArr:
		var sb strings.Builder
		sb.WriteString(e.Array)
		for _, ix := range e.Idx {
			fmt.Fprintf(&sb, "[%s]", formatIExpr(ix))
		}
		return sb.String()
	}
	return "?"
}

func formatExpr(e loopir.Expr) string {
	switch e := e.(type) {
	case loopir.Const:
		return fmt.Sprintf("%g", float64(e))
	case loopir.Ref:
		return formatRef(e)
	case loopir.Bin:
		return fmt.Sprintf("(%s %c %s)", formatExpr(e.L), e.Op, formatExpr(e.R))
	}
	return "?"
}
