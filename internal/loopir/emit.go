package loopir

import (
	"fmt"
	"go/format"
	"sort"
	"strconv"
	"strings"
)

// This file is the AOT source emitter: it lowers a compiled kernel's
// instruction tree (kernel.go) to a straight-line Go function, closing the
// gap between the postfix VM and hand-written Go. The emitted function has
// the stable builtin-typed signature
//
//	func Name(lo, hi int, regs []int, data [][]float64)
//
// so it can cross a plugin boundary without named types: lo/hi carry the
// distributed range (unused by whole-body kernels), regs the free-variable
// values in EmittedKernel.FreeVars order, and data one flat storage slice
// per array in EmittedKernel.Arrays order.
//
// The emitted code replicates the VM's execution order exactly — loop
// entry test, strength-reduced offset initialization with hoisted endpoint
// bounds checks, body / break / increment / advance sequencing — so its
// floating-point results are bit-identical to Kernel.Run. Floating-point
// constants are wrapped as float64(...) conversions: typed-constant
// arithmetic rounds per operation like the runtime, whereas untyped
// constant folding would round once at the end and could diverge from the
// VM by an ULP.

// EmittedKernel is one emitted Go kernel function plus the metadata a host
// needs to call it: which storage slice goes in each data slot, which free
// variable goes in each regs slot, and the parallel-safety verdict of the
// companion range-kernel analysis.
type EmittedKernel struct {
	// Name is the emitted function's name.
	Name string
	// Src is the function source text (doc comment + declaration), ready
	// to be concatenated into a package file.
	Src string
	// Arrays names the array bound to each data[i] slot.
	Arrays []string
	// Writes names the arrays the kernel stores to (a subset of Arrays) —
	// the only slices a subprocess runner needs to ship back.
	Writes []string
	// FreeVars names the free variable bound to each regs[i] slot. Loop
	// variables bound inside the kernel are locals and do not appear.
	FreeVars []string
	// ParallelSafe, HasChains and SeqReason mirror the RangeKernel
	// analysis: iterations of [lo,hi) may run on disjoint sub-ranges iff
	// ParallelSafe; HasChains means bit-identical parallelism requires the
	// VM's record/replay machinery, so native dispatch must stay
	// sequential. Whole-body kernels report ParallelSafe=false.
	ParallelSafe bool
	HasChains    bool
	SeqReason    string
	// Guards are rendered range-invariant read positions of partitioned
	// arrays (informational; the host evaluates guards through the
	// companion RangeKernel).
	Guards []string
}

// EmitRangeKernelGo emits the distributed loop `for distVar in [lo,hi) {
// body }` as a Go function. The same compilation path as
// CompileRangeKernel produces the instruction tree and the parallel-safety
// analysis, so the emitted function is the native twin of the range kernel
// the VM would execute.
func (in *Instance) EmitRangeKernelGo(distVar string, body []Stmt, name string) (*EmittedKernel, error) {
	wrapped := []Stmt{For(distVar, Iv(kernelLoVar), Iv(kernelHiVar), body...)}
	k, kc, err := in.compileKernel(wrapped)
	if err != nil {
		return nil, err
	}
	rk := &RangeKernel{
		k:     k,
		loReg: k.regIndex[kernelLoVar],
		hiReg: k.regIndex[kernelHiVar],
	}
	rk.analyze(kc, k.regIndex[distVar], body)
	em := newEmitter(k, kc, rk.loReg, rk.hiReg)
	ek, err := em.emit(name, fmt.Sprintf("executes iterations [lo, hi) of distributed loop %q", distVar))
	if err != nil {
		return nil, err
	}
	ek.ParallelSafe = rk.parOK
	ek.HasChains = rk.hasChains
	ek.SeqReason = rk.seqReason
	for _, g := range rk.guards {
		ek.Guards = append(ek.Guards, em.lin(g))
	}
	return ek, nil
}

// EmitKernelGo emits a whole statement list as a Go function with the same
// signature; the lo/hi parameters are ignored. Free variables (if any) are
// still passed through regs.
func (in *Instance) EmitKernelGo(stmts []Stmt, name string) (*EmittedKernel, error) {
	k, kc, err := in.compileKernel(stmts)
	if err != nil {
		return nil, err
	}
	em := newEmitter(k, kc, -1, -1)
	return em.emit(name, "executes the whole kernel body (lo and hi are unused)")
}

type emitter struct {
	k            *Kernel
	kc           *kcompiler
	loReg, hiReg int

	body     strings.Builder
	depth    int
	loopSeq  int
	regNames map[int]string // register -> Go expression
	freeRegs map[int]string // free register -> variable name
	usedFree map[int]bool
	arrayIdx map[string]int // array name -> data[] slot
	arrays   []string
}

func newEmitter(k *Kernel, kc *kcompiler, loReg, hiReg int) *emitter {
	em := &emitter{
		k: k, kc: kc, loReg: loReg, hiReg: hiReg,
		regNames: map[int]string{},
		freeRegs: map[int]string{},
		usedFree: map[int]bool{},
		arrayIdx: map[string]int{},
	}
	// Stable array order: by name.
	seen := map[string]bool{}
	for i := range k.sites {
		if n := k.sites[i].name; !seen[n] {
			seen[n] = true
			em.arrays = append(em.arrays, n)
		}
	}
	sort.Strings(em.arrays)
	for i, n := range em.arrays {
		em.arrayIdx[n] = i
	}
	// Register names: lo/hi map to the function parameters, loop-bound
	// registers to their (sanitized) source names, everything else is a
	// free variable bound from regs in the prologue.
	names := make([]string, k.nregs)
	for n, r := range k.regIndex {
		names[r] = n
	}
	for r := 0; r < k.nregs; r++ {
		switch {
		case r == loReg:
			em.regNames[r] = "lo"
		case r == hiReg:
			em.regNames[r] = "hi"
		default:
			v := sanitizeVar(names[r])
			em.regNames[r] = v
			if !kc.internal[r] {
				em.freeRegs[r] = v
			}
		}
	}
	return em
}

// goKeywords guards loop-variable names against the emitted scaffolding
// (lo, hi, regs, data, dN/oN/tN/loN/hiN locals, the check temporary e) and
// Go's keywords and predeclared identifiers a kernel body could plausibly
// collide with.
var goReserved = map[string]bool{
	"break": true, "case": true, "chan": true, "const": true,
	"continue": true, "default": true, "defer": true, "else": true,
	"fallthrough": true, "for": true, "func": true, "go": true,
	"goto": true, "if": true, "import": true, "interface": true,
	"map": true, "package": true, "range": true, "return": true,
	"select": true, "struct": true, "switch": true, "type": true,
	"var": true, "len": true, "panic": true, "int": true, "float64": true,
	"lo": true, "hi": true, "regs": true, "data": true, "e": true,
}

func sanitizeVar(name string) string {
	ok := name != "" && !goReserved[name]
	for i := 0; ok && i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			ok = i > 0
		default:
			ok = false
		}
	}
	if ok {
		// dN, oN, tN, loN, hiN are scaffolding names.
		for _, p := range []string{"d", "o", "t", "lo", "hi"} {
			if rest, found := strings.CutPrefix(name, p); found && rest != "" && isDigits(rest) {
				ok = false
				break
			}
		}
	}
	if !ok {
		var b strings.Builder
		b.WriteString("v_")
		for i := 0; i < len(name); i++ {
			c := name[i]
			if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
				b.WriteByte(c)
			} else {
				fmt.Fprintf(&b, "x%02x", c)
			}
		}
		return b.String()
	}
	return name
}

func isDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

func (em *emitter) emit(name, doc string) (*EmittedKernel, error) {
	// Emit the body first (into em.body) so the prologue can bind only the
	// free variables the rendered expressions actually use.
	em.depth = 1
	em.preps(em.k.rootPreps, "")
	em.stmts(em.k.code)

	var freeIdx []int
	for r := range em.freeRegs {
		if em.usedFree[r] {
			freeIdx = append(freeIdx, r)
		}
	}
	sort.Slice(freeIdx, func(i, j int) bool { return em.freeRegs[freeIdx[i]] < em.freeRegs[freeIdx[j]] })

	ek := &EmittedKernel{Name: name, Arrays: em.arrays}
	var b strings.Builder
	progName := em.kc.lw.in.Prog.Name
	fmt.Fprintf(&b, "// %s %s of program %q.\n", name, doc, progName)
	fmt.Fprintf(&b, "// data: %s", strings.Join(em.arrays, ", "))
	if len(freeIdx) > 0 {
		names := make([]string, len(freeIdx))
		for i, r := range freeIdx {
			names[i] = em.freeRegs[r]
		}
		fmt.Fprintf(&b, "; regs: %s", strings.Join(names, ", "))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "func %s(lo, hi int, regs []int, data [][]float64) {\n", name)
	for i, arr := range em.arrays {
		fmt.Fprintf(&b, "\td%d := data[%d] // %s\n", i, i, arr)
	}
	for i, r := range freeIdx {
		fmt.Fprintf(&b, "\t%s := regs[%d] // free variable\n", em.freeRegs[r], i)
		ek.FreeVars = append(ek.FreeVars, em.freeRegs[r])
	}
	b.WriteString(em.body.String())
	b.WriteString("}\n")
	// Canonicalize: gofmt tightens spacing around higher-precedence
	// operators in mixed expressions, and emitted code must be gofmt-clean.
	src, err := format.Source([]byte(b.String()))
	if err != nil {
		return nil, fmt.Errorf("emitted kernel %s does not parse: %w\n%s", name, err, b.String())
	}
	ek.Src = string(src)

	// Written arrays, for result shipping by subprocess runners.
	w := map[string]bool{}
	collectWrites(em.k, em.k.code, w)
	for _, arr := range em.arrays {
		if w[arr] {
			ek.Writes = append(ek.Writes, arr)
		}
	}
	return ek, nil
}

func collectWrites(k *Kernel, code []kinstr, out map[string]bool) {
	for _, ins := range code {
		switch ins := ins.(type) {
		case *kloop:
			collectWrites(k, ins.body, out)
		case *kassign:
			out[k.sites[ins.dst].name] = true
		case *kif:
			collectWrites(k, ins.then, out)
			collectWrites(k, ins.els, out)
		}
	}
}

func (em *emitter) p(format string, args ...interface{}) {
	for i := 0; i < em.depth; i++ {
		em.body.WriteByte('\t')
	}
	fmt.Fprintf(&em.body, format, args...)
	em.body.WriteByte('\n')
}

func (em *emitter) stmts(code []kinstr) {
	for _, ins := range code {
		switch ins := ins.(type) {
		case *kloop:
			em.loop(ins)
		case *kassign:
			em.assign(ins)
		case *kif:
			em.condStmt(ins)
		}
	}
}

// isSimpleOperand reports whether a rendered linear form is a bare
// identifier or integer literal, safe to repeat instead of binding to a
// bounds local.
func isSimpleOperand(s string) bool {
	if s == "" {
		return false
	}
	if s[0] == '-' {
		s = s[1:]
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_') {
			return false
		}
	}
	return true
}

// loop emits one counted loop in the VM's exact sequencing: entry test,
// loop variable initialized to lo, offsets prepped (with hoisted endpoint
// checks), then body / break test / increment / exit test / offset
// advances per iteration.
func (em *emitter) loop(l *kloop) {
	id := em.loopSeq
	em.loopSeq++
	loS, hiS := em.lin(l.lo), em.lin(l.hi)
	loV, hiV := loS, hiS
	if !isSimpleOperand(loS) {
		loV = fmt.Sprintf("lo%d", id)
		em.p("%s := %s", loV, loS)
	}
	if !isSimpleOperand(hiS) {
		hiV = fmt.Sprintf("hi%d", id)
		em.p("%s := %s", hiV, hiS)
	}
	em.p("if %s > %s {", hiV, loV)
	em.depth++
	v := em.regNames[l.reg]
	em.p("%s := %s", v, loV)
	trip := ""
	for _, pr := range l.preps {
		if pr.hoist && pr.step != 0 {
			trip = fmt.Sprintf("t%d", id)
			em.p("%s := %s - %s", trip, hiV, loV)
			break
		}
	}
	em.preps(l.preps, trip)
	em.p("for {")
	em.depth++
	em.stmts(l.body)
	if l.brk != nil {
		em.p("if %s {", em.cond(l.brk))
		em.depth++
		em.p("break")
		em.depth--
		em.p("}")
	}
	em.p("%s++", v)
	em.p("if %s >= %s {", v, hiV)
	em.depth++
	em.p("break")
	em.depth--
	em.p("}")
	for _, a := range l.advs {
		switch {
		case a.step == 1:
			em.p("o%d++", a.site)
		case a.step == -1:
			em.p("o%d--", a.site)
		case a.step > 0:
			em.p("o%d += %d", a.site, a.step)
		default:
			em.p("o%d -= %d", a.site, -a.step)
		}
	}
	em.depth--
	em.p("}")
	em.depth--
	em.p("}")
}

// preps initializes each site's strength-reduced flat offset and emits the
// hoisted endpoint bounds check: an affine offset is monotonic in the loop
// variable, so checking the first and last iterations' offsets covers
// every access. trip is the trip-count local ("" when every hoisted step
// is 0, e.g. at the root where the implicit trip is 1).
func (em *emitter) preps(preps []kprep, trip string) {
	for _, pr := range preps {
		s := &em.k.sites[pr.site]
		d := fmt.Sprintf("d%d", em.arrayIdx[s.name])
		em.p("o%d := %s", pr.site, em.lin(s.flat))
		if !pr.hoist {
			continue
		}
		if pr.step == 0 || trip == "" {
			em.p("if o%d < 0 || o%d >= len(%s) {", pr.site, pr.site, d)
		} else {
			step := strconv.Itoa(pr.step)
			if pr.step < 0 {
				step = "(" + step + ")"
			}
			em.p("if e := o%d + %s*(%s-1); o%d < 0 || o%d >= len(%s) || e < 0 || e >= len(%s) {",
				pr.site, step, trip, pr.site, pr.site, d, d)
		}
		em.depth++
		em.p("panic(%q)", fmt.Sprintf("dlbaot: access to %q out of range", s.name))
		em.depth--
		em.p("}")
	}
}

func (em *emitter) assign(a *kassign) {
	s := &em.k.sites[a.dst]
	em.p("d%d[o%d] = %s", em.arrayIdx[s.name], a.dst, em.expr(a.code))
}

func (em *emitter) condStmt(f *kif) {
	em.p("if %s {", em.cond(&f.cond))
	em.depth++
	em.stmts(f.then)
	em.depth--
	if len(f.els) > 0 {
		em.p("} else {")
		em.depth++
		em.stmts(f.els)
		em.depth--
	}
	em.p("}")
}

func (em *emitter) cond(c *kcond) string {
	var op string
	switch c.op {
	case cmpLT:
		op = "<"
	case cmpLE:
		op = "<="
	case cmpGT:
		op = ">"
	case cmpGE:
		op = ">="
	case cmpEQ:
		op = "=="
	default:
		op = "!="
	}
	return em.expr(c.l) + " " + op + " " + em.expr(c.r)
}

// expr reconstructs an infix expression from a postfix program. Operand
// order and grouping reproduce the VM's evaluation exactly; parentheses
// are inserted wherever Go's left-associative parse would regroup a
// right-hand operand (floating-point arithmetic is not associative).
func (em *emitter) expr(code []kop) string {
	type frag struct {
		s    string
		prec int // 3 atom, 2 mul/div, 1 add/sub
	}
	var st []frag
	for i := range code {
		op := &code[i]
		switch op.kind {
		case opConst:
			st = append(st, frag{"float64(" + formatConst(op.c) + ")", 3})
		case opLoad:
			s := &em.k.sites[op.site]
			st = append(st, frag{fmt.Sprintf("d%d[o%d]", em.arrayIdx[s.name], op.site), 3})
		default:
			var sym string
			var prec int
			switch op.kind {
			case opAdd:
				sym, prec = "+", 1
			case opSub:
				sym, prec = "-", 1
			case opMul:
				sym, prec = "*", 2
			default:
				sym, prec = "/", 2
			}
			n := len(st) - 1
			l, r := st[n-1], st[n]
			st = st[:n-1]
			ls, rs := l.s, r.s
			if l.prec < prec {
				ls = "(" + ls + ")"
			}
			if r.prec <= prec {
				rs = "(" + rs + ")"
			}
			st = append(st, frag{ls + " " + sym + " " + rs, prec})
		}
	}
	return st[len(st)-1].s
}

// formatConst renders a float64 so that parsing the literal recovers the
// exact bit pattern (shortest round-tripping decimal).
func formatConst(c float64) string {
	return strconv.FormatFloat(c, 'g', -1, 64)
}

// lin renders an integer linear form over the visible register locals.
func (em *emitter) lin(l lin) string {
	var b strings.Builder
	if l.c != 0 || len(l.terms) == 0 {
		b.WriteString(strconv.Itoa(l.c))
	}
	for _, t := range l.terms {
		name := em.reg(t.reg)
		coef := t.coef
		if b.Len() > 0 {
			if coef < 0 {
				b.WriteString(" - ")
				coef = -coef
			} else {
				b.WriteString(" + ")
			}
		} else if coef < 0 {
			b.WriteString("-")
			coef = -coef
		}
		if coef == 1 {
			b.WriteString(name)
		} else {
			fmt.Fprintf(&b, "%d*%s", coef, name)
		}
	}
	return b.String()
}

func (em *emitter) reg(r int) string {
	if _, free := em.freeRegs[r]; free {
		em.usedFree[r] = true
	}
	return em.regNames[r]
}
