package loopir

import (
	"fmt"
	"sort"
)

// This file implements the lowered execution engine: programs with affine
// subscripts are compiled into closures over flat []float64 storage with
// precomputed linear index forms. This is the moral equivalent of the C code
// the paper's compiler emits — and it is what the generated slave programs
// execute — while the tree-walking interpreter in eval.go remains the
// semantic reference.

// linTerm is one coefficient of a linear form.
type linTerm struct {
	reg  int
	coef int
}

// lin is an integer linear form c + Σ coef·reg over loop-variable registers.
type lin struct {
	c     int
	terms []linTerm
}

func (l lin) eval(regs []int) int {
	v := l.c
	for _, t := range l.terms {
		v += t.coef * regs[t.reg]
	}
	return v
}

func (l lin) add(m lin) lin {
	out := lin{c: l.c + m.c}
	coefs := map[int]int{}
	for _, t := range l.terms {
		coefs[t.reg] += t.coef
	}
	for _, t := range m.terms {
		coefs[t.reg] += t.coef
	}
	regs := make([]int, 0, len(coefs))
	for r := range coefs {
		regs = append(regs, r)
	}
	sort.Ints(regs)
	for _, r := range regs {
		if coefs[r] != 0 {
			out.terms = append(out.terms, linTerm{r, coefs[r]})
		}
	}
	return out
}

func (l lin) scale(k int) lin {
	out := lin{c: l.c * k}
	if k == 0 {
		return out
	}
	for _, t := range l.terms {
		out.terms = append(out.terms, linTerm{t.reg, t.coef * k})
	}
	return out
}

func (l lin) isConst() (int, bool) {
	if len(l.terms) == 0 {
		return l.c, true
	}
	return 0, false
}

// evalFn computes a float64 from the register file.
type evalFn func(regs []int) float64

// instr is one lowered statement.
type instr interface {
	run(regs []int)
}

type iloop struct {
	reg     int
	lo, hi  lin
	body    []instr
	breakIf func(regs []int) bool // nil for counted loops
}

func (l *iloop) run(regs []int) {
	lo, hi := l.lo.eval(regs), l.hi.eval(regs)
	if l.breakIf == nil && len(l.body) == 1 {
		one := l.body[0]
		for v := lo; v < hi; v++ {
			regs[l.reg] = v
			one.run(regs)
		}
		return
	}
	for v := lo; v < hi; v++ {
		regs[l.reg] = v
		for _, ins := range l.body {
			ins.run(regs)
		}
		if l.breakIf != nil && l.breakIf(regs) {
			break
		}
	}
}

type iassign struct {
	name string
	data []float64
	flat lin
	rhs  evalFn
}

func (a *iassign) run(regs []int) {
	ix := a.flat.eval(regs)
	if ix < 0 || ix >= len(a.data) {
		panic(fmt.Sprintf("loopir: lowered store to %q out of range: %d not in [0,%d)", a.name, ix, len(a.data)))
	}
	a.data[ix] = a.rhs(regs)
}

type iif struct {
	cond func(regs []int) bool
	then []instr
	els  []instr
}

func (f *iif) run(regs []int) {
	var body []instr
	if f.cond(regs) {
		body = f.then
	} else {
		body = f.els
	}
	for _, ins := range body {
		ins.run(regs)
	}
}

// Fragment is a lowered statement list, executable with per-call bindings
// for its free variables. The main program is a Fragment with no free
// variables; the generated slave code executes fragments whose free
// variables are outer-loop indices and owned-range bounds supplied by the
// run-time system.
type Fragment struct {
	code     []instr
	regs     []int
	regIndex map[string]int
}

// Run executes the fragment. bind supplies values for free variables (loop
// variables of enclosing loops not contained in the fragment); a missing
// binding for a used free variable leaves its previous (or zero) value,
// so callers must bind everything they declared.
func (f *Fragment) Run(bind map[string]int) {
	for name, v := range bind {
		if r, ok := f.regIndex[name]; ok {
			f.regs[r] = v
		}
	}
	for _, ins := range f.code {
		ins.run(f.regs)
	}
}

// Code is a fully-bound lowered program.
type Code struct{ frag *Fragment }

// Run executes the lowered program.
func (c *Code) Run() { c.frag.Run(nil) }

type lowerer struct {
	in       *Instance
	regIndex map[string]int
	nregs    int
}

func (lw *lowerer) regFor(name string) int {
	if r, ok := lw.regIndex[name]; ok {
		return r
	}
	r := lw.nregs
	lw.regIndex[name] = r
	lw.nregs++
	return r
}

func (lw *lowerer) lowerIndex(e IExpr) (lin, error) {
	switch e := e.(type) {
	case ICon:
		return lin{c: int(e)}, nil
	case IVar:
		if v, ok := lw.in.Params[string(e)]; ok {
			return lin{c: v}, nil
		}
		return lin{terms: []linTerm{{lw.regFor(string(e)), 1}}}, nil
	case IBin:
		l, err := lw.lowerIndex(e.L)
		if err != nil {
			return lin{}, err
		}
		r, err := lw.lowerIndex(e.R)
		if err != nil {
			return lin{}, err
		}
		switch e.Op {
		case '+':
			return l.add(r), nil
		case '-':
			return l.add(r.scale(-1)), nil
		case '*':
			if k, ok := l.isConst(); ok {
				return r.scale(k), nil
			}
			if k, ok := r.isConst(); ok {
				return l.scale(k), nil
			}
			return lin{}, fmt.Errorf("non-affine subscript: %s", e.String())
		}
		return lin{}, fmt.Errorf("bad index op %q", string(e.Op))
	}
	return lin{}, fmt.Errorf("unknown index expression %T", e)
}

func (lw *lowerer) lowerRefFlat(r Ref) (*Array, lin, error) {
	arr, ok := lw.in.Arrays[r.Array]
	if !ok {
		return nil, lin{}, fmt.Errorf("unknown array %q", r.Array)
	}
	flat := lin{}
	for d, ie := range r.Idx {
		l, err := lw.lowerIndex(ie)
		if err != nil {
			return nil, lin{}, err
		}
		flat = flat.add(l.scale(arr.Stride[d]))
	}
	return arr, flat, nil
}

func (lw *lowerer) lowerExpr(e Expr) (evalFn, error) {
	switch e := e.(type) {
	case Const:
		v := float64(e)
		return func([]int) float64 { return v }, nil
	case Ref:
		arr, flat, err := lw.lowerRefFlat(e)
		if err != nil {
			return nil, err
		}
		data, name := arr.Data, arr.Name
		return func(regs []int) float64 {
			ix := flat.eval(regs)
			if ix < 0 || ix >= len(data) {
				panic(fmt.Sprintf("loopir: lowered load from %q out of range: %d not in [0,%d)", name, ix, len(data)))
			}
			return data[ix]
		}, nil
	case Bin:
		l, err := lw.lowerExpr(e.L)
		if err != nil {
			return nil, err
		}
		r, err := lw.lowerExpr(e.R)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case '+':
			return func(regs []int) float64 { return l(regs) + r(regs) }, nil
		case '-':
			return func(regs []int) float64 { return l(regs) - r(regs) }, nil
		case '*':
			return func(regs []int) float64 { return l(regs) * r(regs) }, nil
		case '/':
			return func(regs []int) float64 { return l(regs) / r(regs) }, nil
		}
		return nil, fmt.Errorf("bad arithmetic op %q", string(e.Op))
	}
	return nil, fmt.Errorf("unknown expression %T", e)
}

func (lw *lowerer) lowerCond(c Cond) (func(regs []int) bool, error) {
	l, err := lw.lowerExpr(c.L)
	if err != nil {
		return nil, err
	}
	r, err := lw.lowerExpr(c.R)
	if err != nil {
		return nil, err
	}
	switch c.Op {
	case "<":
		return func(regs []int) bool { return l(regs) < r(regs) }, nil
	case "<=":
		return func(regs []int) bool { return l(regs) <= r(regs) }, nil
	case ">":
		return func(regs []int) bool { return l(regs) > r(regs) }, nil
	case ">=":
		return func(regs []int) bool { return l(regs) >= r(regs) }, nil
	case "==":
		return func(regs []int) bool { return l(regs) == r(regs) }, nil
	case "!=":
		return func(regs []int) bool { return l(regs) != r(regs) }, nil
	}
	return nil, fmt.Errorf("bad comparison op %q", c.Op)
}

func (lw *lowerer) lowerStmts(stmts []Stmt) ([]instr, error) {
	var out []instr
	for _, s := range stmts {
		switch s := s.(type) {
		case *Loop:
			lo, err := lw.lowerIndex(s.Lo)
			if err != nil {
				return nil, err
			}
			hi, err := lw.lowerIndex(s.Hi)
			if err != nil {
				return nil, err
			}
			reg := lw.regFor(s.Var)
			body, err := lw.lowerStmts(s.Body)
			if err != nil {
				return nil, err
			}
			var brk func(regs []int) bool
			if s.BreakIf != nil {
				brk, err = lw.lowerCond(*s.BreakIf)
				if err != nil {
					return nil, err
				}
			}
			out = append(out, &iloop{reg: reg, lo: lo, hi: hi, body: body, breakIf: brk})
		case *Assign:
			arr, flat, err := lw.lowerRefFlat(s.LHS)
			if err != nil {
				return nil, err
			}
			rhs, err := lw.lowerExpr(s.RHS)
			if err != nil {
				return nil, err
			}
			out = append(out, &iassign{name: arr.Name, data: arr.Data, flat: flat, rhs: rhs})
		case *If:
			cond, err := lw.lowerCond(s.Cond)
			if err != nil {
				return nil, err
			}
			then, err := lw.lowerStmts(s.Then)
			if err != nil {
				return nil, err
			}
			els, err := lw.lowerStmts(s.Else)
			if err != nil {
				return nil, err
			}
			out = append(out, &iif{cond: cond, then: then, els: els})
		default:
			return nil, fmt.Errorf("unknown statement %T", s)
		}
	}
	return out, nil
}

// LowerStmts compiles a statement list against this instance's arrays.
// Variables that are not parameters and not bound by loops inside the
// fragment become free variables, set per call via Fragment.Run's bind map.
func (in *Instance) LowerStmts(stmts []Stmt) (*Fragment, error) {
	lw := &lowerer{in: in, regIndex: map[string]int{}}
	code, err := lw.lowerStmts(stmts)
	if err != nil {
		return nil, err
	}
	return &Fragment{code: code, regs: make([]int, lw.nregs), regIndex: lw.regIndex}, nil
}

// Lower compiles the whole program body. It fails (and Run falls back to
// the interpreter) if any subscript is non-affine.
func (in *Instance) Lower() (*Code, error) {
	frag, err := in.LowerStmts(in.Prog.Body)
	if err != nil {
		return nil, err
	}
	return &Code{frag: frag}, nil
}
