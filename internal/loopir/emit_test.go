package loopir

import (
	"go/format"
	"strings"
	"testing"
)

func emitTestParams(p *Program) map[string]int {
	params := map[string]int{}
	for _, prm := range p.Params {
		params[prm] = 12
	}
	if _, ok := params["maxiter"]; ok {
		params["maxiter"] = 3
	}
	return params
}

// distLoops returns every loop directly eligible as a distributed region:
// each top-level loop, plus each loop nested directly under an iteration
// loop — the shapes the planner distributes.
func distLoops(p *Program) []*Loop {
	var out []*Loop
	for _, s := range p.Body {
		l, ok := s.(*Loop)
		if !ok {
			continue
		}
		inner := false
		for _, b := range l.Body {
			if il, ok := b.(*Loop); ok {
				out = append(out, il)
				inner = true
			}
		}
		if !inner {
			out = append(out, l)
		}
	}
	return out
}

// TestEmitRangeKernelFlagsMatchVM: the emitted kernel's parallel-safety
// verdict must agree with CompileRangeKernel for every distributable
// region of every library program — the emitter rides the same analysis,
// and the dlb runtime trusts the flags to pick a dispatch strategy.
func TestEmitRangeKernelFlagsMatchVM(t *testing.T) {
	for name, p := range Library() {
		p := p
		t.Run(name, func(t *testing.T) {
			in, err := NewInstance(p, emitTestParams(p))
			if err != nil {
				t.Fatal(err)
			}
			for _, l := range distLoops(p) {
				rk, rkErr := in.CompileRangeKernel(l.Var, l.Body)
				ek, ekErr := in.EmitRangeKernelGo(l.Var, l.Body, "K")
				if (rkErr == nil) != (ekErr == nil) {
					t.Fatalf("loop %q: VM err=%v, emitter err=%v", l.Var, rkErr, ekErr)
				}
				if rkErr != nil {
					continue
				}
				if ek.ParallelSafe != rk.ParallelSafe() {
					t.Errorf("loop %q: ParallelSafe=%v, VM says %v", l.Var, ek.ParallelSafe, rk.ParallelSafe())
				}
				if ek.SeqReason != rk.SeqReason() {
					t.Errorf("loop %q: SeqReason=%q, VM says %q", l.Var, ek.SeqReason, rk.SeqReason())
				}
				if len(ek.Guards) != len(rk.guards) {
					t.Errorf("loop %q: %d guards, VM has %d", l.Var, len(ek.Guards), len(rk.guards))
				}
				if ek.HasChains != rk.hasChains {
					t.Errorf("loop %q: HasChains=%v, VM says %v", l.Var, ek.HasChains, rk.hasChains)
				}
			}
		})
	}
}

// TestEmitSourceGofmtIdempotent: every emitted function must already be
// in canonical gofmt form.
func TestEmitSourceGofmtIdempotent(t *testing.T) {
	for name, p := range Library() {
		p := p
		t.Run(name, func(t *testing.T) {
			in, err := NewInstance(p, emitTestParams(p))
			if err != nil {
				t.Fatal(err)
			}
			check := func(label string, ek *EmittedKernel) {
				t.Helper()
				formatted, err := format.Source([]byte(ek.Src))
				if err != nil {
					t.Fatalf("%s: emitted source does not parse: %v\n%s", label, err, ek.Src)
				}
				if strings.TrimSpace(string(formatted)) != strings.TrimSpace(ek.Src) {
					t.Errorf("%s: emitted source is not gofmt-clean:\n--- emitted ---\n%s\n--- gofmt ---\n%s",
						label, ek.Src, formatted)
				}
			}
			if ek, err := in.EmitKernelGo(p.Body, "Whole"); err == nil {
				check("whole body", ek)
			} else if !UsesIArr(p.Body) {
				// Data-dependent (IArr) programs are refused by every
				// compiled tier and run interpreted; anything else must emit.
				t.Fatalf("whole body: %v", err)
			}
			for _, l := range distLoops(p) {
				if ek, err := in.EmitRangeKernelGo(l.Var, l.Body, "Region"); err == nil {
					check("loop "+l.Var, ek)
				}
			}
		})
	}
}

// TestEmitJacobiSweepMetadata pins the contract for the canonical region:
// the jacobi i-sweep reads a, writes anew, has no free variables beyond
// none (n is a compile-time parameter, i/j are kernel locals) and is
// partition-safe.
func TestEmitJacobiSweepMetadata(t *testing.T) {
	p := Library()["jacobi"]
	in, err := NewInstance(p, map[string]int{"n": 16, "maxiter": 2})
	if err != nil {
		t.Fatal(err)
	}
	sweep := p.Body[0].(*Loop).Body[0].(*Loop)
	ek, err := in.EmitRangeKernelGo(sweep.Var, sweep.Body, "Kernel0")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(ek.Arrays, ","); got != "a,anew" {
		t.Errorf("Arrays = %q, want a,anew", got)
	}
	if got := strings.Join(ek.Writes, ","); got != "anew" {
		t.Errorf("Writes = %q, want anew", got)
	}
	if len(ek.FreeVars) != 0 {
		t.Errorf("FreeVars = %v, want none (params fold, loop vars are locals)", ek.FreeVars)
	}
	if !ek.ParallelSafe || ek.HasChains {
		t.Errorf("ParallelSafe=%v HasChains=%v, want true/false (%s)",
			ek.ParallelSafe, ek.HasChains, ek.SeqReason)
	}
	if !strings.Contains(ek.Src, "func Kernel0(lo, hi int, regs []int, data [][]float64)") {
		t.Errorf("missing stable signature:\n%s", ek.Src)
	}
	for _, want := range []string{"o0++", "o1++"} {
		if !strings.Contains(ek.Src, want) {
			t.Errorf("expected strength-reduced offset advance %q in:\n%s", want, ek.Src)
		}
	}
	if !strings.Contains(ek.Src, "out of range") {
		t.Errorf("expected hoisted bounds-check panic in:\n%s", ek.Src)
	}
}
