package loopir

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func kernelTestParams() map[string]map[string]int {
	return map[string]map[string]int{
		"mm":              {"n": 12},
		"sor":             {"n": 14, "maxiter": 4},
		"lu":              {"n": 12},
		"jacobi":          {"n": 12, "maxiter": 3},
		"threshold-relax": {"n": 10, "maxiter": 3},
		"axpy":            {"n": 50, "maxiter": 4},
		"periodic-sor":    {"n": 14, "maxiter": 4},
		"jacobi-converge": {"n": 12, "maxiter": 60},
		"jacobi3d":        {"n": 8, "maxiter": 2},
		"spmv":            {"n": 96, "maxiter": 2},
		"pbin":            {"n": 48, "maxiter": 2},
	}
}

// TestKernelMatchesInterpreter is the kernel counterpart of
// TestLowerMatchesInterpreter: on every library program the compiled
// kernel must reproduce the tree-walking interpreter bit for bit —
// sequential kernels preserve even reduction chains exactly.
func TestKernelMatchesInterpreter(t *testing.T) {
	params := kernelTestParams()
	for name, prog := range Library() {
		prm, ok := params[name]
		if !ok {
			t.Fatalf("no test parameters for program %q", name)
		}
		ref, err := NewInstance(prog, prm)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := ref.Interpret(); err != nil {
			t.Fatalf("%s: interpret: %v", name, err)
		}
		fast := ref.Clone()
		k, err := fast.CompileKernel(fast.Prog.Body)
		if err != nil {
			if UsesIArr(prog.Body) {
				continue // data-dependent programs run interpreted by design
			}
			t.Fatalf("%s: compile kernel: %v", name, err)
		}
		k.Run(nil)
		for arr := range ref.Arrays {
			if d := ref.Arrays[arr].MaxAbsDiff(fast.Arrays[arr]); d != 0 {
				t.Errorf("%s: array %q differs by %g between interpreter and kernel", name, arr, d)
			}
		}
	}
}

// distVarOf returns the outermost loop variable of a single-nest program
// body, the natural distribution variable for range-kernel tests.
func distVarOf(t *testing.T, prog *Program) (string, *Loop) {
	t.Helper()
	outer, ok := prog.Body[0].(*Loop)
	if !ok {
		t.Fatalf("%s: body does not start with a loop", prog.Name)
	}
	return outer.Var, outer
}

// TestRangeKernelLibraryEquivalence drives every library program's
// outermost loop through a RangeKernel at 1, 2 and 4 workers and requires
// bit-identical results to the interpreter at every worker count. Programs
// the analysis cannot prove parallel (SOR's neighbor reads) silently run
// sequentially — the output contract is the same.
func TestRangeKernelLibraryEquivalence(t *testing.T) {
	params := kernelTestParams()
	for name, prog := range Library() {
		prm := params[name]
		ref, err := NewInstance(prog, prm)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		v, outer := distVarOf(t, ref.Prog)
		if err := ref.Interpret(); err != nil {
			t.Fatalf("%s: interpret: %v", name, err)
		}
		env := map[string]int{}
		for k, val := range prm {
			env[k] = val
		}
		lo, err1 := EvalIndex(outer.Lo, env)
		hi, err2 := EvalIndex(outer.Hi, env)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: outer bounds not parameter-only", name)
		}
		if outer.BreakIf != nil {
			// A range kernel models a fixed [lo,hi) slice; data-dependent
			// outer breaks (jacobi-converge, threshold-relax) are driven by
			// the runtime loop, not the kernel. Skip those outers here.
			continue
		}
		for _, workers := range []int{1, 2, 4} {
			fast, err := NewInstance(prog, prm)
			if err != nil {
				t.Fatal(err)
			}
			rk, err := fast.CompileRangeKernel(v, outer.Body)
			if err != nil {
				if UsesIArr(prog.Body) {
					break // data-dependent programs run interpreted by design
				}
				t.Fatalf("%s: compile range kernel: %v", name, err)
			}
			rk.RunParallel(lo, hi, nil, workers)
			for arr := range ref.Arrays {
				if d := ref.Arrays[arr].MaxAbsDiff(fast.Arrays[arr]); d != 0 {
					t.Errorf("%s/workers=%d: array %q differs by %g (parallelSafe=%v, reason=%q)",
						name, workers, arr, d, rk.ParallelSafe(), rk.SeqReason())
				}
			}
		}
	}
}

// TestRangeKernelAnalysisVerdicts pins the parallel-safety analysis on the
// canonical cases: owner-computes loops parallelize, loops with
// cross-iteration reads of the written array do not.
func TestRangeKernelAnalysisVerdicts(t *testing.T) {
	params := kernelTestParams()
	type tc struct {
		prog    string
		v       string
		body    func(p *Program) []Stmt
		wantPar bool
	}
	cases := []tc{
		// mm distributed over the outer i: c[i][j] owned by row.
		{"mm", "i", func(p *Program) []Stmt {
			return p.Body[0].(*Loop).Body
		}, true},
		// sor distributed over the inner column loop j: reads b[j-1][i]
		// and b[j+1][i] of the written array — pipelined, not partitionable.
		{"sor", "j", func(p *Program) []Stmt {
			return p.Body[0].(*Loop).Body[0].(*Loop).Body[0].(*Loop).Body
		}, false},
		// jacobi's stencil sweep over i: writes anew[i][*], reads a only.
		{"jacobi", "i", func(p *Program) []Stmt {
			return p.Body[0].(*Loop).Body[0].(*Loop).Body
		}, true},
		// jacobi's copy-back sweep over i2: a[i2][*] = anew[i2][*].
		{"jacobi", "i2", func(p *Program) []Stmt {
			return p.Body[0].(*Loop).Body[1].(*Loop).Body
		}, true},
	}
	for _, c := range cases {
		in, err := NewInstance(Library()[c.prog], params[c.prog])
		if err != nil {
			t.Fatal(err)
		}
		rk, err := in.CompileRangeKernel(c.v, c.body(in.Prog))
		if err != nil {
			t.Fatalf("%s/%s: %v", c.prog, c.v, err)
		}
		if rk.ParallelSafe() != c.wantPar {
			t.Errorf("%s/%s: ParallelSafe = %v, want %v (reason %q)",
				c.prog, c.v, rk.ParallelSafe(), c.wantPar, rk.SeqReason())
		}
	}
}

// TestRangeKernelGuard exercises the runtime guard: a range-invariant read
// of a partitioned array (LU's pivot row pattern) blocks parallel execution
// only when the read row lands inside the executed range.
func TestRangeKernelGuard(t *testing.T) {
	n := Iv("n")
	prog := &Program{
		Name:   "guard",
		Params: []string{"n", "p"},
		Arrays: []*ArrayDecl{{Name: "a", Dims: []IExpr{n, n}, Init: saltedInit(7)}},
		Body: []Stmt{
			For("i", Ic(0), n,
				For("j", Ic(0), n,
					Set(Fref("a", Iv("i"), Iv("j")),
						Fadd(Fref("a", Iv("i"), Iv("j")), Fref("a", Iv("p"), Iv("j")))))),
		},
	}
	in, err := NewInstance(prog, map[string]int{"n": 8, "p": 2})
	if err != nil {
		t.Fatal(err)
	}
	outer := prog.Body[0].(*Loop)
	rk, err := in.CompileRangeKernel("i", outer.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !rk.ParallelSafe() {
		t.Fatalf("guarded program not parallel-safe: %s", rk.SeqReason())
	}
	if w := rk.Workers(0, 8, nil, 4); w != 1 {
		t.Errorf("Workers(0,8) = %d, want 1 (pivot row 2 inside range)", w)
	}
	if w := rk.Workers(3, 8, nil, 4); w != 4 {
		t.Errorf("Workers(3,8) = %d, want 4 (pivot row 2 outside range)", w)
	}
}

// randParProgram generates programs the parallel analysis accepts:
// owner-computes writes a[i][*] (reads of a only at row i), unrestricted
// reads of b, and optionally a scalar reduction chain into r[0] — the shape
// the worker-partitioned replay must keep bit-identical.
func randParProgram(r *rand.Rand) *Program {
	n := Iv("n")
	off := func(col string) IExpr {
		v := Iv(col)
		switch r.Intn(3) {
		case 0:
			return Isub(v, Ic(1))
		case 1:
			return Iadd(v, Ic(1))
		}
		return v
	}
	bref := func(col string) Ref {
		row := IExpr(Iv("i"))
		if r.Intn(2) == 0 {
			if r.Intn(2) == 0 {
				row = Isub(Iv("i"), Ic(1))
			} else {
				row = Iadd(Iv("i"), Ic(1))
			}
		}
		return Fref("b", row, off(col))
	}
	aref := func(col string) Ref { return Fref("a", Iv("i"), off(col)) }

	var dataExpr func(d int, col string) Expr
	dataExpr = func(d int, col string) Expr {
		if d <= 0 || r.Intn(3) == 0 {
			switch r.Intn(3) {
			case 0:
				return Fc(float64(1+r.Intn(7)) * 0.25)
			case 1:
				return aref(col)
			}
			return bref(col)
		}
		ops := []byte{'+', '-', '*'}
		return Bin{Op: ops[r.Intn(len(ops))], L: dataExpr(d-1, col), R: dataExpr(d-1, col)}
	}

	inner := []Stmt{Set(Fref("a", Iv("i"), Iv("j")), dataExpr(2, "j"))}
	if r.Intn(2) == 0 {
		inner = append(inner, Set(Fref("a", Iv("i"), Iv("j")), dataExpr(1, "j")))
	}
	body := []Stmt{For("j", Ic(1), Isub(n, Ic(1)), inner...)}
	if r.Intn(2) == 0 {
		// A reduction chain over the row: r[0] = r[0] ⊕ d or d ⊕ r[0].
		d := Expr(Bin{Op: '*', L: dataExpr(1, "j2"), R: dataExpr(1, "j2")})
		red := Fref("r", Ic(0))
		var rhs Expr
		op := []byte{'+', '-'}[r.Intn(2)]
		if r.Intn(2) == 0 {
			rhs = Bin{Op: op, L: red, R: d}
		} else {
			rhs = Bin{Op: op, L: d, R: red}
		}
		body = append(body, For("j2", Ic(1), Isub(n, Ic(1)), Set(red, rhs)))
	}
	return &Program{
		Name:   "randpar",
		Params: []string{"n"},
		Arrays: []*ArrayDecl{
			{Name: "a", Dims: []IExpr{n, n}, Init: saltedInit(3)},
			{Name: "b", Dims: []IExpr{n, n}, Init: saltedInit(17)},
			{Name: "r", Dims: []IExpr{Ic(2)}},
		},
		Body: []Stmt{For("i", Ic(1), Isub(n, Ic(1)), body...)},
	}
}

// TestQuickKernelEquivalence cross-checks the whole-program kernel against
// the interpreter on random programs (same generator as the lowered-engine
// fuzz test).
func TestQuickKernelEquivalence(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randProgram(r)
		if err := p.Validate(); err != nil {
			t.Logf("seed %d: generated invalid program: %v", seed, err)
			return false
		}
		nVal := 5 + r.Intn(6)
		ref, err := NewInstance(p, map[string]int{"n": nVal})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		fast := ref.Clone()
		if err := ref.Interpret(); err != nil {
			t.Logf("seed %d: interpret: %v", seed, err)
			return false
		}
		k, err := fast.CompileKernel(fast.Prog.Body)
		if err != nil {
			t.Logf("seed %d: compile: %v", seed, err)
			return false
		}
		k.Run(nil)
		d := ref.Arrays["a"].MaxAbsDiff(fast.Arrays["a"])
		if d != 0 && !math.IsNaN(d) {
			t.Logf("seed %d: divergence %g", seed, d)
			return false
		}
		return true
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRangeKernelWorkers is the differential fuzz test for worker
// partitioning: random parallel-friendly programs (including reduction
// chains) executed through RunParallel at 1, 2 and 4 workers must be
// bit-identical to the interpreter — reductions included, thanks to the
// ordered chain replay.
func TestQuickRangeKernelWorkers(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randParProgram(r)
		if err := p.Validate(); err != nil {
			t.Logf("seed %d: generated invalid program: %v", seed, err)
			return false
		}
		nVal := 6 + r.Intn(6)
		params := map[string]int{"n": nVal}
		ref, err := NewInstance(p, params)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := ref.Interpret(); err != nil {
			t.Logf("seed %d: interpret: %v", seed, err)
			return false
		}
		outer := p.Body[0].(*Loop)
		for _, workers := range []int{1, 2, 4} {
			fast, err := NewInstance(p, params)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			rk, err := fast.CompileRangeKernel("i", outer.Body)
			if err != nil {
				t.Logf("seed %d: compile: %v", seed, err)
				return false
			}
			if !rk.ParallelSafe() {
				t.Logf("seed %d: generator produced non-parallel program: %s", seed, rk.SeqReason())
				return false
			}
			rk.RunParallel(1, nVal-1, nil, workers)
			for _, arr := range []string{"a", "r"} {
				d := ref.Arrays[arr].MaxAbsDiff(fast.Arrays[arr])
				if d != 0 && !math.IsNaN(d) {
					t.Logf("seed %d workers %d: array %q diverges by %g", seed, workers, arr, d)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestKernelRate sanity-checks the calibration: a positive, cached rate.
func TestKernelRate(t *testing.T) {
	r1 := KernelRate()
	if r1 <= 0 {
		t.Fatalf("KernelRate = %g, want > 0", r1)
	}
	if r2 := KernelRate(); r2 != r1 {
		t.Errorf("KernelRate not cached: %g then %g", r1, r2)
	}
}

// BenchmarkKernel compares the three execution tiers — interpreter,
// lowered closures, compiled kernel — on the stencil (jacobi) and
// pipelined (sor) programs plus mm. The kernel/interp ratio here is the
// ≥5x acceptance bar recorded in BENCH_kernel.json.
func BenchmarkKernel(b *testing.B) {
	progs := []struct {
		name   string
		params map[string]int
	}{
		{"jacobi", map[string]int{"n": 64, "maxiter": 2}},
		{"sor", map[string]int{"n": 64, "maxiter": 2}},
		{"mm", map[string]int{"n": 48}},
	}
	for _, p := range progs {
		prog := Library()[p.name]
		flops := func() int64 {
			in, err := NewInstance(prog, p.params)
			if err != nil {
				b.Fatal(err)
			}
			return ExactFlops(in.Prog.Body, p.params)
		}()
		b.Run(p.name+"/interp", func(b *testing.B) {
			in, err := NewInstance(prog, p.params)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(flops)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := in.Interpret(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(p.name+"/lowered", func(b *testing.B) {
			in, err := NewInstance(prog, p.params)
			if err != nil {
				b.Fatal(err)
			}
			code, err := in.Lower()
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(flops)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				code.Run()
			}
		})
		b.Run(p.name+"/kernel", func(b *testing.B) {
			in, err := NewInstance(prog, p.params)
			if err != nil {
				b.Fatal(err)
			}
			k, err := in.CompileKernel(in.Prog.Body)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(flops)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Run(nil)
			}
		})
	}
}

// BenchmarkRangeKernelWorkers measures worker scaling of one partitioned
// jacobi sweep at 1..4 workers.
func BenchmarkRangeKernelWorkers(b *testing.B) {
	prog := Library()["jacobi"]
	params := map[string]int{"n": 256, "maxiter": 1}
	in, err := NewInstance(prog, params)
	if err != nil {
		b.Fatal(err)
	}
	iter := in.Prog.Body[0].(*Loop)
	sweep := iter.Body[0].(*Loop) // the spatial i loop inside the iteration loop
	rk, err := in.CompileRangeKernel(sweep.Var, sweep.Body)
	if err != nil {
		b.Fatal(err)
	}
	if !rk.ParallelSafe() {
		b.Fatalf("jacobi sweep not parallel-safe: %s", rk.SeqReason())
	}
	n := params["n"]
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rk.RunParallel(1, n-1, nil, w)
			}
		})
	}
}
