package loopir

import (
	"fmt"
	"math"
)

// Array is dense row-major float64 storage for one program array.
type Array struct {
	Name   string
	Dims   []int
	Stride []int // Stride[d] = product of Dims[d+1:]
	Data   []float64
}

// NewArray allocates a zeroed array with the given extents.
func NewArray(name string, dims []int) *Array {
	if len(dims) == 0 {
		panic("loopir: array needs at least one dimension")
	}
	size := 1
	stride := make([]int, len(dims))
	for d := len(dims) - 1; d >= 0; d-- {
		if dims[d] <= 0 {
			panic(fmt.Sprintf("loopir: array %q has non-positive extent %d", name, dims[d]))
		}
		stride[d] = size
		size *= dims[d]
	}
	return &Array{Name: name, Dims: append([]int(nil), dims...), Stride: stride, Data: make([]float64, size)}
}

// Flat converts a multi-dimensional index to a flat offset, with bounds
// checking.
func (a *Array) Flat(idx ...int) int {
	if len(idx) != len(a.Dims) {
		panic(fmt.Sprintf("loopir: array %q rank %d indexed with %d subscripts", a.Name, len(a.Dims), len(idx)))
	}
	flat := 0
	for d, ix := range idx {
		if ix < 0 || ix >= a.Dims[d] {
			panic(fmt.Sprintf("loopir: array %q index %d out of range [0,%d) in dim %d", a.Name, ix, a.Dims[d], d))
		}
		flat += ix * a.Stride[d]
	}
	return flat
}

// At reads one element.
func (a *Array) At(idx ...int) float64 { return a.Data[a.Flat(idx...)] }

// SetAt writes one element.
func (a *Array) SetAt(v float64, idx ...int) { a.Data[a.Flat(idx...)] = v }

// Clone returns a deep copy.
func (a *Array) Clone() *Array {
	b := NewArray(a.Name, a.Dims)
	copy(b.Data, a.Data)
	return b
}

// Fill sets every element from fn (nil zeroes the array).
func (a *Array) Fill(fn InitFn) {
	if fn == nil {
		for i := range a.Data {
			a.Data[i] = 0
		}
		return
	}
	idx := make([]int, len(a.Dims))
	for flat := range a.Data {
		rem := flat
		for d := range a.Dims {
			idx[d] = rem / a.Stride[d]
			rem %= a.Stride[d]
		}
		a.Data[flat] = fn(idx)
	}
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// two same-shaped arrays.
func (a *Array) MaxAbsDiff(b *Array) float64 {
	if len(a.Data) != len(b.Data) {
		panic("loopir: MaxAbsDiff on differently-shaped arrays")
	}
	worst := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// Instance binds a Program to concrete parameter values and allocated,
// initialized arrays. It is the unit that gets executed — sequentially by
// Run (the correctness reference) or in parallel by the generated code.
type Instance struct {
	Prog   *Program
	Params map[string]int
	Arrays map[string]*Array
}

// NewInstance validates the program, checks that every parameter is bound,
// and allocates + initializes all arrays.
func NewInstance(p *Program, params map[string]int) (*Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	bound := map[string]int{}
	for _, prm := range p.Params {
		v, ok := params[prm]
		if !ok {
			return nil, fmt.Errorf("%s: parameter %q not bound", p.Name, prm)
		}
		bound[prm] = v
	}
	in := &Instance{Prog: p, Params: bound, Arrays: map[string]*Array{}}
	for _, decl := range p.Arrays {
		dims := make([]int, len(decl.Dims))
		for d, de := range decl.Dims {
			v, err := EvalIndex(de, bound)
			if err != nil {
				return nil, fmt.Errorf("%s: array %q dim %d: %v", p.Name, decl.Name, d, err)
			}
			if v <= 0 {
				return nil, fmt.Errorf("%s: array %q dim %d evaluates to %d", p.Name, decl.Name, d, v)
			}
			dims[d] = v
		}
		arr := NewArray(decl.Name, dims)
		arr.Fill(decl.Init)
		in.Arrays[decl.Name] = arr
	}
	return in, nil
}

// Clone returns an instance with freshly initialized arrays (initial values,
// not current contents). Use it to rerun the same problem.
func (in *Instance) Clone() *Instance {
	fresh, err := NewInstance(in.Prog, in.Params)
	if err != nil {
		panic(err) // validated once already
	}
	return fresh
}

// Snapshot deep-copies the current array contents.
func (in *Instance) Snapshot() map[string]*Array {
	out := map[string]*Array{}
	for name, a := range in.Arrays {
		out[name] = a.Clone()
	}
	return out
}

// EvalIndex evaluates an integer index expression under an environment of
// parameter and loop-variable bindings.
func EvalIndex(e IExpr, env map[string]int) (int, error) {
	switch e := e.(type) {
	case ICon:
		return int(e), nil
	case IVar:
		v, ok := env[string(e)]
		if !ok {
			return 0, fmt.Errorf("unbound index variable %q", string(e))
		}
		return v, nil
	case IBin:
		l, err := EvalIndex(e.L, env)
		if err != nil {
			return 0, err
		}
		r, err := EvalIndex(e.R, env)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case '+':
			return l + r, nil
		case '-':
			return l - r, nil
		case '*':
			return l * r, nil
		}
		return 0, fmt.Errorf("bad index op %q", string(e.Op))
	}
	return 0, fmt.Errorf("unknown index expression %T", e)
}

// EvalIndex evaluates an index expression against the instance: the
// package-level evaluation extended with IArr data-array reads (truncated
// toward zero), which have no meaning without bound arrays.
func (in *Instance) EvalIndex(e IExpr, env map[string]int) (int, error) {
	switch e := e.(type) {
	case IBin:
		l, err := in.EvalIndex(e.L, env)
		if err != nil {
			return 0, err
		}
		r, err := in.EvalIndex(e.R, env)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case '+':
			return l + r, nil
		case '-':
			return l - r, nil
		case '*':
			return l * r, nil
		}
		return 0, fmt.Errorf("bad index op %q", string(e.Op))
	case IArr:
		arr, ok := in.Arrays[e.Array]
		if !ok {
			return 0, fmt.Errorf("index read of unknown array %q", e.Array)
		}
		idx := make([]int, len(e.Idx))
		for d, ie := range e.Idx {
			v, err := in.EvalIndex(ie, env)
			if err != nil {
				return 0, err
			}
			idx[d] = v
		}
		return int(arr.At(idx...)), nil
	}
	return EvalIndex(e, env)
}

// EvalExpr evaluates a data expression against the instance's arrays.
func (in *Instance) EvalExpr(e Expr, env map[string]int) (float64, error) {
	switch e := e.(type) {
	case Const:
		return float64(e), nil
	case Ref:
		arr, ok := in.Arrays[e.Array]
		if !ok {
			return 0, fmt.Errorf("unknown array %q", e.Array)
		}
		idx := make([]int, len(e.Idx))
		for d, ie := range e.Idx {
			v, err := in.EvalIndex(ie, env)
			if err != nil {
				return 0, err
			}
			idx[d] = v
		}
		return arr.At(idx...), nil
	case Bin:
		l, err := in.EvalExpr(e.L, env)
		if err != nil {
			return 0, err
		}
		r, err := in.EvalExpr(e.R, env)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case '+':
			return l + r, nil
		case '-':
			return l - r, nil
		case '*':
			return l * r, nil
		case '/':
			return l / r, nil
		}
		return 0, fmt.Errorf("bad arithmetic op %q", string(e.Op))
	}
	return 0, fmt.Errorf("unknown expression %T", e)
}

func (in *Instance) evalCond(c Cond, env map[string]int) (bool, error) {
	l, err := in.EvalExpr(c.L, env)
	if err != nil {
		return false, err
	}
	r, err := in.EvalExpr(c.R, env)
	if err != nil {
		return false, err
	}
	switch c.Op {
	case "<":
		return l < r, nil
	case "<=":
		return l <= r, nil
	case ">":
		return l > r, nil
	case ">=":
		return l >= r, nil
	case "==":
		return l == r, nil
	case "!=":
		return l != r, nil
	}
	return false, fmt.Errorf("bad comparison op %q", c.Op)
}

// Interpret executes the program with the straightforward tree-walking
// interpreter. It is the semantic reference that the fast lowered engine
// (and the parallel runtime) is validated against.
func (in *Instance) Interpret() error {
	env := map[string]int{}
	for k, v := range in.Params {
		env[k] = v
	}
	return in.interpretStmts(in.Prog.Body, env)
}

func (in *Instance) interpretStmts(stmts []Stmt, env map[string]int) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case *Loop:
			lo, err := in.EvalIndex(s.Lo, env)
			if err != nil {
				return err
			}
			hi, err := in.EvalIndex(s.Hi, env)
			if err != nil {
				return err
			}
			for v := lo; v < hi; v++ {
				env[s.Var] = v
				if err := in.interpretStmts(s.Body, env); err != nil {
					return err
				}
				if s.BreakIf != nil {
					stop, err := in.evalCond(*s.BreakIf, env)
					if err != nil {
						return err
					}
					if stop {
						break
					}
				}
			}
			delete(env, s.Var)
		case *Assign:
			val, err := in.EvalExpr(s.RHS, env)
			if err != nil {
				return err
			}
			arr := in.Arrays[s.LHS.Array]
			if arr == nil {
				return fmt.Errorf("unknown array %q", s.LHS.Array)
			}
			idx := make([]int, len(s.LHS.Idx))
			for d, ie := range s.LHS.Idx {
				iv, err := in.EvalIndex(ie, env)
				if err != nil {
					return err
				}
				idx[d] = iv
			}
			arr.SetAt(val, idx...)
		case *If:
			ok, err := in.evalCond(s.Cond, env)
			if err != nil {
				return err
			}
			if ok {
				err = in.interpretStmts(s.Then, env)
			} else {
				err = in.interpretStmts(s.Else, env)
			}
			if err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown statement %T", s)
		}
	}
	return nil
}

// InterpFragment runs a statement list through the tree-walking
// interpreter under a caller-supplied binding — the execution tier of last
// resort for fragments the lowering engine refuses (data-dependent IArr
// subscripts and bounds). It satisfies the same Run contract as a lowered
// Fragment.
type InterpFragment struct {
	In    *Instance
	Stmts []Stmt
}

// Run executes the fragment with bind layered over the instance parameters.
func (f *InterpFragment) Run(bind map[string]int) {
	env := map[string]int{}
	for k, v := range f.In.Params {
		env[k] = v
	}
	for k, v := range bind {
		env[k] = v
	}
	if err := f.In.interpretStmts(f.Stmts, env); err != nil {
		panic(fmt.Sprintf("loopir: interpreted fragment: %v", err))
	}
}

// Run executes the program, preferring the compiled kernel, then the
// lowered closure engine, and finally the interpreter for programs neither
// compiler accepts (non-affine subscripts).
func (in *Instance) Run() error {
	if err := in.RunKernel(); err == nil {
		return nil
	}
	code, err := in.Lower()
	if err == nil {
		code.Run()
		return nil
	}
	return in.Interpret()
}
