package loopir

import (
	"sync"
	"time"
)

// This file provides the static cost model the compiler uses for hook
// placement (paper §4.2: place the hook at the deepest level where its cost
// is a negligible fraction of the enclosed work) and for grain-size and
// calibration decisions.

var (
	kernelRateOnce sync.Once
	kernelRateVal  float64
)

// KernelRate reports the measured execution rate of the compiled-kernel
// path, in model flops per second, by timing a small stencil kernel once
// per process and caching the result. The real and TCP runtimes use it to
// rebase ratio-style constants (the §4.2 <1% hook rule, the adaptive
// balancing period) on actual kernel speed instead of the tree-walking
// interpreter's: a per-visit cost that was negligible against interpreted
// iterations is an order of magnitude more visible against compiled ones.
func KernelRate() float64 {
	kernelRateOnce.Do(func() {
		kernelRateVal = 1e9 // conservative fallback if calibration fails
		prog, ok := Library()["jacobi"]
		if !ok {
			return
		}
		params := map[string]int{"n": 96, "maxiter": 4}
		in, err := NewInstance(prog, params)
		if err != nil {
			return
		}
		k, err := in.CompileKernel(in.Prog.Body)
		if err != nil {
			return
		}
		flops := float64(ExactFlops(in.Prog.Body, params))
		k.Run(nil) // warm caches and the exec pool
		const runs = 3
		start := time.Now()
		for i := 0; i < runs; i++ {
			k.Run(nil)
		}
		if sec := time.Since(start).Seconds(); sec > 0 {
			kernelRateVal = runs * flops / sec
		}
	})
	return kernelRateVal
}

// OpCount returns the number of floating-point operations performed by one
// execution of the statement list, ignoring loop trip counts (loops count
// as a single execution of their body) and taking the maximum over If arms.
func OpCount(stmts []Stmt) int {
	n := 0
	for _, s := range stmts {
		switch s := s.(type) {
		case *Loop:
			n += OpCount(s.Body)
		case *Assign:
			n += exprOps(s.RHS) + 1 // +1 for the store
		case *If:
			n += exprOps(s.Cond.L) + exprOps(s.Cond.R) + 1
			t, e := OpCount(s.Then), OpCount(s.Else)
			if t > e {
				n += t
			} else {
				n += e
			}
		}
	}
	return n
}

func exprOps(e Expr) int {
	switch e := e.(type) {
	case Bin:
		return 1 + exprOps(e.L) + exprOps(e.R)
	default:
		return 0
	}
}

// EstFlops estimates the total floating-point operations of a statement
// list under the given environment. Loop trip counts are evaluated with
// enclosing loop variables bound to the midpoint of their ranges, which
// handles triangular nests like LU (where inner bounds depend on outer
// indices) with O(depth) work. If arms are averaged.
func EstFlops(stmts []Stmt, env map[string]int) float64 {
	local := map[string]int{}
	for k, v := range env {
		local[k] = v
	}
	return estFlops(stmts, local)
}

func estFlops(stmts []Stmt, env map[string]int) float64 {
	total := 0.0
	for _, s := range stmts {
		switch s := s.(type) {
		case *Loop:
			lo, err1 := EvalIndex(s.Lo, env)
			hi, err2 := EvalIndex(s.Hi, env)
			if err1 != nil || err2 != nil {
				continue // unbound variable: treat as zero-cost, caller beware
			}
			trip := hi - lo
			if trip <= 0 {
				continue
			}
			env[s.Var] = lo + trip/2
			total += float64(trip) * estFlops(s.Body, env)
			delete(env, s.Var)
		case *Assign:
			total += float64(exprOps(s.RHS) + 1)
		case *If:
			total += float64(exprOps(s.Cond.L)+exprOps(s.Cond.R)) + 1
			total += 0.5 * (estFlops(s.Then, env) + estFlops(s.Else, env))
		}
	}
	return total
}

// EstFlops is the instance-bound estimate: loop bounds are evaluated
// against the instance's arrays, so data-dependent (IArr) trip counts
// contribute their actual data-driven cost instead of being skipped the
// way the package-level EstFlops must. Index arrays are read-only by
// validation, so the estimate is stable across the run.
func (in *Instance) EstFlops(stmts []Stmt, env map[string]int) float64 {
	local := map[string]int{}
	for k, v := range env {
		local[k] = v
	}
	return in.estFlops(stmts, local)
}

func (in *Instance) estFlops(stmts []Stmt, env map[string]int) float64 {
	total := 0.0
	for _, s := range stmts {
		switch s := s.(type) {
		case *Loop:
			lo, err1 := in.EvalIndex(s.Lo, env)
			hi, err2 := in.EvalIndex(s.Hi, env)
			if err1 != nil || err2 != nil {
				continue // unbound variable: treat as zero-cost, caller beware
			}
			trip := hi - lo
			if trip <= 0 {
				continue
			}
			if loopBoundsUseIArr(s.Body) {
				// A nested trip count reads an index array through this
				// loop's variable: the midpoint row is not representative
				// on skewed data, so sum the body over every iteration.
				for v := lo; v < hi; v++ {
					env[s.Var] = v
					total += in.estFlops(s.Body, env)
				}
				delete(env, s.Var)
				continue
			}
			env[s.Var] = lo + trip/2
			total += float64(trip) * in.estFlops(s.Body, env)
			delete(env, s.Var)
		case *Assign:
			total += float64(exprOps(s.RHS) + 1)
		case *If:
			total += float64(exprOps(s.Cond.L)+exprOps(s.Cond.R)) + 1
			total += 0.5 * (in.estFlops(s.Then, env) + in.estFlops(s.Else, env))
		}
	}
	return total
}

// loopBoundsUseIArr reports whether any loop in the subtree has a
// data-dependent (IArr) trip count — the case where midpoint-sampling an
// enclosing loop misestimates total cost on skewed data.
func loopBoundsUseIArr(stmts []Stmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *Loop:
			set := map[string]bool{}
			collectIArrIdx(s.Lo, set)
			collectIArrIdx(s.Hi, set)
			if len(set) > 0 || loopBoundsUseIArr(s.Body) {
				return true
			}
		case *If:
			if loopBoundsUseIArr(s.Then) || loopBoundsUseIArr(s.Else) {
				return true
			}
		}
	}
	return false
}

// ExactFlops counts the floating-point operations of a statement list by
// walking the full iteration space (without touching data, so If arms are
// maximized). Exponential in nothing, but linear in total iterations — use
// for small instances and tests.
func ExactFlops(stmts []Stmt, env map[string]int) int64 {
	local := map[string]int{}
	for k, v := range env {
		local[k] = v
	}
	return exactFlops(stmts, local)
}

func exactFlops(stmts []Stmt, env map[string]int) int64 {
	var total int64
	for _, s := range stmts {
		switch s := s.(type) {
		case *Loop:
			lo, err1 := EvalIndex(s.Lo, env)
			hi, err2 := EvalIndex(s.Hi, env)
			if err1 != nil || err2 != nil {
				continue
			}
			for v := lo; v < hi; v++ {
				env[s.Var] = v
				total += exactFlops(s.Body, env)
			}
			delete(env, s.Var)
		case *Assign:
			total += int64(exprOps(s.RHS) + 1)
		case *If:
			total += int64(exprOps(s.Cond.L) + exprOps(s.Cond.R) + 1)
			t, e := exactFlops(s.Then, env), exactFlops(s.Else, env)
			if t > e {
				total += t
			} else {
				total += e
			}
		}
	}
	return total
}
