package loopir

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randProgram builds a random but always-valid loop-nest program: a nest of
// 1–3 loops over [1, n-1) with affine subscripts offset by -1/0/+1 (safe
// within the loop bounds) and random arithmetic right-hand sides. It is
// used to cross-check the lowered engine against the interpreter on inputs
// no human wrote.
func randProgram(r *rand.Rand) *Program {
	n := Iv("n")
	depth := 1 + r.Intn(3)
	vars := []string{"i", "j", "k"}[:depth]

	idxExpr := func() IExpr {
		v := Iv(vars[r.Intn(len(vars))])
		switch r.Intn(3) {
		case 0:
			return Isub(v, Ic(1))
		case 1:
			return Iadd(v, Ic(1))
		}
		return v
	}
	ref := func() Ref { return Fref("a", idxExpr(), idxExpr()) }

	var dataExpr func(depth int) Expr
	dataExpr = func(d int) Expr {
		if d <= 0 || r.Intn(3) == 0 {
			if r.Intn(2) == 0 {
				return Fc(float64(r.Intn(7)) * 0.25)
			}
			return ref()
		}
		ops := []byte{'+', '-', '*'}
		return Bin{Op: ops[r.Intn(len(ops))], L: dataExpr(d - 1), R: dataExpr(d - 1)}
	}

	nAssigns := 1 + r.Intn(3)
	var body []Stmt
	for a := 0; a < nAssigns; a++ {
		body = append(body, Set(ref(), dataExpr(2)))
	}
	var stmt Stmt
	for d := depth - 1; d >= 0; d-- {
		if stmt != nil {
			body = []Stmt{stmt}
		}
		stmt = For(vars[d], Ic(1), Isub(n, Ic(1)), body...)
	}
	return &Program{
		Name:   "rand",
		Params: []string{"n"},
		Arrays: []*ArrayDecl{{Name: "a", Dims: []IExpr{n, n}, Init: saltedInit(99)}},
		Body:   []Stmt{stmt},
	}
}

func TestQuickLowerEquivalence(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randProgram(r)
		if err := p.Validate(); err != nil {
			t.Logf("seed %d: generated invalid program: %v", seed, err)
			return false
		}
		nVal := 5 + r.Intn(6)
		ref, err := NewInstance(p, map[string]int{"n": nVal})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		fast := ref.Clone()
		if err := ref.Interpret(); err != nil {
			t.Logf("seed %d: interpret: %v", seed, err)
			return false
		}
		code, err := fast.Lower()
		if err != nil {
			t.Logf("seed %d: lower: %v", seed, err)
			return false
		}
		code.Run()
		d := ref.Arrays["a"].MaxAbsDiff(fast.Arrays["a"])
		if d != 0 && !math.IsNaN(d) {
			t.Logf("seed %d: divergence %g", seed, d)
			return false
		}
		return true
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEstFlopsRectangularExact(t *testing.T) {
	// For rectangular nests (constant bounds), the midpoint estimate must
	// equal the exact count.
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randProgram(r)
		env := map[string]int{"n": 4 + r.Intn(8)}
		return EstFlops(p.Body, env) == float64(ExactFlops(p.Body, env))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickArrayFlatRoundTrip(t *testing.T) {
	check := func(d0, d1, d2 uint8) bool {
		dims := []int{int(d0%5) + 1, int(d1%5) + 1, int(d2%5) + 1}
		a := NewArray("a", dims)
		flat := 0
		for i0 := 0; i0 < dims[0]; i0++ {
			for i1 := 0; i1 < dims[1]; i1++ {
				for i2 := 0; i2 < dims[2]; i2++ {
					if a.Flat(i0, i1, i2) != flat {
						return false
					}
					flat++
				}
			}
		}
		return flat == len(a.Data)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
