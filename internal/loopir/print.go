package loopir

import (
	"fmt"
	"strings"
)

// Render pretty-prints a program in a C-like syntax, matching the style of
// the paper's Figure 3 listings.
func Render(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "/* %s(%s) */\n", p.Name, strings.Join(p.Params, ", "))
	for _, a := range p.Arrays {
		sb.WriteString("double " + a.Name)
		for _, d := range a.Dims {
			fmt.Fprintf(&sb, "[%s]", d.String())
		}
		sb.WriteString(";\n")
	}
	RenderStmts(&sb, p.Body, 0)
	return sb.String()
}

// RenderStmts writes statements at the given indent depth.
func RenderStmts(sb *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("    ", depth)
	for _, s := range stmts {
		switch s := s.(type) {
		case *Loop:
			fmt.Fprintf(sb, "%sfor (%s = %s; %s < %s; %s++) {\n",
				ind, s.Var, s.Lo.String(), s.Var, s.Hi.String(), s.Var)
			RenderStmts(sb, s.Body, depth+1)
			if s.BreakIf != nil {
				fmt.Fprintf(sb, "%s    if (%s %s %s) break;\n",
					ind, renderExpr(s.BreakIf.L), s.BreakIf.Op, renderExpr(s.BreakIf.R))
			}
			sb.WriteString(ind + "}\n")
		case *Assign:
			fmt.Fprintf(sb, "%s%s = %s;\n", ind, s.LHS.String(), renderExpr(s.RHS))
		case *If:
			fmt.Fprintf(sb, "%sif (%s %s %s) {\n", ind, renderExpr(s.Cond.L), s.Cond.Op, renderExpr(s.Cond.R))
			RenderStmts(sb, s.Then, depth+1)
			if len(s.Else) > 0 {
				sb.WriteString(ind + "} else {\n")
				RenderStmts(sb, s.Else, depth+1)
			}
			sb.WriteString(ind + "}\n")
		}
	}
}

// renderExpr drops the outermost parentheses for readability.
func renderExpr(e Expr) string {
	if b, ok := e.(Bin); ok {
		return fmt.Sprintf("%s %c %s", b.L.String(), b.Op, b.R.String())
	}
	return e.String()
}
