package loopir

import "math"

// Program library: the routines the paper uses as running examples (Table 1:
// matrix multiplication, successive overrelaxation, LU decomposition), plus
// additional loop nests used by the extended test suite and examples.
//
// Initial values are produced by a deterministic hash so that runs are
// reproducible and parallel executions can be verified element-for-element
// against the sequential interpreter.

// hashInit yields a deterministic pseudo-random value in [0,1) from an
// index vector and a per-array salt.
func hashInit(salt uint64, idx []int) float64 {
	h := uint64(2166136261) ^ salt*0x9E3779B97F4A7C15
	for _, i := range idx {
		h ^= uint64(i + 1)
		h *= 1099511628211
	}
	return float64(h%100000) / 100000
}

func saltedInit(salt uint64) InitFn {
	return func(idx []int) float64 { return hashInit(salt, idx) }
}

// powRowsInit yields block-correlated power-law row lengths in [0,64):
// floor(64·h⁴) of a hash of the 32-row block index. The fourth power skews
// the distribution (most rows short, a few blocks long), and hashing the
// block index rather than the row makes the skew spatially correlated, so
// contiguous ownership ranges really do differ in weight.
func powRowsInit(salt uint64) InitFn {
	return func(idx []int) float64 {
		h := hashInit(salt, []int{idx[0] / 32})
		v := h * h
		v *= v
		return math.Floor(64 * v)
	}
}

// bandInit yields integer band offsets in [-32,32): floor(64·h) − 32.
func bandInit(salt uint64) InitFn {
	return func(idx []int) float64 {
		return math.Floor(64*hashInit(salt, idx)) - 32
	}
}

// MatMul builds C = A·B over n×n matrices:
//
//	for i: for j: for k: c[i][j] = c[i][j] + a[i][k]*b[k][j]
//
// Table 1 row "MM": no loop-carried dependences on the distributed loop (i),
// no communication outside the loop, repeated execution (the j/k nest re-
// runs per i — here the distributed loop is the outermost, executed once).
func MatMul() *Program {
	n := Iv("n")
	return &Program{
		Name:   "mm",
		Params: []string{"n"},
		Arrays: []*ArrayDecl{
			{Name: "a", Dims: []IExpr{n, n}, Init: saltedInit(1), InitSpec: "hash(1)"},
			{Name: "b", Dims: []IExpr{n, n}, Init: saltedInit(2), InitSpec: "hash(2)"},
			{Name: "c", Dims: []IExpr{n, n}}, // zero
		},
		Body: []Stmt{
			For("i", Ic(0), n,
				For("j", Ic(0), n,
					For("k", Ic(0), n,
						Set(Fref("c", Iv("i"), Iv("j")),
							Fadd(Fref("c", Iv("i"), Iv("j")),
								Fmul(Fref("a", Iv("i"), Iv("k")), Fref("b", Iv("k"), Iv("j")))))))),
		},
	}
}

// SOR builds the paper's successive overrelaxation kernel (Figure 3a):
//
//	for iter: for i (rows): for j (columns):
//	    b[j][i] = 0.493*(b[j][i-1] + b[j-1][i] + b[j][i+1] + b[j+1][i])
//	              + (-0.972)*b[j][i]
//
// Following the paper, the array is indexed b[column][row] and the
// distributed loop is the inner column loop j, giving loop-carried
// dependences (pipelining), communication outside the distributed loop
// (the sweep-start boundary exchange), and repeated execution.
func SOR() *Program {
	n := Iv("n")
	j, i := Iv("j"), Iv("i")
	return &Program{
		Name:   "sor",
		Params: []string{"n", "maxiter"},
		Arrays: []*ArrayDecl{
			{Name: "b", Dims: []IExpr{n, n}, Init: saltedInit(3), InitSpec: "hash(3)"},
		},
		Body: []Stmt{
			For("iter", Ic(0), Iv("maxiter"),
				For("i", Ic(1), Isub(n, Ic(1)),
					For("j", Ic(1), Isub(n, Ic(1)),
						Set(Fref("b", j, i),
							Fadd(
								Fmul(Fc(0.493),
									Fadd(
										Fadd(Fref("b", j, Isub(i, Ic(1))), Fref("b", Isub(j, Ic(1)), i)),
										Fadd(Fref("b", j, Iadd(i, Ic(1))), Fref("b", Iadd(j, Ic(1)), i)))),
								Fmul(Fc(-0.972), Fref("b", j, i))))))),
		},
	}
}

// LU builds LU decomposition without pivoting (kji form) on a diagonally
// dominant matrix:
//
//	for k:
//	    for i in k+1..n:  a[i][k] = a[i][k] / a[k][k]
//	    for j in k+1..n:  for ii in k+1..n:
//	        a[ii][j] = a[ii][j] - a[ii][k]*a[k][j]
//
// The distributed loop is the column-update loop j: its bounds vary with k
// (Table 1 "varying loop bounds") and the work per iteration shrinks with k
// ("index-dependent iteration size" is "no" in the paper because within one
// invocation all iterations cost the same — the per-invocation size varies
// instead). Columns ≤ k become inactive as the computation proceeds.
func LU() *Program {
	n := Iv("n")
	k, i, j, ii := Iv("k"), Iv("i"), Iv("j"), Iv("ii")
	return &Program{
		Name:   "lu",
		Params: []string{"n"},
		Arrays: []*ArrayDecl{
			// Strong diagonal: no pivoting required. Matches the source
			// language's diagdom initializer (salt 4, +v on the diagonal).
			{Name: "a", Dims: []IExpr{n, n}, InitSpec: "diagdom(4)", Init: func(idx []int) float64 {
				v := hashInit(4, idx)
				if idx[0] == idx[1] {
					return v + 4.0
				}
				return v
			}},
		},
		Body: []Stmt{
			For("k", Ic(0), n,
				For("i", Iadd(k, Ic(1)), n,
					Set(Fref("a", i, k), Fdiv(Fref("a", i, k), Fref("a", k, k)))),
				For("j", Iadd(k, Ic(1)), n,
					For("ii", Iadd(k, Ic(1)), n,
						Set(Fref("a", ii, j),
							Fsub(Fref("a", ii, j), Fmul(Fref("a", ii, k), Fref("a", k, j))))))),
		},
	}
}

// Jacobi builds a two-array 5-point Jacobi relaxation, row-distributed:
//
//	for iter:
//	    for i: for j:  anew[i][j] = 0.25*(a[i-1][j]+a[i+1][j]+a[i][j-1]+a[i][j+1])
//	    for i2: for j2: a[i2][j2] = anew[i2][j2]
//
// Unlike SOR there are no loop-carried dependences within a sweep, so work
// can move freely, but the row-boundary reads require a ghost exchange at
// every outer iteration (communication outside the distributed loop
// without pipelining).
func Jacobi() *Program {
	n := Iv("n")
	i, j := Iv("i"), Iv("j")
	i2, j2 := Iv("i2"), Iv("j2")
	return &Program{
		Name:   "jacobi",
		Params: []string{"n", "maxiter"},
		Arrays: []*ArrayDecl{
			{Name: "a", Dims: []IExpr{n, n}, Init: saltedInit(5), InitSpec: "hash(5)"},
			{Name: "anew", Dims: []IExpr{n, n}},
		},
		Body: []Stmt{
			For("iter", Ic(0), Iv("maxiter"),
				For("i", Ic(1), Isub(n, Ic(1)),
					For("j", Ic(1), Isub(n, Ic(1)),
						Set(Fref("anew", i, j),
							Fmul(Fc(0.25),
								Fadd(
									Fadd(Fref("a", Isub(i, Ic(1)), j), Fref("a", Iadd(i, Ic(1)), j)),
									Fadd(Fref("a", i, Isub(j, Ic(1))), Fref("a", i, Iadd(j, Ic(1))))))))),
				For("i2", Ic(1), Isub(n, Ic(1)),
					For("j2", Ic(1), Isub(n, Ic(1)),
						Set(Fref("a", i2, j2), Fref("anew", i2, j2))))),
		},
	}
}

// ThresholdRelax is a relaxation whose per-element work depends on the data
// (an If in the distributed loop body). It exists to exercise the
// "data-dependent iteration size" property detection; the paper notes such
// loops make iteration cost unpredictable for the load balancer.
func ThresholdRelax() *Program {
	n := Iv("n")
	i, j := Iv("i"), Iv("j")
	return &Program{
		Name:   "threshold-relax",
		Params: []string{"n", "maxiter"},
		Arrays: []*ArrayDecl{
			{Name: "v", Dims: []IExpr{n, n}, Init: saltedInit(6), InitSpec: "hash(6)"},
		},
		Body: []Stmt{
			For("iter", Ic(0), Iv("maxiter"),
				For("i", Ic(1), Isub(n, Ic(1)),
					For("j", Ic(1), Isub(n, Ic(1)),
						&If{
							Cond: Cond{Op: ">", L: Fref("v", i, j), R: Fc(0.5)},
							Then: []Stmt{
								Set(Fref("v", i, j),
									Fmul(Fc(0.25),
										Fadd(
											Fadd(Fref("v", Isub(i, Ic(1)), j), Fref("v", Iadd(i, Ic(1)), j)),
											Fadd(Fref("v", i, Isub(j, Ic(1))), Fref("v", i, Iadd(j, Ic(1))))))),
							},
						}))),
		},
	}
}

// PeriodicSOR is SOR on a cylinder: before each sweep, the boundary
// columns are refreshed from the opposite interior columns (periodic
// boundary conditions). The boundary copies write one distributed column
// while reading another — distributed references outside the distributed
// loop, the paper's §4.6 case, compiled into owner blocks bracketed by
// broadcasts.
func PeriodicSOR() *Program {
	n := Iv("n")
	j, i := Iv("j"), Iv("i")
	i2, i3 := Iv("i2"), Iv("i3")
	return &Program{
		Name:   "periodic-sor",
		Params: []string{"n", "maxiter"},
		Arrays: []*ArrayDecl{
			{Name: "b", Dims: []IExpr{n, n}, Init: saltedInit(11), InitSpec: "hash(11)"},
		},
		Body: []Stmt{
			For("iter", Ic(0), Iv("maxiter"),
				// b[0][*] = b[n-2][*]; b[n-1][*] = b[1][*]
				For("i2", Ic(0), n,
					Set(Fref("b", Ic(0), i2), Fref("b", Isub(n, Ic(2)), i2))),
				For("i3", Ic(0), n,
					Set(Fref("b", Isub(n, Ic(1)), i3), Fref("b", Ic(1), i3))),
				For("i", Ic(1), Isub(n, Ic(1)),
					For("j", Ic(1), Isub(n, Ic(1)),
						Set(Fref("b", j, i),
							Fadd(
								Fmul(Fc(0.493),
									Fadd(
										Fadd(Fref("b", j, Isub(i, Ic(1))), Fref("b", Isub(j, Ic(1)), i)),
										Fadd(Fref("b", j, Iadd(i, Ic(1))), Fref("b", Iadd(j, Ic(1)), i)))),
								Fmul(Fc(-0.972), Fref("b", j, i))))))),
		},
	}
}

// JacobiConverge is Jacobi relaxation with data-dependent termination: the
// outer loop runs until the squared residual drops below a threshold (or
// maxiter is reached). The residual accumulation into the replicated
// one-element array r is a sum reduction across the distributed loop, and
// the break condition is the paper's data-dependent WHILE case (§4.1): the
// number of load-balancing phases is only known at run time.
func JacobiConverge() *Program {
	n := Iv("n")
	i, j := Iv("i"), Iv("j")
	i2, j2 := Iv("i2"), Iv("j2")
	diff := Fsub(Fref("anew", i2, j2), Fref("a", i2, j2))
	return &Program{
		Name:   "jacobi-converge",
		Params: []string{"n", "maxiter"},
		Arrays: []*ArrayDecl{
			{Name: "a", Dims: []IExpr{n, n}, Init: saltedInit(5), InitSpec: "hash(5)"},
			{Name: "anew", Dims: []IExpr{n, n}},
			{Name: "r", Dims: []IExpr{Ic(1)}},
		},
		Body: []Stmt{
			&Loop{
				Var: "iter", Lo: Ic(0), Hi: Iv("maxiter"),
				BreakIf: &Cond{Op: "<", L: Fref("r", Ic(0)), R: Fc(1e-2)},
				Body: []Stmt{
					Set(Fref("r", Ic(0)), Fc(0)),
					For("i", Ic(1), Isub(n, Ic(1)),
						For("j", Ic(1), Isub(n, Ic(1)),
							Set(Fref("anew", i, j),
								Fmul(Fc(0.25),
									Fadd(
										Fadd(Fref("a", Isub(i, Ic(1)), j), Fref("a", Iadd(i, Ic(1)), j)),
										Fadd(Fref("a", i, Isub(j, Ic(1))), Fref("a", i, Iadd(j, Ic(1))))))))),
					For("i2", Ic(1), Isub(n, Ic(1)),
						For("j2", Ic(1), Isub(n, Ic(1)),
							Set(Fref("r", Ic(0)), Fadd(Fref("r", Ic(0)), Fmul(diff, diff))),
							Set(Fref("a", i2, j2), Fref("anew", i2, j2)))),
				},
			},
		},
	}
}

// Jacobi3D is a 7-point Jacobi relaxation on an n^3 grid, distributed along
// the first dimension (planes). Work units are whole planes; ghost
// exchanges and work movement ship 2-D plane slices, exercising the
// N-dimensional data paths.
func Jacobi3D() *Program {
	n := Iv("n")
	i, j, k := Iv("i"), Iv("j"), Iv("k")
	i2, j2, k2 := Iv("i2"), Iv("j2"), Iv("k2")
	return &Program{
		Name:   "jacobi3d",
		Params: []string{"n", "maxiter"},
		Arrays: []*ArrayDecl{
			{Name: "u", Dims: []IExpr{n, n, n}, Init: saltedInit(12), InitSpec: "hash(12)"},
			{Name: "unew", Dims: []IExpr{n, n, n}},
		},
		Body: []Stmt{
			For("iter", Ic(0), Iv("maxiter"),
				For("i", Ic(1), Isub(n, Ic(1)),
					For("j", Ic(1), Isub(n, Ic(1)),
						For("k", Ic(1), Isub(n, Ic(1)),
							Set(Fref("unew", i, j, k),
								Fmul(Fc(1.0/6.0),
									Fadd(
										Fadd(
											Fadd(Fref("u", Isub(i, Ic(1)), j, k), Fref("u", Iadd(i, Ic(1)), j, k)),
											Fadd(Fref("u", i, Isub(j, Ic(1)), k), Fref("u", i, Iadd(j, Ic(1)), k))),
										Fadd(Fref("u", i, j, Isub(k, Ic(1))), Fref("u", i, j, Iadd(k, Ic(1)))))))))),
				For("i2", Ic(1), Isub(n, Ic(1)),
					For("j2", Ic(1), Isub(n, Ic(1)),
						For("k2", Ic(1), Isub(n, Ic(1)),
							Set(Fref("u", i2, j2, k2), Fref("unew", i2, j2, k2)))))),
		},
	}
}

// Axpy is a simple one-dimensional y = alpha*x + y sweep repeated maxiter
// times — the smallest interesting distributed loop, used in tests.
func Axpy() *Program {
	n := Iv("n")
	i := Iv("i")
	return &Program{
		Name:   "axpy",
		Params: []string{"n", "maxiter"},
		Arrays: []*ArrayDecl{
			{Name: "x", Dims: []IExpr{n}, Init: saltedInit(7), InitSpec: "hash(7)"},
			{Name: "y", Dims: []IExpr{n}, Init: saltedInit(8), InitSpec: "hash(8)"},
		},
		Body: []Stmt{
			For("iter", Ic(0), Iv("maxiter"),
				For("i", Ic(0), n,
					Set(Fref("y", i),
						Fadd(Fmul(Fc(1.0001), Fref("x", i)), Fref("y", i))))),
		},
	}
}

// SpMV is a sparse matrix–vector product in banded ELL form, the first
// irregular workload: row i holds rowlen[i] stored entries (a power-law,
// block-correlated length read through a data-dependent loop bound) whose
// column indices are i + ofs[i][k] for band offsets in [-32,32). The row
// loop skips 32 rows at each edge so every band access stays in range.
// Per-row cost varies by a factor of ~64, which is exactly what the
// uniform-unit balancer cannot see; only the output vector y is
// distributed, so work movement is cheap relative to the imbalance.
func SpMV() *Program {
	n := Iv("n")
	i, k := Iv("i"), Iv("k")
	return &Program{
		Name:   "spmv",
		Params: []string{"n", "maxiter"},
		Arrays: []*ArrayDecl{
			{Name: "val", Dims: []IExpr{n, Ic(64)}, Init: saltedInit(21), InitSpec: "hash(21)"},
			{Name: "ofs", Dims: []IExpr{n, Ic(64)}, Init: bandInit(22), InitSpec: "band(22)"},
			{Name: "rowlen", Dims: []IExpr{n}, Init: powRowsInit(23), InitSpec: "powrows(23)"},
			{Name: "x", Dims: []IExpr{n}, Init: saltedInit(24), InitSpec: "hash(24)"},
			{Name: "y", Dims: []IExpr{n}}, // zero
		},
		Body: []Stmt{
			For("iter", Ic(0), Iv("maxiter"),
				For("i", Ic(32), Isub(n, Ic(32)),
					Set(Fref("y", i), Fc(0)),
					For("k", Ic(0), Ia("rowlen", i),
						Set(Fref("y", i),
							Fadd(Fref("y", i),
								Fmul(Fref("val", i, k),
									Fref("x", Iadd(i, Ia("ofs", i, k))))))))),
		},
	}
}

// PBin is a seeded power-law particle-binning interaction: bin i holds
// cnt[i] particles and accumulates all cnt[i]² pairwise products. The
// quadratic dependence on the data-dependent count makes per-bin cost vary
// by two orders of magnitude — the second irregular workload.
func PBin() *Program {
	n := Iv("n")
	i, k, l := Iv("i"), Iv("k"), Iv("l")
	return &Program{
		Name:   "pbin",
		Params: []string{"n", "maxiter"},
		Arrays: []*ArrayDecl{
			{Name: "cnt", Dims: []IExpr{n}, Init: powRowsInit(25), InitSpec: "powrows(25)"},
			{Name: "px", Dims: []IExpr{n, Ic(64)}, Init: saltedInit(26), InitSpec: "hash(26)"},
			{Name: "f", Dims: []IExpr{n}}, // zero
		},
		Body: []Stmt{
			For("iter", Ic(0), Iv("maxiter"),
				For("i", Ic(0), n,
					Set(Fref("f", i), Fc(0)),
					For("k", Ic(0), Ia("cnt", i),
						For("l", Ic(0), Ia("cnt", i),
							Set(Fref("f", i),
								Fadd(Fref("f", i),
									Fmul(Fref("px", i, k), Fref("px", i, l)))))))),
		},
	}
}

// Library returns all built-in programs keyed by name.
func Library() map[string]*Program {
	out := map[string]*Program{}
	for _, p := range []*Program{MatMul(), SOR(), LU(), Jacobi(), JacobiConverge(), Jacobi3D(), ThresholdRelax(), Axpy(), PeriodicSOR(), SpMV(), PBin()} {
		out[p.Name] = p
	}
	return out
}
