// Package loopir defines a small loop-nest intermediate representation for
// dense scientific codes: perfectly or imperfectly nested counted loops over
// multi-dimensional float64 arrays with affine subscripts.
//
// It plays the role of the sequential source program in the paper: the
// authors hand-compiled Fortran routines (matrix multiplication, successive
// overrelaxation, LU decomposition) into C; here the same routines are
// expressed in this IR, analyzed by internal/depend, and parallelized by
// internal/compile. The package also provides a sequential interpreter
// (the correctness reference for all parallel executions) and a faster
// lowered execution engine used by both the reference runs and the
// generated slave code.
package loopir

import (
	"fmt"
	"strings"
)

// ---------------------------------------------------------------------------
// Index expressions (integers: loop bounds and array subscripts)
// ---------------------------------------------------------------------------

// IExpr is an integer-valued index expression over loop variables and
// program parameters.
type IExpr interface {
	isIExpr()
	String() string
}

// ICon is an integer constant.
type ICon int

// IVar names a loop variable or program parameter.
type IVar string

// IBin is a binary integer operation; Op is one of '+', '-', '*'.
type IBin struct {
	Op   byte
	L, R IExpr
}

// IArr reads a data-array element and truncates it toward zero to an
// integer — a data-dependent subscript or loop bound (CSR row lengths,
// per-cell particle counts). An array read through IArr anywhere in a
// program must never be written by that program: the dependence analysis
// does not trace data-dependent index values, and read-only index arrays
// are what make that sound (Validate enforces it). IArr is not accepted in
// array dimension declarations.
type IArr struct {
	Array string
	Idx   []IExpr
}

func (ICon) isIExpr() {}
func (IVar) isIExpr() {}
func (IBin) isIExpr() {}
func (IArr) isIExpr() {}

func (c ICon) String() string { return fmt.Sprintf("%d", int(c)) }
func (v IVar) String() string { return string(v) }
func (b IBin) String() string {
	return fmt.Sprintf("(%s %c %s)", b.L.String(), b.Op, b.R.String())
}
func (a IArr) String() string {
	var sb strings.Builder
	sb.WriteString(a.Array)
	for _, ix := range a.Idx {
		fmt.Fprintf(&sb, "[%s]", ix.String())
	}
	return sb.String()
}

// Convenience constructors for index expressions.

// Ic returns an integer constant.
func Ic(n int) IExpr { return ICon(n) }

// Iv returns a variable reference.
func Iv(name string) IExpr { return IVar(name) }

// Iadd returns l + r.
func Iadd(l, r IExpr) IExpr { return IBin{'+', l, r} }

// Isub returns l - r.
func Isub(l, r IExpr) IExpr { return IBin{'-', l, r} }

// Imul returns l * r.
func Imul(l, r IExpr) IExpr { return IBin{'*', l, r} }

// Ia returns a data-array index read (truncated toward zero).
func Ia(array string, idx ...IExpr) IExpr { return IArr{Array: array, Idx: idx} }

// ---------------------------------------------------------------------------
// Data expressions (float64)
// ---------------------------------------------------------------------------

// Expr is a float64-valued expression.
type Expr interface {
	isExpr()
	String() string
}

// Const is a floating-point constant.
type Const float64

// Ref reads (or, as an Assign LHS, writes) an array element.
type Ref struct {
	Array string
	Idx   []IExpr
}

// Bin is a binary arithmetic operation; Op is one of '+', '-', '*', '/'.
type Bin struct {
	Op   byte
	L, R Expr
}

func (Const) isExpr() {}
func (Ref) isExpr()   {}
func (Bin) isExpr()   {}

func (c Const) String() string { return fmt.Sprintf("%g", float64(c)) }
func (r Ref) String() string {
	var sb strings.Builder
	sb.WriteString(r.Array)
	for _, ix := range r.Idx {
		fmt.Fprintf(&sb, "[%s]", ix.String())
	}
	return sb.String()
}
func (b Bin) String() string {
	return fmt.Sprintf("(%s %c %s)", b.L.String(), b.Op, b.R.String())
}

// Convenience constructors for data expressions.

// Fc returns a float constant.
func Fc(v float64) Expr { return Const(v) }

// Fref returns an array element reference.
func Fref(array string, idx ...IExpr) Ref { return Ref{Array: array, Idx: idx} }

// Fadd returns l + r.
func Fadd(l, r Expr) Expr { return Bin{'+', l, r} }

// Fsub returns l - r.
func Fsub(l, r Expr) Expr { return Bin{'-', l, r} }

// Fmul returns l * r.
func Fmul(l, r Expr) Expr { return Bin{'*', l, r} }

// Fdiv returns l / r.
func Fdiv(l, r Expr) Expr { return Bin{'/', l, r} }

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// Stmt is a statement: a counted loop, an assignment, or a conditional.
type Stmt interface {
	isStmt()
}

// Loop iterates Var from Lo (inclusive) to Hi (exclusive) with unit step.
// A non-nil BreakIf makes the trip count data dependent: the condition is
// evaluated after each iteration and the loop exits early when it holds —
// the paper's "distributed loop nested inside a data-dependent WHILE loop"
// case (§4.1), written as a bounded loop with a convergence test.
type Loop struct {
	Var     string
	Lo      IExpr
	Hi      IExpr
	Body    []Stmt
	BreakIf *Cond
}

// Assign stores the value of RHS into the element named by LHS.
type Assign struct {
	LHS Ref
	RHS Expr
}

// Cond is a floating-point comparison; Op is one of "<", "<=", ">", ">=",
// "==", "!=".
type Cond struct {
	Op   string
	L, R Expr
}

// If executes Then when Cond holds, Else otherwise. Its presence in a loop
// body makes iteration cost data-dependent (a Table 1 property).
type If struct {
	Cond Cond
	Then []Stmt
	Else []Stmt
}

func (*Loop) isStmt()   {}
func (*Assign) isStmt() {}
func (*If) isStmt()     {}

// For constructs a Loop.
func For(v string, lo, hi IExpr, body ...Stmt) *Loop {
	return &Loop{Var: v, Lo: lo, Hi: hi, Body: body}
}

// Set constructs an Assign.
func Set(lhs Ref, rhs Expr) *Assign { return &Assign{LHS: lhs, RHS: rhs} }

// ---------------------------------------------------------------------------
// Programs
// ---------------------------------------------------------------------------

// InitFn produces the initial value of an array element from its index
// vector. A nil InitFn means zero initialization.
type InitFn func(idx []int) float64

// ArrayDecl declares a dense float64 array with parameterized extents.
// InitSpec, when non-empty, names Init in the source language's initializer
// syntax (e.g. "hash(3)") so formatting a program preserves its initial
// data; Init alone is an opaque function and cannot be serialized.
type ArrayDecl struct {
	Name     string
	Dims     []IExpr
	Init     InitFn
	InitSpec string
}

// Program is a complete sequential loop-nest program.
type Program struct {
	Name   string
	Params []string
	Arrays []*ArrayDecl
	Body   []Stmt
}

// Array looks up a declaration by name, or nil.
func (p *Program) Array(name string) *ArrayDecl {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Validate checks structural well-formedness: declared parameter and array
// names are unique, every referenced array is declared with matching rank,
// every variable in an index expression is a parameter or an enclosing loop
// variable, and loop variables do not shadow parameters or each other.
// Data-dependent indexing carries two extra rules: IArr may not appear in
// array dimension declarations, and an array read through IArr anywhere
// must never be written (the dependence analysis does not trace values, so
// soundness requires index arrays to be read-only).
func (p *Program) Validate() error {
	seen := map[string]bool{}
	for _, prm := range p.Params {
		if seen[prm] {
			return fmt.Errorf("%s: duplicate parameter %q", p.Name, prm)
		}
		seen[prm] = true
	}
	arrays := map[string]int{}
	for _, a := range p.Arrays {
		if _, dup := arrays[a.Name]; dup {
			return fmt.Errorf("%s: duplicate array %q", p.Name, a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("%s: array %q collides with a parameter", p.Name, a.Name)
		}
		if len(a.Dims) == 0 {
			return fmt.Errorf("%s: array %q has no dimensions", p.Name, a.Name)
		}
		for _, d := range a.Dims {
			if err := p.checkIVars(d, nil, nil); err != nil {
				return fmt.Errorf("%s: array %q dims: %v", p.Name, a.Name, err)
			}
		}
		arrays[a.Name] = len(a.Dims)
	}
	if err := p.validateStmts(p.Body, nil, arrays); err != nil {
		return err
	}
	idxRead := map[string]bool{}
	collectIArrStmts(p.Body, idxRead)
	return p.checkIdxWrites(p.Body, idxRead)
}

// collectIArrStmts records every array name read through an IArr index
// expression anywhere in the statement list.
func collectIArrStmts(stmts []Stmt, set map[string]bool) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *Loop:
			collectIArrIdx(s.Lo, set)
			collectIArrIdx(s.Hi, set)
			if s.BreakIf != nil {
				collectIArrExpr(s.BreakIf.L, set)
				collectIArrExpr(s.BreakIf.R, set)
			}
			collectIArrStmts(s.Body, set)
		case *Assign:
			for _, ix := range s.LHS.Idx {
				collectIArrIdx(ix, set)
			}
			collectIArrExpr(s.RHS, set)
		case *If:
			collectIArrExpr(s.Cond.L, set)
			collectIArrExpr(s.Cond.R, set)
			collectIArrStmts(s.Then, set)
			collectIArrStmts(s.Else, set)
		}
	}
}

func collectIArrIdx(e IExpr, set map[string]bool) {
	switch e := e.(type) {
	case IBin:
		collectIArrIdx(e.L, set)
		collectIArrIdx(e.R, set)
	case IArr:
		set[e.Array] = true
		for _, ix := range e.Idx {
			collectIArrIdx(ix, set)
		}
	}
}

func collectIArrExpr(e Expr, set map[string]bool) {
	switch e := e.(type) {
	case Ref:
		for _, ix := range e.Idx {
			collectIArrIdx(ix, set)
		}
	case Bin:
		collectIArrExpr(e.L, set)
		collectIArrExpr(e.R, set)
	}
}

// UsesIArr reports whether the statement list contains any data-dependent
// IArr index read — the property that routes a program to data-aware cost
// accounting and the interpreter execution tier.
func UsesIArr(stmts []Stmt) bool {
	set := map[string]bool{}
	collectIArrStmts(stmts, set)
	return len(set) > 0
}

// checkIdxWrites rejects assignments to arrays that are read through IArr.
func (p *Program) checkIdxWrites(stmts []Stmt, idxRead map[string]bool) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case *Loop:
			if err := p.checkIdxWrites(s.Body, idxRead); err != nil {
				return err
			}
		case *Assign:
			if idxRead[s.LHS.Array] {
				return fmt.Errorf("%s: array %q is read as an index and must be read-only", p.Name, s.LHS.Array)
			}
		case *If:
			if err := p.checkIdxWrites(s.Then, idxRead); err != nil {
				return err
			}
			if err := p.checkIdxWrites(s.Else, idxRead); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *Program) validateStmts(stmts []Stmt, loopVars []string, arrays map[string]int) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case *Loop:
			for _, lv := range loopVars {
				if lv == s.Var {
					return fmt.Errorf("%s: loop variable %q shadows an enclosing loop", p.Name, s.Var)
				}
			}
			for _, prm := range p.Params {
				if prm == s.Var {
					return fmt.Errorf("%s: loop variable %q shadows a parameter", p.Name, s.Var)
				}
			}
			if err := p.checkIVars(s.Lo, loopVars, arrays); err != nil {
				return fmt.Errorf("%s: loop %q lower bound: %v", p.Name, s.Var, err)
			}
			if err := p.checkIVars(s.Hi, loopVars, arrays); err != nil {
				return fmt.Errorf("%s: loop %q upper bound: %v", p.Name, s.Var, err)
			}
			if s.BreakIf != nil {
				inner := append(loopVars, s.Var)
				if err := p.checkExpr(s.BreakIf.L, inner, arrays); err != nil {
					return err
				}
				if err := p.checkExpr(s.BreakIf.R, inner, arrays); err != nil {
					return err
				}
				switch s.BreakIf.Op {
				case "<", "<=", ">", ">=", "==", "!=":
				default:
					return fmt.Errorf("%s: bad breakif op %q", p.Name, s.BreakIf.Op)
				}
			}
			if err := p.validateStmts(s.Body, append(loopVars, s.Var), arrays); err != nil {
				return err
			}
		case *Assign:
			if err := p.checkRef(s.LHS, loopVars, arrays); err != nil {
				return err
			}
			if err := p.checkExpr(s.RHS, loopVars, arrays); err != nil {
				return err
			}
		case *If:
			if err := p.checkExpr(s.Cond.L, loopVars, arrays); err != nil {
				return err
			}
			if err := p.checkExpr(s.Cond.R, loopVars, arrays); err != nil {
				return err
			}
			switch s.Cond.Op {
			case "<", "<=", ">", ">=", "==", "!=":
			default:
				return fmt.Errorf("%s: bad comparison op %q", p.Name, s.Cond.Op)
			}
			if err := p.validateStmts(s.Then, loopVars, arrays); err != nil {
				return err
			}
			if err := p.validateStmts(s.Else, loopVars, arrays); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%s: unknown statement type %T", p.Name, s)
		}
	}
	return nil
}

func (p *Program) checkRef(r Ref, loopVars []string, arrays map[string]int) error {
	rank, ok := arrays[r.Array]
	if !ok {
		return fmt.Errorf("%s: reference to undeclared array %q", p.Name, r.Array)
	}
	if len(r.Idx) != rank {
		return fmt.Errorf("%s: array %q has rank %d but is indexed with %d subscripts", p.Name, r.Array, rank, len(r.Idx))
	}
	for _, ix := range r.Idx {
		if err := p.checkIVars(ix, loopVars, arrays); err != nil {
			return fmt.Errorf("%s: subscript of %q: %v", p.Name, r.Array, err)
		}
	}
	return nil
}

func (p *Program) checkExpr(e Expr, loopVars []string, arrays map[string]int) error {
	switch e := e.(type) {
	case Const:
		return nil
	case Ref:
		return p.checkRef(e, loopVars, arrays)
	case Bin:
		switch e.Op {
		case '+', '-', '*', '/':
		default:
			return fmt.Errorf("%s: bad arithmetic op %q", p.Name, string(e.Op))
		}
		if err := p.checkExpr(e.L, loopVars, arrays); err != nil {
			return err
		}
		return p.checkExpr(e.R, loopVars, arrays)
	default:
		return fmt.Errorf("%s: unknown expression type %T", p.Name, e)
	}
}

// checkIVars validates an index expression. arrays is the declared-array
// rank table; nil means IArr is not allowed in this position (array
// dimension declarations, which are evaluated before any data exists).
func (p *Program) checkIVars(e IExpr, loopVars []string, arrays map[string]int) error {
	switch e := e.(type) {
	case ICon:
		return nil
	case IVar:
		name := string(e)
		for _, prm := range p.Params {
			if prm == name {
				return nil
			}
		}
		for _, lv := range loopVars {
			if lv == name {
				return nil
			}
		}
		return fmt.Errorf("unbound variable %q", name)
	case IBin:
		switch e.Op {
		case '+', '-', '*':
		default:
			return fmt.Errorf("bad index op %q", string(e.Op))
		}
		if err := p.checkIVars(e.L, loopVars, arrays); err != nil {
			return err
		}
		return p.checkIVars(e.R, loopVars, arrays)
	case IArr:
		if arrays == nil {
			return fmt.Errorf("array read %q not allowed here", e.Array)
		}
		rank, ok := arrays[e.Array]
		if !ok {
			return fmt.Errorf("index read of undeclared array %q", e.Array)
		}
		if len(e.Idx) != rank {
			return fmt.Errorf("index read of %q: rank %d indexed with %d subscripts", e.Array, rank, len(e.Idx))
		}
		for _, ix := range e.Idx {
			if err := p.checkIVars(ix, loopVars, arrays); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown index expression type %T", e)
	}
}
