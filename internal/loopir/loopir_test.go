package loopir

import (
	"math"
	"strings"
	"testing"
)

func TestArrayFlatAndAccess(t *testing.T) {
	a := NewArray("a", []int{3, 4})
	if a.Stride[0] != 4 || a.Stride[1] != 1 {
		t.Fatalf("strides = %v, want [4 1]", a.Stride)
	}
	a.SetAt(7.5, 2, 3)
	if got := a.At(2, 3); got != 7.5 {
		t.Fatalf("At(2,3) = %v, want 7.5", got)
	}
	if got := a.Flat(1, 2); got != 6 {
		t.Fatalf("Flat(1,2) = %d, want 6", got)
	}
}

func TestArrayBoundsPanic(t *testing.T) {
	a := NewArray("a", []int{2, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access did not panic")
		}
	}()
	a.At(2, 0)
}

func TestArrayFillAndClone(t *testing.T) {
	a := NewArray("a", []int{2, 3})
	a.Fill(func(idx []int) float64 { return float64(10*idx[0] + idx[1]) })
	if a.At(1, 2) != 12 {
		t.Fatalf("At(1,2) = %v, want 12", a.At(1, 2))
	}
	b := a.Clone()
	b.SetAt(99, 0, 0)
	if a.At(0, 0) == 99 {
		t.Fatal("Clone shares storage with original")
	}
	if d := a.MaxAbsDiff(b); d != 99 {
		t.Fatalf("MaxAbsDiff = %v, want 99", d)
	}
	a.Fill(nil)
	if a.At(1, 2) != 0 {
		t.Fatal("Fill(nil) did not zero the array")
	}
}

func TestEvalIndexArithmetic(t *testing.T) {
	env := map[string]int{"i": 5, "n": 10}
	e := Iadd(Imul(Ic(3), Iv("i")), Isub(Iv("n"), Ic(2))) // 3*5 + 10-2 = 23
	got, err := EvalIndex(e, env)
	if err != nil || got != 23 {
		t.Fatalf("EvalIndex = %d, %v; want 23", got, err)
	}
	if _, err := EvalIndex(Iv("missing"), env); err == nil {
		t.Fatal("unbound variable did not error")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	n := Iv("n")
	base := func() *Program {
		return &Program{
			Name:   "t",
			Params: []string{"n"},
			Arrays: []*ArrayDecl{{Name: "a", Dims: []IExpr{n}}},
			Body:   []Stmt{For("i", Ic(0), n, Set(Fref("a", Iv("i")), Fc(1)))},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}

	p := base()
	p.Params = []string{"n", "n"}
	if err := p.Validate(); err == nil {
		t.Error("duplicate parameter accepted")
	}

	p = base()
	p.Body = []Stmt{Set(Fref("zzz", Ic(0)), Fc(1))}
	if err := p.Validate(); err == nil {
		t.Error("undeclared array accepted")
	}

	p = base()
	p.Body = []Stmt{Set(Fref("a", Ic(0), Ic(0)), Fc(1))}
	if err := p.Validate(); err == nil {
		t.Error("rank mismatch accepted")
	}

	p = base()
	p.Body = []Stmt{Set(Fref("a", Iv("q")), Fc(1))}
	if err := p.Validate(); err == nil {
		t.Error("unbound loop variable accepted")
	}

	p = base()
	p.Body = []Stmt{For("i", Ic(0), n, For("i", Ic(0), n, Set(Fref("a", Iv("i")), Fc(1))))}
	if err := p.Validate(); err == nil {
		t.Error("shadowed loop variable accepted")
	}

	p = base()
	p.Body = []Stmt{For("n", Ic(0), Ic(3), Set(Fref("a", Iv("n")), Fc(1)))}
	if err := p.Validate(); err == nil {
		t.Error("loop variable shadowing a parameter accepted")
	}
}

func TestInterpretTinyMatMul(t *testing.T) {
	in, err := NewInstance(MatMul(), map[string]int{"n": 2})
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the hashed initial values with known ones.
	in.Arrays["a"].Data = []float64{1, 2, 3, 4}
	in.Arrays["b"].Data = []float64{5, 6, 7, 8}
	if err := in.Interpret(); err != nil {
		t.Fatal(err)
	}
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if in.Arrays["c"].Data[i] != w {
			t.Fatalf("c = %v, want %v", in.Arrays["c"].Data, want)
		}
	}
}

func TestMissingParameterRejected(t *testing.T) {
	if _, err := NewInstance(MatMul(), map[string]int{}); err == nil {
		t.Fatal("missing parameter accepted")
	}
}

// TestLowerMatchesInterpreter is the core equivalence check: the fast
// lowered engine must produce bit-identical results to the tree-walking
// interpreter on every library program.
func TestLowerMatchesInterpreter(t *testing.T) {
	params := map[string]map[string]int{
		"mm":              {"n": 12},
		"sor":             {"n": 14, "maxiter": 4},
		"lu":              {"n": 12},
		"jacobi":          {"n": 12, "maxiter": 3},
		"threshold-relax": {"n": 10, "maxiter": 3},
		"axpy":            {"n": 50, "maxiter": 4},
		"periodic-sor":    {"n": 14, "maxiter": 4},
		"jacobi-converge": {"n": 12, "maxiter": 60},
		"jacobi3d":        {"n": 8, "maxiter": 2},
		"spmv":            {"n": 96, "maxiter": 2},
		"pbin":            {"n": 48, "maxiter": 2},
	}
	for name, prog := range Library() {
		prm, ok := params[name]
		if !ok {
			t.Fatalf("no test parameters for program %q", name)
		}
		ref, err := NewInstance(prog, prm)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := ref.Interpret(); err != nil {
			t.Fatalf("%s: interpret: %v", name, err)
		}
		fast := ref.Clone()
		code, err := fast.Lower()
		if err != nil {
			if !UsesIArr(prog.Body) {
				t.Fatalf("%s: lower: %v", name, err)
			}
			// Data-dependent programs fall back to the interpreted
			// fragment tier; exercise it through the same comparison.
			(&InterpFragment{In: fast, Stmts: fast.Prog.Body}).Run(nil)
		} else {
			code.Run()
		}
		for arr := range ref.Arrays {
			if d := ref.Arrays[arr].MaxAbsDiff(fast.Arrays[arr]); d != 0 {
				t.Errorf("%s: array %q differs by %g between interpreter and lowered engine", name, arr, d)
			}
		}
	}
}

func TestLoweredValuesAreFinite(t *testing.T) {
	in, err := NewInstance(LU(), map[string]int{"n": 24})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	for _, v := range in.Arrays["a"].Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("LU produced non-finite value %v (matrix not diagonally dominant?)", v)
		}
	}
}

func TestFragmentFreeVariables(t *testing.T) {
	// Lower only the inner j loop of a 2-D sweep; i is a free variable
	// bound per call — exactly how generated slave code runs chunks.
	p := &Program{
		Name:   "frag",
		Params: []string{"n"},
		Arrays: []*ArrayDecl{{Name: "a", Dims: []IExpr{Iv("n"), Iv("n")}}},
		Body: []Stmt{For("i", Ic(0), Iv("n"),
			For("j", Ic(0), Iv("n"),
				Set(Fref("a", Iv("i"), Iv("j")), Fc(1)))),
		},
	}
	in, err := NewInstance(p, map[string]int{"n": 4})
	if err != nil {
		t.Fatal(err)
	}
	inner := p.Body[0].(*Loop).Body // the j loop, with i free
	frag, err := in.LowerStmts(inner)
	if err != nil {
		t.Fatal(err)
	}
	frag.Run(map[string]int{"i": 2})
	for j := 0; j < 4; j++ {
		if in.Arrays["a"].At(2, j) != 1 {
			t.Fatalf("row 2 not written: %v", in.Arrays["a"].Data)
		}
	}
	for j := 0; j < 4; j++ {
		if in.Arrays["a"].At(0, j) != 0 {
			t.Fatalf("row 0 unexpectedly written")
		}
	}
}

func TestLowerRejectsNonAffine(t *testing.T) {
	p := &Program{
		Name:   "nonaffine",
		Params: []string{"n"},
		Arrays: []*ArrayDecl{{Name: "a", Dims: []IExpr{Imul(Iv("n"), Iv("n"))}}},
		Body: []Stmt{For("i", Ic(0), Iv("n"),
			For("j", Ic(0), Iv("n"),
				Set(Fref("a", Imul(Iv("i"), Iv("j"))), Fc(1)))),
		},
	}
	in, err := NewInstance(p, map[string]int{"n": 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Lower(); err == nil {
		t.Fatal("non-affine subscript lowered without error")
	}
	// Run must fall back to the interpreter and still work.
	if err := in.Run(); err != nil {
		t.Fatalf("interpreter fallback failed: %v", err)
	}
	if in.Arrays["a"].At(2*2) != 1 {
		t.Fatal("fallback run produced wrong data")
	}
}

func TestOpCountAndFlops(t *testing.T) {
	mm := MatMul()
	// c[i][j] = c[i][j] + a*b : one add, one mul, one store = 3 ops.
	if got := OpCount(mm.Body); got != 3 {
		t.Fatalf("OpCount(mm) = %d, want 3", got)
	}
	env := map[string]int{"n": 6}
	exact := ExactFlops(mm.Body, env)
	if exact != 3*6*6*6 {
		t.Fatalf("ExactFlops = %d, want %d", exact, 3*6*6*6)
	}
	est := EstFlops(mm.Body, env)
	if est != float64(exact) {
		t.Fatalf("EstFlops = %v, want %d (rectangular nest should be exact)", est, exact)
	}
}

func TestEstFlopsTriangular(t *testing.T) {
	lu := LU()
	env := map[string]int{"n": 16}
	exact := float64(ExactFlops(lu.Body, env))
	est := EstFlops(lu.Body, env)
	if est <= 0 {
		t.Fatal("EstFlops returned non-positive for LU")
	}
	ratio := est / exact
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("EstFlops/%v = %v, too far from exact %v", est, ratio, exact)
	}
}

func TestRender(t *testing.T) {
	src := Render(SOR())
	for _, want := range []string{
		"for (iter = 0; iter < maxiter; iter++) {",
		"b[j][i] =",
		"double b[n][n];",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("rendered source missing %q:\n%s", want, src)
		}
	}
}

func TestLibraryProgramsValidate(t *testing.T) {
	for name, p := range Library() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestCloneResetsState(t *testing.T) {
	in, err := NewInstance(Axpy(), map[string]int{"n": 8, "maxiter": 2})
	if err != nil {
		t.Fatal(err)
	}
	before := in.Arrays["y"].Clone()
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if before.MaxAbsDiff(in.Arrays["y"]) == 0 {
		t.Fatal("run did not change y")
	}
	fresh := in.Clone()
	if before.MaxAbsDiff(fresh.Arrays["y"]) != 0 {
		t.Fatal("Clone did not reset to initial values")
	}
}

func TestSnapshot(t *testing.T) {
	in, err := NewInstance(Axpy(), map[string]int{"n": 4, "maxiter": 1})
	if err != nil {
		t.Fatal(err)
	}
	snap := in.Snapshot()
	in.Arrays["y"].SetAt(123, 0)
	if snap["y"].At(0) == 123 {
		t.Fatal("Snapshot shares storage")
	}
}

func TestBreakIfTerminatesEarly(t *testing.T) {
	run := func(maxiter int) *Instance {
		in, err := NewInstance(JacobiConverge(), map[string]int{"n": 12, "maxiter": maxiter})
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Run(); err != nil {
			t.Fatal(err)
		}
		return in
	}
	long := run(60)
	longer := run(1000)
	short := run(5)
	if long.Arrays["a"].MaxAbsDiff(longer.Arrays["a"]) != 0 {
		t.Error("maxiter 60 and 1000 differ: the loop did not break before 60 iterations")
	}
	if long.Arrays["a"].MaxAbsDiff(short.Arrays["a"]) == 0 {
		t.Error("maxiter 5 matches converged run: the loop broke unrealistically early")
	}
	if r := long.Arrays["r"].At(0); r >= 1e-2 {
		t.Errorf("residual %g did not reach the threshold", r)
	}
}

func TestBreakIfInterpreterMatchesLowered(t *testing.T) {
	params := map[string]int{"n": 10, "maxiter": 200}
	ref, err := NewInstance(JacobiConverge(), params)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Interpret(); err != nil {
		t.Fatal(err)
	}
	fast := ref.Clone()
	code, err := fast.Lower()
	if err != nil {
		t.Fatal(err)
	}
	code.Run()
	for name := range ref.Arrays {
		if d := ref.Arrays[name].MaxAbsDiff(fast.Arrays[name]); d != 0 {
			t.Errorf("array %q differs by %g", name, d)
		}
	}
}

func TestBreakIfValidated(t *testing.T) {
	p := JacobiConverge()
	p.Body[0].(*Loop).BreakIf.Op = "~"
	if err := p.Validate(); err == nil {
		t.Fatal("bad breakif operator accepted")
	}
	p = JacobiConverge()
	p.Body[0].(*Loop).BreakIf.L = Fref("nosuch", Ic(0))
	if err := p.Validate(); err == nil {
		t.Fatal("breakif referencing undeclared array accepted")
	}
}

func TestAllComparisonOperators(t *testing.T) {
	// One program per operator, run through both engines, so every
	// comparison arm (interpreter, lowered, break) is exercised.
	ops := []struct {
		op   string
		want float64 // value of a[1] after: if a[1] OP 0.5 { a[1] = 9 }
		init float64
	}{
		{"<", 9, 0.25},
		{"<=", 9, 0.5},
		{">", 9, 0.75},
		{">=", 9, 0.5},
		{"==", 9, 0.5},
		{"!=", 9, 0.25},
	}
	for _, tc := range ops {
		p := &Program{
			Name:   "cmp",
			Params: []string{"n"},
			Arrays: []*ArrayDecl{{Name: "a", Dims: []IExpr{Iv("n")}, Init: func(idx []int) float64 {
				return tc.init
			}}},
			Body: []Stmt{
				For("i", Ic(1), Ic(2),
					&If{
						Cond: Cond{Op: tc.op, L: Fref("a", Iv("i")), R: Fc(0.5)},
						Then: []Stmt{Set(Fref("a", Iv("i")), Fc(9))},
						Else: []Stmt{Set(Fref("a", Iv("i")), Fc(-1))},
					}),
			},
		}
		for _, engine := range []string{"interpret", "lowered"} {
			in, err := NewInstance(p, map[string]int{"n": 3})
			if err != nil {
				t.Fatal(err)
			}
			if engine == "interpret" {
				err = in.Interpret()
			} else {
				var code *Code
				code, err = in.Lower()
				if err == nil {
					code.Run()
				}
			}
			if err != nil {
				t.Fatalf("%s %s: %v", tc.op, engine, err)
			}
			if got := in.Arrays["a"].At(1); got != tc.want {
				t.Errorf("%s %s: a[1] = %v, want %v", tc.op, engine, got, tc.want)
			}
		}
		// BreakIf with each operator: loop 0..10 breaking when i-th value
		// set; just ensure both engines agree.
		bp := &Program{
			Name:   "brk",
			Params: []string{"n"},
			Arrays: []*ArrayDecl{{Name: "a", Dims: []IExpr{Iv("n")}}},
			Body: []Stmt{
				&Loop{Var: "i", Lo: Ic(0), Hi: Iv("n"),
					BreakIf: &Cond{Op: tc.op, L: Fref("a", Ic(0)), R: Fc(0.5)},
					Body:    []Stmt{Set(Fref("a", Ic(0)), Fadd(Fref("a", Ic(0)), Fc(0.2)))},
				},
			},
		}
		ref, _ := NewInstance(bp, map[string]int{"n": 10})
		if err := ref.Interpret(); err != nil {
			t.Fatal(err)
		}
		fast := ref.Clone()
		code, err := fast.Lower()
		if err != nil {
			t.Fatal(err)
		}
		code.Run()
		if d := ref.Arrays["a"].MaxAbsDiff(fast.Arrays["a"]); d != 0 {
			t.Errorf("break op %s: engines disagree by %g", tc.op, d)
		}
	}
}
