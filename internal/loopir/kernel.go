package loopir

import (
	"fmt"
	"sync"
)

// This file is the kernel compiler: it specializes a statement tree into a
// form the runtime can execute at close to memory speed, superseding both
// the tree-walking interpreter (eval.go, the semantic reference) and the
// closure-based lowered engine (lower.go) on the hot path.
//
// What makes a kernel fast:
//
//   - Affine flat offsets are precomputed per array reference ("sites"):
//     at loop entry each site's offset is evaluated once and then advanced
//     by a constant stride per iteration (strength reduction), so no
//     per-element linear-form evaluation happens.
//   - Loop variables live in a flat []int register file; free variables are
//     bound once per Run call, never through a map in the inner loop.
//   - Bounds checks are hoisted to loop entry: an affine offset over a
//     counted range is monotonic in the loop variable, so checking the two
//     endpoint offsets covers every iteration. Only references under an If
//     (which may never execute) or inside a data-dependent BreakIf loop
//     (which may exit early) keep a per-access check.
//   - Expressions run on a tiny postfix stack machine with no error path;
//     malformed programs are rejected at compile time instead.
//
// RangeKernel additionally analyzes the distributed loop for parallel
// execution across worker goroutines (see CompileRangeKernel).

// Opcode kinds of the expression stack machine.
const (
	opConst = iota
	opLoad
	opAdd
	opSub
	opMul
	opDiv
)

// Comparison kinds (conditions and break tests).
const (
	cmpLT = iota
	cmpLE
	cmpGT
	cmpGE
	cmpEQ
	cmpNE
)

// kop is one postfix instruction.
type kop struct {
	kind byte
	site int32   // opLoad: site index
	c    float64 // opConst
}

// ksite is one array-reference site: a flat affine offset into one array's
// storage, advanced incrementally by its owning loop.
type ksite struct {
	data  []float64
	name  string
	flat  lin
	check bool // per-access bounds check (conditional code); else hoisted
}

// kprep initializes a site at its owning loop's entry.
type kprep struct {
	site  int32
	step  int // per-iteration offset increment (coefficient of the loop reg)
	hoist bool
}

// kadv advances a site's offset per iteration (preps with step != 0).
type kadv struct {
	site int32
	step int
}

// kexec is the per-call (and per-worker) execution state of a kernel.
type kexec struct {
	regs      []int
	offs      []int
	stack     []float64
	recording bool
	rec       []chainEntry
}

// chainEntry is one deferred reduction-chain application (parallel mode):
// replayed strictly in sequential iteration order, it reproduces the
// sequential floating-point chain bit for bit.
type chainEntry struct {
	a   *kassign
	off int
	val float64
}

// kinstr is one compiled statement.
type kinstr interface {
	run(k *Kernel, x *kexec)
}

type kloop struct {
	reg    int
	lo, hi lin
	preps  []kprep
	advs   []kadv
	body   []kinstr
	brk    *kcond
}

func (l *kloop) run(k *Kernel, x *kexec) {
	lo, hi := l.lo.eval(x.regs), l.hi.eval(x.regs)
	if hi <= lo {
		return
	}
	x.regs[l.reg] = lo
	k.initPreps(l.preps, hi-lo, x)
	for v := lo; ; {
		for _, ins := range l.body {
			ins.run(k, x)
		}
		if l.brk != nil && l.brk.eval(k, x) {
			return
		}
		v++
		if v >= hi {
			return
		}
		x.regs[l.reg] = v
		for _, a := range l.advs {
			x.offs[a.site] += a.step
		}
	}
}

type kassign struct {
	dst  int32
	code []kop
	// Chain metadata: a range-invariant store of the form r = r ⊕ expr
	// (or a plain overwrite) that parallel execution defers and replays in
	// iteration order. Only consulted when kexec.recording is set.
	chain     bool
	chainOp   byte // '+', '-', '*', '/'; 0 = plain overwrite
	chainLeft bool // the r operand is the left operand of the RHS
	dcode     []kop
}

func (a *kassign) run(k *Kernel, x *kexec) {
	if x.recording && a.chain {
		d := k.eval(a.dcode, x)
		x.rec = append(x.rec, chainEntry{a: a, off: x.offs[a.dst], val: d})
		return
	}
	v := k.eval(a.code, x)
	s := &k.sites[a.dst]
	off := x.offs[a.dst]
	if s.check && uint(off) >= uint(len(s.data)) {
		panic(fmt.Sprintf("loopir: kernel store to %q out of range: %d not in [0,%d)", s.name, off, len(s.data)))
	}
	s.data[off] = v
}

type kcond struct {
	l, r []kop
	op   byte
}

func (c *kcond) eval(k *Kernel, x *kexec) bool {
	lv := k.eval(c.l, x)
	rv := k.eval(c.r, x)
	switch c.op {
	case cmpLT:
		return lv < rv
	case cmpLE:
		return lv <= rv
	case cmpGT:
		return lv > rv
	case cmpGE:
		return lv >= rv
	case cmpEQ:
		return lv == rv
	default:
		return lv != rv
	}
}

type kif struct {
	cond      kcond
	then, els []kinstr
}

func (f *kif) run(k *Kernel, x *kexec) {
	body := f.els
	if f.cond.eval(k, x) {
		body = f.then
	}
	for _, ins := range body {
		ins.run(k, x)
	}
}

// Kernel is a compiled statement list. It is immutable after compilation
// and safe for concurrent Run calls: all mutable state lives in per-call
// kexec records drawn from a pool.
type Kernel struct {
	code      []kinstr
	sites     []ksite
	rootPreps []kprep
	regIndex  map[string]int
	nregs     int
	depth     int
	pool      sync.Pool
}

func (k *Kernel) getExec() *kexec {
	if v := k.pool.Get(); v != nil {
		x := v.(*kexec)
		for i := range x.regs {
			x.regs[i] = 0
		}
		x.recording = false
		x.rec = x.rec[:0]
		return x
	}
	return &kexec{
		regs:  make([]int, k.nregs),
		offs:  make([]int, len(k.sites)),
		stack: make([]float64, 0, k.depth),
	}
}

func (k *Kernel) putExec(x *kexec) { k.pool.Put(x) }

func (k *Kernel) applyBind(x *kexec, bind map[string]int) {
	for name, v := range bind {
		if r, ok := k.regIndex[name]; ok {
			x.regs[r] = v
		}
	}
}

// initPreps evaluates each site's start offset for a loop executing trip
// iterations and performs the hoisted range check: affine offsets are
// monotonic in the loop variable, so the two endpoint offsets bound every
// access of the loop.
func (k *Kernel) initPreps(preps []kprep, trip int, x *kexec) {
	for i := range preps {
		p := &preps[i]
		s := &k.sites[p.site]
		off := s.flat.eval(x.regs)
		x.offs[p.site] = off
		if p.hoist {
			mn, mx := off, off+p.step*(trip-1)
			if mn > mx {
				mn, mx = mx, mn
			}
			if mn < 0 || mx >= len(s.data) {
				panic(fmt.Sprintf("loopir: kernel access to %q out of range: [%d,%d] not in [0,%d)",
					s.name, mn, mx, len(s.data)))
			}
		}
	}
}

// eval runs one postfix program and returns its value.
func (k *Kernel) eval(code []kop, x *kexec) float64 {
	st := x.stack
	for i := range code {
		op := &code[i]
		switch op.kind {
		case opConst:
			st = append(st, op.c)
		case opLoad:
			s := &k.sites[op.site]
			off := x.offs[op.site]
			if s.check && uint(off) >= uint(len(s.data)) {
				panic(fmt.Sprintf("loopir: kernel load from %q out of range: %d not in [0,%d)", s.name, off, len(s.data)))
			}
			st = append(st, s.data[off])
		case opAdd:
			n := len(st) - 1
			st[n-1] += st[n]
			st = st[:n]
		case opSub:
			n := len(st) - 1
			st[n-1] -= st[n]
			st = st[:n]
		case opMul:
			n := len(st) - 1
			st[n-1] *= st[n]
			st = st[:n]
		default: // opDiv
			n := len(st) - 1
			st[n-1] /= st[n]
			st = st[:n]
		}
	}
	v := st[len(st)-1]
	x.stack = st[:0]
	return v
}

func (k *Kernel) exec(x *kexec) {
	k.initPreps(k.rootPreps, 1, x)
	for _, ins := range k.code {
		ins.run(k, x)
	}
}

// Run executes the kernel. bind supplies values for free variables (loop
// variables of enclosing scopes not bound inside the kernel); unbound
// registers are zero. Safe for concurrent callers.
func (k *Kernel) Run(bind map[string]int) {
	x := k.getExec()
	k.applyBind(x, bind)
	k.exec(x)
	k.putExec(x)
}

// applyChain replays deferred reduction-chain entries in order. Because
// each worker records its entries in its own (ascending) iteration order
// and workers cover ascending contiguous ranges, replaying worker streams
// in worker order reproduces the exact sequential operation chain.
func (k *Kernel) applyChain(entries []chainEntry) {
	for i := range entries {
		e := &entries[i]
		a := e.a
		s := &k.sites[a.dst]
		if s.check && uint(e.off) >= uint(len(s.data)) {
			panic(fmt.Sprintf("loopir: kernel store to %q out of range: %d not in [0,%d)", s.name, e.off, len(s.data)))
		}
		cur := s.data[e.off]
		var v float64
		switch a.chainOp {
		case 0:
			v = e.val
		case '+':
			if a.chainLeft {
				v = cur + e.val
			} else {
				v = e.val + cur
			}
		case '-':
			if a.chainLeft {
				v = cur - e.val
			} else {
				v = e.val - cur
			}
		case '*':
			if a.chainLeft {
				v = cur * e.val
			} else {
				v = e.val * cur
			}
		default: // '/'
			if a.chainLeft {
				v = cur / e.val
			} else {
				v = e.val / cur
			}
		}
		s.data[e.off] = v
	}
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

// krefInfo records one array reference for the parallel-safety analysis.
type krefInfo struct {
	arr   *Array
	dims  []lin
	flat  lin
	write bool
	asg   *kassign // writes only
	src   *Assign  // writes only
	dExpr Expr     // writes only: the non-r operand of a chain candidate
}

// klevel is the compile-time context of one loop nesting level.
type klevel struct {
	reg      int // -1 at the root
	canHoist bool
	preps    []kprep
	advs     []kadv
	siteOf   map[string]int32
	prepIdx  map[int32]int
}

func newLevel(reg int, canHoist bool) *klevel {
	return &klevel{reg: reg, canHoist: canHoist, siteOf: map[string]int32{}, prepIdx: map[int32]int{}}
}

type kcompiler struct {
	lw       *lowerer
	sites    []ksite
	refs     []krefInfo
	depth    int
	internal map[int]bool // registers bound by loops inside the kernel
}

func linKey(l lin) string {
	key := fmt.Sprintf("%d", l.c)
	for _, t := range l.terms {
		key += fmt.Sprintf("|%d*r%d", t.coef, t.reg)
	}
	return key
}

func linCoef(l lin, reg int) int {
	if reg < 0 {
		return 0
	}
	for _, t := range l.terms {
		if t.reg == reg {
			return t.coef
		}
	}
	return 0
}

// linIsReg reports whether l is exactly the register reg (coefficient 1,
// no constant, no other terms).
func linIsReg(l lin, reg int) bool {
	return l.c == 0 && len(l.terms) == 1 && l.terms[0].reg == reg && l.terms[0].coef == 1
}

func linUsesAny(l lin, regs map[int]bool) bool {
	for _, t := range l.terms {
		if regs[t.reg] {
			return true
		}
	}
	return false
}

func linEqual(a, b lin) bool {
	if a.c != b.c || len(a.terms) != len(b.terms) {
		return false
	}
	for i := range a.terms {
		if a.terms[i] != b.terms[i] {
			return false
		}
	}
	return true
}

// addSite interns one (array, flat offset) reference at its owning level.
// conditional references (under an If, or in a loop that can break early)
// keep per-access checks; unconditional ones get the hoisted entry check.
func (kc *kcompiler) addSite(arr *Array, flat lin, lvl *klevel, conditional bool) int32 {
	key := arr.Name + "|" + linKey(flat)
	hoist := !conditional && lvl.canHoist
	if id, ok := lvl.siteOf[key]; ok {
		if hoist && kc.sites[id].check {
			kc.sites[id].check = false
			lvl.preps[lvl.prepIdx[id]].hoist = true
		}
		return id
	}
	id := int32(len(kc.sites))
	kc.sites = append(kc.sites, ksite{data: arr.Data, name: arr.Name, flat: flat, check: !hoist})
	step := linCoef(flat, lvl.reg)
	lvl.siteOf[key] = id
	lvl.prepIdx[id] = len(lvl.preps)
	lvl.preps = append(lvl.preps, kprep{site: id, step: step, hoist: hoist})
	if step != 0 {
		lvl.advs = append(lvl.advs, kadv{site: id, step: step})
	}
	return id
}

func (kc *kcompiler) lowerRef(r Ref) (*Array, []lin, lin, error) {
	arr, ok := kc.lw.in.Arrays[r.Array]
	if !ok {
		return nil, nil, lin{}, fmt.Errorf("unknown array %q", r.Array)
	}
	dims := make([]lin, len(r.Idx))
	flat := lin{}
	for d, ie := range r.Idx {
		l, err := kc.lw.lowerIndex(ie)
		if err != nil {
			return nil, nil, lin{}, err
		}
		dims[d] = l
		flat = flat.add(l.scale(arr.Stride[d]))
	}
	return arr, dims, flat, nil
}

// compileExpr appends postfix code for e and returns the updated code and
// the expression's stack depth.
func (kc *kcompiler) compileExpr(e Expr, lvl *klevel, conditional bool, code []kop) ([]kop, int, error) {
	switch e := e.(type) {
	case Const:
		return append(code, kop{kind: opConst, c: float64(e)}), 1, nil
	case Ref:
		arr, dims, flat, err := kc.lowerRef(e)
		if err != nil {
			return nil, 0, err
		}
		site := kc.addSite(arr, flat, lvl, conditional)
		kc.refs = append(kc.refs, krefInfo{arr: arr, dims: dims, flat: flat})
		return append(code, kop{kind: opLoad, site: site}), 1, nil
	case Bin:
		code, dl, err := kc.compileExpr(e.L, lvl, conditional, code)
		if err != nil {
			return nil, 0, err
		}
		code, dr, err := kc.compileExpr(e.R, lvl, conditional, code)
		if err != nil {
			return nil, 0, err
		}
		var kind byte
		switch e.Op {
		case '+':
			kind = opAdd
		case '-':
			kind = opSub
		case '*':
			kind = opMul
		case '/':
			kind = opDiv
		default:
			return nil, 0, fmt.Errorf("bad arithmetic op %q", string(e.Op))
		}
		depth := dl
		if dr+1 > depth {
			depth = dr + 1
		}
		return append(code, kop{kind: kind}), depth, nil
	}
	return nil, 0, fmt.Errorf("unknown expression %T", e)
}

func (kc *kcompiler) compileCond(c Cond, lvl *klevel, conditional bool) (kcond, error) {
	l, dl, err := kc.compileExpr(c.L, lvl, conditional, nil)
	if err != nil {
		return kcond{}, err
	}
	r, dr, err := kc.compileExpr(c.R, lvl, conditional, nil)
	if err != nil {
		return kcond{}, err
	}
	if dl > kc.depth {
		kc.depth = dl
	}
	if dr > kc.depth {
		kc.depth = dr
	}
	var op byte
	switch c.Op {
	case "<":
		op = cmpLT
	case "<=":
		op = cmpLE
	case ">":
		op = cmpGT
	case ">=":
		op = cmpGE
	case "==":
		op = cmpEQ
	case "!=":
		op = cmpNE
	default:
		return kcond{}, fmt.Errorf("bad comparison op %q", c.Op)
	}
	return kcond{l: l, r: r, op: op}, nil
}

func (kc *kcompiler) compileAssign(s *Assign, lvl *klevel, conditional bool) (*kassign, error) {
	arr, dims, flat, err := kc.lowerRef(s.LHS)
	if err != nil {
		return nil, err
	}
	dst := kc.addSite(arr, flat, lvl, conditional)
	code, d, err := kc.compileExpr(s.RHS, lvl, conditional, nil)
	if err != nil {
		return nil, err
	}
	if d > kc.depth {
		kc.depth = d
	}
	a := &kassign{dst: dst, code: code}

	// Recognize the chain shape r = r ⊕ expr (either operand order) where
	// the r operand names the identical element as the LHS. The stripped
	// expr is compiled too, so parallel execution can defer the chain.
	ref := krefInfo{arr: arr, dims: dims, flat: flat, write: true, asg: a, src: s}
	if b, ok := s.RHS.(Bin); ok {
		operand := func(e Expr) bool {
			r, ok := e.(Ref)
			if !ok || r.Array != s.LHS.Array {
				return false
			}
			_, _, rflat, err := kc.lowerRef(r)
			return err == nil && linEqual(rflat, flat)
		}
		var dExpr Expr
		switch {
		case operand(b.L):
			a.chainOp, a.chainLeft, dExpr = b.Op, true, b.R
		case operand(b.R):
			a.chainOp, a.chainLeft, dExpr = b.Op, false, b.L
		}
		if dExpr != nil {
			// Note: compiling the stripped operand interns no new sites
			// beyond those the full RHS already created.
			dcode, dd, err := kc.compileExpr(dExpr, lvl, conditional, nil)
			if err != nil {
				return nil, err
			}
			if dd > kc.depth {
				kc.depth = dd
			}
			a.dcode = dcode
			ref.dExpr = dExpr
		}
	}
	kc.refs = append(kc.refs, ref)
	return a, nil
}

func (kc *kcompiler) compileStmts(stmts []Stmt, lvl *klevel, conditional bool) ([]kinstr, error) {
	var out []kinstr
	for _, s := range stmts {
		switch s := s.(type) {
		case *Loop:
			lo, err := kc.lw.lowerIndex(s.Lo)
			if err != nil {
				return nil, err
			}
			hi, err := kc.lw.lowerIndex(s.Hi)
			if err != nil {
				return nil, err
			}
			reg := kc.lw.regFor(s.Var)
			kc.internal[reg] = true
			inner := newLevel(reg, s.BreakIf == nil)
			body, err := kc.compileStmts(s.Body, inner, false)
			if err != nil {
				return nil, err
			}
			l := &kloop{reg: reg, lo: lo, hi: hi, body: body}
			if s.BreakIf != nil {
				brk, err := kc.compileCond(*s.BreakIf, inner, false)
				if err != nil {
					return nil, err
				}
				l.brk = &brk
			}
			l.preps, l.advs = inner.preps, inner.advs
			out = append(out, l)
		case *Assign:
			a, err := kc.compileAssign(s, lvl, conditional)
			if err != nil {
				return nil, err
			}
			out = append(out, a)
		case *If:
			cond, err := kc.compileCond(s.Cond, lvl, conditional)
			if err != nil {
				return nil, err
			}
			then, err := kc.compileStmts(s.Then, lvl, true)
			if err != nil {
				return nil, err
			}
			els, err := kc.compileStmts(s.Else, lvl, true)
			if err != nil {
				return nil, err
			}
			out = append(out, &kif{cond: cond, then: then, els: els})
		default:
			return nil, fmt.Errorf("unknown statement %T", s)
		}
	}
	return out, nil
}

func (in *Instance) compileKernel(stmts []Stmt) (*Kernel, *kcompiler, error) {
	kc := &kcompiler{lw: &lowerer{in: in, regIndex: map[string]int{}}, internal: map[int]bool{}}
	root := newLevel(-1, true)
	code, err := kc.compileStmts(stmts, root, false)
	if err != nil {
		return nil, nil, err
	}
	k := &Kernel{
		code:      code,
		sites:     kc.sites,
		rootPreps: root.preps,
		regIndex:  kc.lw.regIndex,
		nregs:     kc.lw.nregs,
		depth:     kc.depth + 1,
	}
	return k, kc, nil
}

// CompileKernel compiles a statement list against this instance's arrays.
// Variables that are neither parameters nor bound by loops inside the
// statement list become free variables, set per call via Run's bind map.
// It fails for programs with non-affine subscripts (use the interpreter).
func (in *Instance) CompileKernel(stmts []Stmt) (*Kernel, error) {
	k, _, err := in.compileKernel(stmts)
	return k, err
}

// RunKernel compiles the whole program body to a kernel and executes it.
func (in *Instance) RunKernel() error {
	k, err := in.CompileKernel(in.Prog.Body)
	if err != nil {
		return err
	}
	k.Run(nil)
	return nil
}

// ---------------------------------------------------------------------------
// RangeKernel: the distributed loop, partitionable across workers
// ---------------------------------------------------------------------------

// Free variables carrying the executed range into a RangeKernel.
const (
	kernelLoVar = "__klo"
	kernelHiVar = "__khi"
)

// RangeKernel is a compiled distributed loop `for v in [lo,hi) { body }`
// whose range is supplied per call. CompileRangeKernel also proves (or
// refuses to prove) that distinct iterations touch disjoint data, so the
// range can be partitioned across worker goroutines with outputs
// bit-identical to sequential execution:
//
//   - Every written array must either be partitioned by the range variable
//     (each write's subscript in some dimension is exactly v, and every
//     read's subscript in that dimension is v too — or range-invariant and
//     guarded at run time to fall outside [lo,hi), e.g. LU's pivot column)
//   - or be written only at range-invariant locations through recognized
//     reduction chains r = r ⊕ expr (expr free of r): workers defer those
//     stores and the chain is replayed in iteration order afterwards,
//     reproducing the sequential floating-point result exactly.
//
// Anything else falls back to sequential execution of the same kernel.
type RangeKernel struct {
	k         *Kernel
	loReg     int
	hiReg     int
	parOK     bool
	seqReason string
	guards    []lin
	hasChains bool
}

// CompileRangeKernel compiles body as a distributed-range kernel over
// distVar.
func (in *Instance) CompileRangeKernel(distVar string, body []Stmt) (*RangeKernel, error) {
	wrapped := []Stmt{For(distVar, Iv(kernelLoVar), Iv(kernelHiVar), body...)}
	k, kc, err := in.compileKernel(wrapped)
	if err != nil {
		return nil, err
	}
	rk := &RangeKernel{
		k:     k,
		loReg: k.regIndex[kernelLoVar],
		hiReg: k.regIndex[kernelHiVar],
	}
	rk.analyze(kc, k.regIndex[distVar], body)
	return rk, nil
}

// countExprReads counts reads of array name in an expression.
func countExprReads(e Expr, name string) int {
	switch e := e.(type) {
	case Ref:
		if e.Array == name {
			return 1
		}
	case Bin:
		return countExprReads(e.L, name) + countExprReads(e.R, name)
	}
	return 0
}

// countStmtReads counts reads of array name across a statement list,
// including If and BreakIf conditions (LHS positions are not reads).
func countStmtReads(stmts []Stmt, name string) int {
	n := 0
	for _, s := range stmts {
		switch s := s.(type) {
		case *Loop:
			if s.BreakIf != nil {
				n += countExprReads(s.BreakIf.L, name) + countExprReads(s.BreakIf.R, name)
			}
			n += countStmtReads(s.Body, name)
		case *Assign:
			n += countExprReads(s.RHS, name)
		case *If:
			n += countExprReads(s.Cond.L, name) + countExprReads(s.Cond.R, name)
			n += countStmtReads(s.Then, name)
			n += countStmtReads(s.Else, name)
		}
	}
	return n
}

func (rk *RangeKernel) analyze(kc *kcompiler, vReg int, body []Stmt) {
	type agroup struct {
		writes []*krefInfo
		reads  []*krefInfo
	}
	groups := map[*Array]*agroup{}
	order := []*Array{}
	for i := range kc.refs {
		r := &kc.refs[i]
		g := groups[r.arr]
		if g == nil {
			g = &agroup{}
			groups[r.arr] = g
			order = append(order, r.arr)
		}
		if r.write {
			g.writes = append(g.writes, r)
		} else {
			g.reads = append(g.reads, r)
		}
	}
	for _, arr := range order {
		g := groups[arr]
		if len(g.writes) == 0 {
			continue
		}
		invariant := true
		for _, w := range g.writes {
			if linCoef(w.flat, vReg) != 0 {
				invariant = false
				break
			}
		}
		if invariant {
			if !rk.analyzeChains(arr, g.writes, body) {
				return
			}
			continue
		}
		if !rk.analyzePartition(arr, g.writes, g.reads, vReg, kc.internal) {
			return
		}
	}
	rk.parOK = true
}

// analyzeChains checks that a range-invariantly written array is touched
// only through deferred-replayable chain statements.
func (rk *RangeKernel) analyzeChains(arr *Array, writes []*krefInfo, body []Stmt) bool {
	allowed := 0
	for _, w := range writes {
		a := w.asg
		if w.dExpr != nil {
			if countExprReads(w.dExpr, arr.Name) != 0 {
				rk.seqReason = fmt.Sprintf("reduction operand of %q reads %q", arr.Name, arr.Name)
				return false
			}
			allowed++
		} else {
			if countExprReads(w.src.RHS, arr.Name) != 0 {
				rk.seqReason = fmt.Sprintf("non-chain self-referential write to %q", arr.Name)
				return false
			}
			a.chainOp = 0
			a.dcode = a.code
		}
		a.chain = true
	}
	if countStmtReads(body, arr.Name) != allowed {
		rk.seqReason = fmt.Sprintf("replicated array %q read outside its reduction chain", arr.Name)
		return false
	}
	rk.hasChains = true
	return true
}

// analyzePartition finds a dimension along which every write is owned by
// exactly its iteration, making cross-iteration accesses provably disjoint.
func (rk *RangeKernel) analyzePartition(arr *Array, writes, reads []*krefInfo, vReg int, internal map[int]bool) bool {
	rank := len(arr.Dims)
	for d := 0; d < rank; d++ {
		owned := true
		for _, w := range writes {
			if !linIsReg(w.dims[d], vReg) {
				owned = false
				break
			}
		}
		if !owned {
			continue
		}
		var guards []lin
		good := true
		for _, r := range reads {
			sub := r.dims[d]
			if linIsReg(sub, vReg) {
				continue
			}
			if !linUsesAny(sub, internal) {
				guards = append(guards, sub)
				continue
			}
			good = false
			break
		}
		if good {
			rk.guards = append(rk.guards, guards...)
			return true
		}
	}
	rk.seqReason = fmt.Sprintf("cross-iteration access to %q", arr.Name)
	return false
}

// ParallelSafe reports whether the kernel's iterations were proven
// independent (possibly subject to per-call runtime guards).
func (rk *RangeKernel) ParallelSafe() bool { return rk.parOK }

// SeqReason explains why the kernel is sequential-only ("" if parallel).
func (rk *RangeKernel) SeqReason() string { return rk.seqReason }

// Run executes iterations [lo,hi) sequentially.
func (rk *RangeKernel) Run(lo, hi int, bind map[string]int) {
	k := rk.k
	x := k.getExec()
	k.applyBind(x, bind)
	x.regs[rk.loReg], x.regs[rk.hiReg] = lo, hi
	k.exec(x)
	k.putExec(x)
}

// Workers resolves how many workers a parallel run over [lo,hi) may use:
// want, clamped by the range width, dropped to 1 when the kernel is not
// provably parallel or a runtime guard (a range-invariant read of a
// partitioned array) lands inside the executed range.
func (rk *RangeKernel) Workers(lo, hi int, bind map[string]int, want int) int {
	if want > hi-lo {
		want = hi - lo
	}
	if want <= 1 || !rk.parOK {
		return 1
	}
	if len(rk.guards) > 0 {
		k := rk.k
		x := k.getExec()
		k.applyBind(x, bind)
		blocked := false
		for _, g := range rk.guards {
			if v := g.eval(x.regs); v >= lo && v < hi {
				blocked = true
				break
			}
		}
		k.putExec(x)
		if blocked {
			return 1
		}
	}
	return want
}

// RunParallel executes iterations [lo,hi) across up to workers goroutines
// and returns the worker count actually used. Results are bit-identical to
// Run for every worker count: non-reduction writes are provably disjoint,
// and reduction chains are recorded per worker and replayed in iteration
// order.
func (rk *RangeKernel) RunParallel(lo, hi int, bind map[string]int, workers int) int {
	w := rk.Workers(lo, hi, bind, workers)
	if w <= 1 {
		if hi > lo {
			rk.Run(lo, hi, bind)
		}
		return 1
	}
	k := rk.k
	width := hi - lo
	execs := make([]*kexec, w)
	var wg sync.WaitGroup
	var panicked sync.Map
	for i := 0; i < w; i++ {
		x := k.getExec()
		k.applyBind(x, bind)
		x.regs[rk.loReg] = lo + i*width/w
		x.regs[rk.hiReg] = lo + (i+1)*width/w
		x.recording = rk.hasChains
		execs[i] = x
		wg.Add(1)
		go func(i int, x *kexec) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicked.Store(i, p)
				}
			}()
			k.exec(x)
		}(i, x)
	}
	wg.Wait()
	if p, ok := panicked.Load(0); ok {
		panic(p)
	}
	panicked.Range(func(_, p interface{}) bool { panic(p) })
	for _, x := range execs {
		k.applyChain(x.rec)
		k.putExec(x)
	}
	return w
}
