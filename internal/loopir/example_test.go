package loopir_test

import (
	"fmt"

	"repro/internal/loopir"
)

// Build a small program with the constructors, run it, and read a result.
func Example() {
	n := loopir.Iv("n")
	i := loopir.Iv("i")
	prog := &loopir.Program{
		Name:   "scale",
		Params: []string{"n"},
		Arrays: []*loopir.ArrayDecl{
			{Name: "x", Dims: []loopir.IExpr{n}, Init: func(idx []int) float64 { return float64(idx[0]) }},
		},
		Body: []loopir.Stmt{
			loopir.For("i", loopir.Ic(0), n,
				loopir.Set(loopir.Fref("x", i), loopir.Fmul(loopir.Fc(2), loopir.Fref("x", i)))),
		},
	}
	in, err := loopir.NewInstance(prog, map[string]int{"n": 5})
	if err != nil {
		panic(err)
	}
	if err := in.Run(); err != nil {
		panic(err)
	}
	fmt.Println(in.Arrays["x"].Data)
	// Output: [0 2 4 6 8]
}

// Render the paper's SOR kernel as C-like source.
func ExampleRender() {
	src := loopir.Render(loopir.Axpy())
	fmt.Print(src)
	// Output:
	// /* axpy(n, maxiter) */
	// double x[n];
	// double y[n];
	// for (iter = 0; iter < maxiter; iter++) {
	//     for (i = 0; i < n; i++) {
	//         y[i] = (1.0001 * x[i]) + y[i];
	//     }
	// }
}

// Estimate the floating-point work of a loop nest.
func ExampleEstFlops() {
	mm := loopir.MatMul()
	fmt.Printf("%.0f flops for n=100\n", loopir.EstFlops(mm.Body, map[string]int{"n": 100}))
	// Output: 3000000 flops for n=100
}
