package svc

// pool is the shared slave pool: a fixed roster of daemon addresses, each
// leased to at most one job at a time. Leases are exclusive by
// construction — a slot is either on the free list or inside exactly one
// job's lease — which is the service's isolation guarantee: two jobs never
// drive the same daemon, so their sessions, routers and epochs cannot
// interleave. The owning Service's mutex guards all calls.
type pool struct {
	addrs []string
	free  []int // free slot indices, ascending
}

func newPool(addrs []string) *pool {
	p := &pool{addrs: addrs}
	for i := range addrs {
		p.free = append(p.free, i)
	}
	return p
}

func (p *pool) size() int     { return len(p.addrs) }
func (p *pool) freeLen() int  { return len(p.free) }
func (p *pool) busyLen() int  { return len(p.addrs) - len(p.free) }

// lease takes n free slots; the caller must have checked freeLen() >= n.
func (p *pool) lease(n int) []int {
	if n > len(p.free) {
		panic("svc: pool lease over capacity")
	}
	slots := append([]int(nil), p.free[:n]...)
	p.free = p.free[n:]
	return slots
}

// release returns a lease's slots to the free list, keeping it sorted so
// leases stay deterministic.
func (p *pool) release(slots []int) {
	p.free = append(p.free, slots...)
	for i := 1; i < len(p.free); i++ {
		for j := i; j > 0 && p.free[j] < p.free[j-1]; j-- {
			p.free[j], p.free[j-1] = p.free[j-1], p.free[j]
		}
	}
}

// leaseAddrs maps slot indices to daemon addresses.
func (p *pool) leaseAddrs(slots []int) []string {
	addrs := make([]string, len(slots))
	for i, s := range slots {
		addrs[i] = p.addrs[s]
	}
	return addrs
}
