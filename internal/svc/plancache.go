package svc

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"repro/internal/compile"
	"repro/internal/depend"
	"repro/internal/dlb"
	"repro/internal/lang"
)

// planEntry is one compiled, instantiated plan: everything a run reuses.
// Pinning the Prepared (grain + resolved compile options) is what makes
// resubmission hit the daemons' init caches — the grain measurement is
// timing-dependent, so recompiling per run would hash differently — and
// what lets a preempted job resume under the phase schedule its checkpoint
// was cut with.
type planEntry struct {
	plan *compile.Plan
	pre  *dlb.Prepared
}

// planCache memoizes compilation by (program content, params, distribution,
// slave count). Bounded LRU; the Service's mutex guards all calls.
type planCache struct {
	max   int
	order []string
	items map[string]*planEntry
}

func newPlanCache(max int) *planCache {
	if max <= 0 {
		max = 16
	}
	return &planCache{max: max, items: map[string]*planEntry{}}
}

// specKey fingerprints everything that determines the compiled plan and
// its instantiation.
func specKey(spec JobSpec) string {
	h := sha256.New()
	io.WriteString(h, "svc-plan-v1\n")
	io.WriteString(h, spec.Program)
	io.WriteString(h, "\x00")
	keys := make([]string, 0, len(spec.Params))
	for k := range spec.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%d\n", k, spec.Params[k])
	}
	dims := make([]string, 0, len(spec.DistDims))
	for k := range spec.DistDims {
		dims = append(dims, k)
	}
	sort.Strings(dims)
	for _, k := range dims {
		fmt.Fprintf(h, "dim %s:%d\n", k, spec.DistDims[k])
	}
	for _, l := range spec.DistLoops {
		fmt.Fprintf(h, "loop %s\n", l)
	}
	fmt.Fprintf(h, "slaves=%d sync=%v cores=%d groups=%d kernel=%s costmodel=%s\n", spec.Slaves, spec.Synchronous, spec.Cores, spec.Groups, spec.Kernel, spec.CostModel)
	return hex.EncodeToString(h.Sum(nil))[:24]
}

// lookup compiles and instantiates spec (or returns the cached entry).
// cfgFor builds the run Config the instantiation must measure under.
func (c *planCache) lookup(spec JobSpec, cfgFor func(*compile.Plan) dlb.Config) (*planEntry, error) {
	key := specKey(spec)
	if e, ok := c.items[key]; ok {
		c.bump(key)
		return e, nil
	}
	prog, err := lang.Parse(spec.Program)
	if err != nil {
		return nil, fmt.Errorf("svc: parsing program: %w", err)
	}
	plan, err := compile.Compile(prog, compile.Options{
		Dist: depend.DistSpec{Dims: spec.DistDims, Loops: spec.DistLoops},
	})
	if err != nil {
		return nil, fmt.Errorf("svc: compiling program: %w", err)
	}
	pre, err := dlb.Prepare(cfgFor(plan), spec.Slaves)
	if err != nil {
		return nil, fmt.Errorf("svc: instantiating plan: %w", err)
	}
	e := &planEntry{plan: plan, pre: pre}
	for len(c.items) >= c.max {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.items, old)
	}
	c.items[key] = e
	c.order = append(c.order, key)
	return e, nil
}

func (c *planCache) bump(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.order = append(c.order, key)
}
