package svc

import (
	"bufio"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDlbsvcSmoke is the service acceptance harness (also the CI smoke
// job): a real dlbsvc process with a 4-daemon in-process pool takes three
// jobs over HTTP — two tenants, one resubmission that exercises the plan
// and init caches — and every result's checksums must match the
// sequential reference.
func TestDlbsvcSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process harness is not -short")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}
	bin := filepath.Join(t.TempDir(), "dlbsvc")
	build := exec.Command(goTool, "build", "-o", bin, "repro/cmd/dlbsvc")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building dlbsvc: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-listen", "127.0.0.1:0", "-pool", "4", "-quiet")
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(out)
	if !sc.Scan() {
		t.Fatalf("dlbsvc produced no startup line (err %v)", sc.Err())
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 3 || fields[0] != "dlbsvc" || fields[1] != "listening" {
		t.Fatalf("unexpected dlbsvc startup line %q", sc.Text())
	}
	base := "http://" + fields[2]
	go func() {
		for sc.Scan() {
		}
	}()

	mm := testSpec(t, "mm", 64, 0, 2)
	sor := testSpec(t, "sor", 64, 4, 2)
	jobs := []struct {
		spec   JobSpec
		tenant string
	}{
		{mm, "alice"},
		{sor, "bob"},
		{mm, "alice"}, // identical resubmission: plan + init caches
	}
	wants := []map[string]string{refSums(t, mm), refSums(t, sor), refSums(t, mm)}

	ids := make([]string, len(jobs))
	for i, j := range jobs {
		spec := j.spec
		spec.Tenant = j.tenant
		var sub struct {
			ID string `json:"id"`
		}
		if code := httpDo(t, "POST", base+"/api/v1/jobs", spec, &sub); code != 202 {
			t.Fatalf("submit %d = %d", i, code)
		}
		ids[i] = sub.ID
	}

	deadline := time.Now().Add(120 * time.Second)
	for i, id := range ids {
		for {
			var st JobStatus
			if code := httpDo(t, "GET", fmt.Sprintf("%s/api/v1/jobs/%s", base, id), nil, &st); code != 200 {
				t.Fatalf("status %s = %d", id, code)
			}
			if st.State == StateDone {
				break
			}
			if st.State == StateFailed {
				t.Fatalf("job %s failed: %s", id, st.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", id, st.State)
			}
			time.Sleep(20 * time.Millisecond)
		}
		var res JobResult
		if code := httpDo(t, "GET", fmt.Sprintf("%s/api/v1/jobs/%s/result", base, id), nil, &res); code != 200 {
			t.Fatalf("result %s = %d", id, code)
		}
		if len(res.Arrays) == 0 {
			t.Fatalf("job %s has no checksums", id)
		}
		for _, a := range res.Arrays {
			if w, ok := wants[i][a.Name]; ok && a.SHA256 != w {
				t.Errorf("job %s array %s checksum mismatch vs sequential reference", id, a.Name)
			}
		}
	}

	var z Statsz
	if code := httpDo(t, "GET", base+"/statsz", nil, &z); code != 200 {
		t.Fatalf("statsz = %d", code)
	}
	if z.Tenants["alice"] == nil || z.Tenants["alice"].Done != 2 || z.Tenants["bob"] == nil || z.Tenants["bob"].Done != 1 {
		t.Errorf("statsz tenants wrong: %+v", z.Tenants)
	}

	// SIGTERM drains cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			t.Fatalf("dlbsvc exited non-zero: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("dlbsvc did not exit after SIGTERM")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("dlbsvc still serving after exit")
	}
}
