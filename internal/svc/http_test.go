package svc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/netrun"
)

// httpDo is a tiny JSON client against the test server.
func httpDo(t *testing.T, method, url string, body interface{}, out interface{}) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestHTTPAPI drives the whole front door over real HTTP: submit, poll,
// result with checksums, list, statsz, cancel, and the error statuses.
func TestHTTPAPI(t *testing.T) {
	s := newTestService(t, 2, netrun.ServerOptions{}, Options{MaxQueue: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	if code := httpDo(t, "GET", ts.URL+"/healthz", nil, nil); code != 200 {
		t.Fatalf("healthz = %d", code)
	}

	// Bad submissions: malformed JSON and an empty program.
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("malformed submit = %d, want 400", resp.StatusCode)
	}
	if code := httpDo(t, "POST", ts.URL+"/api/v1/jobs", JobSpec{}, nil); code != 400 {
		t.Errorf("empty-program submit = %d, want 400", code)
	}

	// A good submission round-trips through status to a verified result.
	spec := testSpec(t, "mm", 64, 0, 2)
	spec.Tenant = "alice"
	var sub struct{ ID string `json:"id"` }
	if code := httpDo(t, "POST", ts.URL+"/api/v1/jobs", spec, &sub); code != 202 {
		t.Fatalf("submit = %d, want 202", code)
	}
	jobURL := ts.URL + "/api/v1/jobs/" + sub.ID

	deadline := time.Now().Add(30 * time.Second)
	for {
		var st JobStatus
		if code := httpDo(t, "GET", jobURL, nil, &st); code != 200 {
			t.Fatalf("status = %d", code)
		}
		if st.State == StateDone {
			break
		}
		if st.State == StateFailed || time.Now().After(deadline) {
			t.Fatalf("job ended in %s (%s)", st.State, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}

	var res JobResult
	if code := httpDo(t, "GET", jobURL+"/result", nil, &res); code != 200 {
		t.Fatalf("result = %d, want 200", code)
	}
	want := refSums(t, spec)
	if len(res.Arrays) == 0 {
		t.Fatal("result has no checksums")
	}
	for _, a := range res.Arrays {
		if w, ok := want[a.Name]; ok && a.SHA256 != w {
			t.Errorf("array %s checksum mismatch over HTTP", a.Name)
		}
	}

	// List and statsz reflect the run.
	var list []JobStatus
	if code := httpDo(t, "GET", ts.URL+"/api/v1/jobs", nil, &list); code != 200 || len(list) != 1 {
		t.Errorf("list = %d with %d jobs, want 200 with 1", code, len(list))
	}
	var z Statsz
	if code := httpDo(t, "GET", ts.URL+"/statsz", nil, &z); code != 200 {
		t.Fatalf("statsz = %d", code)
	}
	if z.Tenants["alice"] == nil || z.Tenants["alice"].Done != 1 {
		t.Errorf("statsz missing tenant alice done=1: %+v", z.Tenants)
	}
	if z.PoolSize != 2 || z.PoolFree != 2 {
		t.Errorf("statsz pool %d/%d, want 2 free of 2", z.PoolFree, z.PoolSize)
	}

	// Unknown job: 404 everywhere; unfinished result: 409.
	if code := httpDo(t, "GET", ts.URL+"/api/v1/jobs/j-999999", nil, nil); code != 404 {
		t.Errorf("unknown status = %d, want 404", code)
	}
	if code := httpDo(t, "DELETE", ts.URL+"/api/v1/jobs/j-999999", nil, nil); code != 404 {
		t.Errorf("unknown cancel = %d, want 404", code)
	}
	if code := httpDo(t, "GET", jobURL+"/result", nil, nil); code != 200 {
		t.Errorf("finished result re-read = %d, want 200", code)
	}
}

// TestHTTPQueueFull checks the 429 + Retry-After admission answer.
func TestHTTPQueueFull(t *testing.T) {
	s := newTestService(t, 1, netrun.ServerOptions{Drag: 30}, Options{MaxQueue: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	spec := testSpec(t, "mm", 128, 0, 1)

	var first struct{ ID string `json:"id"` }
	if code := httpDo(t, "POST", ts.URL+"/api/v1/jobs", spec, &first); code != 202 {
		t.Fatalf("submit = %d", code)
	}
	waitState(t, s, first.ID, 15*time.Second, StateRunning)
	if code := httpDo(t, "POST", ts.URL+"/api/v1/jobs", spec, nil); code != 202 {
		t.Fatalf("second submit = %d", code)
	}

	b, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// An unfinished job's result is a conflict.
	if code := httpDo(t, "GET", fmt.Sprintf("%s/api/v1/jobs/%s/result", ts.URL, first.ID), nil, nil); code != 409 {
		t.Errorf("running result = %d, want 409", code)
	}
}
