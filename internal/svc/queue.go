package svc

import "errors"

// ErrQueueFull is the admission-control rejection: the waiting set is at
// capacity and the client should back off and resubmit (HTTP 429).
var ErrQueueFull = errors.New("svc: job queue is full")

// queue is the waiting set: every job that wants a lease (freshly queued
// or preempted). Ordering is decided at pick time, not insertion time,
// because the fairness criterion — normalized tenant service — moves as
// jobs run:
//
//  1. priority class (high before normal before low);
//  2. within a class, the tenant with the least served/weight slave-seconds
//     (weighted max-min fairness over accumulated service);
//  3. within a tenant, admission order (FIFO) — which also puts a
//     preempted job ahead of the same tenant's later submissions, so held
//     progress is resumed before new work starts.
//
// The pick is head-of-line per scan: the scheduler stops at the first job
// it cannot place (see Service.schedule), trading a little utilization for
// a hard no-starvation property — capacity freed while a big job waits
// cannot be drained away by smaller jobs behind it.
//
// The owning Service's mutex guards all calls.
type queue struct {
	max  int
	jobs []*Job // admission order
}

func newQueue(max int) *queue {
	if max <= 0 {
		max = 64
	}
	return &queue{max: max}
}

func (q *queue) len() int { return len(q.jobs) }

// add admits a job to the waiting set, enforcing the bound. Re-queued
// (preempted) jobs bypass the bound: they were already admitted and hold
// checkpointed progress the service must not drop.
func (q *queue) add(j *Job, readmit bool) error {
	if !readmit && len(q.jobs) >= q.max {
		return ErrQueueFull
	}
	q.jobs = append(q.jobs, j)
	// Keep admission order: re-queued jobs carry their original Seq.
	for i := len(q.jobs) - 1; i > 0 && q.jobs[i].Seq < q.jobs[i-1].Seq; i-- {
		q.jobs[i], q.jobs[i-1] = q.jobs[i-1], q.jobs[i]
	}
	return nil
}

// remove takes a job out of the waiting set (scheduled or canceled).
func (q *queue) remove(j *Job) {
	for i, x := range q.jobs {
		if x == j {
			q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
			return
		}
	}
}

// pick returns the next job by the fairness order, or nil when empty.
// served reports a tenant's normalized accumulated service.
func (q *queue) pick(served func(tenant string) float64) *Job {
	var best *Job
	var bestServed float64
	for _, j := range q.jobs {
		if best == nil {
			best, bestServed = j, served(j.Spec.Tenant)
			continue
		}
		br, jr := classRank(best.Spec.Priority), classRank(j.Spec.Priority)
		if jr != br {
			if jr < br {
				best, bestServed = j, served(j.Spec.Tenant)
			}
			continue
		}
		if j.Spec.Tenant != best.Spec.Tenant {
			if js := served(j.Spec.Tenant); js < bestServed {
				best, bestServed = j, js
			}
			continue
		}
		// Same class, same tenant: q.jobs is admission-ordered, keep best.
	}
	return best
}
