package svc

import (
	"time"

	"repro/internal/metrics"
)

// tenantStats is one tenant's accumulated telemetry. Guarded by the
// Service's mutex.
type tenantStats struct {
	Submitted   int64             `json:"submitted"`
	Rejected    int64             `json:"rejected"`
	Done        int64             `json:"done"`
	Failed      int64             `json:"failed"`
	Canceled    int64             `json:"canceled"`
	Preemptions int64             `json:"preemptions"`
	Resumes     int64             `json:"resumes"`
	WaitedMS    int64             `json:"waited_ms"`
	RanMS       int64             `json:"ran_ms"`
	SlaveSec    float64           `json:"slave_seconds"` // Σ slaves × lease seconds
	Counters    metrics.Counters  `json:"counters"`      // merged engine counters
}

// stats aggregates per-tenant accounting plus the fairness weights.
type stats struct {
	weights map[string]float64
	tenants map[string]*tenantStats
}

func newStats(weights map[string]float64) *stats {
	return &stats{weights: weights, tenants: map[string]*tenantStats{}}
}

func (s *stats) tenant(name string) *tenantStats {
	t := s.tenants[name]
	if t == nil {
		t = &tenantStats{Counters: metrics.Counters{}}
		s.tenants[name] = t
	}
	return t
}

// weight returns a tenant's fairness weight (default 1).
func (s *stats) weight(name string) float64 {
	if w, ok := s.weights[name]; ok && w > 0 {
		return w
	}
	return 1
}

// served is the fairness criterion: accumulated slave-seconds normalized
// by weight. A heavier tenant has to consume proportionally more before it
// yields its turn.
func (s *stats) served(name string) float64 {
	return s.tenant(name).SlaveSec / s.weight(name)
}

// charge books one finished lease segment against a tenant.
func (s *stats) charge(tenant string, slaves int, held time.Duration) {
	t := s.tenant(tenant)
	t.SlaveSec += float64(slaves) * held.Seconds()
	t.RanMS += held.Milliseconds()
}

// Statsz is the /statsz snapshot.
type Statsz struct {
	UptimeMS   int64                   `json:"uptime_ms"`
	PoolSize   int                     `json:"pool_size"`
	PoolFree   int                     `json:"pool_free"`
	QueueDepth int                     `json:"queue_depth"`
	QueueMax   int                     `json:"queue_max"`
	Running    int                     `json:"running"`
	Jobs       map[string]int         `json:"jobs"` // state -> count
	Tenants    map[string]*tenantStats `json:"tenants"`
}
