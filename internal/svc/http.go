package svc

import (
	"encoding/json"
	"errors"
	"net/http"
)

// maxBodyBytes bounds a submission body (programs are small source texts).
const maxBodyBytes = 8 << 20

// Handler returns the HTTP front door:
//
//	POST   /api/v1/jobs             submit a JobSpec    → 202 {"id": ...}
//	GET    /api/v1/jobs             list jobs           → 200 [JobStatus]
//	GET    /api/v1/jobs/{id}        job status          → 200 JobStatus
//	GET    /api/v1/jobs/{id}/result terminal outcome    → 200 JobResult
//	DELETE /api/v1/jobs/{id}        cancel              → 200
//	GET    /statsz                  service telemetry   → 200 Statsz
//	GET    /healthz                 liveness            → 200 "ok"
//
// A full queue answers 429 with Retry-After; an unfinished job's result is
// 409; unknown jobs are 404.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrClosed):
		writeErr(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": StateQueued})
	}
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	res, err := s.Result(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrNotFound):
		writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, ErrNotDone):
		writeErr(w, http.StatusConflict, err)
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.Cancel(r.PathValue("id")); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": r.PathValue("id"), "state": "canceling"})
}

func (s *Service) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Statsz())
}
