//go:build !race

package svc

const raceDetector = false
