// Package svc is the multi-tenant cluster service: a long-lived front door
// that accepts compiled-plan jobs over HTTP/JSON, holds them in a bounded
// admission queue, and leases subsets of a shared slave-daemon pool to
// concurrently running masters. It is the scheduling layer above the
// per-run fault policy: where FaultPolicy decides how one run survives its
// slaves, the service decides which runs get slaves at all.
//
// Scheduling. Jobs carry a tenant and a priority class. The waiting set is
// ordered by class, then weighted max-min fairness over accumulated
// slave-seconds per tenant, then admission order. Each running job holds
// an exclusive lease — a daemon serves one session at a time, so leases
// are the isolation boundary between concurrent masters. When a
// high-priority job cannot fit, the service preempts running jobs of
// strictly lower classes through the checkpoint machinery: the run cuts a
// consistent checkpoint at the next eligible round, releases its lease,
// and re-enters the waiting set; the resume replays the snapshot through
// the ordinary recovery path, so the finished result is bit-identical to
// an uninterrupted run.
package svc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/compile"
	"repro/internal/dlb"
	"repro/internal/fault"
	"repro/internal/netrun"
)

// Service API errors beyond ErrQueueFull.
var (
	ErrClosed   = errors.New("svc: service is closed")
	ErrNotFound = errors.New("svc: no such job")
	ErrNotDone  = errors.New("svc: job has not finished")
)

// Options configures a Service.
type Options struct {
	// Addrs is the shared slave pool: one dlbd address per daemon
	// (required, non-empty).
	Addrs []string
	// MaxQueue bounds the waiting set; submissions beyond it are rejected
	// with ErrQueueFull (default 64).
	MaxQueue int
	// Weights are per-tenant fairness weights; absent tenants weigh 1.
	Weights map[string]float64
	// PlanCacheEntries bounds the compiled-plan cache (default 16).
	PlanCacheEntries int
	// RealQuantum is the target per-block compute time shipped to every
	// run (default 2ms).
	RealQuantum time.Duration
	// Detect tunes failure detection for all runs; the zero value uses the
	// fault package defaults.
	Detect fault.DetectorConfig
	// Ckpt is the checkpoint cadence; its MinInterval also bounds how
	// stale a preemption snapshot can be (default MinInterval 300ms).
	Ckpt fault.CkptPolicy
	// MaxGroups caps the hierarchical group count a job may request
	// (0: unlimited). Submissions beyond it are rejected at admission.
	MaxGroups int
	// Kernel is the default execution tier for jobs that do not name one
	// ("" keeps dlb's own default, the portable VM). A job's explicit
	// Kernel always wins; all tiers are bit-identical, so the choice is
	// purely about speed versus toolchain availability on the host.
	Kernel string
	// CostModel is the default balancer cost model for jobs that do not
	// name one ("" keeps dlb's own default, uniform). A job's explicit
	// CostModel always wins. Unlike Kernel this changes schedules (that
	// is its purpose), but never results.
	CostModel string
	// Timeouts bounds each run's transport operations.
	Timeouts netrun.Timeouts
	// Logf receives service events (nil: silent).
	Logf func(format string, args ...interface{})
}

// Service is the daemon front door. Create with New, serve its Handler
// over HTTP, Close to drain.
type Service struct {
	opt   Options
	start time.Time

	mu    sync.Mutex
	pool  *pool
	queue *queue
	plans *planCache
	jobs  map[string]*Job
	order []*Job // admission order, for listing
	stats *stats
	seq   int
	closed bool

	kick chan struct{}
	quit chan struct{}
	wg   sync.WaitGroup // running masters
	loopDone chan struct{}
}

// New validates the options and starts the scheduler.
func New(opt Options) (*Service, error) {
	if len(opt.Addrs) == 0 {
		return nil, fmt.Errorf("svc: empty slave pool")
	}
	if opt.RealQuantum <= 0 {
		opt.RealQuantum = 2 * time.Millisecond
	}
	if opt.Ckpt.MinInterval <= 0 {
		opt.Ckpt.MinInterval = 300 * time.Millisecond
	}
	s := &Service{
		opt:      opt,
		start:    time.Now(),
		pool:     newPool(opt.Addrs),
		queue:    newQueue(opt.MaxQueue),
		plans:    newPlanCache(opt.PlanCacheEntries),
		jobs:     map[string]*Job{},
		stats:    newStats(opt.Weights),
		kick:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	go s.loop()
	return s, nil
}

func (s *Service) logf(format string, args ...interface{}) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// cfgFor builds the run Config for a spec. Every job runs with the fault
// machinery on: checkpoints are both the crash-recovery substrate and the
// preemption mechanism.
func (s *Service) cfgFor(plan *compile.Plan, spec JobSpec) dlb.Config {
	return dlb.Config{
		Plan:        plan,
		Params:      spec.Params,
		DLB:         true,
		Synchronous: spec.Synchronous,
		Cores:       spec.Cores,
		Kernel:      spec.Kernel,
		CostModel:   spec.CostModel,
		Groups:      spec.Groups,
		RealQuantum: s.opt.RealQuantum,
		Fault:       &fault.Plan{},
		Detect:      s.opt.Detect,
		Ckpt:        s.opt.Ckpt,
	}
}

// Warm compiles spec's plan into the cache without enqueuing a job, so a
// later Submit of the same spec admits at cache-hit speed. Compilation
// happens synchronously on the caller.
func (s *Service) Warm(spec JobSpec) error {
	if spec.Kernel == "" {
		spec.Kernel = s.opt.Kernel
	}
	if spec.CostModel == "" {
		spec.CostModel = s.opt.CostModel
	}
	if err := spec.normalize(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	_, err := s.plans.lookup(spec, func(p *compile.Plan) dlb.Config { return s.cfgFor(p, spec) })
	return err
}

// Submit admits a job: compile (or hit the plan cache), enqueue, kick the
// scheduler. Returns the job ID.
func (s *Service) Submit(spec JobSpec) (string, error) {
	if spec.Kernel == "" {
		spec.Kernel = s.opt.Kernel
	}
	if spec.CostModel == "" {
		spec.CostModel = s.opt.CostModel
	}
	if err := spec.normalize(); err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrClosed
	}
	if spec.Slaves > s.pool.size() {
		return "", fmt.Errorf("svc: job wants %d slaves, pool has %d", spec.Slaves, s.pool.size())
	}
	if spec.Groups > spec.Slaves {
		return "", fmt.Errorf("svc: job wants %d groups over %d slaves", spec.Groups, spec.Slaves)
	}
	if s.opt.MaxGroups > 0 && spec.Groups > s.opt.MaxGroups {
		return "", fmt.Errorf("svc: job wants %d groups, service admits at most %d", spec.Groups, s.opt.MaxGroups)
	}
	t := s.stats.tenant(spec.Tenant)
	if s.queue.len() >= s.queue.max {
		t.Rejected++
		return "", ErrQueueFull
	}
	entry, err := s.plans.lookup(spec, func(p *compile.Plan) dlb.Config { return s.cfgFor(p, spec) })
	if err != nil {
		return "", err
	}
	s.seq++
	j := &Job{
		ID:          fmt.Sprintf("j-%06d", s.seq),
		Seq:         s.seq,
		Spec:        spec,
		State:       StateQueued,
		SubmittedAt: time.Now(),
		entry:       entry,
	}
	if err := s.queue.add(j, false); err != nil {
		t.Rejected++
		return "", err
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	t.Submitted++
	s.kickSched()
	return j.ID, nil
}

// Cancel stops a job: waiting jobs leave the queue immediately; a running
// job is preempted and discarded when its lease drains. Terminal jobs are
// a no-op.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return ErrNotFound
	}
	now := time.Now()
	switch j.State {
	case StateQueued, StatePreempted:
		s.queue.remove(j)
		wait := now.Sub(j.waitFrom())
		j.Waited += wait
		s.stats.tenant(j.Spec.Tenant).WaitedMS += wait.Milliseconds()
		j.State = StateCanceled
		j.ckpt = nil
		j.DoneAt = now
		s.stats.tenant(j.Spec.Tenant).Canceled++
		s.kickSched()
	case StateRunning:
		j.cancel = true
		j.preempt.Request()
	}
	return nil
}

// Status returns a job's API view.
func (s *Service) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobStatus{}, ErrNotFound
	}
	return j.statusLocked(time.Now()), nil
}

// List returns every job's API view in admission order.
func (s *Service) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	out := make([]JobStatus, 0, len(s.order))
	for _, j := range s.order {
		out = append(out, j.statusLocked(now))
	}
	return out
}

// JobResult is the terminal outcome view.
type JobResult struct {
	JobStatus
	ElapsedMS int64            `json:"elapsed_ms"`
	Counters  map[string]int64 `json:"counters,omitempty"`
	Arrays    []ArraySum       `json:"arrays,omitempty"`
}

// Result returns a finished job's outcome; ErrNotDone while the job is
// still queued, running, or preempted.
func (s *Service) Result(id string) (JobResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobResult{}, ErrNotFound
	}
	if !j.finished() {
		return JobResult{}, ErrNotDone
	}
	r := JobResult{
		JobStatus: j.statusLocked(time.Now()),
		ElapsedMS: j.Elapsed.Milliseconds(),
		Arrays:    j.Sums,
	}
	if j.Counters != nil {
		r.Counters = map[string]int64(j.Counters)
	}
	return r, nil
}

// Statsz snapshots the service telemetry.
func (s *Service) Statsz() Statsz {
	s.mu.Lock()
	defer s.mu.Unlock()
	z := Statsz{
		UptimeMS:   time.Since(s.start).Milliseconds(),
		PoolSize:   s.pool.size(),
		PoolFree:   s.pool.freeLen(),
		QueueDepth: s.queue.len(),
		QueueMax:   s.queue.max,
		Jobs:       map[string]int{},
		Tenants:    map[string]*tenantStats{},
	}
	for _, j := range s.jobs {
		z.Jobs[j.State]++
		if j.State == StateRunning {
			z.Running++
		}
	}
	for name, t := range s.stats.tenants {
		cp := *t
		cp.Counters = metricsCopy(t.Counters)
		z.Tenants[name] = &cp
	}
	return z
}

// Close stops admission, preempts every running job (their checkpoints
// are discarded), and waits for all leases to drain.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.loopDone
		s.wg.Wait()
		return
	}
	s.closed = true
	for _, j := range s.jobs {
		if j.State == StateRunning {
			j.cancel = true
			j.preempt.Request()
		}
	}
	s.mu.Unlock()
	close(s.quit)
	<-s.loopDone
	s.wg.Wait()
}

// kickSched nudges the scheduler; callers hold s.mu (the channel is
// buffered, so the nudge never blocks).
func (s *Service) kickSched() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// loop is the scheduler goroutine: every kick re-examines the waiting set.
func (s *Service) loop() {
	defer close(s.loopDone)
	for {
		select {
		case <-s.quit:
			return
		case <-s.kick:
		}
		s.schedule()
	}
}

// schedule places waiting jobs onto the pool in fairness order. The scan
// is head-of-line blocking: it stops at the first job that cannot be
// placed (possibly after requesting preemptions on its behalf), so freed
// capacity is never drained away from the job whose turn it is.
func (s *Service) schedule() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.closed {
		j := s.queue.pick(s.stats.served)
		if j == nil {
			return
		}
		need := j.Spec.Slaves
		if s.pool.freeLen() >= need {
			s.queue.remove(j)
			s.startLocked(j)
			continue
		}
		s.preemptForLocked(j, need)
		return
	}
}

// preemptForLocked requests enough lower-class preemptions for j to fit,
// if reclaiming every lower-class lease would fit it at all. Victims stop
// at their next consistent checkpoint; until their leases drain, the
// head-of-line scan keeps the freed capacity reserved for j.
func (s *Service) preemptForLocked(j *Job, need int) {
	avail := s.pool.freeLen()
	var victims []*Job
	for _, r := range s.order {
		if r.State != StateRunning || classRank(r.Spec.Priority) <= classRank(j.Spec.Priority) {
			continue
		}
		if r.preemptRequested {
			avail += len(r.lease) // already draining: capacity in flight
			continue
		}
		victims = append(victims, r)
	}
	reachable := avail
	for _, v := range victims {
		reachable += len(v.lease)
	}
	if reachable < need {
		return // even preempting everything weaker wouldn't fit: don't churn
	}
	// Weakest class first; within a class the most recently started loses
	// (it has the least sunk progress).
	sort.Slice(victims, func(a, b int) bool {
		va, vb := victims[a], victims[b]
		if ra, rb := classRank(va.Spec.Priority), classRank(vb.Spec.Priority); ra != rb {
			return ra > rb
		}
		return va.StartedAt.After(vb.StartedAt)
	})
	for _, v := range victims {
		if avail >= need {
			break
		}
		v.preemptRequested = true
		v.preempt.Request()
		avail += len(v.lease)
		s.logf("svc: preempting %s (%s/%s) to fit %s (%s/%s)",
			v.ID, v.Spec.Tenant, v.Spec.Priority, j.ID, j.Spec.Tenant, j.Spec.Priority)
	}
}

// startLocked leases slots to j and launches its master.
func (s *Service) startLocked(j *Job) {
	now := time.Now()
	wait := now.Sub(j.waitFrom())
	j.Waited += wait
	s.stats.tenant(j.Spec.Tenant).WaitedMS += wait.Milliseconds()
	resume := j.ckpt
	if j.State == StatePreempted {
		j.Resumes++
		s.stats.tenant(j.Spec.Tenant).Resumes++
	}
	j.ckpt = nil
	j.State = StateRunning
	j.StartedAt = now
	j.lease = s.pool.lease(j.Spec.Slaves)
	j.preempt = &dlb.PreemptControl{}
	j.preemptRequested = false
	if j.cancel {
		// Canceled between preemption and resume: don't relaunch.
		j.preempt.Request()
	}

	cfg := s.cfgFor(j.entry.plan, j.Spec)
	cfg.Preempt = j.preempt
	cfg.Resume = resume
	addrs := s.pool.leaseAddrs(j.lease)
	s.logf("svc: starting %s (%s/%s) on %d slaves%s",
		j.ID, j.Spec.Tenant, j.Spec.Priority, len(addrs), map[bool]string{true: " (resume)", false: ""}[resume != nil])
	s.wg.Add(1)
	go s.runJob(j, cfg, addrs, now)
}

// runJob drives one lease to completion and books the outcome.
func (s *Service) runJob(j *Job, cfg dlb.Config, addrs []string, started time.Time) {
	defer s.wg.Done()
	res, err := netrun.RunMaster(cfg, addrs, netrun.MasterOptions{
		Prepared: j.entry.pre,
		Timeouts: s.opt.Timeouts,
	})
	now := time.Now()

	s.mu.Lock()
	held := now.Sub(started)
	j.Ran += held
	s.stats.charge(j.Spec.Tenant, len(j.lease), held)
	s.pool.release(j.lease)
	j.lease = nil
	j.preempt = nil
	t := s.stats.tenant(j.Spec.Tenant)
	if res != nil {
		for k, v := range res.Counters {
			t.Counters.Add(k, v)
		}
	}
	switch {
	case j.cancel:
		j.State = StateCanceled
		j.DoneAt = now
		t.Canceled++
		s.logf("svc: %s canceled", j.ID)
	case err == nil:
		j.State = StateDone
		j.DoneAt = now
		j.Elapsed = res.Elapsed
		j.Counters = res.Counters
		j.Sums = checksums(res)
		t.Done++
		s.logf("svc: %s done in %v (waited %v)", j.ID, j.Ran, j.Waited)
	case errors.Is(err, dlb.ErrPreempted):
		j.State = StatePreempted
		j.ckpt = res.Checkpoint
		j.DoneAt = now // marks when this wait segment began (see waitFrom)
		j.Preemptions++
		t.Preemptions++
		s.queue.add(j, true)
		s.logf("svc: %s preempted at checkpoint %d", j.ID, res.Checkpoint.Seq)
	default:
		j.State = StateFailed
		j.Err = err.Error()
		j.DoneAt = now
		t.Failed++
		s.logf("svc: %s failed: %v", j.ID, err)
	}
	s.kickSched()
	s.mu.Unlock()
}

func metricsCopy(c map[string]int64) map[string]int64 {
	cp := make(map[string]int64, len(c))
	for k, v := range c {
		cp[k] = v
	}
	return cp
}
