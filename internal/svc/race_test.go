//go:build race

package svc

// raceDetector reports whether the race detector is compiled in. Its
// 5-20x slowdown makes heartbeats miss the short failure-detection
// leases the tests normally use, so wall-clock timings scale up.
const raceDetector = true
