package svc

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/lang"
	"repro/internal/loopir"
	"repro/internal/netrun"
)

// testSpec builds a JobSpec for a library program, the same shape a client
// would POST.
func testSpec(t *testing.T, name string, n, iter, slaves int) JobSpec {
	t.Helper()
	prog := loopir.Library()[name]
	if prog == nil {
		t.Fatalf("unknown program %q", name)
	}
	params := map[string]int{}
	for _, prm := range prog.Params {
		if strings.Contains(prm, "iter") {
			params[prm] = iter
		} else {
			params[prm] = n
		}
	}
	spec := JobSpec{Program: lang.Format(prog), Params: params, Slaves: slaves}
	switch name {
	case "mm":
		spec.DistDims = map[string]int{"c": 1, "b": 1}
		spec.DistLoops = []string{"j"}
	case "sor":
		spec.DistDims = map[string]int{"b": 0}
		spec.DistLoops = []string{"j"}
	default:
		t.Fatalf("no dist directive for %q", name)
	}
	return spec
}

// refSums runs the program sequentially and fingerprints its arrays.
func refSums(t *testing.T, spec JobSpec) map[string]string {
	t.Helper()
	prog, err := lang.Parse(spec.Program)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := loopir.NewInstance(prog, spec.Params)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(); err != nil {
		t.Fatal(err)
	}
	sums := map[string]string{}
	for name, arr := range inst.Arrays {
		sums[name] = arraySum(arr).SHA256
	}
	return sums
}

// startPool spins up n in-process slave daemons.
func startPool(t *testing.T, n int, opt netrun.ServerOptions) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := netrun.NewServer(opt)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = srv.Addr()
		go srv.Serve()
		t.Cleanup(func() { srv.Close() })
	}
	return addrs
}

// newTestService builds a Service over an in-process pool with fast
// failure detection and checkpointing (preemption latency is bounded by
// the checkpoint cadence).
func newTestService(t *testing.T, slaves int, srvOpt netrun.ServerOptions, opt Options) *Service {
	t.Helper()
	opt.Addrs = startPool(t, slaves, srvOpt)
	if opt.Detect.MinLease == 0 {
		// No test here injects faults, so the detector exists only to be
		// wrong: a lease short enough to matter under the race detector's
		// slowdown would evict healthy slaves mid-job.
		lease, beat := 400*time.Millisecond, 100*time.Millisecond
		if raceDetector {
			lease, beat = 4*time.Second, 250*time.Millisecond
		}
		opt.Detect = fault.DetectorConfig{MinLease: lease, HeartbeatEvery: beat}
	}
	if opt.Ckpt.MinInterval == 0 {
		opt.Ckpt = fault.CkptPolicy{MinInterval: 150 * time.Millisecond}
	}
	if opt.Timeouts.Dial == 0 {
		opt.Timeouts = netrun.Timeouts{Dial: 10 * time.Second}
	}
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// raceScale stretches wall-clock budgets when the race detector's 5-20x
// slowdown applies.
func raceScale(d time.Duration) time.Duration {
	if raceDetector {
		return d * 6
	}
	return d
}

// waitState polls until the job reaches one of the wanted states.
func waitState(t *testing.T, s *Service, id string, timeout time.Duration, want ...string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(raceScale(timeout))
	for {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		if st.State == StateFailed {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, wanted one of %v", id, st.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func checkResultSums(t *testing.T, s *Service, id string, want map[string]string) {
	t.Helper()
	res, err := s.Result(id)
	if err != nil {
		t.Fatalf("result %s: %v", id, err)
	}
	if res.State != StateDone {
		t.Fatalf("job %s state %s (err %s)", id, res.State, res.Error)
	}
	if len(res.Arrays) == 0 {
		t.Fatalf("job %s has no array checksums", id)
	}
	for _, a := range res.Arrays {
		if wantSum, ok := want[a.Name]; ok && a.SHA256 != wantSum {
			t.Errorf("job %s array %s checksum %s, want %s (not bit-identical)", id, a.Name, a.SHA256, wantSum)
		}
	}
}

// TestSingleJob is the basic path: submit, run, fetch a checksum-verified
// result.
func TestSingleJob(t *testing.T) {
	s := newTestService(t, 2, netrun.ServerOptions{}, Options{})
	spec := testSpec(t, "mm", 64, 0, 2)
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, id, 30*time.Second, StateDone)
	checkResultSums(t, s, id, refSums(t, spec))

	// Result of an unknown job is 404-shaped; of an unfinished job, conflict.
	if _, err := s.Result("j-999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown job result err = %v, want ErrNotFound", err)
	}
}

// TestAdmissionControl fills the queue and checks the overflow rejection
// and the oversized-job rejection.
func TestAdmissionControl(t *testing.T) {
	s := newTestService(t, 1, netrun.ServerOptions{Drag: 30}, Options{MaxQueue: 2})
	spec := testSpec(t, "mm", 128, 0, 1)

	if _, err := s.Submit(testSpec(t, "mm", 64, 0, 4)); err == nil {
		t.Error("job wanting 4 slaves admitted into a 1-daemon pool")
	}

	// One job occupies the daemon; once it holds the lease, two more fill
	// the queue and the fourth must be rejected.
	ids := make([]string, 3)
	var err2 error
	ids[0], err2 = s.Submit(spec)
	if err2 != nil {
		t.Fatal(err2)
	}
	waitState(t, s, ids[0], 15*time.Second, StateRunning)
	for i := 1; i < 3; i++ {
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = id
	}
	if _, err := s.Submit(spec); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
	}
	z := s.Statsz()
	if z.Tenants["default"].Rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", z.Tenants["default"].Rejected)
	}
	for _, id := range ids {
		waitState(t, s, id, 60*time.Second, StateDone)
	}
}

// TestConcurrentJobsShareNothing runs two jobs at once on a 4-daemon pool
// and checks they held disjoint leases (the pool was fully busy while both
// ran) and both finished bit-identical to the sequential reference.
func TestConcurrentJobsShareNothing(t *testing.T) {
	s := newTestService(t, 4, netrun.ServerOptions{Drag: 10}, Options{})
	spec := testSpec(t, "mm", 128, 0, 2)
	want := refSums(t, spec)
	idA, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Both must be running concurrently, and together they drain the pool.
	deadline := time.Now().Add(raceScale(15 * time.Second))
	for {
		z := s.Statsz()
		if z.Running == 2 {
			if z.PoolFree != 0 {
				t.Errorf("two 2-slave jobs running but pool_free = %d, want 0", z.PoolFree)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("jobs never ran concurrently")
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitState(t, s, idA, 60*time.Second, StateDone)
	waitState(t, s, idB, 60*time.Second, StateDone)
	checkResultSums(t, s, idA, want)
	checkResultSums(t, s, idB, want)
}

// TestPriorityPreemption submits a low-priority job that fills the pool,
// then a high-priority one: the scheduler must checkpoint-and-release the
// low job, run the high one, then resume the low job — whose final result
// must still be bit-identical to the sequential reference.
func TestPriorityPreemption(t *testing.T) {
	s := newTestService(t, 4, netrun.ServerOptions{Drag: 25, Timeouts: netrun.Timeouts{Dial: 10 * time.Second}}, Options{})
	low := testSpec(t, "mm", 256, 0, 4)
	low.Tenant = "batch"
	low.Priority = PriorityLow
	high := testSpec(t, "mm", 64, 0, 4)
	high.Tenant = "urgent"
	high.Priority = PriorityHigh

	lowID, err := s.Submit(low)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, lowID, 15*time.Second, StateRunning)
	time.Sleep(300 * time.Millisecond) // let it make some progress

	highID, err := s.Submit(high)
	if err != nil {
		t.Fatal(err)
	}
	// The low job must yield at a checkpoint...
	waitState(t, s, lowID, 30*time.Second, StatePreempted, StateQueued)
	// ...the high job runs to completion on the freed lease...
	waitState(t, s, highID, 60*time.Second, StateDone)
	checkResultSums(t, s, highID, refSums(t, high))
	// ...and the low job resumes and finishes bit-identically.
	st := waitState(t, s, lowID, 120*time.Second, StateDone)
	if st.Preemptions < 1 || st.Resumes < 1 {
		t.Errorf("low job preemptions=%d resumes=%d, want >= 1 each", st.Preemptions, st.Resumes)
	}
	checkResultSums(t, s, lowID, refSums(t, low))

	z := s.Statsz()
	if z.Tenants["batch"].Preemptions < 1 {
		t.Errorf("tenant batch preemptions = %d, want >= 1", z.Tenants["batch"].Preemptions)
	}
}

// TestCancel covers both cancellation paths: a queued job leaves the
// waiting set immediately; a running job is preempted and discarded.
func TestCancel(t *testing.T) {
	s := newTestService(t, 1, netrun.ServerOptions{Drag: 25}, Options{})
	runningID, err := s.Submit(testSpec(t, "mm", 256, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	queuedID, err := s.Submit(testSpec(t, "mm", 256, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, runningID, 15*time.Second, StateRunning)

	if err := s.Cancel(queuedID); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Status(queuedID); st.State != StateCanceled {
		t.Errorf("queued job state after cancel = %s, want canceled", st.State)
	}
	if err := s.Cancel(runningID); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, runningID, 30*time.Second, StateCanceled)
	if err := s.Cancel("j-999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown err = %v, want ErrNotFound", err)
	}
}

// TestFairnessOrdering checks the weighted pick: with tenant A far ahead
// on served slave-seconds, a same-class tie goes to tenant B even though
// A's job was admitted first.
func TestFairnessOrdering(t *testing.T) {
	q := newQueue(8)
	served := map[string]float64{"a": 100, "b": 1}
	mk := func(seq int, tenant, prio string) *Job {
		return &Job{Seq: seq, Spec: JobSpec{Tenant: tenant, Priority: prio}, State: StateQueued}
	}
	ja, jb := mk(1, "a", PriorityNormal), mk(2, "b", PriorityNormal)
	q.add(ja, false)
	q.add(jb, false)
	if got := q.pick(func(t string) float64 { return served[t] }); got != jb {
		t.Errorf("pick chose tenant %s, want b (least served)", got.Spec.Tenant)
	}
	// Priority dominates fairness.
	jc := mk(3, "a", PriorityHigh)
	q.add(jc, false)
	if got := q.pick(func(t string) float64 { return served[t] }); got != jc {
		t.Errorf("pick chose %s/%s, want the high-priority job", got.Spec.Tenant, got.Spec.Priority)
	}
	// Within a tenant, admission order wins.
	q.remove(jc)
	jd := mk(4, "b", PriorityNormal)
	q.add(jd, false)
	if got := q.pick(func(t string) float64 { return served[t] }); got != jb {
		t.Errorf("pick chose seq %d, want the tenant's earliest job", got.Seq)
	}
}

// TestGroupsAdmissionAndRun covers the hierarchical-balancing knob at the
// service layer: a group count exceeding the lease is rejected outright,
// the -groups admission cap rejects before queueing, and a job that does
// run hierarchically finishes bit-identical to the sequential reference.
func TestGroupsAdmissionAndRun(t *testing.T) {
	s := newTestService(t, 4, netrun.ServerOptions{}, Options{MaxGroups: 2})

	spec := testSpec(t, "mm", 64, 0, 4)
	spec.Groups = 8
	if _, err := s.Submit(spec); err == nil {
		t.Error("job wanting 8 groups over 4 slaves was admitted")
	}
	spec.Groups = 3
	if _, err := s.Submit(spec); err == nil {
		t.Error("job wanting 3 groups admitted past a MaxGroups=2 cap")
	}

	spec.Groups = 2
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, id, 30*time.Second, StateDone)
	want := refSums(t, spec)
	checkResultSums(t, s, id, want)
}
