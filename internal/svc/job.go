package svc

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/dlb"
	"repro/internal/fault"
	"repro/internal/loopir"
	"repro/internal/metrics"
)

// Priority classes, strongest first. A higher class may preempt running
// jobs of a strictly lower class when the pool cannot otherwise fit it.
const (
	PriorityHigh   = "high"
	PriorityNormal = "normal"
	PriorityLow    = "low"
)

// classRank orders priorities for scheduling: smaller is stronger.
func classRank(p string) int {
	switch p {
	case PriorityHigh:
		return 0
	case PriorityNormal, "":
		return 1
	case PriorityLow:
		return 2
	}
	return -1
}

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StatePreempted = "preempted" // checkpointed and waiting to resume
	StateDone      = "done"
	StateFailed    = "failed"
	StateCanceled  = "canceled"
)

// JobSpec is what a client submits: a program in the source language plus
// the distribution directive and run parameters — the same payload a
// master ships to slave daemons (wire.RunSpec), so the service compiles
// exactly what a standalone master would. The service adds scheduling
// metadata: tenant, priority class, and the slave count to lease.
type JobSpec struct {
	// Tenant names the submitting principal; fairness weights and the
	// per-tenant telemetry key off it (default "default").
	Tenant string `json:"tenant,omitempty"`
	// Priority is "high", "normal" (default) or "low".
	Priority string `json:"priority,omitempty"`
	// Program is the source text (the repo's loop language).
	Program string `json:"program"`
	// Params instantiates the program's symbolic sizes.
	Params map[string]int `json:"params,omitempty"`
	// DistDims maps array name to distributed dimension; DistLoops names
	// the loops to strip-mine (the @distribute directive).
	DistDims  map[string]int `json:"dist_dims,omitempty"`
	DistLoops []string       `json:"dist_loops,omitempty"`
	// Slaves is how many pool daemons to lease (default 1).
	Slaves int `json:"slaves,omitempty"`
	// Synchronous disables pipelined master interactions.
	Synchronous bool `json:"synchronous,omitempty"`
	// Cores caps each slave's kernel worker goroutines (0: runtime default).
	Cores int `json:"cores,omitempty"`
	// Kernel selects the execution tier for distributed-loop bodies
	// ("interp", "kernel" or "aot"; empty: "kernel"). All tiers are
	// bit-identical; "aot" pays a one-time toolchain build per program,
	// cached on disk across jobs.
	Kernel string `json:"kernel,omitempty"`
	// CostModel selects the balancer's view of work units ("uniform" or
	// "learned"; empty: "uniform"). Learned weighting helps irregular
	// programs (sparse rows, power-law bins) balance on measured cost.
	CostModel string `json:"cost_model,omitempty"`
	// Groups partitions the slaves for hierarchical two-level balancing
	// (0 or 1: flat). The service may cap it (-groups on dlbsvc).
	Groups int `json:"groups,omitempty"`
}

func (s *JobSpec) normalize() error {
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if s.Priority == "" {
		s.Priority = PriorityNormal
	}
	if classRank(s.Priority) < 0 {
		return fmt.Errorf("svc: unknown priority %q", s.Priority)
	}
	if s.Program == "" {
		return fmt.Errorf("svc: empty program")
	}
	if s.Slaves <= 0 {
		s.Slaves = 1
	}
	if s.Groups < 0 {
		return fmt.Errorf("svc: negative group count %d", s.Groups)
	}
	if _, err := (dlb.Config{Kernel: s.Kernel}).KernelTier(); err != nil {
		return fmt.Errorf("svc: %w", err)
	}
	if _, err := (dlb.Config{CostModel: s.CostModel}).CostModelMode(); err != nil {
		return fmt.Errorf("svc: %w", err)
	}
	return nil
}

// ArraySum is one result array's integrity record: clients verify outputs
// against a reference run by checksum without downloading the data.
type ArraySum struct {
	Name   string `json:"name"`
	Dims   []int  `json:"dims"`
	SHA256 string `json:"sha256"`
}

// Job is one submitted run and its full lifecycle. All fields beyond the
// immutable ones are guarded by the owning Service's mutex.
type Job struct {
	ID   string
	Seq  int // admission order, FIFO tiebreak within a tenant
	Spec JobSpec

	State       string
	SubmittedAt time.Time
	StartedAt   time.Time // latest lease start
	DoneAt      time.Time
	Waited      time.Duration // total time spent queued or preempted
	Ran         time.Duration // total time holding a lease

	entry            *planEntry // compiled plan + pinned instantiation
	lease            []int      // pool slots currently held (nil unless running)
	preempt          *dlb.PreemptControl
	preemptRequested bool              // a drain is in flight for this lease
	ckpt             *fault.Checkpoint // set while preempted
	cancel           bool              // cancel requested; resolves when the lease drains

	Preemptions int
	Resumes     int

	Err      string
	Elapsed  time.Duration // master-measured elapsed of the finishing run
	Counters metrics.Counters
	Sums     []ArraySum
}

// runnable reports whether the job is waiting for a lease.
func (j *Job) runnable() bool { return j.State == StateQueued || j.State == StatePreempted }

// finished reports whether the job reached a terminal state.
func (j *Job) finished() bool {
	return j.State == StateDone || j.State == StateFailed || j.State == StateCanceled
}

// checksums fingerprints the gathered result arrays (float64 little-endian
// bytes, row-major) in sorted name order.
func checksums(res *dlb.Result) []ArraySum {
	var sums []ArraySum
	names := make([]string, 0, len(res.Final))
	for name := range res.Final {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sums = append(sums, arraySum(res.Final[name]))
	}
	return sums
}

// arraySum fingerprints one array.
func arraySum(arr *loopir.Array) ArraySum {
	h := sha256.New()
	var buf [8]byte
	for _, v := range arr.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return ArraySum{
		Name:   arr.Name,
		Dims:   append([]int(nil), arr.Dims...),
		SHA256: hex.EncodeToString(h.Sum(nil)),
	}
}

// JobStatus is the API view of a job.
type JobStatus struct {
	ID          string        `json:"id"`
	Tenant      string        `json:"tenant"`
	Priority    string        `json:"priority"`
	State       string        `json:"state"`
	Slaves      int           `json:"slaves"`
	SubmittedAt time.Time     `json:"submitted_at"`
	StartedAt   *time.Time    `json:"started_at,omitempty"`
	DoneAt      *time.Time    `json:"done_at,omitempty"`
	WaitedMS    int64         `json:"waited_ms"`
	RanMS       int64         `json:"ran_ms"`
	Preemptions int           `json:"preemptions"`
	Resumes     int           `json:"resumes"`
	Error       string        `json:"error,omitempty"`
	Elapsed     time.Duration `json:"-"`
}

// statusLocked builds the API view; the Service's mutex must be held.
func (j *Job) statusLocked(now time.Time) JobStatus {
	st := JobStatus{
		ID:          j.ID,
		Tenant:      j.Spec.Tenant,
		Priority:    j.Spec.Priority,
		State:       j.State,
		Slaves:      j.Spec.Slaves,
		SubmittedAt: j.SubmittedAt,
		WaitedMS:    j.waitedAt(now).Milliseconds(),
		RanMS:       j.ranAt(now).Milliseconds(),
		Preemptions: j.Preemptions,
		Resumes:     j.Resumes,
		Error:       j.Err,
	}
	if !j.StartedAt.IsZero() {
		t := j.StartedAt
		st.StartedAt = &t
	}
	if !j.DoneAt.IsZero() {
		t := j.DoneAt
		st.DoneAt = &t
	}
	return st
}

// waitedAt folds the in-progress wait segment into the accumulated total.
func (j *Job) waitedAt(now time.Time) time.Duration {
	w := j.Waited
	if j.runnable() {
		w += now.Sub(j.waitFrom())
	}
	return w
}

// waitFrom is when the current wait segment began.
func (j *Job) waitFrom() time.Time {
	if j.State == StatePreempted && !j.DoneAt.IsZero() {
		return j.DoneAt // DoneAt doubles as "lease released at" while non-terminal
	}
	return j.SubmittedAt
}

// ranAt folds the in-progress lease segment into the accumulated total.
func (j *Job) ranAt(now time.Time) time.Duration {
	r := j.Ran
	if j.State == StateRunning {
		r += now.Sub(j.StartedAt)
	}
	return r
}
