package compile

import (
	"strings"
	"testing"

	"repro/internal/depend"
	"repro/internal/loopir"
)

func mustCompile(t *testing.T, prog *loopir.Program, opts Options) *Plan {
	t.Helper()
	p, err := Compile(prog, opts)
	if err != nil {
		t.Fatalf("Compile(%s): %v", prog.Name, err)
	}
	return p
}

func specMM() depend.DistSpec {
	return depend.DistSpec{Dims: map[string]int{"c": 1, "b": 1}, Loops: []string{"j"}}
}
func specSOR() depend.DistSpec {
	return depend.DistSpec{Dims: map[string]int{"b": 0}, Loops: []string{"j"}}
}
func specLU() depend.DistSpec {
	return depend.DistSpec{Dims: map[string]int{"a": 1}, Loops: []string{"j"}}
}
func specJacobi() depend.DistSpec {
	return depend.DistSpec{Dims: map[string]int{"a": 0, "anew": 0}, Loops: []string{"i", "i2"}}
}

func TestCompileMMStructure(t *testing.T) {
	p := mustCompile(t, loopir.MatMul(), Options{Dist: specMM()})
	if p.Restricted {
		t.Error("MM should use unrestricted movement (no carried deps, no ghosts)")
	}
	if p.StripMined {
		t.Error("MM needs no strip mining")
	}
	if len(p.GhostDeltas) != 0 {
		t.Errorf("MM ghost deltas = %v, want none", p.GhostDeltas)
	}
	if len(p.Replicated) != 1 || p.Replicated[0] != "a" {
		t.Errorf("replicated = %v, want [a]", p.Replicated)
	}
	if len(p.Steps) != 1 {
		t.Fatalf("top-level steps = %d, want 1", len(p.Steps))
	}
	outer, ok := p.Steps[0].(*SeqLoop)
	if !ok || outer.Var != "i" {
		t.Fatalf("outer step = %T, want SeqLoop(i)", p.Steps[0])
	}
	if len(outer.Body) != 2 {
		t.Fatalf("i body = %d steps, want OwnedLoop + Hook", len(outer.Body))
	}
	if _, ok := outer.Body[0].(*OwnedLoop); !ok {
		t.Fatalf("i body[0] = %T, want OwnedLoop", outer.Body[0])
	}
	if _, ok := outer.Body[1].(*Hook); !ok {
		t.Fatalf("i body[1] = %T, want Hook", outer.Body[1])
	}
}

func TestCompileSORStructure(t *testing.T) {
	p := mustCompile(t, loopir.SOR(), Options{Dist: specSOR()})
	if !p.Restricted {
		t.Error("SOR must use restricted (block) movement")
	}
	if !p.StripMined {
		t.Error("SOR's pipelined row loop must be strip mined")
	}
	wantDeltas := []int{-1, 1}
	if len(p.GhostDeltas) != 2 || p.GhostDeltas[0] != wantDeltas[0] || p.GhostDeltas[1] != wantDeltas[1] {
		t.Errorf("ghost deltas = %v, want %v", p.GhostDeltas, wantDeltas)
	}
	outer, ok := p.Steps[0].(*SeqLoop)
	if !ok || outer.Var != "iter" {
		t.Fatalf("outer = %T, want SeqLoop(iter)", p.Steps[0])
	}
	// iter body: Exchange(b,+1), StripLoop(i), Hook.
	ex, ok := outer.Body[0].(*Exchange)
	if !ok || ex.Array != "b" || ex.Delta != 1 {
		t.Fatalf("iter body[0] = %#v, want Exchange(b,+1)", outer.Body[0])
	}
	strip, ok := outer.Body[1].(*StripLoop)
	if !ok || strip.Var != "i" {
		t.Fatalf("iter body[1] = %T, want StripLoop(i)", outer.Body[1])
	}
	if len(strip.Pre) != 1 {
		t.Fatalf("strip pre = %d steps, want 1 PipeRecv", len(strip.Pre))
	}
	pr, ok := strip.Pre[0].(*PipeRecv)
	if !ok || pr.Array != "b" || pr.Delta != -1 {
		t.Fatalf("strip pre[0] = %#v, want PipeRecv(b,-1)", strip.Pre[0])
	}
	if len(strip.Post) != 2 {
		t.Fatalf("strip post = %d steps, want PipeSend + Hook", len(strip.Post))
	}
	ps, ok := strip.Post[0].(*PipeSend)
	if !ok || ps.Array != "b" || ps.Delta != 1 {
		t.Fatalf("strip post[0] = %#v, want PipeSend(b,+1)", strip.Post[0])
	}
	if h, ok := strip.Post[1].(*Hook); !ok || h.Level != 1 {
		t.Fatalf("strip post[1] = %#v, want Hook level 1", strip.Post[1])
	}
	if _, ok := strip.Body[0].(*OwnedLoop); !ok {
		t.Fatalf("strip body[0] = %T, want OwnedLoop", strip.Body[0])
	}
	// There is also an outer hook at the iter level.
	if h, ok := outer.Body[2].(*Hook); !ok || h.Level != 0 {
		t.Fatalf("iter body[2] = %#v, want Hook level 0", outer.Body[2])
	}
}

func TestCompileLUStructure(t *testing.T) {
	p := mustCompile(t, loopir.LU(), Options{Dist: specLU()})
	if p.Restricted {
		t.Error("LU movement can be unrestricted (no carried deps on j, no ghosts)")
	}
	outer, ok := p.Steps[0].(*SeqLoop)
	if !ok || outer.Var != "k" {
		t.Fatalf("outer = %T, want SeqLoop(k)", p.Steps[0])
	}
	// k body: OwnerBlock(k) [normalize], Bcast(a,k), OwnedLoop(j), Hook.
	ob, ok := outer.Body[0].(*OwnerBlock)
	if !ok || ob.Index.String() != "k" {
		t.Fatalf("k body[0] = %#v, want OwnerBlock(k)", outer.Body[0])
	}
	bc, ok := outer.Body[1].(*Bcast)
	if !ok || bc.Array != "a" || bc.Index.String() != "k" {
		t.Fatalf("k body[1] = %#v, want Bcast(a,k)", outer.Body[1])
	}
	ol, ok := outer.Body[2].(*OwnedLoop)
	if !ok || ol.Var != "j" {
		t.Fatalf("k body[2] = %T, want OwnedLoop(j)", outer.Body[2])
	}
	if _, ok := outer.Body[3].(*Hook); !ok {
		t.Fatalf("k body[3] = %T, want Hook", outer.Body[3])
	}
}

func TestCompileJacobiStructure(t *testing.T) {
	p := mustCompile(t, loopir.Jacobi(), Options{Dist: specJacobi()})
	if !p.Restricted {
		t.Error("Jacobi needs block distribution for its ghost exchanges")
	}
	if p.StripMined {
		t.Error("Jacobi has no pipeline to strip-mine")
	}
	outer := p.Steps[0].(*SeqLoop)
	nExch, nOwned := 0, 0
	for _, s := range outer.Body {
		switch s.(type) {
		case *Exchange:
			nExch++
		case *OwnedLoop:
			nOwned++
		}
	}
	if nExch != 2 {
		t.Errorf("exchanges = %d, want 2 (both boundaries)", nExch)
	}
	if nOwned != 2 {
		t.Errorf("owned loops = %d, want 2 (sweep + copy-back)", nOwned)
	}
}

func TestAutoDistributeMM(t *testing.T) {
	p := mustCompile(t, loopir.MatMul(), Options{})
	if p.DistArrays["c"] != 1 {
		t.Errorf("auto distribution of c = dim %d, want 1", p.DistArrays["c"])
	}
	if dim, ok := p.DistArrays["b"]; !ok || dim != 1 {
		t.Errorf("b should be aligned on dim 1, got %v (present %v)", dim, ok)
	}
	if _, ok := p.DistArrays["a"]; ok {
		t.Error("a should be replicated, not distributed")
	}
	if len(p.Dist.Loops) != 1 || p.Dist.Loops[0] != "j" {
		t.Errorf("auto loops = %v, want [j]", p.Dist.Loops)
	}
}

func TestCompileRejectsNonOwnerComputes(t *testing.T) {
	n := loopir.Iv("n")
	prog := &loopir.Program{
		Name:   "shift",
		Params: []string{"n", "maxiter"},
		Arrays: []*loopir.ArrayDecl{{Name: "a", Dims: []loopir.IExpr{n}}},
		Body: []loopir.Stmt{
			loopir.For("iter", loopir.Ic(0), loopir.Iv("maxiter"),
				loopir.For("i", loopir.Ic(0), loopir.Isub(n, loopir.Ic(1)),
					loopir.Set(loopir.Fref("a", loopir.Iadd(loopir.Iv("i"), loopir.Ic(1))),
						loopir.Fref("a", loopir.Iv("i"))))),
		},
	}
	_, err := Compile(prog, Options{Dist: depend.DistSpec{Dims: map[string]int{"a": 0}, Loops: []string{"i"}}})
	if err == nil {
		t.Fatal("write a[i+1] under distributed loop i accepted as owner-computes")
	}
}

func TestCompileRejectsOuterDistributedPipeline(t *testing.T) {
	// Row distribution of a Gauss–Seidel stencil puts the distributed loop
	// outside the pipelined dimension; that needs loop interchange, which
	// the compiler does not do — it must fail with a clear error.
	_, err := Compile(loopir.ThresholdRelax(), Options{
		Dist: depend.DistSpec{Dims: map[string]int{"v": 0}, Loops: []string{"i"}},
	})
	if err == nil {
		t.Fatal("row-distributed Gauss–Seidel accepted")
	}
	if !strings.Contains(err.Error(), "interchange") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// Plan renderings are pinned whole by TestRenderPlanGolden
// (testdata/render_*.txt); the communication keywords formerly asserted
// here — exchange_ghost, pipelines, lbhook, broadcast_from_owner,
// owner computes — are covered by the goldens.

func TestInstantiateMM(t *testing.T) {
	p := mustCompile(t, loopir.MatMul(), Options{Dist: specMM()})
	e, err := p.Instantiate(map[string]int{"n": 16}, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Units != 16 {
		t.Fatalf("units = %d, want 16", e.Units)
	}
	if len(e.Phases) != 16 {
		t.Fatalf("phases = %d, want 16 (one per outer i)", len(e.Phases))
	}
	for _, ph := range e.Phases {
		if ph.UnitsBetween != 16 || ph.ActiveLo != 0 || ph.ActiveHi != 16 {
			t.Fatalf("phase = %+v, want {0,16,16}", ph)
		}
	}
	// Total flops: n outer x n units x (n fma x 3 ops).
	if e.TotalFlops != 16*16*16*3 {
		t.Fatalf("TotalFlops = %v, want %d", e.TotalFlops, 16*16*16*3)
	}
	lo, hi := e.InitialActive()
	if lo != 0 || hi != 16 {
		t.Fatalf("initial active = [%d,%d), want [0,16)", lo, hi)
	}
}

func TestInstantiateLUShrinks(t *testing.T) {
	p := mustCompile(t, loopir.LU(), Options{Dist: specLU()})
	e, err := p.Instantiate(map[string]int{"n": 8}, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Phases) != 8 {
		t.Fatalf("phases = %d, want 8", len(e.Phases))
	}
	if e.Phases[0].ActiveLo != 1 || e.Phases[0].ActiveHi != 8 {
		t.Fatalf("phase 0 active = [%d,%d), want [1,8)", e.Phases[0].ActiveLo, e.Phases[0].ActiveHi)
	}
	if e.Phases[7].ActiveLo != 8 || e.Phases[7].UnitsBetween != 0 {
		t.Fatalf("final phase = %+v, want empty active set", e.Phases[7])
	}
	// Units between phases shrink: 7, 6, 5, ...
	for i := 0; i < 7; i++ {
		if e.Phases[i].UnitsBetween != 7-i {
			t.Fatalf("phase %d units = %d, want %d", i, e.Phases[i].UnitsBetween, 7-i)
		}
	}
	lo, hi := e.InitialActive()
	if lo != 1 || hi != 8 {
		t.Fatalf("initial active = [%d,%d), want [1,8)", lo, hi)
	}
}

func TestInstantiateSORGrain(t *testing.T) {
	p := mustCompile(t, loopir.SOR(), Options{Dist: specSOR()})
	params := map[string]int{"n": 14, "maxiter": 3}
	// 12 interior rows, grain 5 -> 3 blocks per sweep; level-1 hooks fire
	// per block, level-0 per sweep.
	e, err := p.Instantiate(params, 5, Options{HookCostFlops: 1, HookFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if e.ActiveLevel != 1 {
		t.Fatalf("active level = %d, want 1 (strip block hooks)", e.ActiveLevel)
	}
	if len(e.Phases) != 9 {
		t.Fatalf("phases = %d, want 9 (3 sweeps x 3 blocks)", len(e.Phases))
	}
	// Each block: 5 (or 2) rows x 12 interior columns.
	if e.Phases[0].UnitsBetween != 5*12 {
		t.Fatalf("phase 0 units = %d, want 60", e.Phases[0].UnitsBetween)
	}
	if e.Phases[2].UnitsBetween != 2*12 {
		t.Fatalf("phase 2 units = %d, want 24 (tail block)", e.Phases[2].UnitsBetween)
	}
}

func TestInstantiateHookLevelFallsBackOutward(t *testing.T) {
	p := mustCompile(t, loopir.SOR(), Options{Dist: specSOR()})
	params := map[string]int{"n": 14, "maxiter": 3}
	// Absurdly expensive hooks: even level 0 fails the 1% rule, so the
	// outermost level is chosen as fallback.
	e, err := p.Instantiate(params, 5, Options{HookCostFlops: 1e12, HookFraction: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if e.ActiveLevel != 0 {
		t.Fatalf("active level = %d, want 0 (fallback outermost)", e.ActiveLevel)
	}
	if len(e.Phases) != 3 {
		t.Fatalf("phases = %d, want 3 (one per sweep)", len(e.Phases))
	}
}

func TestCompileAllLibraryPrograms(t *testing.T) {
	specs := map[string]depend.DistSpec{
		"mm":     specMM(),
		"sor":    specSOR(),
		"lu":     specLU(),
		"jacobi": specJacobi(),
		"axpy":   {Dims: map[string]int{"x": 0, "y": 0}, Loops: []string{"i"}},
		// Column distribution: the Gauss–Seidel-style pipeline then runs
		// along rows, which the strip miner supports (like SOR).
		"threshold-relax": {Dims: map[string]int{"v": 1}, Loops: []string{"j"}},
		"periodic-sor":    {Dims: map[string]int{"b": 0}, Loops: []string{"j"}},
		"jacobi-converge": {Dims: map[string]int{"a": 0, "anew": 0}, Loops: []string{"i", "i2"}},
		"jacobi3d":        {Dims: map[string]int{"u": 0, "unew": 0}, Loops: []string{"i", "i2"}},
	}
	for name, prog := range loopir.Library() {
		spec := specs[name]
		p, err := Compile(prog, Options{Dist: spec})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if p.Source == "" || p.HookCount == 0 {
			t.Errorf("%s: empty source or no hooks", name)
		}
	}
}

func TestCompilePeriodicSORStructure(t *testing.T) {
	p := mustCompile(t, loopir.PeriodicSOR(), Options{
		Dist: depend.DistSpec{Dims: map[string]int{"b": 0}, Loops: []string{"j"}},
	})
	outer := p.Steps[0].(*SeqLoop)
	// The boundary copies compile to owner blocks bracketed by broadcasts:
	// Bcast(read source) before, Bcast(written unit) after.
	var kinds []string
	for _, s := range outer.Body {
		switch s := s.(type) {
		case *Exchange:
			kinds = append(kinds, "exchange")
		case *Bcast:
			kinds = append(kinds, "bcast:"+s.Index.String())
		case *OwnerBlock:
			kinds = append(kinds, "owner:"+s.Index.String())
		case *StripLoop:
			kinds = append(kinds, "strip")
		case *Hook:
			kinds = append(kinds, "hook")
		}
	}
	want := []string{
		"exchange",
		"bcast:(n - 2)", "owner:0", "bcast:0",
		"bcast:1", "owner:(n - 1)", "bcast:(n - 1)",
		"strip", "hook",
	}
	if len(kinds) != len(want) {
		t.Fatalf("iter body = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("iter body = %v, want %v", kinds, want)
		}
	}
}

func TestCompileJacobiConvergeStructure(t *testing.T) {
	p := mustCompile(t, loopir.JacobiConverge(), Options{
		Dist: depend.DistSpec{Dims: map[string]int{"a": 0, "anew": 0}, Loops: []string{"i", "i2"}},
	})
	if len(p.Reductions) != 1 || p.Reductions[0].Array != "r" || p.Reductions[0].Op != '+' {
		t.Fatalf("reductions = %v, want sum over r", p.Reductions)
	}
	outer, ok := p.Steps[0].(*SeqLoop)
	if !ok || outer.BreakIf == nil {
		t.Fatalf("outer loop lost its break condition")
	}
	// The loop body must end with Combine(r) then the hook, so the break
	// condition sees globally combined residuals.
	nSteps := len(outer.Body)
	if _, ok := outer.Body[nSteps-1].(*Hook); !ok {
		t.Fatalf("last step = %T, want Hook", outer.Body[nSteps-1])
	}
	cb, ok := outer.Body[nSteps-2].(*Combine)
	if !ok || cb.Array != "r" {
		t.Fatalf("step before hook = %#v, want Combine(r)", outer.Body[nSteps-2])
	}
	// A final Combine also closes the program.
	if cb, ok := p.Steps[len(p.Steps)-1].(*Combine); !ok || cb.Array != "r" {
		t.Fatalf("program does not end with Combine(r): %#v", p.Steps[len(p.Steps)-1])
	}
	// Reductions are not "real" carried dependences: the stencil still has
	// ghost deltas, but LoopCarriedDeps must not be set by the reduction.
	if p.Props.LoopCarriedDeps {
		t.Error("reduction misclassified as a loop-carried dependence")
	}
	// The all_reduce and break rendering is pinned by
	// testdata/render_jacobi_converge.txt via TestRenderPlanGolden.
}

func TestCompileRejectsNonReductionReplicatedWrite(t *testing.T) {
	n := loopir.Iv("n")
	prog := &loopir.Program{
		Name:   "bad-repl",
		Params: []string{"n", "maxiter"},
		Arrays: []*loopir.ArrayDecl{
			{Name: "x", Dims: []loopir.IExpr{n}},
			{Name: "s", Dims: []loopir.IExpr{loopir.Ic(1)}},
		},
		Body: []loopir.Stmt{
			loopir.For("iter", loopir.Ic(0), loopir.Iv("maxiter"),
				loopir.For("i", loopir.Ic(0), n,
					loopir.Set(loopir.Fref("x", loopir.Iv("i")), loopir.Fc(1)),
					loopir.Set(loopir.Fref("s", loopir.Ic(0)), loopir.Fref("x", loopir.Iv("i"))))),
		},
	}
	_, err := Compile(prog, Options{Dist: depend.DistSpec{Dims: map[string]int{"x": 0}, Loops: []string{"i"}}})
	if err == nil || !strings.Contains(err.Error(), "reduction") {
		t.Fatalf("overwriting replicated data in a distributed loop accepted: %v", err)
	}
}

func TestCompileRejectsLoopVariantReductionTarget(t *testing.T) {
	n := loopir.Iv("n")
	prog := &loopir.Program{
		Name:   "bad-target",
		Params: []string{"n", "maxiter"},
		Arrays: []*loopir.ArrayDecl{
			{Name: "x", Dims: []loopir.IExpr{n}},
			{Name: "s", Dims: []loopir.IExpr{n}},
		},
		Body: []loopir.Stmt{
			loopir.For("iter", loopir.Ic(0), loopir.Iv("maxiter"),
				loopir.For("i", loopir.Ic(0), n,
					loopir.Set(loopir.Fref("x", loopir.Iv("i")), loopir.Fc(1)),
					loopir.Set(loopir.Fref("s", loopir.Iv("i")),
						loopir.Fadd(loopir.Fref("s", loopir.Iv("i")), loopir.Fc(1))))),
		},
	}
	_, err := Compile(prog, Options{Dist: depend.DistSpec{Dims: map[string]int{"x": 0}, Loops: []string{"i"}}})
	if err == nil || !strings.Contains(err.Error(), "loop-invariant") {
		t.Fatalf("loop-variant reduction target accepted: %v", err)
	}
}

func TestCompileRejectsDistributedBreakCondition(t *testing.T) {
	prog := loopir.SOR()
	prog.Body[0].(*loopir.Loop).BreakIf = &loopir.Cond{
		Op: "<", L: loopir.Fref("b", loopir.Ic(0), loopir.Ic(0)), R: loopir.Fc(0.5),
	}
	_, err := Compile(prog, Options{Dist: specSOR()})
	if err == nil || !strings.Contains(err.Error(), "distributed") {
		t.Fatalf("break condition on distributed data accepted: %v", err)
	}
}

func TestCompileRejectsBreakOnDistributedLoop(t *testing.T) {
	prog := loopir.MatMul()
	// Attach a break to the distributed loop j.
	prog.Body[0].(*loopir.Loop).Body[0].(*loopir.Loop).BreakIf = &loopir.Cond{
		Op: "<", L: loopir.Fc(0), R: loopir.Fc(1),
	}
	_, err := Compile(prog, Options{Dist: specMM()})
	if err == nil || !strings.Contains(err.Error(), "break") {
		t.Fatalf("break on distributed loop accepted: %v", err)
	}
}

// The distributed runtime fingerprints compiled plans (master and slave
// compile independently and compare hashes), so two compilations of the
// same program must render byte-identical sources.
func TestRenderPlanDeterministic(t *testing.T) {
	first := mustCompile(t, loopir.Library()["mm"], Options{Dist: specMM()}).Source
	for i := 0; i < 20; i++ {
		if src := mustCompile(t, loopir.Library()["mm"], Options{Dist: specMM()}).Source; src != first {
			t.Fatalf("compilation %d rendered a different source:\n--- first\n%s\n--- now\n%s", i, first, src)
		}
	}
}
