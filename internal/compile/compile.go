package compile

import (
	"fmt"
	"sort"

	"repro/internal/depend"
	"repro/internal/loopir"
)

// Options configures compilation.
type Options struct {
	// Dist is the data-distribution directive (the paper assumes Fortran
	// D-style directives from the programmer). If Dist.Dims is empty the
	// compiler derives a distribution automatically.
	Dist depend.DistSpec
	// HookFraction is the maximum acceptable ratio of hook cost to enclosed
	// work when placing hooks (paper: 1%).
	HookFraction float64
	// HookCostFlops is the estimated cost of one hook visit, in
	// floating-point-operation equivalents.
	HookCostFlops float64
	// Samples overrides the dependence analysis sample sizes.
	Samples []map[string]int
}

func (o Options) withDefaults() Options {
	if o.HookFraction <= 0 {
		o.HookFraction = 0.01
	}
	if o.HookCostFlops <= 0 {
		o.HookCostFlops = 200
	}
	return o
}

// Compile parallelizes a sequential program for SPMD execution with dynamic
// load balancing.
func Compile(prog *loopir.Program, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	analysis, err := depend.Analyze(prog, opts.Samples...)
	if err != nil {
		return nil, err
	}
	spec := opts.Dist
	if len(spec.Dims) == 0 {
		spec, err = autoDistribute(analysis)
		if err != nil {
			return nil, err
		}
	}
	if len(spec.Loops) == 0 {
		// Derive the distributed loops from the directive.
		loopSet := map[string]bool{}
		for arr, dim := range spec.Dims {
			for _, l := range analysis.DistLoopsFor(arr, dim) {
				loopSet[l] = true
			}
		}
		spec.Loops = orderLoops(prog.Body, loopSet)
		if len(spec.Loops) == 0 {
			return nil, fmt.Errorf("compile: no loop scans the distributed dimension")
		}
	}
	props, err := analysis.PropertiesFor(spec)
	if err != nil {
		return nil, err
	}
	deps, err := analysis.DepsFor(spec)
	if err != nil {
		return nil, err
	}

	c := &compiler{
		prog:     prog,
		analysis: analysis,
		spec:     spec,
		deps:     deps,
		hookID:   0,
	}
	unitsExpr, err := c.unitsExpr()
	if err != nil {
		return nil, err
	}
	steps, err := c.transform(prog.Body, 0)
	if err != nil {
		return nil, err
	}
	if _, _, _, leftover := extractPipes(steps); leftover {
		return nil, fmt.Errorf("compile: pipelined distributed loop has no enclosing sequential loop to strip-mine")
	}
	if err := c.placeExchanges(steps); err != nil {
		return nil, err
	}
	steps = c.placeCombines(steps)
	c.placeHooks(steps, 0)
	if c.hookID == 0 {
		return nil, fmt.Errorf("compile: %s has no loop enclosing the distributed loop to host a hook", prog.Name)
	}
	c.markOverlap(steps)

	var replicated []string
	for _, a := range prog.Arrays {
		if _, ok := spec.Dims[a.Name]; !ok {
			replicated = append(replicated, a.Name)
		}
	}

	deltas := make([]int, 0, len(c.ghostDeltas))
	for d := range c.ghostDeltas {
		deltas = append(deltas, d)
	}
	sort.Ints(deltas)

	// Reduction accumulations look like loop-carried dependences to the
	// analysis but are resolved by the Combine steps, not by pipelining or
	// movement restrictions: classify carried dependences without them.
	if props.LoopCarriedDeps && len(c.reductions) > 0 {
		carried := false
		for _, d := range deps {
			if c.reductions[d.Array] {
				continue
			}
			for _, l := range spec.Loops {
				if d.Carrier == l {
					carried = true
				}
			}
		}
		props.LoopCarriedDeps = carried
	}

	plan := &Plan{
		Prog:        prog,
		Dist:        spec,
		Props:       props,
		Restricted:  props.LoopCarriedDeps || len(deltas) > 0,
		UnitsExpr:   unitsExpr,
		Steps:       steps,
		DistArrays:  spec.Dims,
		Replicated:  replicated,
		GhostDeltas: deltas,
		StripMined:  c.stripMined,
		HookCount:   c.hookID,
	}
	for _, arr := range sortedKeys(c.reductions) {
		plan.Reductions = append(plan.Reductions, ReduceSpec{Array: arr, Op: '+'})
	}
	plan.Source = RenderPlan(plan)
	return plan, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// placeCombines inserts reduction Combine steps: at the end of every loop
// body that has a break condition (so the condition sees globally combined
// values) and at the end of the program (so the final value is right).
func (c *compiler) placeCombines(steps []Step) []Step {
	if len(c.reductions) == 0 {
		return steps
	}
	combines := func() []Step {
		var out []Step
		for _, arr := range sortedKeys(c.reductions) {
			out = append(out, &Combine{Array: arr, Op: '+'})
		}
		return out
	}
	var walk func(ss []Step)
	walk = func(ss []Step) {
		for _, s := range ss {
			switch s := s.(type) {
			case *SeqLoop:
				walk(s.Body)
				if s.BreakIf != nil {
					s.Body = append(s.Body, combines()...)
				}
			case *StripLoop:
				walk(s.Body)
			}
		}
	}
	walk(steps)
	return append(steps, combines()...)
}

// autoDistribute derives a distribution when no directive is given: the
// first written array, distributed along the last dimension scanned by a
// qualifying loop; other written arrays aligned by their scanning loops;
// read-only arrays aligned when every read uses a distributed loop variable
// exactly, replicated otherwise.
func autoDistribute(a *depend.Analysis) (depend.DistSpec, error) {
	written := a.WrittenArrays()
	if len(written) == 0 {
		return depend.DistSpec{}, fmt.Errorf("compile: program writes no arrays")
	}
	main := written[0]
	decl := a.Prog.Array(main)
	spec := depend.DistSpec{Dims: map[string]int{}}
	for dim := len(decl.Dims) - 1; dim >= 0; dim-- {
		if loops := a.DistLoopsFor(main, dim); len(loops) > 0 {
			spec.Dims[main] = dim
			break
		}
	}
	if len(spec.Dims) == 0 {
		return depend.DistSpec{}, fmt.Errorf("compile: no distributable dimension for %q", main)
	}
	mainDim := spec.Dims[main]
	loopSet := map[string]bool{}
	for _, l := range a.DistLoopsFor(main, mainDim) {
		loopSet[l] = true
	}
	// Align other written arrays whose some dimension is scanned by the
	// same loops.
	for _, other := range written {
		if other == main {
			continue
		}
		d := a.Prog.Array(other)
		for dim := 0; dim < len(d.Dims); dim++ {
			match := false
			for _, l := range a.DistLoopsFor(other, dim) {
				if loopSet[l] {
					match = true
				}
			}
			if match {
				spec.Dims[other] = dim
				break
			}
		}
	}
	// Extend the loop set with scanning loops of aligned arrays (e.g.
	// Jacobi's copy-back nest) and align read-only arrays.
	for arr, dim := range spec.Dims {
		for _, l := range a.DistLoopsFor(arr, dim) {
			loopSet[l] = true
		}
	}
	isParam := func(name string) bool {
		for _, prm := range a.Prog.Params {
			if prm == name {
				return true
			}
		}
		return false
	}
	for _, d := range a.Prog.Arrays {
		if _, done := spec.Dims[d.Name]; done {
			continue
		}
		// Read-only: align if every reference has some dimension that is
		// exactly a distributed loop variable, and it is the same dimension
		// in all references.
		alignDim := -1
		ok := true
		for _, r := range a.Refs {
			if r.Ref.Array != d.Name {
				continue
			}
			found := -1
			for dim, ie := range r.Ref.Idx {
				lf, err := depend.Linearize(ie, isParam)
				if err != nil || lf.Const != 0 || len(lf.Params) != 0 || len(lf.Vars) != 1 {
					continue
				}
				for v, cf := range lf.Vars {
					if cf == 1 && loopSet[v] {
						found = dim
					}
				}
			}
			if found == -1 || (alignDim != -1 && alignDim != found) {
				ok = false
				break
			}
			alignDim = found
		}
		if ok && alignDim != -1 {
			spec.Dims[d.Name] = alignDim
		}
	}
	spec.Loops = orderLoops(a.Prog.Body, loopSet)
	return spec, nil
}

// orderLoops returns the loop variables in loopSet in program order.
func orderLoops(stmts []loopir.Stmt, loopSet map[string]bool) []string {
	var out []string
	var walk func([]loopir.Stmt)
	walk = func(ss []loopir.Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *loopir.Loop:
				if loopSet[s.Var] {
					out = append(out, s.Var)
				}
				walk(s.Body)
			case *loopir.If:
				walk(s.Then)
				walk(s.Else)
			}
		}
	}
	walk(stmts)
	return out
}

type compiler struct {
	prog     *loopir.Program
	analysis *depend.Analysis
	spec     depend.DistSpec
	deps     []depend.Dep

	ghostDeltas map[int]bool
	// pendingExchanges maps carrier loop -> exchange steps to insert at the
	// start of that loop's body ("" = before everything).
	pendingExchanges map[string][]Step
	// reductions are replicated arrays accumulated inside distributed
	// loops (r[..] = r[..] + expr); their partial sums are merged by
	// Combine steps.
	reductions map[string]bool
	stripMined bool
	hookID     int
}

func (c *compiler) isParam(name string) bool {
	for _, prm := range c.prog.Params {
		if prm == name {
			return true
		}
	}
	return false
}

func (c *compiler) isDistLoop(v string) bool {
	for _, l := range c.spec.Loops {
		if l == v {
			return true
		}
	}
	return false
}

// unitsExpr returns the extent of the distributed dimension, checking all
// distributed arrays agree.
func (c *compiler) unitsExpr() (loopir.IExpr, error) {
	var expr loopir.IExpr
	names := make([]string, 0, len(c.spec.Dims))
	for arr := range c.spec.Dims {
		names = append(names, arr)
	}
	sort.Strings(names)
	for _, arr := range names {
		dim := c.spec.Dims[arr]
		decl := c.prog.Array(arr)
		if decl == nil {
			return nil, fmt.Errorf("compile: distributed array %q not declared", arr)
		}
		if dim < 0 || dim >= len(decl.Dims) {
			return nil, fmt.Errorf("compile: array %q has no dimension %d", arr, dim)
		}
		e := decl.Dims[dim]
		if expr == nil {
			expr = e
		} else if expr.String() != e.String() {
			return nil, fmt.Errorf("compile: distributed extents disagree: %s vs %s", expr.String(), e.String())
		}
	}
	if expr == nil {
		return nil, fmt.Errorf("compile: no distributed arrays")
	}
	return expr, nil
}

// transform builds the SPMD step tree mirroring the sequential loop
// structure (§4.1).
func (c *compiler) transform(stmts []loopir.Stmt, depth int) ([]Step, error) {
	if c.ghostDeltas == nil {
		c.ghostDeltas = map[int]bool{}
		c.pendingExchanges = map[string][]Step{}
		c.reductions = map[string]bool{}
	}
	var out []Step
	for _, s := range stmts {
		switch s := s.(type) {
		case *loopir.Loop:
			switch {
			case c.isDistLoop(s.Var):
				if s.BreakIf != nil {
					return nil, fmt.Errorf("compile: distributed loop %q cannot carry a break condition", s.Var)
				}
				owned := &OwnedLoop{Var: s.Var, Lo: s.Lo, Hi: s.Hi, Body: s.Body}
				comm, err := c.synthesizeComm(owned)
				if err != nil {
					return nil, err
				}
				out = append(out, comm.bcasts...)
				if comm.marker != nil {
					out = append(out, comm.marker)
				}
				out = append(out, owned)
			case containsDistLoop(s.Body, c.spec.Loops):
				body, err := c.transform(s.Body, depth+1)
				if err != nil {
					return nil, err
				}
				// If the body carries a pipeline marker, this level is the
				// one to strip-mine (§4.4).
				if pre, post, rest, ok := extractPipes(body); ok {
					if s.BreakIf != nil {
						return nil, fmt.Errorf("compile: strip-mined loop %q cannot carry a break condition", s.Var)
					}
					// The strip-mined loop must scan the pipelined (non-
					// distributed) dimension of the piped arrays; otherwise
					// the program needs loop interchange first, which this
					// compiler does not perform.
					for _, st := range pre {
						pr := st.(*PipeRecv)
						dim, ok := c.varDimOfArray(s.Var, pr.Array)
						if !ok {
							return nil, fmt.Errorf(
								"compile: pipelined array %q is not indexed by enclosing loop %q (distributed loop encloses the pipelined dimension; loop interchange required)",
								pr.Array, s.Var)
						}
						pr.RowDim = dim
					}
					for _, st := range post {
						ps := st.(*PipeSend)
						if dim, ok := c.varDimOfArray(s.Var, ps.Array); ok {
							ps.RowDim = dim
						}
					}
					c.stripMined = true
					out = append(out, &StripLoop{Var: s.Var, Lo: s.Lo, Hi: s.Hi, Pre: pre, Body: rest, Post: post})
				} else {
					if s.BreakIf != nil {
						if err := c.checkBreakCond(s.BreakIf); err != nil {
							return nil, err
						}
					}
					out = append(out, &SeqLoop{Var: s.Var, Lo: s.Lo, Hi: s.Hi, Body: body, BreakIf: s.BreakIf})
				}
			default:
				// No distributed loop inside: owner-computes block or
				// replicated execution of the whole subtree.
				steps, err := c.lowerNonDistributed([]loopir.Stmt{s})
				if err != nil {
					return nil, err
				}
				out = append(out, steps...)
			}
		case *loopir.Assign, *loopir.If:
			steps, err := c.lowerNonDistributed([]loopir.Stmt{s})
			if err != nil {
				return nil, err
			}
			out = append(out, steps...)
		default:
			return nil, fmt.Errorf("compile: unknown statement %T", s)
		}
	}
	return dedupeBcasts(mergeOwnerBlocks(out)), nil
}

// checkBreakCond verifies a break condition reads only replicated arrays:
// every slave then evaluates it identically (reduction arrays are made
// consistent by the Combine steps inserted before the check).
func (c *compiler) checkBreakCond(cond *loopir.Cond) error {
	var check func(e loopir.Expr) error
	check = func(e loopir.Expr) error {
		switch e := e.(type) {
		case loopir.Ref:
			if _, distributed := c.spec.Dims[e.Array]; distributed {
				return fmt.Errorf("compile: break condition reads distributed array %q; only replicated data is allowed", e.Array)
			}
		case loopir.Bin:
			if err := check(e.L); err != nil {
				return err
			}
			return check(e.R)
		}
		return nil
	}
	if err := check(cond.L); err != nil {
		return err
	}
	return check(cond.R)
}

// containsDistLoop reports whether the subtree contains a distributed loop.
func containsDistLoop(stmts []loopir.Stmt, distLoops []string) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *loopir.Loop:
			for _, l := range distLoops {
				if s.Var == l {
					return true
				}
			}
			if containsDistLoop(s.Body, distLoops) {
				return true
			}
		case *loopir.If:
			if containsDistLoop(s.Then, distLoops) || containsDistLoop(s.Else, distLoops) {
				return true
			}
		}
	}
	return false
}

// pipeMarker carries pipeline comm requirements upward from an OwnedLoop to
// the sequential loop that will be strip-mined.
type pipeMarker struct {
	recv []Step // PipeRecv steps
	send []Step // PipeSend steps
}

func (*pipeMarker) isStep() {}

// extractPipes removes a pipeMarker from the step list, returning its
// pre/post steps and the filtered list.
func extractPipes(steps []Step) (pre, post, rest []Step, ok bool) {
	for _, s := range steps {
		if m, is := s.(*pipeMarker); is {
			pre, post, ok = m.recv, m.send, true
			continue
		}
		rest = append(rest, s)
	}
	if !ok {
		rest = steps
	}
	return pre, post, rest, ok
}

type commNeeds struct {
	bcasts []Step
	marker *pipeMarker
}

// synthesizeComm inspects the reads and writes in a distributed loop body
// and derives the required communication from the dependence analysis
// (§3.2, §4.6). Writes must be local to the owner (owner-computes).
func (c *compiler) synthesizeComm(owned *OwnedLoop) (commNeeds, error) {
	var needs commNeeds
	var pipeRecv, pipeSend []Step
	seenBcast := map[string]bool{}
	seenPipe := map[string]bool{}
	seenExch := map[string]bool{}

	var scanStmts func(stmts []loopir.Stmt) error
	var scanExpr func(e loopir.Expr) error
	scanExpr = func(e loopir.Expr) error {
		switch e := e.(type) {
		case loopir.Ref:
			return c.classifyRead(owned, e, &needs, &pipeRecv, &pipeSend, seenBcast, seenPipe, seenExch)
		case loopir.Bin:
			if err := scanExpr(e.L); err != nil {
				return err
			}
			return scanExpr(e.R)
		}
		return nil
	}
	scanStmts = func(stmts []loopir.Stmt) error {
		for _, s := range stmts {
			switch s := s.(type) {
			case *loopir.Loop:
				if err := scanStmts(s.Body); err != nil {
					return err
				}
			case *loopir.Assign:
				if err := scanExpr(s.RHS); err != nil {
					return err
				}
				if dim, distributed := c.spec.Dims[s.LHS.Array]; distributed {
					if s.LHS.Idx[dim].String() != owned.Var {
						return fmt.Errorf("compile: write %s is not owner-computes for loop %q", s.LHS.String(), owned.Var)
					}
				} else if err := c.classifyReplicatedWrite(s); err != nil {
					return err
				}
			case *loopir.If:
				if err := scanExpr(s.Cond.L); err != nil {
					return err
				}
				if err := scanExpr(s.Cond.R); err != nil {
					return err
				}
				if err := scanStmts(s.Then); err != nil {
					return err
				}
				if err := scanStmts(s.Else); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := scanStmts(owned.Body); err != nil {
		return commNeeds{}, err
	}
	if len(pipeRecv) > 0 {
		needs.marker = &pipeMarker{recv: pipeRecv, send: pipeSend}
	}
	return needs, nil
}

// classifyRead decides how a read of a distributed array is satisfied:
// locally, by a pipelined neighbor transfer (new values), by a sweep-start
// ghost exchange (old values), or by an owner broadcast.
func (c *compiler) classifyRead(owned *OwnedLoop, r loopir.Ref, needs *commNeeds, pipeRecv, pipeSend *[]Step, seenBcast, seenPipe, seenExch map[string]bool) error {
	dim, distributed := c.spec.Dims[r.Array]
	if !distributed {
		return nil // replicated: always local
	}
	sub := r.Idx[dim]
	lf, err := depend.Linearize(sub, c.isParam)
	if err != nil {
		return fmt.Errorf("compile: non-affine distributed subscript %s", r.String())
	}
	coeff, uses := lf.Vars[owned.Var]
	switch {
	case uses && coeff == 1 && len(lf.Vars) == 1 && len(lf.Params) == 0:
		delta := lf.Const
		if delta == 0 {
			return nil // local
		}
		c.ghostDeltas[delta] = true
		if delta < -1 || delta > 1 {
			return fmt.Errorf("compile: ghost offset %d of %s unsupported (only ±1)", delta, r.String())
		}
		// Pipelined if a flow dependence carried by the distributed loop
		// targets this read (the neighbor's new values are needed);
		// otherwise a sweep-start exchange of old values.
		if c.hasPipeFlow(owned.Var, r) {
			key := fmt.Sprintf("%s@%d", r.Array, delta)
			if !seenPipe[key] {
				seenPipe[key] = true
				*pipeRecv = append(*pipeRecv, &PipeRecv{Array: r.Array, Delta: delta})
				*pipeSend = append(*pipeSend, &PipeSend{Array: r.Array, Delta: -delta})
			}
			return nil
		}
		key := fmt.Sprintf("%s@%d", r.Array, delta)
		if !seenExch[key] {
			seenExch[key] = true
			carrier := c.exchangeCarrier(r)
			c.pendingExchanges[carrier] = append(c.pendingExchanges[carrier], &Exchange{Array: r.Array, Delta: delta})
		}
		return nil
	case !uses:
		// The distributed subscript does not scan with the loop: the slice
		// at that index must be broadcast by its owner.
		key := r.Array + "@" + sub.String()
		if !seenBcast[key] {
			seenBcast[key] = true
			needs.bcasts = append(needs.bcasts, &Bcast{Array: r.Array, Index: sub})
		}
		return nil
	default:
		return fmt.Errorf("compile: unsupported distributed subscript %s in %s", sub.String(), r.String())
	}
}

// varDimOfArray returns the non-distributed dimension of the array whose
// subscripts use loop variable v, if any.
func (c *compiler) varDimOfArray(v, array string) (int, bool) {
	distDim := c.spec.Dims[array]
	for _, r := range c.analysis.Refs {
		if r.Ref.Array != array {
			continue
		}
		for dim, ie := range r.Ref.Idx {
			if dim == distDim {
				continue
			}
			lf, err := depend.Linearize(ie, c.isParam)
			if err != nil {
				continue
			}
			if _, ok := lf.Vars[v]; ok {
				return dim, true
			}
		}
	}
	return 0, false
}

// classifyReplicatedWrite handles a write to a non-distributed array inside
// a distributed loop. The only supported form is a sum reduction
// (r[c] = r[c] + expr with constant subscripts), whose per-slave partials a
// Combine step later merges; anything else would silently diverge between
// slaves.
func (c *compiler) classifyReplicatedWrite(s *loopir.Assign) error {
	isSelf := func(e loopir.Expr) bool {
		r, ok := e.(loopir.Ref)
		return ok && r.String() == s.LHS.String()
	}
	b, ok := s.RHS.(loopir.Bin)
	if !ok || b.Op != '+' || (!isSelf(b.L) && !isSelf(b.R)) {
		return fmt.Errorf("compile: write %s to replicated array inside a distributed loop is not a recognized sum reduction (need %s = %s + expr)",
			s.LHS.String(), s.LHS.String(), s.LHS.String())
	}
	for _, ie := range s.LHS.Idx {
		lf, err := depend.Linearize(ie, c.isParam)
		if err != nil || len(lf.Vars) != 0 {
			return fmt.Errorf("compile: reduction target %s must use loop-invariant subscripts", s.LHS.String())
		}
	}
	c.reductions[s.LHS.Array] = true
	return nil
}

// hasPipeFlow reports whether a flow dependence carried by the distributed
// loop targets the given read.
func (c *compiler) hasPipeFlow(distVar string, read loopir.Ref) bool {
	for _, d := range c.deps {
		if d.Kind == depend.Flow && d.Carrier == distVar && d.Dst.String() == read.String() {
			return true
		}
	}
	return false
}

// exchangeCarrier finds the outer loop whose iterations stale the ghost
// data (the carrier of the flow dependence feeding this read); the exchange
// is inserted at the start of that loop's body. "" means before the whole
// program (read-only ghost data).
func (c *compiler) exchangeCarrier(read loopir.Ref) string {
	for _, d := range c.deps {
		if d.Kind == depend.Flow && d.Dst.String() == read.String() && d.Carrier != "" && !c.isDistLoop(d.Carrier) {
			return d.Carrier
		}
	}
	return ""
}

// lowerNonDistributed handles statements outside any distributed loop:
// owner-computes blocks (all distributed writes at one index expression) or
// replicated execution. Distributed reads at a different index are
// satisfied by an owner broadcast before the block, and the written unit is
// re-broadcast afterwards so later readers anywhere see it — the paper's
// broadcast-and-discard rule for locating distributed data (§4.6). This is
// what makes, e.g., periodic boundary copies (b[0][*] = b[n-2][*]) work.
func (c *compiler) lowerNonDistributed(stmts []loopir.Stmt) ([]Step, error) {
	ownerKey := ""
	var ownerExpr loopir.IExpr
	replOnly := true
	writtenArrays := map[string]bool{}
	var inspect func(ss []loopir.Stmt) error
	inspect = func(ss []loopir.Stmt) error {
		for _, s := range ss {
			switch s := s.(type) {
			case *loopir.Loop:
				if c.isDistLoop(s.Var) {
					return fmt.Errorf("compile: distributed loop %q nested in unsupported context", s.Var)
				}
				if err := inspect(s.Body); err != nil {
					return err
				}
			case *loopir.Assign:
				dim, distributed := c.spec.Dims[s.LHS.Array]
				if !distributed {
					continue
				}
				replOnly = false
				writtenArrays[s.LHS.Array] = true
				e := s.LHS.Idx[dim]
				if ownerExpr == nil {
					ownerExpr = e
					ownerKey = e.String()
				} else if ownerKey != e.String() {
					return fmt.Errorf("compile: statement group writes multiple owners (%s vs %s)", ownerKey, e.String())
				}
			case *loopir.If:
				if err := inspect(s.Then); err != nil {
					return err
				}
				if err := inspect(s.Else); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := inspect(stmts); err != nil {
		return nil, err
	}
	if replOnly {
		return []Step{&AllStmts{Body: stmts}}, nil
	}
	// Mixed owner-computes + replicated writes cannot work: only the owner
	// would update the replicated data, diverging the other slaves.
	var checkNoRepl func(ss []loopir.Stmt) error
	checkNoRepl = func(ss []loopir.Stmt) error {
		for _, s := range ss {
			switch s := s.(type) {
			case *loopir.Loop:
				if err := checkNoRepl(s.Body); err != nil {
					return err
				}
			case *loopir.Assign:
				if _, distributed := c.spec.Dims[s.LHS.Array]; !distributed {
					return fmt.Errorf("compile: owner block writes replicated array %q; split the statement group", s.LHS.Array)
				}
			case *loopir.If:
				if err := checkNoRepl(s.Then); err != nil {
					return err
				}
				if err := checkNoRepl(s.Else); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := checkNoRepl(stmts); err != nil {
		return nil, err
	}

	// Variables bound by loops inside the block: a remote read whose
	// distributed subscript depends on them would need per-element
	// communication, which is not supported.
	internal := map[string]bool{}
	var collectVars func(ss []loopir.Stmt)
	collectVars = func(ss []loopir.Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *loopir.Loop:
				internal[s.Var] = true
				collectVars(s.Body)
			case *loopir.If:
				collectVars(s.Then)
				collectVars(s.Else)
			}
		}
	}
	collectVars(stmts)

	// Non-local distributed reads become whole-unit broadcasts before the
	// block.
	var pre []Step
	seen := map[string]bool{}
	var checkReads func(ss []loopir.Stmt) error
	var checkExpr func(e loopir.Expr) error
	checkExpr = func(e loopir.Expr) error {
		switch e := e.(type) {
		case loopir.Ref:
			dim, distributed := c.spec.Dims[e.Array]
			if !distributed {
				return nil
			}
			sub := e.Idx[dim]
			if sub.String() == ownerKey {
				return nil // owner-local
			}
			lf, err := depend.Linearize(sub, c.isParam)
			if err != nil {
				return fmt.Errorf("compile: non-affine distributed subscript %s", e.String())
			}
			for v := range lf.Vars {
				if internal[v] {
					return fmt.Errorf("compile: owner block (owner %s) reads %s with a block-internal index; per-element communication not supported", ownerKey, e.String())
				}
			}
			key := e.Array + "@" + sub.String()
			if !seen[key] {
				seen[key] = true
				pre = append(pre, &Bcast{Array: e.Array, Index: sub})
			}
		case loopir.Bin:
			if err := checkExpr(e.L); err != nil {
				return err
			}
			return checkExpr(e.R)
		}
		return nil
	}
	checkReads = func(ss []loopir.Stmt) error {
		for _, s := range ss {
			switch s := s.(type) {
			case *loopir.Loop:
				if err := checkReads(s.Body); err != nil {
					return err
				}
			case *loopir.Assign:
				if err := checkExpr(s.RHS); err != nil {
					return err
				}
			case *loopir.If:
				if err := checkExpr(s.Cond.L); err != nil {
					return err
				}
				if err := checkExpr(s.Cond.R); err != nil {
					return err
				}
				if err := checkReads(s.Then); err != nil {
					return err
				}
				if err := checkReads(s.Else); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := checkReads(stmts); err != nil {
		return nil, err
	}

	steps := append(pre, &OwnerBlock{Index: ownerExpr, Body: stmts})
	// Publish the written unit so readers on other slaves (distributed
	// loops or later owner blocks) observe the update.
	arrs := make([]string, 0, len(writtenArrays))
	for a := range writtenArrays {
		arrs = append(arrs, a)
	}
	sort.Strings(arrs)
	for _, a := range arrs {
		steps = append(steps, &Bcast{Array: a, Index: ownerExpr})
	}
	return steps, nil
}

// dedupeBcasts removes a Bcast that immediately repeats an identical one
// (e.g. an owner block's publish followed by a read-driven broadcast of the
// same unit).
func dedupeBcasts(steps []Step) []Step {
	var out []Step
	for _, s := range steps {
		if b, ok := s.(*Bcast); ok && len(out) > 0 {
			if prev, ok2 := out[len(out)-1].(*Bcast); ok2 &&
				prev.Array == b.Array && prev.Index.String() == b.Index.String() {
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

// mergeOwnerBlocks fuses adjacent OwnerBlocks with the same owner index and
// drops nil placeholders left by extractPipes.
func mergeOwnerBlocks(steps []Step) []Step {
	var out []Step
	for _, s := range steps {
		if s == nil {
			continue
		}
		if ob, ok := s.(*OwnerBlock); ok && len(out) > 0 {
			if prev, ok2 := out[len(out)-1].(*OwnerBlock); ok2 && prev.Index.String() == ob.Index.String() {
				prev.Body = append(prev.Body, ob.Body...)
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

// placeExchanges inserts the pending Exchange steps at the start of their
// carrier loops' bodies (or at the top level for carrier "").
func (c *compiler) placeExchanges(steps []Step) error {
	var walk func(ss []Step) []Step
	walk = func(ss []Step) []Step {
		for _, s := range ss {
			switch s := s.(type) {
			case *SeqLoop:
				if ex := c.pendingExchanges[s.Var]; len(ex) > 0 {
					s.Body = append(append([]Step{}, ex...), s.Body...)
					delete(c.pendingExchanges, s.Var)
				}
				s.Body = walk(s.Body)
			case *StripLoop:
				if ex := c.pendingExchanges[s.Var]; len(ex) > 0 {
					// Exchanges belong before the whole strip-mined sweep,
					// which is this loop itself — hoist impossible here, so
					// attach before the first block via Pre would repeat
					// per block. This case cannot arise: exchanges are
					// carried by loops enclosing the pipelined loop.
					return ss
				}
				s.Body = walk(s.Body)
			}
		}
		return ss
	}
	walk(steps)
	// Remaining exchanges with carrier "" go before everything; any other
	// leftover carrier means the loop was not found.
	for carrier, ex := range c.pendingExchanges {
		if carrier == "" {
			// Prepend at top level: caller's steps slice is what we walked;
			// handled by the caller via TopExchanges. Simplest: return an
			// error if unplaced, since all our exchanges are loop-carried.
			_ = ex
			return fmt.Errorf("compile: one-time pre-distribution exchange not supported yet")
		}
		return fmt.Errorf("compile: exchange carrier loop %q not found in generated code", carrier)
	}
	return nil
}

// markOverlap decides, per ghost exchange, whether the runtime may overlap
// it with its consumer's interior compute: post the sends, run the units
// whose stencil reads cannot touch a ghost, receive, then run the ≤|delta|
// boundary units at each run edge. An exchange group (the contiguous
// Exchange steps at one program point) is marked atomically — exchanges on
// the same array share one message tag, so a half-async group could steal
// each other's in-flight slices. The consumer is the next OwnedLoop,
// looking through replicated-only statements (which touch no distributed
// state and involve no communication); any other intervening step kills
// eligibility. The decision is recorded in the rendered plan source, so it
// participates in the cross-process plan hash.
func (c *compiler) markOverlap(steps []Step) {
	var walk func(ss []Step)
	walk = func(ss []Step) {
		for i := 0; i < len(ss); i++ {
			switch s := ss[i].(type) {
			case *SeqLoop:
				walk(s.Body)
			case *StripLoop:
				// Pipelined strips never carry exchanges (placeExchanges
				// guarantees it); walk for nested sequential loops only.
				walk(s.Body)
			case *Exchange:
				group := []*Exchange{s}
				j := i + 1
				for ; j < len(ss); j++ {
					ex, ok := ss[j].(*Exchange)
					if !ok {
						break
					}
					group = append(group, ex)
				}
				var consumer *OwnedLoop
				for k := j; k < len(ss); k++ {
					if _, ok := ss[k].(*AllStmts); ok {
						continue
					}
					consumer, _ = ss[k].(*OwnedLoop)
					break
				}
				if consumer != nil && c.overlapEligible(group, consumer) {
					for _, ex := range group {
						ex.Carrier = consumer
						ex.Overlap = true
					}
				}
				i = j - 1
			}
		}
	}
	walk(steps)
}

// overlapEligible checks the split-loop safety conditions for one exchange
// group against its consuming loop.
func (c *compiler) overlapEligible(group []*Exchange, l *OwnedLoop) bool {
	// Unit-stride deltas only: the runtime peels exactly one unit per run
	// edge into the boundary region.
	for _, ex := range group {
		if ex.Delta != 1 && ex.Delta != -1 {
			return false
		}
	}

	writes := map[string]bool{}
	readDeltas := map[string]map[int]bool{}
	replWrite := false
	var scanStmts func(ss []loopir.Stmt)
	var scanExpr func(e loopir.Expr)
	scanExpr = func(e loopir.Expr) {
		switch e := e.(type) {
		case loopir.Ref:
			dim, distributed := c.spec.Dims[e.Array]
			if !distributed {
				return
			}
			lf, err := depend.Linearize(e.Idx[dim], c.isParam)
			if err != nil {
				return
			}
			if coeff, uses := lf.Vars[l.Var]; uses && coeff == 1 && len(lf.Vars) == 1 && len(lf.Params) == 0 {
				if readDeltas[e.Array] == nil {
					readDeltas[e.Array] = map[int]bool{}
				}
				readDeltas[e.Array][lf.Const] = true
			}
			// Loop-invariant subscripts are broadcast-fed before the loop
			// and order-independent: they do not affect eligibility.
		case loopir.Bin:
			scanExpr(e.L)
			scanExpr(e.R)
		}
	}
	scanStmts = func(ss []loopir.Stmt) {
		for _, st := range ss {
			switch st := st.(type) {
			case *loopir.Loop:
				scanStmts(st.Body)
			case *loopir.Assign:
				scanExpr(st.RHS)
				if _, distributed := c.spec.Dims[st.LHS.Array]; distributed {
					writes[st.LHS.Array] = true
				} else {
					replWrite = true
				}
			case *loopir.If:
				scanExpr(st.Cond.L)
				scanExpr(st.Cond.R)
				scanStmts(st.Then)
				scanStmts(st.Else)
			}
		}
	}
	scanStmts(l.Body)

	// Reduction (replicated) accumulations fold in ascending unit order;
	// running interior before boundary would change the floating-point
	// accumulation order across the split.
	if replWrite {
		return false
	}
	// In-place stencils — the loop writes an array it also reads at a
	// neighbor offset — depend on the ascending execution order for which
	// sweep's values an edge unit observes.
	for arr, deltas := range readDeltas {
		if !writes[arr] {
			continue
		}
		for d := range deltas {
			if d != 0 {
				return false
			}
		}
	}
	// Every exchange in the group must feed this loop; a ghost refreshed
	// for a later consumer must not be delayed past unrelated compute.
	for _, ex := range group {
		if !readDeltas[ex.Array][ex.Delta] {
			return false
		}
	}
	return true
}

// placeHooks appends a candidate Hook at the end of every sequential loop
// body that contains distributed work, recording its nesting level. For a
// strip-mined loop the hook fires after each block's pipeline sends (the
// paper's lbhook1a position).
func (c *compiler) placeHooks(steps []Step, depth int) bool {
	contains := false
	for _, s := range steps {
		switch s := s.(type) {
		case *SeqLoop:
			if c.placeHooks(s.Body, depth+1) {
				s.Body = append(s.Body, &Hook{ID: c.hookID, Level: depth})
				c.hookID++
				contains = true
			}
		case *StripLoop:
			inner := c.placeHooks(s.Body, depth+1)
			if inner {
				s.Post = append(s.Post, &Hook{ID: c.hookID, Level: depth})
				c.hookID++
				contains = true
			}
		case *OwnedLoop, *OwnerBlock:
			contains = true
		}
	}
	return contains
}
