package compile

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/loopir"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files from current output")

// checkGolden compares got against testdata/<name>.txt, rewriting the
// file when the test runs with -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("rendered plan differs from %s (rerun with -update if the change is intended):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestRenderPlanGolden pins the full pseudo-source rendering of the
// library plans. The goldens replace scattered substring assertions: a
// rendering change shows up as a reviewable diff, not a missing keyword.
func TestRenderPlanGolden(t *testing.T) {
	cases := []struct {
		golden string
		prog   *loopir.Program
		opts   Options
	}{
		{"render_jacobi", loopir.Jacobi(), Options{Dist: specJacobi()}},
		{"render_sor", loopir.SOR(), Options{Dist: specSOR()}},
		{"render_mm", loopir.MatMul(), Options{Dist: specMM()}},
		{"render_lu", loopir.LU(), Options{Dist: specLU()}},
		{"render_jacobi_converge", loopir.JacobiConverge(), Options{Dist: specJacobi()}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.golden, func(t *testing.T) {
			p := mustCompile(t, c.prog, c.opts)
			if p.Source != RenderPlan(p) {
				t.Fatal("Plan.Source is not RenderPlan(p)")
			}
			checkGolden(t, c.golden, p.Source)
		})
	}
}

// TestKernelRegions checks the stable kernel indexing contract: regions
// come back in program order and carry the distributed loop bodies.
func TestKernelRegions(t *testing.T) {
	p := mustCompile(t, loopir.Jacobi(), Options{Dist: specJacobi()})
	regions := KernelRegions(p)
	if len(regions) != 2 {
		t.Fatalf("jacobi has %d kernel regions, want 2 (sweep + copy-back)", len(regions))
	}
	if regions[0].Var != "i" || regions[1].Var != "i2" {
		t.Fatalf("region order = %s, %s; want i, i2", regions[0].Var, regions[1].Var)
	}
	p = mustCompile(t, loopir.SOR(), Options{Dist: specSOR()})
	regions = KernelRegions(p)
	if len(regions) != 1 {
		t.Fatalf("sor has %d kernel regions, want 1 (strip-mined pipeline body)", len(regions))
	}
}
