package compile

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/loopir"
)

// RenderPlan pretty-prints the generated SPMD slave program in the style of
// the paper's Figure 3 listings, with communication and hook calls visible.
func RenderPlan(p *Plan) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "/* generated SPMD program for %s */\n", p.Prog.Name)
	fmt.Fprintf(&sb, "/* distributed:")
	arrs := make([]string, 0, len(p.DistArrays))
	for arr := range p.DistArrays {
		arrs = append(arrs, arr)
	}
	sort.Strings(arrs)
	for _, arr := range arrs {
		fmt.Fprintf(&sb, " %s(dim %d)", arr, p.DistArrays[arr])
	}
	if len(p.Replicated) > 0 {
		fmt.Fprintf(&sb, "; replicated: %s", strings.Join(p.Replicated, ", "))
	}
	mode := "unrestricted"
	if p.Restricted {
		mode = "restricted (block)"
	}
	fmt.Fprintf(&sb, "; movement: %s */\n", mode)
	renderSteps(&sb, p.Steps, 0)
	return sb.String()
}

func renderSteps(sb *strings.Builder, steps []Step, depth int) {
	ind := strings.Repeat("    ", depth)
	for _, s := range steps {
		switch s := s.(type) {
		case *SeqLoop:
			fmt.Fprintf(sb, "%sfor (%s = %s; %s < %s; %s++) {\n",
				ind, s.Var, s.Lo.String(), s.Var, s.Hi.String(), s.Var)
			renderSteps(sb, s.Body, depth+1)
			if s.BreakIf != nil {
				fmt.Fprintf(sb, "%s    if (%s %s %s) break;   /* data-dependent termination */\n",
					ind, s.BreakIf.L.String(), s.BreakIf.Op, s.BreakIf.R.String())
			}
			fmt.Fprintf(sb, "%s}\n", ind)
		case *StripLoop:
			fmt.Fprintf(sb, "%sfor (%s_blk = %s; %s_blk < %s; %s_blk += grain) {   /* strip mined */\n",
				ind, s.Var, s.Lo.String(), s.Var, s.Hi.String(), s.Var)
			renderSteps(sb, s.Pre, depth+1)
			fmt.Fprintf(sb, "%s    for (%s = %s_blk; %s < min(%s_blk + grain, %s); %s++) {\n",
				ind, s.Var, s.Var, s.Var, s.Var, s.Hi.String(), s.Var)
			renderSteps(sb, s.Body, depth+2)
			fmt.Fprintf(sb, "%s    }\n", ind)
			renderSteps(sb, s.Post, depth+1)
			fmt.Fprintf(sb, "%s}\n", ind)
		case *OwnedLoop:
			fmt.Fprintf(sb, "%sfor (%s in owned_active() ∩ [%s, %s)) {   /* distributed loop */\n",
				ind, s.Var, s.Lo.String(), s.Hi.String())
			var body strings.Builder
			loopir.RenderStmts(&body, s.Body, depth+1)
			sb.WriteString(body.String())
			fmt.Fprintf(sb, "%s}\n", ind)
		case *OwnerBlock:
			fmt.Fprintf(sb, "%sif (owner(%s) == pid) {   /* owner computes */\n", ind, s.Index.String())
			var body strings.Builder
			loopir.RenderStmts(&body, s.Body, depth+1)
			sb.WriteString(body.String())
			fmt.Fprintf(sb, "%s}\n", ind)
		case *AllStmts:
			var body strings.Builder
			loopir.RenderStmts(&body, s.Body, depth)
			sb.WriteString(body.String())
		case *Exchange:
			note := "old boundary values"
			if s.Overlap {
				note = "old boundary values; overlap: split-loop eligible"
			}
			fmt.Fprintf(sb, "%sexchange_ghost(%s, delta=%+d);   /* %s */\n", ind, s.Array, s.Delta, note)
		case *PipeRecv:
			fmt.Fprintf(sb, "%sif (pid != first) recv_pipeline(%s, delta=%+d, rows=block);\n", ind, s.Array, s.Delta)
		case *PipeSend:
			fmt.Fprintf(sb, "%sif (pid != last) send_pipeline(%s, delta=%+d, rows=block);\n", ind, s.Array, s.Delta)
		case *Bcast:
			fmt.Fprintf(sb, "%sbroadcast_from_owner(%s, index=%s);\n", ind, s.Array, s.Index.String())
		case *Combine:
			fmt.Fprintf(sb, "%sall_reduce(%s, op='%c');   /* merge reduction partials */\n", ind, s.Array, s.Op)
		case *Hook:
			fmt.Fprintf(sb, "%slbhook%d();   /* level %d */\n", ind, s.ID, s.Level)
		}
	}
}
