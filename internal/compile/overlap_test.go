package compile

import (
	"strings"
	"testing"

	"repro/internal/depend"
	"repro/internal/loopir"
)

// collectExchanges gathers every Exchange step in program order.
func collectExchanges(steps []Step) []*Exchange {
	var out []*Exchange
	var walk func(ss []Step)
	walk = func(ss []Step) {
		for _, s := range ss {
			switch s := s.(type) {
			case *SeqLoop:
				walk(s.Body)
			case *StripLoop:
				walk(s.Pre)
				walk(s.Body)
				walk(s.Post)
			case *Exchange:
				out = append(out, s)
			}
		}
	}
	walk(steps)
	return out
}

// TestOverlapLibraryEligibility pins down, per library program, which ghost
// exchanges the compiler marks split-loop eligible. Jacobi-family programs
// (exchange directly feeding a pure stencil loop) must be eligible; the
// pipelined programs (sor, threshold-relax) and periodic-sor (exchange
// consumed through owner blocks) must not.
func TestOverlapLibraryEligibility(t *testing.T) {
	specs := map[string]depend.DistSpec{
		"mm":              specMM(),
		"sor":             specSOR(),
		"lu":              specLU(),
		"jacobi":          specJacobi(),
		"axpy":            {Dims: map[string]int{"x": 0, "y": 0}, Loops: []string{"i"}},
		"threshold-relax": {Dims: map[string]int{"v": 1}, Loops: []string{"j"}},
		"periodic-sor":    {Dims: map[string]int{"b": 0}, Loops: []string{"j"}},
		"jacobi-converge": {Dims: map[string]int{"a": 0, "anew": 0}, Loops: []string{"i", "i2"}},
		"jacobi3d":        {Dims: map[string]int{"u": 0, "unew": 0}, Loops: []string{"i", "i2"}},
	}
	// Programs with at least one overlap-eligible exchange.
	wantEligible := map[string]bool{
		"jacobi":          true,
		"jacobi-converge": true,
		"jacobi3d":        true,
	}
	for name, prog := range loopir.Library() {
		p, err := Compile(prog, Options{Dist: specs[name]})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		exs := collectExchanges(p.Steps)
		eligible := 0
		for _, ex := range exs {
			if ex.Overlap != (ex.Carrier != nil) {
				t.Errorf("%s: exchange %s%+d has Overlap=%v but Carrier=%v",
					name, ex.Array, ex.Delta, ex.Overlap, ex.Carrier)
			}
			if ex.Overlap {
				eligible++
			}
		}
		if wantEligible[name] {
			if eligible == 0 || eligible != len(exs) {
				t.Errorf("%s: %d/%d exchanges eligible, want all", name, eligible, len(exs))
			}
			if !strings.Contains(p.Source, "overlap: split-loop eligible") {
				t.Errorf("%s: eligibility missing from rendered source (plan hash would not record it)", name)
			}
		} else {
			if eligible != 0 {
				t.Errorf("%s: %d exchanges eligible, want none", name, eligible)
			}
			if strings.Contains(p.Source, "overlap: split-loop eligible") {
				t.Errorf("%s: rendered source claims eligibility", name)
			}
		}
	}
}

// TestOverlapCarrierIsConsumingLoop asserts the marked carrier is the loop
// that actually reads the ghosts — for jacobi-converge, the anew stencil
// loop (Var "i"), not the copy-back/reduction loop (Var "i2").
func TestOverlapCarrierIsConsumingLoop(t *testing.T) {
	p := mustCompile(t, loopir.JacobiConverge(),
		Options{Dist: depend.DistSpec{Dims: map[string]int{"a": 0, "anew": 0}, Loops: []string{"i", "i2"}}})
	exs := collectExchanges(p.Steps)
	if len(exs) != 2 {
		t.Fatalf("exchanges = %d, want 2", len(exs))
	}
	for _, ex := range exs {
		if ex.Carrier == nil || ex.Carrier.Var != "i" {
			var v string
			if ex.Carrier != nil {
				v = ex.Carrier.Var
			}
			t.Errorf("exchange %s%+d carrier var = %q, want \"i\"", ex.Array, ex.Delta, v)
		}
	}
	if exs[0].Carrier != exs[1].Carrier {
		t.Error("exchange group must share one carrier loop")
	}
}

// TestOverlapIneligibleReductionCarrier: a stencil whose consuming loop
// accumulates into a replicated reduction array must stay synchronous —
// splitting the loop would reorder the floating-point accumulation.
func TestOverlapIneligibleReductionCarrier(t *testing.T) {
	n := loopir.Iv("n")
	i, j := loopir.Iv("i"), loopir.Iv("j")
	prog := &loopir.Program{
		Name:   "ghost-reduce",
		Params: []string{"n", "maxiter"},
		Arrays: []*loopir.ArrayDecl{
			{Name: "a", Dims: []loopir.IExpr{n, n}},
			{Name: "r", Dims: []loopir.IExpr{loopir.Ic(1)}},
		},
		Body: []loopir.Stmt{
			loopir.For("iter", loopir.Ic(0), loopir.Iv("maxiter"),
				loopir.For("i", loopir.Ic(1), loopir.Isub(n, loopir.Ic(1)),
					loopir.For("j", loopir.Ic(1), loopir.Isub(n, loopir.Ic(1)),
						loopir.Set(loopir.Fref("r", loopir.Ic(0)),
							loopir.Fadd(loopir.Fref("r", loopir.Ic(0)),
								loopir.Fmul(
									loopir.Fref("a", loopir.Isub(i, loopir.Ic(1)), j),
									loopir.Fref("a", loopir.Iadd(i, loopir.Ic(1)), j)))))),
				loopir.For("i2", loopir.Ic(1), loopir.Isub(n, loopir.Ic(1)),
					loopir.For("j2", loopir.Ic(1), loopir.Isub(n, loopir.Ic(1)),
						loopir.Set(loopir.Fref("a", loopir.Iv("i2"), loopir.Iv("j2")),
							loopir.Fmul(loopir.Fc(0.5), loopir.Fref("a", loopir.Iv("i2"), loopir.Iv("j2"))))))),
		},
	}
	p := mustCompile(t, prog, Options{Dist: depend.DistSpec{Dims: map[string]int{"a": 0}, Loops: []string{"i", "i2"}}})
	exs := collectExchanges(p.Steps)
	if len(exs) == 0 {
		t.Fatal("expected ghost exchanges for a[i-1]/a[i+1] reads")
	}
	for _, ex := range exs {
		if ex.Overlap || ex.Carrier != nil {
			t.Errorf("exchange %s%+d marked eligible despite reduction in carrier", ex.Array, ex.Delta)
		}
	}
}
