package compile

import (
	"fmt"

	"repro/internal/loopir"
)

// walkHooks executes the loop structure of the plan with integers only
// (no data), invoking onOwned for every distributed-loop execution and
// onHook for every hook visit. grain is the strip-mining block size.
func (p *Plan) walkHooks(params map[string]int, grain int,
	onOwned func(lo, hi int, env map[string]int, body []loopir.Stmt),
	onOwner func(env map[string]int, body []loopir.Stmt),
	onHook func(h *Hook)) error {

	units, err := loopir.EvalIndex(p.UnitsExpr, params)
	if err != nil {
		return err
	}
	env := map[string]int{}
	for k, v := range params {
		env[k] = v
	}
	if grain < 1 {
		grain = 1
	}
	var walk func(steps []Step) error
	walk = func(steps []Step) error {
		for _, s := range steps {
			switch s := s.(type) {
			case *SeqLoop:
				lo, err := loopir.EvalIndex(s.Lo, env)
				if err != nil {
					return err
				}
				hi, err := loopir.EvalIndex(s.Hi, env)
				if err != nil {
					return err
				}
				for v := lo; v < hi; v++ {
					env[s.Var] = v
					if err := walk(s.Body); err != nil {
						return err
					}
				}
				delete(env, s.Var)
			case *StripLoop:
				lo, err := loopir.EvalIndex(s.Lo, env)
				if err != nil {
					return err
				}
				hi, err := loopir.EvalIndex(s.Hi, env)
				if err != nil {
					return err
				}
				for start := lo; start < hi; start += grain {
					end := start + grain
					if end > hi {
						end = hi
					}
					if err := walk(s.Pre); err != nil {
						return err
					}
					for v := start; v < end; v++ {
						env[s.Var] = v
						if err := walk(s.Body); err != nil {
							return err
						}
					}
					delete(env, s.Var)
					if err := walk(s.Post); err != nil {
						return err
					}
				}
			case *OwnedLoop:
				lo, err := loopir.EvalIndex(s.Lo, env)
				if err != nil {
					return err
				}
				hi, err := loopir.EvalIndex(s.Hi, env)
				if err != nil {
					return err
				}
				if lo < 0 {
					lo = 0
				}
				if hi > units {
					hi = units
				}
				if onOwned != nil {
					onOwned(lo, hi, env, s.Body)
				}
			case *OwnerBlock:
				if onOwner != nil {
					onOwner(env, s.Body)
				}
			case *Hook:
				if onHook != nil {
					onHook(s)
				}
			}
		}
		return nil
	}
	return walk(p.Steps)
}

// Instantiate binds the plan to concrete parameters and a strip-mining
// grain: it selects the active hook level by the 1% rule (§4.2) and builds
// the master's phase schedule mirroring the slave loop structure (§4.1).
// opts are the options the plan was compiled with (hook cost model); pass
// the zero value for defaults.
func (p *Plan) Instantiate(params map[string]int, grain int, opts Options) (*Exec, error) {
	opts = opts.withDefaults()
	units, err := loopir.EvalIndex(p.UnitsExpr, params)
	if err != nil {
		return nil, err
	}
	if units <= 0 {
		return nil, fmt.Errorf("compile: distributed dimension has extent %d", units)
	}

	// Pass 1: total flops, total unit executions, and hook visit counts per
	// level.
	visits := map[int]int{}
	totalFlops := 0.0
	totalUnitExecs := 0
	err = p.walkHooks(params, grain,
		func(lo, hi int, env map[string]int, body []loopir.Stmt) {
			n := hi - lo
			if n <= 0 {
				return
			}
			totalFlops += float64(n) * perUnitFlops(p, body, env, lo+n/2)
			totalUnitExecs += n
		},
		func(env map[string]int, body []loopir.Stmt) {
			totalFlops += loopir.EstFlops(body, env)
		},
		func(h *Hook) { visits[h.Level]++ })
	if err != nil {
		return nil, err
	}
	if totalUnitExecs == 0 {
		return nil, fmt.Errorf("compile: no distributed work for params %v", params)
	}

	// Choose the deepest hook level whose per-visit work keeps hook cost
	// under the fraction; fall back to the outermost level.
	minWork := opts.HookCostFlops / opts.HookFraction
	active := -1
	for level, n := range visits {
		if n == 0 {
			continue
		}
		if totalFlops/float64(n) >= minWork {
			if level > active {
				active = level
			}
		}
	}
	if active == -1 {
		for level, n := range visits {
			if n > 0 && (active == -1 || level < active) {
				active = level
			}
		}
	}
	if active == -1 {
		return nil, fmt.Errorf("compile: no hook sites visited")
	}

	// Pass 2: phase schedule at the active level.
	var phases []PhaseMeta
	unitsBetween := 0
	curLo, curHi := 0, units
	first := true
	err = p.walkHooks(params, grain,
		func(lo, hi int, env map[string]int, body []loopir.Stmt) {
			if hi > lo {
				unitsBetween += hi - lo
			}
			curLo, curHi = lo, hi
			if first {
				first = false
			}
		},
		nil,
		func(h *Hook) {
			if h.Level != active {
				return
			}
			phases = append(phases, PhaseMeta{
				ActiveLo:     curLo,
				ActiveHi:     curHi,
				UnitsBetween: unitsBetween,
			})
			unitsBetween = 0
		})
	if err != nil {
		return nil, err
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("compile: active hook level %d never fires", active)
	}

	return &Exec{
		Plan:         p,
		Params:       params,
		Units:        units,
		ActiveLevel:  active,
		Phases:       phases,
		FlopsPerUnit: totalFlops / float64(totalUnitExecs),
		TotalFlops:   totalFlops,
	}, nil
}

// InitialActive returns the [lo, hi) unit range with work at the start of
// execution (units outside it are data-only, e.g. stencil boundary columns).
func (e *Exec) InitialActive() (int, int) {
	lo, hi := 0, e.Units
	found := false
	_ = e.Plan.walkHooks(e.Params, 1,
		func(l, h int, env map[string]int, body []loopir.Stmt) {
			if !found {
				lo, hi = l, h
				found = true
			}
		}, nil, nil)
	// The initial active range must cover every unit that EVER has work;
	// for growing ranges this underestimates, so widen with a full scan.
	allLo, allHi := lo, hi
	_ = e.Plan.walkHooks(e.Params, 1,
		func(l, h int, env map[string]int, body []loopir.Stmt) {
			if l < allLo {
				allLo = l
			}
			if h > allHi {
				allHi = h
			}
		}, nil, nil)
	return allLo, allHi
}

// perUnitFlops estimates the flops of one distributed-loop iteration with
// the distributed variable at mid.
func perUnitFlops(p *Plan, body []loopir.Stmt, env map[string]int, mid int) float64 {
	local := map[string]int{}
	for k, v := range env {
		local[k] = v
	}
	for _, l := range p.Dist.Loops {
		local[l] = mid
	}
	return loopir.EstFlops(body, local)
}
