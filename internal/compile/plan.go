// Package compile is the parallelizing compiler: it turns a sequential
// loopir program plus a data-distribution directive into an SPMD slave
// program with dynamic-load-balancing support — the code-generation side of
// the paper (Table 2):
//
//   - owner-computes distribution of the loops that scan the distributed
//     dimension, preserving the sequential loop structure (§4.1),
//   - boundary-exchange, pipelined, and broadcast communication synthesized
//     from the dependence analysis (§3.2, §4.6),
//   - strip mining of pipelined loops with a startup-measured grain (§4.4),
//   - load-balancing hook placement by the 1% cost rule (§4.2),
//   - application-specific work-movement payloads, including the ghost data
//     adjacent to moved slices (§4.5),
//   - master control metadata mirroring the slave loop structure, so the
//     master executes the same number of load-balancing phases and can
//     deactivate completed work (§4.1, §4.7),
//   - a printable pseudo-source rendering of the generated program.
//
// The output Plan is the executable artifact (closures and step descriptors
// standing in for the C code the paper's compiler emits); internal/dlb
// executes it on a cluster.
package compile

import (
	"fmt"

	"repro/internal/depend"
	"repro/internal/loopir"
)

// Step is one node of the generated SPMD slave program.
type Step interface {
	isStep()
}

// SeqLoop is a sequential loop executed by every slave (outer loops of the
// original nest). Bounds may reference parameters and enclosing loop
// variables. BreakIf carries a data-dependent termination condition (§4.1:
// the WHILE case); every slave evaluates it identically against combined
// reduction values, so all slaves (and hence the master's phase count)
// terminate consistently.
type SeqLoop struct {
	Var     string
	Lo, Hi  loopir.IExpr
	Body    []Step
	BreakIf *loopir.Cond
}

// StripLoop is a strip-mined pipelined loop (§4.4): the original sequential
// loop Var is executed in blocks of a grain size chosen at startup. Pre
// runs before each block (pipeline receives), Post after (pipeline sends);
// both see the block's [BlockLo, BlockHi) range of Var.
type StripLoop struct {
	Var    string
	Lo, Hi loopir.IExpr
	Pre    []Step // PipeRecv steps
	Body   []Step
	Post   []Step // PipeSend steps
}

// OwnedLoop is the distributed loop: each slave iterates the units it owns
// that are active and inside [Lo, Hi), ascending, executing Body (the
// original loop body) with Var bound to the unit index.
type OwnedLoop struct {
	Var    string
	Lo, Hi loopir.IExpr
	Body   []loopir.Stmt
}

// OwnerBlock is a statement subtree executed only by the owner of the
// distributed-dimension index Index (owner-computes for writes whose
// distributed subscript is not a distributed loop — LU's pivot-column
// normalization).
type OwnerBlock struct {
	Index loopir.IExpr
	Body  []loopir.Stmt
}

// AllStmts is a statement subtree executed identically by every slave
// (writes to replicated arrays only).
type AllStmts struct {
	Body []loopir.Stmt
}

// Exchange is a pre-sweep ghost exchange: every slave sends the content of
// its boundary units to the slaves that read them at offset Delta, so reads
// of unit u+Delta observe the previous sweep's values. In a block
// distribution this is the classic neighbor ghost exchange (the paper's
// sweep-start send/receive in Figure 3a).
//
// When Overlap is set the exchange is split-loop eligible: Carrier points
// at the distributed loop that consumes the ghosts, and the runtime may
// post the sends, compute the carrier's interior units (whose stencil reads
// cannot touch a ghost), receive, and finish with the ≤|Delta| boundary
// units at each edge of every contiguous owned run — hiding the network
// round-trip behind interior compute. Eligibility is decided at compile
// time (markOverlap) and recorded in the rendered plan source, so it enters
// the plan hash; ineligible exchanges (no directly following consumer,
// reduction writes in the carrier, in-place stencils) keep Carrier nil and
// always run synchronously.
type Exchange struct {
	Array   string
	Delta   int        // read offset on the distributed dimension (non-zero)
	Carrier *OwnedLoop // consuming loop when split-eligible; nil otherwise
	Overlap bool       // true: the runtime may overlap this exchange
}

// PipeRecv receives, for the current strip block, the rows of the ghost
// unit at offset Delta from the slave's first owned unit — values computed
// earlier in the same sweep by the neighbor (pipelined flow dependence).
// RowDim is the array dimension scanned by the strip-mined loop (the rows
// being selected).
type PipeRecv struct {
	Array  string
	Delta  int // negative: ghost below the first owned unit
	RowDim int
}

// PipeSend sends, for the current strip block, the rows of the slave's
// boundary owned unit to the neighbor that will read them at offset Delta.
type PipeSend struct {
	Array  string
	Delta  int // positive: the right neighbor reads our last owned unit
	RowDim int
}

// Bcast broadcasts one unit (the distributed-dimension slice at Index) of
// the array from its owner to every other slave (LU's pivot column). The
// paper's broadcast-and-discard rule for locating distributed data (§4.6).
type Bcast struct {
	Array string
	Index loopir.IExpr
}

// Combine is an all-reduce of a replicated reduction array: every slave's
// accumulated contribution since the last Combine is summed in slave order
// (so floating point is identical everywhere) and the result replaces the
// array on all slaves.
type Combine struct {
	Array string
	Op    byte // '+' (sum) is the supported reduction operator
}

// Hook is a candidate load-balancing hook site (§4.2). Exactly one Level is
// chosen at instantiation by the 1% rule; hooks at other levels are inert.
type Hook struct {
	ID    int
	Level int // loop nesting depth of the hook site (0 = outermost loop)
}

func (*SeqLoop) isStep()    {}
func (*StripLoop) isStep()  {}
func (*OwnedLoop) isStep()  {}
func (*OwnerBlock) isStep() {}
func (*AllStmts) isStep()   {}
func (*Exchange) isStep()   {}
func (*PipeRecv) isStep()   {}
func (*PipeSend) isStep()   {}
func (*Bcast) isStep()      {}
func (*Combine) isStep()    {}
func (*Hook) isStep()       {}

// ReduceSpec records a recognized sum reduction into a replicated array
// (e.g. a convergence residual accumulated inside the distributed loop).
type ReduceSpec struct {
	Array string
	Op    byte
}

// Plan is the compiled SPMD program, independent of parameter values and
// slave count.
type Plan struct {
	Prog  *loopir.Program
	Dist  depend.DistSpec
	Props depend.Properties
	// Restricted: work movement must preserve the block distribution
	// because dependences cross distributed-loop indices.
	Restricted bool
	// UnitsExpr is the extent of the distributed dimension (number of work
	// units/data slices), in terms of parameters.
	UnitsExpr loopir.IExpr
	// Steps is the generated slave program.
	Steps []Step
	// DistArrays maps each distributed array to its distributed dimension.
	DistArrays map[string]int
	// Replicated lists arrays kept whole on every slave.
	Replicated []string
	// GhostDeltas are the non-zero distributed-dimension read offsets; work
	// movement must ship the adjacent ghost units alongside moved slices.
	GhostDeltas []int
	// StripMined reports whether a pipelined loop was strip mined.
	StripMined bool
	// HookCount is the number of candidate hook sites.
	HookCount int
	// Reductions lists the recognized replicated-array reductions.
	Reductions []ReduceSpec
	// Source is the pseudo-source listing of the generated program.
	Source string
}

// PhaseMeta describes one hook instance for the master's control program:
// which units are active going into that phase, mirroring the slave loop
// structure (§4.1, §4.7).
type PhaseMeta struct {
	// ActiveLo and ActiveHi bound the active units ([lo, hi)) at this hook.
	ActiveLo, ActiveHi int
	// UnitsBetween is the total distributed-loop iterations executed by all
	// slaves together since the previous hook instance.
	UnitsBetween int
}

// Exec is a plan instantiated with concrete parameters: hook level chosen,
// phase schedule computed, cost estimates fixed.
type Exec struct {
	Plan   *Plan
	Params map[string]int
	// Units is the concrete number of work units.
	Units int
	// ActiveLevel is the hook nesting level selected by the 1% rule.
	ActiveLevel int
	// Phases is the master's phase schedule: one entry per active-hook
	// instance, in execution order.
	Phases []PhaseMeta
	// FlopsPerUnit estimates the cost of one distributed-loop iteration
	// (midpoint estimate over outer indices).
	FlopsPerUnit float64
	// TotalFlops estimates the whole computation.
	TotalFlops float64
}

func (e *Exec) String() string {
	return fmt.Sprintf("exec %s: %d units, hook level %d, %d phases",
		e.Plan.Prog.Name, e.Units, e.ActiveLevel, len(e.Phases))
}

// KernelRegions collects the plan's distributed loops in program order —
// the kernel-eligible regions. Each OwnedLoop is a candidate for both the
// VM range kernel and an AOT-compiled native kernel; the index of a loop
// in this slice is its stable kernel index across tiers.
func KernelRegions(p *Plan) []*OwnedLoop {
	var out []*OwnedLoop
	var walk func(steps []Step)
	walk = func(steps []Step) {
		for _, st := range steps {
			switch st := st.(type) {
			case *SeqLoop:
				walk(st.Body)
			case *StripLoop:
				walk(st.Pre)
				walk(st.Body)
				walk(st.Post)
			case *OwnedLoop:
				out = append(out, st)
			}
		}
	}
	walk(p.Steps)
	return out
}
