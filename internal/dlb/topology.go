package dlb

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/hier"
)

// topology is the engine's decision layer: given one collected round of
// statuses it produces the balancing decision (applying any moves to the
// authoritative ownership map) and models the master's coordination cost.
// It is orthogonal to FaultPolicy — the fault layer owns *who* reports
// and *when* rounds restart; the topology owns *how* the reports turn
// into a redistribution. flatTopology is the paper's centralized master
// and reproduces the pre-hierarchy engine bit for bit; hierTopology is
// the two-level scheme (per-group balancing every round, diffusive
// inter-group exchange on a slower cadence).
type topology interface {
	// decide runs the round's balancing decision over the collected
	// statuses, applies any moves to e.own, and returns the decision.
	// Only called when cfg.DLB is set.
	decide(e *engine, raw map[int]StatusMsg, ids []int, phase, hookIdx int) core.Decision
	// roundCharge is the master's CPU cost for processing this round's
	// reports and deciding.
	roundCharge(e *engine, nReports int) time.Duration
	// ckptEligible reports whether the round just decided may carry a
	// checkpoint cut (the hierarchy aligns cuts with inter-group
	// quiescence).
	ckptEligible() bool
	// rebuild re-derives per-slot state after a recovery changed the
	// membership (slots may have grown; alive masks dead ones).
	rebuild(e *engine, slots int, alive []bool)
}

// unitsPerHookAt is the total work executed between consecutive hook
// instances — the upcoming interval's figure when there is one.
func unitsPerHookAt(e *engine, hookIdx int) float64 {
	uph := float64(e.exec.Phases[hookIdx].UnitsBetween)
	if next := hookIdx + 1; next < len(e.exec.Phases) {
		uph = float64(e.exec.Phases[next].UnitsBetween)
	}
	return uph
}

// rawStatuses converts a round's reports into balancer statuses: measured
// rates, with empty slaves imputed the mean of the others so they can win
// work back (a slave with no work cannot measure its capability).
func rawStatuses(e *engine, raw map[int]StatusMsg, ids []int, counts []int) []core.Status {
	statuses := make([]core.Status, e.own.Slaves())
	var sumRate float64
	var nRate int
	for _, id := range ids {
		st := raw[id]
		rate := 0.0
		if st.Busy > 0 && st.Units > 0 {
			rate = st.Units / st.Busy.Seconds()
			sumRate += rate
			nRate++
		}
		statuses[id] = core.Status{Rate: rate, MoveCost: st.MoveCost, InteractionCost: st.InterCost}
	}
	if nRate > 0 {
		mean := sumRate / float64(nRate)
		for _, id := range ids {
			if statuses[id].Rate == 0 && counts[id] == 0 {
				statuses[id].Rate = mean
			}
		}
	}
	return statuses
}

// weightedRound reports whether this round's decision should use the
// learned weights: the run is in learned mode and the model has actually
// left the uniform prior for the active units. Dense programs never leave
// it, so their decisions take the legacy path bit for bit.
func weightedRound(e *engine) ([]int, bool) {
	if e.costMode != CostLearned || e.costModel == nil {
		return nil, false
	}
	var active []int
	for u := 0; u < e.own.Units(); u++ {
		if e.own.IsActive(u) {
			active = append(active, u)
		}
	}
	if e.costModel.UniformActive(active) {
		return nil, false
	}
	return active, true
}

// weightedStatuses mirrors rawStatuses with weighted work: a slave's rate
// is the model-weighted units it completed per busy second, so machine
// speed is measured independently of which (cheap or expensive) units it
// happened to hold. Empty slaves are imputed the mean, as in the uniform
// path.
func weightedStatuses(e *engine, raw map[int]StatusMsg, ids []int, counts []int) []core.Status {
	statuses := make([]core.Status, e.own.Slaves())
	var sumRate float64
	var nRate int
	for _, id := range ids {
		st := raw[id]
		rate := 0.0
		if wd := e.costModel.WeightDone(st.CostBlocks); st.Busy > 0 && wd > 0 {
			rate = wd / st.Busy.Seconds()
			sumRate += rate
			nRate++
		}
		statuses[id] = core.Status{Rate: rate, MoveCost: st.MoveCost, InteractionCost: st.InterCost}
	}
	if nRate > 0 {
		mean := sumRate / float64(nRate)
		for _, id := range ids {
			if statuses[id].Rate == 0 && counts[id] == 0 {
				statuses[id].Rate = mean
			}
		}
	}
	return statuses
}

// recordTrace appends the round's per-slave samples (Figure 9's series).
func recordTrace(e *engine, ids []int, statuses []core.Status, d core.Decision, phase int) {
	if !e.cfg.CollectTrace {
		return
	}
	now := e.ep.Now()
	work := e.own.ActiveCounts()
	for _, id := range ids {
		e.res.Trace = append(e.res.Trace, Sample{
			Time:      now,
			Phase:     phase,
			Slave:     id,
			RawRate:   statuses[id].Rate,
			Filtered:  d.FilteredRates[id],
			Work:      work[id],
			SkipHooks: d.SkipHooks,
			Period:    d.Period,
		})
	}
}

// noteMoves folds a decision's movement into the run counters.
func noteMoves(e *engine, d core.Decision) {
	e.res.Moves += len(d.Moves)
	e.res.Counters.Add("moves", int64(len(d.Moves)))
	for _, mv := range d.Moves {
		e.res.UnitsMoved += len(mv.Units)
		e.res.Counters.Add("units_moved", int64(len(mv.Units)))
	}
}

// flatTopology is the centralized master: one balancer over every slave,
// re-planned every round. This is the exact decision body of the
// pre-topology engine — the legacy deterministic schedule depends on it.
type flatTopology struct{}

func (flatTopology) decide(e *engine, raw map[int]StatusMsg, ids []int, phase, hookIdx int) core.Decision {
	counts := e.own.ActiveCounts()
	if active, ok := weightedRound(e); ok {
		statuses := weightedStatuses(e, raw, ids, counts)
		uph := unitsPerHookAt(e, hookIdx) * e.costModel.ActiveMean(active)
		d := e.bal.StepWeighted(statuses, uph, e.costModel.Weights())
		e.pol.NoteRates(d.FilteredRates)
		noteMoves(e, d)
		recordTrace(e, ids, statuses, d, phase)
		return d
	}
	statuses := rawStatuses(e, raw, ids, counts)
	d := e.bal.Step(statuses, unitsPerHookAt(e, hookIdx))
	e.pol.NoteRates(d.FilteredRates)
	noteMoves(e, d)
	recordTrace(e, ids, statuses, d, phase)
	return d
}

func (flatTopology) roundCharge(e *engine, nReports int) time.Duration {
	return e.cfg.MasterDecisionCost + time.Duration(nReports)*e.cfg.PerReportCost
}

func (flatTopology) ckptEligible() bool { return true }

func (flatTopology) rebuild(*engine, int, []bool) {}

// hierTopology is the two-level scheme. Every decision round each group's
// allotment is re-apportioned over its own members' filtered rates (the
// existing balancer's rule, confined to the group); on the exchange
// cadence the groups trade whole block ranges across their boundaries by
// the diffusive first-order scheme. Because per-group targets always sum
// to the group's (possibly flow-adjusted) allotment, one global
// restricted-move computation emits both the intra-group rebalancing and
// the cross-boundary shifts in a single consistent schedule.
type hierTopology struct {
	part  *hier.Partition
	diff  hier.Diffuser
	every int // exchange cadence in decision rounds
	relay bool // member→leader→master status relay active (no-fault runs)

	filters  []*core.RateFilter
	costs    *core.MoveCostModel
	alive    []bool
	lastMove time.Duration
	lastInt  time.Duration
	round    int
	exchange bool // the round just decided was an exchange round
}

func newHierTopology(e *engine, part *hier.Partition, relay bool) *hierTopology {
	t := &hierTopology{
		part:  part,
		diff:  hier.Diffuser{Alpha: e.cfg.GroupDiffusion},
		every: e.cfg.GroupExchangeEvery,
		relay: relay,
	}
	t.reset(e, e.total)
	return t
}

// reset builds fresh per-slot filter state and the movement cost model.
func (t *hierTopology) reset(e *engine, slots int) {
	t.filters = t.filters[:0]
	for i := 0; i < slots; i++ {
		t.filters = append(t.filters, core.NewRateFilter(e.setup.balCfg.FilterMinWeight, e.setup.balCfg.FilterMaxWeight))
	}
	t.costs = core.NewMoveCostModel(e.setup.fixed, e.setup.perUnit)
}

func (t *hierTopology) rebuild(e *engine, slots int, alive []bool) {
	t.reset(e, slots)
	t.alive = append([]bool(nil), alive...)
}

func (t *hierTopology) roundCharge(e *engine, nReports int) time.Duration {
	if t.relay {
		// The master processes one aggregate per group; the per-member
		// processing was charged on the leaders.
		nReports = t.part.Groups()
	}
	return e.cfg.MasterDecisionCost + time.Duration(nReports)*e.cfg.PerReportCost
}

func (t *hierTopology) ckptEligible() bool {
	// Checkpoint cuts ride exchange rounds only: between exchanges the
	// groups balance independently, so a cut there would capture the
	// chain mid-diffusion and recovery would replay a half-applied
	// inter-group shift schedule. Aligning cuts with the exchange cadence
	// bounds preemption latency at GroupExchangeEvery rounds.
	return t.part.Groups() <= 1 || t.exchange
}

// improvementFrom mirrors the balancer's projected-improvement rule.
func improvementFrom(before, after float64) float64 {
	switch {
	case math.IsInf(before, 1) && !math.IsInf(after, 1):
		return 1
	case before <= 0 || math.IsInf(after, 1):
		return 0
	default:
		return 1 - after/before
	}
}

func (t *hierTopology) decide(e *engine, raw map[int]StatusMsg, ids []int, phase, hookIdx int) core.Decision {
	if active, ok := weightedRound(e); ok {
		return t.decideWeighted(e, raw, ids, phase, hookIdx, active)
	}
	slots := e.own.Slaves()
	counts := e.own.ActiveCounts()
	statuses := rawStatuses(e, raw, ids, counts)

	// Filtered per-slave rates; the master mirrors the filter state the
	// group leaders hold.
	rates := make([]float64, slots)
	var sumRate float64
	for _, id := range ids {
		if t.alive != nil && id < len(t.alive) && !t.alive[id] {
			continue
		}
		if e.setup.balCfg.DisableFilter {
			rates[id] = statuses[id].Rate
		} else {
			rates[id] = t.filters[id].Update(statuses[id].Rate)
		}
		if rates[id] < 0 {
			rates[id] = 0
		}
		sumRate += rates[id]
		if statuses[id].MoveCost > 0 {
			t.lastMove = statuses[id].MoveCost
		}
		if statuses[id].InteractionCost > 0 {
			t.lastInt = statuses[id].InteractionCost
		}
	}
	e.pol.NoteRates(rates)

	// Global period and hook skip: the cadence must stay uniform across
	// groups — per-group skip counts would desynchronize the contact
	// rounds and the engine's round collection with them.
	period := core.TargetPeriod(core.PeriodInputs{
		MoveCost:        t.lastMove,
		InteractionCost: t.lastInt,
		Quantum:         e.setup.balCfg.Quantum,
	})
	var hookInterval time.Duration
	if uph := unitsPerHookAt(e, hookIdx); sumRate > 0 && uph > 0 {
		hookInterval = time.Duration(uph / sumRate * float64(time.Second))
	}
	d := core.Decision{
		Period:        period,
		SkipHooks:     core.HookSkip(period, hookInterval, e.setup.balCfg.MaxSkip),
		FilteredRates: rates,
	}

	total := e.own.ActiveTotal()
	if total == 0 {
		recordTrace(e, ids, statuses, d, phase)
		return d
	}

	t.round++
	G := t.part.Groups()
	t.exchange = G > 1 && t.every > 0 && t.round%t.every == 0

	// Group aggregates: member lists (joiner slots fold into the last
	// group), backlogs, and rate sums.
	members := make([][]int, G)
	gtot := make([]int, G)
	grate := make([]float64, G)
	for id := 0; id < slots; id++ {
		g := t.part.GroupOf(id)
		members[g] = append(members[g], id)
		gtot[g] += counts[id]
		grate[g] += rates[id]
	}

	// Slow cadence: adjacent groups exchange summaries and shift whole
	// block ranges diffusively.
	var flows []int
	if t.exchange {
		sums := make([]hier.Summary, G)
		for g := 0; g < G; g++ {
			sums[g] = hier.Summary{Group: g, Rate: grate[g], Backlog: gtot[g], Members: len(members[g])}
		}
		flows = t.diff.Flows(sums)
		gtot = hier.ApplyFlows(gtot, flows)
		e.res.Counters.Add("hier_exchanges", 1)
		for _, f := range flows {
			if f < 0 {
				f = -f
			}
			e.res.Counters.Add("hier_shift_units", int64(f))
		}
	}

	// Fast cadence: each group's allotment apportioned over its members'
	// rates, with the group-local improvement threshold — unless an
	// inter-group flow touches the group, in which case its total changed
	// and the new targets must be honored regardless.
	targets := make([]int, slots)
	changed := false
	for g := 0; g < G; g++ {
		mids := members[g]
		mrates := make([]float64, len(mids))
		mcounts := make([]int, len(mids))
		var malive []bool
		if t.alive != nil {
			malive = make([]bool, len(mids))
		}
		for i, id := range mids {
			mrates[i] = rates[id]
			mcounts[i] = counts[id]
			if malive != nil {
				malive[i] = id < len(t.alive) && t.alive[id]
			}
		}
		gt := core.ApportionAlive(gtot[g], mrates, malive)
		touched := t.exchange && ((g > 0 && flows[g-1] != 0) || (g < G-1 && flows[g] != 0))
		if !touched {
			impr := improvementFrom(core.CompletionTime(mcounts, mrates), core.CompletionTime(gt, mrates))
			if impr < e.setup.balCfg.MinImprovement || impr <= 0 {
				copy(gt, mcounts) // below threshold: hold the group still
			}
		}
		for i, id := range mids {
			targets[id] = gt[i]
			if targets[id] != counts[id] {
				changed = true
			}
		}
	}
	d.Targets = targets
	d.Improvement = improvementFrom(core.CompletionTime(counts, rates), core.CompletionTime(targets, rates))
	if !changed {
		recordTrace(e, ids, statuses, d, phase)
		return d
	}

	// One global restricted-move computation over the combined target
	// vector: groups are contiguous id ranges, so intra-group targets
	// yield intra-group chain moves and flow-adjusted totals yield the
	// cross-boundary shifts — adjacency is preserved throughout.
	var moves []core.Move
	if e.setup.balCfg.Restricted {
		if t.alive != nil {
			moves = core.MovesRestrictedAlive(e.own, targets, t.alive)
		} else {
			moves = core.MovesRestricted(e.own, targets)
		}
	} else {
		moves = core.MovesUnrestricted(e.own, targets)
	}
	if len(moves) == 0 {
		recordTrace(e, ids, statuses, d, phase)
		return d
	}

	// Profitability gates the fast cadence only: a diffusive shift's
	// benefit accrues over the whole next exchange interval, not one
	// balancing period, and the under-relaxed flow already embodies the
	// cost/benefit tradeoff.
	if !e.setup.balCfg.DisableProfitability && !t.exchange {
		cost := t.costs.EstimateMoves(moves)
		benefit := time.Duration(d.Improvement * float64(period))
		if cost > benefit {
			d.Suppressed = "not-profitable"
			recordTrace(e, ids, statuses, d, phase)
			return d
		}
	}

	for _, m := range moves {
		if err := e.own.Apply(m); err != nil {
			panic(err)
		}
		from, to := t.part.GroupOf(m.From), t.part.GroupOf(m.To)
		e.res.Counters.Add(fmt.Sprintf("hier_g%02d_moves", from), 1)
		e.res.Counters.Add(fmt.Sprintf("hier_g%02d_units_out", from), int64(len(m.Units)))
		if from != to {
			e.res.Counters.Add("hier_cross_moves", 1)
			e.res.Counters.Add("hier_cross_units", int64(len(m.Units)))
		}
	}
	d.Moves = moves
	noteMoves(e, d)
	recordTrace(e, ids, statuses, d, phase)
	return d
}

// weightFlowsToUnits converts the diffuser's weighted boundary flows into
// whole-unit shifts: a positive flow peels units off the top of the left
// group (exactly the units a boundary move will carry) until taking the
// next unit's weight would overshoot past its midpoint; negative flows
// mirror from the bottom of the right group. activeW lists the weights of
// the active units in unit order; gtot the per-group active unit counts.
// Returns the integer unit flows and the signed weight each one actually
// moved.
func weightFlowsToUnits(activeW []float64, gtot []int, wflows []float64) ([]int, []float64) {
	G := len(gtot)
	flows := make([]int, G-1)
	moved := make([]float64, G-1)
	prov := append([]int(nil), gtot...)
	for b := 0; b < G-1; b++ {
		fw := wflows[b]
		// Boundary position: active units [0, P) currently label groups
		// 0..b under the provisional (post-earlier-flows) counts.
		P := 0
		for h := 0; h <= b; h++ {
			P += prov[h]
		}
		switch {
		case fw > 0:
			acc, n := 0.0, 0
			for i := P - 1; i >= P-prov[b] && i >= 0; i-- {
				wu := activeW[i]
				if acc+wu/2 > fw {
					break
				}
				acc += wu
				n++
			}
			flows[b], moved[b] = n, acc
			prov[b] -= n
			prov[b+1] += n
		case fw < 0:
			acc, n := 0.0, 0
			for i := P; i < P+prov[b+1] && i < len(activeW); i++ {
				wu := activeW[i]
				if acc+wu/2 > -fw {
					break
				}
				acc += wu
				n++
			}
			flows[b], moved[b] = -n, -acc
			prov[b+1] -= n
			prov[b] += n
		}
	}
	return flows, moved
}

// decideWeighted is the hierarchy's decision round under a non-uniform
// learned cost model: group summaries aggregate weighted backlog, the
// diffuser trades weight across boundaries, and each group's allotment is
// split over its members by weighted rate share. Structure mirrors the
// uniform decide — filters, global cadence, exchange-cadence flows,
// group-local hold-still, one global move computation, profitability on
// the fast cadence only.
func (t *hierTopology) decideWeighted(e *engine, raw map[int]StatusMsg, ids []int, phase, hookIdx int, active []int) core.Decision {
	slots := e.own.Slaves()
	counts := e.own.ActiveCounts()
	weights := e.costModel.Weights()
	statuses := weightedStatuses(e, raw, ids, counts)

	rates := make([]float64, slots)
	var sumRate float64
	for _, id := range ids {
		if t.alive != nil && id < len(t.alive) && !t.alive[id] {
			continue
		}
		if e.setup.balCfg.DisableFilter {
			rates[id] = statuses[id].Rate
		} else {
			rates[id] = t.filters[id].Update(statuses[id].Rate)
		}
		if rates[id] < 0 {
			rates[id] = 0
		}
		sumRate += rates[id]
		if statuses[id].MoveCost > 0 {
			t.lastMove = statuses[id].MoveCost
		}
		if statuses[id].InteractionCost > 0 {
			t.lastInt = statuses[id].InteractionCost
		}
	}
	e.pol.NoteRates(rates)

	period := core.TargetPeriod(core.PeriodInputs{
		MoveCost:        t.lastMove,
		InteractionCost: t.lastInt,
		Quantum:         e.setup.balCfg.Quantum,
	})
	var hookInterval time.Duration
	uphW := unitsPerHookAt(e, hookIdx) * e.costModel.ActiveMean(active)
	if sumRate > 0 && uphW > 0 {
		hookInterval = time.Duration(uphW / sumRate * float64(time.Second))
	}
	d := core.Decision{
		Period:        period,
		SkipHooks:     core.HookSkip(period, hookInterval, e.setup.balCfg.MaxSkip),
		FilteredRates: rates,
	}

	total := e.own.ActiveTotal()
	if total == 0 {
		recordTrace(e, ids, statuses, d, phase)
		return d
	}

	t.round++
	G := t.part.Groups()
	t.exchange = G > 1 && t.every > 0 && t.round%t.every == 0

	wTotals := core.ActiveWeightTotals(e.own, weights)
	members := make([][]int, G)
	gtot := make([]int, G)
	grate := make([]float64, G)
	gw := make([]float64, G)
	for id := 0; id < slots; id++ {
		g := t.part.GroupOf(id)
		members[g] = append(members[g], id)
		gtot[g] += counts[id]
		grate[g] += rates[id]
		gw[g] += wTotals[id]
	}

	// Exchange cadence: trade weight across boundaries, realized as whole
	// boundary units.
	gshareW := append([]float64(nil), gw...)
	var flows []int
	if t.exchange {
		sums := make([]hier.Summary, G)
		for g := 0; g < G; g++ {
			sums[g] = hier.Summary{Group: g, Rate: grate[g], Backlog: gtot[g], Members: len(members[g]), Weight: gw[g]}
		}
		activeW := make([]float64, len(active))
		for i, u := range active {
			activeW[i] = weights[u]
		}
		var moved []float64
		flows, moved = weightFlowsToUnits(activeW, gtot, t.diff.FlowsWeighted(sums))
		gtot = hier.ApplyFlows(gtot, flows)
		for b, mw := range moved {
			gshareW[b] -= mw
			gshareW[b+1] += mw
		}
		e.res.Counters.Add("hier_exchanges", 1)
		for _, f := range flows {
			if f < 0 {
				f = -f
			}
			e.res.Counters.Add("hier_shift_units", int64(f))
		}
	}

	// Fast cadence: each group's weight allotment split over its members'
	// weighted rates, holding untouched groups still below the
	// group-local improvement threshold.
	shares := make([]float64, slots)
	for g := 0; g < G; g++ {
		mids := members[g]
		mrates := make([]float64, len(mids))
		mcur := make([]float64, len(mids))
		alive := func(id int) bool {
			return t.alive == nil || (id < len(t.alive) && t.alive[id])
		}
		msum := 0.0
		nAlive := 0
		for i, id := range mids {
			mrates[i] = rates[id]
			mcur[i] = wTotals[id]
			if alive(id) {
				msum += rates[id]
				nAlive++
			}
		}
		cand := make([]float64, len(mids))
		for i, id := range mids {
			if !alive(id) {
				continue
			}
			switch {
			case msum > 0:
				cand[i] = gshareW[g] * rates[id] / msum
			case nAlive > 0:
				cand[i] = gshareW[g] / float64(nAlive)
			}
		}
		touched := t.exchange && ((g > 0 && flows[g-1] != 0) || (g < G-1 && flows[g] != 0))
		if !touched {
			impr := improvementFrom(core.CompletionTimeWeighted(mcur, mrates), core.CompletionTimeWeighted(cand, mrates))
			if impr < e.setup.balCfg.MinImprovement || impr <= 0 {
				copy(cand, mcur) // below threshold: hold the group still
			}
		}
		for i, id := range mids {
			shares[id] = cand[i]
		}
	}

	var targets []int
	var tgtW []float64
	if e.setup.balCfg.Restricted {
		activeW := make([]float64, len(active))
		for i, u := range active {
			activeW[i] = weights[u]
		}
		targets, tgtW = core.WeightedSplitRange(activeW, shares)
	} else {
		owned := make([][]int, slots)
		for s := 0; s < slots; s++ {
			owned[s] = e.own.OwnedActive(s)
		}
		targets, tgtW = core.WeightedPeelCounts(owned, weights, shares)
	}
	d.Targets = targets
	d.Improvement = improvementFrom(core.CompletionTimeWeighted(wTotals, rates), core.CompletionTimeWeighted(tgtW, rates))
	changed := false
	for id := 0; id < slots; id++ {
		if targets[id] != counts[id] {
			changed = true
			break
		}
	}
	if !changed {
		recordTrace(e, ids, statuses, d, phase)
		return d
	}

	var moves []core.Move
	if e.setup.balCfg.Restricted {
		if t.alive != nil {
			moves = core.MovesRestrictedAlive(e.own, targets, t.alive)
		} else {
			moves = core.MovesRestricted(e.own, targets)
		}
	} else {
		moves = core.MovesUnrestricted(e.own, targets)
	}
	if len(moves) == 0 {
		recordTrace(e, ids, statuses, d, phase)
		return d
	}

	if !e.setup.balCfg.DisableProfitability && !t.exchange {
		cost := t.costs.EstimateMoves(moves)
		benefit := time.Duration(d.Improvement * float64(period))
		if cost > benefit {
			d.Suppressed = "not-profitable"
			recordTrace(e, ids, statuses, d, phase)
			return d
		}
	}

	for _, m := range moves {
		if err := e.own.Apply(m); err != nil {
			panic(err)
		}
		from, to := t.part.GroupOf(m.From), t.part.GroupOf(m.To)
		e.res.Counters.Add(fmt.Sprintf("hier_g%02d_moves", from), 1)
		e.res.Counters.Add(fmt.Sprintf("hier_g%02d_units_out", from), int64(len(m.Units)))
		if from != to {
			e.res.Counters.Add("hier_cross_moves", 1)
			e.res.Counters.Add("hier_cross_units", int64(len(m.Units)))
		}
	}
	d.Moves = moves
	noteMoves(e, d)
	recordTrace(e, ids, statuses, d, phase)
	return d
}
