package dlb

import (
	"fmt"
	"time"

	"repro/internal/cluster"
)

// The engine executes the paper's one master/slave runtime (§3–§4); fault
// tolerance is a policy layered on top of it, not a second runtime. The
// master-side FaultPolicy owns lease tracking, checkpoint cuts, epoch
// rollback and joiner admission; the slave-side slaveFault owns epoch-scoped
// communication, heartbeats, checkpoint parts and recovery restarts. The
// no-op implementations below reproduce the legacy deterministic behavior
// bit for bit: they add no endpoint operations, so virtual time, message
// order and every gathered array are identical to the pre-policy runtime.

// FaultPolicy is the master-side fault-tolerance layer plugged into the
// engine's phase loop.
type FaultPolicy interface {
	// Init runs after the ownership map and balancer are built, before the
	// initial scatter.
	Init(e *engine)
	// Started runs right after the scatter, at compute start.
	Started(e *engine)
	// CollectRound gathers one full round of status reports. It returns
	// (nil, false) when the round was voided by a recovery (collect afresh),
	// (nil, true) when every participant announced completion, and
	// (statuses, true) for a normal round.
	CollectRound(e *engine) (map[int]StatusMsg, bool)
	// Participants lists the alive slaves of the current membership,
	// ascending.
	Participants(e *engine) []int
	// Epoch is the current recovery epoch (always 0 without faults).
	Epoch() int
	// RoundObserved runs at the top of each decision round, before the
	// master's decision cost is charged.
	RoundObserved(e *engine)
	// NoteRates records the round's filtered rates — the reassignment
	// weights a recovery would use.
	NoteRates(rates []float64)
	// CheckpointSeq decides whether a checkpoint request rides this round's
	// instruction and sends the requests; it returns the sequence number
	// carried in InstrMsg.CkptSeq (0: none).
	CheckpointSeq(e *engine, phase int, ids []int) int
	// RoundSent runs after the round's instructions went out.
	RoundSent(e *engine)
	// Commit runs after the phase loop completed, before the final gather:
	// the point past which no recovery is possible.
	Commit(e *engine)
	// GatherTimeout bounds each final-gather receive (0: block forever).
	GatherTimeout(e *engine) time.Duration
}

// noFaultPolicy is the legacy deterministic path: no leases, no
// checkpoints, no recovery. Its round collection is the exact per-slave
// blocking receive sequence of the original master, so the simulated
// schedule is unchanged.
type noFaultPolicy struct{}

func (noFaultPolicy) Init(*engine)    {}
func (noFaultPolicy) Started(*engine) {}

func (noFaultPolicy) CollectRound(e *engine) (map[int]StatusMsg, bool) {
	if e.relay {
		return collectGroupRound(e)
	}
	// One blocking receive per not-yet-done slave, in id order. Slaves
	// announce termination with a "done" message when their (possibly data-
	// dependent, §4.1) control flow finishes; since every slave follows the
	// identical schedule and break conditions evaluate identically, a round
	// is either all statuses or all dones.
	raw := map[int]StatusMsg{}
	newDone := 0
	for i := 0; i < e.initial; i++ {
		if e.done[i] {
			continue
		}
		msg := e.ep.Recv(i, "")
		st, ok := msg.Data.(StatusMsg)
		if !ok {
			panic(fmt.Sprintf("dlb: master: unexpected %q message from slave %d", msg.Tag, i))
		}
		switch msg.Tag {
		case "done":
			e.done[i] = true
			e.doneCount++
			e.noteDispatch(st)
			newDone++
		case "status":
			raw[i] = st
		default:
			panic(fmt.Sprintf("dlb: master: unexpected tag %q from slave %d", msg.Tag, i))
		}
	}
	if len(raw) == 0 {
		return nil, true
	}
	if newDone > 0 {
		panic("dlb: slave schedules diverged (mixed status/done round)")
	}
	return raw, true
}

// collectGroupRound is the hierarchical round collection: one aggregate
// receive per group leader (in group order) instead of one per slave, so
// the master's fan-in is O(groups). The all-statuses-or-all-dones
// invariant carries over unchanged — each leader's aggregate is itself
// uniform because its members follow the identical schedule.
func collectGroupRound(e *engine) (map[int]StatusMsg, bool) {
	raw := map[int]StatusMsg{}
	newDone := 0
	for g := 0; g < e.part.Groups(); g++ {
		leader := e.part.Leader(g)
		if e.done[leader] {
			continue
		}
		msg := e.ep.Recv(leader, "")
		gs, ok := msg.Data.(GroupStatusMsg)
		if !ok {
			panic(fmt.Sprintf("dlb: master: unexpected %q message from leader %d", msg.Tag, leader))
		}
		switch msg.Tag {
		case "gdone":
			for i, id := range gs.Ids {
				e.done[id] = true
				e.doneCount++
				e.noteDispatch(gs.Statuses[i])
			}
			newDone++
		case "gstatus":
			for i, id := range gs.Ids {
				raw[id] = gs.Statuses[i]
			}
		default:
			panic(fmt.Sprintf("dlb: master: unexpected tag %q from leader %d", msg.Tag, leader))
		}
	}
	if len(raw) == 0 {
		return nil, true
	}
	if newDone > 0 {
		panic("dlb: slave schedules diverged (mixed status/done round)")
	}
	return raw, true
}

func (noFaultPolicy) Participants(e *engine) []int {
	ids := make([]int, e.initial)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func (noFaultPolicy) Epoch() int                           { return 0 }
func (noFaultPolicy) RoundObserved(*engine)                {}
func (noFaultPolicy) NoteRates([]float64)                  {}
func (noFaultPolicy) CheckpointSeq(*engine, int, []int) int { return 0 }
func (noFaultPolicy) RoundSent(*engine)                    {}
func (noFaultPolicy) Commit(*engine)                       {}
func (noFaultPolicy) GatherTimeout(*engine) time.Duration  { return 0 }

// slaveFault is the slave-side fault-tolerance layer plugged into the step
// loop: communication tagging, blocked-receive supervision, heartbeats,
// checkpoint parts, and the epoch restart protocol.
type slaveFault interface {
	// commTag scopes a slave-to-slave tag to the current epoch.
	commTag(s *slave, tag string) string
	// recvPeer is the slave-to-slave blocking receive.
	recvPeer(s *slave, from int, tag string) cluster.Msg
	// recvInstr blocks for the next instruction of the current epoch.
	recvInstr(s *slave) InstrMsg
	// heartbeat emits a sign of life if one is due (hook sites and long
	// compute stretches).
	heartbeat(s *slave)
	// checkpoint answers the checkpoint request paired with the instruction
	// just consumed at hook hv (wantSeq from InstrMsg.CkptSeq; 0: none).
	checkpoint(s *slave, hv, wantSeq int)
	// peerAlive reports whether peer o participates in the current epoch.
	peerAlive(s *slave, o int) bool
	// designated reports whether this slave is the lowest-id live slave —
	// the one that ships shared (replicated) state.
	designated(s *slave) bool
	// runEpoch executes the step tree once and announces termination; it
	// returns false when a recovery restarted the epoch (run again).
	runEpoch(s *slave) bool
	// join registers an idle node and waits for admission; it returns false
	// when the run ended first.
	join(s *slave) bool
}

// slaveFaultFor selects the slave-side policy.
func slaveFaultFor(ft bool) slaveFault {
	if ft {
		return ftSlaveFault{}
	}
	return noSlaveFault{}
}

// noSlaveFault is the legacy slave behavior: plain tags, plain blocking
// receives, no heartbeats, no checkpoints, slave 0 ships shared state.
type noSlaveFault struct{}

func (noSlaveFault) commTag(_ *slave, tag string) string { return tag }

func (noSlaveFault) recvPeer(s *slave, from int, tag string) cluster.Msg {
	return s.ep.Recv(from, tag)
}

func (noSlaveFault) recvInstr(s *slave) InstrMsg {
	return s.ep.Recv(cluster.MasterID, "instr").Data.(InstrMsg)
}

func (noSlaveFault) heartbeat(*slave)            {}
func (noSlaveFault) checkpoint(*slave, int, int) {}

func (noSlaveFault) peerAlive(*slave, int) bool { return true }

func (noSlaveFault) designated(s *slave) bool { return s.id == 0 }

func (noSlaveFault) runEpoch(s *slave) bool {
	s.runTree()
	return true
}

func (noSlaveFault) join(s *slave) bool {
	panic(fmt.Sprintf("dlb: slave%d: joiner requires the fault-tolerant policy", s.id))
}
