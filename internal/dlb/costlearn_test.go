package dlb

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/loopir"
)

// TestDenseLearnedBitIdentical is the tentpole's safety guarantee: on
// dense (uniform-cost) programs the learned cost model must be a no-op —
// the same schedule, the same moves, the same results, bit for bit. The
// slaves measure and report block costs, the master folds them into the
// model, and because every relative cost lands on exactly 1.0 the decision
// layer takes the legacy code path unchanged.
func TestDenseLearnedBitIdentical(t *testing.T) {
	progs := []struct {
		name   string
		params map[string]int
	}{
		{"jacobi", map[string]int{"n": 64, "maxiter": 8}},
		{"sor", map[string]int{"n": 48, "maxiter": 6}},
	}
	for _, p := range progs {
		plan := planFor(t, p.name)
		for _, sync := range []bool{false, true} {
			for _, slaves := range []int{2, 4, 8} {
				base := Config{Plan: plan, Params: p.params, DLB: true, Synchronous: sync}
				cc := cluster.Config{Slaves: slaves}

				uni := base
				uni.CostModel = CostUniform
				ru, err := Run(uni, cc)
				if err != nil {
					t.Fatalf("%s sync=%v slaves=%d uniform: %v", p.name, sync, slaves, err)
				}
				lrn := base
				lrn.CostModel = CostLearned
				rl, err := Run(lrn, cc)
				if err != nil {
					t.Fatalf("%s sync=%v slaves=%d learned: %v", p.name, sync, slaves, err)
				}

				if ru.Elapsed != rl.Elapsed {
					t.Errorf("%s sync=%v slaves=%d: elapsed %v (uniform) != %v (learned)",
						p.name, sync, slaves, ru.Elapsed, rl.Elapsed)
				}
				if ru.Phases != rl.Phases || ru.Moves != rl.Moves || ru.UnitsMoved != rl.UnitsMoved {
					t.Errorf("%s sync=%v slaves=%d: schedule diverged: phases %d/%d moves %d/%d units %d/%d",
						p.name, sync, slaves, ru.Phases, rl.Phases, ru.Moves, rl.Moves, ru.UnitsMoved, rl.UnitsMoved)
				}
				if !reflect.DeepEqual(ru.Owner, rl.Owner) {
					t.Errorf("%s sync=%v slaves=%d: final ownership diverged", p.name, sync, slaves)
				}
				for name, want := range ru.Final {
					got := rl.Final[name]
					if got == nil {
						t.Fatalf("%s: array %q missing from learned result", p.name, name)
					}
					if d := want.MaxAbsDiff(got); d != 0 {
						t.Errorf("%s sync=%v slaves=%d: array %q differs by %g", p.name, sync, slaves, name, d)
					}
				}
			}
		}
	}
}

// irregularPlan compiles one of the sparse library programs with the
// automatic distribution directive.
func irregularPlan(t testing.TB, name string) *compile.Plan {
	t.Helper()
	prog := loopir.Library()[name]
	if prog == nil {
		t.Fatalf("no program %q", name)
	}
	plan, err := compile.Compile(prog, compile.Options{})
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return plan
}

// TestIrregularLearnedBeatsUniform is the tentpole's payoff: on skewed
// data-dependent workloads the learned model must deliver both a shorter
// makespan and a lower weighted load imbalance than the uniform
// assumption, and the results must still match the sequential reference
// exactly.
func TestIrregularLearnedBeatsUniform(t *testing.T) {
	cases := []struct {
		name   string
		params map[string]int
		slaves int
	}{
		{"spmv", map[string]int{"n": 1024, "maxiter": 4}, 8},
		{"pbin", map[string]int{"n": 256, "maxiter": 4}, 8},
	}
	for _, c := range cases {
		plan := irregularPlan(t, c.name)
		elapsed := map[string]time.Duration{}
		imbal := map[string]float64{}
		for _, mode := range []string{CostUniform, CostLearned} {
			res := runAndVerify(t, plan, c.params,
				Config{DLB: true, CostModel: mode}, cluster.Config{Slaves: c.slaves})
			elapsed[mode] = res.Elapsed
			if len(res.Loads) == 0 {
				t.Fatalf("%s %s: no load samples recorded", c.name, mode)
			}
			sum := 0.0
			for _, l := range res.Loads {
				sum += l.Max / l.Mean
			}
			imbal[mode] = sum / float64(len(res.Loads))
		}
		if elapsed[CostLearned] >= elapsed[CostUniform] {
			t.Errorf("%s: learned makespan %v not better than uniform %v",
				c.name, elapsed[CostLearned], elapsed[CostUniform])
		}
		if imbal[CostLearned] >= imbal[CostUniform] {
			t.Errorf("%s: learned imbalance %.3f not better than uniform %.3f",
				c.name, imbal[CostLearned], imbal[CostUniform])
		}
	}
}

// TestCostModelValidation rejects unknown cost-model names at Run.
func TestCostModelValidation(t *testing.T) {
	plan := planFor(t, "jacobi")
	_, err := Run(Config{Plan: plan, Params: map[string]int{"n": 32, "maxiter": 2}, CostModel: "bogus"},
		cluster.Config{Slaves: 2})
	if err == nil {
		t.Fatal("Run accepted CostModel \"bogus\"")
	}
}

// TestObservePooledNormalization checks the cross-slave property the model
// depends on: blocks from different slaves in one pooled round are
// normalized by the pool's mean, so a slave whose own holdings are
// internally uniform still learns weights comparable to its peers'.
func TestObservePooledNormalization(t *testing.T) {
	m := NewUnitCostModel(8)
	// Two slaves, each internally uniform: units 0-3 cost 1µs, units 4-7
	// cost 3µs. Pool mean is 2µs.
	m.Observe([]CostBlock{
		{Lo: 0, Hi: 4, PerUnit: 1e-6},
		{Lo: 4, Hi: 8, PerUnit: 3e-6},
	})
	for u := 0; u < 4; u++ {
		if got := m.Weight(u); got != 0.5 {
			t.Errorf("unit %d: weight %g, want 0.5", u, got)
		}
	}
	for u := 4; u < 8; u++ {
		if got := m.Weight(u); got != 1.5 {
			t.Errorf("unit %d: weight %g, want 1.5", u, got)
		}
	}
	if m.UniformActive([]int{0, 1, 2, 3, 4, 5, 6, 7}) {
		t.Error("3x cost spread reported as uniform")
	}
}

// TestObserveUniformStaysExact checks the dense fast path: when every
// block in the pool reports the same per-unit cost, weights stay at
// exactly 1.0 (no float division) and the model remains uniform.
func TestObserveUniformStaysExact(t *testing.T) {
	m := NewUnitCostModel(6)
	for i := 0; i < 3; i++ {
		m.Observe([]CostBlock{
			{Lo: 0, Hi: 3, PerUnit: 2.5e-6},
			{Lo: 3, Hi: 6, PerUnit: 2.5e-6},
		})
	}
	for u := 0; u < 6; u++ {
		if got := m.Weight(u); got != 1.0 {
			t.Errorf("unit %d: weight %g, want exactly 1.0", u, got)
		}
	}
	if !m.UniformActive([]int{0, 1, 2, 3, 4, 5}) {
		t.Error("uniform reports left the uniform prior")
	}
}

// TestObserveFirstSnapThenEWMA: the first measurement replaces the prior
// outright; later measurements blend by EWMA.
func TestObserveFirstSnapThenEWMA(t *testing.T) {
	m := NewUnitCostModel(2)
	m.Observe([]CostBlock{
		{Lo: 0, Hi: 1, PerUnit: 3e-6},
		{Lo: 1, Hi: 2, PerUnit: 1e-6},
	})
	if got := m.Weight(0); got != 1.5 {
		t.Fatalf("first observation: weight %g, want snap to 1.5", got)
	}
	// Costs flip: the EWMA moves halfway from 1.5 toward 0.5.
	m.Observe([]CostBlock{
		{Lo: 0, Hi: 1, PerUnit: 1e-6},
		{Lo: 1, Hi: 2, PerUnit: 3e-6},
	})
	if got := m.Weight(0); got != 1.0 {
		t.Fatalf("second observation: weight %g, want EWMA 1.0", got)
	}
}

// TestWeightDone weights a block report by the model.
func TestWeightDone(t *testing.T) {
	m := NewUnitCostModel(4)
	m.Observe([]CostBlock{
		{Lo: 0, Hi: 2, PerUnit: 1e-6},
		{Lo: 2, Hi: 4, PerUnit: 3e-6},
	})
	if got := m.WeightDone([]CostBlock{{Lo: 0, Hi: 4}}); got != 4.0 {
		t.Errorf("WeightDone over all units: %g, want 4.0", got)
	}
	if got := m.WeightDone([]CostBlock{{Lo: 2, Hi: 4}}); got != 3.0 {
		t.Errorf("WeightDone over heavy half: %g, want 3.0", got)
	}
	if got := m.WeightDone(nil); got != 0 {
		t.Errorf("WeightDone(nil): %g, want 0", got)
	}
}
