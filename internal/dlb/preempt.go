package dlb

import (
	"errors"
	"sync/atomic"
)

// ErrPreempted is returned by RunMasterOn when a run was stopped through
// Config.Preempt: the Result carries the committed stop checkpoint in
// Result.Checkpoint, and the run continues later by handing that snapshot
// to Config.Resume. It is a scheduling outcome, not a failure.
var ErrPreempted = errors.New("dlb: run preempted at checkpoint")

// PreemptControl lets a scheduler request a cooperative stop of a running
// master. Request may be called from any goroutine at any time; the master
// notices it at its next load-balancing round, forces a consistent
// checkpoint there, releases every slave (they see an ordinary eviction),
// and unwinds with ErrPreempted. A run that completes before the next
// checkpointable round simply finishes — callers must handle both
// outcomes.
type PreemptControl struct {
	flag atomic.Bool
}

// Request asks the master to stop at its next consistent checkpoint.
func (p *PreemptControl) Request() { p.flag.Store(true) }

// Requested reports whether a stop has been requested. Safe on nil.
func (p *PreemptControl) Requested() bool { return p != nil && p.flag.Load() }

// preemptStop unwinds the master loop after the stop checkpoint committed
// and every participant was released; RunMasterOn turns it into
// ErrPreempted.
type preemptStop struct{}

// InitCacheAdvisor is an optional Endpoint capability: a transport that
// knows a slave already holds this plan's initial scatter payload (e.g.
// netrun's daemon-side init cache) reports it here, and the engine ships a
// FromCache marker instead of the bulk data.
type InitCacheAdvisor interface {
	InitCached(slave int) bool
}
