package dlb

import "repro/internal/trace"

// Series converts the run's Figure 9 samples for one slave into trace
// series: raw rate, filtered (adjusted) rate, and work assignment over
// time. Every endpoint fills Trace through the same engine, so the series
// are directly comparable across the simulated, wall-clock and TCP
// runtimes.
func (r *Result) Series(slave int) (raw, filtered, work *trace.Series) {
	raw = &trace.Series{Name: "raw-rate"}
	filtered = &trace.Series{Name: "adjusted-rate"}
	work = &trace.Series{Name: "work"}
	for _, s := range r.Trace {
		if s.Slave != slave {
			continue
		}
		t := s.Time.Seconds()
		raw.Append(t, s.RawRate)
		filtered.Append(t, s.Filtered)
		work.Append(t, float64(s.Work))
	}
	return raw, filtered, work
}
