package dlb

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/depend"
	"repro/internal/fault"
	"repro/internal/loopir"
)

// overlapPlans compiles every library program with its canonical
// distribution directive (automatic for the sparse programs).
func overlapPlans(t testing.TB) map[string]*compile.Plan {
	t.Helper()
	specs := map[string]depend.DistSpec{
		"mm":              {Dims: map[string]int{"c": 1, "b": 1}, Loops: []string{"j"}},
		"sor":             {Dims: map[string]int{"b": 0}, Loops: []string{"j"}},
		"lu":              {Dims: map[string]int{"a": 1}, Loops: []string{"j"}},
		"jacobi":          {Dims: map[string]int{"a": 0, "anew": 0}, Loops: []string{"i", "i2"}},
		"axpy":            {Dims: map[string]int{"x": 0, "y": 0}, Loops: []string{"i"}},
		"threshold-relax": {Dims: map[string]int{"v": 1}, Loops: []string{"j"}},
		"periodic-sor":    {Dims: map[string]int{"b": 0}, Loops: []string{"j"}},
		"jacobi-converge": {Dims: map[string]int{"a": 0, "anew": 0}, Loops: []string{"i", "i2"}},
		"jacobi3d":        {Dims: map[string]int{"u": 0, "unew": 0}, Loops: []string{"i", "i2"}},
	}
	plans := map[string]*compile.Plan{}
	for name, prog := range loopir.Library() {
		plan, err := compile.Compile(prog, compile.Options{Dist: specs[name]})
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		plans[name] = plan
	}
	return plans
}

var overlapParams = map[string]map[string]int{
	"mm":              {"n": 24},
	"sor":             {"n": 32, "maxiter": 4},
	"lu":              {"n": 32},
	"jacobi":          {"n": 48, "maxiter": 6},
	"axpy":            {"n": 256, "maxiter": 4},
	"threshold-relax": {"n": 32, "maxiter": 4},
	"periodic-sor":    {"n": 32, "maxiter": 4},
	"jacobi-converge": {"n": 48, "maxiter": 8},
	"jacobi3d":        {"n": 16, "maxiter": 4},
	"spmv":            {"n": 256, "maxiter": 2},
	"pbin":            {"n": 64, "maxiter": 2},
}

// overlapEligible marks the programs whose plans carry split-loop eligible
// exchanges (pinned by compile's TestOverlapLibraryEligibility).
var overlapEligible = map[string]bool{
	"jacobi": true, "jacobi-converge": true, "jacobi3d": true,
}

// TestOverlapBitIdentical is the tentpole's safety guarantee: the split
// interior/boundary schedule must be a pure latency optimization. For every
// library program, pipelined and synchronous, 2–8 slaves, overlap on and
// off must produce bit-identical results, the same phase/move schedule, and
// the same final ownership; on eligible programs the overlapped run must
// actually overlap (overlap_rounds > 0) and must never be slower than the
// synchronous exchange in simulated time.
func TestOverlapBitIdentical(t *testing.T) {
	plans := overlapPlans(t)
	for name, plan := range plans {
		params := overlapParams[name]
		if params == nil {
			t.Fatalf("no params for %q", name)
		}
		for _, sync := range []bool{false, true} {
			for _, slaves := range []int{2, 4, 8} {
				base := Config{Plan: plan, Params: params, DLB: true, Synchronous: sync}
				cc := cluster.Config{Slaves: slaves}

				on := base
				on.Overlap = OverlapEnabled
				ron, err := Run(on, cc)
				if err != nil {
					t.Fatalf("%s sync=%v slaves=%d overlap on: %v", name, sync, slaves, err)
				}
				off := base
				off.Overlap = OverlapDisabled
				roff, err := Run(off, cc)
				if err != nil {
					t.Fatalf("%s sync=%v slaves=%d overlap off: %v", name, sync, slaves, err)
				}

				if ron.Phases != roff.Phases || ron.Moves != roff.Moves || ron.UnitsMoved != roff.UnitsMoved {
					t.Errorf("%s sync=%v slaves=%d: schedule diverged: phases %d/%d moves %d/%d units %d/%d",
						name, sync, slaves, ron.Phases, roff.Phases, ron.Moves, roff.Moves, ron.UnitsMoved, roff.UnitsMoved)
				}
				if !reflect.DeepEqual(ron.Owner, roff.Owner) {
					t.Errorf("%s sync=%v slaves=%d: final ownership diverged", name, sync, slaves)
				}
				for arr, want := range roff.Final {
					got := ron.Final[arr]
					if got == nil {
						t.Fatalf("%s: array %q missing from overlapped result", name, arr)
					}
					if d := want.MaxAbsDiff(got); d != 0 {
						t.Errorf("%s sync=%v slaves=%d: array %q differs by %g", name, sync, slaves, arr, d)
					}
				}
				rounds := ron.Counters["overlap_rounds"]
				if overlapEligible[name] {
					if rounds == 0 {
						t.Errorf("%s sync=%v slaves=%d: eligible program ran 0 overlap rounds", name, sync, slaves)
					}
					if ron.Elapsed > roff.Elapsed {
						t.Errorf("%s sync=%v slaves=%d: overlapped elapsed %v > synchronous %v",
							name, sync, slaves, ron.Elapsed, roff.Elapsed)
					}
				} else if rounds != 0 {
					t.Errorf("%s sync=%v slaves=%d: ineligible program reported %d overlap rounds",
						name, sync, slaves, rounds)
				}
				if roff.Counters["overlap_rounds"] != 0 {
					t.Errorf("%s sync=%v slaves=%d: overlap off still counted rounds", name, sync, slaves)
				}
			}
		}
		// Once per program: the overlapped result must also match the
		// sequential reference bit for bit.
		runAndVerify(t, plan, params, Config{DLB: true, Overlap: OverlapEnabled}, cluster.Config{Slaves: 4})
	}
}

// TestOverlapTiersBitIdentical runs the eligible jacobi-family programs
// through every execution tier (interp, VM kernel, multicore kernel, AOT)
// with overlap on and off: the split is just two range calls, so every tier
// must agree bit for bit and still overlap.
func TestOverlapTiersBitIdentical(t *testing.T) {
	tiers := []struct {
		tier  string
		cores int
	}{
		{KernelInterp, 1},
		{KernelVM, 1},
		{KernelVM, 2},
		{KernelAOT, 2},
	}
	for _, name := range []string{"jacobi", "jacobi3d"} {
		plan := overlapPlans(t)[name]
		params := overlapParams[name]
		var ref *Result
		for _, tc := range tiers {
			base := Config{Plan: plan, Params: params, DLB: true, Kernel: tc.tier, Cores: tc.cores}
			cc := cluster.Config{Slaves: 4}
			on := base
			on.Overlap = OverlapEnabled
			ron, err := Run(on, cc)
			if err != nil {
				t.Fatalf("%s %s/cores=%d overlap on: %v", name, tc.tier, tc.cores, err)
			}
			off := base
			off.Overlap = OverlapDisabled
			roff, err := Run(off, cc)
			if err != nil {
				t.Fatalf("%s %s/cores=%d overlap off: %v", name, tc.tier, tc.cores, err)
			}
			if ron.Counters["overlap_rounds"] == 0 {
				t.Errorf("%s %s/cores=%d: no overlap rounds", name, tc.tier, tc.cores)
			}
			for arr, want := range roff.Final {
				if d := want.MaxAbsDiff(ron.Final[arr]); d != 0 {
					t.Errorf("%s %s/cores=%d: overlap on/off differ on %q by %g", name, tc.tier, tc.cores, arr, d)
				}
			}
			if ref == nil {
				ref = ron
				continue
			}
			for arr, want := range ref.Final {
				if d := want.MaxAbsDiff(ron.Final[arr]); d != 0 {
					t.Errorf("%s %s/cores=%d: differs from first tier on %q by %g", name, tc.tier, tc.cores, arr, d)
				}
			}
		}
	}
}

// TestOverlapFaultFallback crashes a slave mid-run with overlap enabled:
// recovery must drop any in-flight split round cleanly (no hang, no
// corruption) and the run must still finish with the correct values. The
// same fault plan with overlap off must agree bit for bit.
func TestOverlapFaultFallback(t *testing.T) {
	fp := (&fault.Plan{}).CrashAt(1, 1200*time.Millisecond)
	plan := planFor(t, "jacobi")
	params := map[string]int{"n": 48, "maxiter": 10}

	on := ftConfig(fp)
	on.Overlap = OverlapEnabled
	ron := runAndVerify(t, plan, params, on, cluster.Config{Slaves: 4})
	if ron.Recoveries < 1 {
		t.Fatalf("crash did not trigger a recovery (recoveries=%d)", ron.Recoveries)
	}
	if ron.Counters["overlap_rounds"] == 0 {
		t.Errorf("recovered run reported no overlap rounds")
	}

	off := ftConfig(fp)
	off.Overlap = OverlapDisabled
	roff := runAndVerify(t, plan, params, off, cluster.Config{Slaves: 4})
	if ron.Recoveries != roff.Recoveries {
		t.Errorf("recoveries diverged: %d (on) vs %d (off)", ron.Recoveries, roff.Recoveries)
	}
	for arr, want := range roff.Final {
		if d := want.MaxAbsDiff(ron.Final[arr]); d != 0 {
			t.Errorf("fault run overlap on/off differ on %q by %g", arr, d)
		}
	}
}

// TestBcastTreeMatchesFlat pins the binomial broadcast relay to the flat
// owner-sends-all path: the broadcast programs (LU's pivot column,
// periodic-sor's boundary refresh) must produce bit-identical values either
// way, and both must match the sequential reference.
func TestBcastTreeMatchesFlat(t *testing.T) {
	for _, name := range []string{"lu", "periodic-sor"} {
		plan := overlapPlans(t)[name]
		params := overlapParams[name]
		for _, slaves := range []int{2, 4, 8} {
			cfg := Config{DLB: true}
			tree := runAndVerify(t, plan, params, cfg, cluster.Config{Slaves: slaves})

			flatBcast = true
			flat := runAndVerify(t, plan, params, cfg, cluster.Config{Slaves: slaves})
			flatBcast = false

			for arr, want := range flat.Final {
				got := tree.Final[arr]
				if got == nil {
					t.Fatalf("%s: array %q missing from tree-broadcast result", name, arr)
				}
				if d := want.MaxAbsDiff(got); d != 0 {
					t.Errorf("%s slaves=%d: tree vs flat broadcast differ on %q by %g", name, slaves, arr, d)
				}
			}
		}
	}
}

// BenchmarkGhostLists measures the ghost-list cache: ownership changes only
// at hooks, so per-iteration exchanges reuse the memoized needs/supplies
// lists instead of rescanning the ownership map.
func BenchmarkGhostLists(b *testing.B) {
	o := core.NewBlockOwnership(4096, 8)
	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ghostNeeds(o, 3, 1)
			ghostNeeds(o, 3, -1)
			ghostSupplies(o, 3, 1)
			ghostSupplies(o, 3, -1)
		}
	})
	b.Run("cached", func(b *testing.B) {
		s := &slave{id: 3, own: o}
		for i := 0; i < b.N; i++ {
			s.ghostNeedsCached(1)
			s.ghostNeedsCached(-1)
			s.ghostSuppliesCached(1)
			s.ghostSuppliesCached(-1)
		}
	})
}
