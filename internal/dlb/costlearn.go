package dlb

// Learned per-unit cost model. Slaves measure the busy time each contiguous
// block of owned units actually consumed and ship compact CostBlock
// summaries with their status reports; the master folds them into an EWMA
// weight per unit. Weights are relative to the run's mean unit cost (a
// fresh model is all ones, the dense-uniform prior), so a program whose
// units really are uniform keeps every weight at exactly 1.0 and the
// balancer stays on its legacy code path bit for bit.

// CostBlock summarizes the measured cost of a contiguous unit range
// [Lo, Hi): PerUnit is the mean busy seconds per unit over the range since
// the previous report.
type CostBlock struct {
	Lo, Hi  int
	PerUnit float64
}

const (
	// costEWMAAlpha is the per-report blend factor for unit weights.
	costEWMAAlpha = 0.5
	// costUniformSlack is the active max/min weight ratio (minus one) under
	// which the model is considered uniform and the legacy balancer path is
	// used unchanged.
	costUniformSlack = 0.05
	// maxCostBlocks caps the number of blocks a slave ships per report.
	maxCostBlocks = 64
)

// UnitCostModel holds one learned relative weight per unit. The zero-value
// prior (weight 1 everywhere) encodes the dense-uniform assumption.
type UnitCostModel struct {
	w     []float64
	seen  []bool // unit has been covered by at least one report
	alpha float64
}

// NewUnitCostModel returns a model over `units` units with the uniform
// prior.
func NewUnitCostModel(units int) *UnitCostModel {
	w := make([]float64, units)
	for i := range w {
		w[i] = 1.0
	}
	return &UnitCostModel{w: w, seen: make([]bool, units), alpha: costEWMAAlpha}
}

// Weights exposes the per-unit weight vector (live; do not mutate).
func (m *UnitCostModel) Weights() []float64 { return m.w }

// Weight returns the learned relative cost of one unit.
func (m *UnitCostModel) Weight(u int) float64 { return m.w[u] }

// Observe folds one balancing round's pooled block reports into the model.
// Blocks are normalized by the pool's weighted-mean cost per unit, so
// weights are comparable *across* slaves — essential on block-correlated
// data, where each slave's own holdings look internally uniform and a
// per-report normalization would learn nothing. Pooling cannot fold
// machine speed into the weights because block costs are modeled charges
// (EstFlops × FlopCost), identical per flop on every slave. When every
// block in the pool carries the same PerUnit value the relative cost is
// exactly 1.0 for all covered units (no float division), preserving the
// uniform prior bit for bit on dense programs.
func (m *UnitCostModel) Observe(blocks []CostBlock) {
	if len(blocks) == 0 {
		return
	}
	uniform := true
	var units, weighted float64
	for _, b := range blocks {
		if b.PerUnit != blocks[0].PerUnit {
			uniform = false
		}
		n := float64(b.Hi - b.Lo)
		units += n
		weighted += n * b.PerUnit
	}
	if units <= 0 {
		return
	}
	mean := weighted / units
	for _, b := range blocks {
		rel := 1.0
		if !uniform && mean > 0 {
			rel = b.PerUnit / mean
		}
		for u := b.Lo; u < b.Hi && u < len(m.w); u++ {
			if u < 0 {
				continue
			}
			// The first measurement replaces the prior outright — with as
			// few as one or two balancing rounds, blending toward truth
			// from the uniform prior would leave the first (and possibly
			// only) decision half-blind. Later reports smooth by EWMA.
			if !m.seen[u] {
				m.w[u] = rel
				m.seen[u] = true
				continue
			}
			m.w[u] += m.alpha * (rel - m.w[u])
		}
	}
}

// UniformActive reports whether the weights over the given active units are
// uniform within costUniformSlack. An empty active set is uniform.
func (m *UnitCostModel) UniformActive(active []int) bool {
	if len(active) == 0 {
		return true
	}
	lo, hi := m.w[active[0]], m.w[active[0]]
	for _, u := range active[1:] {
		if m.w[u] < lo {
			lo = m.w[u]
		}
		if m.w[u] > hi {
			hi = m.w[u]
		}
	}
	if lo <= 0 {
		return false
	}
	return hi/lo <= 1+costUniformSlack
}

// ActiveMean is the mean weight over the given active units (1.0 when the
// set is empty, matching the prior).
func (m *UnitCostModel) ActiveMean(active []int) float64 {
	if len(active) == 0 {
		return 1.0
	}
	sum := 0.0
	for _, u := range active {
		sum += m.w[u]
	}
	return sum / float64(len(active))
}

// WeightDone converts a block report into weighted work: the model-weighted
// unit count the report's ranges represent. Used to turn a slave's raw
// "units done" into weighted units so measured rates compare machines, not
// data.
func (m *UnitCostModel) WeightDone(blocks []CostBlock) float64 {
	total := 0.0
	for _, b := range blocks {
		for u := b.Lo; u < b.Hi; u++ {
			if u >= 0 && u < len(m.w) {
				total += m.w[u]
			}
		}
	}
	return total
}
