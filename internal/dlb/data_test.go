package dlb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/loopir"
)

func TestUnitSliceRoundTrip2D(t *testing.T) {
	a := loopir.NewArray("a", []int{4, 5})
	a.Fill(func(idx []int) float64 { return float64(10*idx[0] + idx[1]) })
	// Column 3 (dim 1): elements a[i][3].
	col := unitSlice(a, 1, 3)
	if len(col) != 4 {
		t.Fatalf("column length = %d, want 4", len(col))
	}
	for i, v := range col {
		if v != float64(10*i+3) {
			t.Fatalf("col[%d] = %v, want %v", i, v, 10*i+3)
		}
	}
	b := loopir.NewArray("b", []int{4, 5})
	setUnitSlice(b, 1, 3, col)
	for i := 0; i < 4; i++ {
		if b.At(i, 3) != float64(10*i+3) {
			t.Fatalf("b[%d][3] = %v", i, b.At(i, 3))
		}
		if b.At(i, 0) != 0 {
			t.Fatal("setUnitSlice touched other columns")
		}
	}
	// Row 2 (dim 0): contiguous.
	row := unitSlice(a, 0, 2)
	for j, v := range row {
		if v != float64(20+j) {
			t.Fatalf("row[%d] = %v", j, v)
		}
	}
}

func TestUnitSliceRows(t *testing.T) {
	a := loopir.NewArray("a", []int{6, 6})
	a.Fill(func(idx []int) float64 { return float64(10*idx[0] + idx[1]) })
	// Column 2, rows [1,4): a[1][2], a[2][2], a[3][2].
	vals := unitSliceRows(a, 1, 2, 0, 1, 4)
	want := []float64{12, 22, 32}
	if len(vals) != 3 {
		t.Fatalf("len = %d, want 3", len(vals))
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	b := loopir.NewArray("b", []int{6, 6})
	setUnitSliceRows(b, 1, 2, 0, 1, 4, vals)
	if b.At(2, 2) != 22 || b.At(0, 2) != 0 || b.At(4, 2) != 0 {
		t.Fatal("setUnitSliceRows wrote outside the row range")
	}
}

func TestUnitSliceQuickRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rank := 1 + r.Intn(3)
		dims := make([]int, rank)
		for i := range dims {
			dims[i] = 1 + r.Intn(5)
		}
		dim := r.Intn(rank)
		u := r.Intn(dims[dim])
		a := loopir.NewArray("a", dims)
		for i := range a.Data {
			a.Data[i] = r.Float64()
		}
		vals := unitSlice(a, dim, u)
		if len(vals) != unitSize(a, dim) {
			return false
		}
		b := loopir.NewArray("b", dims)
		setUnitSlice(b, dim, u, vals)
		// Every element with index dim == u must match; all others zero.
		ok := true
		idx := make([]int, rank)
		var walk func(d int)
		walk = func(d int) {
			if d == rank {
				got := b.At(idx...)
				want := 0.0
				if idx[dim] == u {
					want = a.At(idx...)
				}
				if got != want {
					ok = false
				}
				return
			}
			for v := 0; v < dims[d]; v++ {
				idx[d] = v
				walk(d + 1)
			}
		}
		walk(0)
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestUnitCopyOracle pits the contiguous-run fast paths against the
// per-element walk (the oracle) on every 1D/2D/3D shape, distributed dim,
// unit, and row restriction — including out-of-range bounds that must
// clamp, empty selections, and rowDim == dim (which the fast path
// declines and the fallback must still answer).
func TestUnitCopyOracle(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	shapes := [][]int{{6}, {1}, {4, 5}, {5, 4}, {1, 7}, {3, 4, 5}, {2, 2, 2}, {5, 1, 3}}
	for _, dims := range shapes {
		a := loopir.NewArray("a", dims)
		for i := range a.Data {
			a.Data[i] = r.Float64()
		}
		for dim := range dims {
			for u := 0; u < dims[dim]; u++ {
				cases := [][3]int{{-1, 0, 0}} // unrestricted
				for rowDim := range dims {
					rd := dims[rowDim]
					cases = append(cases,
						[3]int{rowDim, 0, rd},           // full range
						[3]int{rowDim, rd / 2, rd},      // suffix
						[3]int{rowDim, 0, (rd + 1) / 2}, // prefix
						[3]int{rowDim, -3, rd + 3},      // clamped
						[3]int{rowDim, rd / 2, rd / 2},  // empty
					)
				}
				for _, c := range cases {
					rowDim, lo, hi := c[0], c[1], c[2]
					var want []float64
					forEachUnitElem(a, dim, u, rowDim, lo, hi, func(flat int) {
						want = append(want, a.Data[flat])
					})
					var got []float64
					if rowDim < 0 {
						got = unitSlice(a, dim, u)
					} else {
						got = unitSliceRows(a, dim, u, rowDim, lo, hi)
					}
					if len(got) != len(want) {
						t.Fatalf("dims=%v dim=%d u=%d row=(%d,%d,%d): len %d, oracle %d",
							dims, dim, u, rowDim, lo, hi, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("dims=%v dim=%d u=%d row=(%d,%d,%d): elem %d = %v, oracle %v",
								dims, dim, u, rowDim, lo, hi, i, got[i], want[i])
						}
					}

					// Scatter: writing the gathered values into a fresh
					// array must exactly reproduce the oracle's writes.
					wantArr := loopir.NewArray("w", dims)
					i := 0
					forEachUnitElem(wantArr, dim, u, rowDim, lo, hi, func(flat int) {
						wantArr.Data[flat] = want[i]
						i++
					})
					gotArr := loopir.NewArray("g", dims)
					if rowDim < 0 {
						setUnitSlice(gotArr, dim, u, got)
					} else {
						setUnitSliceRows(gotArr, dim, u, rowDim, lo, hi, got)
					}
					for f := range wantArr.Data {
						if gotArr.Data[f] != wantArr.Data[f] {
							t.Fatalf("dims=%v dim=%d u=%d row=(%d,%d,%d): scatter flat %d = %v, oracle %v",
								dims, dim, u, rowDim, lo, hi, f, gotArr.Data[f], wantArr.Data[f])
						}
					}
				}
			}
		}
	}
}

// TestGhostListsSortedUnique guards the invariant the sort/dedup removal
// rests on: ghost lists come out ascending and duplicate-free for random
// ownerships.
func TestGhostListsSortedUnique(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		slaves := 2 + r.Intn(5)
		units := slaves + r.Intn(30)
		o := core.NewBlockOwnership(units, slaves)
		for u := 0; u < units; u++ {
			to := r.Intn(slaves)
			if o.OwnerOf(u) != to {
				if err := o.Apply(core.Move{From: o.OwnerOf(u), To: to, Units: []int{u}}); err != nil {
					return false
				}
			}
			if r.Intn(5) == 0 {
				o.Deactivate(u)
			}
		}
		for _, delta := range []int{-2, -1, 1, 2} {
			for s := 0; s < slaves; s++ {
				needs := ghostNeeds(o, s, delta)
				for i := 1; i < len(needs); i++ {
					if needs[i] <= needs[i-1] {
						return false
					}
				}
				sup := ghostSupplies(o, s, delta)
				for i := 1; i < len(sup); i++ {
					if sup[i].Unit <= sup[i-1].Unit {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGhostNeedsAndSuppliesMatch(t *testing.T) {
	// Global invariant: across all slaves, every need has exactly one
	// matching supply, for any ownership and delta.
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		slaves := 2 + r.Intn(5)
		units := slaves + r.Intn(30)
		o := core.NewBlockOwnership(units, slaves)
		// Random scatter + random deactivations.
		for u := 0; u < units; u++ {
			to := r.Intn(slaves)
			if o.OwnerOf(u) != to {
				if err := o.Apply(core.Move{From: o.OwnerOf(u), To: to, Units: []int{u}}); err != nil {
					return false
				}
			}
			if r.Intn(5) == 0 {
				o.Deactivate(u)
			}
		}
		delta := []int{-1, 1}[r.Intn(2)]
		type pair struct{ unit, slave int }
		needs := map[pair]int{}
		supplies := map[pair]int{}
		for s := 0; s < slaves; s++ {
			for _, g := range ghostNeeds(o, s, delta) {
				needs[pair{g, s}]++
			}
			for _, sp := range ghostSupplies(o, s, delta) {
				supplies[pair{sp.Unit, sp.To}]++
			}
		}
		if len(needs) != len(supplies) {
			return false
		}
		for k, n := range needs {
			if n != 1 || supplies[k] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGhostNeedsBlockDistribution(t *testing.T) {
	o := core.NewBlockOwnership(12, 3) // 0-3, 4-7, 8-11
	// delta -1: middle slave needs unit 3 from slave 0.
	needs := ghostNeeds(o, 1, -1)
	if len(needs) != 1 || needs[0] != 3 {
		t.Fatalf("needs = %v, want [3]", needs)
	}
	sup := ghostSupplies(o, 0, -1)
	if len(sup) != 1 || sup[0].Unit != 3 || sup[0].To != 1 {
		t.Fatalf("supplies = %v, want unit 3 -> slave 1", sup)
	}
	// Leftmost slave needs nothing at delta -1; rightmost nothing at +1.
	if n := ghostNeeds(o, 0, -1); len(n) != 0 {
		t.Fatalf("slave 0 needs %v at delta -1", n)
	}
	if n := ghostNeeds(o, 2, 1); len(n) != 0 {
		t.Fatalf("slave 2 needs %v at delta +1", n)
	}
}

func TestContiguousRuns(t *testing.T) {
	units := []int{1, 2, 3, 7, 8, 10}
	runs := contiguousRuns(units, 0, 100)
	want := [][2]int{{1, 4}, {7, 9}, {10, 11}}
	if len(runs) != len(want) {
		t.Fatalf("runs = %v, want %v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("runs = %v, want %v", runs, want)
		}
	}
	// Intersection with bounds.
	runs = contiguousRuns(units, 2, 8)
	want = [][2]int{{2, 4}, {7, 8}}
	if len(runs) != 2 || runs[0] != want[0] || runs[1] != want[1] {
		t.Fatalf("bounded runs = %v, want %v", runs, want)
	}
	if runs := contiguousRuns(nil, 0, 10); len(runs) != 0 {
		t.Fatalf("empty input produced %v", runs)
	}
	if runs := contiguousRuns(units, 20, 30); len(runs) != 0 {
		t.Fatalf("disjoint bounds produced %v", runs)
	}
}

func TestContiguousRunsQuickCoverage(t *testing.T) {
	// The runs exactly cover units ∩ [lo, hi), in order, without overlap.
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		set := map[int]bool{}
		var units []int
		for u := 0; u < 40; u++ {
			if r.Intn(2) == 0 {
				set[u] = true
				units = append(units, u)
			}
		}
		lo := r.Intn(40)
		hi := lo + r.Intn(40-lo+1)
		covered := map[int]bool{}
		prevEnd := -1
		for _, run := range contiguousRuns(units, lo, hi) {
			if run[0] >= run[1] || run[0] < lo || run[1] > hi || run[0] <= prevEnd {
				return false
			}
			prevEnd = run[1] - 1
			for u := run[0]; u < run[1]; u++ {
				if !set[u] || covered[u] {
					return false
				}
				covered[u] = true
			}
		}
		for u := lo; u < hi; u++ {
			if set[u] && !covered[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
