package dlb

import (
	"strconv"

	"repro/internal/cluster"
	"repro/internal/core"
)

// Slave-side fault tolerance. Everything here is inert (s.ft == false) in
// legacy runs, which stay bit-identical.
//
// Epoch scoping: slave-to-slave tags carry an "@<epoch>" suffix, so data
// that was in flight when a recovery rolled the computation back can never
// be consumed by the restarted epoch — the receiver's tag no longer
// matches. Master-bound messages carry an Epoch field instead and are
// filtered by the receiver.

func (s *slave) peerAlive(o int) bool { return s.alive == nil || s.alive[o] }

func (s *slave) commTag(tag string) string {
	if !s.ft {
		return tag
	}
	return tag + "@" + strconv.Itoa(s.epoch)
}

// send is the slave-to-slave send (epoch-scoped tag in FT mode).
func (s *slave) send(to int, tag string, bytes int, data interface{}) {
	s.ep.Send(to, s.commTag(tag), bytes, data)
}

// recvPeer is the slave-to-slave blocking receive.
func (s *slave) recvPeer(from int, tag string) cluster.Msg {
	if !s.ft {
		return s.ep.Recv(from, tag)
	}
	return s.recvFT(from, s.commTag(tag))
}

// recvMaster blocks for a master message of the given tag (FT mode only).
func (s *slave) recvMaster(tag string) cluster.Msg {
	return s.recvFT(cluster.MasterID, tag)
}

// recvFT is the fault-tolerant blocking receive: it polls for the wanted
// message while watching for master control traffic — an EvictMsg (this
// slave was declared dead while stalled; die instead of corrupting the
// recovered epoch) or an AdoptMsg (a recovery epoch restart, which unwinds
// the execution stack back to the epoch loop). It also emits heartbeats
// while blocked, so a slave waiting on a slow peer is never mistaken for a
// crashed one.
func (s *slave) recvFT(from int, tag string) cluster.Msg {
	poll := pollIntervalOf(s.ep)
	for {
		if _, ok := s.ep.TryRecv(cluster.AnySource, abortTag); ok {
			panic("peer process failed") // RunReal only: a peer hit a real bug
		}
		if _, ok := s.ep.TryRecv(cluster.MasterID, "evict"); ok {
			panic(evictExit{})
		}
		if m, ok := s.ep.TryRecv(cluster.MasterID, "recover"); ok {
			panic(epochRestart{m.Data.(AdoptMsg)})
		}
		if m, ok := s.ep.TryRecv(from, tag); ok {
			return m
		}
		s.maybeHeartbeat()
		s.ep.Sleep(poll)
	}
}

// maybeHeartbeat sends a sign of life if one is due. Called at hook sites
// and from blocked-receive poll loops.
func (s *slave) maybeHeartbeat() {
	now := s.ep.Now()
	if now-s.lastHB < s.hbEvery {
		return
	}
	s.lastHB = now
	s.ep.Send(cluster.MasterID, "hb", 48, HeartbeatMsg{Epoch: s.epoch, Phase: s.phase, HookIndex: s.hookVisit})
}

// designated reports whether this slave is the lowest-id live slave — the
// one that ships the shared (replicated) state in its checkpoint part.
func (s *slave) designated() bool {
	for o := 0; o < s.slaves; o++ {
		if s.peerAlive(o) {
			return o == s.id
		}
	}
	return false
}

// maybeCheckpoint answers the CheckpointRequestMsg paired with the
// instruction just consumed and applied at hook hv (wantSeq, from
// InstrMsg.CkptSeq; 0 means none rode with it). Every slave consumes the
// paired instruction at the same hook visit, so answering exactly that
// request — rather than whatever request happens to be in the mailbox —
// yields a consistent cut (no slave-to-slave message is ever in flight
// across identical schedule positions) even when the master has already
// raced ahead and issued the next round's request before this process was
// scheduled. FIFO delivery puts the request ahead of its instruction, so a
// wanted request is already present; absence would be a transport-ordering
// bug, surfaced by the blocking poll below rather than a corrupt snapshot.
func (s *slave) maybeCheckpoint(hv, wantSeq int) {
	if wantSeq == 0 {
		return
	}
	var req CheckpointRequestMsg
	for {
		// recvFT keeps heartbeats flowing and honors evict/recover while
		// waiting (the wanted request is normally already in the mailbox).
		req = s.recvMaster("ckptreq").Data.(CheckpointRequestMsg)
		if req.Epoch == s.epoch && req.Seq == wantSeq {
			break
		}
		// Stale pre-recovery or superseded request: drop and keep waiting.
	}
	plan := s.exec.Plan
	ck := CheckpointMsg{
		Epoch:       s.epoch,
		Seq:         req.Seq,
		Slave:       s.id,
		Hook:        hv,
		Phase:       s.phase,
		NextContact: s.nextContact,
		Owned:       map[string]map[int][]float64{},
	}
	bytes := msgHeader
	for arr, dim := range plan.DistArrays {
		a := s.inst.Arrays[arr]
		units := map[int][]float64{}
		for _, u := range s.own.Owned(s.id) {
			vals := unitSlice(a, dim, u)
			units[u] = vals
			bytes += 8*len(vals) + 16
		}
		ck.Owned[arr] = units
	}
	// Per-slave reduction state: mid-interval partial accumulations
	// differ across slaves and must be restored per slave.
	if len(plan.Reductions) > 0 {
		ck.Red = map[string][]float64{}
		for arr := range s.redSnap {
			vals := append([]float64(nil), s.inst.Arrays[arr].Data...)
			ck.Red[arr] = vals
			bytes += 8 * len(vals)
		}
	}
	if s.designated() {
		ck.Meta = true
		ck.Slaves = s.own.Slaves()
		ck.Owner, ck.Active = s.own.Snapshot()
		bytes += 9 * len(ck.Owner)
		ck.Replicated = map[string][]float64{}
		for _, arr := range plan.Replicated {
			vals := append([]float64(nil), s.inst.Arrays[arr].Data...)
			ck.Replicated[arr] = vals
			bytes += 8 * len(vals)
		}
		ck.RedSnap = map[string][]float64{}
		for arr, snap := range s.redSnap {
			ck.RedSnap[arr] = append([]float64(nil), snap...)
			bytes += 8 * len(snap)
		}
	}
	s.ep.Send(cluster.MasterID, "ckpt", bytes, ck)
}

// runEpoch executes the step tree once. In FT mode an epochRestart panic —
// raised by recvFT when a recovery AdoptMsg arrives — is caught here, the
// checkpoint state is restored, and false is returned so the caller
// re-enters the tree (fast-forwarding to the checkpoint hook).
func (s *slave) runEpoch() (completed bool) {
	if s.ft {
		defer func() {
			if r := recover(); r != nil {
				er, ok := r.(epochRestart)
				if !ok {
					panic(r)
				}
				s.applyRecover(er.msg)
			}
		}()
	}
	s.execSteps(s.exec.Plan.Steps)
	// Announce termination: with data-dependent break conditions the number
	// of balancing phases is only known here, at run time (§4.1).
	s.ep.Send(cluster.MasterID, "done", 64, StatusMsg{
		Phase:     s.phase,
		HookIndex: s.hookVisit,
		Done:      true,
		Epoch:     s.epoch,
	})
	if s.ft {
		// Wait for the master to commit completion: a slave that finished can
		// still be rolled back (recvFT catches the AdoptMsg) if a peer died
		// before the master saw every survivor's "done".
		s.recvMaster("finack")
	}
	return true
}

// applyRecover installs a recovery epoch: restore the checkpointed arrays,
// ownership and reduction state, adopt the (possibly repaired and grown)
// membership, and arm the fast-forward that replays control flow up to the
// checkpoint hook.
func (s *slave) applyRecover(a AdoptMsg) {
	plan := s.exec.Plan
	s.epoch = a.Epoch
	s.slaves = a.Slaves
	s.alive = append([]bool(nil), a.Alive...)
	s.own = core.OwnershipFromMap(a.Owner, a.Active, a.Slaves)
	s.invalidateOwned()

	for arr := range plan.DistArrays {
		s.inst.Arrays[arr].Fill(nil)
	}
	for arr, units := range a.Owned {
		dim := plan.DistArrays[arr]
		for u, vals := range units {
			setUnitSlice(s.inst.Arrays[arr], dim, u, vals)
		}
	}
	for arr, vals := range a.Replicated {
		copy(s.inst.Arrays[arr].Data, vals)
	}
	// Per-slave reduction values override the shared replicated copy.
	for arr, vals := range a.Red {
		copy(s.inst.Arrays[arr].Data, vals)
	}
	s.redSnap = map[string][]float64{}
	for arr, vals := range a.RedSnap {
		s.redSnap[arr] = append([]float64(nil), vals...)
	}

	s.phase = a.Phase
	s.nextContact = a.NextContact
	s.hookVisit = 0
	s.ff = a.Hook >= 0
	s.ffUntil = a.Hook
	s.skipInstrOnce = !s.cfg.Synchronous && a.Hook >= 0
	s.unitsDone = 0
	s.busyMark = s.ep.Busy()
	s.lastMove, s.lastInter = 0, 0
	s.blockLo, s.blockHi = 0, 0
	s.lastHB = s.ep.Now()
	s.env = map[string]int{}
	for k, v := range s.exec.Params {
		s.env[k] = v
	}
}

// runJoiner registers this idle node with the master at joinAt and waits
// for admission (an AdoptMsg folding it into a recovery epoch). It returns
// false if the run ended first (the master's shutdown EvictMsg).
func (s *slave) runJoiner() bool {
	if d := s.joinAt - s.ep.Now(); d > 0 {
		s.ep.Sleep(d)
	}
	s.ep.Send(cluster.MasterID, "join", 64, JoinMsg{Slave: s.id})
	poll := pollIntervalOf(s.ep)
	for {
		if _, ok := s.ep.TryRecv(cluster.MasterID, "evict"); ok {
			return false
		}
		if m, ok := s.ep.TryRecv(cluster.MasterID, "recover"); ok {
			s.applyRecover(m.Data.(AdoptMsg))
			return true
		}
		s.ep.Sleep(poll)
	}
}
