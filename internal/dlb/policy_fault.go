package dlb

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
)

// ftPolicy is the master-side fault-tolerance layer: lease-based failure
// detection, periodic consistent checkpoints, recovery epochs, and elastic
// admission of late-joining nodes — the paper's runtime extended exactly as
// resizable-computation work treats it: a policy over the execution core,
// not a second runtime.
type ftPolicy struct {
	log *fault.Log
	// resume, when set, seeds the run from a carried-in checkpoint (a
	// preempted run continuing under a fresh master) instead of the
	// synthetic checkpoint 0; Started consumes it by opening a recovery
	// epoch before the first round.
	resume *fault.Checkpoint

	det        *fault.Detector
	pol        fault.CkptPolicy
	ck         *fault.Checkpoint // latest committed snapshot
	pending    *pendingCkpt
	seq        int
	lastCkptAt time.Duration

	epoch       int
	inbox       map[int][]slaveEvent // per-slave FIFO of round events
	alive       []bool               // len total
	admitted    []bool               // joiner slots folded into the ownership map
	queued      []bool               // joiner slots waiting for admission
	joinQueue   []int
	wantCkpt    bool      // a join forces a fresh checkpoint
	lastRates   []float64 // last filtered rates: reassignment weights
	lastRoundAt time.Duration
	epochRounds int // contact rounds since the current epoch started
}

// pendingCkpt collects the parts of an in-flight checkpoint.
type pendingCkpt struct {
	seq   int
	want  []int // the alive participants when the request went out
	parts map[int]CheckpointMsg
}

// slaveEvent is one entry of a slave's round stream: a status report or its
// termination announcement.
type slaveEvent struct {
	st   StatusMsg
	done bool
}

func (p *ftPolicy) Init(e *engine) {
	p.alive = make([]bool, e.total)
	for i := 0; i < e.initial; i++ {
		p.alive[i] = true
	}
	p.inbox = map[int][]slaveEvent{}
	p.admitted = make([]bool, e.total)
	p.queued = make([]bool, e.total)
	p.det = fault.NewDetector(e.cfg.Detect, e.total)
	p.pol = e.cfg.Ckpt
	if p.resume != nil {
		p.ck = p.resume
		p.seq = p.resume.Seq
	} else {
		p.initialCkpt(e)
	}
}

func (p *ftPolicy) Started(e *engine) {
	now := e.ep.Now()
	p.det.Reset(now)
	p.lastCkptAt = now
	p.lastRoundAt = now
	if p.resume != nil {
		// Resuming a preempted run: the first act of the epoch is a
		// recovery from the carried-in snapshot — the same path a failure
		// takes, with nobody dead. The recovery AdoptMsg re-ships every
		// slave's state and fast-forwards it to the cut hook; the empty
		// scatter that preceded it is discarded.
		p.resume = nil
		p.recoverFrom(e, nil, nil)
		e.res.Counters.Add("resumes", 1)
	}
}

// initialCkpt builds the synthetic checkpoint 0 from the master's initial
// arrays: a recovery before the first committed snapshot restarts the whole
// computation (Hook -1, no fast-forward).
func (p *ftPolicy) initialCkpt(e *engine) {
	ck := &fault.Checkpoint{Seq: 0, Hook: -1, Slaves: e.own.Slaves()}
	ck.Owner, ck.Active = e.own.Snapshot()
	ck.Dist = map[string]map[int][]float64{}
	for arr, dim := range e.plan.DistArrays {
		a := e.inst.Arrays[arr]
		units := map[int][]float64{}
		for u := 0; u < e.exec.Units; u++ {
			units[u] = unitSlice(a, dim, u)
		}
		ck.Dist[arr] = units
	}
	ck.Replicated = map[string][]float64{}
	for _, arr := range e.plan.Replicated {
		ck.Replicated[arr] = append([]float64(nil), e.inst.Arrays[arr].Data...)
	}
	ck.RedSnap = map[string][]float64{}
	ck.Red = map[int]map[string][]float64{}
	for _, r := range e.plan.Reductions {
		ck.RedSnap[r.Array] = append([]float64(nil), e.inst.Arrays[r.Array].Data...)
	}
	for s := 0; s < e.own.Slaves(); s++ {
		red := map[string][]float64{}
		for arr, vals := range ck.RedSnap {
			red[arr] = append([]float64(nil), vals...)
		}
		ck.Red[s] = red
	}
	p.ck = ck
}

// Participants lists the alive slaves of the current membership, ascending.
func (p *ftPolicy) Participants(e *engine) []int {
	var out []int
	for id := 0; id < e.own.Slaves(); id++ {
		if p.alive[id] {
			out = append(out, id)
		}
	}
	return out
}

func (p *ftPolicy) Epoch() int { return p.epoch }

func (p *ftPolicy) RoundObserved(e *engine) {
	now := e.ep.Now()
	p.det.ObserveInterval(now - p.lastRoundAt)
	p.lastRoundAt = now
}

func (p *ftPolicy) NoteRates(rates []float64) { p.lastRates = rates }

func (p *ftPolicy) RoundSent(*engine) { p.epochRounds++ }

// CollectRound gathers one full round of status reports. While waiting it
// processes heartbeats, checkpoint parts and join requests, and evicts
// slaves whose lease expires.
func (p *ftPolicy) CollectRound(e *engine) (map[int]StatusMsg, bool) {
	raw := map[int]StatusMsg{}
	dones := 0
	for {
		// Pop queued round events, at most one per slave: the pump receives
		// from AnySource, so a fast slave's next-round status (or its done)
		// can arrive while this round is still collecting. The per-slave FIFO
		// restores the round alignment a per-slave Recv would give.
		for _, id := range p.Participants(e) {
			if e.done[id] {
				continue
			}
			if _, got := raw[id]; got {
				continue
			}
			q := p.inbox[id]
			if len(q) == 0 {
				continue
			}
			ev := q[0]
			p.inbox[id] = q[1:]
			if ev.done {
				if len(raw) > 0 {
					panic("dlb: slave schedules diverged (mixed status/done round)")
				}
				dones++
				e.done[id] = true
				e.doneCount++
				e.noteDispatch(ev.st)
				// The computation ended before the next contact hook, so an
				// outstanding checkpoint request will never be answered.
				p.pending = nil
			} else {
				if dones > 0 {
					panic("dlb: slave schedules diverged (mixed status/done round)")
				}
				raw[id] = ev.st
			}
		}
		missing := p.missingFrom(e, raw)
		if len(missing) == 0 {
			if e.remaining() == 0 {
				return nil, true
			}
			return raw, true
		}
		wait := p.det.Deadline(missing[0]) - e.ep.Now()
		for _, id := range missing[1:] {
			if d := p.det.Deadline(id) - e.ep.Now(); d < wait {
				wait = d
			}
		}
		if wait > 0 {
			if msg, ok := recvTimeout(e.ep, cluster.AnySource, "", wait); ok {
				if p.handleMsg(e, msg) {
					return nil, false
				}
				continue
			}
		} else if msg, ok := e.ep.TryRecv(cluster.AnySource, ""); ok {
			// Deadlines passed, but drain already-delivered traffic first: a
			// sign of life may be sitting in the mailbox.
			if p.handleMsg(e, msg) {
				return nil, false
			}
			continue
		}
		if dead := p.det.Expired(e.ep.Now(), missing); len(dead) > 0 {
			p.recoverFrom(e, dead, nil)
			return nil, false
		}
	}
}

// missingFrom lists participants whose status for this round is still
// outstanding (done slaves only heartbeat; they are watched via gather).
func (p *ftPolicy) missingFrom(e *engine, raw map[int]StatusMsg) []int {
	var out []int
	for _, id := range p.Participants(e) {
		if e.done[id] {
			continue
		}
		if _, ok := raw[id]; !ok {
			out = append(out, id)
		}
	}
	return out
}

// handleMsg processes one message during round collection. Status and done
// messages are queued per slave (CollectRound pops them round-aligned); the
// function returns true when the message triggered a recovery (so the caller
// must void the round).
func (p *ftPolicy) handleMsg(e *engine, msg cluster.Msg) bool {
	now := e.ep.Now()
	from := msg.From
	aliveFrom := from >= 0 && from < len(p.alive) && p.alive[from]
	switch msg.Tag {
	case "status":
		st := msg.Data.(StatusMsg)
		if !aliveFrom {
			return false // a zombie's report; its eviction is in flight
		}
		p.det.Observe(from, now)
		if st.Epoch != p.epoch {
			return false // stale pre-recovery report
		}
		p.inbox[from] = append(p.inbox[from], slaveEvent{st: st})
	case "done":
		st := msg.Data.(StatusMsg)
		if !aliveFrom {
			return false
		}
		p.det.Observe(from, now)
		if st.Epoch != p.epoch {
			return false
		}
		p.inbox[from] = append(p.inbox[from], slaveEvent{st: st, done: true})
	case "hb":
		if aliveFrom {
			p.det.Observe(from, now)
		}
	case "ckpt":
		part := msg.Data.(CheckpointMsg)
		if !aliveFrom {
			return false
		}
		p.det.Observe(from, now)
		if part.Epoch != p.epoch || p.pending == nil || part.Seq != p.pending.seq {
			return false
		}
		p.pending.parts[part.Slave] = part
		if len(p.pending.parts) == len(p.pending.want) {
			p.commitCkpt(e)
			if len(p.joinQueue) > 0 {
				// Admission rides on the snapshot just taken: survivors roll
				// back only to the state of a moment ago.
				js := p.joinQueue
				p.joinQueue = nil
				p.recoverFrom(e, nil, js)
				return true
			}
		}
	case "join":
		j := msg.Data.(JoinMsg)
		if j.Slave >= e.initial && j.Slave < e.total && !p.admitted[j.Slave] && !p.queued[j.Slave] {
			p.queued[j.Slave] = true
			p.joinQueue = append(p.joinQueue, j.Slave)
			p.wantCkpt = true
			p.log.Add(now, fault.LogJoin, j.Slave, "registered, awaiting admission")
		}
	default:
		panic(fmt.Sprintf("dlb: master: unexpected tag %q from %d", msg.Tag, from))
	}
	return false
}

// CheckpointSeq decides whether a checkpoint request precedes this round's
// instruction: FIFO delivery pins the consistent cut to the hook where the
// instruction is consumed. It can only ride on rounds whose instruction the
// slaves actually consume — pipelined phase 0 and the first post-recovery
// contact are skipped.
func (p *ftPolicy) CheckpointSeq(e *engine, phase int, ids []int) int {
	consumed := e.cfg.Synchronous || (phase > 0 && (p.epochRounds > 0 || p.ck.Hook < 0))
	if !consumed || p.pending != nil || e.doneCount != 0 {
		return 0
	}
	// lastRoundAt is this round's observation time (set pre-charge by
	// RoundObserved), matching the clock the commit stamps lastCkptAt with.
	// A pending preemption forces a cut at the first eligible round — the
	// stop snapshot should be as fresh as the protocol allows. Under the
	// learned cost model the "time since last checkpoint" the policy
	// throttles on is replaced by the weighted work at risk converted to
	// time at the current aggregate rate: on irregular programs wall time
	// between rounds is a poor proxy for how much recomputation a failure
	// would cost.
	at := p.lastRoundAt
	if rt, ok := e.riskTime(); ok {
		at = p.lastCkptAt + rt
	}
	if !p.wantCkpt && !e.cfg.Preempt.Requested() && !p.pol.Should(at, p.lastCkptAt, e.setup.ckptCost) {
		return 0
	}
	p.seq++
	p.wantCkpt = false
	p.pending = &pendingCkpt{seq: p.seq, want: ids, parts: map[int]CheckpointMsg{}}
	for _, id := range ids {
		e.ep.Send(id, "ckptreq", 48, CheckpointRequestMsg{Epoch: p.epoch, Seq: p.seq})
	}
	return p.seq
}

// commitCkpt merges the collected parts into the new authoritative
// checkpoint.
func (p *ftPolicy) commitCkpt(e *engine) {
	pk := p.pending
	p.pending = nil
	now := e.ep.Now()
	var metaPart *CheckpointMsg
	hook := -2
	for _, id := range pk.want {
		part := pk.parts[id]
		if hook == -2 {
			hook = part.Hook
		} else if part.Hook != hook {
			panic(fmt.Sprintf("dlb: inconsistent checkpoint cut: hooks %d and %d", hook, part.Hook))
		}
		if part.Meta {
			cp := part
			metaPart = &cp
		}
	}
	if metaPart == nil {
		panic("dlb: checkpoint committed without a designated meta part")
	}
	ck := &fault.Checkpoint{
		Seq:         pk.seq,
		Hook:        metaPart.Hook,
		Phase:       metaPart.Phase,
		NextContact: metaPart.NextContact,
		At:          now,
		Slaves:      metaPart.Slaves,
		Owner:       metaPart.Owner,
		Active:      metaPart.Active,
		Replicated:  metaPart.Replicated,
		RedSnap:     metaPart.RedSnap,
		Dist:        map[string]map[int][]float64{},
		Red:         map[int]map[string][]float64{},
	}
	for arr := range e.plan.DistArrays {
		ck.Dist[arr] = map[int][]float64{}
	}
	for _, id := range pk.want {
		part := pk.parts[id]
		for arr, units := range part.Owned {
			for u, vals := range units {
				ck.Dist[arr][u] = vals
			}
		}
		if part.Red != nil {
			ck.Red[id] = part.Red
		}
	}
	for arr, units := range ck.Dist {
		if len(units) != e.exec.Units {
			panic(fmt.Sprintf("dlb: checkpoint %d covers %d/%d units of %s", pk.seq, len(units), e.exec.Units, arr))
		}
	}
	p.ck = ck
	e.res.Checkpoints++
	e.res.Counters.Add("checkpoints", 1)
	p.lastCkptAt = now
	e.wRisk = 0 // the committed cut retires the weighted work at risk
	p.log.Add(now, fault.LogCheckpoint, -1, "seq %d committed at hook %d", pk.seq, ck.Hook)
	if e.cfg.Preempt.Requested() {
		p.stopForPreemption(e)
	}
}

// stopForPreemption releases the cluster right after a checkpoint commit:
// every participant (and every never-admitted joiner slot) is evicted, the
// snapshot is published on the Result, and the master loop unwinds with
// ErrPreempted. The evicted slaves see an ordinary eviction — on netrun
// the daemon session ends with ErrEvicted and the slave is immediately
// free for a new lease.
func (p *ftPolicy) stopForPreemption(e *engine) {
	now := e.ep.Now()
	for _, id := range p.Participants(e) {
		e.ep.Send(id, "evict", 48, EvictMsg{Epoch: p.epoch, Reason: "preempted"})
	}
	for slot := e.initial; slot < e.total; slot++ {
		if !p.admitted[slot] {
			e.ep.Send(slot, "evict", 48, EvictMsg{Epoch: p.epoch, Reason: "preempted"})
		}
	}
	e.res.Checkpoint = p.ck
	e.res.Counters.Add("preemptions", 1)
	p.log.Add(now, fault.LogEvict, -1, "preempted: released at checkpoint %d (hook %d)", p.ck.Seq, p.ck.Hook)
	panic(preemptStop{})
}

// recoverFrom starts a recovery epoch: evict newDead, rebuild the ownership
// map from the committed checkpoint (repairing dead slots and folding in
// admitted joiners), rebuild the balancer, and re-scatter the checkpoint
// state with AdoptMsgs.
func (p *ftPolicy) recoverFrom(e *engine, newDead, admitIDs []int) {
	now := e.ep.Now()
	for _, dd := range newDead {
		p.alive[dd] = false
		if e.done[dd] {
			e.done[dd] = false
			e.doneCount--
		}
		e.ep.Send(dd, "evict", 48, EvictMsg{Epoch: p.epoch, Reason: "lease expired"})
		e.res.Evicted = append(e.res.Evicted, dd)
		e.res.Counters.Add("evictions", 1)
		p.log.Add(now, fault.LogEvict, dd, "lease %.2fs expired", p.det.Lease().Seconds())
	}
	p.epoch++
	ck := p.ck

	own := core.OwnershipFromMap(ck.Owner, ck.Active, ck.Slaves)
	// Re-grow the map for slots admitted since the snapshot, then fold in
	// the new admissions. Joiner slots are numbered in registration-time
	// order, so admission in id order keeps ownership slot == cluster id; a
	// gap (an earlier joiner not yet registered) defers the later ones.
	for slot := ck.Slaves; slot < e.total; slot++ {
		if p.admitted[slot] {
			own.AddSlave()
			continue
		}
		wanted := false
		for _, j := range admitIDs {
			if j == slot {
				wanted = true
			}
		}
		if !wanted {
			break
		}
		own.AddSlave()
		p.admitted[slot] = true
		p.alive[slot] = true
		e.res.Joined = append(e.res.Joined, slot)
		e.res.Counters.Add("joins", 1)
		p.log.Add(now, fault.LogAdopt, slot, "admitted into epoch %d", p.epoch)
	}
	for _, j := range admitIDs {
		if !p.admitted[j] {
			p.joinQueue = append(p.joinQueue, j) // blocked by a gap; retry later
		}
	}

	slots := own.Slaves()
	aliveMask := append([]bool(nil), p.alive[:slots]...)
	anyAlive := false
	for _, a := range aliveMask {
		anyAlive = anyAlive || a
	}
	if !anyAlive {
		panic("dlb: recovery impossible: no surviving slaves")
	}
	for dd := 0; dd < slots; dd++ {
		if !p.alive[dd] && len(own.Owned(dd)) > 0 {
			if _, err := core.ReassignDead(own, dd, e.plan.Restricted, p.lastRates, aliveMask); err != nil {
				panic(fmt.Sprintf("dlb: recovery: %v", err))
			}
		}
	}
	e.own = own
	// Fresh balancer: the rate-filter history predates the rollback.
	e.bal = e.setup.newBalancerFor(own, slots)
	e.bal.SetAlive(aliveMask)
	e.topo.rebuild(e, slots, aliveMask)

	for i := range e.done {
		e.done[i] = false
	}
	e.doneCount = 0
	p.inbox = map[int][]slaveEvent{} // queued events predate the epoch bump
	p.pending = nil
	p.wantCkpt = len(p.joinQueue) > 0
	p.lastCkptAt = now
	p.epochRounds = 0

	owner, active := own.Snapshot()
	for _, id := range p.Participants(e) {
		adopt := AdoptMsg{
			Epoch:       p.epoch,
			Seq:         ck.Seq,
			Hook:        ck.Hook,
			Phase:       ck.Phase,
			NextContact: ck.NextContact,
			Slaves:      slots,
			Alive:       append([]bool(nil), aliveMask...),
			Owner:       owner,
			Active:      active,
			Owned:       map[string]map[int][]float64{},
			Replicated:  ck.Replicated,
			RedSnap:     ck.RedSnap,
		}
		bytes := msgHeader + 9*len(owner)
		for arr := range e.plan.DistArrays {
			src := ck.Dist[arr]
			units := map[int][]float64{}
			for _, u := range own.Owned(id) {
				units[u] = src[u]
				bytes += 8*len(src[u]) + 16
			}
			// Ghost data under the repaired map, from the cut-time owners:
			// exchange ghosts are same-row reads of previous-sweep values,
			// which the snapshot preserves; pipeline ghosts are re-supplied
			// by re-execution.
			for _, delta := range e.plan.GhostDeltas {
				for _, g := range ghostNeeds(own, id, delta) {
					if _, dup := units[g]; !dup {
						units[g] = src[g]
						bytes += 8*len(src[g]) + 16
					}
				}
			}
			adopt.Owned[arr] = units
		}
		if len(e.plan.Reductions) > 0 {
			adopt.Red = p.redFor(id, ck, aliveMask)
			for _, vals := range adopt.Red {
				bytes += 8 * len(vals)
			}
		}
		for _, vals := range ck.Replicated {
			bytes += 8 * len(vals)
		}
		for _, vals := range ck.RedSnap {
			bytes += 8 * len(vals)
		}
		e.ep.Send(id, "recover", bytes, adopt)
	}
	e.res.Recoveries++
	e.res.Counters.Add("recoveries", 1)
	p.log.Add(now, fault.LogRecover, -1, "epoch %d from checkpoint %d (hook %d)", p.epoch, ck.Seq, ck.Hook)
	p.det.Reset(now)
	p.lastRoundAt = now
}

// redFor builds one slave's restored reduction arrays. Mid-interval partial
// accumulations differ per slave, so each slave gets its own snapshot back;
// the deltas dead slaves had accumulated since the last Combine are folded
// into the lowest-id survivor so the epoch's next Combine still totals the
// same sum. Joiners start at the shared snapshot (delta zero).
func (p *ftPolicy) redFor(id int, ck *fault.Checkpoint, alive []bool) map[string][]float64 {
	out := map[string][]float64{}
	if base, ok := ck.Red[id]; ok {
		for arr, vals := range base {
			out[arr] = append([]float64(nil), vals...)
		}
	} else {
		for arr, vals := range ck.RedSnap {
			out[arr] = append([]float64(nil), vals...)
		}
	}
	lowest := -1
	for i, a := range alive {
		if a {
			lowest = i
			break
		}
	}
	if id == lowest {
		for dd := 0; dd < len(alive); dd++ {
			if alive[dd] {
				continue
			}
			red, ok := ck.Red[dd]
			if !ok {
				continue
			}
			for arr, vals := range red {
				snap := ck.RedSnap[arr]
				dst := out[arr]
				for i := range vals {
					dst[i] += vals[i] - snap[i]
				}
			}
		}
	}
	return out
}

// Commit releases the membership: from here on no recovery is possible, so
// slaves may ship their final data and stop (see FinAckMsg).
func (p *ftPolicy) Commit(e *engine) {
	for id := 0; id < e.own.Slaves(); id++ {
		if p.alive[id] {
			e.ep.Send(id, "finack", 32, FinAckMsg{Epoch: p.epoch})
		}
	}
	// Release joiner processes that were never admitted (including ones that
	// have not registered yet: the eviction waits in their mailbox).
	for slot := e.initial; slot < e.total; slot++ {
		if !p.admitted[slot] {
			e.ep.Send(slot, "evict", 48, EvictMsg{Epoch: p.epoch, Reason: "run complete"})
		}
	}
}

func (p *ftPolicy) GatherTimeout(*engine) time.Duration { return 2 * p.det.Lease() }

// ftSlaveFault is the slave-side fault-tolerance layer.
//
// Epoch scoping: slave-to-slave tags carry an "@<epoch>" suffix, so data
// that was in flight when a recovery rolled the computation back can never
// be consumed by the restarted epoch — the receiver's tag no longer
// matches. Master-bound messages carry an Epoch field instead and are
// filtered by the receiver.
type ftSlaveFault struct{}

func (ftSlaveFault) commTag(s *slave, tag string) string {
	return tag + "@" + strconv.Itoa(s.epoch)
}

func (f ftSlaveFault) recvPeer(s *slave, from int, tag string) cluster.Msg {
	return f.recvFT(s, from, f.commTag(s, tag))
}

// recvFT is the fault-tolerant blocking receive: it polls for the wanted
// message while watching for master control traffic — an EvictMsg (this
// slave was declared dead while stalled; die instead of corrupting the
// recovered epoch) or an AdoptMsg (a recovery epoch restart, which unwinds
// the execution stack back to the epoch loop). It also emits heartbeats
// while blocked, so a slave waiting on a slow peer is never mistaken for a
// crashed one.
func (f ftSlaveFault) recvFT(s *slave, from int, tag string) cluster.Msg {
	poll := pollIntervalOf(s.ep)
	for {
		if _, ok := s.ep.TryRecv(cluster.AnySource, abortTag); ok {
			panic("peer process failed") // RunReal only: a peer hit a real bug
		}
		if _, ok := s.ep.TryRecv(cluster.MasterID, "evict"); ok {
			panic(evictExit{})
		}
		if m, ok := s.ep.TryRecv(cluster.MasterID, "recover"); ok {
			panic(epochRestart{m.Data.(AdoptMsg)})
		}
		if m, ok := s.ep.TryRecv(from, tag); ok {
			return m
		}
		f.heartbeat(s)
		s.ep.Sleep(poll)
	}
}

func (f ftSlaveFault) recvInstr(s *slave) InstrMsg {
	for {
		instr := f.recvFT(s, cluster.MasterID, "instr").Data.(InstrMsg)
		if instr.Epoch == s.epoch {
			return instr
		}
		// Stale pre-recovery instruction still in flight: drop it.
	}
}

// heartbeat sends a sign of life if one is due. Called at hook sites and
// from blocked-receive poll loops.
func (ftSlaveFault) heartbeat(s *slave) {
	now := s.ep.Now()
	if now-s.lastHB < s.hbEvery {
		return
	}
	s.lastHB = now
	s.ep.Send(cluster.MasterID, "hb", 48, HeartbeatMsg{Epoch: s.epoch, Phase: s.phase, HookIndex: s.hookVisit})
}

func (ftSlaveFault) peerAlive(s *slave, o int) bool { return s.alive == nil || s.alive[o] }

func (f ftSlaveFault) designated(s *slave) bool {
	for o := 0; o < s.slaves; o++ {
		if f.peerAlive(s, o) {
			return o == s.id
		}
	}
	return false
}

// checkpoint answers the CheckpointRequestMsg paired with the instruction
// just consumed and applied at hook hv (wantSeq, from InstrMsg.CkptSeq; 0
// means none rode with it). Every slave consumes the paired instruction at
// the same hook visit, so answering exactly that request — rather than
// whatever request happens to be in the mailbox — yields a consistent cut
// (no slave-to-slave message is ever in flight across identical schedule
// positions) even when the master has already raced ahead and issued the
// next round's request before this process was scheduled. FIFO delivery
// puts the request ahead of its instruction, so a wanted request is already
// present; absence would be a transport-ordering bug, surfaced by the
// blocking poll below rather than a corrupt snapshot.
func (f ftSlaveFault) checkpoint(s *slave, hv, wantSeq int) {
	if wantSeq == 0 {
		return
	}
	var req CheckpointRequestMsg
	for {
		// recvFT keeps heartbeats flowing and honors evict/recover while
		// waiting (the wanted request is normally already in the mailbox).
		req = f.recvFT(s, cluster.MasterID, "ckptreq").Data.(CheckpointRequestMsg)
		if req.Epoch == s.epoch && req.Seq == wantSeq {
			break
		}
		// Stale pre-recovery or superseded request: drop and keep waiting.
	}
	plan := s.exec.Plan
	ck := CheckpointMsg{
		Epoch:       s.epoch,
		Seq:         req.Seq,
		Slave:       s.id,
		Hook:        hv,
		Phase:       s.phase,
		NextContact: s.nextContact,
		Owned:       map[string]map[int][]float64{},
	}
	bytes := msgHeader
	for arr, dim := range plan.DistArrays {
		a := s.inst.Arrays[arr]
		units := map[int][]float64{}
		for _, u := range s.own.Owned(s.id) {
			vals := unitSlice(a, dim, u)
			units[u] = vals
			bytes += 8*len(vals) + 16
		}
		ck.Owned[arr] = units
	}
	// Per-slave reduction state: mid-interval partial accumulations
	// differ across slaves and must be restored per slave.
	if len(plan.Reductions) > 0 {
		ck.Red = map[string][]float64{}
		for arr := range s.redSnap {
			vals := append([]float64(nil), s.inst.Arrays[arr].Data...)
			ck.Red[arr] = vals
			bytes += 8 * len(vals)
		}
	}
	if f.designated(s) {
		ck.Meta = true
		ck.Slaves = s.own.Slaves()
		ck.Owner, ck.Active = s.own.Snapshot()
		bytes += 9 * len(ck.Owner)
		ck.Replicated = map[string][]float64{}
		for _, arr := range plan.Replicated {
			vals := append([]float64(nil), s.inst.Arrays[arr].Data...)
			ck.Replicated[arr] = vals
			bytes += 8 * len(vals)
		}
		ck.RedSnap = map[string][]float64{}
		for arr, snap := range s.redSnap {
			ck.RedSnap[arr] = append([]float64(nil), snap...)
			bytes += 8 * len(snap)
		}
	}
	s.ep.Send(cluster.MasterID, "ckpt", bytes, ck)
}

// runEpoch executes the step tree once. An epochRestart panic — raised by
// recvFT when a recovery AdoptMsg arrives — is caught here, the checkpoint
// state is restored, and false is returned so the caller re-enters the tree
// (fast-forwarding to the checkpoint hook).
func (f ftSlaveFault) runEpoch(s *slave) (completed bool) {
	defer func() {
		if r := recover(); r != nil {
			er, ok := r.(epochRestart)
			if !ok {
				panic(r)
			}
			s.applyRecover(er.msg)
		}
	}()
	s.runTree()
	// Wait for the master to commit completion: a slave that finished can
	// still be rolled back (recvFT catches the AdoptMsg) if a peer died
	// before the master saw every survivor's "done".
	f.recvFT(s, cluster.MasterID, "finack")
	return true
}

// join registers this idle node with the master at joinAt and waits for
// admission (an AdoptMsg folding it into a recovery epoch). It returns
// false if the run ended first (the master's shutdown EvictMsg).
func (ftSlaveFault) join(s *slave) bool {
	if d := s.joinAt - s.ep.Now(); d > 0 {
		s.ep.Sleep(d)
	}
	s.ep.Send(cluster.MasterID, "join", 64, JoinMsg{Slave: s.id})
	poll := pollIntervalOf(s.ep)
	for {
		if _, ok := s.ep.TryRecv(cluster.MasterID, "evict"); ok {
			return false
		}
		if m, ok := s.ep.TryRecv(cluster.MasterID, "recover"); ok {
			s.applyRecover(m.Data.(AdoptMsg))
			return true
		}
		s.ep.Sleep(poll)
	}
}
