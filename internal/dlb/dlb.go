// Package dlb is the run-time library for automatically generated parallel
// programs with dynamic load balancing — the paper's master/slave system
// (§3, §4) executing compile.Plan programs on a simulated workstation
// cluster.
//
// One master process and N slave processes run on a cluster.Cluster.
// Slaves execute the generated step tree on full-size local arrays (only
// owned slices hold valid data; the ownership map is the paper's index
// array), exchanging boundary and pipeline data directly with each other.
// At load-balancing hooks they report work units per second of busy time to
// the master, which runs the internal/core balancing algorithm and returns
// redistribution instructions; work (data slices plus adjacent ghost
// slices) then moves directly between slaves. Master interactions are
// pipelined by default (§3.3) — instructions received at hook n were
// computed from the statuses of hook n−1 — or synchronous for the ablation
// experiment.
package dlb

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/aot"
	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hier"
	"repro/internal/loopir"
	"repro/internal/metrics"
	"repro/internal/vtime"
)

// Config controls one parallel run.
type Config struct {
	// Plan is the compiled program.
	Plan *compile.Plan
	// Params binds the program parameters.
	Params map[string]int
	// DLB enables dynamic load balancing; when false the initial block
	// distribution is kept for the whole run (the paper's "parallel
	// execution" baseline).
	DLB bool
	// Synchronous selects blocking master interactions instead of
	// pipelined ones (§3.3 ablation).
	Synchronous bool
	// Balancer overrides parts of the core configuration. Slaves,
	// Restricted and Quantum are filled in by the runtime.
	MinImprovement       float64 // 0 means the paper's 10%
	DisableFilter        bool
	DisableProfitability bool
	// FlopCost is the virtual CPU time per floating-point operation at
	// baseline speed. The default (1 µs) calibrates the simulated
	// workstations to the paper's Sun 4/330s (~1 Mflop/s), matching the
	// axis scale of Figures 5-8.
	FlopCost time.Duration
	// HookCheckCost is the bookkeeping cost of visiting an inactive hook.
	HookCheckCost time.Duration
	// MasterDecisionCost is the master's CPU cost per load-balancing phase.
	MasterDecisionCost time.Duration
	// GrainFactor scales the strip-mining grain (blocks cost GrainFactor x
	// quantum); the paper uses 1.5. ForcedGrain overrides the computed
	// grain when positive (grain-size ablation; 1 disables strip mining's
	// benefit, reproducing Figure 3b's fine-grain pipeline).
	GrainFactor float64
	ForcedGrain int
	// CompileOpts carries the hook cost model for instantiation.
	CompileOpts compile.Options
	// Groups partitions the slaves into that many contiguous groups for
	// two-level hierarchical balancing (internal/hier): each group's
	// leader aggregates its members' reports, the balancer runs within
	// each group every period, and groups exchange whole block ranges
	// diffusively on a slower cadence. 0 or 1 keeps the flat centralized
	// master, bit-identical to earlier releases.
	Groups int
	// GroupExchangeEvery is the inter-group exchange cadence in decision
	// rounds (default 4): between exchanges groups balance independently.
	GroupExchangeEvery int
	// GroupDiffusion is the diffusive under-relaxation factor alpha in
	// (0, 1] (default 0.5): the fraction of the completion-time-equalizing
	// flow shifted per exchange.
	GroupDiffusion float64
	// PerReportCost is the master's (or a leader's) CPU cost to process
	// one status report, on top of MasterDecisionCost per round. The
	// default 0 keeps earlier schedules bit-identical; the scale
	// experiment sets it to make the O(slaves) centralized fan-in cost
	// visible.
	PerReportCost time.Duration
	// Cores sets the per-slave worker count for partition-safe owned
	// loops: 0 or 1 runs sequentially (the default — simulated schedules
	// stay bit-identical to earlier releases), -1 uses every hardware
	// core, N > 1 uses exactly N workers.
	Cores int
	// Kernel selects the execution tier for distributed-loop bodies:
	// "interp" runs the lowered interpreter fragments only, "kernel" (the
	// default) adds the compiled postfix-VM range kernels, and "aot" emits
	// real Go source, builds it with the toolchain into a cached native
	// artifact, and dispatches to it — falling back tier by tier for
	// regions the emitter refuses. All tiers are bit-identical.
	Kernel string
	// CostModel selects how the master weighs work units when balancing:
	// "uniform" (the default) keeps the classic every-unit-equal
	// assumption, "learned" has slaves measure per-block busy time online
	// and the master learn relative per-unit weights (EWMA, seeded from
	// the uniform prior) so irregular programs — sparse matrices,
	// power-law particle bins — balance on estimated cost instead of unit
	// counts. Dense programs produce uniform measurements and stay
	// bit-identical to the uniform mode.
	CostModel string
	// Overlap gates the split-loop async ghost exchange: for exchanges the
	// compiler marked split-loop eligible, slaves post the ghost sends,
	// compute the interior units (whose stencil reads cannot touch a
	// ghost), receive, and finish with the boundary units — hiding the
	// network round-trip behind interior compute. "" or "on" enables it
	// (the default), "off" forces every exchange synchronous. Results,
	// schedules and ownership are bit-identical either way; only elapsed
	// time differs. The knob does not enter the plan hash — eligibility is
	// recorded in the rendered plan source, the knob only gates the
	// runtime.
	Overlap string
	// CollectTrace records per-phase rate/work samples (Figure 9).
	CollectTrace bool
	// RealQuantum is the grain-sizing target quantum for RunReal (default
	// 10 ms; real OS slices are far shorter than the Sun 4/330's 100 ms).
	RealQuantum time.Duration
	// RealDrag slows individual slaves in RunReal by the given factor
	// (>= 1), emulating slower or loaded machines with controlled sleeps.
	RealDrag []float64
	// Fault enables the fault-tolerant runtime and injects the given
	// failure schedule (which may be empty: detection, checkpointing and
	// elastic join stay armed without any injected fault). Requires DLB —
	// the load-balancing hooks are the heartbeat and checkpoint substrate.
	Fault *fault.Plan
	// Ckpt throttles periodic checkpoints (fault-tolerant runs).
	Ckpt fault.CkptPolicy
	// Detect tunes master-side failure detection (fault-tolerant runs).
	Detect fault.DetectorConfig
	// Preempt, when set, lets a scheduler request a cooperative stop: the
	// master forces a checkpoint at the next consumable round, evicts every
	// slave, and returns ErrPreempted with Result.Checkpoint holding the
	// committed snapshot. Transport-driven runs only (RunMasterOn).
	Preempt *PreemptControl
	// Resume, when set, restarts a preempted run from the given snapshot
	// instead of the initial data: the initial membership must match the
	// checkpoint's, and the run's first act is a recovery epoch that
	// re-ships the snapshot state and fast-forwards the slaves to the cut
	// hook. Transport-driven runs only (RunMasterOn).
	Resume *fault.Checkpoint
}

func (c Config) withDefaults() Config {
	if c.FlopCost <= 0 {
		c.FlopCost = time.Microsecond
	}
	if c.HookCheckCost <= 0 {
		c.HookCheckCost = 10 * time.Microsecond
	}
	if c.MasterDecisionCost <= 0 {
		c.MasterDecisionCost = 200 * time.Microsecond
	}
	if c.GrainFactor <= 0 {
		c.GrainFactor = 1.5
	}
	if c.MinImprovement == 0 {
		c.MinImprovement = 0.10
	}
	if c.GroupExchangeEvery <= 0 {
		c.GroupExchangeEvery = 4
	}
	if c.GroupDiffusion <= 0 || c.GroupDiffusion > 1 {
		c.GroupDiffusion = 0.5
	}
	return c
}

// Kernel execution tiers, ordered interp < kernel < aot.
const (
	KernelInterp = "interp"
	KernelVM     = "kernel"
	KernelAOT    = "aot"
)

// KernelTier resolves the Kernel knob ("" means the VM tier) or returns
// an error naming the valid tiers.
func (c Config) KernelTier() (string, error) {
	switch c.Kernel {
	case "", KernelVM:
		return KernelVM, nil
	case KernelInterp, KernelAOT:
		return c.Kernel, nil
	}
	return "", fmt.Errorf("dlb: unknown kernel tier %q (want %q, %q or %q)",
		c.Kernel, KernelInterp, KernelVM, KernelAOT)
}

// Cost-model modes for the balancer's view of work units.
const (
	CostUniform = "uniform"
	CostLearned = "learned"
)

// CostModelMode resolves the CostModel knob ("" means uniform) or returns
// an error naming the valid modes.
func (c Config) CostModelMode() (string, error) {
	switch c.CostModel {
	case "", CostUniform:
		return CostUniform, nil
	case CostLearned:
		return CostLearned, nil
	}
	return "", fmt.Errorf("dlb: unknown cost model %q (want %q or %q)",
		c.CostModel, CostUniform, CostLearned)
}

// Overlap modes for the split-loop async ghost exchange.
const (
	OverlapEnabled  = "on"
	OverlapDisabled = "off"
)

// OverlapOn resolves the Overlap knob ("" means on) or returns an error
// naming the valid modes.
func (c Config) OverlapOn() (bool, error) {
	switch c.Overlap {
	case "", OverlapEnabled:
		return true, nil
	case OverlapDisabled:
		return false, nil
	}
	return false, fmt.Errorf("dlb: unknown overlap mode %q (want %q or %q)",
		c.Overlap, OverlapEnabled, OverlapDisabled)
}

// CoreCount resolves the Cores knob to an effective worker count.
func (c Config) CoreCount() int {
	switch {
	case c.Cores < 0:
		return runtime.NumCPU()
	case c.Cores == 0:
		return 1
	}
	return c.Cores
}

// Sample is one trace record: a slave's reported and filtered rates and its
// resulting work assignment at a load-balancing phase (Figure 9's series).
type Sample struct {
	Time     time.Duration
	Phase    int
	Slave    int
	RawRate  float64
	Filtered float64
	Work     int
	// SkipHooks is the hook-skip count chosen at this phase (§4.3; grows
	// as per-invocation work shrinks, e.g. LU §4.7).
	SkipHooks int
	// Period is the target load-balancing period chosen at this phase.
	Period time.Duration
}

// LoadSample is one balancing round's weighted load distribution: the max
// and mean per-slave weighted active backlog after the round's moves.
type LoadSample struct {
	Phase     int
	Max, Mean float64
}

// Result summarizes a run.
type Result struct {
	// Elapsed is the virtual time from start to the last gather.
	Elapsed time.Duration
	// ComputeElapsed is the virtual time of the compute portion (after the
	// initial scatter, before the final gather).
	ComputeElapsed time.Duration
	// Usage is each slave's accounting over the whole run.
	Usage []cluster.Usage
	// MasterUsage is the master process's accounting — per-round busy time
	// here is the centralized coordination cost the hierarchy attacks.
	MasterUsage cluster.Usage
	// Final holds the gathered arrays.
	Final map[string]*loopir.Array
	// Exec is the instantiated plan that was executed.
	Exec *compile.Exec
	// Grain is the strip-mining block size used.
	Grain int
	// Phases is the number of master interactions.
	Phases int
	// Moves counts issued work movements; UnitsMoved the total units.
	Moves, UnitsMoved int
	// Trace holds Figure 9 samples when CollectTrace is set.
	Trace []Sample
	// Loads records the weighted load distribution at each balancing
	// round: max and mean per-slave weighted backlog under the run's cost
	// model (all weights 1.0 in uniform mode). max/mean is the imbalance
	// factor the -stats flag reports.
	Loads []LoadSample
	// Counters holds the engine's named event counters — the same names on
	// every endpoint (simulated, wall-clock, TCP).
	Counters metrics.Counters
	// Fault-tolerant runs: recovery epochs started, checkpoints committed,
	// slaves declared dead, joiner slots admitted, and the deterministic
	// fault-handling event trace.
	Recoveries  int
	Checkpoints int
	Evicted     []int
	Joined      []int
	FaultLog    *fault.Log
	// Checkpoint is the committed stop snapshot of a preempted run
	// (ErrPreempted); hand it to Config.Resume to continue the run later.
	Checkpoint *fault.Checkpoint
	// Owner is the final unit-to-slave ownership map: the state of the
	// replicated map when the run committed.
	Owner []int
	// AotInfo describes the native-kernel build when the run used the aot
	// tier: cache key, warm/cold, emit/build/load durations.
	AotInfo *aot.BuildInfo
}

// Run executes the plan on the given cluster configuration and returns the
// result. It builds its own virtual-time kernel; the run is a deterministic
// function of (cfg, cc).
func Run(cfg Config, cc cluster.Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Plan == nil {
		return nil, fmt.Errorf("dlb: no plan")
	}
	slaves := cc.Slaves
	if slaves < 1 {
		return nil, fmt.Errorf("dlb: need at least one slave")
	}
	if cfg.Preempt != nil || cfg.Resume != nil {
		return nil, fmt.Errorf("dlb: preemption and resume are transport-driven features (RunMasterOn)")
	}
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	ft := cfg.Fault != nil
	if ft {
		if !cfg.DLB {
			return nil, fmt.Errorf("dlb: fault tolerance requires DLB (hooks are the heartbeat and checkpoint substrate)")
		}
		if err := cfg.Fault.Validate(); err != nil {
			return nil, err
		}
	}
	var part *hier.Partition
	if cfg.Groups > 1 {
		if !cfg.DLB {
			return nil, fmt.Errorf("dlb: hierarchical groups require DLB (leaders aggregate the balancing contacts)")
		}
		p, err := hier.Split(slaves, cfg.Groups)
		if err != nil {
			return nil, err
		}
		part = p
	}

	// Master instance: initial data source and final destination.
	masterInst, err := loopir.NewInstance(cfg.Plan.Prog, cfg.Params)
	if err != nil {
		return nil, err
	}

	// Instantiate once to estimate per-unit cost, derive the grain from
	// the 1.5-quantum rule (§4.4), then re-instantiate so the phase
	// schedule reflects the strip-mined structure.
	probe, err := cfg.Plan.Instantiate(cfg.Params, 1, cfg.CompileOpts)
	if err != nil {
		return nil, err
	}
	grain := 1
	if cfg.Plan.StripMined {
		if cfg.ForcedGrain > 0 {
			grain = cfg.ForcedGrain
		} else {
			ccd := cc
			quantum := ccd.Quantum
			if quantum <= 0 {
				quantum = 100 * time.Millisecond
			}
			// Startup measurement: the cost of one strip-row is the work of
			// one row of an even share of the active units.
			lo, hi := probe.InitialActive()
			perSlaveUnits := (hi - lo + slaves - 1) / slaves
			rowFlops := probe.FlopsPerUnit * float64(perSlaveUnits)
			rowCost := time.Duration(rowFlops * float64(cfg.FlopCost))
			grain = core.GrainSize(rowCost, quantum, cfg.GrainFactor)
		}
	}
	exec, err := cfg.Plan.Instantiate(cfg.Params, grain, cfg.CompileOpts)
	if err != nil {
		return nil, err
	}

	// Native kernels are built before any cooperative process spawns: the
	// Go toolchain subprocess must not run inside the virtual-time
	// scheduler. The bundle is shared read-only by all slaves.
	tier, err := cfg.KernelTier()
	if err != nil {
		return nil, err
	}
	if _, err := cfg.CostModelMode(); err != nil {
		return nil, err
	}
	if _, err := cfg.OverlapOn(); err != nil {
		return nil, err
	}
	var bundle *aotBundle
	var aotInfo *aot.BuildInfo
	if tier == KernelAOT {
		bundle, err = buildAOT(cfg.Plan, cfg.Params)
		if err != nil {
			return nil, err
		}
		aotInfo = &bundle.prog.Info
	}

	k := vtime.NewKernel()
	simCC := cc
	var joins []time.Duration
	total := slaves
	if ft {
		// Joiner processes occupy cluster slots beyond the initial slaves;
		// they idle until their join time and are folded in by recovery.
		joins = cfg.Fault.Joins()
		total = slaves + len(joins)
		simCC.Slaves = total
	}
	c := cluster.New(k, simCC)

	r := &Result{Exec: exec, Grain: grain, AotInfo: aotInfo}
	var pol FaultPolicy = noFaultPolicy{}
	var inj *fault.Injector
	var flog *fault.Log
	var hbEvery time.Duration
	if ft {
		flog = &fault.Log{}
		r.FaultLog = flog
		inj = fault.NewInjector(cfg.Fault)
		hbEvery = fault.NewDetector(cfg.Detect, 1).Config().HeartbeatEvery
		pol = &ftPolicy{log: flog}
	}
	eng := &engine{
		cfg:     &cfg,
		cc:      c.Config(),
		initial: slaves,
		total:   total,
		exec:    exec,
		inst:    masterInst,
		res:     r,
		pol:     pol,
		part:    part,
		relay:   part != nil && !ft,
	}
	c.Spawn("master", cluster.MasterID, func(p *vtime.Proc, n *cluster.Node) {
		eng.runOn(&simEndpoint{p: p, n: n})
	})
	for i := 0; i < total; i++ {
		s := &slave{
			id:      i,
			slaves:  slaves,
			cfg:     &cfg,
			exec:    exec,
			grain:   grain,
			tier:    tier,
			aot:     bundle,
			fault:   slaveFaultFor(ft),
			hbEvery: hbEvery,
		}
		if eng.relay {
			s.part = part
		}
		if i >= slaves {
			s.joiner = true
			s.joinAt = joins[i-slaves]
		}
		id := i
		c.Spawn(fmt.Sprintf("slave%d", id), id, func(p *vtime.Proc, n *cluster.Node) {
			// An injected crash (or a zombie's eviction) kills the process
			// by panic; recover it so the proc dies silently, exactly as a
			// failed workstation would. Legacy runs never inject faults, so
			// the wrapper is inert there.
			defer func() {
				if rec := recover(); rec != nil && !isFaultExit(rec) {
					panic(rec)
				}
			}()
			s.runOn(newFaultEP(&simEndpoint{p: p, n: n}, id, inj, flog))
		})
	}
	if err := k.Run(); err != nil {
		return nil, fmt.Errorf("dlb: %w", err)
	}
	r.Elapsed = k.Now()
	for i := 0; i < total; i++ {
		n := c.Node(i)
		n.FinishAt(k.Now())
		r.Usage = append(r.Usage, n.Usage())
	}
	mn := c.Node(cluster.MasterID)
	mn.FinishAt(k.Now())
	r.MasterUsage = mn.Usage()
	if eng.err != nil {
		return nil, eng.err
	}
	r.Final = eng.final
	r.ComputeElapsed = eng.computeEnd - eng.computeStart
	return r, nil
}

// SequentialTime estimates the sequential execution time of the program on
// a dedicated baseline workstation under the same calibration, and runs the
// computation to produce reference arrays.
func SequentialTime(plan *compile.Plan, params map[string]int, flopCost time.Duration) (time.Duration, map[string]*loopir.Array, error) {
	if flopCost <= 0 {
		flopCost = time.Microsecond
	}
	inst, err := loopir.NewInstance(plan.Prog, params)
	if err != nil {
		return 0, nil, err
	}
	if err := inst.Run(); err != nil {
		return 0, nil, err
	}
	var flops float64
	if loopir.UsesIArr(plan.Prog.Body) {
		// Indirect programs' trip counts are data-dependent: estimate
		// against a freshly initialized instance (pre-Run values of the
		// index arrays equal the post-init values the parallel run charges
		// against, since index arrays are never written).
		est, err := loopir.NewInstance(plan.Prog, params)
		if err != nil {
			return 0, nil, err
		}
		env := map[string]int{}
		for k, v := range params {
			env[k] = v
		}
		flops = est.EstFlops(plan.Prog.Body, env)
	} else {
		flops = loopir.EstFlops(plan.Prog.Body, params)
	}
	return time.Duration(flops * float64(flopCost)), inst.Arrays, nil
}
