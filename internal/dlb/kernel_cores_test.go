package dlb

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/loopir"
	"repro/internal/testx"
)

// TestSimCoresDifferential runs the library programs on the simulated
// cluster at Cores 1, 2 and 4 in both interaction modes and demands the
// same answers everywhere. Multicore slaves change the virtual timing (the
// Charge is divided by the worker count), so the phase schedules and move
// patterns differ across core counts — the distributed arrays must not.
// This is a correctness test, not a speedup test: it holds on one physical
// core too, so it is not gated on testx.NeedMultiCore.
func TestSimCoresDifferential(t *testing.T) {
	progs := []struct {
		name   string
		params map[string]int
	}{
		// Sized so the per-run work clears the kernelParMinFlops gate and
		// the parallel path genuinely executes (mm, jacobi); sor and lu
		// stay on the analyzed sequential fallback (wavefront dependence,
		// no owned dimension) and pin down that path's equivalence.
		{"mm", map[string]int{"n": 64}},
		{"jacobi", map[string]int{"n": 128, "maxiter": 2}},
		{"sor", map[string]int{"n": 32, "maxiter": 4}},
		{"lu", map[string]int{"n": 32}},
	}
	for _, p := range progs {
		plan := planFor(t, p.name)
		reduction := map[string]bool{}
		for _, r := range plan.Reductions {
			reduction[r.Array] = true
		}
		for _, sync := range []bool{false, true} {
			mode := "pipelined"
			if sync {
				mode = "synchronous"
			}
			var base map[string]*loopir.Array
			for _, cores := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("%s/%s/c%d", p.name, mode, cores), func(t *testing.T) {
					res := runAndVerify(t, plan, p.params,
						Config{DLB: true, Synchronous: sync, Cores: cores},
						cluster.Config{Slaves: 3})
					if cores > 1 && (p.name == "mm" || p.name == "jacobi") {
						if res.Counters.Get("kernel_units") == 0 {
							t.Errorf("no units ran through the compiled kernel")
						}
					}
					if base == nil {
						base = res.Final
						return
					}
					for name, want := range base {
						got := res.Final[name]
						if got == nil {
							t.Fatalf("array %q missing", name)
						}
						d := want.MaxAbsDiff(got)
						if reduction[name] {
							if d > 1e-9 {
								t.Errorf("reduction %q differs from 1-core baseline by %g", name, d)
							}
						} else if d != 0 {
							t.Errorf("array %q differs from 1-core baseline by %g", name, d)
						}
					}
				})
			}
		}
	}
}

// TestRealCoresDifferential is the wall-clock twin: RunReal at Cores 1 and
// all hardware cores must produce bit-identical distributed arrays. Real
// runs measure rates, so schedules are nondeterministic — only the final
// data is comparable, against the sequential reference (which verifyRealPlan
// already checks exactly for non-reduction arrays).
func TestRealCoresDifferential(t *testing.T) {
	plan := planFor(t, "jacobi")
	params := map[string]int{"n": 96, "maxiter": 3}
	for _, cores := range []int{1, -1} {
		res, err := RunReal(Config{Plan: plan, Params: params, DLB: true, Cores: cores}, 2)
		if err != nil {
			t.Fatalf("cores=%d: %v", cores, err)
		}
		verifyRealPlan(t, res, plan, params)
	}
}

// TestUnitSliceAliasSafety proves a unitSlice result shares no storage with
// the array it was taken from: the slave's broadcast path sends the slice
// without a defensive copy, so mutation in either direction after the
// snapshot must not leak through.
func TestUnitSliceAliasSafety(t *testing.T) {
	a := loopir.NewArray("a", []int{6, 6})
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	vals := unitSlice(a, 0, 2)
	want := append([]float64(nil), vals...)

	for i := range a.Data {
		a.Data[i] = -1
	}
	for i, v := range vals {
		if v != want[i] {
			t.Fatalf("slice element %d changed to %g after array mutation", i, v)
		}
	}

	snap := append([]float64(nil), a.Data...)
	for i := range vals {
		vals[i] = 999
	}
	for i, v := range a.Data {
		if v != snap[i] {
			t.Fatalf("array element %d changed to %g after slice mutation", i, v)
		}
	}
}

// BenchmarkSlaveCores measures a full RunReal of the jacobi stencil with
// sequential slaves versus all-hardware-core slaves. The interesting figure
// is the elapsed-time ratio between the two sub-benchmarks, not either
// absolute number (a full run includes startup grain measurement).
func BenchmarkSlaveCores(b *testing.B) {
	testx.NeedMultiCore(b)
	plan := planFor(b, "jacobi")
	params := map[string]int{"n": 512, "maxiter": 4}
	for _, c := range []struct {
		name  string
		cores int
	}{
		{"cores=1", 1},
		{fmt.Sprintf("cores=%d", runtime.NumCPU()), -1},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunReal(Config{Plan: plan, Params: params, DLB: true, Cores: c.cores}, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
