package dlb

import (
	"fmt"
	"time"

	"repro/internal/aot"
	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/hier"
	"repro/internal/loopir"
)

// rangeLo and rangeHi are the free variables of the lowered range fragment
// that executes a contiguous run of owned distributed-loop iterations.
const (
	rangeLo = "__lo"
	rangeHi = "__hi"
)

// fragRunner is a compiled or interpreted compute fragment. Affine bodies
// lower to postfix fragments (loopir.Fragment); bodies the lowerer refuses
// — indirect subscripts like a[idx[i]] — fall back to the tree-walking
// InterpFragment, which runs the same statements against the same arrays.
type fragRunner interface {
	Run(bind map[string]int)
}

type slave struct {
	id     int
	slaves int
	cfg    *Config
	exec   *compile.Exec
	grain  int

	ep   Endpoint
	inst *loopir.Instance
	own  *core.Ownership

	frags      map[*compile.OwnedLoop]fragRunner
	kernels    map[*compile.OwnedLoop]*loopir.RangeKernel
	ownerFrags map[*compile.OwnerBlock]fragRunner
	allFrags   []allFrag
	env        map[string]int
	redSnap    map[string][]float64 // reduction arrays at the last Combine

	// iarr marks owned loops whose bodies use indirect (array-valued)
	// subscripts: their per-unit cost is data-dependent, so the flop
	// estimate walks each unit instead of sampling the midpoint.
	iarr map[*compile.OwnedLoop]bool

	// Per-unit cost measurement (learned cost model, and always-on for
	// indirect programs so the imbalance metric stays weighted): costAcc
	// accumulates modeled busy seconds per owned unit since the last
	// report; execHook drains it into CostBlock summaries.
	costOn  bool
	costAcc []float64

	// tier is the resolved kernel tier; aot carries the run's shared
	// native kernels and aotKernels the per-instance bindings (only
	// regions the emitter accepted — others fall back tier by tier).
	tier       string
	aot        *aotBundle
	aotKernels map[*compile.OwnedLoop]*aot.BoundKernel

	// cores is the resolved per-slave worker count (Config.Cores); owned
	// runs wide enough to amortize goroutine startup are partitioned
	// across this many kernel workers.
	cores         int
	aotUnits      int64 // units executed through AOT-built native kernels
	kernelUnits   int64 // units executed through compiled range kernels
	fallbackUnits int64 // units executed through the lowered fallback

	// Split-loop async ghost exchange (Config.Overlap): pending maps a
	// carrier loop to the exchanges whose sends were posted but whose
	// receives are deferred until after the carrier's interior pass.
	// Entries only live between an Exchange step and the OwnedLoop that
	// directly follows it (the compile-time carrier), so the map is empty
	// across hooks, combines, and epoch restarts.
	overlapOn       bool
	pending         map[*compile.OwnedLoop][]*compile.Exchange
	overlapRounds   int64
	overlapFallback int64

	ownedCache []int // sorted owned units; nil means rebuild
	// Ghost-list caches, keyed by delta: ownership only changes at hooks
	// (moves, deactivation, recovery — all funneled through
	// invalidateOwned), so the per-iteration exchange and pipeline lists
	// are reused until then.
	needsCache    map[int][]int
	suppliesCache map[int][]supply

	hookVisit   int
	nextContact int
	phase       int
	unitsDone   float64
	busyMark    time.Duration
	lastMove    time.Duration
	lastInter   time.Duration
	blockLo     int
	blockHi     int

	// part routes master traffic through the group hierarchy when set
	// (grouped legacy runs): members report to their group leader, the
	// leader aggregates and talks to the master, and instructions relay
	// back the same way. nil: every slave talks to the master directly.
	part *hier.Partition

	// fault is the slave-side fault-tolerance policy; noSlaveFault keeps
	// legacy behavior identical (the state below stays at zero values).
	fault         slaveFault
	epoch         int
	alive         []bool // nil until the first recovery: everyone alive
	ff            bool   // fast-forwarding control flow to ffUntil
	ffUntil       int
	skipInstrOnce bool // first post-recovery contact restores pipelining
	lastHB        time.Duration
	hbEvery       time.Duration
	joinAt        time.Duration // joiner: when to register (joiner iff joiner=true)
	joiner        bool
}

func (s *slave) runOn(ep Endpoint) {
	s.ep = ep
	plan := s.exec.Plan

	// Local instance: full-size arrays, zeroed — only data delivered by the
	// scatter, exchanges, broadcasts, and work movement is valid, so any
	// read of non-owned data surfaces as corruption instead of silently
	// using initial values.
	inst, err := loopir.NewInstance(plan.Prog, s.exec.Params)
	if err != nil {
		panic(fmt.Sprintf("slave%d: %v", s.id, err))
	}
	for _, a := range inst.Arrays {
		a.Fill(nil)
	}
	s.inst = inst

	// Local ownership map — the paper's index array, kept in sync with the
	// master by applying the same instructions.
	s.own = core.NewBlockOwnership(s.exec.Units, s.slaves)
	lo, hi := s.exec.InitialActive()
	s.deactivateOutside(lo, hi)

	// Compile the generated code against the local arrays: one range
	// kernel (plus a lowered fallback fragment) per distributed loop, one
	// fragment per owner block.
	s.frags = map[*compile.OwnedLoop]fragRunner{}
	s.kernels = map[*compile.OwnedLoop]*loopir.RangeKernel{}
	s.ownerFrags = map[*compile.OwnerBlock]fragRunner{}
	s.aotKernels = map[*compile.OwnedLoop]*aot.BoundKernel{}
	s.iarr = map[*compile.OwnedLoop]bool{}
	if s.tier == "" {
		s.tier = KernelVM
	}
	if err := s.lowerSteps(plan.Steps); err != nil {
		panic(fmt.Sprintf("slave%d: %v", s.id, err))
	}
	s.cores = s.cfg.CoreCount()

	// Per-unit cost measurement: always on for indirect (data-dependent)
	// programs so the weighted imbalance metric is meaningful in either
	// mode; the learned mode additionally feeds the master's model.
	mode, err := s.cfg.CostModelMode()
	if err != nil {
		panic(fmt.Sprintf("slave%d: %v", s.id, err))
	}
	s.costOn = mode == CostLearned || loopir.UsesIArr(plan.Prog.Body)
	if s.costOn {
		s.costAcc = make([]float64, s.exec.Units)
	}

	on, err := s.cfg.OverlapOn()
	if err != nil {
		panic(fmt.Sprintf("slave%d: %v", s.id, err))
	}
	s.overlapOn = on
	s.pending = map[*compile.OwnedLoop][]*compile.Exchange{}

	s.env = map[string]int{}
	for k, v := range s.exec.Params {
		s.env[k] = v
	}

	if s.joiner {
		// An idle node: register at joinAt and wait to be adopted into a
		// recovery epoch. If the run ends first, the master's shutdown
		// EvictMsg releases us.
		if !s.fault.join(s) {
			return
		}
	} else {
		// Initial scatter from the master.
		init := s.ep.Recv(cluster.MasterID, "init").Data.(InitMsg)
		for arr, units := range init.Owned {
			dim := plan.DistArrays[arr]
			for u, vals := range units {
				setUnitSlice(s.inst.Arrays[arr], dim, u, vals)
			}
		}
		for arr, vals := range init.Replicated {
			copy(s.inst.Arrays[arr].Data, vals)
		}
		// Snapshot reduction arrays so Combine can merge per-slave deltas.
		s.redSnap = map[string][]float64{}
		for _, r := range plan.Reductions {
			s.redSnap[r.Array] = append([]float64(nil), s.inst.Arrays[r.Array].Data...)
		}
	}
	s.busyMark = s.ep.Busy()
	s.lastHB = s.ep.Now()

	// Epoch loop: a recovery AdoptMsg unwinds execution (epochRestart) back
	// to here; the slave restores the checkpoint and re-enters the step tree,
	// fast-forwarding to the checkpoint hook. Legacy runs make one pass. The
	// termination announcement and the wait for the master's commit are part
	// of the recoverable region: a slave that finished can still be rolled
	// back if a peer died in the final round.
	for !s.fault.runEpoch(s) {
	}

	// Final gather: ship every owned unit of every distributed array back
	// to the master; slave 0 also reports the combined reduction values.
	g := GatherMsg{Data: map[string]map[int][]float64{}}
	bytes := msgHeader
	for arr, dim := range plan.DistArrays {
		m := map[int][]float64{}
		for _, u := range s.own.Owned(s.id) {
			vals := unitSlice(s.inst.Arrays[arr], dim, u)
			m[u] = vals
			bytes += 8*len(vals) + 16
		}
		g.Data[arr] = m
	}
	// The designated (lowest alive) slave reports the combined reduction
	// values — identical on every slave after Combine; legacy: slave 0.
	if s.designated() && len(plan.Reductions) > 0 {
		g.Reduced = map[string][]float64{}
		for _, r := range plan.Reductions {
			vals := append([]float64(nil), s.inst.Arrays[r.Array].Data...)
			g.Reduced[r.Array] = vals
			bytes += 8 * len(vals)
		}
	}
	s.ep.Send(cluster.MasterID, "gather", bytes, g)
}

func (s *slave) eval(e loopir.IExpr) int {
	v, err := loopir.EvalIndex(e, s.env)
	if err != nil {
		panic(fmt.Sprintf("slave%d: %v", s.id, err))
	}
	return v
}

// lowerSteps pre-lowers all compute fragments.
func (s *slave) lowerSteps(steps []compile.Step) error {
	for _, st := range steps {
		switch st := st.(type) {
		case *compile.SeqLoop:
			if err := s.lowerSteps(st.Body); err != nil {
				return err
			}
		case *compile.StripLoop:
			if err := s.lowerSteps(st.Body); err != nil {
				return err
			}
		case *compile.OwnedLoop:
			// The range kernel is the hot path (and, on the aot tier, the
			// oracle for guard and worker resolution); compilation failure
			// (non-affine subscripts) leaves only the lowered fragment,
			// which execOwned then uses. The interp tier skips it so every
			// owned unit runs through the lowered fragments.
			if s.tier != KernelInterp {
				if rk, err := s.inst.CompileRangeKernel(st.Var, st.Body); err == nil {
					s.kernels[st] = rk
				}
			}
			if k := s.aot.kernelFor(st); k != nil && s.tier == KernelAOT {
				if bk, err := k.Bind(s.inst.Arrays); err == nil {
					s.aotKernels[st] = bk
				}
			}
			s.iarr[st] = loopir.UsesIArr(st.Body)
			wrapped := []loopir.Stmt{
				loopir.For(st.Var, loopir.Iv(rangeLo), loopir.Iv(rangeHi), st.Body...),
			}
			s.frags[st] = s.lowerOrInterp(wrapped)
		case *compile.OwnerBlock:
			s.ownerFrags[st] = s.lowerOrInterp(st.Body)
		case *compile.AllStmts:
			s.allFrags = append(s.allFrags, allFrag{st, s.lowerOrInterp(st.Body)})
		}
	}
	return nil
}

// lowerOrInterp lowers statements to a postfix fragment, falling back to
// the tree-walking interpreter for bodies the lowerer refuses (indirect
// subscripts).
func (s *slave) lowerOrInterp(stmts []loopir.Stmt) fragRunner {
	if frag, err := s.inst.LowerStmts(stmts); err == nil {
		return frag
	}
	return &loopir.InterpFragment{In: s.inst, Stmts: stmts}
}

type allFrag struct {
	step *compile.AllStmts
	frag fragRunner
}

func (s *slave) execSteps(steps []compile.Step) {
	for _, st := range steps {
		switch st := st.(type) {
		case *compile.SeqLoop:
			lo, hi := s.eval(st.Lo), s.eval(st.Hi)
			for v := lo; v < hi; v++ {
				s.env[st.Var] = v
				s.execSteps(st.Body)
				// During fast-forward the condition is forced false: the
				// checkpointed execution demonstrably got past this point, so
				// the original evaluation was false (and restored data may
				// not support re-evaluating it here).
				if st.BreakIf != nil && !s.ff && s.evalBreak(st.BreakIf) {
					break
				}
			}
			delete(s.env, st.Var)
		case *compile.StripLoop:
			lo, hi := s.eval(st.Lo), s.eval(st.Hi)
			g := s.grain
			if g < 1 {
				g = 1
			}
			for start := lo; start < hi; start += g {
				end := start + g
				if end > hi {
					end = hi
				}
				s.blockLo, s.blockHi = start, end
				s.execSteps(st.Pre)
				for v := start; v < end; v++ {
					s.env[st.Var] = v
					s.execSteps(st.Body)
				}
				delete(s.env, st.Var)
				s.blockLo, s.blockHi = start, end
				s.execSteps(st.Post)
			}
		case *compile.OwnedLoop:
			s.execOwned(st)
		case *compile.OwnerBlock:
			s.execOwnerBlock(st)
		case *compile.AllStmts:
			s.execAll(st)
		case *compile.Exchange:
			s.execExchange(st)
		case *compile.PipeRecv:
			s.execPipeRecv(st)
		case *compile.PipeSend:
			s.execPipeSend(st)
		case *compile.Bcast:
			s.execBcast(st)
		case *compile.Combine:
			s.execCombine(st)
		case *compile.Hook:
			s.execHook(st)
		}
	}
}

// evalBreak evaluates a data-dependent loop termination condition against
// local (replicated, post-Combine) data — identical on every slave.
func (s *slave) evalBreak(c *loopir.Cond) bool {
	l, err1 := s.inst.EvalExpr(c.L, s.env)
	r, err2 := s.inst.EvalExpr(c.R, s.env)
	if err1 != nil || err2 != nil {
		panic(fmt.Sprintf("slave%d: break condition: %v %v", s.id, err1, err2))
	}
	switch c.Op {
	case "<":
		return l < r
	case "<=":
		return l <= r
	case ">":
		return l > r
	case ">=":
		return l >= r
	case "==":
		return l == r
	case "!=":
		return l != r
	}
	panic(fmt.Sprintf("slave%d: bad break op %q", s.id, c.Op))
}

// execCombine all-reduces a reduction array: deltas since the last Combine
// are exchanged all-to-all and summed in slave order, so every slave ends
// with bit-identical values.
func (s *slave) execCombine(st *compile.Combine) {
	if s.ff {
		return
	}
	arr := s.inst.Arrays[st.Array]
	snap := s.redSnap[st.Array]
	n := len(arr.Data)
	delta := make([]float64, n)
	for i := range delta {
		delta[i] = arr.Data[i] - snap[i]
	}
	tag := "reduce:" + st.Array
	for o := 0; o < s.slaves; o++ {
		if o == s.id || !s.peerAlive(o) {
			continue
		}
		s.send(o, tag, floatsBytes(n), append([]float64(nil), delta...))
	}
	parts := make([][]float64, s.slaves)
	parts[s.id] = delta
	for o := 0; o < s.slaves; o++ {
		if o == s.id || !s.peerAlive(o) {
			continue
		}
		parts[o] = s.recvPeer(o, tag).Data.([]float64)
	}
	for i := 0; i < n; i++ {
		v := snap[i]
		for o := 0; o < s.slaves; o++ {
			if parts[o] != nil {
				v += parts[o][i]
			}
		}
		arr.Data[i] = v
		snap[i] = v
	}
}

// drainCostBlocks summarizes the per-unit cost accumulated since the last
// report into at most maxCostBlocks contiguous blocks and resets the
// accumulator. Chunks whose units all carry the identical cost report that
// exact value (no mean computation), so a genuinely uniform program's
// reports are exactly uniform and the master's model never leaves the
// dense prior.
func (s *slave) drainCostBlocks() []CostBlock {
	if !s.costOn {
		return nil
	}
	// Contiguous runs of touched units.
	type span struct{ lo, hi int }
	var spans []span
	touched := 0
	for u := 0; u < len(s.costAcc); u++ {
		if s.costAcc[u] <= 0 {
			continue
		}
		if len(spans) > 0 && spans[len(spans)-1].hi == u {
			spans[len(spans)-1].hi = u + 1
		} else {
			spans = append(spans, span{u, u + 1})
		}
		touched++
	}
	if touched == 0 {
		return nil
	}
	chunk := (touched + maxCostBlocks - 1) / maxCostBlocks
	if chunk < 1 {
		chunk = 1
	}
	var blocks []CostBlock
	for _, sp := range spans {
		for lo := sp.lo; lo < sp.hi; lo += chunk {
			hi := lo + chunk
			if hi > sp.hi {
				hi = sp.hi
			}
			mn, mx, sum := s.costAcc[lo], s.costAcc[lo], 0.0
			for u := lo; u < hi; u++ {
				v := s.costAcc[u]
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
				sum += v
				s.costAcc[u] = 0
			}
			per := mn
			if mn != mx {
				per = sum / float64(hi-lo)
			}
			blocks = append(blocks, CostBlock{Lo: lo, Hi: hi, PerUnit: per})
		}
	}
	return blocks
}

func (s *slave) owned() []int {
	if s.ownedCache == nil {
		s.ownedCache = s.own.Owned(s.id)
	}
	return s.ownedCache
}

func (s *slave) invalidateOwned() {
	s.ownedCache = nil
	s.needsCache = nil
	s.suppliesCache = nil
}

// ghostNeedsCached returns ghostNeeds(own, me, delta), memoized until the
// next ownership or active-set change (invalidateOwned).
func (s *slave) ghostNeedsCached(delta int) []int {
	if n, ok := s.needsCache[delta]; ok {
		return n
	}
	if s.needsCache == nil {
		s.needsCache = map[int][]int{}
	}
	n := ghostNeeds(s.own, s.id, delta)
	s.needsCache[delta] = n
	return n
}

// ghostSuppliesCached is the supply-side twin of ghostNeedsCached.
func (s *slave) ghostSuppliesCached(delta int) []supply {
	if sp, ok := s.suppliesCache[delta]; ok {
		return sp
	}
	if s.suppliesCache == nil {
		s.suppliesCache = map[int][]supply{}
	}
	sp := ghostSupplies(s.own, s.id, delta)
	s.suppliesCache[delta] = sp
	return sp
}

func (s *slave) perUnitFlops(body []loopir.Stmt, distVar string, mid int) float64 {
	local := map[string]int{}
	for k, v := range s.env {
		local[k] = v
	}
	local[distVar] = mid
	return loopir.EstFlops(body, local)
}

func (s *slave) execOwned(st *compile.OwnedLoop) {
	if s.ff {
		return
	}
	// Long compute stretches between hooks must not starve the master's
	// failure detector (the more work a slave inherits, the longer its
	// silent stretches — exactly when false eviction hurts most).
	s.fault.heartbeat(s)
	// Deferred ghost exchanges targeting this loop (split-loop overlap):
	// their receives complete after the interior pass below. Every early
	// return must still drain them — the ghost data is needed by later
	// steps, and an unconsumed (sender, tag) mailbox would desequence the
	// next exchange on the same array.
	pend := s.pending[st]
	if len(pend) > 0 {
		delete(s.pending, st)
	}
	lo, hi := s.eval(st.Lo), s.eval(st.Hi)
	if lo < 0 {
		lo = 0
	}
	if hi > s.exec.Units {
		hi = s.exec.Units
	}
	if hi <= lo {
		s.drainPending(pend)
		return
	}
	runs := contiguousRuns(s.owned(), lo, hi)
	count := 0
	for _, r := range runs {
		count += r[1] - r[0]
	}
	if count == 0 {
		s.drainPending(pend)
		return
	}
	bind := map[string]int{}
	for k, v := range s.env {
		bind[k] = v
	}

	// Resolve the worker count per contiguous run: the kernel must be
	// provably partition-safe, the run wide enough that per-worker work
	// amortizes goroutine startup, and no runtime guard (a range-invariant
	// read of a partitioned array) may land inside the run. The virtual
	// Charge is divided by the same worker count, so simulated multicore
	// slaves speed up exactly as real ones do. On the aot tier the VM
	// range kernel stays the oracle for guard and worker resolution, but
	// dispatch goes to the native kernel; a native kernel that refuses
	// parallel dispatch (reduction chain, subprocess runner) caps w at 1.
	rk := s.kernels[st]
	ak := s.aotKernels[st]
	iarr := s.iarr[st]
	var perUnit float64
	var unitFlops []float64 // per-unit estimates, indirect bodies only
	if iarr {
		// Data-dependent body: the midpoint sample is meaningless, so walk
		// the owned units and estimate each one against the live arrays.
		// The simulated charge then reflects the real skew — exactly the
		// signal the learned cost model measures.
		local := map[string]int{}
		for k, v := range s.env {
			local[k] = v
		}
		unitFlops = make([]float64, 0, count)
		for _, r := range runs {
			for u := r[0]; u < r[1]; u++ {
				local[st.Var] = u
				unitFlops = append(unitFlops, s.inst.EstFlops(st.Body, local))
			}
		}
	} else {
		perUnit = s.perUnitFlops(st.Body, st.Var, lo+(hi-lo)/2)
	}
	// bw is the boundary width of the pending overlap: units within bw of a
	// run edge may read a ghost and form the boundary region; everything
	// deeper is interior and safe to compute before the receives complete.
	bw := 0
	for _, ex := range pend {
		d := ex.Delta
		if d < 0 {
			d = -d
		}
		if d > bw {
			bw = d
		}
	}
	ws := make([]int, len(runs))
	charge := 0.0
	chargeInt := 0.0 // interior share of charge when splitting
	flopSec := s.cfg.FlopCost.Seconds()
	ui := 0
	for i, r := range runs {
		runFlops := perUnit * float64(r[1]-r[0])
		if iarr {
			runFlops = 0
			for k := 0; k < r[1]-r[0]; k++ {
				runFlops += unitFlops[ui+k]
			}
		}
		// Worker counts resolve on the FULL run even when splitting, so the
		// per-unit cost attribution and the virtual charge sum match the
		// synchronous schedule exactly.
		w := 1
		if rk != nil && s.cores > 1 && rk.ParallelSafe() && (ak == nil || ak.K.CanParallel()) {
			w = s.cores
			if lim := int(runFlops / kernelParMinFlops); lim < w {
				w = lim
			}
			if w > 1 {
				w = rk.Workers(r[0], r[1], bind, w)
			}
			if w < 1 {
				w = 1
			}
		}
		ws[i] = w
		charge += runFlops / float64(w)
		if bw > 0 {
			if ilo, ihi := r[0]+bw, r[1]-bw; ihi > ilo {
				intFlops := perUnit * float64(ihi-ilo)
				if iarr {
					intFlops = 0
					for u := ilo; u < ihi; u++ {
						intFlops += unitFlops[ui+u-r[0]]
					}
				}
				chargeInt += intFlops / float64(w)
			}
		}
		if s.costOn {
			for u := r[0]; u < r[1]; u++ {
				f := perUnit
				if iarr {
					f = unitFlops[ui+u-r[0]]
				}
				s.costAcc[u] += f / float64(w) * flopSec
			}
		}
		ui += r[1] - r[0]
	}
	total := time.Duration(charge * float64(s.cfg.FlopCost))

	frag := s.frags[st]
	runRange := func(rlo, rhi, w int) {
		if rhi <= rlo {
			return
		}
		switch {
		case ak != nil && w > 1:
			ak.RunParallel(rlo, rhi, bind, w)
		case ak != nil:
			ak.Run(rlo, rhi, bind)
		case rk == nil:
			bind[rangeLo], bind[rangeHi] = rlo, rhi
			frag.Run(bind)
		case w > 1:
			rk.RunParallel(rlo, rhi, bind, w)
		default:
			rk.Run(rlo, rhi, bind)
		}
	}
	if bw == 0 {
		// Synchronous schedule (no deferred exchange): one charge, one pass.
		s.ep.Charge(total)
		s.ep.Timed(func() {
			for i, r := range runs {
				runRange(r[0], r[1], ws[i])
			}
		})
	} else {
		// Split schedule: interior compute overlaps the in-flight ghosts,
		// then the receives complete, then the boundary units run. The
		// boundary charge is the exact remainder of the synchronous total,
		// so Busy — and with it every status report and master decision —
		// is bit-identical to the synchronous path; only idle (elapsed)
		// time shrinks. Values match too: eligibility rules out reductions
		// and in-place stencils, so unit results are order-independent, and
		// interior units never read a ghost.
		intDur := time.Duration(chargeInt * float64(s.cfg.FlopCost))
		s.ep.Charge(intDur)
		s.ep.Timed(func() {
			for i, r := range runs {
				runRange(r[0]+bw, r[1]-bw, ws[i])
			}
		})
		s.completeGhosts(pend)
		s.ep.Charge(total - intDur)
		s.ep.Timed(func() {
			for i, r := range runs {
				ilo, ihi := r[0]+bw, r[1]-bw
				if ihi <= ilo {
					runRange(r[0], r[1], ws[i])
					continue
				}
				runRange(r[0], ilo, ws[i])
				runRange(ihi, r[1], ws[i])
			}
		})
		s.overlapRounds++
	}
	s.unitsDone += float64(count)
	switch {
	case ak != nil:
		s.aotUnits += int64(count)
	case rk != nil:
		s.kernelUnits += int64(count)
	default:
		s.fallbackUnits += int64(count)
	}
}

// kernelParMinFlops is the minimum estimated work per worker before an
// owned run is split across cores; below it goroutine startup dominates
// the compute it buys.
const kernelParMinFlops = 20000

// drainPending completes deferred ghost receives on a carrier loop that
// ran no interior work (nothing owned in range this round): the overlap
// bought nothing, which counts as a fallback round.
func (s *slave) drainPending(pend []*compile.Exchange) {
	if len(pend) == 0 {
		return
	}
	s.completeGhosts(pend)
	s.overlapFallback++
}

func (s *slave) execOwnerBlock(st *compile.OwnerBlock) {
	if s.ff {
		return
	}
	idx := s.eval(st.Index)
	if idx < 0 || idx >= s.exec.Units || s.own.OwnerOf(idx) != s.id {
		return
	}
	flops := loopir.EstFlops(st.Body, s.env)
	s.ep.Charge(time.Duration(flops * float64(s.cfg.FlopCost)))
	s.ep.Timed(func() { s.ownerFrags[st].Run(s.env) })
}

func (s *slave) execAll(st *compile.AllStmts) {
	if s.ff {
		return
	}
	for _, af := range s.allFrags {
		if af.step == st {
			flops := loopir.EstFlops(st.Body, s.env)
			s.ep.Charge(time.Duration(flops * float64(s.cfg.FlopCost)))
			s.ep.Timed(func() { af.frag.Run(s.env) })
			// Replicated statements run identically on every slave, so
			// their result is shared state: refresh reduction snapshots so
			// the next Combine's deltas are measured from here (e.g. the
			// residual reset at the top of a convergence sweep).
			for arr, snap := range s.redSnap {
				copy(snap, s.inst.Arrays[arr].Data)
			}
			return
		}
	}
}

// execExchange performs the sweep-start ghost exchange: whole-unit
// transfers of old boundary values (paper Figure 3a's first send/receive).
// Split-loop eligible exchanges (with overlap enabled) only post their
// sends here; the receives are deferred to the carrier loop's execOwned,
// which runs its interior units first so the round-trip hides behind
// compute. The send order is identical either way, and the deferred
// receives drain each (sender, tag) mailbox in the same order the
// synchronous path would, so the data flow — and every value — matches the
// synchronous schedule exactly.
func (s *slave) execExchange(st *compile.Exchange) {
	if s.ff {
		return
	}
	s.sendGhosts(st)
	if s.overlapOn && st.Overlap && st.Carrier != nil {
		s.pending[st.Carrier] = append(s.pending[st.Carrier], st)
		return
	}
	s.recvGhosts(st)
}

// sendGhosts posts one exchange's boundary-unit sends.
func (s *slave) sendGhosts(st *compile.Exchange) {
	arr := s.inst.Arrays[st.Array]
	dim := s.exec.Plan.DistArrays[st.Array]
	tag := "ghost:" + st.Array
	for _, sp := range s.ghostSuppliesCached(st.Delta) {
		vals := unitSlice(arr, dim, sp.Unit)
		s.send(sp.To, tag, floatsBytes(len(vals)), SliceMsg{Unit: sp.Unit, RowLo: -1, RowHi: -1, Vals: vals})
	}
}

// recvGhosts completes one exchange's ghost receives. The needs list is
// stable between posting and completion: ownership and the active set only
// change at hooks, and compile-time eligibility guarantees no hook sits
// between an overlapped exchange and its carrier loop.
func (s *slave) recvGhosts(st *compile.Exchange) {
	arr := s.inst.Arrays[st.Array]
	dim := s.exec.Plan.DistArrays[st.Array]
	tag := "ghost:" + st.Array
	for _, g := range s.ghostNeedsCached(st.Delta) {
		m := s.recvPeer(s.own.OwnerOf(g), tag).Data.(SliceMsg)
		if m.Unit != g {
			panic(fmt.Sprintf("slave%d: ghost mismatch: got unit %d, want %d", s.id, m.Unit, g))
		}
		setUnitSlice(arr, dim, g, m.Vals)
	}
}

// completeGhosts drains a carrier's deferred exchange receives in posting
// order.
func (s *slave) completeGhosts(pend []*compile.Exchange) {
	for _, st := range pend {
		s.recvGhosts(st)
	}
}

// execPipeRecv receives the current strip block's rows of the pipeline
// ghost unit — values the neighbor computed earlier in this sweep.
func (s *slave) execPipeRecv(st *compile.PipeRecv) {
	if s.ff {
		return
	}
	arr := s.inst.Arrays[st.Array]
	dim := s.exec.Plan.DistArrays[st.Array]
	tag := "pipe:" + st.Array
	for _, g := range s.ghostNeedsCached(st.Delta) {
		m := s.recvPeer(s.own.OwnerOf(g), tag).Data.(SliceMsg)
		if m.Unit != g || m.RowLo != s.blockLo {
			panic(fmt.Sprintf("slave%d: pipe mismatch: got unit %d rows [%d,%d), want unit %d rows [%d,%d)",
				s.id, m.Unit, m.RowLo, m.RowHi, g, s.blockLo, s.blockHi))
		}
		setUnitSliceRows(arr, dim, g, st.RowDim, m.RowLo, m.RowHi, m.Vals)
	}
}

// execPipeSend sends the current strip block's rows of our boundary units
// to the neighbors that read them next.
func (s *slave) execPipeSend(st *compile.PipeSend) {
	if s.ff {
		return
	}
	arr := s.inst.Arrays[st.Array]
	dim := s.exec.Plan.DistArrays[st.Array]
	tag := "pipe:" + st.Array
	for _, sp := range s.ghostSuppliesCached(-st.Delta) {
		vals := unitSliceRows(arr, dim, sp.Unit, st.RowDim, s.blockLo, s.blockHi)
		s.send(sp.To, tag, floatsBytes(len(vals)),
			SliceMsg{Unit: sp.Unit, RowLo: s.blockLo, RowHi: s.blockHi, Vals: vals})
	}
}

// flatBcast forces the legacy owner-sends-to-everyone broadcast. It exists
// for the differential test that pins the binomial tree's results to the
// flat path's.
var flatBcast = false

// execBcast broadcasts one unit from its owner to everyone else (§4.6)
// along a binomial tree over the alive roster: the owner seeds the relay
// and every receiver forwards to the peers in its subtree, so the critical
// path is O(log P) messages instead of the owner serializing P−1 sends.
// Every slave derives the identical tree from the shared ownership and
// alive state, and the payload is relayed verbatim, so the received values
// are bit-identical to the flat path.
func (s *slave) execBcast(st *compile.Bcast) {
	if s.ff {
		return
	}
	idx := s.eval(st.Index)
	if idx < 0 || idx >= s.exec.Units {
		return
	}
	arr := s.inst.Arrays[st.Array]
	dim := s.exec.Plan.DistArrays[st.Array]
	tag := "bcast:" + st.Array
	owner := s.own.OwnerOf(idx)
	if flatBcast {
		if owner == s.id {
			// unitSlice already returns a fresh snapshot and receivers only
			// copy out of Vals, so one shared payload serves every peer — no
			// per-message defensive copy.
			vals := unitSlice(arr, dim, idx)
			for other := 0; other < s.own.Slaves(); other++ {
				if other == s.id || !s.peerAlive(other) {
					continue
				}
				s.send(other, tag, floatsBytes(len(vals)),
					SliceMsg{Unit: idx, RowLo: -1, RowHi: -1, Vals: vals})
			}
			return
		}
		m := s.recvPeer(owner, tag).Data.(SliceMsg)
		if m.Unit != idx {
			panic(fmt.Sprintf("slave%d: bcast mismatch: got unit %d, want %d", s.id, m.Unit, idx))
		}
		setUnitSlice(arr, dim, idx, m.Vals)
		return
	}

	// Alive roster in id order; ranks are relative to the owner's position
	// so the owner is the tree root (relative rank 0).
	peers := make([]int, 0, s.own.Slaves())
	myPos, rootPos := -1, -1
	for o := 0; o < s.own.Slaves(); o++ {
		if o != s.id && !s.peerAlive(o) {
			continue
		}
		if o == s.id {
			myPos = len(peers)
		}
		if o == owner {
			rootPos = len(peers)
		}
		peers = append(peers, o)
	}
	if rootPos < 0 {
		// Owner not alive in our view: recovery will rewind this epoch.
		return
	}
	n := len(peers)
	rel := (myPos - rootPos + n) % n

	var vals []float64
	if rel == 0 {
		vals = unitSlice(arr, dim, idx)
	}
	// Receive phase: find the lowest set bit of our relative rank — the
	// peer rel−mask sends to us.
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := peers[(rel-mask+rootPos)%n]
			m := s.recvPeer(src, tag).Data.(SliceMsg)
			if m.Unit != idx {
				panic(fmt.Sprintf("slave%d: bcast mismatch: got unit %d, want %d", s.id, m.Unit, idx))
			}
			setUnitSlice(arr, dim, idx, m.Vals)
			vals = m.Vals
			break
		}
		mask <<= 1
	}
	// Relay phase: forward down the subtree, halving the mask. The payload
	// is shared — receivers only copy out of Vals.
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < n {
			dst := peers[(rel+mask+rootPos)%n]
			s.send(dst, tag, floatsBytes(len(vals)),
				SliceMsg{Unit: idx, RowLo: -1, RowHi: -1, Vals: vals})
		}
	}
}

func (s *slave) deactivateOutside(lo, hi int) {
	for u := 0; u < s.own.Units(); u++ {
		if (u < lo || u >= hi) && s.own.IsActive(u) {
			s.own.Deactivate(u)
		}
	}
	s.invalidateOwned()
}

// execHook implements the load-balancing hook (§4.2/§4.3): skip counting,
// status reporting, instruction receipt, and work movement.
func (s *slave) execHook(st *compile.Hook) {
	if st.Level != s.exec.ActiveLevel {
		return
	}
	if s.ff {
		// Fast-forward counts hook visits without contacting the master;
		// the checkpoint already contains the effects of hook ffUntil, so
		// normal execution resumes immediately after it.
		hv := s.hookVisit
		s.hookVisit++
		if hv == s.ffUntil {
			s.ff = false
		}
		return
	}
	s.fault.heartbeat(s)
	hv := s.hookVisit
	s.hookVisit++
	if !s.cfg.DLB || hv != s.nextContact {
		s.ep.Charge(s.cfg.HookCheckCost)
		return
	}

	busyStart := s.ep.Busy()
	status := StatusMsg{
		Phase:      s.phase,
		HookIndex:  hv,
		Units:      s.unitsDone,
		Busy:       busyStart - s.busyMark,
		MoveCost:   s.lastMove,
		InterCost:  s.lastInter,
		Epoch:      s.epoch,
		CostBlocks: s.drainCostBlocks(),
	}
	if s.part != nil {
		s.sendStatusHier(status)
	} else {
		s.ep.Send(cluster.MasterID, "status", 64, status)
	}
	s.unitsDone = 0

	wantInstr := true
	if !s.cfg.Synchronous && s.phase == 0 {
		wantInstr = false // pipelined: nothing in flight yet
	}
	if s.skipInstrOnce {
		wantInstr = false // ditto right after a recovery epoch restart
		s.skipInstrOnce = false
	}
	ckptSeq := 0
	if wantInstr {
		// The interaction cost fed to the period rule (20x bound) is the
		// CPU overhead of the exchange, not time spent blocked waiting for
		// the instruction (pipelining exists precisely to hide that wait).
		s.lastInter = s.ep.Busy() - busyStart
		var instr InstrMsg
		if s.part != nil {
			instr = s.recvInstrHier()
		} else {
			instr = s.fault.recvInstr(s)
		}
		s.applyInstr(instr)
		ckptSeq = instr.CkptSeq
	} else {
		s.lastInter = s.ep.Busy() - busyStart
		// No instruction consumed (first pipelined contact): keep
		// contacting every hook until the master assigns a skip.
		s.nextContact = s.hookVisit
	}
	s.phase++
	s.busyMark = s.ep.Busy()
	s.fault.checkpoint(s, hv, ckptSeq)
}

// applyInstr updates the active set, executes the work movement this slave
// participates in, and adopts the new hook-skip count.
func (s *slave) applyInstr(instr InstrMsg) {
	meta := s.exec.Phases[instr.HookIndex]
	s.deactivateOutside(meta.ActiveLo, meta.ActiveHi)

	if len(instr.Moves) > 0 {
		t0 := s.ep.Now()
		for _, m := range instr.Moves {
			s.applyMove(m)
		}
		s.invalidateOwned()
		s.lastMove = s.ep.Now() - t0
	}
	s.nextContact = s.hookVisit + instr.SkipHooks
	if s.nextContact < s.hookVisit {
		s.nextContact = s.hookVisit
	}
}

func (s *slave) applyMove(m core.Move) {
	plan := s.exec.Plan
	switch {
	case m.From == s.id:
		moved := map[int]bool{}
		for _, u := range m.Units {
			moved[u] = true
		}
		w := WorkMsg{Units: m.Units, Data: map[string][][]float64{}, Ghosts: map[string]map[int][]float64{}}
		bytes := msgHeader
		for arr, dim := range plan.DistArrays {
			a := s.inst.Arrays[arr]
			slices := make([][]float64, len(m.Units))
			for i, u := range m.Units {
				slices[i] = unitSlice(a, dim, u)
				bytes += 8 * len(slices[i])
			}
			w.Data[arr] = slices
			// Ghost payload: data adjacent to the moved range so the new
			// owner's stale copies are refreshed (§4.5).
			if len(plan.GhostDeltas) > 0 {
				gm := map[int][]float64{}
				for _, delta := range plan.GhostDeltas {
					for _, u := range m.Units {
						g := u + delta
						if g < 0 || g >= s.exec.Units || moved[g] {
							continue
						}
						if _, dup := gm[g]; dup {
							continue
						}
						gm[g] = unitSlice(a, dim, g)
						bytes += 8 * len(gm[g])
					}
				}
				w.Ghosts[arr] = gm
			}
		}
		s.send(m.To, "work", bytes, w)
		if err := s.own.Apply(m); err != nil {
			panic(fmt.Sprintf("slave%d: %v", s.id, err))
		}
	case m.To == s.id:
		msg := s.recvPeer(m.From, "work").Data.(WorkMsg)
		for arr, slices := range msg.Data {
			dim := plan.DistArrays[arr]
			a := s.inst.Arrays[arr]
			for i, u := range msg.Units {
				setUnitSlice(a, dim, u, slices[i])
			}
		}
		for arr, gm := range msg.Ghosts {
			dim := plan.DistArrays[arr]
			a := s.inst.Arrays[arr]
			for g, vals := range gm {
				// Only refresh units we do not hold authoritative data
				// for: the sender's ghost copy is stale for units we own.
				if s.own.OwnerOf(g) == s.id {
					continue
				}
				setUnitSlice(a, dim, g, vals)
			}
		}
		if err := s.own.Apply(m); err != nil {
			panic(fmt.Sprintf("slave%d: %v", s.id, err))
		}
	default:
		if err := s.own.Apply(m); err != nil {
			panic(fmt.Sprintf("slave%d: %v", s.id, err))
		}
	}
}

// send is the slave-to-slave send (epoch-scoped tag under the FT policy).
func (s *slave) send(to int, tag string, bytes int, data interface{}) {
	s.ep.Send(to, s.fault.commTag(s, tag), bytes, data)
}

// recvPeer is the slave-to-slave blocking receive.
func (s *slave) recvPeer(from int, tag string) cluster.Msg {
	return s.fault.recvPeer(s, from, tag)
}

func (s *slave) peerAlive(o int) bool { return s.fault.peerAlive(s, o) }

func (s *slave) designated() bool { return s.fault.designated(s) }

// sendStatusHier routes the contact report through the hierarchy: a
// member reports to its group leader; the leader collects its members'
// reports in id order, charges the per-report processing cost that the
// centralized master would otherwise pay for them, and ships one
// aggregate to the master.
func (s *slave) sendStatusHier(status StatusMsg) {
	g := s.part.GroupOf(s.id)
	if !s.part.IsLeader(s.id) {
		s.ep.Send(s.part.Leader(g), "status", 64, status)
		return
	}
	members := s.part.Members(g)
	gs := GroupStatusMsg{
		Group:    g,
		Ids:      make([]int, 0, len(members)),
		Statuses: make([]StatusMsg, 0, len(members)),
	}
	gs.Ids = append(gs.Ids, s.id)
	gs.Statuses = append(gs.Statuses, status)
	for _, m := range members {
		if m == s.id {
			continue
		}
		st := s.ep.Recv(m, "status").Data.(StatusMsg)
		gs.Ids = append(gs.Ids, m)
		gs.Statuses = append(gs.Statuses, st)
	}
	s.ep.Charge(time.Duration(len(members)) * s.cfg.PerReportCost)
	s.ep.Send(cluster.MasterID, "gstatus", 64*len(members), gs)
}

// recvInstrHier receives the grouped instruction. The leader takes the
// master's GroupShiftMsg and relays the instruction to its members BEFORE
// applying it itself: applying may block on work transfers from members,
// and the members are blocked waiting for this very instruction.
func (s *slave) recvInstrHier() InstrMsg {
	g := s.part.GroupOf(s.id)
	if !s.part.IsLeader(s.id) {
		return s.ep.Recv(s.part.Leader(g), "instr").Data.(InstrMsg)
	}
	instr := s.ep.Recv(cluster.MasterID, "ginstr").Data.(GroupShiftMsg).Instr
	bytes := 64
	for _, mv := range instr.Moves {
		bytes += 16 + 8*len(mv.Units)
	}
	for _, m := range s.part.Members(g) {
		if m == s.id {
			continue
		}
		s.ep.Send(m, "instr", bytes, instr)
	}
	return instr
}

// sendDoneHier routes the termination announcement through the
// hierarchy. Every slave follows the identical schedule, so when the
// leader finishes its members finish in the same round; the leader
// aggregates their announcements and the master receives one per group.
func (s *slave) sendDoneHier(done StatusMsg) {
	g := s.part.GroupOf(s.id)
	if !s.part.IsLeader(s.id) {
		s.ep.Send(s.part.Leader(g), "done", 64, done)
		return
	}
	members := s.part.Members(g)
	gs := GroupStatusMsg{
		Group:    g,
		Ids:      make([]int, 0, len(members)),
		Statuses: make([]StatusMsg, 0, len(members)),
	}
	gs.Ids = append(gs.Ids, s.id)
	gs.Statuses = append(gs.Statuses, done)
	for _, m := range members {
		if m == s.id {
			continue
		}
		st := s.ep.Recv(m, "done").Data.(StatusMsg)
		gs.Ids = append(gs.Ids, m)
		gs.Statuses = append(gs.Statuses, st)
	}
	s.ep.Send(cluster.MasterID, "gdone", 64*len(members), gs)
}

// runTree executes the step tree once and announces termination: with
// data-dependent break conditions the number of balancing phases is only
// known here, at run time (§4.1).
func (s *slave) runTree() {
	s.execSteps(s.exec.Plan.Steps)
	done := StatusMsg{
		Phase:         s.phase,
		HookIndex:     s.hookVisit,
		Done:          true,
		Epoch:         s.epoch,
		AotUnits:        s.aotUnits,
		KernelUnits:     s.kernelUnits,
		FallbackUnits:   s.fallbackUnits,
		OverlapRounds:   s.overlapRounds,
		OverlapFallback: s.overlapFallback,
	}
	if s.part != nil {
		s.sendDoneHier(done)
		return
	}
	s.ep.Send(cluster.MasterID, "done", 64, done)
}

// applyRecover installs a recovery epoch: restore the checkpointed arrays,
// ownership and reduction state, adopt the (possibly repaired and grown)
// membership, and arm the fast-forward that replays control flow up to the
// checkpoint hook.
func (s *slave) applyRecover(a AdoptMsg) {
	plan := s.exec.Plan
	s.epoch = a.Epoch
	s.slaves = a.Slaves
	s.alive = append([]bool(nil), a.Alive...)
	s.own = core.OwnershipFromMap(a.Owner, a.Active, a.Slaves)
	s.invalidateOwned()

	for arr := range plan.DistArrays {
		s.inst.Arrays[arr].Fill(nil)
	}
	for arr, units := range a.Owned {
		dim := plan.DistArrays[arr]
		for u, vals := range units {
			setUnitSlice(s.inst.Arrays[arr], dim, u, vals)
		}
	}
	for arr, vals := range a.Replicated {
		copy(s.inst.Arrays[arr].Data, vals)
	}
	// Per-slave reduction values override the shared replicated copy.
	for arr, vals := range a.Red {
		copy(s.inst.Arrays[arr].Data, vals)
	}
	s.redSnap = map[string][]float64{}
	for arr, vals := range a.RedSnap {
		s.redSnap[arr] = append([]float64(nil), vals...)
	}

	s.phase = a.Phase
	s.nextContact = a.NextContact
	s.hookVisit = 0
	s.ff = a.Hook >= 0
	s.ffUntil = a.Hook
	s.skipInstrOnce = !s.cfg.Synchronous && a.Hook >= 0
	s.unitsDone = 0
	s.aotUnits, s.kernelUnits, s.fallbackUnits = 0, 0, 0
	// Overlap rounds are replayed by the restarted epoch, so the counter
	// resets with the other dispatch counters; abandoned rounds are not
	// replayed as overlap (their in-flight ghosts died with the old
	// epoch's tags), so the fallback count survives the restart.
	if len(s.pending) > 0 {
		s.pending = map[*compile.OwnedLoop][]*compile.Exchange{}
		s.overlapFallback++
	}
	s.overlapRounds = 0
	for i := range s.costAcc {
		s.costAcc[i] = 0
	}
	s.busyMark = s.ep.Busy()
	s.lastMove, s.lastInter = 0, 0
	s.blockLo, s.blockHi = 0, 0
	s.lastHB = s.ep.Now()
	s.env = map[string]int{}
	for k, v := range s.exec.Params {
		s.env[k] = v
	}
}
