package dlb

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
)

// TestGroupsOneBitIdentical is the hierarchy's no-regression contract:
// with -groups 1 (or the flag absent) the run must be bit-identical to
// the flat engine — same virtual elapsed time, same round/move counts,
// same final ownership, same arrays to the last bit — across the library
// programs in both pipelined and synchronous mode.
func TestGroupsOneBitIdentical(t *testing.T) {
	progs := []struct {
		name   string
		params map[string]int
	}{
		{"mm", map[string]int{"n": 24}},
		{"sor", map[string]int{"n": 20, "maxiter": 4}},
		{"lu", map[string]int{"n": 20}},
		{"jacobi", map[string]int{"n": 16, "maxiter": 3}},
	}
	cc := cluster.Config{
		Slaves: 4,
		Load:   []cluster.LoadProfile{cluster.Constant(1)},
	}
	for _, p := range progs {
		plan := planFor(t, p.name)
		for _, sync := range []bool{false, true} {
			mode := "pipelined"
			if sync {
				mode = "synchronous"
			}
			t.Run(fmt.Sprintf("%s/%s", p.name, mode), func(t *testing.T) {
				flat := runAndVerify(t, plan, p.params,
					Config{DLB: true, Synchronous: sync}, cc)
				grouped := runAndVerify(t, plan, p.params,
					Config{DLB: true, Synchronous: sync, Groups: 1}, cc)
				if flat.Elapsed != grouped.Elapsed {
					t.Errorf("elapsed diverged: flat %v, groups=1 %v", flat.Elapsed, grouped.Elapsed)
				}
				if flat.Phases != grouped.Phases || flat.Moves != grouped.Moves || flat.UnitsMoved != grouped.UnitsMoved {
					t.Errorf("schedule diverged: flat %d/%d/%d, groups=1 %d/%d/%d",
						flat.Phases, flat.Moves, flat.UnitsMoved,
						grouped.Phases, grouped.Moves, grouped.UnitsMoved)
				}
				for _, key := range []string{"rounds", "status_reports", "instr_bytes", "moves", "units_moved"} {
					if a, b := flat.Counters.Get(key), grouped.Counters.Get(key); a != b {
						t.Errorf("counter %q diverged: flat %d, groups=1 %d", key, a, b)
					}
				}
				if len(flat.Owner) != len(grouped.Owner) {
					t.Fatalf("owner map length diverged")
				}
				for u := range flat.Owner {
					if flat.Owner[u] != grouped.Owner[u] {
						t.Fatalf("final owner of unit %d diverged: flat %d, groups=1 %d",
							u, flat.Owner[u], grouped.Owner[u])
					}
				}
				for name, want := range flat.Final {
					if d := want.MaxAbsDiff(grouped.Final[name]); d != 0 {
						t.Errorf("array %q diverged by %g", name, d)
					}
				}
			})
		}
	}
}

// TestGroupsHierCorrect runs the grouped runtime for real — leaders
// relaying, diffusive exchanges armed — and demands the same bit-exact
// agreement with the sequential reference the flat engine is held to.
func TestGroupsHierCorrect(t *testing.T) {
	progs := []struct {
		name   string
		params map[string]int
	}{
		{"mm", map[string]int{"n": 24}},
		{"sor", map[string]int{"n": 20, "maxiter": 4}},
		{"lu", map[string]int{"n": 20}},
		{"jacobi", map[string]int{"n": 16, "maxiter": 3}},
	}
	for _, p := range progs {
		plan := planFor(t, p.name)
		for _, sync := range []bool{false, true} {
			mode := "pipelined"
			if sync {
				mode = "synchronous"
			}
			for _, groups := range []int{2, 4} {
				t.Run(fmt.Sprintf("%s/%s/g%d", p.name, mode, groups), func(t *testing.T) {
					res := runAndVerify(t, plan, p.params,
						Config{DLB: true, Synchronous: sync, Groups: groups, GroupExchangeEvery: 2},
						cluster.Config{
							Slaves: 8,
							Load:   []cluster.LoadProfile{cluster.Constant(2), nil, cluster.Constant(1)},
						})
					if res.Phases == 0 {
						t.Error("no master interactions")
					}
				})
			}
		}
	}
}

// TestGroupsRelayShrinksMasterFanIn checks the physical hierarchy: with
// leaders aggregating, the master receives and sends per group, not per
// slave, so its message count drops well below the flat run's.
func TestGroupsRelayShrinksMasterFanIn(t *testing.T) {
	plan := planFor(t, "jacobi")
	params := map[string]int{"n": 64, "maxiter": 400}
	// A small scheduler quantum shortens the balancing period so the run
	// holds many contact rounds; the initial work fan-out then stops
	// dominating the master's message count.
	cc := cluster.Config{Slaves: 16, Quantum: time.Millisecond}
	flat := runAndVerify(t, plan, params, Config{DLB: true}, cc)
	hier := runAndVerify(t, plan, params, Config{DLB: true, Groups: 4}, cc)
	if flat.MasterUsage.MessagesSent == 0 {
		t.Fatal("flat master sent no messages")
	}
	if hier.MasterUsage.MessagesSent*2 >= flat.MasterUsage.MessagesSent {
		t.Errorf("relay did not shrink master fan-out: flat %d msgs, hier %d msgs",
			flat.MasterUsage.MessagesSent, hier.MasterUsage.MessagesSent)
	}
	if hier.Counters.Get("status_reports") == 0 {
		t.Error("no status reports collected under relay")
	}
}

// TestGroupsExchangeMovesWorkAcrossBoundary drives a strongly imbalanced
// cluster and checks the diffusive exchange actually shifts units across
// a group boundary (the hier_cross_* counters).
func TestGroupsExchangeMovesWorkAcrossBoundary(t *testing.T) {
	plan := planFor(t, "jacobi")
	params := map[string]int{"n": 96, "maxiter": 24}
	res := runAndVerify(t, plan, params,
		Config{DLB: true, Groups: 2, GroupExchangeEvery: 2},
		cluster.Config{
			Slaves: 8,
			// The whole left group runs on quarter-speed machines: only an
			// inter-group shift can offload it.
			Speed: []float64{0.25, 0.25, 0.25, 0.25, 1, 1, 1, 1},
		})
	if res.Counters.Get("hier_exchanges") == 0 {
		t.Fatal("no diffusive exchanges ran")
	}
	if res.Counters.Get("hier_cross_units") == 0 {
		t.Error("no units crossed the group boundary despite a fully loaded group")
	}
}

// TestGroupsWithFaultPolicy exercises the decisions-only combination: the
// two-level balancer with exchange-aligned checkpoint cuts under the
// fault-tolerant policy, surviving an injected crash.
func TestGroupsWithFaultPolicy(t *testing.T) {
	fp := (&fault.Plan{}).CrashAt(1, 1200*time.Millisecond)
	cfg := ftConfig(fp)
	cfg.Groups = 2
	res := runAndVerify(t, planFor(t, "mm"), map[string]int{"n": 40},
		cfg, cluster.Config{Slaves: 4})
	if res.Recoveries == 0 {
		t.Error("expected a recovery after the injected crash")
	}
	if len(res.Evicted) != 1 || res.Evicted[0] != 1 {
		t.Errorf("evicted = %v, want [1]", res.Evicted)
	}
}

// TestGroupsValidation pins the config errors.
func TestGroupsValidation(t *testing.T) {
	plan := planFor(t, "mm")
	cfg := Config{Plan: plan, Params: map[string]int{"n": 24}, DLB: true, Groups: 9}
	if _, err := Run(cfg, cluster.Config{Slaves: 4}); err == nil {
		t.Error("more groups than slaves accepted")
	}
	cfg = Config{Plan: plan, Params: map[string]int{"n": 24}, Groups: 2}
	if _, err := Run(cfg, cluster.Config{Slaves: 4}); err == nil {
		t.Error("groups without DLB accepted")
	}
	cfg = Config{Plan: plan, Params: map[string]int{"n": 24}, DLB: true}
	badLoad := cluster.Config{Slaves: 4, Load: []cluster.LoadProfile{
		cluster.Steps{{At: time.Second}, {At: 0}},
	}}
	if _, err := Run(cfg, badLoad); err == nil {
		t.Error("unsorted Steps profile accepted")
	}
}
