package dlb

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/hier"
	"repro/internal/loopir"
	"repro/internal/metrics"
)

// engine is the central load-balancing process (§3.1) — the one master loop
// every endpoint runs. It scatters the initial distribution, mirrors the
// slave loop structure phase by phase, runs the core balancing algorithm on
// the statuses it collects, sends instructions, and gathers the final data.
// Everything fault-related — lease tracking, checkpoint cuts, epoch
// rollback, joiner admission — lives behind the FaultPolicy; with the no-op
// policy the engine reproduces the legacy deterministic runtime bit for
// bit.
type engine struct {
	cfg     *Config
	cc      cluster.Config
	initial int // slaves participating from the start
	total   int // slots including not-yet-admitted joiners
	exec    *compile.Exec
	inst    *loopir.Instance
	res     *Result
	pol     FaultPolicy

	ep    Endpoint
	plan  *compile.Plan
	own   *core.Ownership
	bal   *core.Balancer
	setup balancerSetup

	// topo is the decision layer (flat master or two-level hierarchy);
	// part is non-nil when the run is grouped, and relay routes the
	// physical status/instruction traffic through the group leaders.
	topo  topology
	part  *hier.Partition
	relay bool

	// Learned per-unit cost model. costModel is non-nil whenever cost
	// blocks are collected (learned mode, or an indirect program under
	// uniform mode — the model then only feeds the imbalance metric);
	// costMode gates whether decisions use it. wRisk/wRate track weighted
	// work since the last committed checkpoint and the latest round's
	// aggregate weighted rate, for work-at-risk checkpoint throttling.
	costModel *UnitCostModel
	costMode  string
	wRisk     float64
	wRate     float64

	done      []bool
	doneCount int

	final        map[string]*loopir.Array
	computeStart time.Duration
	computeEnd   time.Duration
	err          error
}

func (e *engine) runOn(ep Endpoint) {
	e.ep = ep
	e.plan = e.exec.Plan
	if e.res.Counters == nil {
		e.res.Counters = metrics.Counters{}
	}

	// Authoritative ownership + balancer.
	own := core.NewBlockOwnership(e.exec.Units, e.initial)
	lo, hi := e.exec.InitialActive()
	for u := 0; u < own.Units(); u++ {
		if u < lo || u >= hi {
			own.Deactivate(u)
		}
	}
	e.own = own
	e.setup = newBalancerSetup(e.cfg, e.cc, e.exec, e.inst, e.initial)
	e.bal = e.setup.newBalancer(own)
	e.costMode, _ = e.cfg.CostModelMode()
	if e.costMode == CostLearned || loopir.UsesIArr(e.plan.Prog.Body) {
		e.costModel = NewUnitCostModel(e.exec.Units)
	}
	if e.part != nil && e.part.Groups() > 1 {
		e.topo = newHierTopology(e, e.part, e.relay)
	} else {
		e.topo = flatTopology{}
	}
	e.done = make([]bool, e.total)
	e.pol.Init(e)

	e.scatter()
	e.computeStart = ep.Now()
	e.pol.Started(e)

	// Phase loop: one iteration per slave contact round.
	for e.remaining() > 0 {
		raw, ok := e.pol.CollectRound(e)
		if !ok {
			continue // a recovery restarted the epoch; collect afresh
		}
		if raw == nil {
			break // every participant announced completion
		}
		e.handleRound(raw)
	}
	e.computeEnd = ep.Now()

	e.pol.Commit(e)
	e.gather()
	e.res.Owner, _ = e.own.Snapshot()
}

// remaining counts participants that have not announced completion.
func (e *engine) remaining() int {
	n := 0
	for _, id := range e.pol.Participants(e) {
		if !e.done[id] {
			n++
		}
	}
	return n
}

// scatter ships each initial slave its owned slices of the distributed
// arrays and full copies of the replicated ones. Two cases ship a
// bulk-free placeholder instead: a resumed run (the recovery epoch that
// follows re-ships all state) and a slave whose transport reports the
// payload already cached daemon-side (the FromCache marker tells it to
// re-play its cached copy).
func (e *engine) scatter() {
	adv, _ := e.ep.(InitCacheAdvisor)
	resume := e.cfg.Resume != nil
	for sl := 0; sl < e.initial; sl++ {
		if resume {
			e.ep.Send(sl, "init", msgHeader, InitMsg{})
			e.res.Counters.Add("scatter_bytes", int64(msgHeader))
			continue
		}
		if adv != nil && adv.InitCached(sl) {
			e.ep.Send(sl, "init", msgHeader, InitMsg{FromCache: true})
			e.res.Counters.Add("scatter_bytes", int64(msgHeader))
			e.res.Counters.Add("init_cache_hits", 1)
			continue
		}
		msg := InitMsg{Owned: map[string]map[int][]float64{}, Replicated: map[string][]float64{}}
		bytes := msgHeader
		for arr, dim := range e.plan.DistArrays {
			a := e.inst.Arrays[arr]
			units := map[int][]float64{}
			for _, u := range e.own.Owned(sl) {
				vals := unitSlice(a, dim, u)
				units[u] = vals
				bytes += 8*len(vals) + 16
			}
			msg.Owned[arr] = units
		}
		for _, arr := range e.plan.Replicated {
			a := e.inst.Arrays[arr]
			vals := append([]float64(nil), a.Data...)
			msg.Replicated[arr] = vals
			bytes += 8 * len(vals)
		}
		e.ep.Send(sl, "init", bytes, msg)
		e.res.Counters.Add("scatter_bytes", int64(bytes))
	}
}

// noteDispatch folds a terminating slave's compute-dispatch accounting
// into the engine counters: how much owned work ran through AOT-built
// native kernels, compiled range kernels, or the lowered interpreter
// fallback.
func (e *engine) noteDispatch(st StatusMsg) {
	e.res.Counters.Add("aot_units", st.AotUnits)
	e.res.Counters.Add("kernel_units", st.KernelUnits)
	e.res.Counters.Add("fallback_units", st.FallbackUnits)
	e.res.Counters.Add("overlap_rounds", st.OverlapRounds)
	e.res.Counters.Add("overlap_fallback", st.OverlapFallback)
}

// handleRound runs the load-balancing decision for one complete round and
// sends the (possibly checkpoint-preceded) instructions.
func (e *engine) handleRound(raw map[int]StatusMsg) {
	ids := e.pol.Participants(e)
	first := raw[ids[0]]
	phase, hookIdx := first.Phase, first.HookIndex
	for _, id := range ids {
		st := raw[id]
		if st.Phase != phase || st.HookIndex != hookIdx {
			panic(fmt.Sprintf("dlb: master: slave %d at phase %d/hook %d, slave %d at %d/%d",
				id, st.Phase, st.HookIndex, ids[0], phase, hookIdx))
		}
	}
	e.res.Phases++
	e.res.Counters.Add("rounds", 1)
	e.res.Counters.Add("status_reports", int64(len(raw)))
	e.pol.RoundObserved(e)

	e.ep.Charge(e.topo.roundCharge(e, len(raw)))

	// Mirror the slave control flow: retire completed work (§4.7).
	meta := e.exec.Phases[hookIdx]
	for u := 0; u < e.own.Units(); u++ {
		if (u < meta.ActiveLo || u >= meta.ActiveHi) && e.own.IsActive(u) {
			e.own.Deactivate(u)
		}
	}

	// Pool the round's measured per-block costs (in id order, keeping the
	// fold deterministic) into one model update, and account the weighted
	// work completed since the last checkpoint.
	if e.costModel != nil {
		var pool []CostBlock
		for _, id := range ids {
			st := raw[id]
			e.wRisk += e.costModel.WeightDone(st.CostBlocks)
			pool = append(pool, st.CostBlocks...)
		}
		e.costModel.Observe(pool)
	}

	var d core.Decision
	if e.cfg.DLB {
		d = e.topo.decide(e, raw, ids, phase, hookIdx)
		if sum := rateSum(d.FilteredRates); sum > 0 {
			e.wRate = sum
		}
		e.recordLoad(phase, ids)
	}

	ckptSeq := 0
	if e.topo.ckptEligible() {
		ckptSeq = e.pol.CheckpointSeq(e, phase, ids)
	}

	instr := InstrMsg{Phase: phase, HookIndex: hookIdx, Moves: d.Moves, SkipHooks: d.SkipHooks, Epoch: e.pol.Epoch(), CkptSeq: ckptSeq}
	bytes := 64
	for _, mv := range d.Moves {
		bytes += 16 + 8*len(mv.Units)
	}
	if e.relay {
		// Grouped fan-out: one GroupShiftMsg per leader; each leader
		// relays the instruction to its members off the master's critical
		// path.
		for g := 0; g < e.part.Groups(); g++ {
			e.ep.Send(e.part.Leader(g), "ginstr", bytes, GroupShiftMsg{Instr: instr})
		}
		e.res.Counters.Add("instr_bytes", int64(bytes)*int64(e.part.Groups()))
	} else {
		for _, id := range ids {
			e.ep.Send(id, "instr", bytes, instr)
		}
		e.res.Counters.Add("instr_bytes", int64(bytes)*int64(len(ids)))
	}
	e.pol.RoundSent(e)
}

func rateSum(rates []float64) float64 {
	s := 0.0
	for _, r := range rates {
		s += r
	}
	return s
}

// recordLoad samples the post-decision weighted load distribution: max and
// mean per-participant weighted active backlog under the run's cost model
// (weight 1.0 everywhere without one). max/mean is the imbalance factor
// dlbrun -stats reports.
func (e *engine) recordLoad(phase int, ids []int) {
	var w []float64
	if e.costModel != nil {
		w = e.costModel.Weights()
	}
	totals := core.ActiveWeightTotals(e.own, w)
	max, sum := 0.0, 0.0
	for _, id := range ids {
		if id >= len(totals) {
			continue
		}
		if totals[id] > max {
			max = totals[id]
		}
		sum += totals[id]
	}
	if sum <= 0 {
		return
	}
	e.res.Loads = append(e.res.Loads, LoadSample{Phase: phase, Max: max, Mean: sum / float64(len(ids))})
}

// riskTime converts the weighted work completed since the last committed
// checkpoint into an equivalent busy duration at the current aggregate
// rate. Only the learned cost model uses it: under uniform weights the
// wall-clock interval the checkpoint policy already measures is the same
// signal.
func (e *engine) riskTime() (time.Duration, bool) {
	if e.costMode != CostLearned || e.wRate <= 0 {
		return 0, false
	}
	return time.Duration(e.wRisk / e.wRate * float64(time.Second)), true
}

// gather assembles the final arrays from the surviving participants. With a
// fault policy a failure after completion was committed (the documented
// post-done window) surfaces as a run error instead of a hang.
func (e *engine) gather() {
	final := map[string]*loopir.Array{}
	for arr, a := range e.inst.Arrays {
		final[arr] = a.Clone()
	}
	timeout := e.pol.GatherTimeout(e)
	for range e.pol.Participants(e) {
		var msg cluster.Msg
		if timeout > 0 {
			m, ok := recvTimeout(e.ep, cluster.AnySource, "gather", timeout)
			if !ok {
				e.err = fmt.Errorf("dlb: gather timed out after %v (slave failed after completion was committed)", timeout)
				return
			}
			msg = m
		} else {
			msg = e.ep.Recv(cluster.AnySource, "gather")
		}
		g := msg.Data.(GatherMsg)
		e.res.Counters.Add("gather_msgs", 1)
		for arr, units := range g.Data {
			dim := e.plan.DistArrays[arr]
			for u, vals := range units {
				setUnitSlice(final[arr], dim, u, vals)
			}
		}
		for arr, vals := range g.Reduced {
			copy(final[arr].Data, vals)
		}
	}
	e.final = final
}
