package dlb

import (
	"fmt"

	"repro/internal/aot"
	"repro/internal/compile"
)

// aotBundle is a plan's built native kernels plus the region table that
// maps each OwnedLoop step to its kernel index. The bundle is built once
// per run — before any cooperative slave process spawns, so the toolchain
// subprocess never blocks the virtual-time scheduler — and shared
// read-only by every slave, which binds the kernels to its own arrays.
type aotBundle struct {
	prog    *aot.Program
	regions []*compile.OwnedLoop
}

// buildAOT emits, builds (or cache-loads) and wraps the native kernels
// for every distributed loop of the plan.
func buildAOT(plan *compile.Plan, params map[string]int) (*aotBundle, error) {
	regions := compile.KernelRegions(plan)
	if len(regions) == 0 {
		return nil, fmt.Errorf("dlb: plan %s has no distributed loop to compile", plan.Prog.Name)
	}
	spec := aot.Spec{Prog: plan.Prog, Params: params}
	for _, r := range regions {
		spec.Regions = append(spec.Regions, aot.Region{DistVar: r.Var, Body: r.Body})
	}
	prog, err := aot.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("dlb: aot build: %w", err)
	}
	return &aotBundle{prog: prog, regions: regions}, nil
}

// kernelFor returns the loaded kernel for a distributed-loop step, or nil
// when the emitter refused the region (the caller falls back a tier).
func (b *aotBundle) kernelFor(st *compile.OwnedLoop) *aot.Kernel {
	if b == nil {
		return nil
	}
	for i, r := range b.regions {
		if r == st {
			return b.prog.Kernels[i]
		}
	}
	return nil
}
