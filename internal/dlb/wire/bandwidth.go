package wire

import (
	"bytes"
	"sync"
	"time"

	"repro/internal/dlb"
)

// CodecBandwidth estimates the data-plane bandwidth (bytes/sec) of the
// given codec by timing encode+decode round trips of a representative
// work-movement payload in memory. On loopback TCP the codec dominates
// movement cost, so this is the right seed for the balancer's move-cost
// prior (the EMA then tracks real measured movements). Measured once per
// codec per process and cached.
func CodecBandwidth(binary bool) float64 {
	bwOnce[b2i(binary)].Do(func() {
		bwCache[b2i(binary)] = measureBandwidth(binary)
	})
	return bwCache[b2i(binary)]
}

var (
	bwOnce  [2]sync.Once
	bwCache [2]float64
)

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}

func measureBandwidth(binary bool) float64 {
	// ~1 MB of float payload: 8 units of two 8192-element arrays.
	w := dlb.WorkMsg{Data: map[string][][]float64{}}
	for _, arr := range []string{"x", "y"} {
		var slices [][]float64
		for u := 0; u < 8; u++ {
			col := make([]float64, 8192)
			for i := range col {
				col[i] = float64(u*8192 + i)
			}
			slices = append(slices, col)
		}
		w.Data[arr] = slices
	}
	for u := 0; u < 8; u++ {
		w.Units = append(w.Units, u)
	}
	env := Envelope{Tag: "bw", From: 0, Payload: w}

	var buf bytes.Buffer
	send := NewConn(&buf)
	send.SetBinary(binary)
	recv := NewConn(&buf)
	// Warm up codec state (gob's type dictionary, pooled buffers) and
	// learn the wire size.
	if err := send.Send(env); err != nil {
		return 1e9 // codec broken; fall back to the old constant prior
	}
	size := buf.Len()
	if _, err := recv.Recv(); err != nil {
		return 1e9
	}

	const rounds = 8
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if err := send.Send(env); err != nil {
			return 1e9
		}
		if _, err := recv.Recv(); err != nil {
			return 1e9
		}
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 1e9
	}
	return float64(size) * rounds / elapsed.Seconds()
}
