package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/dlb"
)

// FuzzDecode feeds arbitrary bytes to the frame decoder. The decoder must
// terminate with a clean error (or a decoded envelope) on every input —
// never panic, hang, or allocate past the frame limit.
func FuzzDecode(f *testing.F) {
	// Seed corpus: valid frames of representative messages, a truncation,
	// an oversized length prefix, and a length prefix with no payload.
	valid := func(e Envelope) []byte {
		var buf bytes.Buffer
		if err := NewConn(&buf).Send(e); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(valid(Envelope{Tag: "status", From: 3, Payload: dlb.StatusMsg{Phase: 2, Units: 10}}))
	f.Add(valid(Envelope{Tag: "status", From: 3, Payload: dlb.StatusMsg{Phase: 2, Units: 10,
		CostBlocks: []dlb.CostBlock{{Lo: 0, Hi: 8, PerUnit: 2e-6}}}}))
	f.Add(valid(Envelope{Tag: "hb", From: 0, Payload: dlb.HeartbeatMsg{Epoch: 1}}))
	f.Add(valid(Envelope{Tag: TagHello, From: 1, Payload: HelloMsg{Version: 1, Node: 1}}))
	f.Add(valid(Envelope{Tag: "reduce:r", From: 2, Payload: []float64{1, 2, 3}})[:7])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00})
	f.Add([]byte{0x00, 0x00, 0x10, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(bytes.NewBuffer(data))
		// A tight limit keeps the fuzzer from legitimately allocating huge
		// frames out of its own length prefixes.
		c.SetMaxFrame(1 << 20)
		for i := 0; i < 16; i++ {
			_, err := c.Recv()
			if err != nil {
				var fe *FrameLimitError
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.As(err, &fe) {
					return
				}
				// Any other decode error is fine too — it must only be an
				// error, not a panic.
				return
			}
		}
	})
}
