package wire

import "time"

// Connection-lifecycle frames for the distributed TCP runtime
// (internal/netrun). The data-plane messages — status, instruction, work
// movement, slices — are exactly the simulated runtime's types, carried in
// Envelopes whose Tag/From mirror the cluster's tagged messages; the frames
// below exist only at connection setup and membership changes, where the
// goroutine runtime had nothing to negotiate.

// RunSpec describes one compiled run completely enough for a slave daemon
// to reconstruct it: the program source, the binding of its parameters, the
// distribution directive, and every configuration knob whose value slave
// code consults. The master ships it in the StartMsg; the slave compiles it
// with its own toolchain and proves agreement by echoing the hash of the
// plan it actually built (see HelloMsg.PlanHash).
type RunSpec struct {
	// Source is the program text (lang syntax; library programs are
	// formatted back to source).
	Source string
	// Params binds the program parameters.
	Params map[string]int
	// DistDims and DistLoops carry the distribution directive.
	DistDims  map[string]int
	DistLoops []string
	// HookFraction and HookCostFlops are the compiler's hook-placement cost
	// model (zero: defaults).
	HookFraction  float64
	HookCostFlops float64
	// Grain is the strip-mining block size the master chose; slaves must
	// instantiate with exactly this grain to share the phase schedule.
	Grain int
	// DLB and Synchronous select the balancing mode.
	DLB         bool
	Synchronous bool
	// Cores is the per-slave kernel worker count (dlb.Config.Cores);
	// daemons may override it locally with their own -cores setting.
	Cores int
	// Kernel is the execution tier for distributed-loop bodies
	// (dlb.Config.Kernel: "interp", "kernel" or "aot"; empty means
	// "kernel"). Daemons may override it locally with their own -kernel
	// setting. The tier does not enter the plan hash — all tiers execute
	// the same plan bit-identically.
	Kernel string
	// CostModel selects the balancer's view of work units
	// (dlb.Config.CostModel: "uniform" or "learned"; empty means
	// "uniform"). Like Kernel it does not enter the plan hash — the plan
	// is identical, only the master's weighting of it changes.
	CostModel string
	// Overlap gates the split-loop async ghost exchange
	// (dlb.Config.Overlap: "on" or "off"; empty means "on"). Like Kernel
	// it does not enter the plan hash — split-loop eligibility is recorded
	// in the rendered plan source, the knob only gates whether the runtime
	// uses it, and results are bit-identical either way.
	Overlap string
	// Groups, GroupExchangeEvery and GroupDiffusion select hierarchical
	// two-level balancing (dlb.Config fields of the same names; zero values
	// mean flat). Transport runs use the hierarchy decisions-only — reports
	// still flow directly to the master — but the spec ships the knobs so
	// daemons can enforce admission policy and log the group layout.
	Groups             int
	GroupExchangeEvery int
	GroupDiffusion     float64
	// HeartbeatEvery is the slave's sign-of-life interval.
	HeartbeatEvery time.Duration
	// FaultSpec is an optional fault.ParseSpec schedule injected on the
	// slave (loopback failure experiments; empty for production runs).
	FaultSpec string
}

// StartMsg is the master's first frame on every master↔slave connection:
// on a dialed connection it opens the handshake; on an accepted join
// connection it answers the joiner's HelloMsg. It assigns the node id and
// carries everything the slave needs to participate.
type StartMsg struct {
	Version int
	// Node is the id assigned to this slave (initial slot or joiner slot).
	Node int
	// Slaves is the initial membership size; Total includes joiner slots.
	Slaves int
	Total  int
	// PlanHash is the hash of the master's compiled plan; the slave's
	// HelloMsg must echo a matching hash of its own compilation.
	PlanHash string
	// MasterAddr is the master's join/reconnect listener ("" if disabled).
	MasterAddr string
	Spec       RunSpec
	// Roster seeds the peer address table (join connections, where the
	// run is already underway; initial connections get a RosterMsg once
	// every slave has handshaked).
	Roster map[int]string
	// Codec offers the data-plane codec (CodecBinary or ""). Binary frames
	// flow on this connection only if the slave's HelloMsg confirms the
	// offer; an old master leaves the field empty (gob's zero value) and
	// everything stays gob.
	Codec string
	// Codecs seeds the per-peer codec table alongside Roster on join
	// connections.
	Codecs map[int]string
}

// HelloMsg is the slave's side of the handshake. On a master-dialed
// connection it answers the StartMsg; on a slave-initiated connection to
// the master's listener it is the first frame (with Join set and PlanHash
// empty — the spec is not known yet — followed by a second, complete
// HelloMsg after the StartMsg arrives).
type HelloMsg struct {
	Version int
	// Node echoes the assigned id, or claims one on a reconnect attempt
	// (which the master refuses — state is gone; rejoining nodes must come
	// back as fresh joiners).
	Node int
	// PlanHash is the hash of the plan the slave compiled from the spec.
	PlanHash string
	// PeerAddr is the slave's own listener, where peers dial it for direct
	// work movement and boundary exchange.
	PeerAddr string
	// Join marks a slave-initiated connection asking for a joiner slot.
	Join bool
	// Codec accepts the StartMsg's codec offer (CodecBinary) or declines
	// it (""). An old slave's hello decodes with the field empty, so the
	// master falls back to gob for that peer.
	Codec string
	// InitCached announces that this daemon still holds the initial
	// scatter payload for the handshaken plan hash (and this node id and
	// membership size) from an earlier run: the master may ship a
	// FromCache marker instead of the bulk InitMsg.
	InitCached bool
}

// RosterMsg distributes the node id → listener address table. The master
// sends it on every connection once the initial membership has handshaked,
// and again whenever a joiner is admitted; slave transports use it to dial
// peers directly (work never relays through the master).
type RosterMsg struct {
	Addrs map[int]string
	// Codecs records each node's negotiated data-plane codec, so a slave
	// dialing a peer knows whether it may send binary frames there. Absent
	// entries (and rosters from old masters) mean gob.
	Codecs map[int]string
}

// PeerHelloMsg identifies the dialing slave on a slave↔slave connection;
// it is the first and only control frame there.
type PeerHelloMsg struct {
	From int
	// Codec announces the dialer's data-plane codec: the accepting side
	// may send binary frames back on this connection iff it is CodecBinary
	// (the dialer's own sends are governed by the roster's entry for the
	// acceptor).
	Codec string
}

// RejectMsg refuses a handshake. Code is one of the Reject* constants.
type RejectMsg struct {
	Code   string
	Detail string
}

// Handshake rejection codes.
const (
	RejectVersion   = "version-mismatch"
	RejectPlanHash  = "plan-hash-mismatch"
	RejectDuplicate = "duplicate-id"
	RejectFull      = "no-free-slots"
	RejectProtocol  = "protocol-error"
	// RejectBusy refuses a run because the daemon is already serving one.
	// It is the retryable rejection: a scheduler re-leasing a slave whose
	// previous session is still tearing down backs off and redials.
	RejectBusy = "busy"
	// RejectGroups refuses a run whose shipped group count exceeds the
	// daemon's admission cap (its -groups setting).
	RejectGroups = "groups-cap-exceeded"
)

// Control-frame tags. They live in the same Envelope namespace as data
// messages but are consumed by the transport layer, never surfaced to the
// master/slave protocol code.
const (
	TagStart     = "__start"
	TagHello     = "__hello"
	TagRoster    = "__roster"
	TagPeerHello = "__peer"
	TagReject    = "__reject"
)
