package wire

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dlb"
)

func TestRoundTripInMemory(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	msgs := []Envelope{
		{Tag: "status", From: 2, Payload: dlb.StatusMsg{
			Phase: 3, HookIndex: 7, Units: 128, Busy: 250 * time.Millisecond,
			MoveCost: time.Millisecond, InterCost: 200 * time.Microsecond,
		}},
		{Tag: "instr", From: -1, Payload: dlb.InstrMsg{
			Phase: 3, HookIndex: 7, SkipHooks: 2,
			Moves: []core.Move{{From: 0, To: 1, Units: []int{4, 5, 6}}},
		}},
		{Tag: "work", From: 0, Payload: dlb.WorkMsg{
			Units: []int{4, 5},
			Data:  map[string][][]float64{"b": {{1, 2}, {3, 4}}},
			Ghosts: map[string]map[int][]float64{
				"b": {6: {9, 9}},
			},
		}},
		{Tag: "pipe:b", From: 1, Payload: dlb.SliceMsg{Unit: 3, RowLo: 5, RowHi: 10, Vals: []float64{1.5, 2.5}}},
		{Tag: "gather", From: 2, Payload: dlb.GatherMsg{Data: map[string]map[int][]float64{"c": {0: {7}}}}},
	}
	for _, m := range msgs {
		if err := c.Send(m); err != nil {
			t.Fatalf("send %s: %v", m.Tag, err)
		}
	}
	for _, want := range msgs {
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %s: %v", want.Tag, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip mismatch:\n got  %#v\n want %#v", got, want)
		}
	}
}

// TestTCPStatusInstructionExchange runs one pipelined balancing phase over
// real TCP loopback: a master accepts N slaves, collects their statuses,
// and answers with an instruction carrying moves — the same message flow
// the simulated runtime uses.
func TestTCPStatusInstructionExchange(t *testing.T) {
	const slaves = 4
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	instr := dlb.InstrMsg{
		Phase:     0,
		SkipHooks: 3,
		Moves:     []core.Move{{From: 0, To: 1, Units: []int{9}}},
	}

	var wg sync.WaitGroup
	wg.Add(1)
	masterErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		conns := make([]*Conn, slaves)
		for i := 0; i < slaves; i++ {
			c, err := l.Accept()
			if err != nil {
				masterErr <- err
				return
			}
			conns[i] = c
		}
		seen := map[int]bool{}
		byFrom := map[int]*Conn{}
		for _, c := range conns {
			e, err := c.Recv()
			if err != nil {
				masterErr <- err
				return
			}
			st, ok := e.Payload.(dlb.StatusMsg)
			if !ok || e.Tag != "status" {
				masterErr <- fmt.Errorf("unexpected message %q %T", e.Tag, e.Payload)
				return
			}
			if st.Units != float64(100+e.From) {
				masterErr <- fmt.Errorf("slave %d reported %v units", e.From, st.Units)
				return
			}
			seen[e.From] = true
			byFrom[e.From] = c
		}
		if len(seen) != slaves {
			masterErr <- fmt.Errorf("saw %d distinct slaves", len(seen))
			return
		}
		for i := 0; i < slaves; i++ {
			if err := byFrom[i].Send(Envelope{Tag: "instr", From: -1, Payload: instr}); err != nil {
				masterErr <- err
				return
			}
		}
		masterErr <- nil
	}()

	results := make(chan error, slaves)
	for i := 0; i < slaves; i++ {
		go func(id int) {
			c, err := Dial(l.Addr())
			if err != nil {
				results <- err
				return
			}
			err = c.Send(Envelope{Tag: "status", From: id, Payload: dlb.StatusMsg{
				Phase: 0, Units: float64(100 + id), Busy: time.Second,
			}})
			if err != nil {
				results <- err
				return
			}
			e, err := c.Recv()
			if err != nil {
				results <- err
				return
			}
			got, ok := e.Payload.(dlb.InstrMsg)
			if !ok {
				results <- fmt.Errorf("slave %d: payload %T", id, e.Payload)
				return
			}
			if !reflect.DeepEqual(got, instr) {
				results <- fmt.Errorf("slave %d: instruction mismatch: %#v", id, got)
				return
			}
			results <- nil
		}(i)
	}
	for i := 0; i < slaves; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := <-masterErr; err != nil {
		t.Fatal(err)
	}
}

func TestLargeWorkMessage(t *testing.T) {
	// A realistic work-movement payload (64 columns of a 2000-row array
	// across two arrays) survives framing.
	var buf bytes.Buffer
	c := NewConn(&buf)
	w := dlb.WorkMsg{Data: map[string][][]float64{}}
	for _, arr := range []string{"b", "c"} {
		var slices [][]float64
		for u := 0; u < 64; u++ {
			col := make([]float64, 2000)
			for i := range col {
				col[i] = float64(u*2000 + i)
			}
			slices = append(slices, col)
			w.Units = append(w.Units, u)
		}
		w.Data[arr] = slices
	}
	if err := c.Send(Envelope{Tag: "work", From: 0, Payload: w}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	gw := got.Payload.(dlb.WorkMsg)
	if len(gw.Data["b"]) != 64 || gw.Data["c"][63][1999] != float64(63*2000+1999) {
		t.Fatal("large payload corrupted")
	}
}

// TestRoundTripFaultMessages covers every fault-tolerance message type:
// heartbeats, eviction, checkpoint request/part, join, adoption, and the
// completion commit.
func TestRoundTripFaultMessages(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	msgs := []Envelope{
		{Tag: "hb", From: 3, Payload: dlb.HeartbeatMsg{Epoch: 2, Phase: 9, HookIndex: 41}},
		{Tag: "evict", From: -1, Payload: dlb.EvictMsg{Epoch: 2, Reason: "lease expired"}},
		{Tag: "ckptreq", From: -1, Payload: dlb.CheckpointRequestMsg{Epoch: 2, Seq: 5}},
		{Tag: "ckpt", From: 1, Payload: dlb.CheckpointMsg{
			Epoch: 2, Seq: 5, Slave: 1, Hook: 40, Phase: 8, NextContact: 44,
			Owned: map[string]map[int][]float64{"b": {12: {1, 2, 3}}},
			Red:   map[string][]float64{"res": {0.5}},
			Meta:  true, Slaves: 4,
			Owner:      []int{0, 0, 1, 1, 2, 2, 3, 3},
			Active:     []bool{true, true, true, true, true, true, false, false},
			Replicated: map[string][]float64{"p": {7, 8}},
			RedSnap:    map[string][]float64{"res": {0.25}},
		}},
		{Tag: "join", From: 4, Payload: dlb.JoinMsg{Slave: 4}},
		{Tag: "recover", From: -1, Payload: dlb.AdoptMsg{
			Epoch: 3, Seq: 5, Hook: 40, Phase: 8, NextContact: 44, Slaves: 5,
			Alive:      []bool{true, false, true, true, true},
			Owner:      []int{0, 0, 2, 2, 3, 3, 4, 4},
			Active:     []bool{true, true, true, true, true, true, true, true},
			Owned:      map[string]map[int][]float64{"b": {0: {4, 5}, 2: {6}}},
			Red:        map[string][]float64{"res": {0.75}},
			Replicated: map[string][]float64{"p": {7, 8}},
			RedSnap:    map[string][]float64{"res": {0.25}},
		}},
		{Tag: "finack", From: -1, Payload: dlb.FinAckMsg{Epoch: 3}},
	}
	for _, m := range msgs {
		if err := c.Send(m); err != nil {
			t.Fatalf("send %s: %v", m.Tag, err)
		}
	}
	for _, want := range msgs {
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %s: %v", want.Tag, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip mismatch:\n got  %#v\n want %#v", got, want)
		}
	}
}

// TestTruncatedFrame asserts a frame cut mid-payload surfaces as a decode
// error, not a hang or a silent partial message.
func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.Send(Envelope{Tag: "hb", From: 0, Payload: dlb.HeartbeatMsg{Epoch: 1}}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, cut := range []int{3, len(whole) / 2, len(whole) - 1} {
		trunc := bytes.NewBuffer(append([]byte(nil), whole[:cut]...))
		if _, err := NewConn(trunc).Recv(); err == nil {
			t.Fatalf("truncated frame (cut at %d/%d) decoded without error", cut, len(whole))
		}
	}
}

func TestFrameLimit(t *testing.T) {
	f := &framed{rw: &bytes.Buffer{}, limit: DefaultMaxFrame}
	if _, err := f.Write(make([]byte, DefaultMaxFrame+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestFrameLimitTyped asserts both directions reject oversized frames with
// a *FrameLimitError carrying the offending size and the active limit.
func TestFrameLimitTyped(t *testing.T) {
	var buf bytes.Buffer
	send := NewConn(&buf)
	send.SetMaxFrame(64)
	big := make([]float64, 1024)
	err := send.Send(Envelope{Tag: "reduce:r", From: 1, Payload: big})
	var fe *FrameLimitError
	if !errors.As(err, &fe) {
		t.Fatalf("oversized send: got %v, want *FrameLimitError", err)
	}
	if fe.Limit != 64 || fe.Size <= 64 {
		t.Fatalf("bad error fields: size %d limit %d", fe.Size, fe.Limit)
	}

	// Inbound: encode unrestricted, decode with a tight limit.
	buf.Reset()
	if err := NewConn(&buf).Send(Envelope{Tag: "reduce:r", From: 1, Payload: big}); err != nil {
		t.Fatal(err)
	}
	recv := NewConn(&buf)
	recv.SetMaxFrame(64)
	_, err = recv.Recv()
	fe = nil
	if !errors.As(err, &fe) {
		t.Fatalf("oversized recv: got %v, want *FrameLimitError", err)
	}
	if fe.Limit != 64 {
		t.Fatalf("bad limit: %d", fe.Limit)
	}
}

// TestControlFrameRoundTrip exercises the netrun connection-lifecycle
// frames through a full encode/decode cycle.
func TestControlFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	frames := []Envelope{
		{Tag: TagStart, From: -1, Payload: StartMsg{
			Version: 1, Node: 2, Slaves: 4, Total: 8, PlanHash: "abc",
			MasterAddr: "127.0.0.1:9", Roster: map[int]string{0: "127.0.0.1:1"},
			Spec: RunSpec{
				Source: "program mm ...", Params: map[string]int{"n": 64},
				DistDims: map[string]int{"c": 1}, DistLoops: []string{"j"},
				Grain: 3, DLB: true, HeartbeatEvery: 100 * time.Millisecond,
				FaultSpec: "crash:1@0.5",
			},
		}},
		{Tag: TagHello, From: 2, Payload: HelloMsg{Version: 1, Node: 2, PlanHash: "abc", PeerAddr: "127.0.0.1:2", Join: true}},
		{Tag: TagRoster, From: -1, Payload: RosterMsg{Addrs: map[int]string{0: "a", 1: "b"}}},
		{Tag: TagPeerHello, From: 3, Payload: PeerHelloMsg{From: 3}},
		{Tag: TagReject, From: -1, Payload: RejectMsg{Code: RejectDuplicate, Detail: "node 2"}},
	}
	for _, e := range frames {
		if err := c.Send(e); err != nil {
			t.Fatalf("send %s: %v", e.Tag, err)
		}
	}
	for _, want := range frames {
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %s: %v", want.Tag, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, want)
		}
	}
}
