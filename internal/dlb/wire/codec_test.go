package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dlb"
)

// bulkMessages is one representative envelope per binary-codec message
// type, exercising nested maps, negative ints, empty sections, and
// non-trivial float payloads.
func bulkMessages() []Envelope {
	return []Envelope{
		{Tag: "work", From: 2, Payload: dlb.WorkMsg{
			Units: []int{4, 5, 9},
			Data: map[string][][]float64{
				"b": {{1.5, -2.25, 3}, {4, 5, 6}, {7, 8, 9}},
				"c": {{0.125}, {-0.5}, {1e300}},
			},
			Ghosts: map[string]map[int][]float64{"b": {3: {9, 9}, 10: {-1, -2}}},
		}},
		{Tag: "work-empty", From: 0, Payload: dlb.WorkMsg{Units: []int{1}}},
		{Tag: "pipe:b", From: 1, Payload: dlb.SliceMsg{Unit: 3, RowLo: -1, RowHi: -1, Vals: []float64{1.5, 2.5, -3.5}}},
		{Tag: "init", From: -1, Payload: dlb.InitMsg{
			Owned:      map[string]map[int][]float64{"a": {0: {1, 2}, 1: {3, 4}}, "b": {7: {5}}},
			Replicated: map[string][]float64{"p": {7, 8, 9}},
		}},
		{Tag: "init-cached", From: -1, Payload: dlb.InitMsg{FromCache: true}},
		{Tag: "gather", From: 3, Payload: dlb.GatherMsg{
			Data:    map[string]map[int][]float64{"c": {0: {7}, 2: {8, 9}}},
			Reduced: map[string][]float64{"res": {0.25}},
		}},
		{Tag: "ckpt", From: 1, Payload: dlb.CheckpointMsg{
			Epoch: 2, Seq: 5, Slave: 1, Hook: 40, Phase: 8, NextContact: 44,
			Owned: map[string]map[int][]float64{"b": {12: {1, 2, 3}}},
			Red:   map[string][]float64{"res": {0.5}},
			Meta:  true, Slaves: 4,
			Owner:      []int{0, 0, 1, 1, 2, 2, 3, 3},
			Active:     []bool{true, true, true, true, true, true, false, false},
			Replicated: map[string][]float64{"p": {7, 8}},
			RedSnap:    map[string][]float64{"res": {0.25}},
		}},
		{Tag: "recover", From: -1, Payload: dlb.AdoptMsg{
			Epoch: 3, Seq: 5, Hook: -1, Phase: 8, NextContact: 44, Slaves: 5,
			Alive:      []bool{true, false, true, true, true},
			Owner:      []int{0, 0, 2, 2, 3, 3, 4, 4},
			Active:     []bool{true, true, true, true, true, true, true, true},
			Owned:      map[string]map[int][]float64{"b": {0: {4, 5}, 2: {6}}},
			Red:        map[string][]float64{"res": {0.75}},
			Replicated: map[string][]float64{"p": {7, 8}},
			RedSnap:    map[string][]float64{"res": {0.25}},
		}},
		{Tag: "reduce:r", From: 2, Payload: []float64{1, -2, 3.75, 1e-300}},
		{Tag: "gstatus", From: 4, Payload: dlb.GroupStatusMsg{
			Group: 1,
			Ids:   []int{4, 5, 6, 7},
			Statuses: []dlb.StatusMsg{
				{Phase: 3, HookIndex: 40, Units: 12.5, Busy: 250 * time.Millisecond,
					MoveCost: time.Millisecond, InterCost: 300 * time.Microsecond, Epoch: 1},
				{Phase: 3, HookIndex: 40, Units: 11},
				{Phase: 3, HookIndex: 40, Done: true, AotUnits: 12, KernelUnits: 96, FallbackUnits: 4,
					OverlapRounds: 7, OverlapFallback: 2},
				{Phase: 3, HookIndex: 40, Units: 9.25, Busy: 260 * time.Millisecond,
					CostBlocks: []dlb.CostBlock{{Lo: 0, Hi: 32, PerUnit: 1.5e-6}, {Lo: 40, Hi: 41, PerUnit: 0.012}}},
			},
		}},
		{Tag: "gdone", From: 0, Payload: dlb.GroupStatusMsg{Group: 0, Ids: []int{0}, Statuses: []dlb.StatusMsg{{Done: true}}}},
		{Tag: "ginstr", From: -1, Payload: dlb.GroupShiftMsg{Instr: dlb.InstrMsg{
			Phase: 3, HookIndex: 40, SkipHooks: 12, Epoch: 1, CkptSeq: 2,
			Moves: []core.Move{
				{From: 3, To: 4, Units: []int{30, 31, 32}},
				{From: 5, To: 6, Units: []int{47}},
			},
		}}},
		{Tag: "ginstr-empty", From: -1, Payload: dlb.GroupShiftMsg{}},
	}
}

// TestBinaryRoundTripDifferential sends every bulk message type through
// both codecs and demands bit-identical results: the binary round trip
// must equal the gob round trip exactly (gob is the oracle).
func TestBinaryRoundTripDifferential(t *testing.T) {
	for _, env := range bulkMessages() {
		var gb bytes.Buffer
		gc := NewConn(&gb)
		if err := gc.Send(env); err != nil {
			t.Fatalf("%s: gob send: %v", env.Tag, err)
		}
		viaGob, err := gc.Recv()
		if err != nil {
			t.Fatalf("%s: gob recv: %v", env.Tag, err)
		}

		var bb bytes.Buffer
		bc := NewConn(&bb)
		bc.SetBinary(true)
		if err := bc.Send(env); err != nil {
			t.Fatalf("%s: binary send: %v", env.Tag, err)
		}
		viaBin, err := bc.Recv()
		if err != nil {
			t.Fatalf("%s: binary recv: %v", env.Tag, err)
		}
		if !reflect.DeepEqual(viaBin, viaGob) {
			t.Errorf("%s: binary round trip diverges from gob:\n binary %#v\n gob    %#v", env.Tag, viaBin, viaGob)
		}
	}
}

// TestBinaryFramesAreBinary asserts the negotiated codec is actually used:
// bulk payloads produce frames with the codec bit set, control payloads on
// the same connection stay gob.
func TestBinaryFramesAreBinary(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	c.SetBinary(true)
	if err := c.Send(Envelope{Tag: "reduce:r", From: 1, Payload: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[0]&0x80 == 0 {
		t.Fatal("bulk payload did not use a binary frame")
	}
	buf.Reset()
	if err := c.Send(Envelope{Tag: "hb", From: 1, Payload: dlb.HeartbeatMsg{Epoch: 1}}); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[0]&0x80 != 0 {
		t.Fatal("control payload was sent on the binary codec")
	}
}

// TestMixedCodecStream interleaves gob and binary frames on one connection
// in both orders — the receiver must demultiplex per frame.
func TestMixedCodecStream(t *testing.T) {
	var buf bytes.Buffer
	send := NewConn(&buf)
	send.SetBinary(true)
	msgs := []Envelope{
		{Tag: "status", From: 0, Payload: dlb.StatusMsg{Phase: 1, Units: 10}},
		{Tag: "work", From: 0, Payload: dlb.WorkMsg{Units: []int{1}, Data: map[string][][]float64{"b": {{1, 2}}}}},
		{Tag: "hb", From: 0, Payload: dlb.HeartbeatMsg{Epoch: 1, Phase: 2}},
		{Tag: "reduce:r", From: 0, Payload: []float64{3, 4}},
		{Tag: "instr", From: -1, Payload: dlb.InstrMsg{Phase: 1, SkipHooks: 2}},
	}
	for _, m := range msgs {
		if err := send.Send(m); err != nil {
			t.Fatalf("send %s: %v", m.Tag, err)
		}
	}
	recv := NewConn(&buf) // fresh gob state: sender's stream is self-contained
	for _, want := range msgs {
		got, err := recv.Recv()
		if err != nil {
			t.Fatalf("recv %s: %v", want.Tag, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("mixed stream mismatch:\n got  %#v\n want %#v", got, want)
		}
	}
}

// TestGobPeerRejectsNothing asserts a non-negotiated connection never
// emits binary frames, so an old peer (which predates the codec bit)
// decodes everything.
func TestGobPeerRejectsNothing(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	for _, env := range bulkMessages() {
		if err := c.Send(env); err != nil {
			t.Fatalf("send %s: %v", env.Tag, err)
		}
	}
	raw := buf.Bytes()
	for off := 0; off < len(raw); {
		if raw[off]&0x80 != 0 {
			t.Fatalf("binary frame at offset %d on a gob-only connection", off)
		}
		n := int(uint32(raw[off])<<24|uint32(raw[off+1])<<16|uint32(raw[off+2])<<8|uint32(raw[off+3])) &^ (1 << 31)
		off += 4 + n
	}
}

// TestBinaryDeterministic asserts identical messages encode to identical
// bytes (map iteration order must not leak into the wire format).
func TestBinaryDeterministic(t *testing.T) {
	for _, env := range bulkMessages() {
		a, err := appendBinaryEnvelope(nil, env)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			b, err := appendBinaryEnvelope(nil, env)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("%s: non-deterministic encoding", env.Tag)
			}
		}
	}
}

// TestBinaryDecodeCorrupt flips and truncates encoded frames; every
// mutation must fail cleanly or decode to something — never panic.
func TestBinaryDecodeCorrupt(t *testing.T) {
	for _, env := range bulkMessages() {
		b, err := appendBinaryEnvelope(nil, env)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(b); cut += 1 + len(b)/37 {
			if _, err := decodeBinaryEnvelope(b[:cut]); err == nil {
				t.Fatalf("%s: truncation at %d decoded cleanly", env.Tag, cut)
			}
		}
		for i := 0; i < len(b); i += 1 + len(b)/53 {
			mut := append([]byte(nil), b...)
			mut[i] ^= 0xff
			decodeBinaryEnvelope(mut) // must not panic; errors are fine
		}
	}
}

// TestGroupMessageFrameLimit pins the frame-limit error path for the group
// aggregates on both codecs: a GroupStatusMsg exceeding the connection's
// max frame fails with a typed *FrameLimitError, not corruption.
func TestGroupMessageFrameLimit(t *testing.T) {
	big := dlb.GroupStatusMsg{Group: 0, Ids: make([]int, 512), Statuses: make([]dlb.StatusMsg, 512)}
	for _, bin := range []bool{false, true} {
		var buf bytes.Buffer
		c := NewConn(&buf)
		c.SetBinary(bin)
		c.SetMaxFrame(256)
		err := c.Send(Envelope{Tag: "gstatus", From: 0, Payload: big})
		var fe *FrameLimitError
		if !errors.As(err, &fe) {
			t.Fatalf("binary=%v: oversized group frame: got %v, want *FrameLimitError", bin, err)
		}
		if fe.Limit != 256 || fe.Size <= 256 {
			t.Errorf("binary=%v: error reports size %d limit %d", bin, fe.Size, fe.Limit)
		}
	}
}

// FuzzBinaryDecode feeds arbitrary bytes to the binary envelope decoder
// (mirroring FuzzDecode for the gob path). It must terminate with a clean
// error or a decoded envelope on every input — never panic or hang.
func FuzzBinaryDecode(f *testing.F) {
	for _, env := range bulkMessages() {
		b, err := appendBinaryEnvelope(nil, env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		f.Add(b[:len(b)/2])
	}
	f.Add([]byte{binaryVersion, binWork})
	f.Add([]byte{0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		decodeBinaryEnvelope(data)
	})
}

// FuzzFrameDecode drives the full dual-codec Recv loop with arbitrary
// bytes, covering the codec-bit demultiplexer.
func FuzzFrameDecode(f *testing.F) {
	valid := func(e Envelope, binary bool) []byte {
		var buf bytes.Buffer
		c := NewConn(&buf)
		c.SetBinary(binary)
		if err := c.Send(e); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(valid(Envelope{Tag: "work", From: 1, Payload: dlb.WorkMsg{Units: []int{1}}}, true))
	f.Add(valid(Envelope{Tag: "status", From: 1, Payload: dlb.StatusMsg{Units: 5}}, false))
	f.Add(valid(Envelope{Tag: "status", From: 1, Payload: dlb.StatusMsg{Units: 5,
		CostBlocks: []dlb.CostBlock{{Lo: 3, Hi: 9, PerUnit: 4e-6}}}}, true))
	f.Add([]byte{0x80, 0x00, 0x00, 0x02, 0x01, 0x07})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(bytes.NewBuffer(data))
		c.SetMaxFrame(1 << 20)
		for i := 0; i < 16; i++ {
			if _, err := c.Recv(); err != nil {
				var fe *FrameLimitError
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.As(err, &fe) {
					return
				}
				return // any clean error is acceptable
			}
		}
	})
}
