package wire

import (
	"bytes"
	"testing"

	"repro/internal/dlb"
)

// benchWorkMsg is a representative work movement: 16 units of two
// 2000-element arrays plus adjacent ghosts (the payload shape every
// redistribution ships).
func benchWorkMsg() Envelope {
	w := dlb.WorkMsg{Ghosts: map[string]map[int][]float64{}}
	w.Data = map[string][][]float64{}
	for _, arr := range []string{"b", "c"} {
		var slices [][]float64
		for u := 0; u < 16; u++ {
			col := make([]float64, 2000)
			for i := range col {
				col[i] = float64(u*2000 + i)
			}
			slices = append(slices, col)
		}
		w.Data[arr] = slices
		w.Ghosts[arr] = map[int][]float64{16: make([]float64, 2000)}
	}
	for u := 0; u < 16; u++ {
		w.Units = append(w.Units, u)
	}
	return Envelope{Tag: "work", From: 1, Payload: w}
}

// benchCheckpointMsg is a representative checkpoint part: 32 owned units
// of one array plus the designated slave's shared state.
func benchCheckpointMsg() Envelope {
	owned := map[int][]float64{}
	for u := 0; u < 32; u++ {
		col := make([]float64, 1000)
		for i := range col {
			col[i] = float64(u + i)
		}
		owned[u] = col
	}
	return Envelope{Tag: "ckpt", From: 2, Payload: dlb.CheckpointMsg{
		Epoch: 1, Seq: 3, Slave: 2, Hook: 40, Phase: 8, NextContact: 44,
		Owned: map[string]map[int][]float64{"b": owned},
		Red:   map[string][]float64{"res": {0.5}},
		Meta:  true, Slaves: 4,
		Owner:      make([]int, 64),
		Active:     make([]bool, 64),
		Replicated: map[string][]float64{"p": make([]float64, 512)},
		RedSnap:    map[string][]float64{"res": {0.25}},
	}}
}

func envelopeBytes(e Envelope, binary bool) int64 {
	var buf bytes.Buffer
	c := NewConn(&buf)
	c.SetBinary(binary)
	if err := c.Send(e); err != nil {
		panic(err)
	}
	return int64(buf.Len())
}

// benchCodec measures one full encode+decode round trip per iteration.
// Conns are reused across iterations — exactly the steady state of a live
// connection, where gob's type dictionary and the pooled buffers are warm.
func benchCodec(b *testing.B, env Envelope, binary bool) {
	var buf bytes.Buffer
	send := NewConn(&buf)
	send.SetBinary(binary)
	recv := NewConn(&buf)
	b.SetBytes(envelopeBytes(env, binary))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := send.Send(env); err != nil {
			b.Fatal(err)
		}
		if _, err := recv.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireCodec compares the two codecs on the bulk data-plane
// messages (encode + frame + decode; bytes/op is the wire size).
func BenchmarkWireCodec(b *testing.B) {
	b.Run("work/gob", func(b *testing.B) { benchCodec(b, benchWorkMsg(), false) })
	b.Run("work/binary", func(b *testing.B) { benchCodec(b, benchWorkMsg(), true) })
	b.Run("ckpt/gob", func(b *testing.B) { benchCodec(b, benchCheckpointMsg(), false) })
	b.Run("ckpt/binary", func(b *testing.B) { benchCodec(b, benchCheckpointMsg(), true) })
}

// BenchmarkMoveCost measures the sender-side cost of one work movement —
// the quantity the balancer's MoveCostModel tracks and the adaptive
// period divides by ten — for each codec (encode + frame only; the wire
// write lands in a reused buffer).
func BenchmarkMoveCost(b *testing.B) {
	for _, c := range []struct {
		name   string
		binary bool
	}{{"gob", false}, {"binary", true}} {
		b.Run(c.name, func(b *testing.B) {
			env := benchWorkMsg()
			var buf bytes.Buffer
			conn := NewConn(&buf)
			conn.SetBinary(c.binary)
			b.SetBytes(envelopeBytes(env, c.binary))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := conn.Send(env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
