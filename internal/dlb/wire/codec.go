package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dlb"
)

// Binary bulk codec. Gob is convenient but slow for the float-bearing data
// plane: every []float64 element passes through reflection, and every
// message re-allocates. The messages that actually carry the computation's
// data — work movement, scatter/gather, slice exchange, checkpoints,
// recovery, and combine deltas — are encoded here by hand instead:
// little-endian fixed-width scalars, length-prefixed sections, and bulk
// float64 runs. Control messages (status, instructions, heartbeats,
// handshakes) stay on gob: they are tiny, and gob's self-describing stream
// keeps them easy to evolve.
//
// Whether a frame is gob or binary is carried per frame in the top bit of
// the length prefix (see framed), so both codecs interleave freely on one
// connection. Peers negotiate the right to *send* binary during the
// handshake (StartMsg/HelloMsg/PeerHelloMsg codec fields); every peer that
// knows the flag bit can decode both, and old peers are never sent a
// binary frame.

// Codec names exchanged during the handshake. The empty string means gob
// (the zero value an old peer's frames decode to).
const (
	CodecGob    = "gob"
	CodecBinary = "binary"
)

// binaryVersion is the first payload byte of every binary frame; bump it
// if the layout of any message changes (the handshake's ProtocolVersion
// already gates incompatible deployments, this is a belt-and-suspenders
// check against stream corruption).
const binaryVersion = 3

// Binary message type tags.
const (
	binWork = iota + 1
	binSlice
	binInit
	binGather
	binCheckpoint
	binAdopt
	binFloats
	binGroupStatus
	binGroupShift
)

// errNoBinary reports a payload type the binary codec does not cover;
// Conn.Send falls back to gob on it.
var errNoBinary = fmt.Errorf("wire: no binary encoding for payload type")

// corruptErr is the decoder's typed failure: a structurally invalid binary
// frame. It is an error, never a panic, for any input (see FuzzBinaryDecode).
func corruptErr(what string) error {
	return fmt.Errorf("wire: corrupt binary frame: %s", what)
}

// encBufPool recycles encode scratch buffers: one Get per binary Send, one
// Put as soon as the frame is on the wire. Buffers grow to the largest
// message they ever carried and stay at that size, so a steady-state run
// stops allocating on the data plane entirely.
var encBufPool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// --- encoding primitives (append-style) ---

func putU8(b []byte, v byte) []byte   { return append(b, v) }
func putBool(b []byte, v bool) []byte { return append(b, boolByte(v)) }

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

func putU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func putI64(b []byte, v int) []byte {
	u := uint64(int64(v))
	return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

func putString(b []byte, s string) []byte {
	b = putU32(b, uint32(len(s)))
	return append(b, s...)
}

func putF64(b []byte, v float64) []byte {
	u := math.Float64bits(v)
	return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

// putFloats writes a length-prefixed bulk float64 run.
func putFloats(b []byte, vals []float64) []byte {
	b = putU32(b, uint32(len(vals)))
	off := len(b)
	// One grow for the whole run, then fixed-width stores.
	b = append(b, make([]byte, 8*len(vals))...)
	for _, v := range vals {
		binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
		off += 8
	}
	return b
}

func putInts(b []byte, vals []int) []byte {
	b = putU32(b, uint32(len(vals)))
	for _, v := range vals {
		b = putI64(b, v)
	}
	return b
}

func putBools(b []byte, vals []bool) []byte {
	b = putU32(b, uint32(len(vals)))
	for _, v := range vals {
		b = append(b, boolByte(v))
	}
	return b
}

// putFloatsMap writes map[string][]float64 with sorted keys (deterministic
// encoding, so identical messages produce identical bytes). Single-entry
// maps — the overwhelmingly common case on the data plane — skip the
// key-sorting scratch slice.
func putFloatsMap(b []byte, m map[string][]float64) []byte {
	b = putU32(b, uint32(len(m)))
	if len(m) == 1 {
		for k, v := range m {
			b = putString(b, k)
			b = putFloats(b, v)
		}
		return b
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b = putString(b, k)
		b = putFloats(b, m[k])
	}
	return b
}

// putUnitMap writes map[int][]float64 in ascending unit order.
func putUnitMap(b []byte, m map[int][]float64) []byte {
	b = putU32(b, uint32(len(m)))
	if len(m) == 1 {
		for u, v := range m {
			b = putI64(b, u)
			b = putFloats(b, v)
		}
		return b
	}
	units := make([]int, 0, len(m))
	for u := range m {
		units = append(units, u)
	}
	sort.Ints(units)
	for _, u := range units {
		b = putI64(b, u)
		b = putFloats(b, m[u])
	}
	return b
}

// putOwnedMap writes map[string]map[int][]float64 (the owned-slices shape
// every scatter, gather, checkpoint, and recovery message shares).
func putOwnedMap(b []byte, m map[string]map[int][]float64) []byte {
	b = putU32(b, uint32(len(m)))
	if len(m) == 1 {
		for k, v := range m {
			b = putString(b, k)
			b = putUnitMap(b, v)
		}
		return b
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b = putString(b, k)
		b = putUnitMap(b, m[k])
	}
	return b
}

// putStatus writes one StatusMsg: fixed-width scalars followed by the
// length-prefixed per-block cost section (empty on uniform-cost runs).
func putStatus(b []byte, s dlb.StatusMsg) []byte {
	b = putI64(b, s.Phase)
	b = putI64(b, s.HookIndex)
	b = putF64(b, s.Units)
	b = putI64(b, int(s.Busy))
	b = putI64(b, int(s.MoveCost))
	b = putI64(b, int(s.InterCost))
	b = putBool(b, s.Done)
	b = putI64(b, s.Epoch)
	b = putI64(b, int(s.AotUnits))
	b = putI64(b, int(s.KernelUnits))
	b = putI64(b, int(s.FallbackUnits))
	b = putI64(b, int(s.OverlapRounds))
	b = putI64(b, int(s.OverlapFallback))
	b = putU32(b, uint32(len(s.CostBlocks)))
	for _, cb := range s.CostBlocks {
		b = putI64(b, cb.Lo)
		b = putI64(b, cb.Hi)
		b = putF64(b, cb.PerUnit)
	}
	return b
}

// putInstr writes one InstrMsg including its move list.
func putInstr(b []byte, m dlb.InstrMsg) []byte {
	b = putI64(b, m.Phase)
	b = putI64(b, m.HookIndex)
	b = putI64(b, m.SkipHooks)
	b = putI64(b, m.Epoch)
	b = putI64(b, m.CkptSeq)
	b = putU32(b, uint32(len(m.Moves)))
	for _, mv := range m.Moves {
		b = putI64(b, mv.From)
		b = putI64(b, mv.To)
		b = putInts(b, mv.Units)
	}
	return b
}

// interned caches the small recurring strings of the protocol — array
// names and message tags — so decoding doesn't allocate a fresh copy per
// message. The cache is bounded: tags can carry per-epoch suffixes, and an
// adversarial stream must not grow it without limit.
var (
	internMu sync.RWMutex
	interned = make(map[string]string, 64)
)

const internLimit = 1024

func intern(b []byte) string {
	internMu.RLock()
	s, ok := interned[string(b)] // lookup by string(b) does not allocate
	internMu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	internMu.Lock()
	if len(interned) < internLimit {
		interned[s] = s
	}
	internMu.Unlock()
	return s
}

// appendBinaryEnvelope encodes e into b, or returns errNoBinary when the
// payload has no binary layout (the caller then uses gob).
func appendBinaryEnvelope(b []byte, e Envelope) ([]byte, error) {
	var tag byte
	switch e.Payload.(type) {
	case dlb.WorkMsg:
		tag = binWork
	case dlb.SliceMsg:
		tag = binSlice
	case dlb.InitMsg:
		tag = binInit
	case dlb.GatherMsg:
		tag = binGather
	case dlb.CheckpointMsg:
		tag = binCheckpoint
	case dlb.AdoptMsg:
		tag = binAdopt
	case []float64:
		tag = binFloats
	case dlb.GroupStatusMsg:
		tag = binGroupStatus
	case dlb.GroupShiftMsg:
		tag = binGroupShift
	default:
		return b, errNoBinary
	}
	b = putU8(b, binaryVersion)
	b = putU8(b, tag)
	b = putI64(b, e.From)
	b = putString(b, e.Tag)
	switch p := e.Payload.(type) {
	case dlb.WorkMsg:
		b = putInts(b, p.Units)
		b = putU32(b, uint32(len(p.Data)))
		arrs := make([]string, 0, len(p.Data))
		for a := range p.Data {
			arrs = append(arrs, a)
		}
		sort.Strings(arrs)
		for _, a := range arrs {
			b = putString(b, a)
			slices := p.Data[a]
			b = putU32(b, uint32(len(slices)))
			for _, s := range slices {
				b = putFloats(b, s)
			}
		}
		b = putOwnedMap(b, p.Ghosts)
	case dlb.SliceMsg:
		b = putI64(b, p.Unit)
		b = putI64(b, p.RowLo)
		b = putI64(b, p.RowHi)
		b = putFloats(b, p.Vals)
	case dlb.InitMsg:
		b = putOwnedMap(b, p.Owned)
		b = putFloatsMap(b, p.Replicated)
		b = putBool(b, p.FromCache)
	case dlb.GatherMsg:
		b = putOwnedMap(b, p.Data)
		b = putFloatsMap(b, p.Reduced)
	case dlb.CheckpointMsg:
		b = putI64(b, p.Epoch)
		b = putI64(b, p.Seq)
		b = putI64(b, p.Slave)
		b = putI64(b, p.Hook)
		b = putI64(b, p.Phase)
		b = putI64(b, p.NextContact)
		b = putOwnedMap(b, p.Owned)
		b = putFloatsMap(b, p.Red)
		b = putBool(b, p.Meta)
		b = putI64(b, p.Slaves)
		b = putInts(b, p.Owner)
		b = putBools(b, p.Active)
		b = putFloatsMap(b, p.Replicated)
		b = putFloatsMap(b, p.RedSnap)
	case dlb.AdoptMsg:
		b = putI64(b, p.Epoch)
		b = putI64(b, p.Seq)
		b = putI64(b, p.Hook)
		b = putI64(b, p.Phase)
		b = putI64(b, p.NextContact)
		b = putI64(b, p.Slaves)
		b = putBools(b, p.Alive)
		b = putInts(b, p.Owner)
		b = putBools(b, p.Active)
		b = putOwnedMap(b, p.Owned)
		b = putFloatsMap(b, p.Red)
		b = putFloatsMap(b, p.Replicated)
		b = putFloatsMap(b, p.RedSnap)
	case []float64:
		b = putFloats(b, p)
	case dlb.GroupStatusMsg:
		b = putI64(b, p.Group)
		b = putInts(b, p.Ids)
		b = putU32(b, uint32(len(p.Statuses)))
		for _, s := range p.Statuses {
			b = putStatus(b, s)
		}
	case dlb.GroupShiftMsg:
		b = putInstr(b, p.Instr)
	}
	return b, nil
}

// --- decoding ---

// binReader walks a binary frame with bounds checks; every read either
// succeeds or returns a corruptErr, so arbitrary bytes can never panic or
// over-allocate past the frame.
type binReader struct {
	b   []byte
	off int
	// arena hands out float storage for the message's slices from shared
	// backing arrays: one allocation covers many slices. The slices of one
	// decoded message alias one backing array but never each other, and no
	// consumer appends to a received slice (they copy out of or over it),
	// so the sharing is invisible.
	arena []float64
}

func (r *binReader) u8() (byte, error) {
	if r.off+1 > len(r.b) {
		return 0, corruptErr("truncated byte")
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *binReader) boolv() (bool, error) {
	v, err := r.u8()
	return v != 0, err
}

func (r *binReader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, corruptErr("truncated u32")
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *binReader) i64() (int, error) {
	if r.off+8 > len(r.b) {
		return 0, corruptErr("truncated i64")
	}
	v := int64(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return int(v), nil
}

func (r *binReader) f64() (float64, error) {
	if r.off+8 > len(r.b) {
		return 0, corruptErr("truncated f64")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v, nil
}

// count reads a u32 length prefix and sanity-checks it against the bytes
// that remain, given a minimum encoded size per element — a hostile length
// can never force an allocation larger than the frame itself.
func (r *binReader) count(elemBytes int) (int, error) {
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if int64(n)*int64(elemBytes) > int64(len(r.b)-r.off) {
		return 0, corruptErr("length prefix exceeds frame")
	}
	return int(n), nil
}

func (r *binReader) str() (string, error) {
	n, err := r.count(1)
	if err != nil {
		return "", err
	}
	s := intern(r.b[r.off : r.off+n])
	r.off += n
	return s, nil
}

// take hands out n floats of arena storage. The arena is sized from the
// bytes remaining in the frame — the floats still to be decoded cannot
// exceed that — so the first bulk take allocates backing for the entire
// message and every later slice is a subslice of it.
func (r *binReader) take(n int) []float64 {
	if n > len(r.arena) {
		sz := (len(r.b) - r.off) / 8
		if sz < n {
			sz = n
		}
		r.arena = make([]float64, sz)
	}
	s := r.arena[:n:n]
	r.arena = r.arena[n:]
	return s
}

func (r *binReader) floats() ([]float64, error) {
	n, err := r.count(8)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := r.take(n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
		r.off += 8
	}
	return out, nil
}

func (r *binReader) ints() ([]int, error) {
	n, err := r.count(8)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]int, n)
	for i := range out {
		out[i], _ = r.i64() // bounds pre-checked by count
	}
	return out, nil
}

func (r *binReader) bools() ([]bool, error) {
	n, err := r.count(1)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]bool, n)
	for i := range out {
		v, _ := r.u8()
		out[i] = v != 0
	}
	return out, nil
}

func (r *binReader) floatsMap() (map[string][]float64, error) {
	n, err := r.count(5) // string prefix + floats prefix ≥ 8, 5 is safely below
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	m := make(map[string][]float64, n)
	for i := 0; i < n; i++ {
		k, err := r.str()
		if err != nil {
			return nil, err
		}
		v, err := r.floats()
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}

func (r *binReader) unitMap() (map[int][]float64, error) {
	n, err := r.count(12) // i64 unit + floats prefix
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	m := make(map[int][]float64, n)
	for i := 0; i < n; i++ {
		u, err := r.i64()
		if err != nil {
			return nil, err
		}
		v, err := r.floats()
		if err != nil {
			return nil, err
		}
		m[u] = v
	}
	return m, nil
}

func (r *binReader) ownedMap() (map[string]map[int][]float64, error) {
	n, err := r.count(9) // string prefix + unit-map prefix
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	m := make(map[string]map[int][]float64, n)
	for i := 0; i < n; i++ {
		k, err := r.str()
		if err != nil {
			return nil, err
		}
		v, err := r.unitMap()
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}

// statusSize is the minimum encoded size of one StatusMsg: 12 scalars, the
// Done bool, and the cost-block count prefix. Cost blocks (24 bytes each)
// follow when present.
const statusSize = 12*8 + 1 + 4

// costBlockSize is the fixed encoded size of one CostBlock (Lo, Hi, PerUnit).
const costBlockSize = 3 * 8

func (r *binReader) status() (dlb.StatusMsg, error) {
	var s dlb.StatusMsg
	if r.off+statusSize > len(r.b) {
		return s, corruptErr("truncated status")
	}
	s.Phase, _ = r.i64()
	s.HookIndex, _ = r.i64()
	s.Units, _ = r.f64()
	busy, _ := r.i64()
	mc, _ := r.i64()
	ic, _ := r.i64()
	s.Busy, s.MoveCost, s.InterCost = time.Duration(busy), time.Duration(mc), time.Duration(ic)
	s.Done, _ = r.boolv()
	s.Epoch, _ = r.i64()
	au, _ := r.i64()
	ku, _ := r.i64()
	fu, _ := r.i64()
	s.AotUnits, s.KernelUnits, s.FallbackUnits = int64(au), int64(ku), int64(fu)
	or, _ := r.i64()
	of, _ := r.i64()
	s.OverlapRounds, s.OverlapFallback = int64(or), int64(of)
	nb, err := r.count(costBlockSize)
	if err != nil {
		return s, err
	}
	if nb > 0 {
		s.CostBlocks = make([]dlb.CostBlock, nb)
		for i := range s.CostBlocks {
			s.CostBlocks[i].Lo, _ = r.i64() // bounds pre-checked by count
			s.CostBlocks[i].Hi, _ = r.i64()
			s.CostBlocks[i].PerUnit, _ = r.f64()
		}
	}
	return s, nil
}

func (r *binReader) instr() (dlb.InstrMsg, error) {
	var m dlb.InstrMsg
	var err error
	ints := []*int{&m.Phase, &m.HookIndex, &m.SkipHooks, &m.Epoch, &m.CkptSeq}
	for _, dst := range ints {
		if *dst, err = r.i64(); err != nil {
			return m, err
		}
	}
	n, err := r.count(20) // from + to + units prefix
	if err != nil {
		return m, err
	}
	if n == 0 {
		return m, nil
	}
	m.Moves = make([]core.Move, n)
	for i := range m.Moves {
		if m.Moves[i].From, err = r.i64(); err != nil {
			return m, err
		}
		if m.Moves[i].To, err = r.i64(); err != nil {
			return m, err
		}
		if m.Moves[i].Units, err = r.ints(); err != nil {
			return m, err
		}
	}
	return m, nil
}

// decodeBinaryEnvelope decodes one binary frame payload. The returned
// envelope owns all its float storage — nothing aliases the frame buffer,
// which the caller reuses for the next frame.
func decodeBinaryEnvelope(payload []byte) (Envelope, error) {
	r := &binReader{b: payload}
	ver, err := r.u8()
	if err != nil {
		return Envelope{}, err
	}
	if ver != binaryVersion {
		return Envelope{}, corruptErr(fmt.Sprintf("unknown binary version %d", ver))
	}
	typ, err := r.u8()
	if err != nil {
		return Envelope{}, err
	}
	from, err := r.i64()
	if err != nil {
		return Envelope{}, err
	}
	tag, err := r.str()
	if err != nil {
		return Envelope{}, err
	}
	e := Envelope{Tag: tag, From: from}
	switch typ {
	case binWork:
		var p dlb.WorkMsg
		if p.Units, err = r.ints(); err != nil {
			return Envelope{}, err
		}
		na, err := r.count(9)
		if err != nil {
			return Envelope{}, err
		}
		if na > 0 {
			p.Data = make(map[string][][]float64, na)
			for i := 0; i < na; i++ {
				k, err := r.str()
				if err != nil {
					return Envelope{}, err
				}
				ns, err := r.count(4)
				if err != nil {
					return Envelope{}, err
				}
				slices := make([][]float64, ns)
				for j := range slices {
					if slices[j], err = r.floats(); err != nil {
						return Envelope{}, err
					}
				}
				p.Data[k] = slices
			}
		}
		if p.Ghosts, err = r.ownedMap(); err != nil {
			return Envelope{}, err
		}
		e.Payload = p
	case binSlice:
		var p dlb.SliceMsg
		if p.Unit, err = r.i64(); err != nil {
			return Envelope{}, err
		}
		if p.RowLo, err = r.i64(); err != nil {
			return Envelope{}, err
		}
		if p.RowHi, err = r.i64(); err != nil {
			return Envelope{}, err
		}
		if p.Vals, err = r.floats(); err != nil {
			return Envelope{}, err
		}
		e.Payload = p
	case binInit:
		var p dlb.InitMsg
		if p.Owned, err = r.ownedMap(); err != nil {
			return Envelope{}, err
		}
		if p.Replicated, err = r.floatsMap(); err != nil {
			return Envelope{}, err
		}
		if p.FromCache, err = r.boolv(); err != nil {
			return Envelope{}, err
		}
		e.Payload = p
	case binGather:
		var p dlb.GatherMsg
		if p.Data, err = r.ownedMap(); err != nil {
			return Envelope{}, err
		}
		if p.Reduced, err = r.floatsMap(); err != nil {
			return Envelope{}, err
		}
		e.Payload = p
	case binCheckpoint:
		var p dlb.CheckpointMsg
		ints := []*int{&p.Epoch, &p.Seq, &p.Slave, &p.Hook, &p.Phase, &p.NextContact}
		for _, dst := range ints {
			if *dst, err = r.i64(); err != nil {
				return Envelope{}, err
			}
		}
		if p.Owned, err = r.ownedMap(); err != nil {
			return Envelope{}, err
		}
		if p.Red, err = r.floatsMap(); err != nil {
			return Envelope{}, err
		}
		if p.Meta, err = r.boolv(); err != nil {
			return Envelope{}, err
		}
		if p.Slaves, err = r.i64(); err != nil {
			return Envelope{}, err
		}
		if p.Owner, err = r.ints(); err != nil {
			return Envelope{}, err
		}
		if p.Active, err = r.bools(); err != nil {
			return Envelope{}, err
		}
		if p.Replicated, err = r.floatsMap(); err != nil {
			return Envelope{}, err
		}
		if p.RedSnap, err = r.floatsMap(); err != nil {
			return Envelope{}, err
		}
		e.Payload = p
	case binAdopt:
		var p dlb.AdoptMsg
		ints := []*int{&p.Epoch, &p.Seq, &p.Hook, &p.Phase, &p.NextContact, &p.Slaves}
		for _, dst := range ints {
			if *dst, err = r.i64(); err != nil {
				return Envelope{}, err
			}
		}
		if p.Alive, err = r.bools(); err != nil {
			return Envelope{}, err
		}
		if p.Owner, err = r.ints(); err != nil {
			return Envelope{}, err
		}
		if p.Active, err = r.bools(); err != nil {
			return Envelope{}, err
		}
		if p.Owned, err = r.ownedMap(); err != nil {
			return Envelope{}, err
		}
		if p.Red, err = r.floatsMap(); err != nil {
			return Envelope{}, err
		}
		if p.Replicated, err = r.floatsMap(); err != nil {
			return Envelope{}, err
		}
		if p.RedSnap, err = r.floatsMap(); err != nil {
			return Envelope{}, err
		}
		e.Payload = p
	case binFloats:
		vals, err := r.floats()
		if err != nil {
			return Envelope{}, err
		}
		e.Payload = vals
	case binGroupStatus:
		var p dlb.GroupStatusMsg
		if p.Group, err = r.i64(); err != nil {
			return Envelope{}, err
		}
		if p.Ids, err = r.ints(); err != nil {
			return Envelope{}, err
		}
		n, err := r.count(statusSize)
		if err != nil {
			return Envelope{}, err
		}
		if n > 0 {
			p.Statuses = make([]dlb.StatusMsg, n)
			for i := range p.Statuses {
				if p.Statuses[i], err = r.status(); err != nil {
					return Envelope{}, err
				}
			}
		}
		e.Payload = p
	case binGroupShift:
		var p dlb.GroupShiftMsg
		if p.Instr, err = r.instr(); err != nil {
			return Envelope{}, err
		}
		e.Payload = p
	default:
		return Envelope{}, corruptErr(fmt.Sprintf("unknown message type %d", typ))
	}
	if r.off != len(r.b) {
		return Envelope{}, corruptErr(fmt.Sprintf("%d trailing bytes", len(r.b)-r.off))
	}
	return e, nil
}
