// Package wire gives the dlb master/slave protocol a real network
// encoding: length-prefixed gob frames carrying the same message types the
// simulated runtime exchanges (status, instruction, work movement, slices,
// scatter and gather). It demonstrates that the protocol is wire-ready —
// the simulated cluster's tagged messages map one-to-one onto TCP frames —
// and provides the conn/listener plumbing a multi-host deployment would
// use.
package wire

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"

	"repro/internal/core"
	"repro/internal/dlb"
)

// Envelope frames one protocol message.
type Envelope struct {
	Tag     string
	From    int
	Payload interface{}
}

// DefaultMaxFrame bounds a frame to guard against corrupt length prefixes
// (and, on a real network, against a hostile or confused peer allocating
// unbounded memory on the receiver). Override per connection with
// Conn.SetMaxFrame.
const DefaultMaxFrame = 1 << 30

// FrameLimitError reports a frame whose declared or actual size exceeds the
// connection's limit. It distinguishes a policy rejection from transport
// corruption so callers can surface it precisely.
type FrameLimitError struct {
	Size  int // declared (inbound) or attempted (outbound) frame size
	Limit int
}

func (e *FrameLimitError) Error() string {
	return fmt.Sprintf("wire: frame of %d bytes exceeds limit %d", e.Size, e.Limit)
}

func init() {
	gob.Register(dlb.StatusMsg{})
	gob.Register(dlb.InstrMsg{})
	gob.Register(dlb.WorkMsg{})
	gob.Register(dlb.SliceMsg{})
	gob.Register(dlb.InitMsg{})
	gob.Register(dlb.GatherMsg{})
	gob.Register(core.Move{})
	// Fault-tolerance protocol (heartbeat/eviction/checkpoint/recovery/join).
	gob.Register(dlb.HeartbeatMsg{})
	gob.Register(dlb.EvictMsg{})
	gob.Register(dlb.CheckpointRequestMsg{})
	gob.Register(dlb.CheckpointMsg{})
	gob.Register(dlb.JoinMsg{})
	gob.Register(dlb.AdoptMsg{})
	gob.Register(dlb.FinAckMsg{})
	// Combine all-reduce deltas travel as bare slices.
	gob.Register([]float64(nil))
	// Connection-lifecycle control frames (the netrun transport).
	gob.Register(StartMsg{})
	gob.Register(HelloMsg{})
	gob.Register(RosterMsg{})
	gob.Register(PeerHelloMsg{})
	gob.Register(RejectMsg{})
}

// Conn sends and receives envelopes over a byte stream with 4-byte
// big-endian length prefixes.
type Conn struct {
	rw  io.ReadWriter
	fr  *framed
	enc *gob.Encoder
	dec *gob.Decoder
}

// NewConn wraps a stream. Gob streams are stateful, so a Conn must be used
// by a single sender and a single receiver (one per direction is fine).
func NewConn(rw io.ReadWriter) *Conn {
	fr := &framed{rw: rw, limit: DefaultMaxFrame}
	return &Conn{rw: rw, fr: fr, enc: gob.NewEncoder(fr), dec: gob.NewDecoder(fr)}
}

// SetMaxFrame bounds the size of a single frame in both directions.
// Oversized frames fail with a *FrameLimitError. Non-positive limits
// restore the default.
func (c *Conn) SetMaxFrame(n int) {
	if n <= 0 {
		n = DefaultMaxFrame
	}
	c.fr.limit = n
}

// Send writes one envelope.
func (c *Conn) Send(e Envelope) error {
	return c.enc.Encode(e)
}

// Recv reads one envelope.
func (c *Conn) Recv() (Envelope, error) {
	var e Envelope
	if err := c.dec.Decode(&e); err != nil {
		return Envelope{}, err
	}
	return e, nil
}

// framed adapts a stream to gob with explicit length-prefixed frames so a
// reader can never over-read past a message boundary (gob normally manages
// its own framing; the explicit prefix makes the protocol language-neutral
// at the transport level and lets non-gob tooling skip messages).
type framed struct {
	rw    io.ReadWriter
	limit int
	buf   []byte // unread remainder of the current inbound frame
}

func (f *framed) Write(p []byte) (int, error) {
	if len(p) > f.limit {
		return 0, &FrameLimitError{Size: len(p), Limit: f.limit}
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(p)))
	if _, err := f.rw.Write(hdr[:]); err != nil {
		return 0, err
	}
	return f.rw.Write(p)
}

func (f *framed) Read(p []byte) (int, error) {
	for len(f.buf) == 0 {
		var hdr [4]byte
		if _, err := io.ReadFull(f.rw, hdr[:]); err != nil {
			return 0, err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if int64(n) > int64(f.limit) {
			return 0, &FrameLimitError{Size: int(n), Limit: f.limit}
		}
		f.buf = make([]byte, n)
		if _, err := io.ReadFull(f.rw, f.buf); err != nil {
			return 0, err
		}
	}
	n := copy(p, f.buf)
	f.buf = f.buf[n:]
	return n, nil
}

// Listener accepts slave connections for a wire master.
type Listener struct {
	l net.Listener
}

// Listen opens a TCP listener (addr like "127.0.0.1:0").
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept waits for one connection.
func (l *Listener) Accept() (*Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }

// Dial connects to a wire master.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}
