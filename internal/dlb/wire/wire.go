// Package wire gives the dlb master/slave protocol a real network
// encoding: length-prefixed frames carrying the same message types the
// simulated runtime exchanges (status, instruction, work movement, slices,
// scatter and gather). Two codecs share one connection: gob for the small
// self-describing control messages, and a hand-rolled little-endian binary
// layout (codec.go) for the bulk float-bearing data plane. Each frame's
// length prefix carries a codec bit, so the two interleave freely; the
// right to send binary is negotiated during the handshake and old peers
// transparently fall back to all-gob.
package wire

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/dlb"
)

// Envelope frames one protocol message.
type Envelope struct {
	Tag     string
	From    int
	Payload interface{}
}

// DefaultMaxFrame bounds a frame to guard against corrupt length prefixes
// (and, on a real network, against a hostile or confused peer allocating
// unbounded memory on the receiver). Override per connection with
// Conn.SetMaxFrame. It must stay below binaryFrameBit: the prefix's top
// bit marks the frame's codec, not its size.
const DefaultMaxFrame = 1 << 30

// binaryFrameBit marks a frame as binary-codec in the length prefix's top
// bit. Gob frames (and every frame an old peer emits) have it clear.
const binaryFrameBit = 1 << 31

// FrameLimitError reports a frame whose declared or actual size exceeds the
// connection's limit. It distinguishes a policy rejection from transport
// corruption so callers can surface it precisely.
type FrameLimitError struct {
	Size  int // declared (inbound) or attempted (outbound) frame size
	Limit int
}

func (e *FrameLimitError) Error() string {
	return fmt.Sprintf("wire: frame of %d bytes exceeds limit %d", e.Size, e.Limit)
}

func init() {
	gob.Register(dlb.StatusMsg{})
	gob.Register(dlb.InstrMsg{})
	gob.Register(dlb.WorkMsg{})
	gob.Register(dlb.SliceMsg{})
	gob.Register(dlb.InitMsg{})
	gob.Register(dlb.GatherMsg{})
	gob.Register(dlb.GroupStatusMsg{})
	gob.Register(dlb.GroupShiftMsg{})
	gob.Register(core.Move{})
	// Fault-tolerance protocol (heartbeat/eviction/checkpoint/recovery/join).
	gob.Register(dlb.HeartbeatMsg{})
	gob.Register(dlb.EvictMsg{})
	gob.Register(dlb.CheckpointRequestMsg{})
	gob.Register(dlb.CheckpointMsg{})
	gob.Register(dlb.JoinMsg{})
	gob.Register(dlb.AdoptMsg{})
	gob.Register(dlb.FinAckMsg{})
	// Combine all-reduce deltas travel as bare slices.
	gob.Register([]float64(nil))
	// Connection-lifecycle control frames (the netrun transport).
	gob.Register(StartMsg{})
	gob.Register(HelloMsg{})
	gob.Register(RosterMsg{})
	gob.Register(PeerHelloMsg{})
	gob.Register(RejectMsg{})
}

// Conn sends and receives envelopes over a byte stream with 4-byte
// big-endian length prefixes (top bit: codec flag).
type Conn struct {
	rw     io.ReadWriter
	fr     *framed
	enc    *gob.Encoder
	dec    *gob.Decoder
	binary bool // negotiated: bulk messages go out on the binary codec
}

// NewConn wraps a stream. Gob streams are stateful, so a Conn must be used
// by a single sender and a single receiver (one per direction is fine).
func NewConn(rw io.ReadWriter) *Conn {
	fr := &framed{rw: rw, limit: DefaultMaxFrame}
	return &Conn{rw: rw, fr: fr, enc: gob.NewEncoder(fr), dec: gob.NewDecoder(fr)}
}

// SetMaxFrame bounds the size of a single frame in both directions.
// Oversized frames fail with a *FrameLimitError. Non-positive limits
// restore the default.
func (c *Conn) SetMaxFrame(n int) {
	if n <= 0 || n > DefaultMaxFrame {
		n = DefaultMaxFrame
	}
	c.fr.limit = n
}

// SetBinary grants (or revokes) the right to send bulk messages on the
// binary codec. Call it only after the handshake has confirmed the peer
// negotiated CodecBinary; receiving binary needs no grant — any Conn
// decodes both codecs. Send and SetBinary must come from the same
// goroutine (the writer), like the gob encoder itself.
func (c *Conn) SetBinary(on bool) { c.binary = on }

// Binary reports whether bulk sends use the binary codec.
func (c *Conn) Binary() bool { return c.binary }

// Send writes one envelope: on a binary-negotiated connection the bulk
// float-bearing payloads (codec.go) go out as one binary frame from a
// pooled scratch buffer; everything else is gob.
func (c *Conn) Send(e Envelope) error {
	if c.binary {
		bp := encBufPool.Get().(*[]byte)
		b, err := appendBinaryEnvelope((*bp)[:0], e)
		if err == nil {
			*bp = b[:0]
			_, err = c.fr.writeFrame(b, true)
			encBufPool.Put(bp)
			return err
		}
		encBufPool.Put(bp)
		if err != errNoBinary {
			return err
		}
	}
	return c.enc.Encode(e)
}

// Recv reads one envelope of either codec.
func (c *Conn) Recv() (Envelope, error) {
	for len(c.fr.buf) == 0 {
		payload, bin, err := c.fr.readFrame()
		if err != nil {
			return Envelope{}, err
		}
		if bin {
			return decodeBinaryEnvelope(payload)
		}
		c.fr.buf = payload
	}
	// A gob frame (or the remainder of one): the decoder pulls the rest of
	// the value's frames through framed.Read as it needs them.
	var e Envelope
	if err := c.dec.Decode(&e); err != nil {
		return Envelope{}, err
	}
	return e, nil
}

// Release returns the connection's grown frame buffer to the pool. Call it
// once, when the connection is torn down (netrun's router does); the Conn
// allocates a fresh buffer if it is used again.
func (c *Conn) Release() { c.fr.release() }

// frameBufPool recycles inbound frame buffers across connections, so a
// transport that churns links (joiners, reconnects) does not re-grow a
// fresh buffer per connection.
var frameBufPool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// framed adapts a stream to explicit length-prefixed frames so a reader
// can never over-read past a message boundary, and so each frame can carry
// its codec in the prefix's top bit. Gob rides on Read/Write (one gob
// message segment per frame); binary envelopes use readFrame/writeFrame
// directly. The inbound buffer is reused across frames — a frame is always
// fully consumed before the next one is read — so steady-state receiving
// allocates nothing.
type framed struct {
	rw    io.ReadWriter
	limit int
	buf   []byte  // unread remainder of the current inbound gob frame
	store *[]byte // pooled backing for inbound frames, grown once
}

// readFrame reads one whole frame, returning its payload and codec. The
// payload aliases the reused frame buffer: it is valid only until the next
// readFrame (decoders must copy out what outlives the frame — the binary
// decoder's arena does).
func (f *framed) readFrame() ([]byte, bool, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(f.rw, hdr[:]); err != nil {
		return nil, false, err
	}
	word := binary.BigEndian.Uint32(hdr[:])
	bin := word&binaryFrameBit != 0
	n := int(word &^ binaryFrameBit)
	if n > f.limit {
		return nil, false, &FrameLimitError{Size: n, Limit: f.limit}
	}
	if f.store == nil {
		f.store = frameBufPool.Get().(*[]byte)
	}
	if cap(*f.store) < n {
		*f.store = make([]byte, 0, n)
	}
	payload := (*f.store)[:n]
	if _, err := io.ReadFull(f.rw, payload); err != nil {
		return nil, false, err
	}
	return payload, bin, nil
}

func (f *framed) release() {
	if f.store != nil {
		frameBufPool.Put(f.store)
		f.store = nil
		f.buf = nil
	}
}

func (f *framed) writeFrame(p []byte, bin bool) (int, error) {
	if len(p) > f.limit {
		return 0, &FrameLimitError{Size: len(p), Limit: f.limit}
	}
	var hdr [4]byte
	word := uint32(len(p))
	if bin {
		word |= binaryFrameBit
	}
	binary.BigEndian.PutUint32(hdr[:], word)
	if _, err := f.rw.Write(hdr[:]); err != nil {
		return 0, err
	}
	return f.rw.Write(p)
}

// Write frames one gob stream segment (the gob encoder writes each Encode
// through here, possibly as several segments).
func (f *framed) Write(p []byte) (int, error) {
	return f.writeFrame(p, false)
}

// Read serves the gob decoder. A binary frame can never legitimately start
// inside a gob value — writers emit whole envelopes — so hitting one here
// is stream corruption.
func (f *framed) Read(p []byte) (int, error) {
	for len(f.buf) == 0 {
		payload, bin, err := f.readFrame()
		if err != nil {
			return 0, err
		}
		if bin {
			return 0, corruptErr("binary frame inside a gob value")
		}
		f.buf = payload
	}
	n := copy(p, f.buf)
	f.buf = f.buf[n:]
	return n, nil
}

// ReadByte lets the gob decoder use framed directly instead of wrapping it
// in a bufio.Reader, whose readahead could steal bytes of a following
// frame.
func (f *framed) ReadByte() (byte, error) {
	for len(f.buf) == 0 {
		payload, bin, err := f.readFrame()
		if err != nil {
			return 0, err
		}
		if bin {
			return 0, corruptErr("binary frame inside a gob value")
		}
		f.buf = payload
	}
	b := f.buf[0]
	f.buf = f.buf[1:]
	return b, nil
}

// Listener accepts slave connections for a wire master.
type Listener struct {
	l net.Listener
}

// Listen opens a TCP listener (addr like "127.0.0.1:0").
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept waits for one connection.
func (l *Listener) Accept() (*Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }

// Dial connects to a wire master.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}
