// Package wire gives the dlb master/slave protocol a real network
// encoding: length-prefixed gob frames carrying the same message types the
// simulated runtime exchanges (status, instruction, work movement, slices,
// scatter and gather). It demonstrates that the protocol is wire-ready —
// the simulated cluster's tagged messages map one-to-one onto TCP frames —
// and provides the conn/listener plumbing a multi-host deployment would
// use.
package wire

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"

	"repro/internal/core"
	"repro/internal/dlb"
)

// Envelope frames one protocol message.
type Envelope struct {
	Tag     string
	From    int
	Payload interface{}
}

// maxFrame bounds a frame to guard against corrupt length prefixes.
const maxFrame = 1 << 30

func init() {
	gob.Register(dlb.StatusMsg{})
	gob.Register(dlb.InstrMsg{})
	gob.Register(dlb.WorkMsg{})
	gob.Register(dlb.SliceMsg{})
	gob.Register(dlb.InitMsg{})
	gob.Register(dlb.GatherMsg{})
	gob.Register(core.Move{})
	// Fault-tolerance protocol (heartbeat/eviction/checkpoint/recovery/join).
	gob.Register(dlb.HeartbeatMsg{})
	gob.Register(dlb.EvictMsg{})
	gob.Register(dlb.CheckpointRequestMsg{})
	gob.Register(dlb.CheckpointMsg{})
	gob.Register(dlb.JoinMsg{})
	gob.Register(dlb.AdoptMsg{})
	gob.Register(dlb.FinAckMsg{})
}

// Conn sends and receives envelopes over a byte stream with 4-byte
// big-endian length prefixes.
type Conn struct {
	rw  io.ReadWriter
	enc *gob.Encoder
	dec *gob.Decoder
}

// NewConn wraps a stream. Gob streams are stateful, so a Conn must be used
// by a single sender and a single receiver (one per direction is fine).
func NewConn(rw io.ReadWriter) *Conn {
	fr := &framed{rw: rw}
	return &Conn{rw: rw, enc: gob.NewEncoder(fr), dec: gob.NewDecoder(fr)}
}

// Send writes one envelope.
func (c *Conn) Send(e Envelope) error {
	return c.enc.Encode(e)
}

// Recv reads one envelope.
func (c *Conn) Recv() (Envelope, error) {
	var e Envelope
	if err := c.dec.Decode(&e); err != nil {
		return Envelope{}, err
	}
	return e, nil
}

// framed adapts a stream to gob with explicit length-prefixed frames so a
// reader can never over-read past a message boundary (gob normally manages
// its own framing; the explicit prefix makes the protocol language-neutral
// at the transport level and lets non-gob tooling skip messages).
type framed struct {
	rw  io.ReadWriter
	buf []byte // unread remainder of the current inbound frame
}

func (f *framed) Write(p []byte) (int, error) {
	if len(p) > maxFrame {
		return 0, fmt.Errorf("wire: frame of %d bytes exceeds limit", len(p))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(p)))
	if _, err := f.rw.Write(hdr[:]); err != nil {
		return 0, err
	}
	return f.rw.Write(p)
}

func (f *framed) Read(p []byte) (int, error) {
	for len(f.buf) == 0 {
		var hdr [4]byte
		if _, err := io.ReadFull(f.rw, hdr[:]); err != nil {
			return 0, err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > maxFrame {
			return 0, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
		}
		f.buf = make([]byte, n)
		if _, err := io.ReadFull(f.rw, f.buf); err != nil {
			return 0, err
		}
	}
	n := copy(p, f.buf)
	f.buf = f.buf[n:]
	return n, nil
}

// Listener accepts slave connections for a wire master.
type Listener struct {
	l net.Listener
}

// Listen opens a TCP listener (addr like "127.0.0.1:0").
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept waits for one connection.
func (l *Listener) Accept() (*Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }

// Dial connects to a wire master.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}
