package wire

import "testing"

// TestCodecBandwidthOrdering pins the property the master's move-cost
// prior relies on: the measured binary data plane is faster than gob, so
// seeding cluster.Config.Bandwidth from the negotiated codec yields a
// smaller per-unit cost (and thus a shorter adaptive period) on binary
// runs. Values are cached, so repeated calls must agree.
func TestCodecBandwidthOrdering(t *testing.T) {
	gob := CodecBandwidth(false)
	bin := CodecBandwidth(true)
	if gob <= 0 || bin <= 0 {
		t.Fatalf("non-positive bandwidth: gob %g, binary %g", gob, bin)
	}
	if bin <= gob {
		t.Errorf("binary codec measured no faster than gob: %g <= %g bytes/s", bin, gob)
	}
	if again := CodecBandwidth(true); again != bin {
		t.Errorf("bandwidth not cached: %g then %g", bin, again)
	}
}
