package dlb

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/depend"
	"repro/internal/loopir"
)

func planFor(t testing.TB, name string) *compile.Plan {
	t.Helper()
	specs := map[string]depend.DistSpec{
		"mm":     {Dims: map[string]int{"c": 1, "b": 1}, Loops: []string{"j"}},
		"sor":    {Dims: map[string]int{"b": 0}, Loops: []string{"j"}},
		"lu":     {Dims: map[string]int{"a": 1}, Loops: []string{"j"}},
		"jacobi": {Dims: map[string]int{"a": 0, "anew": 0}, Loops: []string{"i", "i2"}},
		"axpy":   {Dims: map[string]int{"x": 0, "y": 0}, Loops: []string{"i"}},
	}
	prog := loopir.Library()[name]
	if prog == nil {
		t.Fatalf("no program %q", name)
	}
	plan, err := compile.Compile(prog, compile.Options{Dist: specs[name]})
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return plan
}

// runAndVerify executes the plan in parallel and demands bit-exact
// agreement with the sequential reference (per-element operations execute
// in the same order, so even floating point must match exactly).
func runAndVerify(t *testing.T, plan *compile.Plan, params map[string]int, cfg Config, cc cluster.Config) *Result {
	t.Helper()
	cfg.Plan = plan
	cfg.Params = params
	res, err := Run(cfg, cc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ref, err := loopir.NewInstance(plan.Prog, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	reduction := map[string]bool{}
	for _, r := range plan.Reductions {
		reduction[r.Array] = true
	}
	for name, want := range ref.Arrays {
		got := res.Final[name]
		if got == nil {
			t.Fatalf("array %q missing from result", name)
		}
		d := want.MaxAbsDiff(got)
		if reduction[name] {
			// Parallel reductions reassociate the sum, so the last bits
			// may differ from the sequential order.
			if d > 1e-9 {
				t.Errorf("reduction array %q differs from sequential reference by %g", name, d)
			}
		} else if d != 0 {
			t.Errorf("array %q differs from sequential reference by %g", name, d)
		}
	}
	return res
}

func TestMMParallelCorrect(t *testing.T) {
	res := runAndVerify(t, planFor(t, "mm"), map[string]int{"n": 24},
		Config{DLB: true}, cluster.Config{Slaves: 3})
	if res.Phases == 0 {
		t.Error("no master interactions")
	}
}

func TestSORParallelCorrect(t *testing.T) {
	res := runAndVerify(t, planFor(t, "sor"), map[string]int{"n": 20, "maxiter": 4},
		Config{DLB: true}, cluster.Config{Slaves: 4})
	if !res.Exec.Plan.Restricted {
		t.Error("SOR should be restricted")
	}
}

func TestLUParallelCorrect(t *testing.T) {
	runAndVerify(t, planFor(t, "lu"), map[string]int{"n": 20},
		Config{DLB: true}, cluster.Config{Slaves: 3})
}

func TestJacobiParallelCorrect(t *testing.T) {
	runAndVerify(t, planFor(t, "jacobi"), map[string]int{"n": 16, "maxiter": 3},
		Config{DLB: true}, cluster.Config{Slaves: 3})
}

func TestAxpyParallelCorrect(t *testing.T) {
	runAndVerify(t, planFor(t, "axpy"), map[string]int{"n": 40, "maxiter": 5},
		Config{DLB: true}, cluster.Config{Slaves: 4})
}

func TestSingleSlave(t *testing.T) {
	runAndVerify(t, planFor(t, "sor"), map[string]int{"n": 12, "maxiter": 3},
		Config{DLB: true}, cluster.Config{Slaves: 1})
}

func TestStaticDistribution(t *testing.T) {
	res := runAndVerify(t, planFor(t, "mm"), map[string]int{"n": 16},
		Config{DLB: false}, cluster.Config{Slaves: 4})
	if res.Moves != 0 {
		t.Errorf("static run moved work %d times", res.Moves)
	}
}

func TestSynchronousMode(t *testing.T) {
	runAndVerify(t, planFor(t, "sor"), map[string]int{"n": 16, "maxiter": 3},
		Config{DLB: true, Synchronous: true}, cluster.Config{Slaves: 3})
}

func TestForcedFineGrain(t *testing.T) {
	// Grain 1 = no strip mining benefit (Figure 3b's fine-grain pipeline).
	res := runAndVerify(t, planFor(t, "sor"), map[string]int{"n": 16, "maxiter": 3},
		Config{DLB: true, ForcedGrain: 1}, cluster.Config{Slaves: 3})
	if res.Grain != 1 {
		t.Errorf("grain = %d, want 1", res.Grain)
	}
}

func TestDLBMovesWorkAwayFromLoadedSlave(t *testing.T) {
	// Slave 0 has a constant competing job; runs long enough for several
	// balancing periods.
	plan := planFor(t, "mm")
	params := map[string]int{"n": 32}
	cfg := Config{DLB: true, FlopCost: 50 * time.Microsecond, CollectTrace: true}
	cc := cluster.Config{Slaves: 2, Load: []cluster.LoadProfile{cluster.Constant(1)}}
	res := runAndVerify(t, plan, params, cfg, cc)
	if res.Moves == 0 {
		t.Fatal("no work moved despite persistent imbalance")
	}
	// Final trace sample should show slave 0 with well under half the work.
	last := res.Trace[len(res.Trace)-1]
	var w0, w1 int
	for _, s := range res.Trace {
		if s.Phase == last.Phase {
			if s.Slave == 0 {
				w0 = s.Work
			} else {
				w1 = s.Work
			}
		}
	}
	if w0 >= w1 {
		t.Errorf("loaded slave kept %d units vs %d on the free slave", w0, w1)
	}
}

func TestDLBRestrictedMovesUnderLoad(t *testing.T) {
	plan := planFor(t, "sor")
	params := map[string]int{"n": 48, "maxiter": 14}
	cfg := Config{DLB: true, FlopCost: 60 * time.Microsecond}
	cc := cluster.Config{Slaves: 3, Load: []cluster.LoadProfile{cluster.Constant(1)}}
	res := runAndVerify(t, plan, params, cfg, cc)
	if res.Moves == 0 {
		t.Fatal("no restricted moves under persistent load")
	}
}

func TestLUShrinkingWithDLB(t *testing.T) {
	plan := planFor(t, "lu")
	params := map[string]int{"n": 40}
	cfg := Config{DLB: true, FlopCost: 80 * time.Microsecond}
	cc := cluster.Config{Slaves: 3, Load: []cluster.LoadProfile{cluster.Constant(1)}}
	runAndVerify(t, plan, params, cfg, cc)
}

func TestHeterogeneousSpeeds(t *testing.T) {
	plan := planFor(t, "mm")
	params := map[string]int{"n": 32}
	cfg := Config{DLB: true, FlopCost: 50 * time.Microsecond, CollectTrace: true}
	cc := cluster.Config{Slaves: 2, Speed: []float64{1.0, 3.0}}
	res := runAndVerify(t, plan, params, cfg, cc)
	if res.Moves == 0 {
		t.Fatal("no work moved to the 3x faster slave")
	}
	last := res.Trace[len(res.Trace)-1]
	var w [2]int
	for _, s := range res.Trace {
		if s.Phase == last.Phase {
			w[s.Slave] = s.Work
		}
	}
	if w[1] <= w[0] {
		t.Errorf("fast slave owns %d units vs %d on the slow one", w[1], w[0])
	}
}

func TestSpeedupDedicated(t *testing.T) {
	plan := planFor(t, "mm")
	params := map[string]int{"n": 32}
	cfg := Config{Plan: plan, Params: params, DLB: true, FlopCost: 20 * time.Microsecond}
	res, err := Run(cfg, cluster.Config{Slaves: 4})
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := SequentialTime(plan, params, cfg.FlopCost)
	if err != nil {
		t.Fatal(err)
	}
	speedup := seq.Seconds() / res.Elapsed.Seconds()
	if speedup < 2.0 {
		t.Errorf("speedup on 4 dedicated slaves = %.2f, want > 2", speedup)
	}
}

func TestOscillatingLoadTrace(t *testing.T) {
	plan := planFor(t, "mm")
	params := map[string]int{"n": 32}
	cfg := Config{DLB: true, FlopCost: 400 * time.Microsecond, CollectTrace: true}
	cc := cluster.Config{
		Slaves: 4,
		Load: []cluster.LoadProfile{cluster.SquareWave{
			Period: 6 * time.Second, OnDuration: 3 * time.Second, Tasks: 1,
		}},
	}
	res := runAndVerify(t, plan, params, cfg, cc)
	if len(res.Trace) == 0 {
		t.Fatal("no trace collected")
	}
	// Work assignment of slave 0 must vary over time (tracking the wave).
	min0, max0 := 1<<30, 0
	for _, s := range res.Trace {
		if s.Slave == 0 {
			if s.Work < min0 {
				min0 = s.Work
			}
			if s.Work > max0 {
				max0 = s.Work
			}
		}
	}
	if max0-min0 < 2 {
		t.Errorf("work assignment did not track the oscillating load: min %d max %d", min0, max0)
	}
}

func TestUsageAccounting(t *testing.T) {
	plan := planFor(t, "mm")
	params := map[string]int{"n": 24}
	cfg := Config{Plan: plan, Params: params, DLB: true}
	res, err := Run(cfg, cluster.Config{Slaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Usage) != 2 {
		t.Fatalf("usage entries = %d, want 2", len(res.Usage))
	}
	for i, u := range res.Usage {
		if u.AppCPU <= 0 {
			t.Errorf("slave %d did no work: %+v", i, u)
		}
		if u.CompetingCPU != 0 {
			t.Errorf("slave %d shows competing CPU on a dedicated node: %v", i, u.CompetingCPU)
		}
	}
}

func TestPeriodicSORParallelCorrect(t *testing.T) {
	// Periodic boundary copies exercise §4.6: owner blocks with remote
	// reads, bracketed by broadcasts.
	prog := loopir.Library()["periodic-sor"]
	plan, err := compile.Compile(prog, compile.Options{
		Dist: depend.DistSpec{Dims: map[string]int{"b": 0}, Loops: []string{"j"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	runAndVerify(t, plan, map[string]int{"n": 20, "maxiter": 4},
		Config{DLB: true}, cluster.Config{Slaves: 4})
}

func TestPeriodicSORWithMovement(t *testing.T) {
	prog := loopir.Library()["periodic-sor"]
	plan, err := compile.Compile(prog, compile.Options{
		Dist: depend.DistSpec{Dims: map[string]int{"b": 0}, Loops: []string{"j"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := runAndVerify(t, plan, map[string]int{"n": 48, "maxiter": 14},
		Config{DLB: true, FlopCost: 60 * time.Microsecond},
		cluster.Config{Slaves: 3, Load: []cluster.LoadProfile{cluster.Constant(1)}})
	if res.Moves == 0 {
		t.Fatal("no movement under load")
	}
}

func TestDeterministicRuns(t *testing.T) {
	// A run is a pure function of its configuration: two executions give
	// identical timing, movement, and trace.
	plan := planFor(t, "mm")
	params := map[string]int{"n": 32}
	cfg := Config{Plan: plan, Params: params, DLB: true,
		FlopCost: 100 * time.Microsecond, CollectTrace: true}
	cc := cluster.Config{Slaves: 4, Load: []cluster.LoadProfile{
		cluster.SquareWave{Period: 6 * time.Second, OnDuration: 3 * time.Second, Tasks: 1},
	}}
	r1, err := Run(cfg, cc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, cc)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Elapsed != r2.Elapsed || r1.Moves != r2.Moves || r1.UnitsMoved != r2.UnitsMoved || r1.Phases != r2.Phases {
		t.Fatalf("nondeterministic: (%v,%d,%d,%d) vs (%v,%d,%d,%d)",
			r1.Elapsed, r1.Moves, r1.UnitsMoved, r1.Phases,
			r2.Elapsed, r2.Moves, r2.UnitsMoved, r2.Phases)
	}
	if len(r1.Trace) != len(r2.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(r1.Trace), len(r2.Trace))
	}
	for i := range r1.Trace {
		if r1.Trace[i] != r2.Trace[i] {
			t.Fatalf("trace[%d] differs: %+v vs %+v", i, r1.Trace[i], r2.Trace[i])
		}
	}
	for name := range r1.Final {
		if d := r1.Final[name].MaxAbsDiff(r2.Final[name]); d != 0 {
			t.Fatalf("array %q differs between identical runs by %g", name, d)
		}
	}
}

func TestMoreSlavesThanActiveUnits(t *testing.T) {
	// 8 slaves, 10 units of which 8 are active (SOR boundaries inactive):
	// some slaves own nothing; everything must still verify.
	runAndVerify(t, planFor(t, "sor"), map[string]int{"n": 10, "maxiter": 3},
		Config{DLB: true}, cluster.Config{Slaves: 8})
}

func TestManySlavesLU(t *testing.T) {
	runAndVerify(t, planFor(t, "lu"), map[string]int{"n": 12},
		Config{DLB: true}, cluster.Config{Slaves: 6})
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}, cluster.Config{Slaves: 2}); err == nil {
		t.Error("Run without a plan accepted")
	}
	plan := planFor(t, "mm")
	if _, err := Run(Config{Plan: plan, Params: map[string]int{"n": 8}}, cluster.Config{}); err == nil {
		t.Error("Run with zero slaves accepted")
	}
	if _, err := Run(Config{Plan: plan, Params: map[string]int{}}, cluster.Config{Slaves: 1}); err == nil {
		t.Error("Run with missing params accepted")
	}
}

func TestWakeupModelEndToEnd(t *testing.T) {
	// The OS wakeup model changes timing but never results.
	res := runAndVerify(t, planFor(t, "sor"), map[string]int{"n": 24, "maxiter": 4},
		Config{DLB: true, FlopCost: 40 * time.Microsecond},
		cluster.Config{Slaves: 3, Load: []cluster.LoadProfile{cluster.Constant(1)}, ModelWakeup: true})
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestJacobiConvergeParallelCorrect(t *testing.T) {
	// Data-dependent termination (§4.1): every slave must break at the
	// same iteration (combined residual), and the result — including the
	// reduction value — must match the sequential run exactly.
	prog := loopir.Library()["jacobi-converge"]
	plan, err := compile.Compile(prog, compile.Options{
		Dist: depend.DistSpec{Dims: map[string]int{"a": 0, "anew": 0}, Loops: []string{"i", "i2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Reductions) != 1 || plan.Reductions[0].Array != "r" {
		t.Fatalf("reductions = %v, want [r]", plan.Reductions)
	}
	res := runAndVerify(t, plan, map[string]int{"n": 12, "maxiter": 60},
		Config{DLB: true}, cluster.Config{Slaves: 3})
	// The schedule's upper bound is maxiter sweeps; convergence must stop
	// well before that, visible as far fewer hook visits than phases.
	if got := res.Final["r"].At(0); got >= 1e-2 {
		t.Errorf("gathered residual %g did not converge", got)
	}
}

func TestJacobiConvergeUnderLoad(t *testing.T) {
	prog := loopir.Library()["jacobi-converge"]
	plan, err := compile.Compile(prog, compile.Options{
		Dist: depend.DistSpec{Dims: map[string]int{"a": 0, "anew": 0}, Loops: []string{"i", "i2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := runAndVerify(t, plan, map[string]int{"n": 32, "maxiter": 400},
		Config{DLB: true, FlopCost: 30 * time.Microsecond},
		cluster.Config{Slaves: 4, Load: []cluster.LoadProfile{cluster.Constant(1)}})
	if res.Moves == 0 {
		t.Error("no movement under load")
	}
}

func TestJacobi3DParallelCorrect(t *testing.T) {
	// 3-D grid, plane-distributed: exchanges and movement carry 2-D plane
	// slices (the N-dimensional unit-slice paths).
	prog := loopir.Library()["jacobi3d"]
	plan, err := compile.Compile(prog, compile.Options{
		Dist: depend.DistSpec{Dims: map[string]int{"u": 0, "unew": 0}, Loops: []string{"i", "i2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	runAndVerify(t, plan, map[string]int{"n": 12, "maxiter": 3},
		Config{DLB: true}, cluster.Config{Slaves: 3})
}

func TestJacobi3DWithMovement(t *testing.T) {
	prog := loopir.Library()["jacobi3d"]
	plan, err := compile.Compile(prog, compile.Options{
		Dist: depend.DistSpec{Dims: map[string]int{"u": 0, "unew": 0}, Loops: []string{"i", "i2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := runAndVerify(t, plan, map[string]int{"n": 16, "maxiter": 16},
		Config{DLB: true, FlopCost: 40 * time.Microsecond},
		cluster.Config{Slaves: 3, Load: []cluster.LoadProfile{cluster.Constant(1)}})
	if res.Moves == 0 {
		t.Fatal("no plane movement under load")
	}
}

func TestDegenerateParamsFailCleanly(t *testing.T) {
	plan := planFor(t, "sor")
	// maxiter=0: no hooks ever fire; Run must return an error, not hang.
	if _, err := Run(Config{Plan: plan, Params: map[string]int{"n": 12, "maxiter": 0}, DLB: true},
		cluster.Config{Slaves: 2}); err == nil {
		t.Error("zero-iteration run did not error")
	}
	// n=2: the interior is empty.
	if _, err := Run(Config{Plan: plan, Params: map[string]int{"n": 2, "maxiter": 3}, DLB: true},
		cluster.Config{Slaves: 2}); err == nil {
		t.Error("empty-interior run did not error")
	}
}
