package dlb

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hier"
	"repro/internal/loopir"
)

// This file is the plumbing that lets an external transport — most
// importantly the TCP runtime in internal/netrun — drive the master and
// slave loops over its own Endpoint implementation. Run and RunReal stay
// the in-process entry points; RunMasterOn/RunSlaveOn expose the identical
// protocol code to endpoints whose processes live in different address
// spaces.

// AbortTag is the fail-fast marker a dying process broadcasts so peers
// blocked on it error out instead of deadlocking. Transports reuse it for
// the same purpose across process boundaries.
const AbortTag = abortTag

// Terminal slave outcomes a transport must distinguish from bugs: an
// injected crash (the process is scheduled to die) and an eviction (the
// master recovered past this slave; a zombie must not rejoin its epoch).
var (
	ErrInjectedCrash = errors.New("dlb: slave halted by injected crash")
	ErrEvicted       = errors.New("dlb: slave evicted by master")
)

// Prepared is the instantiation both sides of a distributed run must agree
// on: the same plan, parameters, strip-mining grain and compile options
// (including a measured hook cost) yield the same phase schedule — and
// hence the same plan hash — everywhere.
type Prepared struct {
	Exec  *compile.Exec
	Grain int
	// Opts is the resolved compile.Options actually used: if Prepare
	// rebased HookCostFlops on measured kernel speed, transports must ship
	// this resolved value to slaves instead of the caller's zero, or the
	// two sides would instantiate different hook schedules.
	Opts compile.Options
}

// Prepare instantiates cfg.Plan for a real (wall-clock) environment with
// the startup grain measurement RunReal uses: time one strip row, size
// blocks to GrainFactor × RealQuantum (§4.4). cfg.ForcedGrain overrides
// the measurement — the master ships its computed grain to slaves, which
// re-instantiate with exactly that value.
func Prepare(cfg Config, slaves int) (*Prepared, error) {
	cfg = cfg.withDefaults()
	if cfg.Plan == nil {
		return nil, fmt.Errorf("dlb: no plan")
	}
	if slaves < 1 {
		return nil, fmt.Errorf("dlb: need at least one slave")
	}
	if cfg.CompileOpts.HookCostFlops <= 0 {
		cfg.CompileOpts.HookCostFlops = realHookCostFlops()
	}
	probe, err := cfg.Plan.Instantiate(cfg.Params, 1, cfg.CompileOpts)
	if err != nil {
		return nil, err
	}
	grain := 1
	if cfg.Plan.StripMined {
		if cfg.ForcedGrain > 0 {
			grain = cfg.ForcedGrain
		} else {
			rowCost, err := measureRealRow(cfg.Plan, cfg.Params, probe, slaves)
			if err != nil {
				return nil, err
			}
			q := cfg.RealQuantum
			if q <= 0 {
				q = 10 * time.Millisecond
			}
			grain = core.GrainSize(rowCost, q, cfg.GrainFactor)
		}
	}
	exec, err := cfg.Plan.Instantiate(cfg.Params, grain, cfg.CompileOpts)
	if err != nil {
		return nil, err
	}
	return &Prepared{Exec: exec, Grain: grain, Opts: cfg.CompileOpts}, nil
}

// RunMasterOn drives the fault-tolerant master over an arbitrary endpoint.
// initial is the starting membership; total additionally counts joiner
// slots the transport may admit mid-run (ids initial..total-1). The run is
// always fault-tolerant — on a transport that can lose connections, the
// heartbeat-lease detector is what turns a dead link into an eviction
// instead of a deadlock — so cfg.DLB must be set (hooks are the heartbeat
// and checkpoint substrate). A nil cfg.Fault arms detection, checkpointing
// and elastic join without injecting anything; scheduled Join events are
// ignored here (the transport owns admission).
func RunMasterOn(ep Endpoint, cfg Config, cc cluster.Config, initial, total int, pre *Prepared) (res *Result, err error) {
	cfg = cfg.withDefaults()
	if !cfg.DLB {
		return nil, fmt.Errorf("dlb: transport-driven runs require DLB (hooks are the heartbeat and checkpoint substrate)")
	}
	if total < initial {
		total = initial
	}
	if cfg.Fault == nil {
		cfg.Fault = &fault.Plan{}
	}
	if err := cfg.Fault.Validate(); err != nil {
		return nil, err
	}
	if cfg.Resume != nil && cfg.Resume.Slaves != initial {
		return nil, fmt.Errorf("dlb: resume checkpoint was cut with %d slaves, run has %d", cfg.Resume.Slaves, initial)
	}
	masterInst, err := loopir.NewInstance(cfg.Plan.Prog, cfg.Params)
	if err != nil {
		return nil, err
	}
	// Grouped transport runs are decisions-only: the two-level balancing
	// and exchange-aligned checkpoint cuts apply, but reports keep flowing
	// directly to the master — the heartbeat-lease detector must observe
	// every slave itself, so leaders never sit on the failure path.
	var part *hier.Partition
	if cfg.Groups > 1 {
		p, perr := hier.Split(initial, cfg.Groups)
		if perr != nil {
			return nil, perr
		}
		part = p
	}
	flog := &fault.Log{}
	r := &Result{Exec: pre.Exec, Grain: pre.Grain, FaultLog: flog}
	eng := &engine{
		cfg:     &cfg,
		cc:      cc,
		initial: initial,
		total:   total,
		exec:    pre.Exec,
		inst:    masterInst,
		res:     r,
		pol:     &ftPolicy{log: flog, resume: cfg.Resume},
		part:    part,
	}
	start := ep.Now()
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(preemptStop); ok {
				// A cooperative stop: the policy committed the stop
				// checkpoint, published it on the Result, and released the
				// slaves before unwinding.
				r.Elapsed = ep.Now() - start
				res, err = r, ErrPreempted
				return
			}
			err = fmt.Errorf("dlb: master: %v", p)
		}
	}()
	eng.runOn(ep)
	if eng.err != nil {
		return nil, eng.err
	}
	r.Elapsed = ep.Now() - start
	r.Final = eng.final
	r.ComputeElapsed = eng.computeEnd - eng.computeStart
	return r, nil
}

// RunSlaveOn drives one slave over an arbitrary endpoint. id is this
// slave's node id and slaves the initial membership size; a joiner
// registers with the master immediately and waits for admission. cfg.Fault
// events targeting this id are injected through the endpoint exactly as in
// Run/RunReal. Returns nil on a completed run, ErrInjectedCrash or
// ErrEvicted for deliberate deaths, and lets genuine bugs panic through to
// the caller.
func RunSlaveOn(ep Endpoint, cfg Config, id, slaves int, joiner bool, pre *Prepared) (err error) {
	cfg = cfg.withDefaults()
	if id < 0 || slaves < 1 {
		return fmt.Errorf("dlb: bad slave id %d of %d", id, slaves)
	}
	if cfg.Fault == nil {
		cfg.Fault = &fault.Plan{}
	}
	hbEvery := fault.NewDetector(cfg.Detect, 1).Config().HeartbeatEvery
	// A daemon slave is a real OS process: building (or cache-loading) the
	// native kernels inline here is safe, and the on-disk cache makes every
	// run after the first a warm start.
	tier, err := cfg.KernelTier()
	if err != nil {
		return err
	}
	var bundle *aotBundle
	if tier == KernelAOT {
		if bundle, err = buildAOT(cfg.Plan, cfg.Params); err != nil {
			return err
		}
	}
	s := &slave{
		id:      id,
		slaves:  slaves,
		cfg:     &cfg,
		exec:    pre.Exec,
		grain:   pre.Grain,
		tier:    tier,
		aot:     bundle,
		fault:   ftSlaveFault{},
		hbEvery: hbEvery,
		joiner:  joiner,
	}
	defer func() {
		if p := recover(); p != nil {
			switch p.(type) {
			case crashExit:
				err = ErrInjectedCrash
			case evictExit:
				err = ErrEvicted
			default:
				panic(p)
			}
		}
	}()
	inj := fault.NewInjector(cfg.Fault)
	s.runOn(newFaultEP(ep, id, inj, nil))
	return nil
}
