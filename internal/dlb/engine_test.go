package dlb

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/loopir"
)

// TestEngineDifferentialDeterminism pins the unified engine's no-fault
// path: every library program, in both pipelined and synchronous mode,
// across 2-8 slaves, must be bit-identical to the sequential reference and
// to the other slave counts. Per-element operations execute in the same
// order regardless of partitioning, so non-reduction arrays must match to
// the last bit; reductions reassociate the sum and get a tolerance.
func TestEngineDifferentialDeterminism(t *testing.T) {
	progs := []struct {
		name   string
		params map[string]int
	}{
		{"mm", map[string]int{"n": 24}},
		{"sor", map[string]int{"n": 20, "maxiter": 4}},
		{"lu", map[string]int{"n": 20}},
		{"jacobi", map[string]int{"n": 16, "maxiter": 3}},
	}
	for _, p := range progs {
		plan := planFor(t, p.name)
		reduction := map[string]bool{}
		for _, r := range plan.Reductions {
			reduction[r.Array] = true
		}
		// Baseline for the cross-slave-count comparison: the 2-slave
		// pipelined run.
		var base map[string]*loopir.Array
		for _, sync := range []bool{false, true} {
			mode := "pipelined"
			if sync {
				mode = "synchronous"
			}
			for slaves := 2; slaves <= 8; slaves++ {
				t.Run(fmt.Sprintf("%s/%s/p%d", p.name, mode, slaves), func(t *testing.T) {
					res := runAndVerify(t, plan, p.params,
						Config{DLB: true, Synchronous: sync},
						cluster.Config{Slaves: slaves})
					if base == nil {
						base = res.Final
						return
					}
					for name, want := range base {
						got := res.Final[name]
						if got == nil {
							t.Fatalf("array %q missing", name)
						}
						d := want.MaxAbsDiff(got)
						if reduction[name] {
							if d > 1e-9 {
								t.Errorf("reduction %q differs from baseline by %g", name, d)
							}
						} else if d != 0 {
							t.Errorf("array %q differs from baseline by %g", name, d)
						}
					}
				})
			}
		}
	}
}

// TestEngineCountersSim checks the engine's telemetry counters agree with
// the Result fields the legacy loops maintained.
func TestEngineCountersSim(t *testing.T) {
	res := runAndVerify(t, planFor(t, "mm"), map[string]int{"n": 32},
		Config{DLB: true}, cluster.Config{
			Slaves: 4,
			Load:   []cluster.LoadProfile{cluster.Constant(2)},
		})
	c := res.Counters
	if c == nil {
		t.Fatal("no counters on simulated run")
	}
	if got := c.Get("rounds"); got != int64(res.Phases) {
		t.Errorf("rounds counter = %d, Phases = %d", got, res.Phases)
	}
	if got := c.Get("moves"); got != int64(res.Moves) {
		t.Errorf("moves counter = %d, Moves = %d", got, res.Moves)
	}
	if got := c.Get("units_moved"); got != int64(res.UnitsMoved) {
		t.Errorf("units_moved counter = %d, UnitsMoved = %d", got, res.UnitsMoved)
	}
	if got := c.Get("gather_msgs"); got != 4 {
		t.Errorf("gather_msgs = %d, want 4", got)
	}
	for _, name := range []string{"scatter_bytes", "instr_bytes", "status_reports"} {
		if c.Get(name) <= 0 {
			t.Errorf("counter %q not populated: %d", name, c.Get(name))
		}
	}
}

// TestEngineCountersFT checks the fault-policy counters line up with the
// Result bookkeeping after an injected crash.
func TestEngineCountersFT(t *testing.T) {
	fp := (&fault.Plan{}).CrashAt(1, 1200*time.Millisecond)
	res := runAndVerify(t, planFor(t, "mm"), map[string]int{"n": 40},
		ftConfig(fp), cluster.Config{Slaves: 4})
	c := res.Counters
	if c == nil {
		t.Fatal("no counters on fault-tolerant run")
	}
	if got := c.Get("recoveries"); got != int64(res.Recoveries) {
		t.Errorf("recoveries counter = %d, Recoveries = %d", got, res.Recoveries)
	}
	if got := c.Get("checkpoints"); got != int64(res.Checkpoints) {
		t.Errorf("checkpoints counter = %d, Checkpoints = %d", got, res.Checkpoints)
	}
	if got := c.Get("evictions"); got != int64(len(res.Evicted)) {
		t.Errorf("evictions counter = %d, Evicted = %v", got, res.Evicted)
	}
}

// TestEngineCountersReal checks the wall-clock endpoint emits the same
// counter set as the simulated one (values are timing-dependent; presence
// and the deterministic gather count are not).
func TestEngineCountersReal(t *testing.T) {
	plan := planFor(t, "mm")
	res, err := RunReal(Config{Plan: plan, Params: map[string]int{"n": 24}, DLB: true}, 2)
	if err != nil {
		t.Fatalf("RunReal: %v", err)
	}
	c := res.Counters
	if c == nil {
		t.Fatal("no counters on real run")
	}
	if got := c.Get("gather_msgs"); got != 2 {
		t.Errorf("gather_msgs = %d, want 2", got)
	}
	if c.Get("scatter_bytes") <= 0 {
		t.Errorf("scatter_bytes not populated: %d", c.Get("scatter_bytes"))
	}
}

// TestResultSeries checks the trace-to-series bridge used by cmd/dlbrun.
func TestResultSeries(t *testing.T) {
	res := runAndVerify(t, planFor(t, "mm"), map[string]int{"n": 32},
		Config{DLB: true, CollectTrace: true}, cluster.Config{Slaves: 3})
	if len(res.Trace) == 0 {
		t.Fatal("no trace samples")
	}
	raw, filt, work := res.Series(0)
	n := 0
	for _, s := range res.Trace {
		if s.Slave == 0 {
			n++
		}
	}
	if len(raw.V) != n || len(filt.V) != n || len(work.V) != n {
		t.Fatalf("series lengths %d/%d/%d, want %d samples",
			len(raw.V), len(filt.V), len(work.V), n)
	}
	if raw.Max() <= 0 {
		t.Error("raw-rate series has no positive samples")
	}
}
