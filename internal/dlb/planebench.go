package dlb

import "repro/internal/loopir"

// Exported entry points for the data-plane experiment (cmd/dlbbench
// -exp plane), which measures the contiguous-copy kernels against the
// element-walk oracle from outside the package. They are thin aliases of
// the internal functions the runtime itself uses; nothing else should
// call them.

// UnitGather is unitSlice: the run-decomposed contiguous-copy gather.
func UnitGather(a *loopir.Array, dim, u int) []float64 {
	return unitSlice(a, dim, u)
}

// UnitScatter is setUnitSlice: the contiguous-copy write-back.
func UnitScatter(a *loopir.Array, dim, u int, vals []float64) {
	setUnitSlice(a, dim, u, vals)
}

// UnitGatherWalk is the per-element closure walk the fast path replaced —
// the baseline (and oracle) the experiment compares against.
func UnitGatherWalk(a *loopir.Array, dim, u int) []float64 {
	out := make([]float64, 0, unitSize(a, dim))
	forEachUnitElem(a, dim, u, -1, 0, 0, func(flat int) {
		out = append(out, a.Data[flat])
	})
	return out
}

// UnitScatterWalk is the per-element write-back baseline.
func UnitScatterWalk(a *loopir.Array, dim, u int, vals []float64) {
	i := 0
	forEachUnitElem(a, dim, u, -1, 0, 0, func(flat int) {
		a.Data[flat] = vals[i]
		i++
	})
}
