package dlb

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/vtime"
)

// Endpoint abstracts the environment a master or slave process runs in, so
// the identical runtime code executes on the simulated virtual-time cluster
// (the evaluation substrate) and in a real wall-clock environment
// (goroutines + channels, one per core; see RunReal).
type Endpoint interface {
	// Charge accounts virtual CPU cost (computation, bookkeeping). On the
	// simulated cluster it advances the virtual clock under the node's
	// contention model; in the real environment it is a no-op — real work
	// takes real time inside Timed.
	Charge(cpu time.Duration)
	// Timed runs fn and accounts its duration as busy time. On the
	// simulated cluster the data computation is free (cost is modeled by
	// Charge); in the real environment this is the actual measurement.
	Timed(fn func())
	// Send transmits a tagged message (non-blocking).
	Send(to int, tag string, bytes int, data interface{})
	// Recv blocks for a message matching source and tag (AnySource / ""
	// wildcards); non-matching messages are buffered.
	Recv(from int, tag string) cluster.Msg
	// TryRecv is the non-blocking variant.
	TryRecv(from int, tag string) (cluster.Msg, bool)
	// Busy reports accumulated busy time (the basis of rate measurement).
	Busy() time.Duration
	// Now reports elapsed time since the run started.
	Now() time.Duration
	// Sleep idles for d without accruing busy time (poll backoff, fault
	// windows, delayed joins).
	Sleep(d time.Duration)
}

// pollInterval is the default backoff of poll-based receive loops
// (fault-tolerant mode). On the simulated cluster polling is deterministic:
// TryRecv plus a fixed virtual-time sleep. Endpoints with different idle
// economics (e.g. the TCP transport, whose Sleep wakes early on message
// arrival and so can afford a much coarser interval) override it via
// PollTuner.
const pollInterval = time.Millisecond

// PollTuner is an optional Endpoint extension supplying the backoff used
// by poll-based receive loops on that endpoint. A non-positive value falls
// back to the default.
type PollTuner interface {
	PollInterval() time.Duration
}

// pollIntervalOf resolves the poll backoff for an endpoint.
func pollIntervalOf(ep Endpoint) time.Duration {
	if t, ok := ep.(PollTuner); ok {
		if d := t.PollInterval(); d > 0 {
			return d
		}
	}
	return pollInterval
}

// recvTimeout polls for a matching message until the timeout elapses. A
// non-positive timeout checks exactly once.
func recvTimeout(ep Endpoint, from int, tag string, timeout time.Duration) (cluster.Msg, bool) {
	deadline := ep.Now() + timeout
	poll := pollIntervalOf(ep)
	for {
		if m, ok := ep.TryRecv(from, tag); ok {
			return m, true
		}
		now := ep.Now()
		if now >= deadline {
			return cluster.Msg{}, false
		}
		d := poll
		if deadline-now < d {
			d = deadline - now
		}
		ep.Sleep(d)
	}
}

// simEndpoint adapts a virtual-time cluster node.
type simEndpoint struct {
	p *vtime.Proc
	n *cluster.Node
}

func (e *simEndpoint) Charge(cpu time.Duration) { e.n.Compute(e.p, cpu) }
func (e *simEndpoint) Timed(fn func())          { fn() }
func (e *simEndpoint) Send(to int, tag string, bytes int, data interface{}) {
	e.n.Send(e.p, to, tag, bytes, data)
}
func (e *simEndpoint) Recv(from int, tag string) cluster.Msg {
	return e.n.RecvTag(e.p, from, tag)
}
func (e *simEndpoint) TryRecv(from int, tag string) (cluster.Msg, bool) {
	return e.n.TryRecvTag(e.p, from, tag)
}
func (e *simEndpoint) Busy() time.Duration   { return e.n.Usage().BusyElapsed }
func (e *simEndpoint) Now() time.Duration    { return e.p.Now() }
func (e *simEndpoint) Sleep(d time.Duration) { e.p.Sleep(d) }
