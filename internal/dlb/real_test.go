package dlb

import (
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/depend"
	"repro/internal/loopir"
	"repro/internal/testx"
)

// verifyRealPlan checks a RunReal result against the sequential reference:
// distributed data must be exact; reduction arrays tolerate reassociation.
func verifyRealPlan(t *testing.T, res *Result, plan *compile.Plan, params map[string]int) {
	t.Helper()
	ref, err := loopir.NewInstance(plan.Prog, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	reduction := map[string]bool{}
	for _, r := range plan.Reductions {
		reduction[r.Array] = true
	}
	for name, want := range ref.Arrays {
		got := res.Final[name]
		if got == nil {
			t.Fatalf("array %q missing", name)
		}
		d := want.MaxAbsDiff(got)
		if reduction[name] {
			if d > 1e-9 {
				t.Errorf("reduction %q differs by %g", name, d)
			}
		} else if d != 0 {
			t.Errorf("array %q differs by %g (real run)", name, d)
		}
	}
}

func compilePlan(t *testing.T, prog *loopir.Program, dims map[string]int, loops []string) *compile.Plan {
	t.Helper()
	plan, err := compile.Compile(prog, compile.Options{
		Dist: depend.DistSpec{Dims: dims, Loops: loops},
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestRealRunMM(t *testing.T) {
	plan := planFor(t, "mm")
	res, err := RunReal(Config{Plan: plan, Params: map[string]int{"n": 64}, DLB: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	verifyRealPlan(t, res, plan, map[string]int{"n": 64})
	if res.Elapsed <= 0 {
		t.Fatal("no wall time recorded")
	}
}

func TestRealRunSORPipelined(t *testing.T) {
	plan := planFor(t, "sor")
	res, err := RunReal(Config{Plan: plan, Params: map[string]int{"n": 64, "maxiter": 6}, DLB: true}, 3)
	if err != nil {
		t.Fatal(err)
	}
	verifyRealPlan(t, res, plan, map[string]int{"n": 64, "maxiter": 6})
	if res.Grain < 1 {
		t.Fatalf("grain = %d", res.Grain)
	}
}

func TestRealRunLU(t *testing.T) {
	plan := planFor(t, "lu")
	res, err := RunReal(Config{Plan: plan, Params: map[string]int{"n": 48}, DLB: true}, 3)
	if err != nil {
		t.Fatal(err)
	}
	verifyRealPlan(t, res, plan, map[string]int{"n": 48})
}

func TestRealRunConvergence(t *testing.T) {
	prog := loopir.Library()["jacobi-converge"]
	plan := compilePlan(t, prog, map[string]int{"a": 0, "anew": 0}, []string{"i", "i2"})
	res, err := RunReal(Config{Plan: plan, Params: map[string]int{"n": 24, "maxiter": 200}, DLB: true}, 3)
	if err != nil {
		t.Fatal(err)
	}
	verifyRealPlan(t, res, plan, map[string]int{"n": 24, "maxiter": 200})
}

func TestRealRunSingleSlave(t *testing.T) {
	plan := planFor(t, "jacobi")
	res, err := RunReal(Config{Plan: plan, Params: map[string]int{"n": 24, "maxiter": 3}, DLB: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	verifyRealPlan(t, res, plan, map[string]int{"n": 24, "maxiter": 3})
}

func TestRealParallelSpeedup(t *testing.T) {
	testx.NeedMultiCore(t)
	plan := planFor(t, "mm")
	params := map[string]int{"n": 256}
	t0 := time.Now()
	res1, err := RunReal(Config{Plan: plan, Params: params, DLB: false}, 1)
	if err != nil {
		t.Fatal(err)
	}
	one := time.Since(t0)
	res4, err := RunReal(Config{Plan: plan, Params: params, DLB: false}, 4)
	if err != nil {
		t.Fatal(err)
	}
	verifyRealPlan(t, res4, plan, params)
	// Loose bound: 4 goroutines on >=2 cores should clearly beat 1.
	if res4.Elapsed.Seconds() > 0.8*res1.Elapsed.Seconds() {
		t.Logf("warning: little speedup: 1 slave %v, 4 slaves %v (wall %v)", res1.Elapsed, res4.Elapsed, one)
	}
}

func TestRealDragTriggersMovement(t *testing.T) {
	// Slave 0 is dragged 3x. The run is long enough (> the 500ms period
	// floor) for at least one rebalancing to fire on real measured rates.
	plan := planFor(t, "mm")
	params := map[string]int{"n": 320}
	res, err := RunReal(Config{
		Plan:     plan,
		Params:   params,
		DLB:      true,
		RealDrag: []float64{3.0},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	verifyRealPlan(t, res, plan, params)
	if res.Moves == 0 {
		t.Log("no movement occurred (run may have been too fast on this machine); data still verified")
	}
}
