package dlb

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/aot"
	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hier"
	"repro/internal/loopir"
)

// RunReal executes the plan for real: master and slaves are goroutines
// (one per core, scheduled by the Go runtime), messages travel over
// channels, computation takes actual wall-clock time, and rates are
// measured with real timers. It is the same master/slave code that runs on
// the simulated cluster — only the Endpoint differs — so the simulation
// results transfer: what was verified deterministically there runs here on
// real parallel hardware.
//
// cfg.RealDrag can slow individual slaves (emulating a slower or loaded
// workstation) so the load balancer's reaction is observable in wall-clock
// runs. Timing-dependent behavior (how many phases, what moves) is
// inherently nondeterministic here; data results are still exact.
func RunReal(cfg Config, slaves int) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Plan == nil {
		return nil, fmt.Errorf("dlb: no plan")
	}
	if slaves < 1 {
		return nil, fmt.Errorf("dlb: need at least one slave")
	}
	if cfg.Preempt != nil || cfg.Resume != nil {
		return nil, fmt.Errorf("dlb: preemption and resume are transport-driven features (RunMasterOn)")
	}
	masterInst, err := loopir.NewInstance(cfg.Plan.Prog, cfg.Params)
	if err != nil {
		return nil, err
	}

	// Wall-clock runs execute compiled kernels, so unless the caller
	// pinned a hook cost the <1% placement rule is rebased on measured
	// kernel speed (the static default is calibrated to the much slower
	// interpreter-era path).
	if cfg.CompileOpts.HookCostFlops <= 0 {
		cfg.CompileOpts.HookCostFlops = realHookCostFlops()
	}

	probe, err := cfg.Plan.Instantiate(cfg.Params, 1, cfg.CompileOpts)
	if err != nil {
		return nil, err
	}
	grain := 1
	if cfg.Plan.StripMined {
		if cfg.ForcedGrain > 0 {
			grain = cfg.ForcedGrain
		} else {
			// Startup measurement (§4.4), for real this time: time a few
			// strip rows on a scratch instance and size blocks to
			// GrainFactor x the real quantum.
			rowCost, err := measureRealRow(cfg.Plan, cfg.Params, probe, slaves)
			if err != nil {
				return nil, err
			}
			q := cfg.RealQuantum
			if q <= 0 {
				q = 10 * time.Millisecond
			}
			grain = core.GrainSize(rowCost, q, cfg.GrainFactor)
		}
	}
	exec, err := cfg.Plan.Instantiate(cfg.Params, grain, cfg.CompileOpts)
	if err != nil {
		return nil, err
	}

	tier, err := cfg.KernelTier()
	if err != nil {
		return nil, err
	}
	var bundle *aotBundle
	var aotInfo *aot.BuildInfo
	if tier == KernelAOT {
		if bundle, err = buildAOT(cfg.Plan, cfg.Params); err != nil {
			return nil, err
		}
		aotInfo = &bundle.prog.Info
	}

	var part *hier.Partition
	if cfg.Groups > 1 {
		if !cfg.DLB {
			return nil, fmt.Errorf("dlb: hierarchical groups require DLB (leaders aggregate the balancing contacts)")
		}
		p, perr := hier.Split(slaves, cfg.Groups)
		if perr != nil {
			return nil, perr
		}
		part = p
	}

	ftMode := cfg.Fault != nil
	var joins []time.Duration
	total := slaves
	if ftMode {
		if !cfg.DLB {
			return nil, fmt.Errorf("dlb: fault tolerance requires DLB (hooks are the heartbeat and checkpoint substrate)")
		}
		if err := cfg.Fault.Validate(); err != nil {
			return nil, err
		}
		joins = cfg.Fault.Joins()
		total = slaves + len(joins)
	}

	net := &realNet{
		boxes: make([]chan cluster.Msg, total+1),
		start: time.Now(),
	}
	for i := range net.boxes {
		net.boxes[i] = make(chan cluster.Msg, 4096)
	}

	realCC := cluster.Config{
		Slaves:  slaves,
		Quantum: cfg.RealQuantum,
		// Cost-model prior only; transfers are in-process memory copies, so
		// measure that plane the same way the TCP transport measures its
		// negotiated codec.
		Bandwidth:    memCopyBandwidth(),
		LinkLatency:  10 * time.Microsecond,
		SendOverhead: time.Microsecond,
	}
	r := &Result{Exec: exec, Grain: grain, AotInfo: aotInfo}
	var pol FaultPolicy = noFaultPolicy{}
	var flog *fault.Log
	if ftMode {
		flog = &fault.Log{} // written by the master goroutine only
		r.FaultLog = flog
		pol = &ftPolicy{log: flog}
	}
	eng := &engine{
		cfg:     &cfg,
		cc:      realCC,
		initial: slaves,
		total:   total,
		exec:    exec,
		inst:    masterInst,
		res:     r,
		pol:     pol,
		part:    part,
		relay:   part != nil && !ftMode,
	}

	errs := make(chan error, slaves+1)
	var wg sync.WaitGroup
	spawn := func(name string, id int, fn func(Endpoint)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if isFaultExit(p) {
						return // an injected crash or eviction: die silently
					}
					errs <- fmt.Errorf("dlb: %s panicked: %v", name, p)
					// Unblock peers waiting on this process so the run
					// fails instead of hanging.
					for _, box := range net.boxes {
						select {
						case box <- cluster.Msg{Tag: abortTag}:
						default:
						}
					}
				}
			}()
			drag := 1.0
			if id >= 0 && id < len(cfg.RealDrag) && cfg.RealDrag[id] > 1 {
				drag = cfg.RealDrag[id]
			}
			fn(&realEndpoint{net: net, id: id, drag: drag})
		}()
	}
	endpoints := make([]*realEndpoint, total)
	var inj *fault.Injector
	var hbEvery time.Duration
	if ftMode {
		inj = fault.NewInjector(cfg.Fault)
		hbEvery = fault.NewDetector(cfg.Detect, 1).Config().HeartbeatEvery
	}
	spawn("master", cluster.MasterID, eng.runOn)
	for i := 0; i < total; i++ {
		s := &slave{id: i, slaves: slaves, cfg: &cfg, exec: exec, grain: grain,
			tier: tier, aot: bundle,
			fault: slaveFaultFor(ftMode), hbEvery: hbEvery}
		if eng.relay {
			s.part = part
		}
		if ftMode && i >= slaves {
			s.joiner = true
			s.joinAt = joins[i-slaves]
		}
		i := i
		spawn(fmt.Sprintf("slave%d", i), i, func(ep Endpoint) {
			endpoints[i] = ep.(*realEndpoint)
			// Wall-clock failure injection; the log stays nil here (the sim
			// owns the deterministic trace).
			s.runOn(newFaultEP(ep, i, inj, nil))
		})
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	r.Elapsed = time.Since(net.start)
	for i := 0; i < total; i++ {
		u := cluster.Usage{}
		if endpoints[i] != nil {
			u.BusyElapsed = endpoints[i].busy
			u.AppCPU = endpoints[i].busy
		}
		r.Usage = append(r.Usage, u)
	}
	if eng.err != nil {
		return nil, eng.err
	}
	r.Final = eng.final
	r.ComputeElapsed = eng.computeEnd - eng.computeStart
	return r, nil
}

// measureRealRow times one pipelined strip row of a single slave's share
// by running the sequential program once on a scratch instance (through
// the same kernel-first path the slaves execute, so strip blocks are sized
// to kernel speed, not interpreter speed) and scaling by iteration counts.
func measureRealRow(plan *compile.Plan, params map[string]int, probe *compile.Exec, slaves int) (time.Duration, error) {
	scratch, err := loopir.NewInstance(plan.Prog, params)
	if err != nil {
		return 0, err
	}
	// The cost of one strip row ≈ per-unit flops x (active units / slaves):
	// run one full sweep of the program body and divide by the total rows.
	t0 := time.Now()
	if err := scratch.Run(); err != nil {
		return 0, err
	}
	total := time.Since(t0)
	totalUnitExecs := probe.TotalFlops / probe.FlopsPerUnit
	if totalUnitExecs < 1 {
		totalUnitExecs = 1
	}
	perUnit := time.Duration(float64(total) / totalUnitExecs)
	lo, hi := probe.InitialActive()
	units := hi - lo
	if units < 1 {
		units = 1
	}
	row := perUnit * time.Duration((units+slaves-1)/slaves)
	if row <= 0 {
		row = time.Microsecond
	}
	return row, nil
}

// realNet carries messages between goroutine endpoints. Box index slaves is
// the master.
type realNet struct {
	boxes []chan cluster.Msg
	start time.Time
}

func (n *realNet) box(id int) chan cluster.Msg {
	if id == cluster.MasterID {
		return n.boxes[len(n.boxes)-1]
	}
	return n.boxes[id]
}

// realEndpoint implements Endpoint with wall-clock time and channels.
type realEndpoint struct {
	net     *realNet
	id      int
	drag    float64 // >= 1: slow this slave down (emulated slower machine)
	pending []cluster.Msg
	busy    time.Duration
}

func (e *realEndpoint) Charge(time.Duration) {}

func (e *realEndpoint) Timed(fn func()) {
	t0 := time.Now()
	fn()
	d := time.Since(t0)
	if e.drag > 1 {
		extra := time.Duration((e.drag - 1) * float64(d))
		time.Sleep(extra)
		d += extra
	}
	e.busy += d
}

func (e *realEndpoint) Send(to int, tag string, bytes int, data interface{}) {
	e.net.box(to) <- cluster.Msg{From: e.id, Tag: tag, Bytes: bytes, Data: data}
}

func matchMsg(m cluster.Msg, from int, tag string) bool {
	if from != cluster.AnySource && m.From != from {
		return false
	}
	return tag == "" || m.Tag == tag
}

// abortTag is broadcast when a process dies so peers blocked in Recv fail
// fast instead of deadlocking.
const abortTag = "__abort"

func (e *realEndpoint) Recv(from int, tag string) cluster.Msg {
	for i, m := range e.pending {
		if matchMsg(m, from, tag) {
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			return m
		}
	}
	for {
		m := <-e.net.box(e.id)
		if m.Tag == abortTag {
			panic("peer process failed")
		}
		if matchMsg(m, from, tag) {
			return m
		}
		e.pending = append(e.pending, m)
	}
}

func (e *realEndpoint) TryRecv(from int, tag string) (cluster.Msg, bool) {
	for i, m := range e.pending {
		if matchMsg(m, from, tag) {
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			return m, true
		}
	}
	for {
		select {
		case m := <-e.net.box(e.id):
			if matchMsg(m, from, tag) {
				return m, true
			}
			e.pending = append(e.pending, m)
		default:
			return cluster.Msg{}, false
		}
	}
}

func (e *realEndpoint) Busy() time.Duration { return e.busy }
func (e *realEndpoint) Now() time.Duration  { return time.Since(e.net.start) }

func (e *realEndpoint) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}
