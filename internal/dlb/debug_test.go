package dlb

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/loopir"
)

// TestDebugJacobiSmall is a diagnostic: dump the element-wise differences
// for a tiny Jacobi run. Kept as a regression canary (it fails loudly with
// a map of wrong elements if data movement breaks).
func TestDebugJacobiSmall(t *testing.T) {
	plan := planFor(t, "jacobi")
	params := map[string]int{"n": 8, "maxiter": 1}
	cfg := Config{Plan: plan, Params: params, DLB: false}
	res, err := Run(cfg, cluster.Config{Slaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := loopir.NewInstance(plan.Prog, params)
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, name := range []string{"a", "anew"} {
		want, got := ref.Arrays[name], res.Final[name]
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				w, g := want.At(i, j), got.At(i, j)
				if w != g {
					bad++
					if bad < 20 {
						t.Logf("%s[%d][%d]: got %v want %v", name, i, j, g, w)
					}
				}
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%d wrong elements", bad)
	}
	_ = fmt.Sprint
}
