package dlb

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/depend"
	"repro/internal/loopir"
)

// TestKernelTierDifferential runs the acceptance matrix for the AOT tier:
// jacobi, sor, mm and lu at 1, 2 and 4 workers under every kernel tier
// must produce bit-identical distributed arrays (runAndVerify already
// pins each run to the sequential reference; the cross-tier comparison
// below additionally pins reduction arrays, which runAndVerify only
// bounds). The aot runs must actually dispatch to native kernels, and the
// interp runs must never touch the VM kernels.
func TestKernelTierDifferential(t *testing.T) {
	progs := []struct {
		name   string
		params map[string]int
	}{
		{"jacobi", map[string]int{"n": 48, "maxiter": 2}},
		{"sor", map[string]int{"n": 24, "maxiter": 3}},
		{"mm", map[string]int{"n": 24}},
		{"lu", map[string]int{"n": 24}},
	}
	for _, p := range progs {
		plan := planFor(t, p.name)
		for _, cores := range []int{1, 2, 4} {
			var base map[string]*loopir.Array
			for _, tier := range []string{KernelInterp, KernelVM, KernelAOT} {
				t.Run(fmt.Sprintf("%s/c%d/%s", p.name, cores, tier), func(t *testing.T) {
					res := runAndVerify(t, plan, p.params,
						Config{DLB: true, Cores: cores, Kernel: tier},
						cluster.Config{Slaves: 3})
					switch tier {
					case KernelInterp:
						if res.Counters.Get("kernel_units")+res.Counters.Get("aot_units") != 0 {
							t.Errorf("interp tier dispatched to kernels: %v", res.Counters)
						}
					case KernelAOT:
						if res.AotInfo == nil {
							t.Fatal("aot run has no AotInfo")
						}
						if res.Counters.Get("aot_units") == 0 {
							t.Errorf("aot tier never dispatched natively: %v", res.Counters)
						}
					}
					if base == nil {
						base = res.Final
						return
					}
					for name, want := range base {
						got := res.Final[name]
						if got == nil {
							t.Fatalf("array %q missing", name)
						}
						if d := want.MaxAbsDiff(got); d != 0 {
							t.Errorf("array %q differs across tiers by %g", name, d)
						}
					}
				})
			}
		}
	}
}

// TestKernelTierChainsAndGuards covers the regions the fast path cannot
// parallelize: jacobi-converge's residual sweep carries a reduction chain
// (native dispatch must stay sequential yet bit-identical across tiers,
// including the replicated residual), and unknown tier names must be
// rejected up front.
func TestKernelTierChainsAndGuards(t *testing.T) {
	prog := loopir.Library()["jacobi-converge"]
	plan, err := compile.Compile(prog, compile.Options{
		Dist: depend.DistSpec{Dims: map[string]int{"a": 0, "anew": 0}, Loops: []string{"i", "i2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	params := map[string]int{"n": 32, "maxiter": 4}
	var base map[string]*loopir.Array
	for _, tier := range []string{KernelInterp, KernelVM, KernelAOT} {
		res, runErr := Run(Config{Plan: plan, Params: params, DLB: true, Cores: 4, Kernel: tier},
			cluster.Config{Slaves: 3})
		if runErr != nil {
			t.Fatalf("%s: %v", tier, runErr)
		}
		if base == nil {
			base = res.Final
			continue
		}
		for name, want := range base {
			if d := want.MaxAbsDiff(res.Final[name]); d != 0 {
				t.Errorf("%s: array %q differs across tiers by %g", tier, name, d)
			}
		}
	}

	if _, err := Run(Config{Plan: plan, Params: params, DLB: true, Kernel: "jit"},
		cluster.Config{Slaves: 2}); err == nil {
		t.Error("unknown kernel tier accepted")
	}
}
