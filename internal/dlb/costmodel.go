package dlb

import (
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/loopir"
)

// balancerSetup bundles the balancer configuration and the movement- and
// checkpoint-cost priors that every endpoint must derive the same way from
// the cluster parameters: a unit slice of each distributed array over the
// link bandwidth plus fixed per-message overhead, and the cost of shipping
// the whole distributed plus replicated state once. It replaces the
// constructions that used to be repeated in the legacy master, the
// fault-tolerant master, and the TCP transport.
type balancerSetup struct {
	balCfg   core.Config
	fixed    time.Duration // per-message fixed movement cost
	perUnit  time.Duration // movement cost per work unit
	ckptCost time.Duration // estimated cost of taking one checkpoint
}

// newBalancerSetup derives the shared setup from the run configuration, the
// cluster parameters (whose Bandwidth is the endpoint's data-plane prior:
// the modelled network on the simulator, the measured in-memory plane for
// RunReal, the measured negotiated codec for the TCP transport), and the
// master's instantiated arrays.
func newBalancerSetup(cfg *Config, cc cluster.Config, exec *compile.Exec, inst *loopir.Instance, slaves int) balancerSetup {
	plan := exec.Plan
	balCfg := core.DefaultConfig(slaves, plan.Restricted)
	balCfg.MinImprovement = cfg.MinImprovement
	balCfg.DisableFilter = cfg.DisableFilter
	balCfg.DisableProfitability = cfg.DisableProfitability
	balCfg.Quantum = cc.Quantum
	unitBytes, totalBytes := 0, 0
	for arr, dim := range plan.DistArrays {
		a := inst.Arrays[arr]
		unitBytes += 8 * unitSize(a, dim)
		totalBytes += 8 * len(a.Data)
	}
	for _, arr := range plan.Replicated {
		totalBytes += 8 * len(inst.Arrays[arr].Data)
	}
	fixed := cc.LinkLatency + cc.SendOverhead
	return balancerSetup{
		balCfg:  balCfg,
		fixed:   fixed,
		perUnit: time.Duration(float64(unitBytes) / cc.Bandwidth * float64(time.Second)),
		ckptCost: time.Duration(float64(totalBytes)/cc.Bandwidth*float64(time.Second)) +
			time.Duration(slaves)*fixed,
	}
}

// newBalancer builds a balancer over the given ownership map with the
// configured slave count.
func (b balancerSetup) newBalancer(own *core.Ownership) *core.Balancer {
	return core.NewBalancer(b.balCfg, own, core.NewMoveCostModel(b.fixed, b.perUnit))
}

// newBalancerFor is newBalancer with the slot count overridden — recovery
// epochs may have grown the membership past the configured initial size.
func (b balancerSetup) newBalancerFor(own *core.Ownership, slots int) *core.Balancer {
	cfg := b.balCfg
	cfg.Slaves = slots
	return core.NewBalancer(cfg, own, core.NewMoveCostModel(b.fixed, b.perUnit))
}

// memCopyBandwidth measures the in-process data plane (channel transfers of
// shared slices, effectively one memory copy per movement) so RunReal seeds
// its move-cost prior from the same kind of measurement the TCP transport
// takes of its negotiated codec, instead of a hardcoded constant. Measured
// once per process and cached.
func memCopyBandwidth() float64 {
	memBWOnce.Do(func() {
		const n = 1 << 20 // 8 MB of float payload
		src := make([]float64, n)
		dst := make([]float64, n)
		for i := range src {
			src[i] = float64(i)
		}
		const rounds = 4
		start := time.Now()
		for i := 0; i < rounds; i++ {
			copy(dst, src)
		}
		elapsed := time.Since(start)
		if elapsed <= 0 {
			memBW = 1e9 // timer too coarse; fall back to the old constant
			return
		}
		memBW = float64(8*n) * rounds / elapsed.Seconds()
	})
	return memBW
}

var (
	memBWOnce sync.Once
	memBW     float64
)

// realHookCostFlops rebases the hook-placement cost constant on measured
// kernel speed: the §4.2 rule places hooks at the deepest level where a
// visit costs under HookFraction of the enclosed work, and both sides of
// that ratio must come from the same clock. A visit is dominated by two
// monotonic clock reads (the busy mark and the contact check); measuring
// those and multiplying by the measured kernel rate (flops/second) yields
// the visit cost in kernel-flop units. With the compiled kernels roughly
// an order of magnitude faster than the interpreter the static default
// would place hooks an entire loop level too deep. Measured once per
// process and cached; real and TCP runs use it whenever the caller did
// not pin HookCostFlops explicitly.
func realHookCostFlops() float64 {
	hookCostOnce.Do(func() {
		const probes = 4096
		start := time.Now()
		var sink time.Duration
		for i := 0; i < probes; i++ {
			sink += time.Since(start)
		}
		elapsed := time.Since(start)
		_ = sink
		perVisit := 2 * elapsed.Seconds() / probes
		f := perVisit * loopir.KernelRate()
		if f < 1 {
			f = 1
		}
		hookCostFlops = f
	})
	return hookCostFlops
}

var (
	hookCostOnce  sync.Once
	hookCostFlops float64
)
