package dlb

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
)

// crashExit is the panic sentinel an injected crash raises; the spawn
// wrapper recovers it and lets the process die silently, exactly as a
// failed workstation would. evictExit is its counterpart for zombies killed
// by a directed EvictMsg after the master already recovered past them.
type crashExit struct{}
type evictExit struct{}

// isFaultExit reports whether a recovered panic value is a deliberate
// process death rather than a bug.
func isFaultExit(r interface{}) bool {
	switch r.(type) {
	case crashExit, evictExit:
		return true
	}
	return false
}

// epochRestart unwinds a slave's execution stack back to its top-level
// epoch loop when a recovery AdoptMsg arrives (the slave may be blocked
// arbitrarily deep in the step tree, e.g. waiting on pipeline data from the
// dead neighbor).
type epochRestart struct {
	msg AdoptMsg
}

// faultEP wraps an Endpoint with failure injection: the process halts at
// its first operation at/after its scheduled crash time, freezes through
// stall windows, and loses messages while either endpoint's link is down.
// The same wrapper serves the simulated cluster (virtual time,
// deterministic) and RunReal (wall clock).
type faultEP struct {
	Endpoint
	id      int
	inj     *fault.Injector
	log     *fault.Log // nil under RunReal (no lock; sim is single-threaded)
	stalled bool
	crashed bool
	stalls  int
}

func newFaultEP(inner Endpoint, id int, inj *fault.Injector, log *fault.Log) Endpoint {
	if inj == nil || inj.Empty() {
		return inner
	}
	return &faultEP{Endpoint: inner, id: id, inj: inj, log: log}
}

// check enforces the schedule at every endpoint operation.
func (e *faultEP) check() {
	now := e.Endpoint.Now()
	if e.inj.Crashed(e.id, now) {
		if !e.crashed {
			e.crashed = true
			e.log.Add(now, fault.LogCrash, e.id, "injected crash")
		}
		panic(crashExit{})
	}
	if e.stalled {
		return // re-entered from the stall sleep itself
	}
	if until := e.inj.StallUntil(e.id, now); until > now {
		e.stalled = true
		e.stalls++
		e.log.Add(now, fault.LogStall, e.id, "frozen until %.2fs", until.Seconds())
		e.Endpoint.Sleep(until - now)
		e.stalled = false
		e.check() // the crash may fall inside the stall window
	}
}

func (e *faultEP) Charge(cpu time.Duration) {
	e.check()
	e.Endpoint.Charge(cpu)
}

func (e *faultEP) Timed(fn func()) {
	e.check()
	e.Endpoint.Timed(fn)
}

func (e *faultEP) Send(to int, tag string, bytes int, data interface{}) {
	e.check()
	now := e.Endpoint.Now()
	if e.inj.LinkDown(e.id, now) || e.inj.LinkDown(to, now) {
		return // dropped on the floor
	}
	e.Endpoint.Send(to, tag, bytes, data)
}

func (e *faultEP) Recv(from int, tag string) cluster.Msg {
	e.check()
	return e.Endpoint.Recv(from, tag)
}

func (e *faultEP) TryRecv(from int, tag string) (cluster.Msg, bool) {
	e.check()
	return e.Endpoint.TryRecv(from, tag)
}

func (e *faultEP) Sleep(d time.Duration) {
	if !e.stalled {
		e.check()
	}
	e.Endpoint.Sleep(d)
}

// PollInterval forwards the wrapped endpoint's poll tuning (interface
// embedding would hide it: the embedded Endpoint's method set does not
// include optional extensions).
func (e *faultEP) PollInterval() time.Duration {
	return pollIntervalOf(e.Endpoint)
}
