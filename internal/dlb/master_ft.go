package dlb

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/loopir"
)

// masterFT is the fault-tolerant master: the legacy phase loop plus
// lease-based failure detection, periodic consistent checkpoints, recovery
// epochs, and elastic admission of late-joining nodes. It runs instead of
// (not on top of) the legacy master, which stays byte-for-byte unchanged
// for the deterministic reproduction paths.
type masterFT struct {
	cfg     *Config
	cc      cluster.Config
	initial int // slaves participating from the start
	total   int // slots including not-yet-admitted joiners
	exec    *compile.Exec
	inst    *loopir.Instance
	res     *Result
	grain   int
	log     *fault.Log

	final        map[string]*loopir.Array
	computeStart time.Duration
	computeEnd   time.Duration
	err          error

	ep      Endpoint
	plan    *compile.Plan
	own     *core.Ownership
	bal     *core.Balancer
	balCfg  core.Config
	fixed   time.Duration // per-message fixed movement cost
	perUnit time.Duration

	det        *fault.Detector
	pol        fault.CkptPolicy
	ck         *fault.Checkpoint // latest committed snapshot
	pending    *pendingCkpt
	seq        int
	ckptCost   time.Duration // estimated cost of taking one checkpoint
	lastCkptAt time.Duration

	epoch       int
	inbox       map[int][]slaveEvent // per-slave FIFO of round events
	alive       []bool               // len total
	admitted    []bool               // joiner slots folded into the ownership map
	queued      []bool               // joiner slots waiting for admission
	joinQueue   []int
	wantCkpt    bool // a join forces a fresh checkpoint
	done        []bool
	doneCount   int
	lastRates   []float64 // last filtered rates: reassignment weights
	lastRoundAt time.Duration
	epochRounds int // contact rounds since the current epoch started
}

// pendingCkpt collects the parts of an in-flight checkpoint.
type pendingCkpt struct {
	seq   int
	want  []int // the alive participants when the request went out
	parts map[int]CheckpointMsg
}

// slaveEvent is one entry of a slave's round stream: a status report or its
// termination announcement.
type slaveEvent struct {
	st   StatusMsg
	done bool
}

func (m *masterFT) runOn(ep Endpoint) {
	m.ep = ep
	plan := m.exec.Plan
	m.plan = plan

	own := core.NewBlockOwnership(m.exec.Units, m.initial)
	lo, hi := m.exec.InitialActive()
	for u := 0; u < own.Units(); u++ {
		if u < lo || u >= hi {
			own.Deactivate(u)
		}
	}
	m.own = own

	m.balCfg = core.DefaultConfig(m.initial, plan.Restricted)
	m.balCfg.MinImprovement = m.cfg.MinImprovement
	m.balCfg.DisableFilter = m.cfg.DisableFilter
	m.balCfg.DisableProfitability = m.cfg.DisableProfitability
	m.balCfg.Quantum = m.cc.Quantum
	unitBytes := 0
	totalBytes := 0
	for arr, dim := range plan.DistArrays {
		a := m.inst.Arrays[arr]
		unitBytes += 8 * unitSize(a, dim)
		totalBytes += 8 * len(a.Data)
	}
	for _, arr := range plan.Replicated {
		totalBytes += 8 * len(m.inst.Arrays[arr].Data)
	}
	m.perUnit = time.Duration(float64(unitBytes) / m.cc.Bandwidth * float64(time.Second))
	m.fixed = m.cc.LinkLatency + m.cc.SendOverhead
	m.bal = core.NewBalancer(m.balCfg, own, core.NewMoveCostModel(m.fixed, m.perUnit))
	// Checkpoint cost estimate for the throttling policy: ship the whole
	// distributed state plus the shared replicated state once.
	m.ckptCost = time.Duration(float64(totalBytes)/m.cc.Bandwidth*float64(time.Second)) +
		time.Duration(m.initial)*m.fixed

	m.alive = make([]bool, m.total)
	for i := 0; i < m.initial; i++ {
		m.alive[i] = true
	}
	m.inbox = map[int][]slaveEvent{}
	m.admitted = make([]bool, m.total)
	m.queued = make([]bool, m.total)
	m.done = make([]bool, m.total)
	m.det = fault.NewDetector(m.cfg.Detect, m.total)
	m.pol = m.cfg.Ckpt
	m.initialCkpt()

	m.scatter()
	m.computeStart = ep.Now()
	m.det.Reset(ep.Now())
	m.lastCkptAt = ep.Now()
	m.lastRoundAt = ep.Now()

	for m.remaining() > 0 {
		raw, ok := m.collectRound()
		if !ok {
			continue // a recovery restarted the epoch; collect afresh
		}
		if raw == nil {
			break // every participant announced completion
		}
		m.handleRound(raw)
	}
	m.computeEnd = ep.Now()

	// Commit completion: from here on no recovery is possible, so slaves may
	// ship their final data and stop (see FinAckMsg).
	for id := 0; id < m.own.Slaves(); id++ {
		if m.alive[id] {
			ep.Send(id, "finack", 32, FinAckMsg{Epoch: m.epoch})
		}
	}
	// Release joiner processes that were never admitted (including ones that
	// have not registered yet: the eviction waits in their mailbox).
	for slot := m.initial; slot < m.total; slot++ {
		if !m.admitted[slot] {
			ep.Send(slot, "evict", 48, EvictMsg{Epoch: m.epoch, Reason: "run complete"})
		}
	}
	m.gather()
	m.res.Owner, _ = m.own.Snapshot()
}

func (m *masterFT) scatter() {
	for sl := 0; sl < m.initial; sl++ {
		msg := InitMsg{Owned: map[string]map[int][]float64{}, Replicated: map[string][]float64{}}
		bytes := msgHeader
		for arr, dim := range m.plan.DistArrays {
			a := m.inst.Arrays[arr]
			units := map[int][]float64{}
			for _, u := range m.own.Owned(sl) {
				vals := unitSlice(a, dim, u)
				units[u] = vals
				bytes += 8*len(vals) + 16
			}
			msg.Owned[arr] = units
		}
		for _, arr := range m.plan.Replicated {
			a := m.inst.Arrays[arr]
			vals := append([]float64(nil), a.Data...)
			msg.Replicated[arr] = vals
			bytes += 8 * len(vals)
		}
		m.ep.Send(sl, "init", bytes, msg)
	}
}

// initialCkpt builds the synthetic checkpoint 0 from the master's initial
// arrays: a recovery before the first committed snapshot restarts the whole
// computation (Hook -1, no fast-forward).
func (m *masterFT) initialCkpt() {
	ck := &fault.Checkpoint{Seq: 0, Hook: -1, Slaves: m.own.Slaves()}
	ck.Owner, ck.Active = m.own.Snapshot()
	ck.Dist = map[string]map[int][]float64{}
	for arr, dim := range m.plan.DistArrays {
		a := m.inst.Arrays[arr]
		units := map[int][]float64{}
		for u := 0; u < m.exec.Units; u++ {
			units[u] = unitSlice(a, dim, u)
		}
		ck.Dist[arr] = units
	}
	ck.Replicated = map[string][]float64{}
	for _, arr := range m.plan.Replicated {
		ck.Replicated[arr] = append([]float64(nil), m.inst.Arrays[arr].Data...)
	}
	ck.RedSnap = map[string][]float64{}
	ck.Red = map[int]map[string][]float64{}
	for _, r := range m.plan.Reductions {
		ck.RedSnap[r.Array] = append([]float64(nil), m.inst.Arrays[r.Array].Data...)
	}
	for s := 0; s < m.own.Slaves(); s++ {
		red := map[string][]float64{}
		for arr, vals := range ck.RedSnap {
			red[arr] = append([]float64(nil), vals...)
		}
		ck.Red[s] = red
	}
	m.ck = ck
}

// participants lists the alive slaves of the current membership, ascending.
func (m *masterFT) participants() []int {
	var out []int
	for id := 0; id < m.own.Slaves(); id++ {
		if m.alive[id] {
			out = append(out, id)
		}
	}
	return out
}

func (m *masterFT) remaining() int {
	n := 0
	for _, id := range m.participants() {
		if !m.done[id] {
			n++
		}
	}
	return n
}

// collectRound gathers one full round of status reports. It returns
// (nil, false) if a recovery was performed (the round is void), (nil, true)
// if every participant announced completion, and (statuses, true) for a
// normal round. While waiting it processes heartbeats, checkpoint parts and
// join requests, and evicts slaves whose lease expires.
func (m *masterFT) collectRound() (map[int]StatusMsg, bool) {
	raw := map[int]StatusMsg{}
	dones := 0
	for {
		// Pop queued round events, at most one per slave: the pump receives
		// from AnySource, so a fast slave's next-round status (or its done)
		// can arrive while this round is still collecting. The per-slave FIFO
		// restores the round alignment the legacy per-slave Recv gave.
		for _, id := range m.participants() {
			if m.done[id] {
				continue
			}
			if _, got := raw[id]; got {
				continue
			}
			q := m.inbox[id]
			if len(q) == 0 {
				continue
			}
			ev := q[0]
			m.inbox[id] = q[1:]
			if ev.done {
				if len(raw) > 0 {
					panic("dlb: slave schedules diverged (mixed status/done round)")
				}
				dones++
				m.done[id] = true
				m.doneCount++
				// The computation ended before the next contact hook, so an
				// outstanding checkpoint request will never be answered.
				m.pending = nil
			} else {
				if dones > 0 {
					panic("dlb: slave schedules diverged (mixed status/done round)")
				}
				raw[id] = ev.st
			}
		}
		missing := m.missingFrom(raw)
		if len(missing) == 0 {
			if m.remaining() == 0 {
				return nil, true
			}
			return raw, true
		}
		wait := m.det.Deadline(missing[0]) - m.ep.Now()
		for _, id := range missing[1:] {
			if d := m.det.Deadline(id) - m.ep.Now(); d < wait {
				wait = d
			}
		}
		if wait > 0 {
			if msg, ok := recvTimeout(m.ep, cluster.AnySource, "", wait); ok {
				if m.handleMsg(msg) {
					return nil, false
				}
				continue
			}
		} else if msg, ok := m.ep.TryRecv(cluster.AnySource, ""); ok {
			// Deadlines passed, but drain already-delivered traffic first: a
			// sign of life may be sitting in the mailbox.
			if m.handleMsg(msg) {
				return nil, false
			}
			continue
		}
		if dead := m.det.Expired(m.ep.Now(), missing); len(dead) > 0 {
			m.recoverFrom(dead, nil)
			return nil, false
		}
	}
}

// missingFrom lists participants whose status for this round is still
// outstanding (done slaves only heartbeat; they are watched via gather).
func (m *masterFT) missingFrom(raw map[int]StatusMsg) []int {
	var out []int
	for _, id := range m.participants() {
		if m.done[id] {
			continue
		}
		if _, ok := raw[id]; !ok {
			out = append(out, id)
		}
	}
	return out
}

// handleMsg processes one message during round collection. Status and done
// messages are queued per slave (collectRound pops them round-aligned); the
// function returns true when the message triggered a recovery (so the caller
// must void the round).
func (m *masterFT) handleMsg(msg cluster.Msg) bool {
	now := m.ep.Now()
	from := msg.From
	aliveFrom := from >= 0 && from < len(m.alive) && m.alive[from]
	switch msg.Tag {
	case "status":
		st := msg.Data.(StatusMsg)
		if !aliveFrom {
			return false // a zombie's report; its eviction is in flight
		}
		m.det.Observe(from, now)
		if st.Epoch != m.epoch {
			return false // stale pre-recovery report
		}
		m.inbox[from] = append(m.inbox[from], slaveEvent{st: st})
	case "done":
		st := msg.Data.(StatusMsg)
		if !aliveFrom {
			return false
		}
		m.det.Observe(from, now)
		if st.Epoch != m.epoch {
			return false
		}
		m.inbox[from] = append(m.inbox[from], slaveEvent{st: st, done: true})
	case "hb":
		if aliveFrom {
			m.det.Observe(from, now)
		}
	case "ckpt":
		part := msg.Data.(CheckpointMsg)
		if !aliveFrom {
			return false
		}
		m.det.Observe(from, now)
		if part.Epoch != m.epoch || m.pending == nil || part.Seq != m.pending.seq {
			return false
		}
		m.pending.parts[part.Slave] = part
		if len(m.pending.parts) == len(m.pending.want) {
			m.commitCkpt()
			if len(m.joinQueue) > 0 {
				// Admission rides on the snapshot just taken: survivors roll
				// back only to the state of a moment ago.
				js := m.joinQueue
				m.joinQueue = nil
				m.recoverFrom(nil, js)
				return true
			}
		}
	case "join":
		j := msg.Data.(JoinMsg)
		if j.Slave >= m.initial && j.Slave < m.total && !m.admitted[j.Slave] && !m.queued[j.Slave] {
			m.queued[j.Slave] = true
			m.joinQueue = append(m.joinQueue, j.Slave)
			m.wantCkpt = true
			m.log.Add(now, fault.LogJoin, j.Slave, "registered, awaiting admission")
		}
	default:
		panic(fmt.Sprintf("dlb: master: unexpected tag %q from %d", msg.Tag, from))
	}
	return false
}

// handleRound runs the load-balancing decision for one complete round and
// sends the (possibly checkpoint-preceded) instructions.
func (m *masterFT) handleRound(raw map[int]StatusMsg) {
	ids := m.participants()
	first := raw[ids[0]]
	phase, hookIdx := first.Phase, first.HookIndex
	for _, id := range ids {
		st := raw[id]
		if st.Phase != phase || st.HookIndex != hookIdx {
			panic(fmt.Sprintf("dlb: master: slave %d at phase %d/hook %d, slave %d at %d/%d",
				id, st.Phase, st.HookIndex, ids[0], phase, hookIdx))
		}
	}
	m.res.Phases++
	now := m.ep.Now()
	m.det.ObserveInterval(now - m.lastRoundAt)
	m.lastRoundAt = now

	m.ep.Charge(m.cfg.MasterDecisionCost)

	meta := m.exec.Phases[hookIdx]
	for u := 0; u < m.own.Units(); u++ {
		if (u < meta.ActiveLo || u >= meta.ActiveHi) && m.own.IsActive(u) {
			m.own.Deactivate(u)
		}
	}

	var d core.Decision
	if m.cfg.DLB {
		slots := m.own.Slaves()
		counts := m.own.ActiveCounts()
		statuses := make([]core.Status, slots)
		var sumRate float64
		var nRate int
		for _, id := range ids {
			st := raw[id]
			rate := 0.0
			if st.Busy > 0 && st.Units > 0 {
				rate = st.Units / st.Busy.Seconds()
				sumRate += rate
				nRate++
			}
			statuses[id] = core.Status{Rate: rate, MoveCost: st.MoveCost, InteractionCost: st.InterCost}
		}
		// A slave with no work cannot measure its capability; assume the
		// mean of the others so it can win work back. Dead slots keep rate
		// zero — the balancer's alive mask excludes them anyway.
		if nRate > 0 {
			mean := sumRate / float64(nRate)
			for _, id := range ids {
				if statuses[id].Rate == 0 && counts[id] == 0 {
					statuses[id].Rate = mean
				}
			}
		}
		unitsPerHook := float64(meta.UnitsBetween)
		if next := hookIdx + 1; next < len(m.exec.Phases) {
			unitsPerHook = float64(m.exec.Phases[next].UnitsBetween)
		}
		d = m.bal.Step(statuses, unitsPerHook)
		m.lastRates = d.FilteredRates
		m.res.Moves += len(d.Moves)
		for _, mv := range d.Moves {
			m.res.UnitsMoved += len(mv.Units)
		}
		if m.cfg.CollectTrace {
			work := m.own.ActiveCounts()
			for _, id := range ids {
				m.res.Trace = append(m.res.Trace, Sample{
					Time:      now,
					Phase:     phase,
					Slave:     id,
					RawRate:   statuses[id].Rate,
					Filtered:  d.FilteredRates[id],
					Work:      work[id],
					SkipHooks: d.SkipHooks,
					Period:    d.Period,
				})
			}
		}
	}

	// A checkpoint request precedes its instruction: FIFO delivery pins the
	// consistent cut to the hook where this instruction is consumed. It can
	// only ride on rounds whose instruction the slaves actually consume —
	// pipelined phase 0 and the first post-recovery contact are skipped.
	consumed := m.cfg.Synchronous || (phase > 0 && (m.epochRounds > 0 || m.ck.Hook < 0))
	ckptSeq := 0
	if consumed && m.pending == nil && m.doneCount == 0 &&
		(m.wantCkpt || m.pol.Should(now, m.lastCkptAt, m.ckptCost)) {
		m.seq++
		m.wantCkpt = false
		m.pending = &pendingCkpt{seq: m.seq, want: ids, parts: map[int]CheckpointMsg{}}
		ckptSeq = m.seq
		for _, id := range ids {
			m.ep.Send(id, "ckptreq", 48, CheckpointRequestMsg{Epoch: m.epoch, Seq: m.seq})
		}
	}

	instr := InstrMsg{Phase: phase, HookIndex: hookIdx, Moves: d.Moves, SkipHooks: d.SkipHooks, Epoch: m.epoch, CkptSeq: ckptSeq}
	bytes := 64
	for _, mv := range d.Moves {
		bytes += 16 + 8*len(mv.Units)
	}
	for _, id := range ids {
		m.ep.Send(id, "instr", bytes, instr)
	}
	m.epochRounds++
}

// commitCkpt merges the collected parts into the new authoritative
// checkpoint.
func (m *masterFT) commitCkpt() {
	p := m.pending
	m.pending = nil
	now := m.ep.Now()
	var metaPart *CheckpointMsg
	hook := -2
	for _, id := range p.want {
		part := p.parts[id]
		if hook == -2 {
			hook = part.Hook
		} else if part.Hook != hook {
			panic(fmt.Sprintf("dlb: inconsistent checkpoint cut: hooks %d and %d", hook, part.Hook))
		}
		if part.Meta {
			cp := part
			metaPart = &cp
		}
	}
	if metaPart == nil {
		panic("dlb: checkpoint committed without a designated meta part")
	}
	ck := &fault.Checkpoint{
		Seq:         p.seq,
		Hook:        metaPart.Hook,
		Phase:       metaPart.Phase,
		NextContact: metaPart.NextContact,
		At:          now,
		Slaves:      metaPart.Slaves,
		Owner:       metaPart.Owner,
		Active:      metaPart.Active,
		Replicated:  metaPart.Replicated,
		RedSnap:     metaPart.RedSnap,
		Dist:        map[string]map[int][]float64{},
		Red:         map[int]map[string][]float64{},
	}
	for arr := range m.plan.DistArrays {
		ck.Dist[arr] = map[int][]float64{}
	}
	for _, id := range p.want {
		part := p.parts[id]
		for arr, units := range part.Owned {
			for u, vals := range units {
				ck.Dist[arr][u] = vals
			}
		}
		if part.Red != nil {
			ck.Red[id] = part.Red
		}
	}
	for arr, units := range ck.Dist {
		if len(units) != m.exec.Units {
			panic(fmt.Sprintf("dlb: checkpoint %d covers %d/%d units of %s", p.seq, len(units), m.exec.Units, arr))
		}
	}
	m.ck = ck
	m.res.Checkpoints++
	m.lastCkptAt = now
	m.log.Add(now, fault.LogCheckpoint, -1, "seq %d committed at hook %d", p.seq, ck.Hook)
}

// recoverFrom starts a recovery epoch: evict newDead, rebuild the ownership
// map from the committed checkpoint (repairing dead slots and folding in
// admitted joiners), rebuild the balancer, and re-scatter the checkpoint
// state with AdoptMsgs.
func (m *masterFT) recoverFrom(newDead, admitIDs []int) {
	now := m.ep.Now()
	for _, dd := range newDead {
		m.alive[dd] = false
		if m.done[dd] {
			m.done[dd] = false
			m.doneCount--
		}
		m.ep.Send(dd, "evict", 48, EvictMsg{Epoch: m.epoch, Reason: "lease expired"})
		m.res.Evicted = append(m.res.Evicted, dd)
		m.log.Add(now, fault.LogEvict, dd, "lease %.2fs expired", m.det.Lease().Seconds())
	}
	m.epoch++
	ck := m.ck

	own := core.OwnershipFromMap(ck.Owner, ck.Active, ck.Slaves)
	// Re-grow the map for slots admitted since the snapshot, then fold in
	// the new admissions. Joiner slots are numbered in registration-time
	// order, so admission in id order keeps ownership slot == cluster id; a
	// gap (an earlier joiner not yet registered) defers the later ones.
	for slot := ck.Slaves; slot < m.total; slot++ {
		if m.admitted[slot] {
			own.AddSlave()
			continue
		}
		wanted := false
		for _, j := range admitIDs {
			if j == slot {
				wanted = true
			}
		}
		if !wanted {
			break
		}
		own.AddSlave()
		m.admitted[slot] = true
		m.alive[slot] = true
		m.res.Joined = append(m.res.Joined, slot)
		m.log.Add(now, fault.LogAdopt, slot, "admitted into epoch %d", m.epoch)
	}
	for _, j := range admitIDs {
		if !m.admitted[j] {
			m.joinQueue = append(m.joinQueue, j) // blocked by a gap; retry later
		}
	}

	slots := own.Slaves()
	aliveMask := append([]bool(nil), m.alive[:slots]...)
	anyAlive := false
	for _, a := range aliveMask {
		anyAlive = anyAlive || a
	}
	if !anyAlive {
		panic("dlb: recovery impossible: no surviving slaves")
	}
	for dd := 0; dd < slots; dd++ {
		if !m.alive[dd] && len(own.Owned(dd)) > 0 {
			if _, err := core.ReassignDead(own, dd, m.plan.Restricted, m.lastRates, aliveMask); err != nil {
				panic(fmt.Sprintf("dlb: recovery: %v", err))
			}
		}
	}
	m.own = own
	balCfg := m.balCfg
	balCfg.Slaves = slots
	// Fresh balancer: the rate-filter history predates the rollback.
	m.bal = core.NewBalancer(balCfg, own, core.NewMoveCostModel(m.fixed, m.perUnit))
	m.bal.SetAlive(aliveMask)

	for i := range m.done {
		m.done[i] = false
	}
	m.doneCount = 0
	m.inbox = map[int][]slaveEvent{} // queued events predate the epoch bump
	m.pending = nil
	m.wantCkpt = len(m.joinQueue) > 0
	m.lastCkptAt = now
	m.epochRounds = 0

	owner, active := own.Snapshot()
	for _, id := range m.participants() {
		adopt := AdoptMsg{
			Epoch:       m.epoch,
			Seq:         ck.Seq,
			Hook:        ck.Hook,
			Phase:       ck.Phase,
			NextContact: ck.NextContact,
			Slaves:      slots,
			Alive:       append([]bool(nil), aliveMask...),
			Owner:       owner,
			Active:      active,
			Owned:       map[string]map[int][]float64{},
			Replicated:  ck.Replicated,
			RedSnap:     ck.RedSnap,
		}
		bytes := msgHeader + 9*len(owner)
		for arr := range m.plan.DistArrays {
			src := ck.Dist[arr]
			units := map[int][]float64{}
			for _, u := range own.Owned(id) {
				units[u] = src[u]
				bytes += 8*len(src[u]) + 16
			}
			// Ghost data under the repaired map, from the cut-time owners:
			// exchange ghosts are same-row reads of previous-sweep values,
			// which the snapshot preserves; pipeline ghosts are re-supplied
			// by re-execution.
			for _, delta := range m.plan.GhostDeltas {
				for _, g := range ghostNeeds(own, id, delta) {
					if _, dup := units[g]; !dup {
						units[g] = src[g]
						bytes += 8*len(src[g]) + 16
					}
				}
			}
			adopt.Owned[arr] = units
		}
		if len(m.plan.Reductions) > 0 {
			adopt.Red = m.redFor(id, ck, aliveMask)
			for _, vals := range adopt.Red {
				bytes += 8 * len(vals)
			}
		}
		for _, vals := range ck.Replicated {
			bytes += 8 * len(vals)
		}
		for _, vals := range ck.RedSnap {
			bytes += 8 * len(vals)
		}
		m.ep.Send(id, "recover", bytes, adopt)
	}
	m.res.Recoveries++
	m.log.Add(now, fault.LogRecover, -1, "epoch %d from checkpoint %d (hook %d)", m.epoch, ck.Seq, ck.Hook)
	m.det.Reset(now)
	m.lastRoundAt = now
}

// redFor builds one slave's restored reduction arrays. Mid-interval partial
// accumulations differ per slave, so each slave gets its own snapshot back;
// the deltas dead slaves had accumulated since the last Combine are folded
// into the lowest-id survivor so the epoch's next Combine still totals the
// same sum. Joiners start at the shared snapshot (delta zero).
func (m *masterFT) redFor(id int, ck *fault.Checkpoint, alive []bool) map[string][]float64 {
	out := map[string][]float64{}
	if base, ok := ck.Red[id]; ok {
		for arr, vals := range base {
			out[arr] = append([]float64(nil), vals...)
		}
	} else {
		for arr, vals := range ck.RedSnap {
			out[arr] = append([]float64(nil), vals...)
		}
	}
	lowest := -1
	for i, a := range alive {
		if a {
			lowest = i
			break
		}
	}
	if id == lowest {
		for dd := 0; dd < len(alive); dd++ {
			if alive[dd] {
				continue
			}
			red, ok := ck.Red[dd]
			if !ok {
				continue
			}
			for arr, vals := range red {
				snap := ck.RedSnap[arr]
				dst := out[arr]
				for i := range vals {
					dst[i] += vals[i] - snap[i]
				}
			}
		}
	}
	return out
}

// gather assembles the final arrays from the surviving participants. A
// failure after completion was committed (the documented post-done window)
// surfaces as a run error instead of a hang.
func (m *masterFT) gather() {
	final := map[string]*loopir.Array{}
	for arr, a := range m.inst.Arrays {
		final[arr] = a.Clone()
	}
	timeout := 2 * m.det.Lease()
	for range m.participants() {
		msg, ok := recvTimeout(m.ep, cluster.AnySource, "gather", timeout)
		if !ok {
			m.err = fmt.Errorf("dlb: gather timed out after %v (slave failed after completion was committed)", timeout)
			return
		}
		g := msg.Data.(GatherMsg)
		for arr, units := range g.Data {
			dim := m.plan.DistArrays[arr]
			for u, vals := range units {
				setUnitSlice(final[arr], dim, u, vals)
			}
		}
		for arr, vals := range g.Reduced {
			copy(final[arr].Data, vals)
		}
	}
	m.final = final
}
