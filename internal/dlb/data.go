package dlb

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/loopir"
)

// Message payloads. In the simulated cluster these travel by reference but
// all float data is copied at send time, so the timing model and the data
// flow match a real message-passing system.

// StatusMsg is a slave's report at a load-balancing contact (or, with
// tag "done", its termination announcement).
type StatusMsg struct {
	Phase     int
	HookIndex int
	Units     float64       // work units completed since the last contact
	Busy      time.Duration // busy time spent computing since the last contact
	MoveCost  time.Duration // measured cost of the last work movement
	InterCost time.Duration // measured cost of the previous interaction
	Done      bool
	// Epoch is the recovery epoch this report belongs to (fault-tolerant
	// runs only); the master drops reports from earlier epochs.
	Epoch int
	// Dispatch accounting, reported with the termination announcement:
	// how many owned units ran through AOT-built native kernels, compiled
	// range kernels, or the lowered interpreter fallback (engine counters
	// aot_units / kernel_units / fallback_units).
	AotUnits      int64
	KernelUnits   int64
	FallbackUnits int64
	// Overlap accounting (engine counters overlap_rounds /
	// overlap_fallback): owned-loop executions that ran the split
	// interior/boundary schedule with ghost receives deferred past the
	// interior pass, and eligible exchange rounds that ended up effectively
	// synchronous at run time (drained with no interior work, or abandoned
	// by an epoch restart).
	OverlapRounds   int64
	OverlapFallback int64
	// CostBlocks summarizes the measured per-unit cost of the work this
	// report covers (learned cost model; nil under the uniform model).
	// Ranges are clamped to maxCostBlocks entries per report.
	CostBlocks []CostBlock
}

// InstrMsg is the master's reply: redistribution moves and the hook-skip
// count until the next contact.
type InstrMsg struct {
	Phase     int // the contact phase whose statuses produced this instruction
	HookIndex int
	Moves     []core.Move
	SkipHooks int
	Epoch     int // recovery epoch (fault-tolerant runs); stale instrs are dropped
	// CkptSeq pairs this instruction with the CheckpointRequestMsg sent
	// immediately before it (0: none). The slave answers exactly that
	// request after applying this instruction; matching by sequence — not
	// just mailbox order — keeps the cut consistent even when the master
	// races a full round ahead of a descheduled slave process.
	CkptSeq int
}

// GroupStatusMsg aggregates one group's per-member status reports (tag
// "gstatus") or termination announcements (tag "gdone"), assembled by the
// group leader so the master receives one message per group instead of
// one per slave. Ids and Statuses are aligned, member order ascending,
// leader first.
type GroupStatusMsg struct {
	Group    int
	Ids      []int
	Statuses []StatusMsg
}

// GroupShiftMsg is the master's grouped reply (tag "ginstr"): the round's
// instruction, which the receiving leader relays to its members before
// applying it itself. The embedded instruction already carries both the
// intra-group rebalancing moves and the diffusive cross-boundary shifts —
// a shift is an ordinary adjacent move whose endpoints straddle a group
// boundary.
type GroupShiftMsg struct {
	Instr InstrMsg
}

// WorkMsg carries moved work units' data plus the ghost slices adjacent to
// the moved range (§4.5: moved iterations must arrive in a consistent
// state; shipping the sender's ghost data achieves that).
type WorkMsg struct {
	Units  []int
	Data   map[string][][]float64       // array -> slices aligned with Units
	Ghosts map[string]map[int][]float64 // array -> ghost unit -> slice
}

// SliceMsg is a pipeline, exchange, or broadcast transfer of (part of) one
// unit slice.
type SliceMsg struct {
	Unit         int
	RowLo, RowHi int // -1,-1 for a whole-unit transfer
	Vals         []float64
}

// InitMsg is the initial scatter: a slave's owned slices of each
// distributed array plus full copies of the replicated arrays.
type InitMsg struct {
	Owned      map[string]map[int][]float64
	Replicated map[string][]float64
	// FromCache marks a bulk-free scatter: the receiving daemon announced
	// it still holds this plan's init payload from an earlier run, so the
	// master shipped only this marker and the daemon re-plays its cached
	// copy (netrun's plan-hash init cache).
	FromCache bool
}

// GatherMsg is the final collection of a slave's owned data.
type GatherMsg struct {
	Data map[string]map[int][]float64
	// Reduced carries the final combined values of reduction arrays
	// (reported by slave 0; identical on every slave after Combine).
	Reduced map[string][]float64
}

// Fault-tolerance messages (internal/fault subsystem). All are exchanged
// with the master only; slave-to-slave traffic is instead epoch-scoped by
// tag suffix so stale in-flight data from before a recovery is never
// consumed.

// HeartbeatMsg is a slave's lightweight sign of life, emitted at hook sites
// and while blocked in a receive, so the master can distinguish a crashed
// slave from one that is merely computing or waiting between contacts.
type HeartbeatMsg struct {
	Epoch     int
	Phase     int
	HookIndex int
}

// EvictMsg is sent by the master directly to a slave it has declared dead.
// A stalled slave that resumes after eviction (a "zombie") sees it at its
// next receive and terminates instead of corrupting the recovered epoch.
// It also shuts down joiner processes that were never admitted.
type EvictMsg struct {
	Epoch  int
	Reason string
}

// CheckpointRequestMsg asks every live slave for a snapshot at its next
// master contact. It is sent immediately before the round's InstrMsg, so
// FIFO delivery guarantees the slave observes it exactly when it consumes
// that instruction — the same hook on every slave, a consistent cut.
type CheckpointRequestMsg struct {
	Epoch int
	Seq   int
}

// CheckpointMsg is one slave's part of checkpoint Seq: its owned slices of
// the distributed arrays plus resume coordinates. Only the designated slave
// (lowest alive id) ships the shared state — ownership map, replicated
// arrays, reduction snapshots — which is identical on every slave.
type CheckpointMsg struct {
	Epoch       int
	Seq         int
	Slave       int
	Hook        int // hook index the snapshot was taken at
	Phase       int // contact-phase counter to resume with
	NextContact int
	Owned       map[string]map[int][]float64
	// Red holds this slave's reduction arrays: mid-interval partial
	// accumulations differ per slave and must be restored per slave.
	Red map[string][]float64
	// Shared state, present only in the designated slave's part.
	Meta       bool
	Slaves     int
	Owner      []int
	Active     []bool
	Replicated map[string][]float64
	RedSnap    map[string][]float64
}

// FinAckMsg commits run completion: only after receiving it may a slave
// stop participating in recovery and ship its final data (a slave that
// announced "done" can still be rolled back if a peer died in the final
// round before the master saw every survivor finish).
type FinAckMsg struct {
	Epoch int
}

// JoinMsg announces an idle node asking to be folded into the computation.
type JoinMsg struct {
	Slave int
}

// AdoptMsg restarts a recovery epoch: every surviving (and newly admitted)
// slave restores the carried checkpoint state, fast-forwards its control
// flow to the checkpoint hook, and resumes. It is a full re-scatter, so
// slaves need not retain local snapshots.
type AdoptMsg struct {
	Epoch       int
	Seq         int
	Hook        int // -1: restart from the initial distribution
	Phase       int
	NextContact int
	Slaves      int
	Alive       []bool
	Owner       []int
	Active      []bool
	Owned       map[string]map[int][]float64 // this slave's units (plus needed ghosts) under the repaired map
	Red         map[string][]float64         // this slave's reduction arrays (dead slaves' deltas folded in)
	Replicated  map[string][]float64
	RedSnap     map[string][]float64
}

const msgHeader = 32 // estimated fixed framing bytes per message

func floatsBytes(n int) int { return msgHeader + 8*n }

// unitSize returns the number of elements in one distributed slice of the
// array.
func unitSize(a *loopir.Array, dim int) int {
	return len(a.Data) / a.Dims[dim]
}

// unitSlice copies the elements of the array with index dim fixed at u, in
// canonical (row-major, dim removed) order. The selection decomposes into
// contiguous runs copied with copy() (or a tight strided loop when runs
// degenerate to single elements); the per-element walk remains as the
// fallback and as the oracle the fast path is tested against.
func unitSlice(a *loopir.Array, dim, u int) []float64 {
	out := make([]float64, 0, unitSize(a, dim))
	if fast, ok := gatherUnit(out, a, dim, u, -1, 0, 0); ok {
		return fast
	}
	forEachUnitElem(a, dim, u, -1, 0, 0, func(flat int) {
		out = append(out, a.Data[flat])
	})
	return out
}

// setUnitSlice writes a slice produced by unitSlice back at index u.
func setUnitSlice(a *loopir.Array, dim, u int, vals []float64) {
	if scatterUnit(a, dim, u, -1, 0, 0, vals) {
		return
	}
	i := 0
	forEachUnitElem(a, dim, u, -1, 0, 0, func(flat int) {
		a.Data[flat] = vals[i]
		i++
	})
	if i != len(vals) {
		panic(fmt.Sprintf("dlb: slice length %d does not match unit size %d", len(vals), i))
	}
}

// unitSliceRows copies the elements with index dim = u and rowDim in
// [rowLo, rowHi).
func unitSliceRows(a *loopir.Array, dim, u, rowDim, rowLo, rowHi int) []float64 {
	if fast, ok := gatherUnit(nil, a, dim, u, rowDim, rowLo, rowHi); ok {
		return fast
	}
	var out []float64
	forEachUnitElem(a, dim, u, rowDim, rowLo, rowHi, func(flat int) {
		out = append(out, a.Data[flat])
	})
	return out
}

// setUnitSliceRows writes back a slice produced by unitSliceRows.
func setUnitSliceRows(a *loopir.Array, dim, u, rowDim, rowLo, rowHi int, vals []float64) {
	if scatterUnit(a, dim, u, rowDim, rowLo, rowHi, vals) {
		return
	}
	i := 0
	forEachUnitElem(a, dim, u, rowDim, rowLo, rowHi, func(flat int) {
		a.Data[flat] = vals[i]
		i++
	})
	if i != len(vals) {
		panic(fmt.Sprintf("dlb: row slice length %d does not match selection %d", len(vals), i))
	}
}

// runShape is the contiguous-run decomposition of a unit selection: the
// canonical-order walk visits runs of n consecutive elements, one per
// combination of the outer loop counters, each starting at
// off + Σ v_i·oStride_i.
type runShape struct {
	off, n            int
	nOuter            int
	oLo, oHi, oStride [4]int
}

// total is the element count of the whole selection.
func (sh *runShape) total() int {
	t := sh.n
	for i := 0; i < sh.nOuter; i++ {
		t *= sh.oHi[i] - sh.oLo[i]
	}
	return t
}

// unitRunShape computes the run decomposition for the selection
// (dim = u, optionally rowDim in [rowLo, rowHi)). The innermost dim that
// breaks contiguity is k = max(dim, restricted rowDim): everything after k
// is iterated fully, so each setting of the dims up to k yields one
// contiguous run — Stride[dim] elements at u·Stride[dim] when k == dim,
// (hi−lo)·Stride[k] elements starting at lo·Stride[k] when k == rowDim.
// Dims before k (minus the fixed dim) become the outer loops. Returns
// ok = false for shapes it does not cover (rowDim == dim, > 4 outer dims);
// the caller falls back to the per-element walk.
func unitRunShape(a *loopir.Array, dim, u, rowDim, rowLo, rowHi int) (runShape, bool) {
	var sh runShape
	if dim < 0 || dim >= len(a.Dims) || rowDim == dim || rowDim >= len(a.Dims) {
		return sh, false
	}
	k := dim
	lo, hi := 0, 0
	if rowDim >= 0 {
		lo, hi = rowLo, rowHi
		if lo < 0 {
			lo = 0
		}
		if hi > a.Dims[rowDim] {
			hi = a.Dims[rowDim]
		}
		if hi < lo {
			hi = lo
		}
		if rowDim > k {
			k = rowDim
		}
	}
	sh.off, sh.n = u*a.Stride[dim], a.Stride[dim]
	if rowDim == k && rowDim >= 0 {
		sh.off += lo * a.Stride[k]
		sh.n = (hi - lo) * a.Stride[k]
	}
	for d := 0; d < k; d++ {
		if d == dim {
			continue
		}
		if sh.nOuter == len(sh.oLo) {
			return sh, false
		}
		l, h := 0, a.Dims[d]
		if d == rowDim {
			l, h = lo, hi
		}
		sh.oLo[sh.nOuter], sh.oHi[sh.nOuter], sh.oStride[sh.nOuter] = l, h, a.Stride[d]
		sh.nOuter++
	}
	return sh, true
}

// gatherUnit appends the selection to dst using contiguous copies (or a
// tight strided loop when runs are single elements, the column-distributed
// 2D case). ok = false means nothing was appended — fall back.
func gatherUnit(dst []float64, a *loopir.Array, dim, u, rowDim, rowLo, rowHi int) ([]float64, bool) {
	sh, ok := unitRunShape(a, dim, u, rowDim, rowLo, rowHi)
	if !ok {
		return dst, false
	}
	switch sh.nOuter {
	case 0:
		return append(dst, a.Data[sh.off:sh.off+sh.n]...), true
	case 1:
		l, h, s := sh.oLo[0], sh.oHi[0], sh.oStride[0]
		if sh.n == 1 {
			i := len(dst)
			dst = append(dst, make([]float64, h-l)...)
			col := a.Data[sh.off:]
			for v := l; v < h; v++ {
				dst[i] = col[v*s]
				i++
			}
			return dst, true
		}
		for v := l; v < h; v++ {
			o := sh.off + v*s
			dst = append(dst, a.Data[o:o+sh.n]...)
		}
		return dst, true
	case 2:
		for v0 := sh.oLo[0]; v0 < sh.oHi[0]; v0++ {
			b0 := sh.off + v0*sh.oStride[0]
			for v1 := sh.oLo[1]; v1 < sh.oHi[1]; v1++ {
				o := b0 + v1*sh.oStride[1]
				dst = append(dst, a.Data[o:o+sh.n]...)
			}
		}
		return dst, true
	}
	return dst, false
}

// scatterUnit writes vals over the selection with contiguous copies.
// Returns false (having written nothing) on uncovered shapes or a length
// mismatch — the fallback walk then reproduces the legacy panic.
func scatterUnit(a *loopir.Array, dim, u, rowDim, rowLo, rowHi int, vals []float64) bool {
	sh, ok := unitRunShape(a, dim, u, rowDim, rowLo, rowHi)
	if !ok || sh.total() != len(vals) {
		return false
	}
	switch sh.nOuter {
	case 0:
		copy(a.Data[sh.off:sh.off+sh.n], vals)
		return true
	case 1:
		l, h, s := sh.oLo[0], sh.oHi[0], sh.oStride[0]
		if sh.n == 1 {
			col := a.Data[sh.off:]
			for i, v := 0, l; v < h; v++ {
				col[v*s] = vals[i]
				i++
			}
			return true
		}
		i := 0
		for v := l; v < h; v++ {
			o := sh.off + v*s
			copy(a.Data[o:o+sh.n], vals[i:])
			i += sh.n
		}
		return true
	case 2:
		i := 0
		for v0 := sh.oLo[0]; v0 < sh.oHi[0]; v0++ {
			b0 := sh.off + v0*sh.oStride[0]
			for v1 := sh.oLo[1]; v1 < sh.oHi[1]; v1++ {
				o := b0 + v1*sh.oStride[1]
				copy(a.Data[o:o+sh.n], vals[i:])
				i += sh.n
			}
		}
		return true
	}
	return false
}

// forEachUnitElem visits the flat offsets of the array with index dim = u,
// optionally restricted to rowDim in [rowLo, rowHi), in canonical order.
func forEachUnitElem(a *loopir.Array, dim, u, rowDim, rowLo, rowHi int, fn func(flat int)) {
	idx := make([]int, len(a.Dims))
	var rec func(d, flat int)
	rec = func(d, flat int) {
		if d == len(a.Dims) {
			fn(flat)
			return
		}
		if d == dim {
			rec(d+1, flat+u*a.Stride[d])
			return
		}
		lo, hi := 0, a.Dims[d]
		if d == rowDim {
			lo, hi = rowLo, rowHi
			if lo < 0 {
				lo = 0
			}
			if hi > a.Dims[d] {
				hi = a.Dims[d]
			}
		}
		for v := lo; v < hi; v++ {
			idx[d] = v
			rec(d+1, flat+v*a.Stride[d])
		}
	}
	rec(0, 0)
}

// ghostNeeds lists the units (ascending) that slave me must receive to
// satisfy reads at the given distributed-dimension offset: units g = j +
// delta read by my active owned units j but owned elsewhere. OwnedActive
// yields ascending distinct units, so g = j + delta is already ascending
// and distinct — no dedup or sort needed.
func ghostNeeds(o *core.Ownership, me, delta int) []int {
	var out []int
	for _, j := range o.OwnedActive(me) {
		g := j + delta
		if g < 0 || g >= o.Units() || o.OwnerOf(g) == me {
			continue
		}
		out = append(out, g)
	}
	return out
}

// ghostSupply lists (ascending by unit) the units slave me must send, with
// their destinations: units g owned by me whose reader j = g − delta is an
// active unit owned by another slave.
type supply struct {
	Unit int
	To   int
}

func ghostSupplies(o *core.Ownership, me, delta int) []supply {
	// Owned yields ascending distinct units, and each unit has exactly one
	// reader j = g − delta, so the (Unit, To) pairs are unique and already
	// in canonical order — no dedup or sort needed.
	var out []supply
	for _, g := range o.Owned(me) {
		j := g - delta
		if j < 0 || j >= o.Units() || !o.IsActive(j) {
			continue
		}
		to := o.OwnerOf(j)
		if to == me {
			continue
		}
		out = append(out, supply{Unit: g, To: to})
	}
	return out
}

// contiguousRuns decomposes an ascending unit list intersected with
// [lo, hi) into maximal [start, end) runs.
func contiguousRuns(units []int, lo, hi int) [][2]int {
	var runs [][2]int
	for i := 0; i < len(units); {
		u := units[i]
		if u < lo {
			i++
			continue
		}
		if u >= hi {
			break
		}
		start := u
		end := u + 1
		i++
		for i < len(units) && units[i] == end && end < hi {
			end++
			i++
		}
		runs = append(runs, [2]int{start, end})
	}
	return runs
}
