package dlb

import (
	"testing"

	"repro/internal/loopir"
)

// walkUnitSlice is the pre-fast-path gather: the per-element closure walk
// (still the oracle and the fallback), benchmarked as the baseline.
func walkUnitSlice(a *loopir.Array, dim, u int) []float64 {
	out := make([]float64, 0, unitSize(a, dim))
	forEachUnitElem(a, dim, u, -1, 0, 0, func(flat int) {
		out = append(out, a.Data[flat])
	})
	return out
}

func walkSetUnitSlice(a *loopir.Array, dim, u int, vals []float64) {
	i := 0
	forEachUnitElem(a, dim, u, -1, 0, 0, func(flat int) {
		a.Data[flat] = vals[i]
		i++
	})
}

// BenchmarkUnitCopy compares the contiguous-copy kernels against the
// element walk on the shapes the runtime actually moves: a row of a
// row-distributed 2D array (fully contiguous — one copy()), a column of a
// column-distributed 2D array (the MM hot path — a strided loop), and a
// plane of a 3D array (runs of the innermost extent).
func BenchmarkUnitCopy(b *testing.B) {
	cases := []struct {
		name string
		dims []int
		dim  int
	}{
		{"2d-row", []int{512, 512}, 0},
		{"2d-col", []int{512, 512}, 1},
		{"3d-mid", []int{64, 64, 64}, 1},
	}
	for _, c := range cases {
		a := loopir.NewArray("a", c.dims)
		for i := range a.Data {
			a.Data[i] = float64(i)
		}
		u := c.dims[c.dim] / 2
		bytes := int64(8 * unitSize(a, c.dim))

		b.Run(c.name+"/walk", func(b *testing.B) {
			b.SetBytes(bytes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				vals := walkUnitSlice(a, c.dim, u)
				walkSetUnitSlice(a, c.dim, u, vals)
			}
		})
		b.Run(c.name+"/fast", func(b *testing.B) {
			b.SetBytes(bytes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				vals := unitSlice(a, c.dim, u)
				setUnitSlice(a, c.dim, u, vals)
			}
		})
	}
}
