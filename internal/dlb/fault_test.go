package dlb

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
)

// ftConfig is the fault-test harness configuration: virtual-time leases and
// checkpoint intervals scaled so small test programs span several of them.
func ftConfig(fp *fault.Plan) Config {
	return Config{
		DLB:      true,
		Fault:    fp,
		FlopCost: 100 * time.Microsecond,
		Detect: fault.DetectorConfig{
			MissThreshold:  3,
			MinLease:       1500 * time.Millisecond,
			MaxLease:       4 * time.Second,
			HeartbeatEvery: 200 * time.Millisecond,
		},
		Ckpt: fault.CkptPolicy{
			MinInterval: time.Second,
			MaxInterval: 3 * time.Second,
			MaxOverhead: 0.10,
		},
	}
}

func TestFaultCrashMM(t *testing.T) {
	fp := (&fault.Plan{}).CrashAt(1, 1200*time.Millisecond)
	res := runAndVerify(t, planFor(t, "mm"), map[string]int{"n": 40},
		ftConfig(fp), cluster.Config{Slaves: 4})
	if res.Recoveries < 1 {
		t.Errorf("crash did not trigger a recovery (recoveries=%d)", res.Recoveries)
	}
	if len(res.Evicted) != 1 || res.Evicted[0] != 1 {
		t.Errorf("evicted = %v, want [1]", res.Evicted)
	}
	if res.FaultLog.Count(fault.LogCrash) != 1 {
		t.Errorf("fault log: %s", res.FaultLog)
	}
}

// assertBlockOwnership checks the replicated-map invariant restricted loops
// rely on: every slave's units form one contiguous block, so carried
// dependences stay between neighbours.
func assertBlockOwnership(t *testing.T, owner []int) {
	t.Helper()
	seen := map[int]bool{}
	for i := 0; i < len(owner); {
		id := owner[i]
		if seen[id] {
			t.Fatalf("slave %d holds non-contiguous blocks: %v", id, owner)
		}
		seen[id] = true
		for i < len(owner) && owner[i] == id {
			i++
		}
	}
}

// TestFaultCrashSOR crashes a middle slave of the restricted (carried-
// dependence) SOR pipeline: recovery must reassign the dead slave's block to
// its neighbours only, keeping every survivor's region contiguous.
func TestFaultCrashSOR(t *testing.T) {
	fp := (&fault.Plan{}).CrashAt(1, 500*time.Millisecond)
	cfg := ftConfig(fp)
	cfg.FlopCost = 300 * time.Microsecond
	cfg.Detect = fault.DetectorConfig{
		MissThreshold: 3, MinLease: 600 * time.Millisecond,
		MaxLease: 4 * time.Second, HeartbeatEvery: 150 * time.Millisecond,
	}
	cfg.Ckpt = fault.CkptPolicy{
		MinInterval: 200 * time.Millisecond, MaxInterval: 500 * time.Millisecond,
		MaxOverhead: 0.2,
	}
	res := runAndVerify(t, planFor(t, "sor"), map[string]int{"n": 32, "maxiter": 12},
		cfg, cluster.Config{Slaves: 4})
	if res.Recoveries < 1 {
		t.Errorf("crash did not trigger a recovery (recoveries=%d)", res.Recoveries)
	}
	if len(res.Evicted) != 1 || res.Evicted[0] != 1 {
		t.Errorf("evicted = %v, want [1]", res.Evicted)
	}
	assertBlockOwnership(t, res.Owner)
	for u, o := range res.Owner {
		if o == 1 {
			t.Fatalf("unit %d still owned by evicted slave 1: %v", u, res.Owner)
		}
	}
}

// TestFaultStallTolerated stalls a slave for less than the detection lease:
// the run must ride it out with no eviction and no recovery.
func TestFaultStallTolerated(t *testing.T) {
	fp := (&fault.Plan{}).StallAt(1, 800*time.Millisecond, 400*time.Millisecond)
	res := runAndVerify(t, planFor(t, "mm"), map[string]int{"n": 40},
		ftConfig(fp), cluster.Config{Slaves: 4})
	if res.Recoveries != 0 {
		t.Errorf("transient stall triggered %d recoveries", res.Recoveries)
	}
	if len(res.Evicted) != 0 {
		t.Errorf("transient stall evicted %v", res.Evicted)
	}
	if res.FaultLog.Count(fault.LogStall) != 1 {
		t.Errorf("fault log: %s", res.FaultLog)
	}
}

// TestFaultStallEvicted stalls a slave past the lease: the master must treat
// it as dead and recover; the woken zombie is killed by its queued eviction.
func TestFaultStallEvicted(t *testing.T) {
	fp := (&fault.Plan{}).StallAt(1, 800*time.Millisecond, 3*time.Second)
	res := runAndVerify(t, planFor(t, "mm"), map[string]int{"n": 40},
		ftConfig(fp), cluster.Config{Slaves: 4})
	if res.Recoveries < 1 {
		t.Errorf("long stall did not trigger a recovery")
	}
	if len(res.Evicted) != 1 || res.Evicted[0] != 1 {
		t.Errorf("evicted = %v, want [1]", res.Evicted)
	}
	if res.FaultLog.Count(fault.LogEvict) != 1 {
		t.Errorf("fault log: %s", res.FaultLog)
	}
}

// TestFaultJoin registers a new node mid-run: the master folds it in at the
// next checkpoint boundary and the balancer redistributes onto it.
func TestFaultJoin(t *testing.T) {
	fp := (&fault.Plan{}).JoinAt(600 * time.Millisecond)
	res := runAndVerify(t, planFor(t, "mm"), map[string]int{"n": 40},
		ftConfig(fp), cluster.Config{Slaves: 4})
	if len(res.Joined) != 1 || res.Joined[0] != 4 {
		t.Fatalf("joined = %v, want [4]", res.Joined)
	}
	if res.Recoveries < 1 {
		t.Errorf("admission must run through a recovery epoch")
	}
	if res.FaultLog.Count(fault.LogJoin) != 1 || res.FaultLog.Count(fault.LogAdopt) != 1 {
		t.Errorf("fault log: %s", res.FaultLog)
	}
	owns := 0
	for _, o := range res.Owner {
		if o == 4 {
			owns++
		}
	}
	if owns == 0 {
		t.Errorf("joiner owns no units at the end: %v", res.Owner)
	}
}

// TestFaultDeterminism runs the same fault plan twice: results and the
// fault-handling event trace must be bit-identical.
func TestFaultDeterminism(t *testing.T) {
	run := func() *Result {
		fp := (&fault.Plan{}).
			CrashAt(1, 1200*time.Millisecond).
			StallAt(2, 600*time.Millisecond, 300*time.Millisecond).
			JoinAt(500 * time.Millisecond)
		cfg := ftConfig(fp)
		cfg.Plan = planFor(t, "mm")
		cfg.Params = map[string]int{"n": 40}
		res, err := Run(cfg, cluster.Config{Slaves: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Recoveries != b.Recoveries || a.Checkpoints != b.Checkpoints {
		t.Errorf("recoveries/checkpoints diverge: %d/%d vs %d/%d",
			a.Recoveries, a.Checkpoints, b.Recoveries, b.Checkpoints)
	}
	if fmt.Sprint(a.Evicted) != fmt.Sprint(b.Evicted) || fmt.Sprint(a.Joined) != fmt.Sprint(b.Joined) {
		t.Errorf("membership diverges: %v/%v vs %v/%v", a.Evicted, a.Joined, b.Evicted, b.Joined)
	}
	if fmt.Sprint(a.Owner) != fmt.Sprint(b.Owner) {
		t.Errorf("final ownership diverges:\n %v\n %v", a.Owner, b.Owner)
	}
	if a.FaultLog.String() != b.FaultLog.String() {
		t.Errorf("fault traces diverge:\n--- run 1:\n%s\n--- run 2:\n%s", a.FaultLog, b.FaultLog)
	}
	if a.Elapsed != b.Elapsed {
		t.Errorf("elapsed diverges: %v vs %v", a.Elapsed, b.Elapsed)
	}
	for name, wa := range a.Final {
		if d := wa.MaxAbsDiff(b.Final[name]); d != 0 {
			t.Errorf("array %q diverges by %g between identical runs", name, d)
		}
	}
}

// TestRealFaultCrashMM exercises the wall-clock runtime under fault
// injection (and the race detector in -race CI runs): a slave crashes before
// sending anything, the lease expires, and the run recovers on the
// survivors.
func TestRealFaultCrashMM(t *testing.T) {
	plan := planFor(t, "mm")
	params := map[string]int{"n": 48}
	cfg := Config{
		Plan: plan, Params: params, DLB: true,
		Fault: (&fault.Plan{}).CrashAt(1, 0),
		Detect: fault.DetectorConfig{
			MissThreshold: 3, MinLease: 300 * time.Millisecond,
			MaxLease: 2 * time.Second, HeartbeatEvery: 50 * time.Millisecond,
		},
		Ckpt: fault.CkptPolicy{
			MinInterval: 100 * time.Millisecond, MaxInterval: 300 * time.Millisecond,
			MaxOverhead: 0.2,
		},
	}
	res, err := RunReal(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	verifyRealPlan(t, res, plan, params)
	if res.Recoveries < 1 {
		t.Errorf("crash did not trigger a recovery")
	}
	if len(res.Evicted) != 1 || res.Evicted[0] != 1 {
		t.Errorf("evicted = %v, want [1]", res.Evicted)
	}
}
