package dlb

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/loopir"
)

// master is the central load-balancing process (§3.1): it scatters the
// initial distribution, mirrors the slave loop structure phase by phase,
// runs the core balancing algorithm on the statuses it collects, sends
// instructions, and gathers the final data.
type master struct {
	cfg    *Config
	cc     cluster.Config
	slaves int
	exec   *compile.Exec
	inst   *loopir.Instance
	res    *Result
	grain  int

	final        map[string]*loopir.Array
	computeStart time.Duration
	computeEnd   time.Duration
}

func (m *master) runOn(ep Endpoint) {
	plan := m.exec.Plan

	// Authoritative ownership + balancer.
	own := core.NewBlockOwnership(m.exec.Units, m.slaves)
	lo, hi := m.exec.InitialActive()
	for u := 0; u < own.Units(); u++ {
		if u < lo || u >= hi {
			own.Deactivate(u)
		}
	}
	balCfg := core.DefaultConfig(m.slaves, plan.Restricted)
	balCfg.MinImprovement = m.cfg.MinImprovement
	balCfg.DisableFilter = m.cfg.DisableFilter
	balCfg.DisableProfitability = m.cfg.DisableProfitability
	balCfg.Quantum = m.cc.Quantum
	// Prior movement-cost model from the network parameters: a unit slice
	// of each distributed array plus fixed per-message overhead.
	unitBytes := 0
	for arr, dim := range plan.DistArrays {
		a := m.inst.Arrays[arr]
		unitBytes += 8 * unitSize(a, dim)
	}
	perUnit := time.Duration(float64(unitBytes) / m.cc.Bandwidth * float64(time.Second))
	fixed := m.cc.LinkLatency + m.cc.SendOverhead
	bal := core.NewBalancer(balCfg, own, core.NewMoveCostModel(fixed, perUnit))

	// Initial scatter: each slave receives its owned slices of the
	// distributed arrays and full copies of the replicated ones.
	for sl := 0; sl < m.slaves; sl++ {
		msg := InitMsg{Owned: map[string]map[int][]float64{}, Replicated: map[string][]float64{}}
		bytes := msgHeader
		for arr, dim := range plan.DistArrays {
			a := m.inst.Arrays[arr]
			units := map[int][]float64{}
			for _, u := range own.Owned(sl) {
				vals := unitSlice(a, dim, u)
				units[u] = vals
				bytes += 8*len(vals) + 16
			}
			msg.Owned[arr] = units
		}
		for _, arr := range plan.Replicated {
			a := m.inst.Arrays[arr]
			vals := append([]float64(nil), a.Data...)
			msg.Replicated[arr] = vals
			bytes += 8 * len(vals)
		}
		ep.Send(sl, "init", bytes, msg)
	}
	m.computeStart = ep.Now()

	// Phase loop: one iteration per slave contact round. Slaves announce
	// termination with a "done" message when their (possibly data-
	// dependent, §4.1) control flow finishes; since every slave follows the
	// identical schedule and break conditions evaluate identically, a round
	// is either all statuses or all dones.
	done := make([]bool, m.slaves)
	doneCount := 0
	for doneCount < m.slaves {
		raw := make([]StatusMsg, m.slaves)
		statusCount, newDone := 0, 0
		for i := 0; i < m.slaves; i++ {
			if done[i] {
				continue
			}
			msg := ep.Recv(i, "")
			st, ok := msg.Data.(StatusMsg)
			if !ok {
				panic(fmt.Sprintf("master: unexpected %q message from slave %d", msg.Tag, i))
			}
			switch msg.Tag {
			case "done":
				done[i] = true
				doneCount++
				newDone++
			case "status":
				raw[i] = st
				statusCount++
			default:
				panic(fmt.Sprintf("master: unexpected tag %q from slave %d", msg.Tag, i))
			}
		}
		if statusCount == 0 {
			break
		}
		if newDone > 0 {
			panic("master: slave schedules diverged (mixed status/done round)")
		}
		phase := raw[0].Phase
		hookIdx := raw[0].HookIndex
		for i, st := range raw {
			if st.Phase != phase || st.HookIndex != hookIdx {
				panic(fmt.Sprintf("master: slave %d at phase %d/hook %d, slave 0 at %d/%d",
					i, st.Phase, st.HookIndex, phase, hookIdx))
			}
		}
		m.res.Phases++

		ep.Charge(m.cfg.MasterDecisionCost)

		// Mirror the slave control flow: retire completed work (§4.7).
		meta := m.exec.Phases[hookIdx]
		for u := 0; u < own.Units(); u++ {
			if (u < meta.ActiveLo || u >= meta.ActiveHi) && own.IsActive(u) {
				own.Deactivate(u)
			}
		}

		var d core.Decision
		if m.cfg.DLB {
			counts := own.ActiveCounts()
			statuses := make([]core.Status, m.slaves)
			var sumRate float64
			var nRate int
			for i, st := range raw {
				rate := 0.0
				if st.Busy > 0 && st.Units > 0 {
					rate = st.Units / st.Busy.Seconds()
					sumRate += rate
					nRate++
				}
				statuses[i] = core.Status{Rate: rate, MoveCost: st.MoveCost, InteractionCost: st.InterCost}
			}
			// A slave with no work cannot measure its capability; assume
			// the mean of the others so it can win work back.
			if nRate > 0 {
				mean := sumRate / float64(nRate)
				for i := range statuses {
					if statuses[i].Rate == 0 && counts[i] == 0 {
						statuses[i].Rate = mean
					}
				}
			}
			unitsPerHook := float64(meta.UnitsBetween)
			if next := hookIdx + 1; next < len(m.exec.Phases) {
				unitsPerHook = float64(m.exec.Phases[next].UnitsBetween)
			}
			d = bal.Step(statuses, unitsPerHook)
			m.res.Moves += len(d.Moves)
			for _, mv := range d.Moves {
				m.res.UnitsMoved += len(mv.Units)
			}
			if m.cfg.CollectTrace {
				work := own.ActiveCounts()
				for i := range statuses {
					m.res.Trace = append(m.res.Trace, Sample{
						Time:      ep.Now(),
						Phase:     phase,
						Slave:     i,
						RawRate:   statuses[i].Rate,
						Filtered:  d.FilteredRates[i],
						Work:      work[i],
						SkipHooks: d.SkipHooks,
						Period:    d.Period,
					})
				}
			}
		}

		instr := InstrMsg{Phase: phase, HookIndex: hookIdx, Moves: d.Moves, SkipHooks: d.SkipHooks}
		bytes := 64
		for _, mv := range d.Moves {
			bytes += 16 + 8*len(mv.Units)
		}
		for sl := 0; sl < m.slaves; sl++ {
			ep.Send(sl, "instr", bytes, instr)
		}
	}
	m.computeEnd = ep.Now()

	// Gather: assemble final arrays.
	final := map[string]*loopir.Array{}
	for arr, a := range m.inst.Arrays {
		final[arr] = a.Clone()
	}
	for i := 0; i < m.slaves; i++ {
		msg := ep.Recv(cluster.AnySource, "gather").Data.(GatherMsg)
		for arr, units := range msg.Data {
			dim := plan.DistArrays[arr]
			for u, vals := range units {
				setUnitSlice(final[arr], dim, u, vals)
			}
		}
		for arr, vals := range msg.Reduced {
			copy(final[arr].Data, vals)
		}
	}
	m.final = final
}
