package netrun

import (
	"sync"

	"repro/internal/cluster"
	"repro/internal/dlb"
)

// The plan-hash init cache: a slave daemon keeps the decoded initial
// scatter payloads of its recent runs, keyed by everything that determines
// their content — the plan hash (which pins program, parameters, grain and
// distribution), the node id, and the initial membership size (which pins
// the block ownership the scatter was cut by). When a master handshakes a
// plan the daemon still holds, the daemon announces the fact in its
// HelloMsg and the master ships a tiny FromCache marker instead of the
// bulk data (see dlb.InitMsg.FromCache). The cache is groundwork for the
// ROADMAP's AOT plan cache: resubmitting the same compiled plan to a warm
// pool skips the dominant startup transfer entirely.
//
// Safety: array initialization is deterministic (loopir decl initializers,
// no randomness), so the payload is a pure function of the key; the slave
// loop only copies out of a received InitMsg, so a cached message can be
// re-played to any number of later sessions unchanged.

// initKey identifies one cached scatter payload.
type initKey struct {
	hash   string
	node   int
	slaves int
}

// initCache is a small mutex-guarded LRU (the cache holds whole array
// payloads, so a handful of entries is the point, not a limitation).
type initCache struct {
	mu    sync.Mutex
	max   int
	order []initKey // LRU order, oldest first
	items map[initKey]dlb.InitMsg
}

func newInitCache(max int) *initCache {
	if max <= 0 {
		return &initCache{} // disabled
	}
	return &initCache{max: max, items: map[initKey]dlb.InitMsg{}}
}

func (c *initCache) get(k initKey) (dlb.InitMsg, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.items == nil {
		return dlb.InitMsg{}, false
	}
	m, ok := c.items[k]
	if ok {
		c.bump(k)
	}
	return m, ok
}

func (c *initCache) put(k initKey, m dlb.InitMsg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.items == nil {
		return
	}
	if _, ok := c.items[k]; ok {
		c.items[k] = m
		c.bump(k)
		return
	}
	for len(c.items) >= c.max {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.items, old)
	}
	c.items[k] = m
	c.order = append(c.order, k)
}

// bump moves k to the most-recent end; callers hold c.mu.
func (c *initCache) bump(k initKey) {
	for i, o := range c.order {
		if o == k {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.order = append(c.order, k)
}

func (c *initCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// initCacheEP wraps a slave session's endpoint to intercept the "init"
// scatter: a full payload is stored into the daemon cache for later runs;
// a FromCache marker is replaced by the copy pinned at handshake time, so
// the slave loop never knows the bulk data did not cross the wire.
// Embedding the concrete endpoint keeps its optional capabilities
// (dlb.PollTuner) visible through the wrapper.
type initCacheEP struct {
	*endpoint
	cache  *initCache
	key    initKey
	cached dlb.InitMsg
	have   bool
}

func (e *initCacheEP) Recv(from int, tag string) cluster.Msg {
	m := e.endpoint.Recv(from, tag)
	if m.Tag == "init" {
		m = e.resolve(m)
	}
	return m
}

func (e *initCacheEP) TryRecv(from int, tag string) (cluster.Msg, bool) {
	m, ok := e.endpoint.TryRecv(from, tag)
	if ok && m.Tag == "init" {
		m = e.resolve(m)
	}
	return m, ok
}

func (e *initCacheEP) resolve(m cluster.Msg) cluster.Msg {
	im, ok := m.Data.(dlb.InitMsg)
	if !ok {
		return m
	}
	if im.FromCache {
		if !e.have {
			// The daemon only advertises InitCached after pinning the
			// payload, so a marker without one is a protocol bug, not a
			// recoverable miss.
			panic("netrun: master shipped a cached-init marker but no payload is pinned")
		}
		m.Data = e.cached
		return m
	}
	// An empty init (a resumed run's placeholder, or a slave that owns no
	// units) is not worth caching — and must never shadow a real payload.
	if len(im.Owned) > 0 || len(im.Replicated) > 0 {
		e.cache.put(e.key, im)
	}
	return m
}

// advisedEndpoint decorates the master endpoint with the per-slave init
// cache advisory collected during the handshakes (dlb.InitCacheAdvisor):
// the engine ships a FromCache marker to every slave whose daemon
// announced it still holds this plan's payload.
type advisedEndpoint struct {
	*endpoint
	cached []bool
}

func (a *advisedEndpoint) InitCached(slave int) bool {
	return slave >= 0 && slave < len(a.cached) && a.cached[slave]
}
