package netrun

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/depend"
	"repro/internal/dlb"
	"repro/internal/dlb/wire"
	"repro/internal/loopir"
)

// testPlan compiles a library program with the same directives the CLIs
// use.
func testPlan(t *testing.T, name string, n, iter int) (*compile.Plan, map[string]int) {
	t.Helper()
	prog := loopir.Library()[name]
	if prog == nil {
		t.Fatalf("unknown program %q", name)
	}
	specs := map[string]depend.DistSpec{
		"mm":  {Dims: map[string]int{"c": 1, "b": 1}, Loops: []string{"j"}},
		"sor": {Dims: map[string]int{"b": 0}, Loops: []string{"j"}},
	}
	plan, err := compile.Compile(prog, compile.Options{Dist: specs[name]})
	if err != nil {
		t.Fatal(err)
	}
	params := map[string]int{}
	for _, prm := range prog.Params {
		if strings.Contains(prm, "iter") {
			params[prm] = iter
		} else {
			params[prm] = n
		}
	}
	return plan, params
}

// startServers spins up n in-process slave daemons on loopback and
// returns their addresses. Each daemon is a full Server — the same code
// cmd/dlbd runs — only the process boundary is missing (the multi-process
// variant lives in proc_test.go).
func startServers(t *testing.T, n int, opt ServerOptions) ([]string, []*Server) {
	t.Helper()
	addrs := make([]string, n)
	srvs := make([]*Server, n)
	for i := 0; i < n; i++ {
		srv, err := NewServer(opt)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = srv.Addr()
		srvs[i] = srv
		go srv.Serve()
		t.Cleanup(func() { srv.Close() })
	}
	return addrs, srvs
}

func seqReference(t *testing.T, plan *compile.Plan, params map[string]int) map[string]*loopir.Array {
	t.Helper()
	inst, err := loopir.NewInstance(plan.Prog, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(); err != nil {
		t.Fatal(err)
	}
	return inst.Arrays
}

func checkBitIdentical(t *testing.T, res *dlb.Result, ref map[string]*loopir.Array) {
	t.Helper()
	if res.Final == nil {
		t.Fatal("no final arrays")
	}
	for name, want := range ref {
		got := res.Final[name]
		if got == nil {
			t.Fatalf("array %s missing from result", name)
		}
		if d := want.MaxAbsDiff(got); d != 0 {
			t.Errorf("array %s differs from sequential reference: max |diff| = %g", name, d)
		}
	}
}

func TestLoopbackMM(t *testing.T) {
	plan, params := testPlan(t, "mm", 48, 0)
	addrs, _ := startServers(t, 4, ServerOptions{})
	cfg := dlb.Config{
		Plan:        plan,
		Params:      params,
		DLB:         true,
		RealQuantum: 2 * time.Millisecond,
	}
	res, err := RunMaster(cfg, addrs, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkBitIdentical(t, res, seqReference(t, plan, params))
	if res.Phases < 1 {
		t.Errorf("expected at least one balancing phase, got %d", res.Phases)
	}
}

func TestLoopbackSOR(t *testing.T) {
	plan, params := testPlan(t, "sor", 64, 6)
	addrs, _ := startServers(t, 4, ServerOptions{})
	cfg := dlb.Config{
		Plan:        plan,
		Params:      params,
		DLB:         true,
		RealQuantum: 2 * time.Millisecond,
	}
	res, err := RunMaster(cfg, addrs, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkBitIdentical(t, res, seqReference(t, plan, params))
}

// TestLoopbackHierGroups runs a grouped (two-level) distributed run over
// loopback daemons: the hierarchy is decisions-only on this transport, so
// the result must stay bit-identical to the sequential reference and the
// master should log the roster-rank leader election.
func TestLoopbackHierGroups(t *testing.T) {
	plan, params := testPlan(t, "mm", 48, 0)
	addrs, _ := startServers(t, 4, ServerOptions{})
	var logs []string
	var mu sync.Mutex
	cfg := dlb.Config{
		Plan:        plan,
		Params:      params,
		DLB:         true,
		Groups:      2,
		RealQuantum: 2 * time.Millisecond,
	}
	res, err := RunMaster(cfg, addrs, MasterOptions{
		Logf: func(format string, args ...interface{}) {
			mu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkBitIdentical(t, res, seqReference(t, plan, params))
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, l := range logs {
		if strings.Contains(l, "leaders [0 2]") {
			found = true
		}
	}
	if !found {
		t.Errorf("no leader-election log line; got %q", logs)
	}
}

// TestGroupsAdmissionCap checks the daemon-side admission policy: a run
// shipping more groups than the daemon's MaxGroups is refused with the
// typed rejection.
func TestGroupsAdmissionCap(t *testing.T) {
	plan, params := testPlan(t, "mm", 48, 0)
	addrs, _ := startServers(t, 4, ServerOptions{MaxGroups: 2})
	cfg := dlb.Config{
		Plan:        plan,
		Params:      params,
		DLB:         true,
		Groups:      4,
		RealQuantum: 2 * time.Millisecond,
	}
	_, err := RunMaster(cfg, addrs, MasterOptions{})
	if err == nil {
		t.Fatal("run over the groups cap was admitted")
	}
	if !strings.Contains(err.Error(), wire.RejectGroups) {
		t.Errorf("rejection lacks %q: %v", wire.RejectGroups, err)
	}
}
