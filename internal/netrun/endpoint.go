package netrun

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
)

// connLost unwinds a slave's run when its master connection dies. The
// daemon catches it, tears the session down, and redials the master as a
// fresh joiner; anything else that escapes the run is a real bug.
type connLost struct{ err error }

func (c connLost) Error() string { return fmt.Sprintf("netrun: master connection lost: %v", c.err) }

// mailbox is the process-local message store the readers of all
// connections deliver into: the TCP analogue of a cluster node's mailbox.
// One consumer (the master or slave loop) receives; any reader goroutine
// puts.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []cluster.Msg
	fail    error         // master link lost (slave side); consumers panic connLost
	notify  chan struct{} // wakes a Sleep early when a message lands
}

func newMailbox() *mailbox {
	b := &mailbox{notify: make(chan struct{}, 1)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) put(m cluster.Msg) {
	b.mu.Lock()
	b.pending = append(b.pending, m)
	b.mu.Unlock()
	b.cond.Broadcast()
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

// setFail poisons the mailbox: every blocked or future receive panics
// connLost, unwinding the slave loop no matter how deep it is.
func (b *mailbox) setFail(err error) {
	b.mu.Lock()
	if b.fail == nil {
		b.fail = err
	}
	b.mu.Unlock()
	b.cond.Broadcast()
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

func matchMsg(m cluster.Msg, from int, tag string) bool {
	if from != cluster.AnySource && m.From != from {
		return false
	}
	return tag == "" || m.Tag == tag
}

// take removes the first match; callers hold b.mu.
func (b *mailbox) take(from int, tag string) (cluster.Msg, bool) {
	for i, m := range b.pending {
		if matchMsg(m, from, tag) {
			b.pending = append(b.pending[:i], b.pending[i+1:]...)
			return m, true
		}
	}
	return cluster.Msg{}, false
}

func (b *mailbox) tryRecv(from int, tag string) (cluster.Msg, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if m, ok := b.take(from, tag); ok {
		return m, true
	}
	if b.fail != nil {
		panic(connLost{b.fail})
	}
	return cluster.Msg{}, false
}

func (b *mailbox) recv(from int, tag string) cluster.Msg {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if m, ok := b.take(from, tag); ok {
			return m
		}
		if b.fail != nil {
			panic(connLost{b.fail})
		}
		b.cond.Wait()
	}
}

// sleep idles for d but wakes early when a message arrives (or the mailbox
// is poisoned), so the coarse network poll interval costs no latency: a
// receive loop's next TryRecv runs as soon as there is anything to try.
func (b *mailbox) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-b.notify:
	case <-t.C:
	}
}

// netPollInterval is the backoff of poll-based receive loops on the TCP
// endpoint. It can be 10x the default: mailbox.sleep wakes early on
// arrival, so a long interval only meters the no-traffic case instead of
// adding latency (satellite of the recvTimeout poll-interval rework).
const netPollInterval = 10 * time.Millisecond

// endpoint implements dlb.Endpoint over the router/mailbox pair. One
// endpoint per process; the same master/slave code that runs on the
// simulated cluster and the goroutine runtime runs here unmodified.
type endpoint struct {
	rt    *router
	box   *mailbox
	start time.Time
	drag  float64
	busy  time.Duration
}

func newEndpoint(rt *router, box *mailbox, drag float64) *endpoint {
	if drag < 1 {
		drag = 1
	}
	return &endpoint{rt: rt, box: box, start: time.Now(), drag: drag}
}

func (e *endpoint) Charge(time.Duration) {}

func (e *endpoint) Timed(fn func()) {
	t0 := time.Now()
	fn()
	d := time.Since(t0)
	if e.drag > 1 {
		extra := time.Duration((e.drag - 1) * float64(d))
		time.Sleep(extra)
		d += extra
	}
	e.busy += d
}

func (e *endpoint) Send(to int, tag string, bytes int, data interface{}) {
	e.rt.send(to, tag, data)
}

func (e *endpoint) Recv(from int, tag string) cluster.Msg {
	return e.box.recv(from, tag)
}

func (e *endpoint) TryRecv(from int, tag string) (cluster.Msg, bool) {
	return e.box.tryRecv(from, tag)
}

func (e *endpoint) Busy() time.Duration   { return e.busy }
func (e *endpoint) Now() time.Duration    { return time.Since(e.start) }
func (e *endpoint) Sleep(d time.Duration) { e.box.sleep(d) }

// PollInterval implements dlb.PollTuner.
func (e *endpoint) PollInterval() time.Duration { return netPollInterval }
