package netrun

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/dlb"
	"repro/internal/dlb/wire"
)

// ServerOptions configures a slave daemon.
type ServerOptions struct {
	// Listen is the daemon's listener address (default "127.0.0.1:0").
	// Masters dial it to start runs; peers dial it for direct work
	// movement and boundary exchange.
	Listen string
	// Advertise is the address peers should dial ("" : the bound address;
	// set it when the daemon listens on a wildcard interface).
	Advertise string
	// Join, when set, makes the daemon dial the given master listener at
	// startup and volunteer as an elastic joiner.
	Join string
	// Drag slows this daemon's computation by the given factor (>= 1),
	// emulating a slower or loaded machine so load redistribution is
	// observable on homogeneous test hardware.
	Drag float64
	// Cores overrides the master's shipped kernel worker count for this
	// daemon (0: use the shipped value; -1: all hardware cores). Per-node
	// overrides are the point — a heterogeneous cluster advertises its
	// actual width to the load balancer through its measured rate.
	Cores int
	// Kernel overrides the master's shipped execution tier for this daemon
	// ("" uses the shipped value; "interp", "kernel" or "aot" force a
	// tier). All tiers are bit-identical, so heterogeneous overrides are
	// safe — a daemon without a working toolchain can pin itself to
	// "kernel" while its peers run "aot".
	Kernel string
	// MaxGroups caps the hierarchical group count this daemon admits: a
	// run whose shipped Groups exceeds it is rejected at handshake
	// (RejectGroups). 0 means unlimited.
	MaxGroups int
	Timeouts  Timeouts
	// Codec selects the data-plane codec this daemon is willing to speak:
	// wire.CodecBinary (the default, "") accepts a master's binary offer;
	// wire.CodecGob pins this daemon to gob regardless of the offer —
	// peers then talk gob to it while speaking binary among themselves.
	Codec string
	// InitCacheEntries bounds the daemon's plan-hash init cache: decoded
	// initial-scatter payloads kept across runs, so resubmitting an
	// identical plan skips the bulk re-ship (0: default 4; negative:
	// disabled).
	InitCacheEntries int
	// Logf receives daemon events (nil: silent).
	Logf func(format string, args ...interface{})
}

// Server is the slave daemon: it serves one run at a time, accepting the
// master's handshake and its peers' connections, executing the slave loop
// over the TCP endpoint, and rejoining the master elastically after a lost
// connection.
type Server struct {
	opt   ServerOptions
	to    Timeouts
	ln    net.Listener
	inits *initCache

	mu     sync.Mutex
	sess   *session
	closed bool
	wg     sync.WaitGroup
}

// session is one run's transport state.
type session struct {
	node int
	rt   *router
	box  *mailbox
	// Init-cache pinning for this session: the key the run's scatter is
	// stored under, and — when the daemon announced InitCached — the
	// payload pinned at handshake time, immune to later evictions.
	initKey    initKey
	cachedInit dlb.InitMsg
	haveCached bool
}

// NewServer binds the daemon's listener.
func NewServer(opt ServerOptions) (*Server, error) {
	listen := opt.Listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("netrun: slave listener: %w", err)
	}
	entries := opt.InitCacheEntries
	if entries == 0 {
		entries = 4
	}
	return &Server{opt: opt, to: opt.Timeouts.withDefaults(), ln: ln, inits: newInitCache(entries)}, nil
}

// Addr is the bound listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) advertise() string {
	if s.opt.Advertise != "" {
		return s.opt.Advertise
	}
	return s.Addr()
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// Close stops the daemon immediately: the listener shuts down and any
// active run is torn down (its master sees the silence and evicts this
// node). The mailbox is poisoned before the router closes, so a slave loop
// blocked in a receive unwinds while the in-flight frames flush — Close
// returns once every session goroutine has exited and the port is free to
// rebind.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	sess := s.sess
	s.mu.Unlock()
	err := s.ln.Close()
	if sess != nil {
		sess.box.setFail(errors.New("server closed"))
		sess.rt.close()
	}
	s.wg.Wait()
	return err
}

// Shutdown stops the daemon gracefully: new runs are refused at once, but
// an active session keeps running — with its listener still accepting the
// peer connections mid-run work movement needs — until it completes or the
// grace period expires, whichever comes first. A survivor past the grace
// is torn down as Close does. This is the SIGTERM path: a mid-run kill
// drains instead of leaking the session (and, with it, the bound port).
func (s *Server) Shutdown(grace time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	deadline := time.Now().Add(grace)
	for {
		s.mu.Lock()
		active := s.sess != nil
		s.mu.Unlock()
		if !active || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	err := s.ln.Close()
	s.mu.Lock()
	sess := s.sess
	s.mu.Unlock()
	if sess != nil {
		sess.box.setFail(errors.New("server shutting down"))
		sess.rt.close()
	}
	s.wg.Wait()
	return err
}

// Serve accepts connections until Close. It blocks.
func (s *Server) Serve() error {
	if s.opt.Join != "" {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.joinMaster(s.opt.Join)
		}()
	}
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(nc)
		}()
	}
}

// handleConn dispatches an inbound connection on its first frame: a
// StartMsg opens a run (the master dialed us), a PeerHelloMsg attaches a
// slave↔slave data connection to the active session.
func (s *Server) handleConn(nc net.Conn) {
	wc := wire.NewConn(nc)
	nc.SetReadDeadline(time.Now().Add(s.to.Handshake))
	env, err := wc.Recv()
	if err != nil {
		nc.Close()
		return
	}
	nc.SetReadDeadline(time.Time{})
	switch env.Tag {
	case wire.TagStart:
		st, ok := env.Payload.(wire.StartMsg)
		if !ok {
			s.reject(wc, nc, wire.RejectMsg{Code: wire.RejectProtocol, Detail: "malformed start payload"})
			return
		}
		s.runSession(nc, wc, st, false)
	case wire.TagPeerHello:
		ph, ok := env.Payload.(wire.PeerHelloMsg)
		if !ok {
			nc.Close()
			return
		}
		s.mu.Lock()
		sess := s.sess
		s.mu.Unlock()
		if sess == nil {
			nc.Close() // no active run; a stale peer of a finished session
			return
		}
		// The dialer's one-way hello announces its codec; sends back to it
		// may go binary when this session negotiated binary too.
		wc.SetBinary(ph.Codec == wire.CodecBinary && sess.rt.binarySelf)
		sess.rt.attach(ph.From, nc, wc, false)
	default:
		s.reject(wc, nc, wire.RejectMsg{Code: wire.RejectProtocol, Detail: fmt.Sprintf("unexpected first frame %q", env.Tag)})
	}
}

func (s *Server) reject(wc *wire.Conn, nc net.Conn, rej wire.RejectMsg) {
	nc.SetWriteDeadline(time.Now().Add(s.to.Handshake))
	wc.Send(wire.Envelope{Tag: wire.TagReject, From: -1, Payload: rej})
	nc.Close()
	s.logf("rejected %s: %s (%s)", nc.RemoteAddr(), rej.Code, rej.Detail)
}

// runSession validates a StartMsg, answers the handshake, executes the
// slave loop, and — when the master connection was lost mid-run — redials
// the master to rejoin as a fresh node.
func (s *Server) runSession(nc net.Conn, wc *wire.Conn, st wire.StartMsg, joiner bool) {
	if st.Version != ProtocolVersion {
		s.reject(wc, nc, wire.RejectMsg{
			Code:   wire.RejectVersion,
			Detail: fmt.Sprintf("daemon speaks version %d, master %d", ProtocolVersion, st.Version),
		})
		return
	}
	if s.opt.MaxGroups > 0 && st.Spec.Groups > s.opt.MaxGroups {
		s.reject(wc, nc, wire.RejectMsg{
			Code:   wire.RejectGroups,
			Detail: fmt.Sprintf("run requests %d groups, daemon admits at most %d", st.Spec.Groups, s.opt.MaxGroups),
		})
		return
	}
	cfg, err := configFromSpec(st.Spec)
	if err != nil {
		s.reject(wc, nc, wire.RejectMsg{Code: wire.RejectProtocol, Detail: err.Error()})
		return
	}
	if s.opt.Cores != 0 {
		cfg.Cores = s.opt.Cores
	}
	if s.opt.Kernel != "" {
		cfg.Kernel = s.opt.Kernel
	}
	pre, err := dlb.Prepare(cfg, st.Slaves)
	if err != nil {
		s.reject(wc, nc, wire.RejectMsg{Code: wire.RejectProtocol, Detail: err.Error()})
		return
	}
	hash := PlanHash(cfg.Plan, pre.Exec, cfg.Params, pre.Grain)
	if hash != st.PlanHash {
		s.reject(wc, nc, wire.RejectMsg{
			Code:   wire.RejectPlanHash,
			Detail: fmt.Sprintf("daemon compiled %s, master %s", hash, st.PlanHash),
		})
		return
	}
	// Pin this plan's cached init payload (if any) before announcing it:
	// the announcement commits the daemon to replaying it, so it must be
	// immune to cache evictions between handshake and scatter.
	key := initKey{hash: hash, node: st.Node, slaves: st.Slaves}
	cachedInit, haveCached := s.inits.get(key)
	if joiner {
		haveCached = false // joiners are adopted, never scattered to
	}

	// Accept the master's binary-codec offer unless this daemon is pinned
	// to gob. The acceptance goes back in the HelloMsg; binary frames flow
	// only after both sides agree (old masters never offer, old slaves
	// never accept — either way the zero value means gob).
	wantBinary := st.Codec == wire.CodecBinary && s.opt.Codec != wire.CodecGob
	box := newMailbox()
	rt := newRouter(st.Node, box, s.to, true)
	rt.binarySelf = wantBinary
	rt.mergeRoster(st.Roster, st.Codecs)
	sess := &session{node: st.Node, rt: rt, box: box, initKey: key, cachedInit: cachedInit, haveCached: haveCached}
	s.mu.Lock()
	if s.sess != nil || s.closed {
		busy := s.sess != nil && !s.closed
		s.mu.Unlock()
		if busy {
			// Retryable: the master backs off and redials — a scheduler
			// re-leasing this daemon right after preempting its previous
			// run races the old session's teardown.
			s.reject(wc, nc, wire.RejectMsg{Code: wire.RejectBusy, Detail: "daemon is busy with another run"})
		} else {
			s.reject(wc, nc, wire.RejectMsg{Code: wire.RejectProtocol, Detail: "daemon is shutting down"})
		}
		return
	}
	s.sess = sess
	s.mu.Unlock()

	nc.SetWriteDeadline(time.Now().Add(s.to.Handshake))
	hello := wire.HelloMsg{
		Version:    ProtocolVersion,
		Node:       st.Node,
		PlanHash:   hash,
		PeerAddr:   s.advertise(),
		Join:       joiner,
		InitCached: haveCached,
	}
	if wantBinary {
		hello.Codec = wire.CodecBinary
	}
	if err := wc.Send(wire.Envelope{Tag: wire.TagHello, From: st.Node, Payload: hello}); err != nil {
		s.clearSession(sess)
		nc.Close()
		return
	}
	nc.SetWriteDeadline(time.Time{})
	wc.SetBinary(wantBinary)
	rt.attach(cluster.MasterID, nc, wc, false)

	s.logf("node %d: run started (%d slaves, %d slots, grain %d, joiner=%v, codec=%s)",
		st.Node, st.Slaves, st.Total, pre.Grain, joiner, codecName(hello.Codec))
	err = s.runSlave(sess, cfg, st, joiner, pre)
	rt.close()
	s.clearSession(sess)

	var cl connLost
	switch {
	case err == nil:
		s.logf("node %d: run completed", st.Node)
	case errors.Is(err, dlb.ErrEvicted):
		s.logf("node %d: evicted by master", st.Node)
	case errors.Is(err, dlb.ErrInjectedCrash):
		s.logf("node %d: halted by injected crash", st.Node)
	case errors.As(err, &cl):
		s.logf("node %d: %v", st.Node, err)
		if st.MasterAddr != "" && !s.isClosed() {
			s.logf("node %d: rejoining master at %s", st.Node, st.MasterAddr)
			s.joinMaster(st.MasterAddr)
		}
	default:
		s.logf("node %d: run failed: %v", st.Node, err)
	}
}

// runSlave drives the slave loop, mapping the transport's panics to
// errors. A genuine bug is broadcast to all peers (fail fast, like the
// goroutine runtime's abort) but does not kill the daemon.
func (s *Server) runSlave(sess *session, cfg dlb.Config, st wire.StartMsg, joiner bool, pre *dlb.Prepared) (err error) {
	defer func() {
		if p := recover(); p != nil {
			if cl, ok := p.(connLost); ok {
				err = cl
				return
			}
			sess.rt.abort()
			err = fmt.Errorf("netrun: slave %d panicked: %v", sess.node, p)
		}
	}()
	ep := &initCacheEP{
		endpoint: newEndpoint(sess.rt, sess.box, s.opt.Drag),
		cache:    s.inits,
		key:      sess.initKey,
		cached:   sess.cachedInit,
		have:     sess.haveCached,
	}
	return dlb.RunSlaveOn(ep, cfg, st.Node, st.Slaves, joiner, pre)
}

func (s *Server) clearSession(sess *session) {
	s.mu.Lock()
	if s.sess == sess {
		s.sess = nil
	}
	s.mu.Unlock()
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// joinMaster dials the master's listener and volunteers as an elastic
// joiner: both a fresh node joining mid-run and a slave whose connection
// died re-enter through this path (the master refuses id reuse — the old
// slot's state is gone, so the daemon comes back under a new identity).
func (s *Server) joinMaster(addr string) {
	nc, err := dialBackoff(addr, s.to.Dial)
	if err != nil {
		s.logf("join %s: %v", addr, err)
		return
	}
	wc := wire.NewConn(nc)
	nc.SetDeadline(time.Now().Add(s.to.Handshake))
	hello := wire.HelloMsg{Version: ProtocolVersion, PeerAddr: s.advertise(), Join: true}
	if err := wc.Send(wire.Envelope{Tag: wire.TagHello, From: -1, Payload: hello}); err != nil {
		nc.Close()
		s.logf("join %s: %v", addr, err)
		return
	}
	env, err := wc.Recv()
	if err != nil {
		nc.Close()
		s.logf("join %s: %v", addr, err)
		return
	}
	nc.SetDeadline(time.Time{})
	switch env.Tag {
	case wire.TagStart:
		st, ok := env.Payload.(wire.StartMsg)
		if !ok {
			nc.Close()
			return
		}
		s.runSession(nc, wc, st, true)
	case wire.TagReject:
		if rej, ok := env.Payload.(wire.RejectMsg); ok {
			s.logf("join %s refused: %v", addr, rejectErr(rej))
		}
		nc.Close()
	default:
		nc.Close()
	}
}
