package netrun

import (
	"bufio"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/dlb"
	"repro/internal/fault"
)

// buildDlbd compiles the slave daemon binary once per test run.
func buildDlbd(t *testing.T) string {
	t.Helper()
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}
	bin := filepath.Join(t.TempDir(), "dlbd")
	cmd := exec.Command(goTool, "build", "-o", bin, "repro/cmd/dlbd")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building dlbd: %v\n%s", err, out)
	}
	return bin
}

// daemon is one spawned dlbd child process.
type daemon struct {
	cmd  *exec.Cmd
	addr string
}

// spawnDaemon starts a dlbd child on 127.0.0.1 and parses its bound
// address from the "dlbd listening <addr>" stdout line.
func spawnDaemon(t *testing.T, bin string, drag float64) *daemon {
	t.Helper()
	args := []string{"-quiet"}
	if drag > 1 {
		args = append(args, "-drag", strconv.FormatFloat(drag, 'f', -1, 64))
	}
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(out)
	if !sc.Scan() {
		t.Fatalf("dlbd produced no startup line (err %v)", sc.Err())
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 3 || fields[0] != "dlbd" || fields[1] != "listening" {
		t.Fatalf("unexpected dlbd startup line %q", sc.Text())
	}
	d.addr = fields[2]
	go func() { // drain any later output so the child never blocks on a full pipe
		for sc.Scan() {
		}
	}()
	return d
}

// TestMultiProcessMM is the acceptance harness: a master plus four dlbd
// slave OS processes over loopback TCP run the calibrated MM plan; one
// slave process is SIGKILLed mid-run. The run must survive through the
// PR-1 evict/rollback path, perform master-directed work redistribution,
// and finish bit-identical to the sequential reference.
func TestMultiProcessMM(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process harness is not -short")
	}
	bin := buildDlbd(t)
	daemons := make([]*daemon, 4)
	addrs := make([]string, 4)
	for i := range daemons {
		daemons[i] = spawnDaemon(t, bin, 20)
		addrs[i] = daemons[i].addr
	}

	plan, params := testPlan(t, "mm", 256, 0)
	cfg := dlb.Config{
		Plan:        plan,
		Params:      params,
		DLB:         true,
		RealQuantum: 2 * time.Millisecond,
		Fault:       &fault.Plan{},
		Detect:      ftDetect(),
		Ckpt:        fault.CkptPolicy{MinInterval: 150 * time.Millisecond},
	}
	done := runFT(cfg, addrs, MasterOptions{})

	time.Sleep(800 * time.Millisecond)
	if err := daemons[2].cmd.Process.Kill(); err != nil {
		t.Fatalf("killing slave process 2: %v", err)
	}

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if !evictedHas(out.res, 2) {
		t.Errorf("evicted = %v, want killed process's node 2 among them", out.res.Evicted)
	}
	if out.res.Recoveries < 1 {
		t.Errorf("process kill did not trigger a recovery")
	}
	if out.res.Phases < 1 {
		t.Errorf("no balancing phases")
	}
	if out.res.Moves < 1 {
		t.Errorf("no master-directed work redistribution (moves = %d)", out.res.Moves)
	}
	checkBitIdentical(t, out.res, seqReference(t, plan, params))
}

// TestDaemonSIGTERMDrains is the shutdown regression: SIGTERM to a dlbd
// mid-run must drain the in-flight session (the master finishes cleanly,
// nobody is evicted), exit with status 0, and release the bound port. The
// old behavior tore the session down immediately, which failed the run and
// could leak the port to the kernel's lingering-socket grace.
func TestDaemonSIGTERMDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process harness is not -short")
	}
	bin := buildDlbd(t)
	daemons := make([]*daemon, 4)
	addrs := make([]string, 4)
	for i := range daemons {
		daemons[i] = spawnDaemon(t, bin, 10)
		addrs[i] = daemons[i].addr
	}

	plan, params := testPlan(t, "mm", 256, 0)
	cfg := dlb.Config{Plan: plan, Params: params, DLB: true, RealQuantum: 2 * time.Millisecond}
	done := runFT(cfg, addrs, MasterOptions{})

	time.Sleep(500 * time.Millisecond)
	if err := daemons[1].cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signaling daemon 1: %v", err)
	}

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if len(out.res.Evicted) != 0 {
		t.Errorf("evicted = %v; a draining daemon must finish its run, not drop it", out.res.Evicted)
	}
	checkBitIdentical(t, out.res, seqReference(t, plan, params))

	// The daemon had no more work after the drain: it must exit 0 promptly
	// and leave its port rebindable.
	waited := make(chan error, 1)
	go func() { waited <- daemons[1].cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM drain: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM drain")
	}
	ln, err := net.Listen("tcp", daemons[1].addr)
	if err != nil {
		t.Fatalf("port not rebindable after SIGTERM: %v", err)
	}
	ln.Close()
}

// TestMultiProcessSOR runs the calibrated SOR plan over four dlbd child
// processes without interference: the plain multi-process deployment path.
func TestMultiProcessSOR(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process harness is not -short")
	}
	bin := buildDlbd(t)
	addrs := make([]string, 4)
	for i := range addrs {
		addrs[i] = spawnDaemon(t, bin, 1).addr
	}
	plan, params := testPlan(t, "sor", 128, 8)
	cfg := dlb.Config{Plan: plan, Params: params, DLB: true, RealQuantum: 2 * time.Millisecond}
	res, err := RunMaster(cfg, addrs, MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkBitIdentical(t, res, seqReference(t, plan, params))
}
