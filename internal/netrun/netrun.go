// Package netrun is the distributed TCP runtime: it carries the existing
// master/slave protocol over length-prefixed gob frames (internal/dlb/wire)
// on real sockets, so the master and each slave run as separate OS
// processes — the deployment shape of the paper's Nectar workstation
// network. The protocol code itself is untouched: netrun only supplies a
// dlb.Endpoint whose Send/Recv move envelopes over TCP connections instead
// of channels (RunReal) or the virtual-time cluster (Run).
//
// Topology. Each slave daemon (cmd/dlbd) owns one listener. The master
// dials the initial slaves and handshakes (protocol version, node id, plan
// hash); it also listens, so late nodes can join mid-run and a slave that
// lost its master connection can re-enter through the same elastic-join
// path. Slave↔slave connections are dialed lazily from a roster of
// listener addresses the master distributes — work movement, boundary
// exchange and pipeline data travel directly between slaves, never through
// the master.
//
// Failure model. A lost connection is not an error channel of its own: the
// transport just stops delivering, the slave's heartbeats stop arriving,
// and the PR-1 lease detector evicts the node and rolls the computation
// back to the last consistent checkpoint — exactly what an injected crash
// does in-process. On the slave side a lost master connection aborts the
// run locally and the daemon redials the master with exponential backoff,
// rejoining as a fresh node (its old slot's state is gone; the master
// refuses id reuse by design).
package netrun

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/compile"
	"repro/internal/depend"
	"repro/internal/dlb"
	"repro/internal/dlb/wire"
	"repro/internal/fault"
	"repro/internal/lang"
)

// ProtocolVersion gates the handshake: master and slave daemons must agree
// exactly (the gob-framed protocol has no compatibility negotiation).
const ProtocolVersion = 1

// Handshake failure modes. Errors returned by dials and accepts wrap one
// of these sentinels; use errors.Is to classify.
var (
	ErrVersionMismatch  = errors.New("netrun: protocol version mismatch")
	ErrPlanHashMismatch = errors.New("netrun: plan hash mismatch")
	ErrDuplicateID      = errors.New("netrun: node id already connected")
	ErrNoFreeSlots      = errors.New("netrun: no free joiner slots")
	ErrBusy             = errors.New("netrun: daemon is busy with another run")
	ErrGroupsCap        = errors.New("netrun: " + wire.RejectGroups)
	ErrProtocol         = errors.New("netrun: protocol error")
)

// rejectErr maps a RejectMsg to its sentinel.
func rejectErr(r wire.RejectMsg) error {
	var base error
	switch r.Code {
	case wire.RejectVersion:
		base = ErrVersionMismatch
	case wire.RejectPlanHash:
		base = ErrPlanHashMismatch
	case wire.RejectDuplicate:
		base = ErrDuplicateID
	case wire.RejectFull:
		base = ErrNoFreeSlots
	case wire.RejectBusy:
		base = ErrBusy
	case wire.RejectGroups:
		base = ErrGroupsCap
	default:
		base = ErrProtocol
	}
	if r.Detail == "" {
		return base
	}
	return fmt.Errorf("%w: %s", base, r.Detail)
}

// Timeouts bounds the transport's blocking operations. Zero fields take
// defaults; the zero value is ready to use.
type Timeouts struct {
	// Dial is the total budget for dialing one address, spent across
	// exponential-backoff retries (default 15s).
	Dial time.Duration
	// Handshake bounds each handshake frame, read and write (default 10s).
	Handshake time.Duration
	// Write bounds each steady-state frame write; a peer that stalls past
	// it loses the connection (default 30s).
	Write time.Duration
	// Read bounds the master's per-connection read idle time. Slave
	// heartbeats arrive every few hundred milliseconds, so an idle
	// connection this long is dead even if TCP has not noticed
	// (default 60s). Slave-side reads have no deadline: master
	// instructions legitimately pause for whole phases, and a dead master
	// is caught by the heartbeat writes failing.
	Read time.Duration
}

func (t Timeouts) withDefaults() Timeouts {
	if t.Dial <= 0 {
		t.Dial = 15 * time.Second
	}
	if t.Handshake <= 0 {
		t.Handshake = 10 * time.Second
	}
	if t.Write <= 0 {
		t.Write = 30 * time.Second
	}
	if t.Read <= 0 {
		t.Read = 60 * time.Second
	}
	return t
}

// PlanHash fingerprints a compiled, instantiated plan. Master and slave
// compile independently — the master from its Config, the slave from the
// shipped RunSpec — and compare hashes during the handshake, so two
// version-skewed binaries whose compilers generate different programs (or
// different phase schedules) refuse to run together instead of diverging
// mid-computation.
func PlanHash(plan *compile.Plan, exec *compile.Exec, params map[string]int, grain int) string {
	h := sha256.New()
	io.WriteString(h, "dlb-plan-v1\n")
	io.WriteString(h, lang.Format(plan.Prog))
	io.WriteString(h, plan.Source) // the generated pseudo-source: compiled structure
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%d\n", k, params[k])
	}
	arrs := make([]string, 0, len(plan.DistArrays))
	for a := range plan.DistArrays {
		arrs = append(arrs, a)
	}
	sort.Strings(arrs)
	for _, a := range arrs {
		fmt.Fprintf(h, "dist %s:%d\n", a, plan.DistArrays[a])
	}
	fmt.Fprintf(h, "grain=%d units=%d phases=%d level=%d\n",
		grain, exec.Units, len(exec.Phases), exec.ActiveLevel)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// specFromConfig builds the wire RunSpec a slave daemon needs to
// reconstruct the run. grain is the master's measured strip-mining grain;
// slaves instantiate with exactly it (ForcedGrain) so every process shares
// one phase schedule.
func specFromConfig(cfg dlb.Config, grain int, hbEvery time.Duration) wire.RunSpec {
	params := map[string]int{}
	for k, v := range cfg.Params {
		params[k] = v
	}
	dims := map[string]int{}
	for k, v := range cfg.Plan.Dist.Dims {
		dims[k] = v
	}
	return wire.RunSpec{
		Source:             lang.Format(cfg.Plan.Prog),
		Params:             params,
		DistDims:           dims,
		DistLoops:          append([]string(nil), cfg.Plan.Dist.Loops...),
		HookFraction:       cfg.CompileOpts.HookFraction,
		HookCostFlops:      cfg.CompileOpts.HookCostFlops,
		Grain:              grain,
		DLB:                cfg.DLB,
		Synchronous:        cfg.Synchronous,
		Cores:              cfg.Cores,
		Kernel:             cfg.Kernel,
		CostModel:          cfg.CostModel,
		Overlap:            cfg.Overlap,
		Groups:             cfg.Groups,
		GroupExchangeEvery: cfg.GroupExchangeEvery,
		GroupDiffusion:     cfg.GroupDiffusion,
		HeartbeatEvery:     hbEvery,
		FaultSpec:          fault.FormatSpec(cfg.Fault),
	}
}

// configFromSpec rebuilds a slave-side Config: parse the shipped source,
// recompile under the shipped directive, and pin the master's grain.
func configFromSpec(spec wire.RunSpec) (dlb.Config, error) {
	prog, err := lang.Parse(spec.Source)
	if err != nil {
		return dlb.Config{}, fmt.Errorf("netrun: parsing shipped program: %w", err)
	}
	opts := compile.Options{
		Dist:          depend.DistSpec{Dims: spec.DistDims, Loops: spec.DistLoops},
		HookFraction:  spec.HookFraction,
		HookCostFlops: spec.HookCostFlops,
	}
	plan, err := compile.Compile(prog, opts)
	if err != nil {
		return dlb.Config{}, fmt.Errorf("netrun: recompiling shipped program: %w", err)
	}
	cfg := dlb.Config{
		Plan:               plan,
		Params:             spec.Params,
		DLB:                spec.DLB,
		Synchronous:        spec.Synchronous,
		Cores:              spec.Cores,
		Kernel:             spec.Kernel,
		CostModel:          spec.CostModel,
		Overlap:            spec.Overlap,
		Groups:             spec.Groups,
		GroupExchangeEvery: spec.GroupExchangeEvery,
		GroupDiffusion:     spec.GroupDiffusion,
		ForcedGrain:        spec.Grain,
		CompileOpts:        opts,
		Detect:             fault.DetectorConfig{HeartbeatEvery: spec.HeartbeatEvery},
	}
	if spec.FaultSpec != "" {
		fp, err := fault.ParseSpec(spec.FaultSpec)
		if err != nil {
			return dlb.Config{}, fmt.Errorf("netrun: shipped fault spec: %w", err)
		}
		cfg.Fault = fp
	}
	return cfg, nil
}
