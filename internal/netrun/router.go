package netrun

import (
	"net"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/dlb"
	"repro/internal/dlb/wire"
)

// tagClose is a writer-local sentinel: it is never written to the wire,
// it tells the writer goroutine "everything before you is flushed — close
// the connection and stop".
const tagClose = "__netrun_close"

// router owns a process's connections: one link per peer node id, each
// with a writer goroutine (serializing sends, enforcing write deadlines)
// and a reader goroutine (delivering inbound envelopes to the mailbox).
// The master's router never dials — a slave it cannot reach is simply not
// heard from, and the lease detector evicts it. Slave routers dial peers
// lazily from the roster, so slave↔slave work movement flows direct.
type router struct {
	id        int // our node id (cluster.MasterID on the master)
	box       *mailbox
	to        Timeouts
	dialPeers bool
	// binarySelf marks that this process negotiated the binary data-plane
	// codec with the master; it may then send binary frames to any peer
	// whose roster codec entry confirms the peer did too. Set before any
	// link is attached, read by dial paths.
	binarySelf bool

	mu     sync.Mutex
	links  map[int]*link
	roster map[int]string
	codecs map[int]string // peer id -> negotiated data-plane codec
	down   map[int]bool
	closed bool
	wg     sync.WaitGroup
}

type link struct {
	peer  int
	nc    net.Conn
	wc    *wire.Conn
	sendQ chan wire.Envelope
	dead  chan struct{}
	once  sync.Once
}

func newRouter(id int, box *mailbox, to Timeouts, dialPeers bool) *router {
	return &router{
		id:        id,
		box:       box,
		to:        to.withDefaults(),
		dialPeers: dialPeers,
		links:     map[int]*link{},
		roster:    map[int]string{},
		codecs:    map[int]string{},
		down:      map[int]bool{},
	}
}

func (r *router) hasLink(peer int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.links[peer] != nil
}

func (r *router) mergeRoster(addrs, codecs map[int]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, addr := range addrs {
		if addr != "" {
			r.roster[id] = addr
		}
	}
	for id, codec := range codecs {
		if codec != "" {
			r.codecs[id] = codec
		}
	}
}

// rosterSnapshot copies the current peer address table.
func (r *router) rosterSnapshot() map[int]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[int]string, len(r.roster))
	for id, addr := range r.roster {
		out[id] = addr
	}
	return out
}

// codecSnapshot copies the current peer codec table.
func (r *router) codecSnapshot() map[int]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[int]string, len(r.codecs))
	for id, c := range r.codecs {
		out[id] = c
	}
	return out
}

// peerBinary reports whether binary frames may be sent to the peer: both
// this process and the peer must have negotiated the binary codec.
func (r *router) peerBinary(peer int) bool {
	if !r.binarySelf {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.codecs[peer] == wire.CodecBinary
}

// linkedPeers lists the ids with a live connection.
func (r *router) linkedPeers() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.links))
	for id := range r.links {
		out = append(out, id)
	}
	return out
}

// send routes one protocol message. A peer with no connection is dialed
// lazily (slave routers only); a peer whose connection died gets nothing —
// on the master that silence is exactly what the lease detector turns into
// an eviction, and on a slave the dead peer's work is re-homed by the
// recovery that its eviction triggers.
func (r *router) send(to int, tag string, data interface{}) {
	env := wire.Envelope{Tag: tag, From: r.id, Payload: data}
	r.mu.Lock()
	l := r.links[to]
	addr := r.roster[to]
	isDown := r.down[to]
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return
	}
	if l == nil {
		if !r.dialPeers || to == cluster.MasterID || isDown || addr == "" {
			return
		}
		if l = r.dialPeer(to, addr); l == nil {
			return
		}
	}
	select {
	case l.sendQ <- env:
	case <-l.dead:
	}
}

// dialPeer opens the lazy slave↔slave connection: dial with backoff,
// identify ourselves (and our codec) with a PeerHelloMsg, register the
// link. Binary sends are enabled when the roster says the peer negotiated
// binary too; the PeerHelloMsg's codec lets the acceptor make the same
// decision for its own sends back.
func (r *router) dialPeer(to int, addr string) *link {
	nc, err := dialBackoff(addr, r.to.Dial)
	if err != nil {
		r.mu.Lock()
		r.down[to] = true // stop retrying a gone peer on every send
		r.mu.Unlock()
		return nil
	}
	nc.SetWriteDeadline(time.Now().Add(r.to.Handshake))
	wc := wire.NewConn(nc)
	hello := wire.PeerHelloMsg{From: r.id}
	if r.binarySelf {
		hello.Codec = wire.CodecBinary
	}
	if err := wc.Send(wire.Envelope{Tag: wire.TagPeerHello, From: r.id, Payload: hello}); err != nil {
		nc.Close()
		return nil
	}
	nc.SetWriteDeadline(time.Time{})
	wc.SetBinary(r.peerBinary(to))
	return r.attach(to, nc, wc, false)
}

// attach registers a live connection for peer and starts its reader and
// writer. It takes the wire.Conn the handshake already used — gob streams
// are stateful (type definitions are transmitted once), so the same
// encoder/decoder pair must carry the whole connection. The newest
// connection becomes the send target (a redial replaces a broken one); an
// older connection for the same peer keeps its reader until it dies, so no
// in-flight frame is lost. readLimited arms the per-frame read deadline —
// the master sets it on slave connections, where heartbeats guarantee
// traffic and prolonged silence means a dead link TCP has not noticed.
func (r *router) attach(peer int, nc net.Conn, wc *wire.Conn, readLimited bool) *link {
	l := &link{
		peer:  peer,
		nc:    nc,
		wc:    wc,
		sendQ: make(chan wire.Envelope, 4096),
		dead:  make(chan struct{}),
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		nc.Close()
		return nil
	}
	r.links[peer] = l
	delete(r.down, peer)
	r.wg.Add(2)
	r.mu.Unlock()
	go r.writer(l)
	go r.reader(l, readLimited)
	return l
}

func (r *router) linkDown(l *link, err error) {
	l.once.Do(func() {
		close(l.dead)
		l.nc.Close()
	})
	r.mu.Lock()
	if r.links[l.peer] == l {
		delete(r.links, l.peer)
		r.down[l.peer] = true
	}
	closed := r.closed
	r.mu.Unlock()
	if l.peer == cluster.MasterID && r.id != cluster.MasterID && !closed {
		r.box.setFail(err)
	}
}

func (r *router) writer(l *link) {
	defer r.wg.Done()
	for {
		select {
		case env := <-l.sendQ:
			if env.Tag == tagClose {
				r.linkDown(l, nil)
				return
			}
			l.nc.SetWriteDeadline(time.Now().Add(r.to.Write))
			if err := l.wc.Send(env); err != nil {
				r.linkDown(l, err)
				return
			}
		case <-l.dead:
			return
		}
	}
}

func (r *router) reader(l *link, readLimited bool) {
	defer r.wg.Done()
	// The reader owns the connection's inbound frame buffer; when it exits
	// the buffer goes back to the pool (the explicit release point of the
	// data plane's receive storage).
	defer l.wc.Release()
	for {
		if readLimited {
			l.nc.SetReadDeadline(time.Now().Add(r.to.Read))
		}
		env, err := l.wc.Recv()
		if err != nil {
			r.linkDown(l, err)
			return
		}
		switch env.Tag {
		case wire.TagRoster:
			if ro, ok := env.Payload.(wire.RosterMsg); ok {
				r.mergeRoster(ro.Addrs, ro.Codecs)
			}
		default:
			r.box.put(cluster.Msg{From: env.From, Tag: env.Tag, Data: env.Payload})
		}
	}
}

// abort broadcasts the protocol's fail-fast marker on every live link: a
// genuine bug in this process must surface as an error on its peers, not a
// silent eviction that quietly recomputes past it.
func (r *router) abort() {
	r.mu.Lock()
	links := make([]*link, 0, len(r.links))
	for _, l := range r.links {
		links = append(links, l)
	}
	r.mu.Unlock()
	for _, l := range links {
		select {
		case l.sendQ <- wire.Envelope{Tag: dlb.AbortTag, From: r.id}:
		case <-l.dead:
		}
	}
}

// close flushes every link's queued sends (the final gather, evictions)
// and closes the connections.
func (r *router) close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	links := make([]*link, 0, len(r.links))
	for _, l := range r.links {
		links = append(links, l)
	}
	r.mu.Unlock()
	for _, l := range links {
		select {
		case l.sendQ <- wire.Envelope{Tag: tagClose}:
		case <-l.dead:
		}
	}
	r.wg.Wait()
}

// dialBackoff dials addr with exponentially backed-off retries until the
// budget is spent. Retrying covers the races real deployments hit —
// daemons starting in any order, a listener briefly behind its
// address being printed — and the reconnect path.
func dialBackoff(addr string, budget time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(budget)
	backoff := 50 * time.Millisecond
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			remain = time.Millisecond
		}
		nc, err := net.DialTimeout("tcp", addr, remain)
		if err == nil {
			return nc, nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, err
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}
