package netrun

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dlb"
	"repro/internal/dlb/wire"
)

// TestMixedCodecRun pins one daemon to gob while the rest accept the
// master's binary offer: the run must negotiate per connection (the gob
// peer is never sent a binary frame) and still complete bit-identical to
// the sequential reference.
func TestMixedCodecRun(t *testing.T) {
	plan, params := testPlan(t, "mm", 48, 0)
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...interface{}) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	addrs := make([]string, 4)
	for i := 0; i < 4; i++ {
		opt := ServerOptions{}
		if i == 0 {
			opt.Codec = wire.CodecGob // the one legacy-style peer
		}
		srv, err := NewServer(opt)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = srv.Addr()
		go srv.Serve()
		t.Cleanup(func() { srv.Close() })
	}

	cfg := dlb.Config{
		Plan:        plan,
		Params:      params,
		DLB:         true,
		RealQuantum: 2 * time.Millisecond,
	}
	res, err := RunMaster(cfg, addrs, MasterOptions{Logf: logf})
	if err != nil {
		t.Fatal(err)
	}
	checkBitIdentical(t, res, seqReference(t, plan, params))

	mu.Lock()
	defer mu.Unlock()
	gob, bin := 0, 0
	for _, l := range lines {
		if !strings.Contains(l, "connected") {
			continue
		}
		switch {
		case strings.Contains(l, "codec gob"):
			gob++
		case strings.Contains(l, "codec binary"):
			bin++
		}
	}
	if gob != 1 || bin != 3 {
		t.Errorf("expected 1 gob + 3 binary slaves, negotiated %d gob + %d binary:\n%s",
			gob, bin, strings.Join(lines, "\n"))
	}
}

// TestGobPinnedRun pins the whole run to gob from the master side — the
// backward-compatible configuration must still be bit-identical.
func TestGobPinnedRun(t *testing.T) {
	plan, params := testPlan(t, "sor", 64, 4)
	addrs, _ := startServers(t, 3, ServerOptions{})
	cfg := dlb.Config{
		Plan:        plan,
		Params:      params,
		DLB:         true,
		RealQuantum: 2 * time.Millisecond,
	}
	res, err := RunMaster(cfg, addrs, MasterOptions{Codec: wire.CodecGob})
	if err != nil {
		t.Fatal(err)
	}
	checkBitIdentical(t, res, seqReference(t, plan, params))
}
