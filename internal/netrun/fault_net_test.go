package netrun

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dlb"
	"repro/internal/dlb/wire"
	"repro/internal/fault"
)

// rawDial opens a framed connection for hand-rolled handshake tests.
func rawDial(t *testing.T, addr string) (net.Conn, *wire.Conn) {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	return nc, wire.NewConn(nc)
}

// recvReject reads one frame and requires it to be a RejectMsg.
func recvReject(t *testing.T, wc *wire.Conn) wire.RejectMsg {
	t.Helper()
	env, err := wc.Recv()
	if err != nil {
		t.Fatalf("reading reject: %v", err)
	}
	if env.Tag != wire.TagReject {
		t.Fatalf("expected reject frame, got %q", env.Tag)
	}
	rej, ok := env.Payload.(wire.RejectMsg)
	if !ok {
		t.Fatalf("malformed reject payload %T", env.Payload)
	}
	return rej
}

// TestRejectVersionMismatch dials a slave daemon and opens the handshake
// with an unknown protocol version; the daemon must refuse with a typed
// version-mismatch rejection and stay available for a real run.
func TestRejectVersionMismatch(t *testing.T) {
	addrs, _ := startServers(t, 1, ServerOptions{})
	nc, wc := rawDial(t, addrs[0])
	defer nc.Close()
	start := wire.StartMsg{Version: ProtocolVersion + 99, Node: 0, Slaves: 1, Total: 1}
	if err := wc.Send(wire.Envelope{Tag: wire.TagStart, From: cluster.MasterID, Payload: start}); err != nil {
		t.Fatal(err)
	}
	rej := recvReject(t, wc)
	if rej.Code != wire.RejectVersion {
		t.Fatalf("reject code = %q, want %q (%s)", rej.Code, wire.RejectVersion, rej.Detail)
	}
	if !errors.Is(rejectErr(rej), ErrVersionMismatch) {
		t.Fatalf("rejectErr(%v) does not map to ErrVersionMismatch", rej)
	}
}

// TestRejectPlanHashMismatch ships a valid spec under a wrong plan hash —
// the version-skew scenario where two binaries compile different programs —
// and requires the daemon to refuse before any state is exchanged.
func TestRejectPlanHashMismatch(t *testing.T) {
	plan, params := testPlan(t, "mm", 32, 0)
	addrs, _ := startServers(t, 1, ServerOptions{})
	cfg := dlb.Config{Plan: plan, Params: params, DLB: true, RealQuantum: 2 * time.Millisecond}
	pre, err := dlb.Prepare(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	nc, wc := rawDial(t, addrs[0])
	defer nc.Close()
	start := wire.StartMsg{
		Version:  ProtocolVersion,
		Node:     0,
		Slaves:   1,
		Total:    1,
		PlanHash: "0123456789abcdef", // not what the daemon will compile
		Spec:     specFromConfig(cfg, pre.Grain, 100*time.Millisecond),
	}
	if err := wc.Send(wire.Envelope{Tag: wire.TagStart, From: cluster.MasterID, Payload: start}); err != nil {
		t.Fatal(err)
	}
	rej := recvReject(t, wc)
	if rej.Code != wire.RejectPlanHash {
		t.Fatalf("reject code = %q, want %q (%s)", rej.Code, wire.RejectPlanHash, rej.Detail)
	}
	if !errors.Is(rejectErr(rej), ErrPlanHashMismatch) {
		t.Fatalf("rejectErr(%v) does not map to ErrPlanHashMismatch", rej)
	}
}

// TestRejectDuplicateID connects to a running master claiming a node id
// that is already attached. The master must refuse: a second connection
// for a live id is either a split-brain slave or a stale reconnect, and
// reconnecting nodes re-enter as fresh joiners by design.
func TestRejectDuplicateID(t *testing.T) {
	plan, params := testPlan(t, "mm", 64, 0)
	addrs, _ := startServers(t, 4, ServerOptions{Drag: 3})
	cfg := dlb.Config{Plan: plan, Params: params, DLB: true, RealQuantum: 2 * time.Millisecond}
	masterAddr := make(chan string, 1)
	type outcome struct {
		res *dlb.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := RunMaster(cfg, addrs, MasterOptions{
			OnListen: func(a string) { masterAddr <- a },
		})
		done <- outcome{res, err}
	}()
	maddr := <-masterAddr

	// The listener is up before slave 0 handshakes, so retry until the
	// claim is refused as a duplicate rather than as unknown.
	deadline := time.Now().Add(15 * time.Second)
	for {
		nc, wc := rawDial(t, maddr)
		hello := wire.HelloMsg{Version: ProtocolVersion, Node: 0}
		if err := wc.Send(wire.Envelope{Tag: wire.TagHello, From: 0, Payload: hello}); err != nil {
			t.Fatal(err)
		}
		rej := recvReject(t, wc)
		nc.Close()
		if rej.Code == wire.RejectDuplicate {
			if !errors.Is(rejectErr(rej), ErrDuplicateID) {
				t.Fatalf("rejectErr(%v) does not map to ErrDuplicateID", rej)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw duplicate-id rejection (last: %s %s)", rej.Code, rej.Detail)
		}
		time.Sleep(20 * time.Millisecond)
	}

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	checkBitIdentical(t, out.res, seqReference(t, plan, params))
}

// dropMasterLink severs a daemon's master connection at the TCP level,
// leaving the daemon itself healthy — the "network cable pulled" case, as
// opposed to the "machine died" case Close exercises.
func dropMasterLink(s *Server) bool {
	s.mu.Lock()
	sess := s.sess
	s.mu.Unlock()
	if sess == nil {
		return false
	}
	sess.rt.mu.Lock()
	l := sess.rt.links[cluster.MasterID]
	sess.rt.mu.Unlock()
	if l == nil {
		return false
	}
	l.nc.Close()
	return true
}

// runFT starts a distributed run in the background with fast failure
// detection and returns a channel with its outcome.
func runFT(cfg dlb.Config, addrs []string, opt MasterOptions) chan struct {
	res *dlb.Result
	err error
} {
	done := make(chan struct {
		res *dlb.Result
		err error
	}, 1)
	go func() {
		res, err := RunMaster(cfg, addrs, opt)
		done <- struct {
			res *dlb.Result
			err error
		}{res, err}
	}()
	return done
}

func evictedHas(res *dlb.Result, id int) bool {
	for _, e := range res.Evicted {
		if e == id {
			return true
		}
	}
	return false
}

// TestConnLossEviction kills one slave daemon mid-run. The master gets no
// error from the transport — the connection just goes quiet — so the
// PR-1 lease detector must evict the node, roll back to the last
// consistent checkpoint, and finish bit-identical on the survivors.
func TestConnLossEviction(t *testing.T) {
	plan, params := testPlan(t, "mm", 256, 0)
	addrs, srvs := startServers(t, 4, ServerOptions{Drag: 20, Timeouts: Timeouts{Dial: 2 * time.Second}})
	cfg := dlb.Config{
		Plan:        plan,
		Params:      params,
		DLB:         true,
		RealQuantum: 2 * time.Millisecond,
		Fault:       &fault.Plan{},
		Detect:      ftDetect(),
		Ckpt:        fault.CkptPolicy{MinInterval: 150 * time.Millisecond},
	}
	done := runFT(cfg, addrs, MasterOptions{})

	time.Sleep(800 * time.Millisecond)
	srvs[2].Close()

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if !evictedHas(out.res, 2) {
		t.Errorf("evicted = %v, want node 2 among them", out.res.Evicted)
	}
	if out.res.Recoveries < 1 {
		t.Errorf("connection loss did not trigger a recovery")
	}
	checkBitIdentical(t, out.res, seqReference(t, plan, params))
}

// TestInjectedCrashEviction ships a fault schedule in the RunSpec: slave 1
// crashes itself mid-run, exercising the FormatSpec/ParseSpec round trip
// and the same eviction path as a real process death.
func TestInjectedCrashEviction(t *testing.T) {
	plan, params := testPlan(t, "mm", 256, 0)
	addrs, _ := startServers(t, 4, ServerOptions{Drag: 20, Timeouts: Timeouts{Dial: 2 * time.Second}})
	fp, err := fault.ParseSpec("crash:1@0.5")
	if err != nil {
		t.Fatal(err)
	}
	cfg := dlb.Config{
		Plan:        plan,
		Params:      params,
		DLB:         true,
		RealQuantum: 2 * time.Millisecond,
		Fault:       fp,
		Detect:      ftDetect(),
		Ckpt:        fault.CkptPolicy{MinInterval: 150 * time.Millisecond},
	}
	out := <-runFT(cfg, addrs, MasterOptions{})
	if out.err != nil {
		t.Fatal(out.err)
	}
	if !evictedHas(out.res, 1) {
		t.Errorf("evicted = %v, want node 1 among them", out.res.Evicted)
	}
	if out.res.Recoveries < 1 {
		t.Errorf("injected crash did not trigger a recovery")
	}
	checkBitIdentical(t, out.res, seqReference(t, plan, params))
}

// TestReconnectRejoin pulls the network cable between the master and one
// slave: the master must evict the silent node, and the daemon — still
// alive behind the broken connection — must redial the master and re-enter
// the same run as an elastic joiner under a fresh id.
func TestReconnectRejoin(t *testing.T) {
	plan, params := testPlan(t, "mm", 256, 0)
	addrs, srvs := startServers(t, 4, ServerOptions{Drag: 30, Timeouts: Timeouts{Dial: 2 * time.Second}})
	cfg := dlb.Config{
		Plan:        plan,
		Params:      params,
		DLB:         true,
		RealQuantum: 2 * time.Millisecond,
		Fault:       &fault.Plan{},
		Detect:      ftDetect(),
		Ckpt:        fault.CkptPolicy{MinInterval: 150 * time.Millisecond},
	}
	done := runFT(cfg, addrs, MasterOptions{ExtraSlots: 1})

	time.Sleep(800 * time.Millisecond)
	if !dropMasterLink(srvs[1]) {
		t.Log("no active session on server 1 at drop time (run too fast?)")
	}

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if !evictedHas(out.res, 1) {
		t.Errorf("evicted = %v, want node 1 among them", out.res.Evicted)
	}
	if len(out.res.Joined) == 0 {
		t.Errorf("severed daemon did not rejoin (joined = %v)", out.res.Joined)
	}
	checkBitIdentical(t, out.res, seqReference(t, plan, params))
}
