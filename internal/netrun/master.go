package netrun

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/dlb"
	"repro/internal/dlb/wire"
	"repro/internal/fault"
	"repro/internal/hier"
)

// MasterOptions configures a distributed master.
type MasterOptions struct {
	// Listen is the master's own listener, where joiners and reconnecting
	// slaves dial in (default "127.0.0.1:0").
	Listen string
	// ExtraSlots is how many joiner slots to provision beyond the initial
	// membership; elastic join and reconnect both consume them.
	ExtraSlots int
	// OnListen is called with the master's bound listener address before
	// any slave is dialed (harnesses use it to learn the join address).
	OnListen func(addr string)
	Timeouts Timeouts
	// Codec selects the data-plane codec offered to slaves:
	// wire.CodecBinary (the default, "") or wire.CodecGob to pin the whole
	// run to gob. Slaves that don't accept the offer fall back to gob
	// individually — mixed-codec runs are fully supported.
	Codec string
	// Prepared, when set, skips the Prepare step: the caller supplies the
	// instantiation (typically from a plan cache) whose grain and resolved
	// compile options this run must reuse. Required for resumed runs — a
	// checkpoint replays only under the phase schedule it was cut with —
	// and the reason resubmitted plans hash identically (grain measurement
	// is timing-dependent; a cached Prepared pins it).
	Prepared *dlb.Prepared
	// Logf receives transport events (nil: silent).
	Logf func(format string, args ...interface{})
}

// netMaster is the master's transport state, shared between the run and
// the accept loop.
type netMaster struct {
	opt   MasterOptions
	to    Timeouts
	spec  wire.RunSpec
	hash  string
	offer string // data-plane codec offered in every StartMsg
	n     int    // initial membership
	total int
	rt    *router
	box   *mailbox
	ln    net.Listener

	mu       sync.Mutex
	free     []int // unassigned joiner slots, ascending
	closed   bool
	acceptWG sync.WaitGroup
}

func (m *netMaster) logf(format string, args ...interface{}) {
	if m.opt.Logf != nil {
		m.opt.Logf(format, args...)
	}
}

// RunMaster executes cfg as a distributed run: dial and handshake the
// slave daemons at slaveAddrs, distribute the roster, then drive the
// fault-tolerant master protocol over TCP. It returns when the computation
// completes (or recovery becomes impossible). Connection losses are
// handled by the fault layer — a slave daemon that dies mid-run is evicted
// after its heartbeat lease expires and its work is rolled back to the
// last consistent checkpoint, exactly as with in-process injected crashes.
func RunMaster(cfg dlb.Config, slaveAddrs []string, opt MasterOptions) (*dlb.Result, error) {
	n := len(slaveAddrs)
	if n < 1 {
		return nil, fmt.Errorf("netrun: no slave addresses")
	}
	if !cfg.DLB {
		return nil, fmt.Errorf("netrun: distributed runs require DLB (hooks are the heartbeat and checkpoint substrate)")
	}
	pre := opt.Prepared
	if pre == nil {
		var err error
		pre, err = dlb.Prepare(cfg, n)
		if err != nil {
			return nil, err
		}
	}
	// Ship the resolved compile options: Prepare may have rebased the hook
	// cost on measured kernel speed, and slaves must instantiate with the
	// same value or their plan hashes (phase schedules) would diverge.
	cfg.CompileOpts = pre.Opts
	hbEvery := fault.NewDetector(cfg.Detect, 1).Config().HeartbeatEvery
	offer := wire.CodecBinary
	if opt.Codec == wire.CodecGob {
		offer = ""
	}
	m := &netMaster{
		opt:   opt,
		to:    opt.Timeouts.withDefaults(),
		spec:  specFromConfig(cfg, pre.Grain, hbEvery),
		hash:  PlanHash(cfg.Plan, pre.Exec, cfg.Params, pre.Grain),
		offer: offer,
		n:     n,
		total: n + opt.ExtraSlots,
		box:   newMailbox(),
	}
	m.rt = newRouter(cluster.MasterID, m.box, m.to, false)
	m.rt.binarySelf = offer == wire.CodecBinary
	for slot := n; slot < m.total; slot++ {
		m.free = append(m.free, slot)
	}

	listen := opt.Listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	var err error
	m.ln, err = net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("netrun: master listener: %w", err)
	}
	defer m.shutdown()
	if opt.OnListen != nil {
		opt.OnListen(m.ln.Addr().String())
	}

	// Dial and handshake the initial membership.
	roster := map[int]string{}
	codecs := map[int]string{}
	cachedInit := make([]bool, n)
	for i, addr := range slaveAddrs {
		peerAddr, codec, hasInit, err := m.handshakeSlave(i, addr)
		if err != nil {
			return nil, fmt.Errorf("netrun: slave %d at %s: %w", i, addr, err)
		}
		roster[i] = peerAddr
		codecs[i] = codec
		cachedInit[i] = hasInit
	}
	m.rt.mergeRoster(roster, codecs)
	// The roster is the first frame on every connection: FIFO delivery
	// guarantees each slave knows its peers' addresses (and codecs) before
	// any init scatter (and thus before any instruction that could move
	// work).
	for i := 0; i < n; i++ {
		m.rt.send(i, wire.TagRoster, wire.RosterMsg{Addrs: roster, Codecs: codecs})
	}

	// Hierarchical runs elect group leaders by roster rank — the lowest
	// node id of each contiguous group — so every participant derives the
	// same leadership from the same roster without extra coordination.
	if cfg.Groups > 1 {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		leaders, lerr := hier.RosterLeaders(ids, cfg.Groups)
		if lerr != nil {
			return nil, fmt.Errorf("netrun: group layout: %w", lerr)
		}
		m.logf("hierarchical balancing: %d groups over %d slaves, leaders %v (by roster rank)", cfg.Groups, n, leaders)
	}

	m.acceptWG.Add(1)
	go m.acceptLoop()

	// Move-cost prior: on loopback TCP movement cost is dominated by the
	// codec, so seed the bandwidth from a measured encode+decode of the
	// negotiated data plane rather than a constant or the master's offer —
	// one gob-pinned slave makes gob the plane work movements traverse.
	// The balancer's EMA then keeps tracking real measured movements (§4.3).
	binaryPlane := offer == wire.CodecBinary
	for _, c := range codecs {
		if c != wire.CodecBinary {
			binaryPlane = false
		}
	}
	cc := cluster.Config{
		Slaves:       n,
		Quantum:      cfg.RealQuantum,
		Bandwidth:    wire.CodecBandwidth(binaryPlane),
		LinkLatency:  100 * time.Microsecond,
		SendOverhead: 10 * time.Microsecond,
	}
	ep := &advisedEndpoint{endpoint: newEndpoint(m.rt, m.box, 1), cached: cachedInit}
	return dlb.RunMasterOn(ep, cfg, cc, n, m.total, pre)
}

func (m *netMaster) shutdown() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.ln.Close()
	m.rt.close()
	m.acceptWG.Wait()
}

// handshakeSlave dials one initial slave, sends the StartMsg (with the
// codec offer), validates the HelloMsg reply, and attaches the connection
// with the codec the slave accepted. A busy rejection is retried with
// backoff within the dial budget: a scheduler re-leasing a slave whose
// previous (preempted or completed) session is still tearing down should
// wait it out, not fail the run.
func (m *netMaster) handshakeSlave(node int, addr string) (peerAddr, codec string, initCached bool, err error) {
	deadline := time.Now().Add(m.to.Dial)
	backoff := 20 * time.Millisecond
	for {
		peerAddr, codec, initCached, err = m.handshakeSlaveOnce(node, addr)
		if err == nil || !errors.Is(err, ErrBusy) || time.Now().Add(backoff).After(deadline) {
			return
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

func (m *netMaster) handshakeSlaveOnce(node int, addr string) (peerAddr, codec string, initCached bool, err error) {
	nc, err := dialBackoff(addr, m.to.Dial)
	if err != nil {
		return "", "", false, err
	}
	wc := wire.NewConn(nc)
	nc.SetDeadline(time.Now().Add(m.to.Handshake))
	start := wire.StartMsg{
		Version:    ProtocolVersion,
		Node:       node,
		Slaves:     m.n,
		Total:      m.total,
		PlanHash:   m.hash,
		MasterAddr: m.ln.Addr().String(),
		Spec:       m.spec,
		Codec:      m.offer,
	}
	if err := wc.Send(wire.Envelope{Tag: wire.TagStart, From: cluster.MasterID, Payload: start}); err != nil {
		nc.Close()
		return "", "", false, err
	}
	h, err := recvHello(wc)
	if err != nil {
		nc.Close()
		return "", "", false, err
	}
	if err := m.checkHello(h); err != nil {
		nc.Close()
		return "", "", false, err
	}
	nc.SetDeadline(time.Time{})
	codec = m.negotiated(h)
	wc.SetBinary(codec == wire.CodecBinary)
	m.rt.attach(node, nc, wc, true)
	m.logf("slave %d connected from %s (peer listener %s, codec %s, initCached %v)",
		node, nc.RemoteAddr(), h.PeerAddr, codecName(codec), h.InitCached)
	return h.PeerAddr, codec, h.InitCached, nil
}

// negotiated resolves the data-plane codec for one slave connection: the
// binary codec needs both the master's offer and the slave's acceptance;
// anything else (old slaves included) is gob.
func (m *netMaster) negotiated(h wire.HelloMsg) string {
	if m.offer == wire.CodecBinary && h.Codec == wire.CodecBinary {
		return wire.CodecBinary
	}
	return ""
}

func codecName(c string) string {
	if c == "" {
		return wire.CodecGob
	}
	return c
}

// recvHello reads the slave's handshake reply, surfacing a RejectMsg as
// its typed error.
func recvHello(wc *wire.Conn) (wire.HelloMsg, error) {
	env, err := wc.Recv()
	if err != nil {
		return wire.HelloMsg{}, err
	}
	switch env.Tag {
	case wire.TagHello:
		h, ok := env.Payload.(wire.HelloMsg)
		if !ok {
			return wire.HelloMsg{}, fmt.Errorf("%w: malformed hello payload", ErrProtocol)
		}
		return h, nil
	case wire.TagReject:
		if rej, ok := env.Payload.(wire.RejectMsg); ok {
			return wire.HelloMsg{}, rejectErr(rej)
		}
		return wire.HelloMsg{}, ErrProtocol
	default:
		return wire.HelloMsg{}, fmt.Errorf("%w: expected hello, got %q", ErrProtocol, env.Tag)
	}
}

func (m *netMaster) checkHello(h wire.HelloMsg) error {
	if h.Version != ProtocolVersion {
		return fmt.Errorf("%w: master %d, slave %d", ErrVersionMismatch, ProtocolVersion, h.Version)
	}
	if h.PlanHash != m.hash {
		return fmt.Errorf("%w: master %s, slave %s", ErrPlanHashMismatch, m.hash, h.PlanHash)
	}
	return nil
}

// acceptLoop admits joiners and reconnecting slaves (which come back as
// joiners: their old slot's state died with the connection), and refuses
// everything else with a typed RejectMsg.
func (m *netMaster) acceptLoop() {
	defer m.acceptWG.Done()
	for {
		nc, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		m.acceptWG.Add(1)
		go func() {
			defer m.acceptWG.Done()
			m.handleJoin(nc)
		}()
	}
}

func sendReject(wc *wire.Conn, nc net.Conn, rej wire.RejectMsg, to Timeouts) {
	nc.SetWriteDeadline(time.Now().Add(to.Handshake))
	wc.Send(wire.Envelope{Tag: wire.TagReject, From: cluster.MasterID, Payload: rej})
	nc.Close()
}

func (m *netMaster) handleJoin(nc net.Conn) {
	wc := wire.NewConn(nc)
	nc.SetDeadline(time.Now().Add(m.to.Handshake))
	env, err := wc.Recv()
	if err != nil {
		nc.Close()
		return
	}
	h, ok := env.Payload.(wire.HelloMsg)
	if env.Tag != wire.TagHello || !ok {
		sendReject(wc, nc, wire.RejectMsg{Code: wire.RejectProtocol, Detail: "expected hello"}, m.to)
		return
	}
	if h.Version != ProtocolVersion {
		sendReject(wc, nc, wire.RejectMsg{
			Code:   wire.RejectVersion,
			Detail: fmt.Sprintf("master speaks version %d, slave %d", ProtocolVersion, h.Version),
		}, m.to)
		return
	}
	if !h.Join {
		// A slave claiming an id it was never handed on this connection:
		// either a second connection for an id that is already attached
		// (duplicate) or a stale slave trying to resume its old identity.
		// Both are refused — a reconnecting node's state is gone; it must
		// come back as a fresh joiner.
		code, detail := wire.RejectProtocol, "masters dial slaves; reconnect with Join"
		if m.rt.hasLink(h.Node) {
			code, detail = wire.RejectDuplicate, fmt.Sprintf("node %d is already connected", h.Node)
		}
		sendReject(wc, nc, wire.RejectMsg{Code: code, Detail: detail}, m.to)
		return
	}

	slot, ok := m.takeSlot()
	if !ok {
		sendReject(wc, nc, wire.RejectMsg{Code: wire.RejectFull, Detail: "no free joiner slots"}, m.to)
		return
	}
	start := wire.StartMsg{
		Version:    ProtocolVersion,
		Node:       slot,
		Slaves:     m.n,
		Total:      m.total,
		PlanHash:   m.hash,
		MasterAddr: m.ln.Addr().String(),
		Spec:       m.spec,
		Roster:     m.rt.rosterSnapshot(),
		Codec:      m.offer,
		Codecs:     m.rt.codecSnapshot(),
	}
	if err := wc.Send(wire.Envelope{Tag: wire.TagStart, From: cluster.MasterID, Payload: start}); err != nil {
		m.releaseSlot(slot)
		nc.Close()
		return
	}
	full, err := recvHello(wc)
	if err != nil || m.checkHello(full) != nil {
		// The joiner never sent its JoinMsg (that happens inside its run),
		// so the slot can be reused without confusing admission ordering.
		m.releaseSlot(slot)
		nc.Close()
		m.logf("join handshake from %s failed: %v", nc.RemoteAddr(), err)
		return
	}
	nc.SetDeadline(time.Time{})
	codec := m.negotiated(full)
	wc.SetBinary(codec == wire.CodecBinary)
	m.rt.mergeRoster(map[int]string{slot: full.PeerAddr}, map[int]string{slot: codec})
	m.rt.attach(slot, nc, wc, true)
	// Tell everyone where the new node listens before its admission can
	// direct any work movement toward it (FIFO per connection).
	m.broadcastRoster()
	m.logf("joiner admitted into slot %d from %s (codec %s)", slot, nc.RemoteAddr(), codecName(codec))
}

func (m *netMaster) takeSlot() (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.free) == 0 {
		return 0, false
	}
	slot := m.free[0]
	m.free = m.free[1:]
	return slot, true
}

func (m *netMaster) releaseSlot(slot int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.free = append(m.free, slot)
	sort.Ints(m.free)
}

func (m *netMaster) broadcastRoster() {
	roster := m.rt.rosterSnapshot()
	codecs := m.rt.codecSnapshot()
	for _, id := range m.rt.linkedPeers() {
		m.rt.send(id, wire.TagRoster, wire.RosterMsg{Addrs: roster, Codecs: codecs})
	}
}
