//go:build race

package netrun

// raceDetector reports whether the race detector is compiled in; tests
// with wall-clock failure-detection leases stretch them to absorb its
// slowdown.
const raceDetector = true
