//go:build !race

package netrun

const raceDetector = false
