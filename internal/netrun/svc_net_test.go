package netrun

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/dlb"
	"repro/internal/fault"
	"repro/internal/loopir"
)

// ftDetect is the failure-detection config every fault-layer test shares:
// a lease tight enough that evictions are prompt, stretched under the race
// detector whose slowdown otherwise makes healthy slaves miss heartbeats.
func ftDetect() fault.DetectorConfig {
	if raceDetector {
		return fault.DetectorConfig{MinLease: 4 * time.Second, HeartbeatEvery: 250 * time.Millisecond}
	}
	return fault.DetectorConfig{MinLease: 400 * time.Millisecond, HeartbeatEvery: 100 * time.Millisecond}
}

// ftConfig is the fast-detection fault config the service-layer tests
// share: tight leases so evictions are prompt, a short checkpoint interval
// so forced cuts never wait on the throttle.
func ftConfig(t *testing.T, name string, n, iter int) dlb.Config {
	t.Helper()
	plan, params := testPlan(t, name, n, iter)
	return dlb.Config{
		Plan:        plan,
		Params:      params,
		DLB:         true,
		RealQuantum: 2 * time.Millisecond,
		Fault:       &fault.Plan{},
		Detect:      ftDetect(),
		Ckpt:        fault.CkptPolicy{MinInterval: 150 * time.Millisecond},
	}
}

func mustEqualArrays(t *testing.T, label string, got, want map[string]*loopir.Array) {
	t.Helper()
	for name, w := range want {
		g := got[name]
		if g == nil {
			t.Fatalf("%s: array %s missing", label, name)
		}
		if d := w.MaxAbsDiff(g); d != 0 {
			t.Errorf("%s: array %s differs: max |diff| = %g", label, name, d)
		}
	}
}

// TestPreemptResumeBitIdentical is the scheduler round trip: an
// uninterrupted reference run, then the same plan preempted mid-run via
// PreemptControl (checkpoint + release), then resumed from the returned
// snapshot on the same daemons. The resumed result must be bit-identical
// to both the uninterrupted run and the sequential reference.
func TestPreemptResumeBitIdentical(t *testing.T) {
	cfg := ftConfig(t, "mm", 256, 0)
	addrs, _ := startServers(t, 4, ServerOptions{Drag: 20, Timeouts: Timeouts{Dial: 5 * time.Second}})
	pre, err := dlb.Prepare(cfg, len(addrs))
	if err != nil {
		t.Fatal(err)
	}
	opt := MasterOptions{Prepared: pre}
	ref := seqReference(t, cfg.Plan, cfg.Params)

	uncut, err := RunMaster(cfg, addrs, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkBitIdentical(t, uncut, ref)

	// Preempt from the very start: the master must cut at its first
	// consumable round and release the pool.
	pcfg := cfg
	pcfg.Preempt = &dlb.PreemptControl{}
	pcfg.Preempt.Request()
	stopped, err := RunMaster(pcfg, addrs, opt)
	if !errors.Is(err, dlb.ErrPreempted) {
		t.Fatalf("preempted run: err = %v, want ErrPreempted", err)
	}
	if stopped == nil || stopped.Checkpoint == nil {
		t.Fatal("preempted run returned no checkpoint")
	}
	if stopped.Counters["preemptions"] != 1 {
		t.Errorf("preemptions counter = %d, want 1", stopped.Counters["preemptions"])
	}

	// Resume on the same (just-released) daemons: the busy-retry in the
	// handshake absorbs the teardown race, and the recovery epoch replays
	// the snapshot.
	rcfg := cfg
	rcfg.Resume = stopped.Checkpoint
	resumed, err := RunMaster(rcfg, addrs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Counters["resumes"] != 1 {
		t.Errorf("resumes counter = %d, want 1", resumed.Counters["resumes"])
	}
	checkBitIdentical(t, resumed, ref)
	mustEqualArrays(t, "resumed vs uninterrupted", resumed.Final, uncut.Final)
}

// TestInitCacheSkipsRescatter resubmits an identical plan (same Prepared,
// hence same plan hash) to the same daemons: the second run must ship
// FromCache markers instead of bulk init data and still produce
// bit-identical results.
func TestInitCacheSkipsRescatter(t *testing.T) {
	plan, params := testPlan(t, "mm", 64, 0)
	addrs, srvs := startServers(t, 4, ServerOptions{})
	cfg := dlb.Config{Plan: plan, Params: params, DLB: true, RealQuantum: 2 * time.Millisecond}
	pre, err := dlb.Prepare(cfg, len(addrs))
	if err != nil {
		t.Fatal(err)
	}
	opt := MasterOptions{Prepared: pre}
	ref := seqReference(t, plan, params)

	cold, err := RunMaster(cfg, addrs, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkBitIdentical(t, cold, ref)
	if hits := cold.Counters["init_cache_hits"]; hits != 0 {
		t.Errorf("cold run init_cache_hits = %d, want 0", hits)
	}
	for i, srv := range srvs {
		if srv.inits.len() == 0 {
			t.Errorf("daemon %d cached no init payload after the cold run", i)
		}
	}

	warm, err := RunMaster(cfg, addrs, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkBitIdentical(t, warm, ref)
	if hits := warm.Counters["init_cache_hits"]; hits != int64(len(addrs)) {
		t.Errorf("warm run init_cache_hits = %d, want %d", hits, len(addrs))
	}
	if cb, wb := cold.Counters["scatter_bytes"], warm.Counters["scatter_bytes"]; wb >= cb {
		t.Errorf("warm scatter_bytes = %d, not smaller than cold %d", wb, cb)
	}
}

// TestRejectBusyTyped contends for a daemon that is mid-run: the second
// master's handshake must fail with an error wrapping ErrBusy (the
// retryable rejection), not a generic protocol error.
func TestRejectBusyTyped(t *testing.T) {
	cfg := ftConfig(t, "sor", 128, 8)
	addrs, srvs := startServers(t, 4, ServerOptions{Drag: 20, Timeouts: Timeouts{Dial: 5 * time.Second}})
	done := runFT(cfg, addrs, MasterOptions{})

	// Wait for the run to occupy daemon 0 before contending, so the
	// contender can't steal the idle daemon instead.
	deadline := time.Now().Add(10 * time.Second)
	for {
		srvs[0].mu.Lock()
		busy := srvs[0].sess != nil
		srvs[0].mu.Unlock()
		if busy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never occupied daemon 0")
		}
		time.Sleep(10 * time.Millisecond)
	}

	_, err := RunMaster(cfg, addrs[:1], MasterOptions{Timeouts: Timeouts{Dial: 400 * time.Millisecond}})
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("contender err = %v, want ErrBusy", err)
	}

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
}

// TestShutdownDrains sends a graceful Shutdown to one daemon mid-run: the
// active session must be allowed to finish (no eviction), and once
// Shutdown returns the port must be immediately rebindable.
func TestShutdownDrains(t *testing.T) {
	cfg := ftConfig(t, "sor", 128, 6)
	addrs, srvs := startServers(t, 4, ServerOptions{Drag: 10, Timeouts: Timeouts{Dial: 5 * time.Second}})
	done := runFT(cfg, addrs, MasterOptions{})

	time.Sleep(300 * time.Millisecond)
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srvs[0].Shutdown(60 * time.Second) }()

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if len(out.res.Evicted) != 0 {
		t.Errorf("graceful shutdown evicted %v; the drain should have let the run finish", out.res.Evicted)
	}
	checkBitIdentical(t, out.res, seqReference(t, cfg.Plan, cfg.Params))

	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown did not return after the run completed")
	}
	ln, err := net.Listen("tcp", srvs[0].Addr())
	if err != nil {
		t.Fatalf("port not rebindable after Shutdown: %v", err)
	}
	ln.Close()
}

// TestClosePromptAndRebindable closes a daemon mid-run the hard way: Close
// must return promptly (the poisoned mailbox unwinds the slave loop while
// the router flushes) and leave the port rebindable; the master evicts the
// node and finishes on the survivors.
func TestClosePromptAndRebindable(t *testing.T) {
	cfg := ftConfig(t, "mm", 256, 0)
	addrs, srvs := startServers(t, 4, ServerOptions{Drag: 20, Timeouts: Timeouts{Dial: 2 * time.Second}})
	done := runFT(cfg, addrs, MasterOptions{})

	time.Sleep(800 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- srvs[2].Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Close hung on a mid-run session")
	}
	ln, err := net.Listen("tcp", srvs[2].Addr())
	if err != nil {
		t.Fatalf("port not rebindable after Close: %v", err)
	}
	ln.Close()

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	checkBitIdentical(t, out.res, seqReference(t, cfg.Plan, cfg.Params))
}
