package trace

import (
	"strings"
	"testing"
)

func wave() (*Series, *Series) {
	a := &Series{Name: "raw"}
	b := &Series{Name: "work"}
	for i := 0; i < 20; i++ {
		t := float64(i)
		v := 1.0
		if i%10 < 5 {
			v = 0.5
		}
		a.Append(t, v)
		b.Append(t, v*10)
	}
	return a, b
}

func TestCSV(t *testing.T) {
	a, b := wave()
	out := CSV(a, b)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "time,raw,work" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 21 {
		t.Fatalf("lines = %d, want 21", len(lines))
	}
	if !strings.HasPrefix(lines[1], "0.000,0.5000,5.0000") {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestCSVCarriesForward(t *testing.T) {
	a := &Series{Name: "a"}
	a.Append(0, 1)
	a.Append(2, 3)
	b := &Series{Name: "b"}
	b.Append(1, 7)
	out := CSV(a, b)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// At t=1, a carries forward its t=0 value.
	if lines[2] != "1.000,1.0000,7.0000" {
		t.Fatalf("row at t=1 = %q", lines[2])
	}
}

func TestPlotASCII(t *testing.T) {
	a, b := wave()
	out := PlotASCII(40, 8, a, b.Normalized(10))
	if !strings.Contains(out, "legend: *=raw +=work") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("marks missing:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	if out := PlotASCII(40, 8, &Series{Name: "empty"}); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot = %q", out)
	}
}

func TestSeriesMaxAndNormalized(t *testing.T) {
	s := &Series{Name: "s"}
	s.Append(0, 2)
	s.Append(1, 8)
	if s.Max() != 8 {
		t.Fatalf("max = %v", s.Max())
	}
	n := s.Normalized(8)
	if n.V[1] != 1 || n.V[0] != 0.25 {
		t.Fatalf("normalized = %v", n.V)
	}
	z := s.Normalized(0) // guards divide-by-zero
	if z.V[1] != 8 {
		t.Fatalf("normalize by zero should pass through, got %v", z.V)
	}
}
