// Package trace renders time series (Figure 9: raw rate, filtered rate,
// work assignment over time) as CSV and as ASCII plots for terminal
// inspection.
package trace

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named time series.
type Series struct {
	Name string
	T    []float64 // x values (seconds)
	V    []float64 // y values
}

// Append adds one sample.
func (s *Series) Append(t, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Max returns the maximum value (0 for an empty series).
func (s *Series) Max() float64 {
	m := 0.0
	for _, v := range s.V {
		if v > m {
			m = v
		}
	}
	return m
}

// Normalized returns a copy with values scaled by 1/denom.
func (s *Series) Normalized(denom float64) *Series {
	out := &Series{Name: s.Name}
	for i := range s.V {
		d := denom
		if d == 0 {
			d = 1
		}
		out.Append(s.T[i], s.V[i]/d)
	}
	return out
}

// CSV renders the series as columns on a shared time axis (union of all
// sample times; missing values are carried forward).
func CSV(series ...*Series) string {
	times := map[float64]bool{}
	for _, s := range series {
		for _, t := range s.T {
			times[t] = true
		}
	}
	axis := make([]float64, 0, len(times))
	for t := range times {
		axis = append(axis, t)
	}
	sortFloats(axis)

	var sb strings.Builder
	sb.WriteString("time")
	for _, s := range series {
		sb.WriteString("," + s.Name)
	}
	sb.WriteString("\n")
	cursor := make([]int, len(series))
	last := make([]float64, len(series))
	for _, t := range axis {
		fmt.Fprintf(&sb, "%.3f", t)
		for i, s := range series {
			for cursor[i] < len(s.T) && s.T[cursor[i]] <= t {
				last[i] = s.V[cursor[i]]
				cursor[i]++
			}
			fmt.Fprintf(&sb, ",%.4f", last[i])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// PlotASCII renders the series as an ASCII chart of the given size. Values
// are plotted on a shared y scale from 0 to the global maximum.
func PlotASCII(width, height int, series ...*Series) string {
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	tMin, tMax := math.Inf(1), math.Inf(-1)
	vMax := 0.0
	for _, s := range series {
		for i := range s.T {
			if s.T[i] < tMin {
				tMin = s.T[i]
			}
			if s.T[i] > tMax {
				tMax = s.T[i]
			}
			if s.V[i] > vMax {
				vMax = s.V[i]
			}
		}
	}
	if math.IsInf(tMin, 1) || tMax <= tMin || vMax <= 0 {
		return "(no data)\n"
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte{'*', '+', 'o', 'x', '#', '@'}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i := range s.T {
			x := int((s.T[i] - tMin) / (tMax - tMin) * float64(width-1))
			y := int(s.V[i] / vMax * float64(height-1))
			row := height - 1 - y
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][x] = mark
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "y: 0..%.3g\n", vMax)
	for _, row := range grid {
		sb.WriteString("|")
		sb.Write(row)
		sb.WriteString("\n")
	}
	sb.WriteString("+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&sb, " x: %.3g..%.3g s   legend:", tMin, tMax)
	for si, s := range series {
		fmt.Fprintf(&sb, " %c=%s", marks[si%len(marks)], s.Name)
	}
	sb.WriteString("\n")
	return sb.String()
}

func sortFloats(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
