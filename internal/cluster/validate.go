package cluster

import (
	"errors"
	"fmt"
)

// Typed configuration errors. Callers classify with errors.Is; before
// these existed a bad configuration either panicked deep inside the
// scheduler (no slaves) or silently misbehaved (an unsorted Steps profile
// returns wrong loads from its linear scan).
var (
	// ErrNoSlaves rejects a cluster with no worker nodes.
	ErrNoSlaves = errors.New("cluster: need at least one slave")
	// ErrBadSpeed rejects a negative per-slave speed (zero means "use the
	// baseline default" and is allowed).
	ErrBadSpeed = errors.New("cluster: negative slave speed")
	// ErrBadProfile rejects a malformed load profile.
	ErrBadProfile = errors.New("cluster: invalid load profile")
)

// Validate checks the configuration the way New would consume it and
// returns a typed error for anything that would panic or silently
// misbehave later. Defaults (zero Quantum, Bandwidth, ...) are not errors
// — withDefaults fills them in.
func (c *Config) Validate() error {
	if c.Slaves < 1 {
		return fmt.Errorf("%w: got %d", ErrNoSlaves, c.Slaves)
	}
	for i, sp := range c.Speed {
		if sp < 0 {
			return fmt.Errorf("%w: slave %d speed %v", ErrBadSpeed, i, sp)
		}
	}
	for i, p := range c.Load {
		if p == nil {
			continue
		}
		if err := ValidateProfile(p); err != nil {
			return fmt.Errorf("slave %d: %w", i, err)
		}
	}
	return nil
}

// ValidateProfile checks the known load-profile shapes. Steps must be
// sorted ascending by At with non-negative task counts (the linear scans
// in At/NextChange assume order); SquareWave and Constant must have
// non-negative parameters. Custom LoadProfile implementations pass
// unchecked.
func ValidateProfile(p LoadProfile) error {
	switch p := p.(type) {
	case Constant:
		if p < 0 {
			return fmt.Errorf("%w: Constant(%d) competitors", ErrBadProfile, int(p))
		}
	case SquareWave:
		if p.Period < 0 || p.OnDuration < 0 || p.Tasks < 0 {
			return fmt.Errorf("%w: SquareWave{Period: %v, OnDuration: %v, Tasks: %d}",
				ErrBadProfile, p.Period, p.OnDuration, p.Tasks)
		}
	case Steps:
		for i, st := range p {
			if st.Tasks < 0 {
				return fmt.Errorf("%w: Steps segment %d has %d competitors", ErrBadProfile, i, st.Tasks)
			}
			if i > 0 && st.At <= p[i-1].At {
				return fmt.Errorf("%w: Steps segment %d at %v not after segment %d at %v",
					ErrBadProfile, i, st.At, i-1, p[i-1].At)
			}
		}
	}
	return nil
}
