// Package cluster simulates a network of workstations in virtual time.
//
// It is the substrate standing in for the paper's Nectar system (Sun 4/330
// workstations on 100 MByte/s links). Each node has a CPU with a relative
// speed, an OS scheduler with a fixed time quantum, and an optional
// time-varying competing load (other users' compute-bound jobs). Messages
// between nodes pay a per-message CPU overhead on the sender plus link
// latency and bandwidth-proportional transfer time.
//
// All timing phenomena the paper's load balancer reacts to — load imbalance,
// quantum-granularity rate oscillation, communication and work-movement
// costs — are reproduced here deterministically, so experiments are pure
// functions of their parameters.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/vtime"
)

// MasterID is the node ID of the dedicated master (load-balancer) node.
// Slaves are numbered 0..Slaves-1.
const MasterID = -1

// AnySource matches messages from any sender in RecvTag.
const AnySource = -2

// Config describes a simulated cluster.
type Config struct {
	// Slaves is the number of worker nodes.
	Slaves int
	// Speed is the relative CPU speed per slave (1.0 = baseline). If nil or
	// shorter than Slaves, missing entries default to 1.0.
	Speed []float64
	// Load is the competing-load profile per slave. Missing entries default
	// to NoLoad.
	Load []LoadProfile
	// Quantum is the OS scheduler time slice. Defaults to 100 ms, matching
	// the paper's environment (its rules reference 1.5 and 5 quanta).
	Quantum time.Duration
	// LinkLatency is the fixed per-message network delay. Default 500 µs.
	LinkLatency time.Duration
	// Bandwidth is the link bandwidth in bytes per second. Default 100e6
	// (Nectar's 100 MByte/s links).
	Bandwidth float64
	// SendOverhead is the sender-side CPU cost per message (protocol
	// processing); it contends with competing load like any computation.
	// Default 200 µs.
	SendOverhead time.Duration
	// ModelWakeup adds OS rescheduling fidelity: a process blocked in a
	// receive resumes only at its node's next application quantum slot, so
	// on a loaded node every synchronization can cost up to c quanta — the
	// effect behind the paper's warning about iterations smaller than the
	// scheduling quantum (§4.4). Off by default.
	ModelWakeup bool
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.Quantum <= 0 {
		cfg.Quantum = 100 * time.Millisecond
	}
	if cfg.LinkLatency <= 0 {
		cfg.LinkLatency = 500 * time.Microsecond
	}
	if cfg.Bandwidth <= 0 {
		cfg.Bandwidth = 100e6
	}
	if cfg.SendOverhead <= 0 {
		cfg.SendOverhead = 200 * time.Microsecond
	}
	return cfg
}

// Msg is a message between cluster nodes. Tags give MPI-style selective
// receive; tags must be non-empty.
type Msg struct {
	From  int
	Tag   string
	Bytes int
	Data  interface{}
}

// Cluster is a set of slave nodes plus one master node sharing a virtual-
// time kernel.
type Cluster struct {
	K      *vtime.Kernel
	cfg    Config
	slaves []*Node
	master *Node
}

// New builds a cluster on the given kernel.
func New(k *vtime.Kernel, cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	if cfg.Slaves < 1 {
		panic("cluster: need at least one slave")
	}
	c := &Cluster{K: k, cfg: cfg}
	for i := 0; i < cfg.Slaves; i++ {
		speed := 1.0
		if i < len(cfg.Speed) && cfg.Speed[i] > 0 {
			speed = cfg.Speed[i]
		}
		var load LoadProfile = NoLoad{}
		if i < len(cfg.Load) && cfg.Load[i] != nil {
			load = cfg.Load[i]
		}
		c.slaves = append(c.slaves, &Node{
			c:     c,
			ID:    i,
			speed: speed,
			load:  load,
			mbox:  k.NewMailbox(fmt.Sprintf("node%d", i)),
		})
	}
	c.master = &Node{
		c:     c,
		ID:    MasterID,
		speed: 1.0,
		load:  NoLoad{},
		mbox:  k.NewMailbox("master"),
	}
	return c
}

// Config returns the effective configuration (with defaults applied).
func (c *Cluster) Config() Config { return c.cfg }

// Slaves reports the number of slave nodes.
func (c *Cluster) Slaves() int { return len(c.slaves) }

// Node returns the node with the given ID (MasterID for the master).
func (c *Cluster) Node(id int) *Node {
	if id == MasterID {
		return c.master
	}
	if id < 0 || id >= len(c.slaves) {
		panic(fmt.Sprintf("cluster: no node %d", id))
	}
	return c.slaves[id]
}

// Spawn starts a process bound to the given node.
func (c *Cluster) Spawn(name string, id int, fn func(p *vtime.Proc, n *Node)) {
	n := c.Node(id)
	c.K.Spawn(name, func(p *vtime.Proc) { fn(p, n) })
}

// TransferTime reports the network time (latency + bandwidth) for a message
// of the given size, excluding sender CPU overhead.
func (c *Cluster) TransferTime(bytes int) time.Duration {
	return c.cfg.LinkLatency + time.Duration(float64(bytes)/c.cfg.Bandwidth*float64(time.Second))
}

// Node is one simulated workstation. All methods taking a *vtime.Proc must
// be called from a process spawned on this node.
type Node struct {
	c     *Cluster
	ID    int
	speed float64
	load  LoadProfile
	mbox  *vtime.Mailbox

	pending []Msg // messages received but not yet matched by RecvTag

	// accounting (virtual durations)
	cursor        time.Duration // end of the last accounted interval
	busyElapsed   time.Duration // wall time spent inside Compute
	appCPU        time.Duration // CPU actually consumed by the application
	busyCompeting time.Duration // competitor CPU consumed while app was computing
	idleCompeting time.Duration // competitor CPU consumed while app was idle
	msgsSent      int
	bytesSent     int
}

// Speed returns the node's relative CPU speed.
func (n *Node) Speed() float64 { return n.speed }

// Compute consumes the given amount of baseline CPU work (CPU time at speed
// 1.0 with no competition) and advances virtual time by the resulting
// elapsed duration, accounting for this node's speed, its competing load,
// and quantum-granular round-robin scheduling.
func (n *Node) Compute(p *vtime.Proc, cpu time.Duration) {
	if cpu <= 0 {
		return
	}
	start := p.Now()
	n.accountIdleUntil(start)
	demand := time.Duration(float64(cpu) / n.speed)
	t := start
	remaining := demand
	var competing time.Duration
	q := n.c.cfg.Quantum
	for remaining > 0 {
		c := n.load.At(t)
		change := n.load.NextChange(t)
		if c <= 0 {
			step := remaining
			if change-t < step {
				step = change - t
			}
			t += step
			remaining -= step
			continue
		}
		// Round-robin between the application and c competitors: the
		// application owns quantum slots whose index is ≡ 0 (mod c+1).
		for remaining > 0 && t < change {
			slot := int64(t / q)
			slotEnd := time.Duration(slot+1) * q
			if slotEnd > change {
				slotEnd = change
			}
			if slot%int64(c+1) == 0 {
				avail := slotEnd - t
				if avail >= remaining {
					t += remaining
					remaining = 0
				} else {
					t = slotEnd
					remaining -= avail
				}
			} else {
				competing += slotEnd - t
				t = slotEnd
			}
		}
	}
	n.busyElapsed += t - start
	n.appCPU += demand
	n.busyCompeting += competing
	n.cursor = t
	p.Sleep(t - start)
}

// accountIdleUntil charges competitor CPU for the idle window [cursor, t):
// while the application is idle, any competing jobs consume the whole CPU.
func (n *Node) accountIdleUntil(t time.Duration) {
	if t <= n.cursor {
		return
	}
	n.idleCompeting += n.loadedMeasure(n.cursor, t)
	n.cursor = t
}

// loadedMeasure returns the measure of {u in [t0,t1): load.At(u) > 0}.
func (n *Node) loadedMeasure(t0, t1 time.Duration) time.Duration {
	var total time.Duration
	t := t0
	for t < t1 {
		c := n.load.At(t)
		change := n.load.NextChange(t)
		end := t1
		if change < end {
			end = change
		}
		if c > 0 {
			total += end - t
		}
		t = end
	}
	return total
}

// FinishAt closes the accounting window at time t (typically the end of the
// application run). Call once before reading Usage.
func (n *Node) FinishAt(t time.Duration) { n.accountIdleUntil(t) }

// Usage summarizes a node's CPU accounting.
type Usage struct {
	BusyElapsed  time.Duration // wall time spent computing
	AppCPU       time.Duration // CPU consumed by the application
	CompetingCPU time.Duration // CPU consumed by competing jobs (busy + idle)
	MessagesSent int
	BytesSent    int
}

// Usage returns the node's accounting up to the last FinishAt/Compute.
func (n *Node) Usage() Usage {
	return Usage{
		BusyElapsed:  n.busyElapsed,
		AppCPU:       n.appCPU,
		CompetingCPU: n.busyCompeting + n.idleCompeting,
		MessagesSent: n.msgsSent,
		BytesSent:    n.bytesSent,
	}
}

// Send transmits a message to another node. The sender pays SendOverhead of
// contended CPU; the message is delivered after link latency plus
// bandwidth-proportional transfer time. Tags must be non-empty.
func (n *Node) Send(p *vtime.Proc, to int, tag string, bytes int, data interface{}) {
	if tag == "" {
		panic("cluster: empty message tag")
	}
	n.Compute(p, n.c.cfg.SendOverhead)
	n.msgsSent++
	n.bytesSent += bytes
	delay := n.c.TransferTime(bytes)
	p.Send(n.c.Node(to).mbox, Msg{From: n.ID, Tag: tag, Bytes: bytes, Data: data}, delay)
}

func match(m Msg, from int, tag string) bool {
	if from != AnySource && m.From != from {
		return false
	}
	return tag == "" || m.Tag == tag
}

// RecvTag blocks until a message matching the source and tag arrives and
// returns it. from may be AnySource; an empty tag matches any tag.
// Non-matching messages are buffered for later RecvTag calls. With
// ModelWakeup, resuming after a blocked receive waits for the node's next
// application quantum slot.
func (n *Node) RecvTag(p *vtime.Proc, from int, tag string) Msg {
	for i, m := range n.pending {
		if match(m, from, tag) {
			n.pending = append(n.pending[:i], n.pending[i+1:]...)
			n.accountIdleUntil(p.Now())
			return m
		}
	}
	for {
		raw := p.Recv(n.mbox)
		m := raw.Data.(Msg)
		if match(m, from, tag) {
			if d := n.wakeupDelay(p.Now()); d > 0 {
				p.Sleep(d)
			}
			n.accountIdleUntil(p.Now())
			return m
		}
		n.pending = append(n.pending, m)
	}
}

// wakeupDelay returns how long a process unblocked at time t must wait for
// the OS to schedule it: zero when the node is unloaded or t falls in an
// application slot, otherwise the time to the next application slot.
func (n *Node) wakeupDelay(t time.Duration) time.Duration {
	if !n.c.cfg.ModelWakeup || n.ID == MasterID {
		return 0
	}
	q := n.c.cfg.Quantum
	start := t
	for {
		c := n.load.At(t)
		if c <= 0 {
			return t - start
		}
		slot := int64(t / q)
		if slot%int64(c+1) == 0 {
			return t - start
		}
		next := time.Duration(slot+1) * q
		if ch := n.load.NextChange(t); ch < next {
			next = ch
		}
		t = next
	}
}

// TryRecvTag returns a matching message if one has already arrived.
func (n *Node) TryRecvTag(p *vtime.Proc, from int, tag string) (Msg, bool) {
	for i, m := range n.pending {
		if match(m, from, tag) {
			n.pending = append(n.pending[:i], n.pending[i+1:]...)
			return m, true
		}
	}
	for {
		raw, ok := p.TryRecv(n.mbox)
		if !ok {
			return Msg{}, false
		}
		m := raw.Data.(Msg)
		if match(m, from, tag) {
			return m, true
		}
		n.pending = append(n.pending, m)
	}
}
