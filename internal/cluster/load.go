package cluster

import (
	"math"
	"time"
)

// Never is a sentinel "no more changes" time returned by NextChange.
const Never = time.Duration(math.MaxInt64)

// LoadProfile describes the competing load on a node as a piecewise-constant
// number of compute-bound competitor processes over virtual time.
type LoadProfile interface {
	// At reports the number of competing processes at time t.
	At(t time.Duration) int
	// NextChange reports the first time strictly after t at which At changes,
	// or Never if the profile is constant from t on.
	NextChange(t time.Duration) time.Duration
}

// NoLoad is a dedicated node: no competing processes, ever.
type NoLoad struct{}

// At implements LoadProfile.
func (NoLoad) At(time.Duration) int { return 0 }

// NextChange implements LoadProfile.
func (NoLoad) NextChange(time.Duration) time.Duration { return Never }

// Constant is a fixed number of competing processes for the whole run —
// the paper's "constant load on one processor" scenario (Figures 7 and 8).
type Constant int

// At implements LoadProfile.
func (c Constant) At(time.Duration) int { return int(c) }

// NextChange implements LoadProfile.
func (Constant) NextChange(time.Duration) time.Duration { return Never }

// SquareWave is an oscillating load: Tasks competitors during the first
// OnDuration of every Period, none for the remainder. With Period = 20 s and
// OnDuration = 10 s it reproduces the Figure 9 scenario ("oscillating load,
// 20 sec period, 10 sec duration"). Offset shifts the wave's origin.
type SquareWave struct {
	Period     time.Duration
	OnDuration time.Duration
	Tasks      int
	Offset     time.Duration
}

// At implements LoadProfile.
func (w SquareWave) At(t time.Duration) int {
	if w.Period <= 0 || w.OnDuration <= 0 {
		return 0
	}
	phase := (t - w.Offset) % w.Period
	if phase < 0 {
		phase += w.Period
	}
	if phase < w.OnDuration {
		return w.Tasks
	}
	return 0
}

// NextChange implements LoadProfile.
func (w SquareWave) NextChange(t time.Duration) time.Duration {
	if w.Period <= 0 || w.OnDuration <= 0 || w.OnDuration >= w.Period {
		return Never
	}
	phase := (t - w.Offset) % w.Period
	if phase < 0 {
		phase += w.Period
	}
	if phase < w.OnDuration {
		return t + (w.OnDuration - phase)
	}
	return t + (w.Period - phase)
}

// Step is one segment of a Steps profile.
type Step struct {
	At    time.Duration // segment start
	Tasks int           // competitors from At until the next segment
}

// Steps is an arbitrary piecewise-constant profile. Segments must be sorted
// by At; the load before the first segment is zero.
type Steps []Step

// At implements LoadProfile.
func (s Steps) At(t time.Duration) int {
	n := 0
	for _, st := range s {
		if st.At > t {
			break
		}
		n = st.Tasks
	}
	return n
}

// NextChange implements LoadProfile.
func (s Steps) NextChange(t time.Duration) time.Duration {
	for _, st := range s {
		if st.At > t {
			return st.At
		}
	}
	return Never
}
