package cluster

import (
	"testing"
	"time"

	"repro/internal/vtime"
)

func run(t *testing.T, k *vtime.Kernel) {
	t.Helper()
	if err := k.Run(); err != nil {
		t.Fatalf("kernel: %v", err)
	}
}

func TestComputeDedicated(t *testing.T) {
	k := vtime.NewKernel()
	c := New(k, Config{Slaves: 1})
	var elapsed time.Duration
	c.Spawn("w", 0, func(p *vtime.Proc, n *Node) {
		start := p.Now()
		n.Compute(p, 300*time.Millisecond)
		elapsed = p.Now() - start
	})
	run(t, k)
	if elapsed != 300*time.Millisecond {
		t.Fatalf("elapsed = %v, want 300ms", elapsed)
	}
}

func TestComputeSpeedScaling(t *testing.T) {
	k := vtime.NewKernel()
	c := New(k, Config{Slaves: 2, Speed: []float64{2.0, 0.5}})
	var fast, slow time.Duration
	c.Spawn("fast", 0, func(p *vtime.Proc, n *Node) {
		n.Compute(p, time.Second)
		fast = p.Now()
	})
	c.Spawn("slow", 1, func(p *vtime.Proc, n *Node) {
		n.Compute(p, time.Second)
		slow = p.Now()
	})
	run(t, k)
	if fast != 500*time.Millisecond {
		t.Fatalf("fast node elapsed = %v, want 500ms", fast)
	}
	if slow != 2*time.Second {
		t.Fatalf("slow node elapsed = %v, want 2s", slow)
	}
}

func TestComputeWithOneCompetitor(t *testing.T) {
	k := vtime.NewKernel()
	c := New(k, Config{Slaves: 1, Load: []LoadProfile{Constant(1)}})
	var end time.Duration
	c.Spawn("w", 0, func(p *vtime.Proc, n *Node) {
		// Quantum = 100ms. Slots: [0,100) ours, [100,200) theirs, ...
		// 150ms of CPU: slot 0 (100ms) + 50ms of slot 2 -> ends at 250ms.
		n.Compute(p, 150*time.Millisecond)
		end = p.Now()
	})
	run(t, k)
	if end != 250*time.Millisecond {
		t.Fatalf("end = %v, want 250ms", end)
	}
	u := c.Node(0).Usage()
	if u.AppCPU != 150*time.Millisecond {
		t.Fatalf("AppCPU = %v, want 150ms", u.AppCPU)
	}
	if u.CompetingCPU != 100*time.Millisecond {
		t.Fatalf("CompetingCPU = %v, want 100ms", u.CompetingCPU)
	}
}

func TestComputeWithTwoCompetitors(t *testing.T) {
	k := vtime.NewKernel()
	c := New(k, Config{Slaves: 1, Load: []LoadProfile{Constant(2)}})
	var end time.Duration
	c.Spawn("w", 0, func(p *vtime.Proc, n *Node) {
		// App owns slots 0, 3, 6, ... (1 of every 3).
		// 200ms CPU = slots 0 and 3 -> ends at 400ms.
		n.Compute(p, 200*time.Millisecond)
		end = p.Now()
	})
	run(t, k)
	if end != 400*time.Millisecond {
		t.Fatalf("end = %v, want 400ms", end)
	}
}

func TestComputeMidSlotStart(t *testing.T) {
	k := vtime.NewKernel()
	c := New(k, Config{Slaves: 1, Load: []LoadProfile{Constant(1)}})
	var end time.Duration
	c.Spawn("w", 0, func(p *vtime.Proc, n *Node) {
		p.Sleep(50 * time.Millisecond) // start mid-way through our slot 0
		n.Compute(p, 100*time.Millisecond)
		// 50ms left in slot 0, skip slot 1, 50ms into slot 2 -> 250ms.
		end = p.Now()
	})
	run(t, k)
	if end != 250*time.Millisecond {
		t.Fatalf("end = %v, want 250ms", end)
	}
}

func TestComputeAcrossLoadChange(t *testing.T) {
	k := vtime.NewKernel()
	// Competitor appears at t=1s.
	c := New(k, Config{Slaves: 1, Load: []LoadProfile{Steps{{At: time.Second, Tasks: 1}}}})
	var end time.Duration
	c.Spawn("w", 0, func(p *vtime.Proc, n *Node) {
		// 1.1s of CPU: first 1s free, then 100ms under round robin.
		// At t=1s, slot index 10 is even -> ours: run [1.0,1.1).
		n.Compute(p, 1100*time.Millisecond)
		end = p.Now()
	})
	run(t, k)
	if end != 1100*time.Millisecond {
		t.Fatalf("end = %v, want 1.1s", end)
	}
}

func TestIdleCompetingAccounting(t *testing.T) {
	k := vtime.NewKernel()
	c := New(k, Config{Slaves: 1, Load: []LoadProfile{Constant(1)}})
	c.Spawn("w", 0, func(p *vtime.Proc, n *Node) {
		p.Sleep(500 * time.Millisecond) // idle: competitor gets all 500ms
		n.Compute(p, 100*time.Millisecond)
	})
	run(t, k)
	n := c.Node(0)
	n.FinishAt(k.Now())
	u := n.Usage()
	// Idle [0,500ms): 500ms competing. Compute starts at 500ms (slot 5,
	// odd -> competitor's slot): wait [500,600) then run [600,700).
	wantCompeting := 500*time.Millisecond + 100*time.Millisecond
	if u.CompetingCPU != wantCompeting {
		t.Fatalf("CompetingCPU = %v, want %v", u.CompetingCPU, wantCompeting)
	}
	if u.AppCPU != 100*time.Millisecond {
		t.Fatalf("AppCPU = %v, want 100ms", u.AppCPU)
	}
}

func TestSendRecvTiming(t *testing.T) {
	k := vtime.NewKernel()
	c := New(k, Config{
		Slaves:       2,
		LinkLatency:  time.Millisecond,
		Bandwidth:    1e6, // 1 MB/s
		SendOverhead: time.Millisecond,
	})
	var recvAt time.Duration
	c.Spawn("sender", 0, func(p *vtime.Proc, n *Node) {
		n.Send(p, 1, "data", 1000, "payload") // 1000B at 1MB/s = 1ms transfer
	})
	c.Spawn("receiver", 1, func(p *vtime.Proc, n *Node) {
		m := n.RecvTag(p, 0, "data")
		recvAt = p.Now()
		if m.Data != "payload" {
			t.Errorf("data = %v", m.Data)
		}
	})
	run(t, k)
	// overhead 1ms (sender CPU) + latency 1ms + transfer 1ms = 3ms
	if recvAt != 3*time.Millisecond {
		t.Fatalf("received at %v, want 3ms", recvAt)
	}
}

func TestRecvTagSelective(t *testing.T) {
	k := vtime.NewKernel()
	c := New(k, Config{Slaves: 2})
	var order []string
	c.Spawn("sender", 0, func(p *vtime.Proc, n *Node) {
		n.Send(p, 1, "first", 8, 1)
		n.Send(p, 1, "second", 8, 2)
	})
	c.Spawn("receiver", 1, func(p *vtime.Proc, n *Node) {
		m := n.RecvTag(p, 0, "second")
		order = append(order, m.Tag)
		m = n.RecvTag(p, 0, "first")
		order = append(order, m.Tag)
	})
	run(t, k)
	if len(order) != 2 || order[0] != "second" || order[1] != "first" {
		t.Fatalf("order = %v, want [second first]", order)
	}
}

func TestRecvTagAnySource(t *testing.T) {
	k := vtime.NewKernel()
	c := New(k, Config{Slaves: 3})
	var from []int
	for i := 0; i < 2; i++ {
		i := i
		c.Spawn("s", i, func(p *vtime.Proc, n *Node) {
			p.Sleep(time.Duration(i+1) * time.Millisecond)
			n.Send(p, 2, "status", 8, i)
		})
	}
	c.Spawn("r", 2, func(p *vtime.Proc, n *Node) {
		for i := 0; i < 2; i++ {
			from = append(from, n.RecvTag(p, AnySource, "status").From)
		}
	})
	run(t, k)
	if len(from) != 2 || from[0] != 0 || from[1] != 1 {
		t.Fatalf("from = %v, want [0 1]", from)
	}
}

func TestTryRecvTag(t *testing.T) {
	k := vtime.NewKernel()
	c := New(k, Config{Slaves: 2})
	c.Spawn("s", 0, func(p *vtime.Proc, n *Node) {
		n.Send(p, 1, "x", 8, nil)
	})
	c.Spawn("r", 1, func(p *vtime.Proc, n *Node) {
		if _, ok := n.TryRecvTag(p, 0, "x"); ok {
			t.Error("message available before it was sent")
		}
		p.Sleep(time.Second)
		if _, ok := n.TryRecvTag(p, 0, "x"); !ok {
			t.Error("message not available after delivery")
		}
	})
	run(t, k)
}

func TestMasterNode(t *testing.T) {
	k := vtime.NewKernel()
	c := New(k, Config{Slaves: 1})
	var got int
	c.Spawn("slave", 0, func(p *vtime.Proc, n *Node) {
		n.Send(p, MasterID, "status", 8, 7)
	})
	c.Spawn("master", MasterID, func(p *vtime.Proc, n *Node) {
		got = n.RecvTag(p, 0, "status").Data.(int)
	})
	run(t, k)
	if got != 7 {
		t.Fatalf("got %d, want 7", got)
	}
}

func TestSquareWaveProfile(t *testing.T) {
	w := SquareWave{Period: 20 * time.Second, OnDuration: 10 * time.Second, Tasks: 1}
	cases := []struct {
		t    time.Duration
		want int
	}{
		{0, 1},
		{9 * time.Second, 1},
		{10 * time.Second, 0},
		{19 * time.Second, 0},
		{20 * time.Second, 1},
		{35 * time.Second, 0},
	}
	for _, tc := range cases {
		if got := w.At(tc.t); got != tc.want {
			t.Errorf("At(%v) = %d, want %d", tc.t, got, tc.want)
		}
	}
	if nc := w.NextChange(0); nc != 10*time.Second {
		t.Errorf("NextChange(0) = %v, want 10s", nc)
	}
	if nc := w.NextChange(15 * time.Second); nc != 20*time.Second {
		t.Errorf("NextChange(15s) = %v, want 20s", nc)
	}
	if nc := w.NextChange(10 * time.Second); nc != 20*time.Second {
		t.Errorf("NextChange(10s) = %v, want 20s", nc)
	}
}

func TestSquareWaveOffset(t *testing.T) {
	w := SquareWave{Period: 10 * time.Second, OnDuration: 5 * time.Second, Tasks: 2, Offset: 3 * time.Second}
	if got := w.At(0); got != 0 {
		t.Errorf("At(0) = %d, want 0 (wave starts at offset)", got)
	}
	if got := w.At(3 * time.Second); got != 2 {
		t.Errorf("At(3s) = %d, want 2", got)
	}
	if nc := w.NextChange(0); nc != 3*time.Second {
		t.Errorf("NextChange(0) = %v, want 3s", nc)
	}
}

func TestStepsProfile(t *testing.T) {
	s := Steps{{At: time.Second, Tasks: 2}, {At: 3 * time.Second, Tasks: 0}}
	if got := s.At(0); got != 0 {
		t.Errorf("At(0) = %d, want 0", got)
	}
	if got := s.At(2 * time.Second); got != 2 {
		t.Errorf("At(2s) = %d, want 2", got)
	}
	if got := s.At(5 * time.Second); got != 0 {
		t.Errorf("At(5s) = %d, want 0", got)
	}
	if nc := s.NextChange(0); nc != time.Second {
		t.Errorf("NextChange(0) = %v, want 1s", nc)
	}
	if nc := s.NextChange(4 * time.Second); nc != Never {
		t.Errorf("NextChange(4s) = %v, want Never", nc)
	}
}

func TestTransferTime(t *testing.T) {
	k := vtime.NewKernel()
	c := New(k, Config{Slaves: 1, LinkLatency: time.Millisecond, Bandwidth: 100e6})
	got := c.TransferTime(100e6 / 2) // half a second of bandwidth
	want := time.Millisecond + 500*time.Millisecond
	if got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
}

func TestDefaultsApplied(t *testing.T) {
	k := vtime.NewKernel()
	c := New(k, Config{Slaves: 1})
	cfg := c.Config()
	if cfg.Quantum != 100*time.Millisecond {
		t.Errorf("Quantum = %v, want 100ms", cfg.Quantum)
	}
	if cfg.Bandwidth != 100e6 {
		t.Errorf("Bandwidth = %v, want 100e6", cfg.Bandwidth)
	}
}

func TestUsageMessageCounters(t *testing.T) {
	k := vtime.NewKernel()
	c := New(k, Config{Slaves: 2})
	c.Spawn("s", 0, func(p *vtime.Proc, n *Node) {
		n.Send(p, 1, "a", 100, nil)
		n.Send(p, 1, "b", 200, nil)
	})
	c.Spawn("r", 1, func(p *vtime.Proc, n *Node) {
		n.RecvTag(p, 0, "a")
		n.RecvTag(p, 0, "b")
	})
	run(t, k)
	u := c.Node(0).Usage()
	if u.MessagesSent != 2 || u.BytesSent != 300 {
		t.Fatalf("sent %d msgs / %d bytes, want 2 / 300", u.MessagesSent, u.BytesSent)
	}
}

func TestWakeupDelayModel(t *testing.T) {
	k := vtime.NewKernel()
	c := New(k, Config{
		Slaves:      2,
		Load:        []LoadProfile{Constant(1)},
		ModelWakeup: true,
	})
	var recvAt time.Duration
	c.Spawn("sender", 1, func(p *vtime.Proc, n *Node) {
		p.Sleep(150 * time.Millisecond)
		n.Send(p, 0, "x", 8, nil)
	})
	c.Spawn("receiver", 0, func(p *vtime.Proc, n *Node) {
		n.RecvTag(p, 1, "x")
		recvAt = p.Now()
	})
	run(t, k)
	// The message arrives shortly after 150ms, inside the competitor's
	// quantum slot [100ms,200ms); the receiver resumes at its next slot,
	// 200ms.
	if recvAt != 200*time.Millisecond {
		t.Fatalf("received at %v, want 200ms (next application slot)", recvAt)
	}
}

func TestWakeupDelayOffByDefault(t *testing.T) {
	k := vtime.NewKernel()
	c := New(k, Config{Slaves: 2, Load: []LoadProfile{Constant(1)}, SendOverhead: time.Nanosecond, LinkLatency: time.Nanosecond, Bandwidth: 1e12})
	var recvAt time.Duration
	c.Spawn("sender", 1, func(p *vtime.Proc, n *Node) {
		p.Sleep(150 * time.Millisecond)
		n.Send(p, 0, "x", 8, nil)
	})
	c.Spawn("receiver", 0, func(p *vtime.Proc, n *Node) {
		n.RecvTag(p, 1, "x")
		recvAt = p.Now()
	})
	run(t, k)
	if recvAt >= 200*time.Millisecond {
		t.Fatalf("received at %v; wakeup modeling should be off", recvAt)
	}
}

func TestWakeupDelayUnloadedNode(t *testing.T) {
	k := vtime.NewKernel()
	c := New(k, Config{Slaves: 2, ModelWakeup: true})
	var recvAt time.Duration
	c.Spawn("sender", 1, func(p *vtime.Proc, n *Node) {
		p.Sleep(150 * time.Millisecond)
		n.Send(p, 0, "x", 8, nil)
	})
	c.Spawn("receiver", 0, func(p *vtime.Proc, n *Node) {
		n.RecvTag(p, 1, "x")
		recvAt = p.Now()
	})
	run(t, k)
	if recvAt >= 200*time.Millisecond {
		t.Fatalf("received at %v; unloaded node needs no wakeup delay", recvAt)
	}
}
