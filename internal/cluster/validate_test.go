package cluster

import (
	"errors"
	"testing"
	"time"
)

func TestValidateAcceptsDefaults(t *testing.T) {
	cfg := Config{Slaves: 4}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
	cfg = Config{
		Slaves: 2,
		Speed:  []float64{0, 1.5}, // 0 = default baseline, allowed
		Load: []LoadProfile{
			nil,
			Steps{{At: 0, Tasks: 1}, {At: time.Second, Tasks: 0}},
		},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestValidateRejectsNoSlaves(t *testing.T) {
	for _, n := range []int{0, -3} {
		cfg := Config{Slaves: n}
		if err := cfg.Validate(); !errors.Is(err, ErrNoSlaves) {
			t.Errorf("Slaves=%d: got %v, want ErrNoSlaves", n, err)
		}
	}
}

func TestValidateRejectsNegativeSpeed(t *testing.T) {
	cfg := Config{Slaves: 2, Speed: []float64{1, -0.5}}
	if err := cfg.Validate(); !errors.Is(err, ErrBadSpeed) {
		t.Fatalf("got %v, want ErrBadSpeed", err)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	cases := []struct {
		name string
		p    LoadProfile
	}{
		{"negative constant", Constant(-1)},
		{"negative square wave", SquareWave{Period: -time.Second, OnDuration: time.Second, Tasks: 1}},
		{"square wave negative tasks", SquareWave{Period: time.Second, OnDuration: time.Second / 2, Tasks: -2}},
		{"unsorted steps", Steps{{At: time.Second, Tasks: 1}, {At: 0, Tasks: 2}}},
		{"duplicate step times", Steps{{At: time.Second, Tasks: 1}, {At: time.Second, Tasks: 2}}},
		{"steps negative tasks", Steps{{At: 0, Tasks: -1}}},
	}
	for _, tc := range cases {
		if err := ValidateProfile(tc.p); !errors.Is(err, ErrBadProfile) {
			t.Errorf("%s: got %v, want ErrBadProfile", tc.name, err)
		}
		cfg := Config{Slaves: 1, Load: []LoadProfile{tc.p}}
		if err := cfg.Validate(); !errors.Is(err, ErrBadProfile) {
			t.Errorf("%s via Config: got %v, want ErrBadProfile", tc.name, err)
		}
	}
}

func TestValidateAllowsCustomProfiles(t *testing.T) {
	if err := ValidateProfile(NoLoad{}); err != nil {
		t.Fatalf("NoLoad rejected: %v", err)
	}
}
