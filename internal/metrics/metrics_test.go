package metrics

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

func TestSpeedup(t *testing.T) {
	if s := Speedup(10*time.Second, 2*time.Second); s != 5 {
		t.Fatalf("speedup = %v, want 5", s)
	}
	if s := Speedup(time.Second, 0); s != 0 {
		t.Fatalf("speedup with zero elapsed = %v, want 0", s)
	}
}

func TestEfficiencyDedicated(t *testing.T) {
	// 4 dedicated slaves, perfect speedup: efficiency 1.
	usage := make([]cluster.Usage, 4)
	e := Efficiency(8*time.Second, 2*time.Second, usage)
	if e != 1.0 {
		t.Fatalf("efficiency = %v, want 1.0", e)
	}
}

func TestEfficiencyWithCompetingLoad(t *testing.T) {
	// 2 slaves, one loses half its CPU to a competitor: available CPU is
	// elapsed + elapsed/2 = 3s; sequential work of 3s -> efficiency 1.
	usage := []cluster.Usage{
		{CompetingCPU: time.Second},
		{},
	}
	e := Efficiency(3*time.Second, 2*time.Second, usage)
	if e != 1.0 {
		t.Fatalf("efficiency = %v, want 1.0", e)
	}
	// Less productive work over the same availability -> lower efficiency.
	e = Efficiency(1500*time.Millisecond, 2*time.Second, usage)
	if e != 0.5 {
		t.Fatalf("efficiency = %v, want 0.5", e)
	}
}

func TestEfficiencyGuards(t *testing.T) {
	usage := []cluster.Usage{{CompetingCPU: 10 * time.Second}}
	if e := Efficiency(time.Second, time.Second, usage); e != 0 {
		t.Fatalf("efficiency with no available CPU = %v, want 0", e)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "demo", Headers: []string{"P", "time", "speedup"}}
	tab.AddRowf(1, 2500*time.Millisecond, 1.0)
	tab.AddRowf(2, 1250*time.Millisecond, 2.0)
	out := tab.String()
	for _, want := range []string{"demo", "P", "speedup", "2.50s", "2.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("table has %d lines, want 5", len(lines))
	}
}
