package metrics

import (
	"fmt"
	"sort"
)

// Counters is a set of named monotonic event counters. The run-time engine
// fills one per run — the same names on every endpoint (simulated,
// wall-clock, TCP), so harnesses can compare runs across transports without
// endpoint-specific accounting. Counters is not safe for concurrent
// writers; the engine only writes from the master's context.
type Counters map[string]int64

// Add increments a counter by delta.
func (c Counters) Add(name string, delta int64) { c[name] += delta }

// Get returns a counter's value (0 when never incremented).
func (c Counters) Get(name string) int64 { return c[name] }

// Names lists the counter names in sorted order.
func (c Counters) Names() []string {
	names := make([]string, 0, len(c))
	for name := range c {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Table renders the counters as an aligned two-column table.
func (c Counters) Table(title string) *Table {
	t := &Table{Title: title, Headers: []string{"counter", "value"}}
	for _, name := range c.Names() {
		t.AddRow(name, fmt.Sprintf("%d", c[name]))
	}
	return t
}
