// Package metrics computes the paper's evaluation quantities — speedup and
// efficiency of resource usage (§5.1) — and renders aligned text tables for
// the benchmark harness.
package metrics

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
)

// Speedup is sequential time over parallel elapsed time.
func Speedup(seq, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return seq.Seconds() / elapsed.Seconds()
}

// Efficiency implements the paper's formula:
//
//	efficiency = time_sequential / Σ_processors (time_elapsed − time_competing)
//
// where time_competing is the CPU consumed by competing tasks on each slave
// during the run (the getrusage measurement). On dedicated homogeneous
// nodes it reduces to the classic speedup/P.
func Efficiency(seq, elapsed time.Duration, usage []cluster.Usage) float64 {
	var avail time.Duration
	for _, u := range usage {
		a := elapsed - u.CompetingCPU
		if a < 0 {
			a = 0
		}
		avail += a
	}
	if avail <= 0 {
		return 0
	}
	return seq.Seconds() / avail.Seconds()
}

// Table renders rows as an aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row formatting each value with %v (floats get %.3g
// unless they are durations/strings).
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.2fs", v.Seconds())
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}
