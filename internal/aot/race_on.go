//go:build race

package aot

// raceEnabled mirrors the host binary's race-detector state: a
// race-enabled host can only load plugins that were themselves built
// with -race, so the flag is part of the build command and the cache key.
const raceEnabled = true
