package aot

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"plugin"
	"runtime"
	"sort"
	"sync"
	"time"
)

// ModePlugin and ModeExec name the two load modes.
const (
	ModePlugin = "plugin"
	ModeExec   = "exec"
)

// Build emits the spec's kernels, builds (or reuses) the native artifact
// and loads it. Safe for concurrent callers: identical specs build once
// per process (memo) and once per machine (cache directory + lock file).
func Build(spec Spec) (*Program, error) {
	emitStart := time.Now()
	e, err := emitSpec(spec)
	if err != nil {
		return nil, err
	}
	modes, err := candidateModes(spec.Mode)
	if err != nil {
		return nil, err
	}
	var firstErr error
	for _, mode := range modes {
		p, err := buildMode(spec, e, mode, time.Since(emitStart))
		if err == nil {
			return p, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, firstErr
}

func candidateModes(mode string) ([]string, error) {
	if mode == "" {
		mode = os.Getenv("DLB_AOT_MODE")
	}
	switch mode {
	case "":
		return []string{ModePlugin, ModeExec}, nil
	case ModePlugin, ModeExec:
		return []string{mode}, nil
	}
	return nil, fmt.Errorf("aot: unknown mode %q (want %q or %q)", mode, ModePlugin, ModeExec)
}

// memo single-flights identical builds within the process and keeps
// loaded programs alive (a plugin cannot be unloaded anyway).
var (
	memoMu sync.Mutex
	memo   = map[string]*memoEntry{}
)

type memoEntry struct {
	once sync.Once
	prog *Program
	err  error
}

// ClearMemory drops the in-process program memo, closing any subprocess
// runners. Tests and benchmarks use it to measure the on-disk warm path.
func ClearMemory() {
	memoMu.Lock()
	defer memoMu.Unlock()
	for _, e := range memo {
		if e.prog != nil && e.prog.runner != nil {
			e.prog.runner.close()
		}
	}
	memo = map[string]*memoEntry{}
}

func buildMode(spec Spec, e *emitted, mode string, emitDur time.Duration) (*Program, error) {
	key := cacheKey(e, mode)

	memoMu.Lock()
	ent, hit := memo[key]
	if !hit {
		ent = &memoEntry{}
		memo[key] = ent
	}
	memoMu.Unlock()

	ent.once.Do(func() {
		ent.prog, ent.err = buildAndLoad(spec, e, mode, key, emitDur)
	})
	if ent.err != nil {
		return nil, ent.err
	}
	if hit {
		// A memo hit is the warmest start there is: hand out a fresh
		// handle so the caller's BuildInfo reflects it without mutating
		// the shared program.
		p := *ent.prog
		p.Info.Warm, p.Info.Memo = true, true
		p.Info.EmitDur, p.Info.BuildDur, p.Info.LoadDur = emitDur, 0, 0
		return &p, nil
	}
	return ent.prog, nil
}

// cacheKey hashes everything that determines the artifact: emitted
// source, Go version, GOARCH, load mode and the race-detector state of
// the host (a race-enabled host can only load race-enabled plugins).
func cacheKey(e *emitted, mode string) string {
	h := sha256.New()
	fmt.Fprintf(h, "go=%s arch=%s mode=%s race=%v\n", runtime.Version(), runtime.GOARCH, mode, raceEnabled)
	names := make([]string, 0, len(e.files))
	for name := range e.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "-- %s --\n%s", name, e.files[name])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cacheRoot resolves the on-disk cache directory.
func cacheRoot(override string) (string, error) {
	if override != "" {
		return override, nil
	}
	if dir := os.Getenv("DLB_AOT_CACHE"); dir != "" {
		return dir, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("aot: no user cache dir: %w", err)
	}
	return filepath.Join(base, "dlb-aot"), nil
}

func buildAndLoad(spec Spec, e *emitted, mode, key string, emitDur time.Duration) (*Program, error) {
	root, err := cacheRoot(spec.CacheDir)
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(root, key[:16])
	artifact := filepath.Join(dir, "kernel.so")
	if mode == ModeExec {
		artifact = filepath.Join(dir, "kernel.bin")
	}

	info := BuildInfo{Key: key, Mode: mode, Dir: dir, EmitDur: emitDur, Skipped: e.skipped}

	if _, err := os.Stat(artifact); err != nil {
		// Cold: materialize source and run the toolchain under the
		// cross-process lock; a racing process may have built it by the
		// time the lock is held.
		unlock, err := lockDir(dir)
		if err != nil {
			return nil, err
		}
		if _, err := os.Stat(artifact); err != nil {
			buildStart := time.Now()
			// The module path becomes the symbol prefix of package main and
			// the plugin path — both must be unique per artifact or the
			// runtime refuses to load two different emitted programs. The
			// key is not known at emission time, so substitute it here.
			files := make(map[string]string, len(e.files))
			for name, content := range e.files {
				files[name] = content
			}
			files["go.mod"] = fmt.Sprintf("module dlbaot/k%s\n\ngo 1.22\n", key[:16])
			if err := writeSource(filepath.Join(dir, "src"), files); err != nil {
				unlock()
				return nil, err
			}
			if err := runToolchain(filepath.Join(dir, "src"), artifact, mode); err != nil {
				unlock()
				return nil, err
			}
			info.BuildDur = time.Since(buildStart)
		} else {
			info.Warm = true
		}
		unlock()
	} else {
		info.Warm = true
	}

	loadStart := time.Now()
	p := &Program{Info: info}
	var fns []rawKernel
	if mode == ModePlugin {
		fns, err = loadPlugin(artifact, len(e.kernels))
		if err != nil {
			return nil, err
		}
	} else {
		p.runner = &runnerProc{path: artifact}
	}
	for i, ek := range e.kernels {
		if ek == nil {
			p.Kernels = append(p.Kernels, nil)
			continue
		}
		k := &Kernel{Meta: ek, idx: i, prog: p}
		if fns != nil {
			k.fn = fns[i]
		}
		for _, w := range ek.Writes {
			for slot, arr := range ek.Arrays {
				if arr == w {
					k.writeSlots = append(k.writeSlots, slot)
					break
				}
			}
		}
		p.Kernels = append(p.Kernels, k)
	}
	p.Info.LoadDur = time.Since(loadStart)
	return p, nil
}

func writeSource(srcDir string, files map[string]string) error {
	if err := os.MkdirAll(srcDir, 0o755); err != nil {
		return err
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(srcDir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// runToolchain invokes go build. Plugins need cgo; plugin-path
// uniqueness comes from the per-key module path written by buildAndLoad.
func runToolchain(srcDir, artifact, mode string) error {
	goBin, err := exec.LookPath("go")
	if err != nil {
		goBin = filepath.Join(runtime.GOROOT(), "bin", "go")
	}
	args := []string{"build"}
	if mode == ModePlugin {
		args = append(args, "-buildmode=plugin")
	}
	if raceEnabled {
		args = append(args, "-race")
	}
	tmp := artifact + ".tmp"
	args = append(args, "-o", tmp, ".")
	cmd := exec.Command(goBin, args...)
	cmd.Dir = srcDir
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
	if mode == ModePlugin {
		cmd.Env = append(cmd.Env, "CGO_ENABLED=1")
	}
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("aot: %s %s build failed: %v\n%s", filepath.Base(goBin), mode, err, out)
	}
	return os.Rename(tmp, artifact)
}

// loadPlugin opens the shared object and resolves the kernel table.
func loadPlugin(path string, want int) ([]rawKernel, error) {
	pl, err := plugin.Open(path)
	if err != nil {
		return nil, fmt.Errorf("aot: open plugin: %w", err)
	}
	sym, err := pl.Lookup("Kernels")
	if err != nil {
		return nil, fmt.Errorf("aot: plugin has no Kernels table: %w", err)
	}
	tbl, ok := sym.(*[]rawKernel)
	if !ok {
		return nil, fmt.Errorf("aot: Kernels table has type %T", sym)
	}
	if len(*tbl) != want {
		return nil, fmt.Errorf("aot: Kernels table has %d entries, want %d", len(*tbl), want)
	}
	return *tbl, nil
}

// lockDir acquires a best-effort cross-process build lock for a cache
// directory via an O_EXCL lock file. A lock older than staleLockAge is
// presumed abandoned (a killed builder) and broken.
const staleLockAge = 5 * time.Minute

func lockDir(dir string) (unlock func(), err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, ".lock")
	for {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintf(f, "%d\n", os.Getpid())
			f.Close()
			return func() { os.Remove(path) }, nil
		}
		if !os.IsExist(err) {
			return nil, err
		}
		if st, serr := os.Stat(path); serr == nil && time.Since(st.ModTime()) > staleLockAge {
			os.Remove(path)
			continue
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// runnerProc is the host side of the subprocess runner: one persistent
// child speaking gob over stdin/stdout, calls serialized by a mutex.
type runnerProc struct {
	path string

	mu     sync.Mutex
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	enc    *gob.Encoder
	dec    *gob.Decoder
	closed bool
}

type runnerReq struct {
	K      int
	Lo, Hi int
	Regs   []int
	Data   [][]float64
}

type runnerResp struct {
	Data [][]float64
}

func (r *runnerProc) start() error {
	cmd := exec.Command(r.path)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	r.cmd = cmd
	r.stdin = stdin
	r.enc = gob.NewEncoder(stdin)
	r.dec = gob.NewDecoder(stdout)
	return nil
}

func (r *runnerProc) call(k int, f *Frame, writeSlots []int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("runner closed")
	}
	if r.cmd == nil {
		if err := r.start(); err != nil {
			return err
		}
	}
	req := runnerReq{K: k, Lo: f.Lo, Hi: f.Hi, Regs: f.Regs, Data: f.Data}
	if err := r.enc.Encode(req); err != nil {
		return err
	}
	var resp runnerResp
	if err := r.dec.Decode(&resp); err != nil {
		return err
	}
	if len(resp.Data) != len(writeSlots) {
		return fmt.Errorf("runner returned %d arrays, want %d", len(resp.Data), len(writeSlots))
	}
	for i, slot := range writeSlots {
		copy(f.Data[slot], resp.Data[i])
	}
	return nil
}

func (r *runnerProc) close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	if r.cmd != nil {
		r.stdin.Close()
		done := make(chan struct{})
		go func() { r.cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			r.cmd.Process.Kill()
			<-done
		}
	}
}
